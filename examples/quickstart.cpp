// Quickstart: the smallest end-to-end SeeSaw program.
//
// Builds a toy labeled dataset, runs the one-time preprocessing pass
// (multiscale tiling -> embedding -> vector store -> M_D), then drives an
// interactive search session for one concept with simulated box feedback,
// printing how the result quality evolves round by round.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "core/embedded_dataset.h"
#include "core/seesaw_searcher.h"
#include "data/profiles.h"
#include "eval/metrics.h"

using namespace seesaw;

int main() {
  // --- 1. A small labeled dataset (stand-in for your image collection). ---
  data::DatasetProfile profile = data::CocoLikeProfile(/*scale=*/0.2);
  profile.embedding_dim = 64;
  auto dataset = data::Dataset::Generate(profile);
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset: %s\n", dataset.status().ToString().c_str());
    return 1;
  }
  std::printf("dataset: %zu images, %zu categories\n", dataset->num_images(),
              dataset->space().num_concepts());

  // --- 2. One-time preprocessing (paper §2.4). ---
  core::PreprocessOptions options;
  options.multiscale.enabled = true;  // §4.3: coarse + fine tiles
  options.build_md = true;            // §4.2: DB-alignment matrix
  auto embedded = core::EmbeddedDataset::Build(*dataset, options);
  if (!embedded.ok()) {
    std::fprintf(stderr, "preprocess: %s\n",
                 embedded.status().ToString().c_str());
    return 1;
  }
  std::printf("preprocessed: %zu vectors (%.1f per image), M_D %zux%zu\n",
              embedded->num_vectors(),
              static_cast<double>(embedded->num_vectors()) /
                  dataset->num_images(),
              embedded->md()->rows(), embedded->md()->cols());

  // --- 3. Start a search from a text query (Listing 1 of the paper). ---
  // Pick a category whose text embedding is badly aligned (a "hard query"):
  // that is where the feedback loop earns its keep.
  size_t concept_id = 0;
  for (size_t c : dataset->EvaluableConcepts(20)) {
    if (dataset->space().concept_at(c).alignment_deficit >
        dataset->space().concept_at(concept_id).alignment_deficit) {
      concept_id = c;
    }
  }
  const std::string query = dataset->space().concept_at(concept_id).name;
  std::printf("\nsearching for: \"%s\"\n", query.c_str());
  core::SeeSawSearcher searcher(*embedded, embedded->TextQuery(concept_id),
                                core::SeeSawOptions{});

  // --- 4. Interaction loop: fetch, label, refit. Here the dataset's ground
  // truth stands in for the human's box feedback. ---
  size_t found = 0, inspected = 0;
  for (int round = 0; round < 6 && found < 10; ++round) {
    auto batch = searcher.NextBatch(10);
    size_t round_hits = 0;
    for (const core::ScoredImage& hit : batch) {
      core::ImageFeedback fb;
      fb.image_idx = hit.image_idx;
      fb.relevant = dataset->IsPositive(hit.image_idx, concept_id);
      if (fb.relevant) {
        fb.boxes = dataset->ConceptBoxes(hit.image_idx, concept_id);
        ++round_hits;
        ++found;
      }
      searcher.AddFeedback(fb);
      ++inspected;
      if (found >= 10) break;
    }
    if (!searcher.Refit().ok()) {
      std::fprintf(stderr, "refit failed\n");
      return 1;
    }
    std::printf("round %d: %zu/%zu relevant in this batch (total %zu found"
                " in %zu inspected)\n",
                round + 1, round_hits, batch.size(), found, inspected);
  }
  std::printf("\ndone: found %zu of 10 targets after %zu images.\n", found,
              inspected);
  return 0;
}
