// Detector bootstrap: the paper's "constructing datasets for training and
// testing object detectors" use case (§1). Loops over several categories,
// collects 10 positive examples of each with a SeeSaw session, and exports
// a training-set manifest (image id + region boxes) as CSV — the artifact a
// detector-training pipeline would consume.
//
//   $ ./examples/detector_bootstrap [output.csv]
#include <cstdio>
#include <string>
#include <vector>

#include "core/embedded_dataset.h"
#include "core/seesaw_searcher.h"
#include "data/profiles.h"

using namespace seesaw;

namespace {

struct LabeledExample {
  std::string category;
  uint32_t image_idx;
  data::Box box;
};

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "detector_labels.csv";

  data::DatasetProfile profile = data::LvisLikeProfile(/*scale=*/0.3);
  profile.embedding_dim = 64;
  auto dataset = data::Dataset::Generate(profile);
  if (!dataset.ok()) return 1;

  core::PreprocessOptions options;
  options.multiscale.enabled = true;
  options.build_md = true;
  options.md.sample_size = 3000;
  auto embedded = core::EmbeddedDataset::Build(*dataset, options);
  if (!embedded.ok()) return 1;

  // Bootstrap labels for the five rarest evaluable categories — exactly the
  // ones where random browsing would be hopeless.
  auto evaluable = dataset->EvaluableConcepts(10);
  std::vector<size_t> targets(evaluable.end() - std::min<size_t>(5, evaluable.size()),
                              evaluable.end());

  std::vector<LabeledExample> collected;
  for (size_t concept_id : targets) {
    const std::string& name = dataset->space().concept_at(concept_id).name;
    core::SeeSawSearcher searcher(*embedded, embedded->TextQuery(concept_id),
                                  core::SeeSawOptions{});
    size_t found = 0, inspected = 0;
    while (found < 10 && inspected < 80) {
      auto batch = searcher.NextBatch(10);
      if (batch.empty()) break;
      for (const core::ScoredImage& hit : batch) {
        core::ImageFeedback fb;
        fb.image_idx = hit.image_idx;
        fb.relevant = dataset->IsPositive(hit.image_idx, concept_id);
        if (fb.relevant) {
          fb.boxes = dataset->ConceptBoxes(hit.image_idx, concept_id);
          for (const data::Box& box : fb.boxes) {
            collected.push_back({name, hit.image_idx, box});
          }
          ++found;
        }
        searcher.AddFeedback(fb);
        ++inspected;
        if (found >= 10) break;
      }
      if (!searcher.Refit().ok()) break;
    }
    std::printf("%-16s found %2zu positives in %2zu inspected images\n",
                name.c_str(), found, inspected);
  }

  std::FILE* out = std::fopen(out_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  std::fprintf(out, "category,image_id,x0,y0,x1,y1\n");
  for (const LabeledExample& ex : collected) {
    std::fprintf(out, "%s,%u,%.1f,%.1f,%.1f,%.1f\n", ex.category.c_str(),
                 ex.image_idx, ex.box.x0, ex.box.y0, ex.box.x1, ex.box.y1);
  }
  std::fclose(out);
  std::printf("\nwrote %zu labeled boxes to %s\n", collected.size(), out_path);
  return 0;
}
