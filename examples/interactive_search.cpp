// Interactive terminal search: drive a SeeSawSession by hand. Type a
// category name to start; for each result the program shows the image's
// contents (the synthetic stand-in for looking at a picture) and asks
// whether it is relevant — your y/n answers are the box feedback loop of
// Listing 1.
//
//   $ ./examples/interactive_search
//   query> wheelchair
//   [1] image 1204 (1280x720): car, car, person | relevant? (y/n/q) ...
#include <cstdio>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>

#include "core/embedded_dataset.h"
#include "core/seesaw_searcher.h"
#include "data/profiles.h"

using namespace seesaw;

namespace {

std::string DescribeImage(const data::Dataset& dataset, uint32_t image_idx) {
  const data::ImageRecord& img = dataset.image(image_idx);
  std::ostringstream out;
  out << "image " << image_idx << " (" << img.width << "x" << img.height
      << "): ";
  if (img.objects.empty()) {
    out << "(empty scene)";
  }
  for (size_t i = 0; i < img.objects.size(); ++i) {
    if (i) out << ", ";
    out << dataset.space().concept_at(img.objects[i].concept_id).name;
  }
  return out.str();
}

}  // namespace

int main() {
  std::printf("Generating a BDD-like dataset (one-time preprocessing)...\n");
  data::DatasetProfile profile = data::BddLikeProfile(/*scale=*/0.25);
  profile.embedding_dim = 64;
  auto dataset = data::Dataset::Generate(profile);
  if (!dataset.ok()) return 1;
  core::PreprocessOptions options;
  options.multiscale.enabled = true;
  options.build_md = true;
  options.md.sample_size = 2000;
  auto embedded = core::EmbeddedDataset::Build(*dataset, options);
  if (!embedded.ok()) return 1;

  std::printf("categories: ");
  for (size_t c = 0; c < dataset->space().num_concepts(); ++c) {
    std::printf("%s%s", c ? ", " : "",
                dataset->space().concept_at(c).name.c_str());
  }
  std::printf("\n\nquery> ");
  std::string query;
  if (!std::getline(std::cin, query) || query.empty()) {
    std::printf("(no query; exiting)\n");
    return 0;
  }
  if (query == "q" || query == "quit") return 0;
  auto concept_id = dataset->space().FindConcept(query);
  if (!concept_id.ok()) {
    std::printf("unknown category '%s'\n", query.c_str());
    return 1;
  }

  core::SeeSawSearcher searcher(*embedded, embedded->TextQuery(*concept_id),
                                core::SeeSawOptions{});
  size_t shown = 0, marked = 0;
  for (;;) {
    auto batch = searcher.NextBatch(5);
    if (batch.empty()) {
      std::printf("no more images.\n");
      break;
    }
    bool quit = false;
    for (const core::ScoredImage& hit : batch) {
      std::printf("[%zu] %s | relevant? (y/n/q) ", ++shown,
                  DescribeImage(*dataset, hit.image_idx).c_str());
      std::string answer;
      if (!std::getline(std::cin, answer)) {
        quit = true;
        break;
      }
      if (!answer.empty() && (answer[0] == 'q' || answer[0] == 'Q')) {
        quit = true;
        break;
      }
      core::ImageFeedback fb;
      fb.image_idx = hit.image_idx;
      fb.relevant = !answer.empty() && (answer[0] == 'y' || answer[0] == 'Y');
      if (fb.relevant) {
        // In a GUI the user would draw the box; here the ground-truth boxes
        // stand in for it.
        fb.boxes = dataset->ConceptBoxes(hit.image_idx, *concept_id);
        ++marked;
      }
      searcher.AddFeedback(fb);
    }
    if (quit) break;
    if (!searcher.Refit().ok()) break;
    std::printf("-- query refit from %zu marks; fetching next batch --\n",
                marked);
  }
  std::printf("session over: %zu images shown, %zu marked relevant.\n", shown,
              marked);
  return 0;
}
