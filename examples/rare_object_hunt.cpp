// Rare-object hunt: the paper's motivating scenario (§1) — an autonomous-
// driving engineer searching dash-cam data for wheelchairs, a one-in-a-
// thousand class where zero-shot CLIP needs 100+ images to surface a first
// hit. Runs zero-shot and full SeeSaw side by side on the same BDD-like
// dataset and prints the discovery curve (positives found vs images
// inspected) for both.
//
//   $ ./examples/rare_object_hunt
#include <cstdio>
#include <string>

#include "core/embedded_dataset.h"
#include "core/seesaw_searcher.h"
#include "data/profiles.h"

using namespace seesaw;

namespace {

/// Runs one search session and returns the cumulative discovery curve.
std::vector<size_t> DiscoveryCurve(core::Searcher& searcher,
                                   const data::Dataset& dataset,
                                   size_t concept_id, size_t budget,
                                   size_t batch_size) {
  std::vector<size_t> curve;
  size_t found = 0;
  while (curve.size() < budget) {
    auto batch = searcher.NextBatch(batch_size);
    if (batch.empty()) break;
    for (const core::ScoredImage& hit : batch) {
      core::ImageFeedback fb;
      fb.image_idx = hit.image_idx;
      fb.relevant = dataset.IsPositive(hit.image_idx, concept_id);
      if (fb.relevant) {
        fb.boxes = dataset.ConceptBoxes(hit.image_idx, concept_id);
        ++found;
      }
      searcher.AddFeedback(fb);
      curve.push_back(found);
      if (curve.size() >= budget) break;
    }
    if (!searcher.Refit().ok()) break;
  }
  return curve;
}

}  // namespace

int main() {
  std::printf("Generating a BDD-like dash-cam dataset...\n");
  data::DatasetProfile profile = data::BddLikeProfile(/*scale=*/0.5);
  profile.embedding_dim = 96;
  auto dataset = data::Dataset::Generate(profile);
  if (!dataset.ok()) return 1;

  auto wheelchair = dataset->space().FindConcept("wheelchair");
  if (!wheelchair.ok()) return 1;
  std::printf("dataset: %zu images; 'wheelchair' appears in %zu of them"
              " (%.2f%%)\n",
              dataset->num_images(), dataset->positives(*wheelchair).size(),
              100.0 * dataset->positives(*wheelchair).size() /
                  dataset->num_images());

  core::PreprocessOptions options;
  options.multiscale.enabled = true;
  options.build_md = true;
  options.md.sample_size = 4000;
  auto embedded = core::EmbeddedDataset::Build(*dataset, options);
  if (!embedded.ok()) return 1;
  std::printf("indexed %zu patch vectors\n\n", embedded->num_vectors());

  const size_t kBudget = 60, kBatch = 10;
  auto q0 = embedded->TextQuery(*wheelchair);

  core::SeeSawOptions zs_options;
  zs_options.update_query = false;
  core::SeeSawSearcher zero_shot(*embedded, q0, zs_options);
  auto zs_curve = DiscoveryCurve(zero_shot, *dataset, *wheelchair, kBudget,
                                 kBatch);

  core::SeeSawSearcher seesaw(*embedded, q0, core::SeeSawOptions{});
  auto ss_curve = DiscoveryCurve(seesaw, *dataset, *wheelchair, kBudget,
                                 kBatch);

  std::printf("discovery curve: wheelchairs found after N inspected images\n");
  std::printf("%10s  %9s  %7s\n", "inspected", "zero-shot", "seesaw");
  for (size_t n = 9; n < kBudget; n += 10) {
    std::printf("%10zu  %9zu  %7zu\n", n + 1,
                n < zs_curve.size() ? zs_curve[n] : zs_curve.back(),
                n < ss_curve.size() ? ss_curve[n] : ss_curve.back());
  }
  std::printf("\nSeeSaw folds your box feedback back into the query vector"
              " (§4), so each round surfaces more of the rare class.\n");
  return 0;
}
