#include <gtest/gtest.h>

#include <cmath>

#include "data/box.h"
#include "data/dataset.h"
#include "data/profiles.h"

namespace seesaw::data {
namespace {

// ------------------------------------------------------------------- Box --

TEST(BoxTest, AreaAndEmpty) {
  Box b{0, 0, 4, 3};
  EXPECT_FLOAT_EQ(b.Area(), 12);
  EXPECT_FALSE(b.Empty());
  Box inverted{5, 5, 2, 2};
  EXPECT_FLOAT_EQ(inverted.Area(), 0);
  EXPECT_TRUE(inverted.Empty());
}

TEST(BoxTest, IntersectionGeometry) {
  Box a{0, 0, 10, 10};
  Box b{5, 5, 15, 15};
  EXPECT_FLOAT_EQ(a.IntersectionArea(b), 25);
  EXPECT_TRUE(a.Overlaps(b));
  Box c{20, 20, 30, 30};
  EXPECT_FLOAT_EQ(a.IntersectionArea(c), 0);
  EXPECT_FALSE(a.Overlaps(c));
}

TEST(BoxTest, TouchingEdgesDoNotOverlap) {
  Box a{0, 0, 10, 10};
  Box b{10, 0, 20, 10};
  EXPECT_FALSE(a.Overlaps(b));
}

TEST(BoxTest, IouKnownValues) {
  Box a{0, 0, 10, 10};
  EXPECT_FLOAT_EQ(a.Iou(a), 1.0f);
  Box half{0, 0, 10, 5};
  EXPECT_FLOAT_EQ(a.Iou(half), 0.5f);
  Box disjoint{100, 100, 110, 110};
  EXPECT_FLOAT_EQ(a.Iou(disjoint), 0.0f);
}

// --------------------------------------------------------------- Dataset --

DatasetProfile TinyProfile() {
  DatasetProfile p;
  p.name = "tiny";
  p.num_images = 120;
  p.num_concepts = 8;
  p.embedding_dim = 32;
  p.min_image_width = 300;
  p.max_image_width = 500;
  p.min_image_height = 300;
  p.max_image_height = 400;
  p.mean_objects_per_image = 2.0;
  p.min_positives_per_concept = 3;
  p.seed = 7;
  return p;
}

TEST(DatasetTest, ValidatesProfile) {
  DatasetProfile p = TinyProfile();
  p.num_images = 0;
  EXPECT_FALSE(Dataset::Generate(p).ok());
  p = TinyProfile();
  p.object_scale_min = 0;
  EXPECT_FALSE(Dataset::Generate(p).ok());
  p = TinyProfile();
  p.max_image_width = p.min_image_width - 1;
  EXPECT_FALSE(Dataset::Generate(p).ok());
}

TEST(DatasetTest, GeneratesRequestedCounts) {
  auto ds = Dataset::Generate(TinyProfile());
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->num_images(), 120u);
  EXPECT_EQ(ds->space().num_concepts(), 8u);
  EXPECT_EQ(ds->space().dim(), 32u);
}

TEST(DatasetTest, DeterministicGivenSeed) {
  auto a = Dataset::Generate(TinyProfile());
  auto b = Dataset::Generate(TinyProfile());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->num_images(), b->num_images());
  for (size_t i = 0; i < a->num_images(); ++i) {
    EXPECT_EQ(a->image(i).objects.size(), b->image(i).objects.size());
    EXPECT_EQ(a->image(i).width, b->image(i).width);
  }
}

TEST(DatasetTest, ObjectsFitInsideImages) {
  auto ds = Dataset::Generate(TinyProfile());
  ASSERT_TRUE(ds.ok());
  for (const ImageRecord& img : ds->images()) {
    for (const ObjectInstance& o : img.objects) {
      EXPECT_GE(o.box.x0, 0);
      EXPECT_GE(o.box.y0, 0);
      EXPECT_LE(o.box.x1, img.width + 1e-3f);
      EXPECT_LE(o.box.y1, img.height + 1e-3f);
      EXPECT_FALSE(o.box.Empty());
    }
  }
}

TEST(DatasetTest, MinimumPositivesGuaranteed) {
  auto ds = Dataset::Generate(TinyProfile());
  ASSERT_TRUE(ds.ok());
  for (size_t c = 0; c < ds->space().num_concepts(); ++c) {
    EXPECT_GE(ds->positives(c).size(), 3u) << "concept " << c;
  }
}

TEST(DatasetTest, PositivesIndexMatchesIsPositive) {
  auto ds = Dataset::Generate(TinyProfile());
  ASSERT_TRUE(ds.ok());
  for (size_t c = 0; c < ds->space().num_concepts(); ++c) {
    size_t count = 0;
    for (size_t i = 0; i < ds->num_images(); ++i) {
      if (ds->IsPositive(i, c)) {
        ++count;
        EXPECT_FALSE(ds->ConceptBoxes(i, c).empty());
      } else {
        EXPECT_TRUE(ds->ConceptBoxes(i, c).empty());
      }
    }
    EXPECT_EQ(count, ds->positives(c).size());
  }
}

TEST(DatasetTest, EvaluableConceptsRespectsThreshold) {
  auto ds = Dataset::Generate(TinyProfile());
  ASSERT_TRUE(ds.ok());
  auto evaluable = ds->EvaluableConcepts(3);
  EXPECT_EQ(evaluable.size(), 8u);  // min_positives_per_concept = 3
  auto high_bar = ds->EvaluableConcepts(ds->num_images());
  EXPECT_TRUE(high_bar.empty());
}

TEST(DatasetTest, ZipfMakesEarlyConceptsMoreFrequent) {
  DatasetProfile p = TinyProfile();
  p.num_images = 800;
  p.zipf_exponent = 1.5;
  p.min_positives_per_concept = 0;
  auto ds = Dataset::Generate(p);
  ASSERT_TRUE(ds.ok());
  EXPECT_GT(ds->positives(0).size(), ds->positives(7).size() * 2);
}

TEST(DatasetTest, RegionContentSeesOnlyOverlappingObjects) {
  auto ds = Dataset::Generate(TinyProfile());
  ASSERT_TRUE(ds.ok());
  // Find an image with at least one object.
  for (size_t i = 0; i < ds->num_images(); ++i) {
    const ImageRecord& img = ds->image(i);
    if (img.objects.empty()) continue;
    const Box& obj_box = img.objects[0].box;
    // A region exactly on the object sees it; a region outside doesn't.
    auto inside = ds->RegionContent(i, obj_box, 0);
    bool found = false;
    for (const auto& o : inside.objects) {
      if (o.concept_id == img.objects[0].concept_id) found = true;
    }
    EXPECT_TRUE(found);
    Box outside{-100, -100, -1, -1};
    auto empty = ds->RegionContent(i, outside, 1);
    EXPECT_TRUE(empty.objects.empty());
    return;
  }
  FAIL() << "no image with objects";
}

TEST(DatasetTest, SmallObjectLessProminentInFullImageThanInTightRegion) {
  // The multiscale motivation (§4.3): prominence saturates with relative
  // area, so the same object is weaker in the coarse view.
  auto ds = Dataset::Generate(TinyProfile());
  ASSERT_TRUE(ds.ok());
  for (size_t i = 0; i < ds->num_images(); ++i) {
    const ImageRecord& img = ds->image(i);
    for (const ObjectInstance& obj : img.objects) {
      if (obj.box.Area() > 0.2f * img.Bounds().Area()) continue;
      auto coarse = ds->RegionContent(i, img.Bounds(), 0);
      auto tight = ds->RegionContent(i, obj.box, 1);
      float coarse_prom = 0, tight_prom = 0;
      for (const auto& o : coarse.objects) {
        if (o.concept_id == obj.concept_id) coarse_prom = o.prominence;
      }
      for (const auto& o : tight.objects) {
        if (o.concept_id == obj.concept_id) tight_prom = o.prominence;
      }
      EXPECT_GT(tight_prom, coarse_prom);
      return;
    }
  }
  GTEST_SKIP() << "no small object found";
}

TEST(DatasetTest, EmbedRegionIsUnitAndDeterministic) {
  auto ds = Dataset::Generate(TinyProfile());
  ASSERT_TRUE(ds.ok());
  Box region{0, 0, 200, 200};
  auto v1 = ds->EmbedRegion(0, region, 0);
  auto v2 = ds->EmbedRegion(0, region, 0);
  EXPECT_EQ(v1, v2);
  EXPECT_NEAR(linalg::Norm(v1), 1.0f, 1e-5f);
  auto v3 = ds->EmbedRegion(0, region, 1);  // different region index
  EXPECT_NE(v1, v3);
}

// -------------------------------------------------------------- Profiles --

TEST(ProfilesTest, AllProfilesGenerateAtTinyScale) {
  for (auto profile : data::AllPaperProfiles(0.05)) {
    profile.embedding_dim = 32;
    auto ds = Dataset::Generate(profile);
    ASSERT_TRUE(ds.ok()) << profile.name;
    EXPECT_GT(ds->num_images(), 0u);
    EXPECT_FALSE(ds->EvaluableConcepts(1).empty());
  }
}

TEST(ProfilesTest, ObjectNetIsFixedSizeSingleObject) {
  auto profile = ObjectNetLikeProfile(0.05);
  profile.embedding_dim = 32;
  auto ds = Dataset::Generate(profile);
  ASSERT_TRUE(ds.ok());
  for (const ImageRecord& img : ds->images()) {
    EXPECT_EQ(img.width, 224);
    EXPECT_EQ(img.height, 224);
    EXPECT_GE(img.objects.size(), 1u);
  }
}

TEST(ProfilesTest, BddHasNamedRareClasses) {
  auto profile = BddLikeProfile(0.1);
  profile.embedding_dim = 32;
  auto ds = Dataset::Generate(profile);
  ASSERT_TRUE(ds.ok());
  auto wheelchair = ds->space().FindConcept("wheelchair");
  ASSERT_TRUE(wheelchair.ok());
  auto car = ds->space().FindConcept("car");
  ASSERT_TRUE(car.ok());
  // Zipf head vs tail: cars much more common than wheelchairs.
  EXPECT_GT(ds->positives(*car).size(), ds->positives(*wheelchair).size() * 3);
}

TEST(ProfilesTest, ScaleParameterScalesImages) {
  auto small = CocoLikeProfile(0.1);
  auto large = CocoLikeProfile(1.0);
  EXPECT_LT(small.num_images, large.num_images);
}

}  // namespace
}  // namespace seesaw::data
