// Parity tests for the runtime-dispatched SIMD kernel layer (linalg/simd.h).
//
// Every kernel the host CPU supports is forced in turn and checked for
// *bitwise* equality against the scalar reference — over odd dims, remainder
// tails, unaligned spans, wide dynamic range, and ±inf/NaN inputs. Bitwise
// (not approximate) equality is the contract the batched query engine's
// parity guarantees rest on, so any reassociation or masked-lane bug in an
// intrinsics path fails these tests loudly.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

#include "common/rng.h"
#include "linalg/matrix.h"
#include "linalg/simd.h"
#include "linalg/vector_ops.h"

namespace seesaw::linalg {
namespace {

uint32_t Bits(float v) { return std::bit_cast<uint32_t>(v); }

/// Bitwise equality with a readable failure message. NaNs must match on the
/// exact bit pattern too: all kernels perform the identical sequence of
/// IEEE operations, so payload and sign must agree.
::testing::AssertionResult BitEq(float expected, float actual) {
  if (Bits(expected) == Bits(actual)) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << "expected " << expected << " (0x" << std::hex << Bits(expected)
         << ") got " << actual << " (0x" << Bits(actual) << ")";
}

/// Random floats across ~12 decades of magnitude so any change in
/// accumulation order shifts low-order bits.
VectorF RandomVector(Rng& rng, size_t n) {
  VectorF v(n);
  for (float& x : v) {
    double mag = rng.LogNormal(/*mu=*/0.0, /*sigma=*/4.0);
    x = static_cast<float>((rng.Bernoulli(0.5) ? mag : -mag));
  }
  return v;
}

std::vector<size_t> SweepDims() {
  std::vector<size_t> dims;
  for (size_t d = 0; d <= 34; ++d) dims.push_back(d);  // all tail shapes
  for (size_t d : {63u, 64u, 65u, 100u, 127u, 128u, 129u, 255u, 256u, 257u,
                   511u, 512u, 513u}) {
    dims.push_back(d);
  }
  return dims;
}

class SimdKernelTest : public ::testing::Test {
 protected:
  void TearDown() override { ASSERT_TRUE(ForceKernels("auto")); }
};

TEST_F(SimdKernelTest, ScalarIsAlwaysSupported) {
  auto names = SupportedKernels();
  EXPECT_NE(std::find(names.begin(), names.end(), "scalar"), names.end());
  for (const std::string& name : names) {
    EXPECT_NE(FindKernels(name), nullptr) << name;
  }
}

TEST_F(SimdKernelTest, DotBitwiseParityAcrossKernelsAndDims) {
  const KernelTable& ref = ScalarKernels();
  Rng rng(7);
  for (const std::string& name : SupportedKernels()) {
    const KernelTable* kernel = FindKernels(name);
    ASSERT_NE(kernel, nullptr);
    for (size_t dim : SweepDims()) {
      VectorF a = RandomVector(rng, dim);
      VectorF b = RandomVector(rng, dim);
      EXPECT_TRUE(BitEq(ref.dot(a, b), kernel->dot(a, b)))
          << name << " dim=" << dim;
    }
  }
}

TEST_F(SimdKernelTest, DotBatchBitwiseEqualsDotPerQuery) {
  Rng rng(11);
  for (const std::string& name : SupportedKernels()) {
    const KernelTable* kernel = FindKernels(name);
    ASSERT_NE(kernel, nullptr);
    for (size_t dim : {3u, 17u, 64u, 129u, 384u}) {
      VectorF a = RandomVector(rng, dim);
      for (size_t batch : {1u, 2u, 3u, 4u, 5u, 8u}) {
        std::vector<VectorF> queries;
        for (size_t q = 0; q < batch; ++q) {
          queries.push_back(RandomVector(rng, dim));
        }
        std::vector<VecSpan> spans(queries.begin(), queries.end());
        std::vector<float> out(batch);
        kernel->dot_batch(a, spans.data(), batch, out.data());
        for (size_t q = 0; q < batch; ++q) {
          EXPECT_TRUE(BitEq(kernel->dot(a, spans[q]), out[q]))
              << name << " dim=" << dim << " batch=" << batch << " q=" << q;
          EXPECT_TRUE(BitEq(ScalarKernels().dot(a, spans[q]), out[q]))
              << name << " dim=" << dim << " batch=" << batch << " q=" << q;
        }
      }
    }
  }
}

TEST_F(SimdKernelTest, ScoreBlockBitwiseEqualsDotPerCell) {
  Rng rng(13);
  for (const std::string& name : SupportedKernels()) {
    const KernelTable* kernel = FindKernels(name);
    ASSERT_NE(kernel, nullptr);
    for (size_t dim : {5u, 33u, 128u, 200u}) {
      for (size_t rows : {1u, 2u, 3u, 5u, 8u}) {
        MatrixF table(rows, dim);
        for (size_t r = 0; r < rows; ++r) {
          VectorF row = RandomVector(rng, dim);
          std::copy(row.begin(), row.end(), table.MutableRow(r).begin());
        }
        for (size_t batch : {1u, 2u, 3u, 4u, 7u}) {
          std::vector<VectorF> queries;
          for (size_t q = 0; q < batch; ++q) {
            queries.push_back(RandomVector(rng, dim));
          }
          std::vector<VecSpan> spans(queries.begin(), queries.end());
          std::vector<float> out(rows * batch);
          kernel->score_block(table.data().data(), rows, dim, spans.data(),
                              batch, out.data());
          for (size_t r = 0; r < rows; ++r) {
            for (size_t q = 0; q < batch; ++q) {
              EXPECT_TRUE(BitEq(ScalarKernels().dot(table.Row(r), spans[q]),
                                out[r * batch + q]))
                  << name << " dim=" << dim << " rows=" << rows
                  << " batch=" << batch << " r=" << r << " q=" << q;
            }
          }
        }
      }
    }
  }
}

TEST_F(SimdKernelTest, UnalignedSpansMatchScalar) {
  Rng rng(17);
  const size_t dim = 131;
  // Backing buffers with headroom; sub-spans start at every misalignment a
  // float pointer can have relative to a 32-byte vector register.
  VectorF a_buf = RandomVector(rng, dim + 8);
  VectorF b_buf = RandomVector(rng, dim + 8);
  for (const std::string& name : SupportedKernels()) {
    const KernelTable* kernel = FindKernels(name);
    ASSERT_NE(kernel, nullptr);
    for (size_t offset_a = 0; offset_a < 8; ++offset_a) {
      for (size_t offset_b : {0u, 1u, 3u, 7u}) {
        VecSpan a(a_buf.data() + offset_a, dim);
        VecSpan b(b_buf.data() + offset_b, dim);
        EXPECT_TRUE(BitEq(ScalarKernels().dot(a, b), kernel->dot(a, b)))
            << name << " offsets " << offset_a << "," << offset_b;
      }
    }
  }
}

TEST_F(SimdKernelTest, NonFiniteInputsMatchScalarBitwise) {
  constexpr float kInf = std::numeric_limits<float>::infinity();
  constexpr float kNan = std::numeric_limits<float>::quiet_NaN();
  Rng rng(19);
  // Every placement lands the special value in a different kernel region:
  // the 16-wide body (both banks), the single 8-chunk, and the scalar tail.
  const size_t dim = 45;  // 2x16 body + 8-chunk + 5 tail
  const size_t placements[] = {0, 7, 12, 23, 33, 39, 40, 44};
  const float specials[] = {kInf, -kInf, kNan, 0.0f, -0.0f};
  for (const std::string& name : SupportedKernels()) {
    const KernelTable* kernel = FindKernels(name);
    ASSERT_NE(kernel, nullptr);
    for (size_t pos : placements) {
      for (float special : specials) {
        VectorF a = RandomVector(rng, dim);
        VectorF b = RandomVector(rng, dim);
        a[pos] = special;
        float expected = ScalarKernels().dot(a, b);
        EXPECT_TRUE(BitEq(expected, kernel->dot(a, b)))
            << name << " pos=" << pos << " special=" << special;
        // inf * inf and inf * -inf in separate lanes -> inf + (-inf) = NaN
        // must propagate identically through the reduction tree.
        b[pos] = special;
        EXPECT_TRUE(BitEq(ScalarKernels().dot(a, b), kernel->dot(a, b)))
            << name << " pos=" << pos << " special^2=" << special;
      }
    }
  }
}

TEST_F(SimdKernelTest, PublicApiRoutesThroughForcedKernel) {
  Rng rng(23);
  const size_t dim = 77;
  VectorF a = RandomVector(rng, dim);
  VectorF b = RandomVector(rng, dim);
  const float want = ScalarKernels().dot(a, b);
  for (const std::string& name : SupportedKernels()) {
    ASSERT_TRUE(ForceKernels(name));
    EXPECT_STREQ(ActiveKernels().name, name.c_str());
    EXPECT_TRUE(BitEq(want, Dot(a, b))) << name;

    std::vector<VecSpan> queries = {a, b};
    VectorF out(2);
    DotBatch(b, queries, out);
    EXPECT_TRUE(BitEq(ScalarKernels().dot(b, a), out[0])) << name;
    EXPECT_TRUE(BitEq(ScalarKernels().dot(b, b), out[1])) << name;

    MatrixF table(3, dim);
    for (size_t r = 0; r < 3; ++r) {
      VectorF row = RandomVector(rng, dim);
      std::copy(row.begin(), row.end(), table.MutableRow(r).begin());
    }
    std::vector<float> scores(3 * 2);
    table.ScoreBlock(0, 3, queries, MutVecSpan(scores.data(), scores.size()));
    for (size_t r = 0; r < 3; ++r) {
      for (size_t q = 0; q < 2; ++q) {
        EXPECT_TRUE(BitEq(ScalarKernels().dot(table.Row(r), queries[q]),
                          scores[r * 2 + q]))
            << name << " r=" << r << " q=" << q;
      }
    }
  }
}

TEST_F(SimdKernelTest, ForceKernelsRejectsUnknownAndUnsupported) {
  EXPECT_FALSE(ForceKernels("bogus"));
  EXPECT_FALSE(ForceKernels(""));
  auto names = SupportedKernels();
  auto supported = [&](const char* n) {
    return std::find(names.begin(), names.end(), n) != names.end();
  };
  if (!supported("avx2")) EXPECT_FALSE(ForceKernels("avx2"));
  if (!supported("neon")) EXPECT_FALSE(ForceKernels("neon"));
  // A failed force leaves the active table usable.
  VectorF a = {1.0f, 2.0f, 3.0f};
  EXPECT_TRUE(BitEq(ScalarKernels().dot(a, a), Dot(a, a)));
}

TEST_F(SimdKernelTest, EnvVarForcesKernelAtFirstResolution) {
  ASSERT_EQ(setenv("SEESAW_FORCE_KERNEL", "scalar", /*overwrite=*/1), 0);
  internal::ResetKernelsForTest();
  EXPECT_STREQ(ActiveKernels().name, "scalar");
  ASSERT_EQ(unsetenv("SEESAW_FORCE_KERNEL"), 0);
  internal::ResetKernelsForTest();
  // Auto detection resolves to the best supported kernel.
  EXPECT_EQ(std::string(ActiveKernels().name), SupportedKernels().front());
}

TEST_F(SimdKernelTest, EmptyInputsAreZero) {
  for (const std::string& name : SupportedKernels()) {
    const KernelTable* kernel = FindKernels(name);
    ASSERT_NE(kernel, nullptr);
    EXPECT_TRUE(BitEq(0.0f, kernel->dot(VecSpan{}, VecSpan{}))) << name;
    kernel->dot_batch(VecSpan{}, nullptr, 0, nullptr);
    kernel->score_block(nullptr, 0, 0, nullptr, 0, nullptr);
  }
}

}  // namespace
}  // namespace seesaw::linalg
