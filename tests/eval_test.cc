#include <gtest/gtest.h>

#include <cmath>

#include "core/seesaw_searcher.h"
#include "data/profiles.h"
#include "eval/metrics.h"
#include "eval/task_runner.h"

namespace seesaw::eval {
namespace {

// ---------------------------------------------------------------- TaskAp --

TEST(TaskApTest, PerfectRunIsOne) {
  // First ten inspected images all positive.
  std::vector<char> rel(10, 1);
  EXPECT_DOUBLE_EQ(TaskAp(rel, 100, 10), 1.0);
}

TEST(TaskApTest, NothingFoundIsZero) {
  std::vector<char> rel(60, 0);
  EXPECT_DOUBLE_EQ(TaskAp(rel, 100, 10), 0.0);
}

TEST(TaskApTest, NoRelevantInDatabaseIsZero) {
  EXPECT_DOUBLE_EQ(TaskAp({1, 1}, 0, 10), 0.0);
}

TEST(TaskApTest, KnownHandComputedValue) {
  // Sequence: + - + ; R = min(10, 2) = 2.
  // P at first + = 1/1; P at second + = 2/3. AP = (1 + 2/3)/2 = 5/6.
  std::vector<char> rel = {1, 0, 1};
  EXPECT_NEAR(TaskAp(rel, 2, 10), 5.0 / 6.0, 1e-12);
}

TEST(TaskApTest, UnfoundPositivesContributeZero) {
  // One positive found immediately, but R = 4 -> AP = (1/1)/4.
  std::vector<char> rel = {1, 0, 0};
  EXPECT_NEAR(TaskAp(rel, 4, 10), 0.25, 1e-12);
}

TEST(TaskApTest, RCappedAtTarget) {
  // 100 relevant in db but target 10: perfect prefix of 10 gives AP 1.
  std::vector<char> rel(10, 1);
  EXPECT_DOUBLE_EQ(TaskAp(rel, 100, 10), 1.0);
}

TEST(TaskApTest, OnlyFirstTargetPositivesCount) {
  // 12 positives inspected; the 11th and 12th are ignored.
  std::vector<char> rel(12, 1);
  EXPECT_DOUBLE_EQ(TaskAp(rel, 100, 10), 1.0);
}

TEST(TaskApTest, EarlierPositivesScoreHigher) {
  std::vector<char> early = {1, 1, 0, 0, 0, 0};
  std::vector<char> late = {0, 0, 0, 0, 1, 1};
  EXPECT_GT(TaskAp(early, 2, 10), TaskAp(late, 2, 10));
}

// ---------------------------------------------------------- FullRankingAp --

TEST(FullRankingApTest, PerfectRankingIsOne) {
  std::vector<float> scores = {0.9f, 0.8f, 0.1f, 0.05f};
  std::vector<char> labels = {1, 1, 0, 0};
  EXPECT_DOUBLE_EQ(FullRankingAp(scores, labels), 1.0);
}

TEST(FullRankingApTest, WorstRankingKnownValue) {
  std::vector<float> scores = {0.9f, 0.8f, 0.1f, 0.05f};
  std::vector<char> labels = {0, 0, 1, 1};
  // positives at ranks 3 and 4: AP = (1/3 + 2/4)/2.
  EXPECT_NEAR(FullRankingAp(scores, labels), (1.0 / 3 + 0.5) / 2, 1e-12);
}

TEST(FullRankingApTest, NoPositivesIsZero) {
  EXPECT_DOUBLE_EQ(FullRankingAp({1.0f, 0.5f}, {0, 0}), 0.0);
}

TEST(FullRankingApTest, PermutingNonRelevantTailInvariant) {
  std::vector<float> scores = {0.9f, 0.5f, 0.4f, 0.3f};
  std::vector<char> labels = {1, 0, 0, 0};
  double base = FullRankingAp(scores, labels);
  std::vector<float> permuted = {0.9f, 0.3f, 0.4f, 0.5f};
  EXPECT_DOUBLE_EQ(FullRankingAp(permuted, labels), base);
}

// ------------------------------------------------------------- statistics --

TEST(StatsTest, MeanMedianQuantile) {
  std::vector<double> v = {1, 2, 3, 4, 100};
  EXPECT_DOUBLE_EQ(Mean(v), 22.0);
  EXPECT_DOUBLE_EQ(Median(v), 3.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 100.0);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
}

TEST(StatsTest, CdfIsMonotone) {
  auto cdf = Cdf({3.0, 1.0, 2.0});
  ASSERT_EQ(cdf.size(), 3u);
  EXPECT_DOUBLE_EQ(cdf[0].first, 1.0);
  EXPECT_DOUBLE_EQ(cdf[0].second, 1.0 / 3);
  EXPECT_DOUBLE_EQ(cdf[2].second, 1.0);
}

TEST(StatsTest, FractionBelow) {
  EXPECT_DOUBLE_EQ(FractionBelow({0.1, 0.5, 0.9}, 0.5), 1.0 / 3);
  EXPECT_DOUBLE_EQ(FractionBelow({}, 0.5), 0.0);
}

TEST(StatsTest, BootstrapCiCoversTheMean) {
  Rng rng(1);
  std::vector<double> v;
  for (int i = 0; i < 500; ++i) v.push_back(rng.Gaussian(10.0, 2.0));
  auto ci = BootstrapCiMean(v);
  EXPECT_LT(ci.lo, 10.1);
  EXPECT_GT(ci.hi, 9.9);
  EXPECT_LT(ci.hi - ci.lo, 1.0);
  auto ci_med = BootstrapCiMedian(v);
  EXPECT_LT(ci_med.lo, ci_med.hi);
}

// ------------------------------------------------------------ TaskRunner --

struct Fixture {
  std::unique_ptr<data::Dataset> dataset;
  std::unique_ptr<core::EmbeddedDataset> embedded;
};

Fixture MakeFixture() {
  auto profile = data::CocoLikeProfile(0.05);
  profile.embedding_dim = 32;
  auto ds = data::Dataset::Generate(profile);
  EXPECT_TRUE(ds.ok());
  Fixture f;
  f.dataset = std::make_unique<data::Dataset>(std::move(*ds));
  core::PreprocessOptions options;
  options.multiscale.enabled = false;
  options.build_md = false;
  auto ed = core::EmbeddedDataset::Build(*f.dataset, options);
  EXPECT_TRUE(ed.ok());
  f.embedded = std::make_unique<core::EmbeddedDataset>(std::move(*ed));
  return f;
}

TEST(TaskRunnerTest, StopsAtTargetOrBudget) {
  auto f = MakeFixture();
  core::SeeSawOptions zs;
  zs.update_query = false;
  core::SeeSawSearcher searcher(*f.embedded, f.embedded->TextQuery(0), zs);
  TaskOptions options;
  options.target_positives = 3;
  options.max_images = 20;
  auto result = RunSearchTask(searcher, *f.dataset, 0, options);
  EXPECT_LE(result.inspected, 20u);
  EXPECT_LE(result.found, 3u);
  EXPECT_EQ(result.relevance.size(), result.inspected);
  if (result.found == 3) {
    // Stopped exactly when the target was met.
    EXPECT_EQ(result.relevance.back(), 1);
  }
}

TEST(TaskRunnerTest, ApMatchesRelevanceSequence) {
  auto f = MakeFixture();
  core::SeeSawSearcher searcher(*f.embedded, f.embedded->TextQuery(0), {});
  TaskOptions options;
  auto result = RunSearchTask(searcher, *f.dataset, 0, options);
  EXPECT_NEAR(result.ap,
              TaskAp(result.relevance, f.dataset->positives(0).size(), 10),
              1e-12);
}

TEST(TaskRunnerTest, TracksTiming) {
  auto f = MakeFixture();
  core::SeeSawSearcher searcher(*f.embedded, f.embedded->TextQuery(1), {});
  auto result = RunSearchTask(searcher, *f.dataset, 1, {});
  EXPECT_GT(result.total_seconds, 0.0);
  EXPECT_GT(result.rounds, 0u);
  EXPECT_GT(result.seconds_per_round, 0.0);
}

TEST(TaskRunnerTest, RunBenchmarkCoversAllConcepts) {
  auto f = MakeFixture();
  auto concepts = f.dataset->EvaluableConcepts(3);
  concepts.resize(std::min<size_t>(concepts.size(), 5));
  auto factory = [&f](size_t concept_id) {
    core::SeeSawOptions zs;
    zs.update_query = false;
    return std::make_unique<core::SeeSawSearcher>(
        *f.embedded, f.embedded->TextQuery(concept_id), zs);
  };
  auto run = RunBenchmark(factory, *f.dataset, concepts, {});
  EXPECT_EQ(run.results.size(), concepts.size());
  EXPECT_EQ(run.Aps().size(), concepts.size());
  double mean = run.MeanAp();
  EXPECT_GE(mean, 0.0);
  EXPECT_LE(mean, 1.0);
}

TEST(TaskRunnerTest, EasyConceptScoresWell) {
  // Concept 0 is the most frequent with a likely low deficit: zero-shot
  // should find plenty within budget on COCO-like data.
  auto f = MakeFixture();
  core::SeeSawOptions zs;
  zs.update_query = false;
  // Find the evaluable concept with the most positives (easiest).
  auto concepts = f.dataset->EvaluableConcepts(3);
  size_t best = concepts[0];
  for (size_t c : concepts) {
    if (f.dataset->positives(c).size() > f.dataset->positives(best).size()) {
      best = c;
    }
  }
  core::SeeSawSearcher searcher(*f.embedded, f.embedded->TextQuery(best), zs);
  auto result = RunSearchTask(searcher, *f.dataset, best, {});
  EXPECT_GT(result.found, 0u);
}

}  // namespace
}  // namespace seesaw::eval
