#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "linalg/matrix.h"
#include "linalg/sparse.h"
#include "linalg/vector_ops.h"

namespace seesaw::linalg {
namespace {

// ------------------------------------------------------------ vector ops --

TEST(VectorOpsTest, DotBasic) {
  VectorF a = {1, 2, 3};
  VectorF b = {4, -5, 6};
  EXPECT_FLOAT_EQ(Dot(a, b), 4 - 10 + 18);
}

TEST(VectorOpsTest, DotHandlesTailAfterUnrolledBlocks) {
  // 7 elements exercises the 4-wide unroll plus a 3-long tail.
  VectorF a = {1, 1, 1, 1, 1, 1, 1};
  VectorF b = {1, 2, 3, 4, 5, 6, 7};
  EXPECT_FLOAT_EQ(Dot(a, b), 28);
}

TEST(VectorOpsTest, NormAndSquaredNorm) {
  VectorF a = {3, 4};
  EXPECT_FLOAT_EQ(SquaredNorm(a), 25);
  EXPECT_FLOAT_EQ(Norm(a), 5);
}

TEST(VectorOpsTest, SquaredDistance) {
  VectorF a = {1, 2, 3};
  VectorF b = {2, 0, 3};
  EXPECT_FLOAT_EQ(SquaredDistance(a, b), 1 + 4 + 0);
}

TEST(VectorOpsTest, AxpyAccumulates) {
  VectorF x = {1, 2};
  VectorF y = {10, 20};
  Axpy(2.0f, x, MutVecSpan(y));
  EXPECT_FLOAT_EQ(y[0], 12);
  EXPECT_FLOAT_EQ(y[1], 24);
}

TEST(VectorOpsTest, NormalizedProducesUnitVector) {
  VectorF a = {3, 0, 4};
  VectorF u = Normalized(a);
  EXPECT_NEAR(Norm(u), 1.0f, 1e-6f);
  EXPECT_NEAR(u[0], 0.6f, 1e-6f);
  EXPECT_NEAR(u[2], 0.8f, 1e-6f);
}

TEST(VectorOpsTest, NormalizeZeroVectorIsNoop) {
  VectorF a = {0, 0, 0};
  float n = NormalizeInPlace(MutVecSpan(a));
  EXPECT_FLOAT_EQ(n, 0.0f);
  EXPECT_FLOAT_EQ(a[0], 0.0f);
}

TEST(VectorOpsTest, AddSubScaled) {
  VectorF a = {1, 2};
  VectorF b = {3, 5};
  EXPECT_EQ(Add(a, b), (VectorF{4, 7}));
  EXPECT_EQ(Sub(b, a), (VectorF{2, 3}));
  EXPECT_EQ(Scaled(2.0f, a), (VectorF{2, 4}));
}

TEST(VectorOpsTest, CosineOfParallelAndOrthogonal) {
  VectorF a = {1, 0};
  VectorF b = {5, 0};
  VectorF c = {0, 2};
  EXPECT_NEAR(Cosine(a, b), 1.0f, 1e-6f);
  EXPECT_NEAR(Cosine(a, c), 0.0f, 1e-6f);
  VectorF zero = {0, 0};
  EXPECT_FLOAT_EQ(Cosine(a, zero), 0.0f);
}

// ---------------------------------------------------------------- matrix --

TEST(MatrixTest, FromRowsRoundTrip) {
  MatrixF m = MatrixF::FromRows({{1, 2, 3}, {4, 5, 6}});
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_FLOAT_EQ(m.At(1, 2), 6);
  EXPECT_FLOAT_EQ(m.Row(0)[1], 2);
}

TEST(MatrixTest, IdentityMatVec) {
  MatrixF id = MatrixF::Identity(3);
  VectorF x = {7, -2, 3};
  EXPECT_EQ(id.MatVec(x), x);
}

TEST(MatrixTest, MatVecAndTransposeMatVecAgreeWithManual) {
  MatrixF m = MatrixF::FromRows({{1, 2}, {3, 4}, {5, 6}});
  VectorF x = {1, 1};
  VectorF y = m.MatVec(x);
  EXPECT_EQ(y, (VectorF{3, 7, 11}));
  VectorF z = {1, 0, 1};
  VectorF t = m.TransposeMatVec(z);
  EXPECT_EQ(t, (VectorF{6, 8}));
}

TEST(MatrixTest, QuadraticFormMatchesExplicit) {
  MatrixF m = MatrixF::FromRows({{2, 1}, {1, 3}});
  VectorF x = {1, 2};
  // x^T M x = 2 + 2 + 2 + 12 = 18
  EXPECT_NEAR(m.QuadraticForm(x), 18.0, 1e-6);
}

TEST(MatrixTest, AddOuterProductRank1) {
  MatrixF m(2, 2, 0.0f);
  VectorF v = {1, 2};
  m.AddOuterProduct(2.0f, v);
  EXPECT_FLOAT_EQ(m.At(0, 0), 2);
  EXPECT_FLOAT_EQ(m.At(0, 1), 4);
  EXPECT_FLOAT_EQ(m.At(1, 0), 4);
  EXPECT_FLOAT_EQ(m.At(1, 1), 8);
}

TEST(MatrixTest, SymmetrizedAveragesOffDiagonal) {
  MatrixF m = MatrixF::FromRows({{1, 4}, {2, 5}});
  MatrixF s = m.Symmetrized();
  EXPECT_FLOAT_EQ(s.At(0, 1), 3);
  EXPECT_FLOAT_EQ(s.At(1, 0), 3);
  EXPECT_FLOAT_EQ(s.At(0, 0), 1);
}

TEST(MatrixTest, FrobeniusAndMaxAbs) {
  MatrixF m = MatrixF::FromRows({{3, 0}, {0, -4}});
  EXPECT_NEAR(m.FrobeniusNorm(), 5.0, 1e-9);
  EXPECT_FLOAT_EQ(m.MaxAbs(), 4.0f);
}

// ---------------------------------------------------------------- sparse --

TEST(SparseTest, FromTripletsSumsDuplicates) {
  SparseMatrixF m = SparseMatrixF::FromTriplets(
      2, 2, {{0, 0, 1.0f}, {0, 0, 2.0f}, {1, 0, 5.0f}});
  EXPECT_EQ(m.nnz(), 2u);
  VectorF y = m.Apply(VectorF{1, 1});
  EXPECT_FLOAT_EQ(y[0], 3);
  EXPECT_FLOAT_EQ(y[1], 5);
}

TEST(SparseTest, ApplyMatchesDense) {
  Rng rng(42);
  const size_t n = 20, m = 15;
  MatrixF dense(n, m, 0.0f);
  std::vector<Triplet> triplets;
  for (int e = 0; e < 60; ++e) {
    uint32_t r = static_cast<uint32_t>(rng.UniformInt(0, n - 1));
    uint32_t c = static_cast<uint32_t>(rng.UniformInt(0, m - 1));
    float v = static_cast<float>(rng.Gaussian());
    triplets.push_back({r, c, v});
    dense.At(r, c) += v;
  }
  SparseMatrixF sparse = SparseMatrixF::FromTriplets(n, m, triplets);
  VectorF x(m);
  for (auto& v : x) v = static_cast<float>(rng.Gaussian());
  VectorF ys = sparse.Apply(x);
  VectorF yd = dense.MatVec(x);
  for (size_t i = 0; i < n; ++i) EXPECT_NEAR(ys[i], yd[i], 1e-4f);
}

TEST(SparseTest, ApplyTransposeMatchesDense) {
  SparseMatrixF m =
      SparseMatrixF::FromTriplets(2, 3, {{0, 1, 2.0f}, {1, 2, 3.0f}});
  VectorF x = {1, 1};
  VectorF y = m.ApplyTranspose(x);
  EXPECT_EQ(y, (VectorF{0, 2, 3}));
}

TEST(SparseTest, RowSums) {
  SparseMatrixF m = SparseMatrixF::FromTriplets(
      2, 2, {{0, 0, 1.0f}, {0, 1, 2.0f}, {1, 1, 4.0f}});
  VectorF sums = m.RowSums();
  EXPECT_FLOAT_EQ(sums[0], 3);
  EXPECT_FLOAT_EQ(sums[1], 4);
}

TEST(SparseTest, SymmetrizedSumMirrorsEdges) {
  SparseMatrixF m = SparseMatrixF::FromTriplets(3, 3, {{0, 1, 2.0f}});
  SparseMatrixF s = m.SymmetrizedSum();
  EXPECT_EQ(s.nnz(), 2u);
  VectorF y = s.Apply(VectorF{1, 1, 0});
  EXPECT_FLOAT_EQ(y[0], 2);
  EXPECT_FLOAT_EQ(y[1], 2);
}

TEST(SparseTest, RowIterationSpans) {
  SparseMatrixF m = SparseMatrixF::FromTriplets(
      2, 3, {{0, 2, 5.0f}, {0, 0, 1.0f}, {1, 1, 7.0f}});
  auto idx0 = m.RowIndices(0);
  auto val0 = m.RowValues(0);
  ASSERT_EQ(idx0.size(), 2u);
  EXPECT_EQ(idx0[0], 0u);  // sorted by column
  EXPECT_EQ(idx0[1], 2u);
  EXPECT_FLOAT_EQ(val0[0], 1.0f);
  EXPECT_FLOAT_EQ(val0[1], 5.0f);
}

TEST(SparseTest, BilinearMatchesQuadraticExpansion) {
  // Laplacian-style check: x^T (D - W) x == sum_{edges} w_ij (x_i - x_j)^2
  // for a symmetric W with degrees on the diagonal of D.
  SparseMatrixF w = SparseMatrixF::FromTriplets(
      3, 3, {{0, 1, 2.0f}, {1, 0, 2.0f}, {1, 2, 1.0f}, {2, 1, 1.0f}});
  VectorF deg = w.RowSums();
  std::vector<Triplet> lap_t;
  for (uint32_t i = 0; i < 3; ++i) lap_t.push_back({i, i, deg[i]});
  for (uint32_t r = 0; r < 3; ++r) {
    auto idx = w.RowIndices(r);
    auto val = w.RowValues(r);
    for (size_t e = 0; e < idx.size(); ++e) {
      lap_t.push_back({r, idx[e], -val[e]});
    }
  }
  SparseMatrixF lap = SparseMatrixF::FromTriplets(3, 3, lap_t);
  VectorF x = {1.0f, 3.0f, 0.0f};
  double expected = 2.0 * (1 - 3) * (1 - 3) + 1.0 * (3 - 0) * (3 - 0);
  EXPECT_NEAR(lap.Bilinear(x, x), expected, 1e-5);
}

TEST(SparseTest, ProjectQuadraticMatchesBilinear) {
  // X^T A X compressed to d x d must reproduce w^T X^T A X w for any w.
  Rng rng(7);
  const size_t n = 30, d = 5;
  MatrixF x(n, d);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) {
      x.At(i, j) = static_cast<float>(rng.Gaussian());
    }
  }
  std::vector<Triplet> triplets;
  for (int e = 0; e < 100; ++e) {
    uint32_t r = static_cast<uint32_t>(rng.UniformInt(0, n - 1));
    uint32_t c = static_cast<uint32_t>(rng.UniformInt(0, n - 1));
    triplets.push_back({r, c, static_cast<float>(rng.Gaussian())});
  }
  SparseMatrixF a = SparseMatrixF::FromTriplets(n, n, triplets);
  MatrixF m = a.ProjectQuadratic(x);
  EXPECT_EQ(m.rows(), d);
  EXPECT_EQ(m.cols(), d);

  VectorF w(d);
  for (auto& v : w) v = static_cast<float>(rng.Gaussian());
  // w^T M w
  double direct = m.QuadraticForm(w);
  // (Xw)^T A (Xw)
  VectorF xw = x.MatVec(w);
  double expected = a.Bilinear(xw, xw);
  EXPECT_NEAR(direct, expected, 1e-2 * std::max(1.0, std::abs(expected)));
}

}  // namespace
}  // namespace seesaw::linalg
