// NUMA layer (common/numa.h) and its wiring: topology sanity, the
// degrade-to-no-op contract on hosts where placement cannot apply (single
// node, out-of-range node ids, sub-page ranges), data integrity across
// BindMemoryToNode, node-hinted thread-pool submission, and the ShardedStore
// placement parity sweep — a placed store must be bitwise identical to an
// unplaced one.
//
// CI runners are single-node, so the *fallback* path is what this suite
// proves exhaustively; on a real multi-node host the same assertions hold
// because placement is an optimization, never semantics. Nothing here may
// assert kApplied — whether placement engages is a host property.
#include "common/numa.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <numeric>
#include <vector>

#include "common/thread_pool.h"
#include "store/exact_store.h"
#include "store/sharded_store.h"
#include "tests/test_util.h"

namespace seesaw {
namespace {

using linalg::MatrixF;
using linalg::VecSpan;
using linalg::VectorF;
using test_util::AsSpans;
using test_util::ExpectIdenticalResults;
using test_util::RandomQueries;
using test_util::RandomSeenSet;
using test_util::RandomTable;

TEST(NumaTopologyTest, SaneOnEveryHost) {
  // The contract floor: at least one node, CurrentNode in range, and
  // Available() consistent with the node count.
  ASSERT_GE(numa::NodeCount(), size_t{1});
  EXPECT_EQ(numa::Available(), numa::NodeCount() > 1);
  EXPECT_LT(numa::CurrentNode(), numa::NodeCount());
  // Out-of-range lookups return an empty list, not UB.
  EXPECT_TRUE(numa::CpusOfNode(numa::NodeCount() + 17).empty());
}

TEST(NumaTopologyTest, NodeForShardRoundRobins) {
  for (size_t shard = 0; shard < 32; ++shard) {
    EXPECT_EQ(numa::NodeForShard(shard), shard % numa::NodeCount());
    EXPECT_LT(numa::NodeForShard(shard), numa::NodeCount());
  }
}

TEST(NumaPlacementTest, OutOfRangeNodeDegradesCleanly) {
  std::vector<float> buffer(4096, 1.5f);
  EXPECT_EQ(numa::BindMemoryToNode(buffer.data(),
                                   buffer.size() * sizeof(float),
                                   numa::NodeCount() + 3),
            numa::Placement::kDegraded);
  EXPECT_EQ(numa::PinThreadToNode(numa::NodeCount() + 3),
            numa::Placement::kDegraded);
  // Degradation must not have touched the data.
  for (float v : buffer) ASSERT_EQ(v, 1.5f);
}

TEST(NumaPlacementTest, SubPageRangeDegrades) {
  alignas(64) char tiny[64];
  EXPECT_EQ(numa::BindMemoryToNode(tiny, sizeof(tiny), 0),
            numa::Placement::kDegraded);
  EXPECT_EQ(numa::BindMemoryToNode(nullptr, 1 << 20, 0),
            numa::Placement::kDegraded);
}

TEST(NumaPlacementTest, BindPreservesContents) {
  // Whether the bind applies (multi-node) or degrades (this CI host), the
  // bytes must be untouched — placement moves pages, never data.
  std::vector<uint32_t> buffer(1 << 16);
  std::iota(buffer.begin(), buffer.end(), 7u);
  const size_t bytes = buffer.size() * sizeof(uint32_t);
  for (size_t node = 0; node < numa::NodeCount(); ++node) {
    (void)numa::BindMemoryToNode(buffer.data(), bytes, node);
    for (size_t i = 0; i < buffer.size(); ++i) {
      ASSERT_EQ(buffer[i], 7u + i) << "corrupted at " << i;
    }
  }
}

TEST(NumaPoolTest, HintedTasksRunOnAnyHost) {
  // Node-hinted submission must execute everywhere: on a single-node host
  // the hints fall through to the general queue; on a multi-node host they
  // land in per-node queues that still drain via the fallback pop order.
  ThreadPoolOptions options;
  options.numa_affinity = true;
  ThreadPool pool(3, options);
  EXPECT_EQ(pool.numa_affinity(), numa::Available());

  std::atomic<size_t> ran{0};
  std::vector<TaskHandle> handles;
  for (size_t i = 0; i < 64; ++i) {
    // Deliberately hint past NodeCount too: a bad hint is a preference for
    // a queue that does not exist, which routes to the general queue.
    handles.push_back(pool.SubmitWithResult(
        [&ran] { ran.fetch_add(1, std::memory_order_relaxed); }, i % 5));
  }
  for (auto& h : handles) h.Wait();
  EXPECT_EQ(ran.load(), 64u);
}

TEST(NumaPoolTest, WorkerNodesCoverAllNodes) {
  ThreadPoolOptions options;
  options.numa_affinity = true;
  ThreadPool pool(2 * numa::NodeCount(), options);
  for (size_t i = 0; i < pool.num_threads(); ++i) {
    if (pool.numa_affinity()) {
      EXPECT_EQ(pool.worker_node(i), i % numa::NodeCount());
    } else {
      EXPECT_EQ(pool.worker_node(i), 0u);
    }
  }
}

TEST(NumaShardedStoreTest, FallbackIsExactlyTheUnplacedStore) {
  // The non-NUMA-host fallback contract: numa_placement=true on a
  // single-node host must produce numa_placed()==false and node 0 for every
  // shard. (On a multi-node host numa_placed() is true instead; the parity
  // sweep below is the assertion that holds either way.)
  MatrixF table = RandomTable(512, 24, /*seed=*/11);
  store::ShardedOptions options;
  options.num_shards = 4;
  options.numa_placement = true;
  auto placed = store::ShardedStore::Create(table, options);
  ASSERT_TRUE(placed.ok());
  EXPECT_EQ(placed->numa_placed(), numa::Available());
  for (size_t s = 0; s < placed->num_shards(); ++s) {
    EXPECT_EQ(placed->shard_node(s), numa::NodeForShard(s));
  }
}

TEST(NumaShardedStoreTest, PlacementParitySweep) {
  // Placed vs unplaced must be bitwise identical across shard counts,
  // precisions, seen sets, and scalar/batched/pooled paths.
  constexpr size_t kRows = 700;
  constexpr size_t kDim = 32;
  MatrixF table = RandomTable(kRows, kDim, /*seed=*/21);
  std::vector<VectorF> queries = RandomQueries(6, kDim, /*seed=*/22);
  std::vector<VecSpan> spans = AsSpans(queries);
  store::SeenSet seen = RandomSeenSet(kRows, /*fraction=*/0.3, /*seed=*/23);

  ThreadPoolOptions pool_options;
  pool_options.numa_affinity = true;
  ThreadPool pool(3, pool_options);

  for (size_t shards : {size_t{1}, size_t{3}, size_t{8}}) {
    for (auto precision :
         {store::ScanPrecision::kFloat32, store::ScanPrecision::kInt8}) {
      store::ShardedOptions base;
      base.num_shards = shards;
      base.precision = precision;
      store::ShardedOptions with_numa = base;
      with_numa.numa_placement = true;

      auto unplaced = store::ShardedStore::Create(table, base);
      auto placed = store::ShardedStore::Create(table, with_numa);
      ASSERT_TRUE(unplaced.ok() && placed.ok());

      for (size_t k : {size_t{1}, size_t{17}, kRows + 5}) {
        for (const VecSpan& q : spans) {
          ExpectIdenticalResults(placed->TopK(q, k, seen),
                                 unplaced->TopK(q, k, seen));
        }
        auto a = unplaced->TopKBatch(spans, k, seen, &pool);
        auto b = placed->TopKBatch(spans, k, seen, &pool);
        ASSERT_EQ(a.size(), b.size());
        for (size_t qi = 0; qi < a.size(); ++qi) {
          ExpectIdenticalResults(b[qi], a[qi]);
        }
      }
    }
  }
}

}  // namespace
}  // namespace seesaw
