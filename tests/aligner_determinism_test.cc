// Aligner determinism: the same feedback sequence must yield
// bitwise-identical Align() output — across repeated runs, across a fresh
// clone (Snapshot + AlignWith), and under concurrent unrelated pool load.
// This is the invariant the refit-speculation consume check rests on: a
// speculative fit over a cloned snapshot predicts the real Refit() bit for
// bit exactly when the state did not change in between. See the determinism
// audits in core/aligner.h and optim/lbfgs.h.
#include "core/aligner.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "linalg/matrix.h"
#include "store/exact_store.h"
#include "store/seen_set.h"
#include "tests/test_util.h"

namespace seesaw::core {
namespace {

using linalg::MatrixF;
using linalg::VectorF;
using test_util::RandomQueries;
using test_util::RandomTable;

constexpr size_t kDim = 24;

VectorF UnitQuery(uint64_t seed) { return RandomQueries(1, kDim, seed)[0]; }

/// A deterministic feedback sequence over random patch vectors: alternating
/// labels with a positive bias, fixed insertion order.
struct FeedbackStep {
  size_t row;
  bool positive;
};

std::vector<FeedbackStep> MakeSequence(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<FeedbackStep> steps;
  for (size_t i = 0; i < n; ++i) {
    steps.push_back({i, rng.Uniform() < 0.4});
  }
  return steps;
}

void ExpectBitwiseEqual(const VectorF& a, const VectorF& b,
                        const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (size_t j = 0; j < a.size(); ++j) {
    EXPECT_EQ(a[j], b[j]) << what << " dim " << j;  // bitwise (float ==)
  }
}

TEST(AlignerDeterminismTest, RepeatedRunsAreBitwiseIdentical) {
  // Two independent aligners fed the identical sequence must produce
  // bitwise-identical queries at every refit round — including with warm
  // starts accumulating across rounds.
  MatrixF table = RandomTable(40, kDim, 5);
  VectorF q0 = UnitQuery(6);
  AlignerOptions options;
  QueryAligner a(options, q0, nullptr);
  QueryAligner b(options, q0, nullptr);
  auto steps = MakeSequence(24, 7);
  for (size_t round = 0; round < 4; ++round) {
    for (size_t i = round * 6; i < (round + 1) * 6; ++i) {
      a.AddFeedback(table.Row(steps[i].row), steps[i].positive);
      b.AddFeedback(table.Row(steps[i].row), steps[i].positive);
    }
    auto qa = a.Align();
    auto qb = b.Align();
    ASSERT_TRUE(qa.ok());
    ASSERT_TRUE(qb.ok());
    ExpectBitwiseEqual(*qa, *qb, "independent aligners");
    // The solver did identical work, not just reached identical bits.
    EXPECT_EQ(a.last_result().iterations, b.last_result().iterations);
    EXPECT_EQ(a.last_result().function_evals, b.last_result().function_evals);
  }
}

TEST(AlignerDeterminismTest, SnapshotAlignWithMatchesLiveAlign) {
  // The speculative path: AlignWith over a fresh clone must predict the
  // live Align() bitwise at every round — and, being const, must not
  // perturb the live aligner's subsequent rounds.
  MatrixF table = RandomTable(40, kDim, 15);
  VectorF q0 = UnitQuery(16);
  AlignerOptions options;
  QueryAligner live(options, q0, nullptr);
  QueryAligner control(options, q0, nullptr);  // never snapshotted
  auto steps = MakeSequence(30, 17);
  for (size_t round = 0; round < 5; ++round) {
    for (size_t i = round * 6; i < (round + 1) * 6; ++i) {
      live.AddFeedback(table.Row(steps[i].row), steps[i].positive);
      control.AddFeedback(table.Row(steps[i].row), steps[i].positive);
    }
    AlignerSnapshot snapshot = live.Snapshot();
    EXPECT_EQ(snapshot.fit_generation, live.fit_generation());
    auto predicted = QueryAligner::AlignWith(snapshot);
    // Run the speculative fit twice to cover fit-vs-fit reproducibility too.
    auto predicted_again = QueryAligner::AlignWith(snapshot);
    auto real = live.Align();
    auto undisturbed = control.Align();
    ASSERT_TRUE(predicted.ok());
    ASSERT_TRUE(predicted_again.ok());
    ASSERT_TRUE(real.ok());
    ASSERT_TRUE(undisturbed.ok());
    ExpectBitwiseEqual(*predicted, *real, "snapshot vs live");
    ExpectBitwiseEqual(*predicted, *predicted_again, "snapshot repeat");
    ExpectBitwiseEqual(*real, *undisturbed, "live vs undisturbed control");
  }
}

TEST(AlignerDeterminismTest, AlignWithUnderConcurrentPoolLoadIsStable) {
  // The refit speculation runs AlignWith on a pool worker while other
  // sessions hammer the same pool with store scans. Neither the unrelated
  // load nor running several speculative fits at once may change a single
  // bit of the result.
  MatrixF table = RandomTable(64, kDim, 25);
  VectorF q0 = UnitQuery(26);
  QueryAligner live(AlignerOptions{}, q0, nullptr);
  auto steps = MakeSequence(20, 27);
  for (const FeedbackStep& s : steps) {
    live.AddFeedback(table.Row(s.row), s.positive);
  }
  auto snapshot = std::make_shared<AlignerSnapshot>(live.Snapshot());
  auto reference = QueryAligner::AlignWith(*snapshot);
  ASSERT_TRUE(reference.ok());

  // Unrelated load: batched scans over a store on the same pool.
  auto store = store::ExactStore::Create(RandomTable(2000, kDim, 28));
  ASSERT_TRUE(store.ok());
  auto queries = RandomQueries(4, kDim, 29);
  std::vector<linalg::VecSpan> spans = test_util::AsSpans(queries);
  ThreadPool pool(4);
  std::atomic<bool> stop{false};
  std::thread load([&] {
    while (!stop.load()) {
      store->TopKBatch(std::span<const linalg::VecSpan>(spans), 25,
                       store::EmptySeenSet(), &pool);
    }
  });

  const int kFits = 8;
  std::vector<VectorF> results(kFits);
  std::vector<TaskHandle> handles;
  for (int i = 0; i < kFits; ++i) {
    handles.push_back(pool.SubmitWithResult([snapshot, &results, i] {
      auto r = QueryAligner::AlignWith(*snapshot);
      if (r.ok()) results[i] = *std::move(r);
    }));
  }
  for (TaskHandle& h : handles) h.Wait();
  stop.store(true);
  load.join();
  for (int i = 0; i < kFits; ++i) {
    ExpectBitwiseEqual(results[i], *reference, "fit under pool load");
  }
  // And the live aligner, untouched by any of it, still agrees.
  auto real = live.Align();
  ASSERT_TRUE(real.ok());
  ExpectBitwiseEqual(*real, *reference, "live align after load");
}

TEST(AlignerDeterminismTest, FitGenerationTracksEveryStateChange) {
  // The generation counter versions exactly the state Align() reads; every
  // mutation class bumps it (the speculation stack keys arm-time clones off
  // it in diagnostics).
  MatrixF table = RandomTable(4, kDim, 35);
  QueryAligner aligner(AlignerOptions{}, UnitQuery(36), nullptr);
  uint64_t g0 = aligner.fit_generation();
  aligner.AddFeedback(table.Row(0), true);
  EXPECT_GT(aligner.fit_generation(), g0);
  uint64_t g1 = aligner.fit_generation();
  aligner.AddSoftFeedback(table.Row(1), 0.5f);
  EXPECT_GT(aligner.fit_generation(), g1);
  uint64_t g2 = aligner.fit_generation();
  AlignerOptions changed;
  changed.lbfgs.max_iterations = 7;
  aligner.set_options(changed);
  EXPECT_GT(aligner.fit_generation(), g2);
  EXPECT_EQ(aligner.options().lbfgs.max_iterations, 7);
  uint64_t g3 = aligner.fit_generation();
  aligner.Reset();
  EXPECT_GT(aligner.fit_generation(), g3);
  EXPECT_EQ(aligner.num_examples(), 0u);
  // Align() itself is a read: it must not bump the generation.
  uint64_t g4 = aligner.fit_generation();
  ASSERT_TRUE(aligner.Align().ok());
  EXPECT_EQ(aligner.fit_generation(), g4);
}

TEST(AlignerDeterminismTest, NoFeedbackAndDegenerateCasesStayDeterministic) {
  // Align() with no feedback returns q0 verbatim on both paths.
  VectorF q0 = UnitQuery(46);
  QueryAligner aligner(AlignerOptions{}, q0, nullptr);
  auto a = aligner.Align();
  auto b = QueryAligner::AlignWith(aligner.Snapshot());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ExpectBitwiseEqual(*a, q0, "no-feedback align");
  ExpectBitwiseEqual(*b, q0, "no-feedback snapshot align");
}

}  // namespace
}  // namespace seesaw::core
