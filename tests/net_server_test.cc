// SeeSawServer over loopback TCP: full-session round trips with bitwise
// parity against an in-process session, typed error replies (NOT_FOUND,
// QUOTA_EXCEEDED), graceful shedding (RETRY_LATER on busy sessions and on
// the connection cap), malformed/truncated/hostile frame handling, TTL
// eviction visible over the wire, and clean shutdown with clients attached.
#include "net/server.h"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>

#include "core/session_manager.h"
#include "data/profiles.h"
#include "net/client.h"
#include "net/socket.h"
#include "net/wire.h"

namespace seesaw {
namespace {

data::DatasetProfile SmallBdd() {
  auto p = data::BddLikeProfile(0.05);
  p.embedding_dim = 32;
  return p;
}

struct ServiceFixture {
  ServiceFixture() {
    auto ds = data::Dataset::Generate(SmallBdd());
    SEESAW_CHECK(ds.ok());
    dataset = std::make_unique<data::Dataset>(std::move(*ds));
    core::ServiceOptions options;
    options.preprocess.md.k = 5;
    options.session_threads = 2;
    auto svc = core::SeeSawService::Create(*dataset, options);
    SEESAW_CHECK(svc.ok());
    service = std::make_unique<core::SeeSawService>(std::move(*svc));
  }

  std::unique_ptr<data::Dataset> dataset;
  std::unique_ptr<core::SeeSawService> service;
};

ServiceFixture& Fixture() {
  static ServiceFixture* fixture = new ServiceFixture();
  return *fixture;
}

core::SessionLimits ServingLimits() {
  core::SessionLimits limits;
  limits.max_inflight_per_session = 1;
  return limits;
}

/// A manager + running server on an ephemeral loopback port.
struct ServerFixture {
  explicit ServerFixture(const core::SessionLimits& limits = ServingLimits(),
                         net::ServerOptions options = {})
      : manager(*Fixture().service, /*num_threads=*/2, {}, limits),
        server(manager, [&options] {
          options.port = 0;
          return options;
        }()) {
    auto started = server.Start();
    SEESAW_CHECK(started.ok()) << started.ToString();
  }

  net::SeeSawClient Client() {
    auto client = net::SeeSawClient::Connect("127.0.0.1", server.port());
    SEESAW_CHECK(client.ok()) << client.status().ToString();
    return std::move(*client);
  }

  core::SessionManager manager;
  net::SeeSawServer server;
};

/// Reads one whole frame off a raw blocking socket.
bool ReadFrame(int fd, net::FrameHeader* header, std::string* payload) {
  std::string bytes;
  if (!net::ReadExactly(fd, net::kHeaderBytes, &bytes).ok()) return false;
  if (!net::DecodeHeader(bytes, header)) return false;
  payload->clear();
  if (header->payload_len == 0) return true;
  return net::ReadExactly(fd, header->payload_len, payload).ok();
}

TEST(NetServerTest, PingRoundTrip) {
  ServerFixture f;
  auto client = f.Client();
  EXPECT_TRUE(client.Ping().ok());
  EXPECT_EQ(client.last_wire_error(), net::WireError::kNone);
}

TEST(NetServerTest, FullSessionParityWithInProcess) {
  ServerFixture f;
  auto client = f.Client();

  // Two sessions over the same service, same query: one over the wire, one
  // in-process. Every reply must match the in-process result bitwise.
  auto wire_id = client.CreateSession("car");
  ASSERT_TRUE(wire_id.ok()) << wire_id.status().ToString();
  auto local_id = f.manager.CreateSession("car");
  ASSERT_TRUE(local_id.ok());
  auto local = f.manager.Find(*local_id);
  ASSERT_NE(local, nullptr);

  auto wire_batch = client.NextBatch(*wire_id, 10);
  ASSERT_TRUE(wire_batch.ok()) << wire_batch.status().ToString();
  auto local_batch = local->NextBatch(10);
  ASSERT_EQ(wire_batch->size(), local_batch.size());
  for (size_t i = 0; i < local_batch.size(); ++i) {
    EXPECT_EQ((*wire_batch)[i].image_idx, local_batch[i].image_idx);
    EXPECT_EQ((*wire_batch)[i].score, local_batch[i].score);
  }

  // Feedback + refit on both; the refit must shift both identically.
  core::ImageFeedback feedback;
  feedback.image_idx = local_batch.front().image_idx;
  feedback.relevant = true;
  feedback.boxes = {{0.1f, 0.1f, 0.9f, 0.9f}};
  ASSERT_TRUE(client.AddFeedback(*wire_id, feedback).ok());
  local->AddFeedback(feedback);
  ASSERT_TRUE(client.Refit(*wire_id).ok());
  ASSERT_TRUE(local->Refit().ok());

  auto wire_batch2 = client.NextBatch(*wire_id, 10);
  ASSERT_TRUE(wire_batch2.ok());
  auto local_batch2 = local->NextBatch(10);
  ASSERT_EQ(wire_batch2->size(), local_batch2.size());
  for (size_t i = 0; i < local_batch2.size(); ++i) {
    EXPECT_EQ((*wire_batch2)[i].image_idx, local_batch2[i].image_idx);
    EXPECT_EQ((*wire_batch2)[i].score, local_batch2[i].score);
  }

  // Close over the wire; the id is gone for both wire and manager.
  ASSERT_TRUE(client.CloseSession(*wire_id).ok());
  auto gone = client.NextBatch(*wire_id, 3);
  ASSERT_FALSE(gone.ok());
  EXPECT_EQ(client.last_wire_error(), net::WireError::kNotFound);
  EXPECT_EQ(f.manager.Find(*wire_id), nullptr);
}

TEST(NetServerTest, UnknownSessionIsNotFound) {
  ServerFixture f;
  auto client = f.Client();
  auto batch = client.NextBatch(424242, 5);
  ASSERT_FALSE(batch.ok());
  EXPECT_TRUE(batch.status().IsNotFound());
  EXPECT_EQ(client.last_wire_error(), net::WireError::kNotFound);
}

TEST(NetServerTest, UnknownQueryIsNotFound) {
  ServerFixture f;
  auto client = f.Client();
  auto id = client.CreateSession("no-such-concept-name");
  ASSERT_FALSE(id.ok());
  EXPECT_EQ(client.last_wire_error(), net::WireError::kNotFound);
}

TEST(NetServerTest, QuotaExceededIsTyped) {
  core::SessionLimits limits = ServingLimits();
  limits.max_sessions_per_user = 1;
  ServerFixture f(limits);
  auto client = f.Client();

  ASSERT_TRUE(client.CreateSession("car", "alice").ok());
  auto second = client.CreateSession("car", "alice");
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(client.last_wire_error(), net::WireError::kQuotaExceeded);
  EXPECT_FALSE(net::IsRetriable(client.last_wire_error()));

  // Another user is unaffected, over the same connection.
  EXPECT_TRUE(client.CreateSession("car", "bob").ok());
}

TEST(NetServerTest, BusySessionShedsRetryLaterThenRecovers) {
  ServerFixture f;  // in-flight cap 1
  auto client = f.Client();
  auto id = client.CreateSession("car");
  ASSERT_TRUE(id.ok());

  {
    // Hold the session's single in-flight slot in-process, simulating a
    // concurrent request caught mid-execution.
    auto lease = f.manager.Acquire(*id);
    ASSERT_TRUE(lease.ok());

    auto shed = client.NextBatch(*id, 5);
    ASSERT_FALSE(shed.ok());
    EXPECT_EQ(shed.status().code(), StatusCode::kResourceExhausted);
    EXPECT_EQ(client.last_wire_error(), net::WireError::kRetryLater);
    EXPECT_TRUE(net::IsRetriable(client.last_wire_error()));
  }  // slot released

  // Shed-then-retry round trip: the identical resent call is admitted.
  auto retry = client.NextBatch(*id, 5);
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  EXPECT_FALSE(retry->empty());
  EXPECT_GE(f.server.stats().requests_shed, 1u);
}

TEST(NetServerTest, ConnectionCapShedsWithTypedFrame) {
  net::ServerOptions options;
  options.max_connections = 1;
  ServerFixture f(ServingLimits(), options);

  auto first = f.Client();
  ASSERT_TRUE(first.Ping().ok());  // guarantees the loop registered it

  // Second connection: accepted just long enough to receive one typed
  // RETRY_LATER frame, then closed.
  auto raw = net::ConnectTcp("127.0.0.1", f.server.port());
  ASSERT_TRUE(raw.ok());
  net::FrameHeader header;
  std::string payload;
  ASSERT_TRUE(ReadFrame(raw->get(), &header, &payload));
  EXPECT_EQ(header.type, net::FrameType::kError);
  net::ErrorReply error;
  ASSERT_TRUE(net::DecodeErrorReply(payload, &error));
  EXPECT_EQ(error.code, net::WireError::kRetryLater);
  // Then EOF.
  std::string rest;
  EXPECT_FALSE(net::ReadExactly(raw->get(), 1, &rest).ok());
  EXPECT_GE(f.server.stats().connections_shed, 1u);

  // The first connection still serves.
  EXPECT_TRUE(first.Ping().ok());
}

TEST(NetServerTest, MalformedMagicGetsErrorAndClose) {
  ServerFixture f;
  auto raw = net::ConnectTcp("127.0.0.1", f.server.port());
  ASSERT_TRUE(raw.ok());
  std::string garbage(64, '\x5A');
  ASSERT_TRUE(net::WriteAll(raw->get(), garbage).ok());

  net::FrameHeader header;
  std::string payload;
  ASSERT_TRUE(ReadFrame(raw->get(), &header, &payload));
  EXPECT_EQ(header.type, net::FrameType::kError);
  net::ErrorReply error;
  ASSERT_TRUE(net::DecodeErrorReply(payload, &error));
  EXPECT_EQ(error.code, net::WireError::kMalformedFrame);
  std::string rest;
  EXPECT_FALSE(net::ReadExactly(raw->get(), 1, &rest).ok());  // closed
  EXPECT_GE(f.server.stats().malformed_frames, 1u);
}

TEST(NetServerTest, OversizedPayloadIsMalformed) {
  net::ServerOptions options;
  options.max_payload_bytes = 256;
  ServerFixture f(ServingLimits(), options);
  auto raw = net::ConnectTcp("127.0.0.1", f.server.port());
  ASSERT_TRUE(raw.ok());

  // A valid header whose length prefix promises more than the cap.
  net::WireWriter w;
  w.U32(net::kMagic);
  w.U16(net::kProtocolVersion);
  w.U16(static_cast<uint16_t>(net::FrameType::kPing));
  w.U64(7);
  w.U32(1 << 20);
  ASSERT_TRUE(net::WriteAll(raw->get(), w.bytes()).ok());

  net::FrameHeader header;
  std::string payload;
  ASSERT_TRUE(ReadFrame(raw->get(), &header, &payload));
  EXPECT_EQ(header.type, net::FrameType::kError);
  EXPECT_EQ(header.request_id, 7u);
  net::ErrorReply error;
  ASSERT_TRUE(net::DecodeErrorReply(payload, &error));
  EXPECT_EQ(error.code, net::WireError::kMalformedFrame);
}

TEST(NetServerTest, UnsupportedVersionIsTypedAndCloses) {
  ServerFixture f;
  auto raw = net::ConnectTcp("127.0.0.1", f.server.port());
  ASSERT_TRUE(raw.ok());

  net::WireWriter w;
  w.U32(net::kMagic);
  w.U16(99);  // future protocol version
  w.U16(static_cast<uint16_t>(net::FrameType::kPing));
  w.U64(13);
  w.U32(0);
  ASSERT_TRUE(net::WriteAll(raw->get(), w.bytes()).ok());

  net::FrameHeader header;
  std::string payload;
  ASSERT_TRUE(ReadFrame(raw->get(), &header, &payload));
  EXPECT_EQ(header.type, net::FrameType::kError);
  EXPECT_EQ(header.request_id, 13u);
  net::ErrorReply error;
  ASSERT_TRUE(net::DecodeErrorReply(payload, &error));
  EXPECT_EQ(error.code, net::WireError::kUnsupportedVersion);
  std::string rest;
  EXPECT_FALSE(net::ReadExactly(raw->get(), 1, &rest).ok());
}

TEST(NetServerTest, UnknownTypeKeepsConnectionAlive) {
  ServerFixture f;
  auto raw = net::ConnectTcp("127.0.0.1", f.server.port());
  ASSERT_TRUE(raw.ok());

  // Unknown type: typed error, but framing is intact so the connection
  // survives and a following ping works.
  ASSERT_TRUE(net::WriteAll(raw->get(),
                            net::EncodeFrame(static_cast<net::FrameType>(0x42),
                                             21, ""))
                  .ok());
  net::FrameHeader header;
  std::string payload;
  ASSERT_TRUE(ReadFrame(raw->get(), &header, &payload));
  EXPECT_EQ(header.type, net::FrameType::kError);
  net::ErrorReply error;
  ASSERT_TRUE(net::DecodeErrorReply(payload, &error));
  EXPECT_EQ(error.code, net::WireError::kUnknownType);

  ASSERT_TRUE(
      net::WriteAll(raw->get(),
                    net::EncodeFrame(net::FrameType::kPing, 22, ""))
          .ok());
  ASSERT_TRUE(ReadFrame(raw->get(), &header, &payload));
  EXPECT_EQ(header.type, net::FrameType::kPingReply);
  EXPECT_EQ(header.request_id, 22u);
}

TEST(NetServerTest, TruncatedFrameThenDisconnectIsHarmless) {
  ServerFixture f;
  {
    auto raw = net::ConnectTcp("127.0.0.1", f.server.port());
    ASSERT_TRUE(raw.ok());
    std::string frame = net::EncodeFrame(net::FrameType::kPing, 1, "");
    ASSERT_TRUE(
        net::WriteAll(raw->get(), frame.substr(0, net::kHeaderBytes / 2))
            .ok());
  }  // half a frame, then the socket closes
  // The server survives: a fresh connection round-trips fine.
  auto client = f.Client();
  EXPECT_TRUE(client.Ping().ok());
}

TEST(NetServerTest, MalformedBodyOfValidFrameIsTyped) {
  ServerFixture f;
  auto raw = net::ConnectTcp("127.0.0.1", f.server.port());
  ASSERT_TRUE(raw.ok());
  // Well-framed NextBatch whose body is one byte short of a valid payload.
  std::string body = net::EncodeNextBatchRequest({1, 5});
  body.pop_back();
  ASSERT_TRUE(
      net::WriteAll(raw->get(),
                    net::EncodeFrame(net::FrameType::kNextBatch, 31, body))
          .ok());
  net::FrameHeader header;
  std::string payload;
  ASSERT_TRUE(ReadFrame(raw->get(), &header, &payload));
  EXPECT_EQ(header.type, net::FrameType::kError);
  EXPECT_EQ(header.request_id, 31u);
  net::ErrorReply error;
  ASSERT_TRUE(net::DecodeErrorReply(payload, &error));
  EXPECT_EQ(error.code, net::WireError::kMalformedFrame);
}

TEST(NetServerTest, TtlEvictionIsVisibleOverTheWire) {
  core::SessionLimits limits = ServingLimits();
  limits.idle_ttl_seconds = 0.05;
  net::ServerOptions options;
  options.sweep_interval_seconds = 0.02;
  ServerFixture f(limits, options);
  auto client = f.Client();

  auto id = client.CreateSession("car");
  ASSERT_TRUE(id.ok());
  // Go idle past the TTL; the server's periodic sweep evicts the session.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  auto batch = client.NextBatch(*id, 3);
  ASSERT_FALSE(batch.ok());
  EXPECT_EQ(client.last_wire_error(), net::WireError::kNotFound);
  EXPECT_GE(f.server.stats().sessions_evicted, 1u);
  EXPECT_EQ(f.manager.lifecycle_stats().evicted, 1u);
}

TEST(NetServerTest, StopDrainsWithClientsAttached) {
  auto f = std::make_unique<ServerFixture>();
  auto client = f->Client();
  auto id = client.CreateSession("car");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(client.NextBatch(*id, 5).ok());

  f->server.Stop();
  // Sessions survive the front end stopping; only the transport is gone.
  EXPECT_EQ(f->manager.num_sessions(), 1u);
  auto dead = client.Ping();
  EXPECT_FALSE(dead.ok());

  // Stop is idempotent and the destructor tolerates a stopped server.
  f->server.Stop();
}

TEST(NetServerTest, ManyConcurrentClientsKeepParity) {
  // A small concurrency smoke under TSan: several client threads each run
  // an independent session; per-session results must equal an in-process
  // replica session driven with the same calls.
  ServerFixture f;
  constexpr int kClients = 8;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&f, &failures] {
      auto client_or = net::SeeSawClient::Connect("127.0.0.1",
                                                  f.server.port());
      if (!client_or.ok()) {
        failures.fetch_add(1);
        return;
      }
      auto client = std::move(*client_or);
      auto id = client.CreateSession("car");
      auto local_id = f.manager.CreateSession("car");
      if (!id.ok() || !local_id.ok()) {
        failures.fetch_add(1);
        return;
      }
      auto local = f.manager.Find(*local_id);
      for (int round = 0; round < 3; ++round) {
        auto wire = client.NextBatch(*id, 5);
        auto ref = local->NextBatch(5);
        if (!wire.ok() || wire->size() != ref.size()) {
          failures.fetch_add(1);
          return;
        }
        for (size_t i = 0; i < ref.size(); ++i) {
          if ((*wire)[i].image_idx != ref[i].image_idx ||
              (*wire)[i].score != ref[i].score) {
            failures.fetch_add(1);
            return;
          }
        }
      }
      client.CloseSession(*id);
      f.manager.Close(*local_id);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  // create + 3 batches + close per client, all successful.
  EXPECT_GE(f.server.stats().requests_ok, kClients * 5u);
}

TEST(NetServerTest, AdmissionCountersBalanceUnderPingStorm) {
  // Contention stress on the padded hot admission atomics (stop_,
  // queued_requests_, inflight_handlers_ — see the layout comment in
  // net/server.h): a burst of pipelined pings from several connections
  // drives the queue CAS loop and the in-flight acq_rel pair hard. The
  // gate is exact accounting — every frame sent is answered and lands in
  // exactly one stats bucket, which fails if a queue slot or in-flight
  // count is ever lost or double-released — plus a clean drain in Stop()
  // (the fixture destructor), which hangs if inflight_handlers_ leaks.
  net::ServerOptions options;
  options.max_queued_requests = 4;  // small queue so sheds actually happen
  ServerFixture f(ServingLimits(), options);

  constexpr int kConnections = 6;
  constexpr int kPingsEach = 120;
  std::atomic<size_t> answered{0};
  std::atomic<size_t> transport_failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kConnections);
  for (int c = 0; c < kConnections; ++c) {
    threads.emplace_back([&f, &answered, &transport_failures] {
      auto client_or =
          net::SeeSawClient::Connect("127.0.0.1", f.server.port());
      if (!client_or.ok()) {
        transport_failures.fetch_add(1);
        return;
      }
      auto client = std::move(*client_or);
      for (int i = 0; i < kPingsEach; ++i) {
        // RETRY_LATER (queue full) is a valid, counted answer here.
        (void)client.Ping();
        if (client.last_wire_error() == net::WireError::kNone ||
            client.last_wire_error() == net::WireError::kRetryLater) {
          answered.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_EQ(transport_failures.load(), 0u);
  EXPECT_EQ(answered.load(), size_t{kConnections} * kPingsEach);

  const net::ServerStats stats = f.server.stats();
  EXPECT_EQ(stats.requests_ok + stats.requests_shed + stats.requests_error,
            size_t{kConnections} * kPingsEach);
  EXPECT_EQ(stats.requests_error, 0u);
}

}  // namespace
}  // namespace seesaw
