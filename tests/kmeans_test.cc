#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "linalg/kmeans.h"

namespace seesaw::linalg {
namespace {

/// `clusters` well-separated Gaussian blobs of `per` points each.
MatrixF Blobs(size_t clusters, size_t per, size_t d, uint64_t seed) {
  Rng rng(seed);
  MatrixF points(clusters * per, d);
  for (size_t c = 0; c < clusters; ++c) {
    VectorF center(d);
    for (auto& v : center) v = static_cast<float>(rng.Gaussian(0, 10));
    for (size_t i = 0; i < per; ++i) {
      auto row = points.MutableRow(c * per + i);
      for (size_t j = 0; j < d; ++j) {
        row[j] = center[j] + static_cast<float>(rng.Gaussian(0, 0.5));
      }
    }
  }
  return points;
}

TEST(KMeansTest, ValidatesInput) {
  EXPECT_FALSE(KMeans(MatrixF(), {}).ok());
  KMeansOptions zero;
  zero.num_clusters = 0;
  EXPECT_FALSE(KMeans(MatrixF(4, 2), zero).ok());
}

TEST(KMeansTest, RecoversWellSeparatedBlobs) {
  MatrixF points = Blobs(4, 50, 8, 1);
  KMeansOptions options;
  options.num_clusters = 4;
  auto result = KMeans(points, options);
  ASSERT_TRUE(result.ok());
  // Every ground-truth blob maps to exactly one k-means cluster.
  for (size_t blob = 0; blob < 4; ++blob) {
    std::set<uint32_t> labels;
    for (size_t i = 0; i < 50; ++i) {
      labels.insert(result->assignment[blob * 50 + i]);
    }
    EXPECT_EQ(labels.size(), 1u) << "blob " << blob << " split";
  }
}

TEST(KMeansTest, KClampedToPointCount) {
  MatrixF points = Blobs(1, 3, 4, 2);
  KMeansOptions options;
  options.num_clusters = 10;
  auto result = KMeans(points, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->centroids.rows(), 3u);
}

TEST(KMeansTest, InertiaDecreasesWithMoreClusters) {
  MatrixF points = Blobs(6, 40, 8, 3);
  double prev = std::numeric_limits<double>::max();
  for (size_t k : {1u, 2u, 4u, 8u}) {
    KMeansOptions options;
    options.num_clusters = k;
    auto result = KMeans(points, options);
    ASSERT_TRUE(result.ok());
    EXPECT_LE(result->inertia, prev + 1e-3);
    prev = result->inertia;
  }
}

TEST(KMeansTest, DeterministicGivenSeed) {
  MatrixF points = Blobs(3, 30, 6, 4);
  KMeansOptions options;
  options.num_clusters = 3;
  auto a = KMeans(points, options);
  auto b = KMeans(points, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->assignment, b->assignment);
  EXPECT_DOUBLE_EQ(a->inertia, b->inertia);
}

TEST(KMeansTest, AssignmentsMatchNearestCentroid) {
  MatrixF points = Blobs(3, 40, 5, 5);
  KMeansOptions options;
  options.num_clusters = 5;
  auto result = KMeans(points, options);
  ASSERT_TRUE(result.ok());
  for (size_t i = 0; i < points.rows(); ++i) {
    float assigned =
        SquaredDistance(points.Row(i), result->centroids.Row(result->assignment[i]));
    for (size_t c = 0; c < result->centroids.rows(); ++c) {
      EXPECT_LE(assigned,
                SquaredDistance(points.Row(i), result->centroids.Row(c)) +
                    1e-3f);
    }
  }
}

}  // namespace
}  // namespace seesaw::linalg
