#include <gtest/gtest.h>

#include <set>

#include "clip/concept_space.h"
#include "common/rng.h"
#include "store/annoy_index.h"
#include "store/exact_store.h"
#include "tests/test_util.h"

namespace seesaw::store {
namespace {

using linalg::MatrixF;
using linalg::VectorF;
using test_util::ClusteredTable;
using test_util::RandomTable;

// ------------------------------------------------------------ ExactStore --

TEST(ExactStoreTest, RejectsEmptyTable) {
  EXPECT_FALSE(ExactStore::Create(MatrixF()).ok());
}

TEST(ExactStoreTest, FindsTheExactTopItem) {
  MatrixF table = MatrixF::FromRows({
      {1, 0}, {0, 1}, {0.7071f, 0.7071f}});
  auto store = ExactStore::Create(std::move(table));
  ASSERT_TRUE(store.ok());
  auto hits = store->TopK(VectorF{1, 0}, 1);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].id, 0u);
  EXPECT_FLOAT_EQ(hits[0].score, 1.0f);
}

TEST(ExactStoreTest, ResultsSortedDescending) {
  auto store = ExactStore::Create(RandomTable(200, 16, 1));
  ASSERT_TRUE(store.ok());
  VectorF q = VectorF(store->GetVector(0).begin(), store->GetVector(0).end());
  auto hits = store->TopK(q, 20);
  ASSERT_EQ(hits.size(), 20u);
  for (size_t i = 1; i < hits.size(); ++i) {
    EXPECT_GE(hits[i - 1].score, hits[i].score);
  }
  EXPECT_EQ(hits[0].id, 0u);  // the query vector itself
}

TEST(ExactStoreTest, KLargerThanStoreReturnsAll) {
  auto store = ExactStore::Create(RandomTable(5, 8, 2));
  ASSERT_TRUE(store.ok());
  VectorF q(8, 0.5f);
  EXPECT_EQ(store->TopK(q, 50).size(), 5u);
}

TEST(ExactStoreTest, ExclusionPredicateSkipsIds) {
  auto store = ExactStore::Create(RandomTable(50, 8, 3));
  ASSERT_TRUE(store.ok());
  VectorF q(store->GetVector(7).begin(), store->GetVector(7).end());
  auto all = store->TopK(q, 1);
  ASSERT_EQ(all[0].id, 7u);
  SeenSet seen(50);
  seen.Set(7);
  auto filtered = store->TopK(q, 5, seen);
  for (const auto& h : filtered) EXPECT_NE(h.id, 7u);
}

TEST(ExactStoreTest, ExcludingEverythingYieldsEmpty) {
  auto store = ExactStore::Create(RandomTable(10, 4, 4));
  ASSERT_TRUE(store.ok());
  SeenSet seen(10);
  for (uint32_t id = 0; id < 10; ++id) seen.Set(id);
  auto hits = store->TopK(VectorF(4, 1.0f), 3, seen);
  EXPECT_TRUE(hits.empty());
}

TEST(RecallAgainstTest, ComputesOverlapFraction) {
  std::vector<SearchResult> truth = {{1, .9f}, {2, .8f}, {3, .7f}, {4, .6f}};
  std::vector<SearchResult> got = {{2, .8f}, {9, .7f}, {4, .6f}, {8, .1f}};
  EXPECT_DOUBLE_EQ(RecallAgainst(got, truth), 0.5);
  EXPECT_DOUBLE_EQ(RecallAgainst(got, {}), 1.0);
}

TEST(RecallAgainstTest, DuplicateIdsCountOnce) {
  // Regression: set membership is not consumed, so a truth id repeated r
  // times counted r hits against one candidate and inflated recall (2/4
  // here instead of 1/3).
  std::vector<SearchResult> truth = {{1, .9f}, {1, .9f}, {2, .8f}, {3, .7f}};
  std::vector<SearchResult> got = {{1, .9f}, {9, .1f}};
  EXPECT_DOUBLE_EQ(RecallAgainst(got, truth), 1.0 / 3.0);
  // Duplicates in the candidate list must not recall an id twice either.
  std::vector<SearchResult> dup_got = {{2, .8f}, {2, .8f}, {9, .1f}};
  std::vector<SearchResult> four = {{1, .9f}, {2, .8f}, {3, .7f}, {4, .6f}};
  EXPECT_DOUBLE_EQ(RecallAgainst(dup_got, four), 0.25);
  // Fully duplicated truth recalled by a single candidate is exactly 1.
  std::vector<SearchResult> all_same = {{5, .5f}, {5, .5f}, {5, .5f}};
  EXPECT_DOUBLE_EQ(RecallAgainst({{5, .5f}}, all_same), 1.0);
}

// ------------------------------------------------------------ AnnoyIndex --

TEST(AnnoyIndexTest, ValidatesOptionsAndInput) {
  EXPECT_FALSE(AnnoyIndex::Build({}, MatrixF()).ok());
  AnnoyOptions bad_trees;
  bad_trees.num_trees = 0;
  EXPECT_FALSE(AnnoyIndex::Build(bad_trees, RandomTable(10, 4, 5)).ok());
  AnnoyOptions bad_leaf;
  bad_leaf.leaf_size = 1;
  EXPECT_FALSE(AnnoyIndex::Build(bad_leaf, RandomTable(10, 4, 5)).ok());
}

TEST(AnnoyIndexTest, ExactOnTinyData) {
  // With the whole dataset inside leaves, Annoy must equal the exact scan.
  MatrixF table = RandomTable(30, 8, 6);
  auto exact = ExactStore::Create(table);
  AnnoyOptions options;
  options.leaf_size = 32;
  auto annoy = AnnoyIndex::Build(options, std::move(table));
  ASSERT_TRUE(exact.ok());
  ASSERT_TRUE(annoy.ok());
  Rng rng(7);
  for (int t = 0; t < 10; ++t) {
    VectorF q = clip::RandomUnitVector(rng, 8);
    auto et = exact->TopK(q, 5);
    auto at = annoy->TopK(q, 5);
    EXPECT_GE(RecallAgainst(at, et), 0.99);
  }
}

TEST(AnnoyIndexTest, HandlesDuplicateVectors) {
  // All-identical vectors would break naive splitting; must still build.
  MatrixF table(100, 8, 0.0f);
  for (size_t i = 0; i < 100; ++i) table.At(i, 0) = 1.0f;
  auto annoy = AnnoyIndex::Build({}, std::move(table));
  ASSERT_TRUE(annoy.ok());
  auto hits = annoy->TopK(VectorF{1, 0, 0, 0, 0, 0, 0, 0}, 10);
  EXPECT_EQ(hits.size(), 10u);
}

TEST(AnnoyIndexTest, ExclusionWorks) {
  auto annoy = AnnoyIndex::Build({}, RandomTable(200, 16, 8));
  ASSERT_TRUE(annoy.ok());
  VectorF q(annoy->GetVector(3).begin(), annoy->GetVector(3).end());
  SeenSet seen(200);
  for (uint32_t id = 1; id < 200; id += 2) seen.Set(id);
  auto hits = annoy->TopK(q, 10, seen);
  for (const auto& h : hits) EXPECT_EQ(h.id % 2, 0u);
}

/// Recall sweep across build parameters: more trees must give high recall.
/// This is the §2.2 claim: approximate lookup with minor accuracy drop.
struct AnnoyParam {
  int num_trees;
  double min_recall;
};

class AnnoyRecallSweep : public ::testing::TestWithParam<AnnoyParam> {};

TEST_P(AnnoyRecallSweep, RecallAtTenExceedsThreshold) {
  const auto param = GetParam();
  const size_t n = 2000, d = 32;
  MatrixF table = ClusteredTable(n, d, 20, 9);
  auto exact = ExactStore::Create(table);
  AnnoyOptions options;
  options.num_trees = param.num_trees;
  options.leaf_size = 16;
  auto annoy = AnnoyIndex::Build(options, std::move(table));
  ASSERT_TRUE(exact.ok());
  ASSERT_TRUE(annoy.ok());

  Rng rng(10);
  double total_recall = 0.0;
  const int queries = 40;
  for (int t = 0; t < queries; ++t) {
    // Queries near the data manifold, like embedded text queries.
    size_t pick = static_cast<size_t>(rng.UniformInt(0, n - 1));
    VectorF q(exact->GetVector(static_cast<uint32_t>(pick)).begin(),
              exact->GetVector(static_cast<uint32_t>(pick)).end());
    VectorF jitter = clip::RandomUnitVector(rng, d);
    linalg::Axpy(0.3f, jitter, linalg::MutVecSpan(q));
    linalg::NormalizeInPlace(linalg::MutVecSpan(q));
    auto et = exact->TopK(q, 10);
    auto at = annoy->TopK(q, 10);
    total_recall += RecallAgainst(at, et);
  }
  EXPECT_GE(total_recall / queries, param.min_recall)
      << "num_trees=" << param.num_trees;
}

INSTANTIATE_TEST_SUITE_P(
    TreeCounts, AnnoyRecallSweep,
    ::testing::Values(AnnoyParam{4, 0.35}, AnnoyParam{8, 0.55},
                      AnnoyParam{16, 0.75}, AnnoyParam{32, 0.85}));

TEST(AnnoyIndexTest, MoreSearchKImprovesRecall) {
  const size_t n = 3000, d = 24;
  MatrixF table = RandomTable(n, d, 11);
  auto exact = ExactStore::Create(table);
  AnnoyOptions small_k;
  small_k.num_trees = 8;
  small_k.search_k = 40;
  AnnoyOptions big_k = small_k;
  big_k.search_k = 1200;
  auto annoy_small = AnnoyIndex::Build(small_k, table);
  auto annoy_big = AnnoyIndex::Build(big_k, std::move(table));
  ASSERT_TRUE(annoy_small.ok());
  ASSERT_TRUE(annoy_big.ok());

  Rng rng(12);
  double recall_small = 0, recall_big = 0;
  for (int t = 0; t < 30; ++t) {
    VectorF q = clip::RandomUnitVector(rng, d);
    auto et = exact->TopK(q, 10);
    recall_small += RecallAgainst(annoy_small->TopK(q, 10), et);
    recall_big += RecallAgainst(annoy_big->TopK(q, 10), et);
  }
  EXPECT_GT(recall_big, recall_small);
}

TEST(AnnoyIndexTest, DeterministicGivenSeed) {
  MatrixF table = RandomTable(500, 16, 13);
  auto a = AnnoyIndex::Build({}, table);
  auto b = AnnoyIndex::Build({}, std::move(table));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  Rng rng(14);
  VectorF q = clip::RandomUnitVector(rng, 16);
  auto ha = a->TopK(q, 10);
  auto hb = b->TopK(q, 10);
  ASSERT_EQ(ha.size(), hb.size());
  for (size_t i = 0; i < ha.size(); ++i) EXPECT_EQ(ha[i].id, hb[i].id);
}

}  // namespace
}  // namespace seesaw::store
