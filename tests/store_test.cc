#include <gtest/gtest.h>

#include <set>

#include "clip/concept_space.h"
#include "common/rng.h"
#include "store/annoy_index.h"
#include "store/exact_store.h"

namespace seesaw::store {
namespace {

using linalg::MatrixF;
using linalg::VectorF;

/// Random unit-vector table, like an embedding table.
MatrixF RandomTable(size_t n, size_t d, uint64_t seed) {
  Rng rng(seed);
  MatrixF table(n, d);
  for (size_t i = 0; i < n; ++i) {
    auto row = table.MutableRow(i);
    for (size_t j = 0; j < d; ++j) row[j] = static_cast<float>(rng.Gaussian());
    linalg::NormalizeInPlace(row);
  }
  return table;
}

// ------------------------------------------------------------ ExactStore --

TEST(ExactStoreTest, RejectsEmptyTable) {
  EXPECT_FALSE(ExactStore::Create(MatrixF()).ok());
}

TEST(ExactStoreTest, FindsTheExactTopItem) {
  MatrixF table = MatrixF::FromRows({
      {1, 0}, {0, 1}, {0.7071f, 0.7071f}});
  auto store = ExactStore::Create(std::move(table));
  ASSERT_TRUE(store.ok());
  auto hits = store->TopK(VectorF{1, 0}, 1);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].id, 0u);
  EXPECT_FLOAT_EQ(hits[0].score, 1.0f);
}

TEST(ExactStoreTest, ResultsSortedDescending) {
  auto store = ExactStore::Create(RandomTable(200, 16, 1));
  ASSERT_TRUE(store.ok());
  VectorF q = VectorF(store->GetVector(0).begin(), store->GetVector(0).end());
  auto hits = store->TopK(q, 20);
  ASSERT_EQ(hits.size(), 20u);
  for (size_t i = 1; i < hits.size(); ++i) {
    EXPECT_GE(hits[i - 1].score, hits[i].score);
  }
  EXPECT_EQ(hits[0].id, 0u);  // the query vector itself
}

TEST(ExactStoreTest, KLargerThanStoreReturnsAll) {
  auto store = ExactStore::Create(RandomTable(5, 8, 2));
  ASSERT_TRUE(store.ok());
  VectorF q(8, 0.5f);
  EXPECT_EQ(store->TopK(q, 50).size(), 5u);
}

TEST(ExactStoreTest, ExclusionPredicateSkipsIds) {
  auto store = ExactStore::Create(RandomTable(50, 8, 3));
  ASSERT_TRUE(store.ok());
  VectorF q(store->GetVector(7).begin(), store->GetVector(7).end());
  auto all = store->TopK(q, 1);
  ASSERT_EQ(all[0].id, 7u);
  SeenSet seen(50);
  seen.Set(7);
  auto filtered = store->TopK(q, 5, seen);
  for (const auto& h : filtered) EXPECT_NE(h.id, 7u);
}

TEST(ExactStoreTest, ExcludingEverythingYieldsEmpty) {
  auto store = ExactStore::Create(RandomTable(10, 4, 4));
  ASSERT_TRUE(store.ok());
  SeenSet seen(10);
  for (uint32_t id = 0; id < 10; ++id) seen.Set(id);
  auto hits = store->TopK(VectorF(4, 1.0f), 3, seen);
  EXPECT_TRUE(hits.empty());
}

TEST(RecallAgainstTest, ComputesOverlapFraction) {
  std::vector<SearchResult> truth = {{1, .9f}, {2, .8f}, {3, .7f}, {4, .6f}};
  std::vector<SearchResult> got = {{2, .8f}, {9, .7f}, {4, .6f}, {8, .1f}};
  EXPECT_DOUBLE_EQ(RecallAgainst(got, truth), 0.5);
  EXPECT_DOUBLE_EQ(RecallAgainst(got, {}), 1.0);
}

// ------------------------------------------------------------ AnnoyIndex --

TEST(AnnoyIndexTest, ValidatesOptionsAndInput) {
  EXPECT_FALSE(AnnoyIndex::Build({}, MatrixF()).ok());
  AnnoyOptions bad_trees;
  bad_trees.num_trees = 0;
  EXPECT_FALSE(AnnoyIndex::Build(bad_trees, RandomTable(10, 4, 5)).ok());
  AnnoyOptions bad_leaf;
  bad_leaf.leaf_size = 1;
  EXPECT_FALSE(AnnoyIndex::Build(bad_leaf, RandomTable(10, 4, 5)).ok());
}

TEST(AnnoyIndexTest, ExactOnTinyData) {
  // With the whole dataset inside leaves, Annoy must equal the exact scan.
  MatrixF table = RandomTable(30, 8, 6);
  auto exact = ExactStore::Create(table);
  AnnoyOptions options;
  options.leaf_size = 32;
  auto annoy = AnnoyIndex::Build(options, std::move(table));
  ASSERT_TRUE(exact.ok());
  ASSERT_TRUE(annoy.ok());
  Rng rng(7);
  for (int t = 0; t < 10; ++t) {
    VectorF q = clip::RandomUnitVector(rng, 8);
    auto et = exact->TopK(q, 5);
    auto at = annoy->TopK(q, 5);
    EXPECT_GE(RecallAgainst(at, et), 0.99);
  }
}

TEST(AnnoyIndexTest, HandlesDuplicateVectors) {
  // All-identical vectors would break naive splitting; must still build.
  MatrixF table(100, 8, 0.0f);
  for (size_t i = 0; i < 100; ++i) table.At(i, 0) = 1.0f;
  auto annoy = AnnoyIndex::Build({}, std::move(table));
  ASSERT_TRUE(annoy.ok());
  auto hits = annoy->TopK(VectorF{1, 0, 0, 0, 0, 0, 0, 0}, 10);
  EXPECT_EQ(hits.size(), 10u);
}

TEST(AnnoyIndexTest, ExclusionWorks) {
  auto annoy = AnnoyIndex::Build({}, RandomTable(200, 16, 8));
  ASSERT_TRUE(annoy.ok());
  VectorF q(annoy->GetVector(3).begin(), annoy->GetVector(3).end());
  SeenSet seen(200);
  for (uint32_t id = 1; id < 200; id += 2) seen.Set(id);
  auto hits = annoy->TopK(q, 10, seen);
  for (const auto& h : hits) EXPECT_EQ(h.id % 2, 0u);
}

/// Clustered unit vectors — the shape of real embedding tables (uniform
/// random high-dim data is the known worst case for RP trees and not what
/// the store sees in practice).
MatrixF ClusteredTable(size_t n, size_t d, size_t centers, uint64_t seed) {
  Rng rng(seed);
  std::vector<VectorF> mu;
  for (size_t c = 0; c < centers; ++c) {
    mu.push_back(clip::RandomUnitVector(rng, d));
  }
  MatrixF table(n, d);
  for (size_t i = 0; i < n; ++i) {
    auto row = table.MutableRow(i);
    const VectorF& center = mu[i % centers];
    for (size_t j = 0; j < d; ++j) {
      row[j] = center[j] + 0.25f * static_cast<float>(rng.Gaussian());
    }
    linalg::NormalizeInPlace(row);
  }
  return table;
}

/// Recall sweep across build parameters: more trees must give high recall.
/// This is the §2.2 claim: approximate lookup with minor accuracy drop.
struct AnnoyParam {
  int num_trees;
  double min_recall;
};

class AnnoyRecallSweep : public ::testing::TestWithParam<AnnoyParam> {};

TEST_P(AnnoyRecallSweep, RecallAtTenExceedsThreshold) {
  const auto param = GetParam();
  const size_t n = 2000, d = 32;
  MatrixF table = ClusteredTable(n, d, 20, 9);
  auto exact = ExactStore::Create(table);
  AnnoyOptions options;
  options.num_trees = param.num_trees;
  options.leaf_size = 16;
  auto annoy = AnnoyIndex::Build(options, std::move(table));
  ASSERT_TRUE(exact.ok());
  ASSERT_TRUE(annoy.ok());

  Rng rng(10);
  double total_recall = 0.0;
  const int queries = 40;
  for (int t = 0; t < queries; ++t) {
    // Queries near the data manifold, like embedded text queries.
    size_t pick = static_cast<size_t>(rng.UniformInt(0, n - 1));
    VectorF q(exact->GetVector(static_cast<uint32_t>(pick)).begin(),
              exact->GetVector(static_cast<uint32_t>(pick)).end());
    VectorF jitter = clip::RandomUnitVector(rng, d);
    linalg::Axpy(0.3f, jitter, linalg::MutVecSpan(q));
    linalg::NormalizeInPlace(linalg::MutVecSpan(q));
    auto et = exact->TopK(q, 10);
    auto at = annoy->TopK(q, 10);
    total_recall += RecallAgainst(at, et);
  }
  EXPECT_GE(total_recall / queries, param.min_recall)
      << "num_trees=" << param.num_trees;
}

INSTANTIATE_TEST_SUITE_P(
    TreeCounts, AnnoyRecallSweep,
    ::testing::Values(AnnoyParam{4, 0.35}, AnnoyParam{8, 0.55},
                      AnnoyParam{16, 0.75}, AnnoyParam{32, 0.85}));

TEST(AnnoyIndexTest, MoreSearchKImprovesRecall) {
  const size_t n = 3000, d = 24;
  MatrixF table = RandomTable(n, d, 11);
  auto exact = ExactStore::Create(table);
  AnnoyOptions small_k;
  small_k.num_trees = 8;
  small_k.search_k = 40;
  AnnoyOptions big_k = small_k;
  big_k.search_k = 1200;
  auto annoy_small = AnnoyIndex::Build(small_k, table);
  auto annoy_big = AnnoyIndex::Build(big_k, std::move(table));
  ASSERT_TRUE(annoy_small.ok());
  ASSERT_TRUE(annoy_big.ok());

  Rng rng(12);
  double recall_small = 0, recall_big = 0;
  for (int t = 0; t < 30; ++t) {
    VectorF q = clip::RandomUnitVector(rng, d);
    auto et = exact->TopK(q, 10);
    recall_small += RecallAgainst(annoy_small->TopK(q, 10), et);
    recall_big += RecallAgainst(annoy_big->TopK(q, 10), et);
  }
  EXPECT_GT(recall_big, recall_small);
}

TEST(AnnoyIndexTest, DeterministicGivenSeed) {
  MatrixF table = RandomTable(500, 16, 13);
  auto a = AnnoyIndex::Build({}, table);
  auto b = AnnoyIndex::Build({}, std::move(table));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  Rng rng(14);
  VectorF q = clip::RandomUnitVector(rng, 16);
  auto ha = a->TopK(q, 10);
  auto hb = b->TopK(q, 10);
  ASSERT_EQ(ha.size(), hb.size());
  for (size_t i = 0; i < ha.size(); ++i) EXPECT_EQ(ha[i].id, hb[i].id);
}

}  // namespace
}  // namespace seesaw::store
