// Refit speculation: during think time the aligner runs speculatively on
// the feedback already received (a cloned snapshot) and the next-batch scan
// launches with the predicted post-refit query; a real Refit() landing on
// the bitwise-identical aligned vector consumes the speculation, and any
// deviation — partial labels, feedback outside the batch, extra soft
// feedback, changed aligner options — cancels it mid-scan.
//
// The contract under test: bitwise parity with the non-speculative
// execution OR clean invalidation, in every interleaving, on every backend,
// under concurrency. The randomized sweep below drives
// {kExact, kSharded, kIvf} x label patterns x refit timing and asserts the
// speculating searcher's batches equal the baseline's at every round, while
// the targeted tests pin each divergence class to its stats outcome.
// Runs in the TSan leg (`concurrency` label) and the forced-scalar kernel
// leg (`kernel` label).
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/embedded_dataset.h"
#include "core/seesaw_searcher.h"
#include "core/session_manager.h"
#include "data/profiles.h"
#include "eval/task_runner.h"
#include "tests/test_util.h"

namespace seesaw::core {
namespace {

using test_util::ExpectSameImageBatch;
using test_util::RoundScript;
using test_util::ScriptedUser;
using Fixture = test_util::EmbeddedFixture;

SeeSawOptions SpeculatingOptions(bool enabled) {
  SeeSawOptions options;  // full seesaw: every refit moves the query
  options.prefetch.enabled = enabled;
  options.prefetch.max_in_flight = 0;
  return options;
}

/// A baseline/speculating searcher pair driven in lockstep by one scripted
/// user; every round asserts bitwise-equal batches.
struct LockstepPair {
  LockstepPair(const Fixture& f, size_t concept_id, ThreadPool* pool,
               const SeeSawOptions& options)
      : user(*f.dataset, concept_id),
        baseline(*f.embedded, f.embedded->TextQuery(concept_id),
                 [&] {
                   SeeSawOptions off = options;
                   off.prefetch.enabled = false;
                   return off;
                 }()),
        speculating(*f.embedded, f.embedded->TextQuery(concept_id), options) {
    baseline.set_thread_pool(pool);
    speculating.set_thread_pool(pool);
  }

  /// Returns false if the batches diverged (callers on worker threads can't
  /// ASSERT).
  bool DriveRound(size_t n, const RoundScript& script, int round) {
    auto expected = user.DriveRound(baseline, n, script);
    auto got = user.DriveRound(speculating, n, script);
    if (expected.size() != got.size()) return false;
    for (size_t i = 0; i < got.size(); ++i) {
      if (got[i].image_idx != expected[i].image_idx ||
          got[i].score != expected[i].score) {
        return false;
      }
    }
    ExpectSameImageBatch(got, expected, round);
    return true;
  }

  ScriptedUser user;
  SeeSawSearcher baseline;
  SeeSawSearcher speculating;
};

constexpr StoreBackend kBackends[] = {StoreBackend::kExact,
                                      StoreBackend::kSharded,
                                      StoreBackend::kIvf};

TEST(RefitSpeculationTest, FullBatchRoundsConsumeOnEveryBackend) {
  // The canonical loop — label the whole batch, refit — must now consume:
  // the refit lands bitwise on the predicted query (aligner determinism)
  // and the speculative scan serves the next batch, bit for bit.
  for (StoreBackend backend : kBackends) {
    auto f = test_util::MakeEmbeddedFixture(backend);
    ThreadPool pool(3);
    LockstepPair pair(f, /*concept_id=*/0, &pool, SpeculatingOptions(true));
    const int rounds = 5;
    for (int round = 0; round < rounds; ++round) {
      ASSERT_TRUE(pair.DriveRound(8, {}, round));
    }
    const PrefetchStats& stats = pair.speculating.prefetch_stats();
    EXPECT_GT(stats.refit_fits, 0u);
    EXPECT_GT(stats.refit_matches, 0u);
    EXPECT_GT(stats.hits_post_refit, 0u);
    EXPECT_EQ(stats.refit_mismatches, 0u);
    // Every round after the first is a consume opportunity and none should
    // be lost: the script never deviates.
    EXPECT_EQ(stats.hits_post_refit, static_cast<size_t>(rounds - 1));
  }
}

TEST(RefitSpeculationTest, RandomizedConsumeInvalidateParitySweep) {
  // The acceptance property: across backends x randomized label patterns x
  // refit timing, every consumed speculation is bitwise identical to the
  // non-speculative execution and every divergent round invalidates (the
  // batches stay equal either way). The pattern mix is seeded and spans
  // full / partial / reversed / outside-feedback / soft-feedback /
  // options-change / skipped-refit rounds.
  size_t total_consumed = 0;
  size_t total_divergent = 0;
  for (StoreBackend backend : kBackends) {
    auto f = test_util::MakeEmbeddedFixture(backend);
    ThreadPool pool(3);
    for (uint64_t seed : {11u, 23u}) {
      Rng rng(seed);
      LockstepPair pair(f, /*concept_id=*/0, &pool, SpeculatingOptions(true));
      for (int round = 0; round < 8; ++round) {
        RoundScript script;
        const int pattern = static_cast<int>(rng.Uniform() * 7);
        switch (pattern) {
          case 0:  // canonical full-batch round
            break;
          case 1:  // partial labels: the user turns the page early
            script.max_labels = 3;
            break;
          case 2:  // out-of-order labels within the batch
            script.reverse_order = true;
            break;
          case 3:  // feedback outside the shown batch, interleaved
            script.label_unshown_image = true;
            break;
          case 4: {  // extra soft feedback between labels and refit
            script.refit = false;
            bool ok = pair.DriveRound(6, script, round);
            ASSERT_TRUE(ok) << "backend " << static_cast<int>(backend)
                            << " seed " << seed << " round " << round;
            linalg::VecSpan x = f.embedded->vectors().Row(
                round % f.embedded->num_vectors());
            pair.baseline.mutable_aligner().AddSoftFeedback(x, 0.7f);
            pair.speculating.mutable_aligner().AddSoftFeedback(x, 0.7f);
            EXPECT_TRUE(pair.baseline.Refit().ok());
            EXPECT_TRUE(pair.speculating.Refit().ok());
            continue;
          }
          case 5: {  // aligner options changed between labels and refit
            script.refit = false;
            bool ok = pair.DriveRound(6, script, round);
            ASSERT_TRUE(ok) << "round " << round;
            AlignerOptions changed = pair.baseline.aligner().options();
            changed.lbfgs.max_iterations =
                changed.lbfgs.max_iterations > 10 ? 10 : 60;
            pair.baseline.mutable_aligner().set_options(changed);
            pair.speculating.mutable_aligner().set_options(changed);
            EXPECT_TRUE(pair.baseline.Refit().ok());
            EXPECT_TRUE(pair.speculating.Refit().ok());
            continue;
          }
          case 6:  // refit delayed to the next round
            script.refit = false;
            break;
        }
        bool ok = pair.DriveRound(6, script, round);
        ASSERT_TRUE(ok) << "backend " << static_cast<int>(backend) << " seed "
                        << seed << " round " << round;
      }
      // Drain one more canonical round so a trailing skipped refit resolves.
      ASSERT_TRUE(pair.DriveRound(6, {}, 99));
      const PrefetchStats& stats = pair.speculating.prefetch_stats();
      total_consumed += stats.hits_post_refit;
      total_divergent += stats.refit_mismatches + stats.invalidated +
                         stats.misses;
      // Accounting sanity: every scheduled speculation resolves exactly
      // once (the final round's speculation may still be pending).
      const size_t resolved = stats.hits + stats.misses + stats.invalidated;
      EXPECT_LE(resolved, stats.scheduled);
      EXPECT_GE(resolved + 1, stats.scheduled);
    }
  }
  // The sweep must exercise both arms of the state machine.
  EXPECT_GT(total_consumed, 0u);
  EXPECT_GT(total_divergent, 0u);
}

// ----------------------------------------------- targeted divergence --

TEST(RefitSpeculationDivergenceTest, PartialLabelsInvalidate) {
  // The batch is never fully labeled, so the speculation never arms; the
  // query-moving refit falsifies the prediction and must invalidate it —
  // no fit is ever launched, and nothing is consumed.
  auto f = test_util::MakeEmbeddedFixture(StoreBackend::kExact);
  ThreadPool pool(3);
  LockstepPair pair(f, 0, &pool, SpeculatingOptions(true));
  RoundScript partial;
  partial.max_labels = 3;
  for (int round = 0; round < 3; ++round) {
    ASSERT_TRUE(pair.DriveRound(6, partial, round));
  }
  const PrefetchStats& stats = pair.speculating.prefetch_stats();
  EXPECT_EQ(stats.refit_fits, 0u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_GT(stats.invalidated, 0u);
}

TEST(RefitSpeculationDivergenceTest, ReversedLabelsStillConsume) {
  // Label order within the batch does not diverge: the speculative fit is
  // cloned only once the batch is fully labeled, so it sees exactly the
  // example order the real refit sees — reversed for both. Consuming here
  // is correct (and the batches prove it, bit for bit).
  auto f = test_util::MakeEmbeddedFixture(StoreBackend::kExact);
  ThreadPool pool(3);
  LockstepPair pair(f, 0, &pool, SpeculatingOptions(true));
  RoundScript reversed;
  reversed.reverse_order = true;
  for (int round = 0; round < 3; ++round) {
    ASSERT_TRUE(pair.DriveRound(6, reversed, round));
  }
  const PrefetchStats& stats = pair.speculating.prefetch_stats();
  EXPECT_GT(stats.hits_post_refit, 0u);
  EXPECT_EQ(stats.refit_mismatches, 0u);
}

TEST(RefitSpeculationDivergenceTest, OutOfOrderFeedbackOutsideBatchInvalidates) {
  // Labels that stray outside the predicted batch mid-sequence (the user
  // labels an image found through another tool between two batch images)
  // deviate from the prediction the moment they land: the speculation is
  // cancelled mid-scan, never consumed.
  auto f = test_util::MakeEmbeddedFixture(StoreBackend::kExact);
  ThreadPool pool(3);
  LockstepPair pair(f, 0, &pool, SpeculatingOptions(true));
  RoundScript stray;
  stray.label_unshown_image = true;
  for (int round = 0; round < 3; ++round) {
    ASSERT_TRUE(pair.DriveRound(6, stray, round));
  }
  const PrefetchStats& stats = pair.speculating.prefetch_stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_GT(stats.invalidated, 0u);
}

TEST(RefitSpeculationDivergenceTest, SoftFeedbackBetweenArmAndRefitInvalidates) {
  // The batch is fully labeled (the fit arms and runs), then extra soft
  // feedback lands before Refit(): the real aligned query no longer matches
  // the prediction bitwise, so the armed speculation must be discarded —
  // asserted via the refit_mismatches stat — and the next batch must still
  // equal the baseline's.
  auto f = test_util::MakeEmbeddedFixture(StoreBackend::kExact);
  ThreadPool pool(3);
  LockstepPair pair(f, 0, &pool, SpeculatingOptions(true));
  RoundScript no_refit;
  no_refit.refit = false;
  ASSERT_TRUE(pair.DriveRound(6, no_refit, 0));
  linalg::VecSpan x = f.embedded->vectors().Row(1);
  pair.baseline.mutable_aligner().AddSoftFeedback(x, 0.6f);
  pair.speculating.mutable_aligner().AddSoftFeedback(x, 0.6f);
  ASSERT_TRUE(pair.baseline.Refit().ok());
  ASSERT_TRUE(pair.speculating.Refit().ok());
  ASSERT_TRUE(pair.DriveRound(6, {}, 1));
  const PrefetchStats& stats = pair.speculating.prefetch_stats();
  // Round 0's fit mismatched (the soft feedback moved the real alignment);
  // round 1's canonical fit matched. Every launched fit resolved.
  EXPECT_EQ(stats.refit_fits, stats.refit_matches + stats.refit_mismatches);
  EXPECT_GT(stats.refit_mismatches, 0u);
}

TEST(RefitSpeculationDivergenceTest, OptionsChangeBetweenArmAndRefitInvalidates) {
  // Same shape with changed aligner options: the speculative fit ran under
  // the old hyper-parameters, the real refit under the new ones — the
  // aligned vectors differ and the speculation must be discarded.
  auto f = test_util::MakeEmbeddedFixture(StoreBackend::kExact);
  ThreadPool pool(3);
  LockstepPair pair(f, 0, &pool, SpeculatingOptions(true));
  RoundScript no_refit;
  no_refit.refit = false;
  ASSERT_TRUE(pair.DriveRound(6, no_refit, 0));
  AlignerOptions changed = pair.baseline.aligner().options();
  changed.lbfgs.max_iterations = 5;
  pair.baseline.mutable_aligner().set_options(changed);
  pair.speculating.mutable_aligner().set_options(changed);
  ASSERT_TRUE(pair.baseline.Refit().ok());
  ASSERT_TRUE(pair.speculating.Refit().ok());
  ASSERT_TRUE(pair.DriveRound(6, {}, 1));
  EXPECT_GT(pair.speculating.prefetch_stats().refit_mismatches, 0u);
  EXPECT_EQ(pair.speculating.prefetch_stats().hits, 0u);
}

TEST(RefitSpeculationDivergenceTest, SoftFeedbackAloneTriggersARefit) {
  // Regression: Refit() dirtiness is keyed on the aligner's fit generation,
  // not on AddFeedback alone — a round whose only input is soft feedback
  // through mutable_aligner() must still refit (and move the query), in
  // parity on both searchers.
  auto f = test_util::MakeEmbeddedFixture(StoreBackend::kExact);
  ThreadPool pool(2);
  LockstepPair pair(f, 0, &pool, SpeculatingOptions(true));
  const linalg::VectorF q0 = pair.speculating.current_query();
  linalg::VecSpan x = f.embedded->vectors().Row(2);
  pair.baseline.mutable_aligner().AddSoftFeedback(x, 1.0f);
  pair.speculating.mutable_aligner().AddSoftFeedback(x, 1.0f);
  ASSERT_TRUE(pair.baseline.Refit().ok());
  ASSERT_TRUE(pair.speculating.Refit().ok());
  EXPECT_NE(pair.speculating.current_query(), q0)
      << "soft feedback must not be silently dropped by Refit()";
  ASSERT_TRUE(pair.DriveRound(6, {}, 0));
  // And a refit with nothing new since the last one stays a no-op.
  const linalg::VectorF settled = pair.speculating.current_query();
  ASSERT_TRUE(pair.speculating.Refit().ok());
  EXPECT_EQ(pair.speculating.current_query(), settled);
}

TEST(RefitSpeculationDivergenceTest, ExhaustedBudgetThrottlesTheFitStage) {
  // The shared budget is charged at arm time (the fit burns CPU); with the
  // only slot taken, the speculation is dropped instead of armed, the
  // throttle is counted, and the round still matches the baseline.
  auto f = test_util::MakeEmbeddedFixture(StoreBackend::kExact);
  ThreadPool pool(3);
  PrefetchBudget budget(1);
  ASSERT_TRUE(budget.TryAcquire());  // exhaust the only slot
  LockstepPair pair(f, 0, &pool, SpeculatingOptions(true));
  pair.speculating.set_prefetch_budget(&budget);
  for (int round = 0; round < 2; ++round) {
    ASSERT_TRUE(pair.DriveRound(6, {}, round));
  }
  const PrefetchStats& stats = pair.speculating.prefetch_stats();
  EXPECT_GT(stats.throttled, 0u);
  EXPECT_EQ(stats.refit_fits, 0u);
  EXPECT_EQ(stats.hits_post_refit, 0u);
  budget.Release();
  EXPECT_EQ(budget.in_flight(), 0u);
}

// ----------------------------------------------------- concurrency --

TEST(RefitSpeculationConcurrencyTest, ConcurrentSessionsStayInParity) {
  // Several lockstep pairs share one pool, all speculating through their
  // refits at once; every pair must stay in bitwise parity. Runs under the
  // TSan CI leg via the `concurrency` label.
  auto f = test_util::MakeEmbeddedFixture(StoreBackend::kSharded);
  ThreadPool shared_pool(4);
  const int kSessions = 4, kRounds = 4;
  std::vector<std::unique_ptr<LockstepPair>> pairs;
  for (int t = 0; t < kSessions; ++t) {
    pairs.push_back(std::make_unique<LockstepPair>(
        f, /*concept_id=*/t % 2, &shared_pool, SpeculatingOptions(true)));
  }
  std::atomic<int> failures{0};
  std::vector<std::thread> drivers;
  for (int t = 0; t < kSessions; ++t) {
    drivers.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        if (!pairs[t]->DriveRound(6, {}, round)) ++failures;
      }
    });
  }
  for (auto& d : drivers) d.join();
  EXPECT_EQ(failures.load(), 0);
  size_t consumed = 0;
  for (const auto& pair : pairs) {
    consumed += pair->speculating.prefetch_stats().hits_post_refit;
  }
  EXPECT_GT(consumed, 0u);
}

TEST(RefitSpeculationConcurrencyTest, ManagedSeeSawServiceParityEndToEnd) {
  // The full serving path with the *query-updating* method (the one refit
  // speculation exists for): managed sessions with prefetch on must
  // reproduce the prefetch-off run exactly, with think time making the
  // speculative fits actually overlap.
  auto profile = data::CocoLikeProfile(0.05);
  profile.embedding_dim = 32;
  auto ds = data::Dataset::Generate(profile);
  ASSERT_TRUE(ds.ok());

  auto make_service = [&](bool prefetch_on) {
    ServiceOptions options;
    options.preprocess.multiscale.enabled = false;
    options.preprocess.build_md = false;
    options.session_threads = 3;
    options.search.prefetch.enabled = prefetch_on;
    options.search.prefetch.max_in_flight = 2;
    auto svc = SeeSawService::Create(*ds, options);
    EXPECT_TRUE(svc.ok());
    return std::make_unique<SeeSawService>(std::move(*svc));
  };

  auto concepts = ds->EvaluableConcepts(3);
  ASSERT_FALSE(concepts.empty());
  if (concepts.size() > 3) concepts.resize(3);
  eval::TaskOptions task;
  task.target_positives = 3;
  task.max_images = 24;
  task.batch_size = 6;
  task.think_seconds_per_image = 0.002;

  auto off = make_service(false);
  auto on = make_service(true);
  auto run_off = eval::RunManagedBenchmark(*off, *ds, concepts, task);
  auto run_on = eval::RunManagedBenchmark(*on, *ds, concepts, task);
  ASSERT_EQ(run_off.results.size(), run_on.results.size());
  for (size_t i = 0; i < run_off.results.size(); ++i) {
    EXPECT_EQ(run_off.results[i].relevance, run_on.results[i].relevance);
    EXPECT_EQ(run_off.results[i].found, run_on.results[i].found);
    EXPECT_EQ(run_off.results[i].inspected, run_on.results[i].inspected);
    EXPECT_DOUBLE_EQ(run_off.results[i].ap, run_on.results[i].ap);
  }
  EXPECT_EQ(on->sessions().prefetches_in_flight(), 0u);
}

}  // namespace
}  // namespace seesaw::core
