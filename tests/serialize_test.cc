#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/binary_io.h"
#include "common/rng.h"
#include "core/embedded_dataset.h"
#include "core/service.h"
#include "data/profiles.h"
#include "linalg/serialize.h"

namespace seesaw {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

// ------------------------------------------------------------- binary io --

TEST(BinaryIoTest, RoundTripsScalarsAndStrings) {
  std::string path = TempPath("scalars.bin");
  {
    auto writer = BinaryWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->WriteU32(0xDEADBEEF).ok());
    ASSERT_TRUE(writer->WriteU64(1ull << 40).ok());
    ASSERT_TRUE(writer->WriteF32(3.25f).ok());
    ASSERT_TRUE(writer->WriteF64(-2.5).ok());
    ASSERT_TRUE(writer->WriteString("seesaw").ok());
    ASSERT_TRUE(writer->WriteString("").ok());
    ASSERT_TRUE(writer->Close().ok());
  }
  auto reader = BinaryReader::Open(path);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(*reader->ReadU32(), 0xDEADBEEFu);
  EXPECT_EQ(*reader->ReadU64(), 1ull << 40);
  EXPECT_FLOAT_EQ(*reader->ReadF32(), 3.25f);
  EXPECT_DOUBLE_EQ(*reader->ReadF64(), -2.5);
  EXPECT_EQ(*reader->ReadString(), "seesaw");
  EXPECT_EQ(*reader->ReadString(), "");
  // Reading past the end fails cleanly.
  EXPECT_FALSE(reader->ReadU32().ok());
}

TEST(BinaryIoTest, MissingFileIsNotFound) {
  auto reader = BinaryReader::Open(TempPath("does_not_exist.bin"));
  EXPECT_FALSE(reader.ok());
  EXPECT_TRUE(reader.status().IsNotFound());
}

TEST(BinaryIoTest, TruncatedReadFails) {
  std::string path = TempPath("truncated.bin");
  {
    auto writer = BinaryWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->WriteU32(7).ok());
    ASSERT_TRUE(writer->Close().ok());
  }
  auto reader = BinaryReader::Open(path);
  ASSERT_TRUE(reader.ok());
  EXPECT_FALSE(reader->ReadU64().ok());  // only 4 bytes available
}

TEST(BinaryIoTest, CorruptStringLengthRejected) {
  std::string path = TempPath("badstring.bin");
  {
    auto writer = BinaryWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->WriteU64(~0ull).ok());  // absurd length prefix
    ASSERT_TRUE(writer->Close().ok());
  }
  auto reader = BinaryReader::Open(path);
  ASSERT_TRUE(reader.ok());
  EXPECT_FALSE(reader->ReadString().ok());
}

// --------------------------------------------------------- matrix (de)ser --

TEST(MatrixSerializeTest, RoundTrip) {
  Rng rng(1);
  linalg::MatrixF m(17, 9);
  for (auto& v : m.mutable_data()) v = static_cast<float>(rng.Gaussian());
  std::string path = TempPath("matrix.bin");
  {
    auto writer = BinaryWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(linalg::SaveMatrix(*writer, m).ok());
    ASSERT_TRUE(writer->Close().ok());
  }
  auto reader = BinaryReader::Open(path);
  ASSERT_TRUE(reader.ok());
  auto loaded = linalg::LoadMatrix(*reader);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->rows(), m.rows());
  EXPECT_EQ(loaded->cols(), m.cols());
  EXPECT_EQ(loaded->data(), m.data());
}

TEST(MatrixSerializeTest, EmptyMatrixRoundTrip) {
  std::string path = TempPath("empty_matrix.bin");
  {
    auto writer = BinaryWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(linalg::SaveMatrix(*writer, linalg::MatrixF()).ok());
    ASSERT_TRUE(writer->Close().ok());
  }
  auto reader = BinaryReader::Open(path);
  ASSERT_TRUE(reader.ok());
  auto loaded = linalg::LoadMatrix(*reader);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->rows(), 0u);
}

// ------------------------------------------------- embedded dataset cache --

data::DatasetProfile SmallProfile() {
  auto p = data::CocoLikeProfile(0.04);
  p.embedding_dim = 32;
  return p;
}

TEST(EmbeddedCacheTest, SaveLoadRoundTrip) {
  auto ds = data::Dataset::Generate(SmallProfile());
  ASSERT_TRUE(ds.ok());
  core::PreprocessOptions options;
  options.md.k = 5;
  auto built = core::EmbeddedDataset::Build(*ds, options);
  ASSERT_TRUE(built.ok());

  std::string path = TempPath("embedded.cache");
  ASSERT_TRUE(built->Save(path).ok());
  auto loaded = core::EmbeddedDataset::Load(path, *ds, options);
  ASSERT_TRUE(loaded.ok()) << loaded.status();

  EXPECT_EQ(loaded->num_vectors(), built->num_vectors());
  EXPECT_EQ(loaded->vectors().data(), built->vectors().data());
  ASSERT_NE(loaded->md(), nullptr);
  EXPECT_EQ(loaded->md()->data(), built->md()->data());
  for (uint32_t i = 0; i < ds->num_images(); ++i) {
    EXPECT_EQ(loaded->ImagePatchRange(i), built->ImagePatchRange(i));
  }
  // Store answers identically (both exact over identical vectors).
  auto q = loaded->TextQuery(0);
  auto a = loaded->store().TopK(q, 5);
  auto b = built->store().TopK(q, 5);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].id, b[i].id);
}

TEST(EmbeddedCacheTest, RejectsWrongDataset) {
  auto ds = data::Dataset::Generate(SmallProfile());
  ASSERT_TRUE(ds.ok());
  core::PreprocessOptions options;
  options.build_md = false;
  options.multiscale.enabled = false;
  auto built = core::EmbeddedDataset::Build(*ds, options);
  ASSERT_TRUE(built.ok());
  std::string path = TempPath("embedded_mismatch.cache");
  ASSERT_TRUE(built->Save(path).ok());

  auto other_profile = SmallProfile();
  other_profile.num_images = 77;
  auto other = data::Dataset::Generate(other_profile);
  ASSERT_TRUE(other.ok());
  auto loaded = core::EmbeddedDataset::Load(path, *other, options);
  EXPECT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsFailedPrecondition());
}

TEST(EmbeddedCacheTest, RejectsGarbageFile) {
  std::string path = TempPath("garbage.cache");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("this is not a cache", f);
  std::fclose(f);
  auto ds = data::Dataset::Generate(SmallProfile());
  ASSERT_TRUE(ds.ok());
  EXPECT_FALSE(core::EmbeddedDataset::Load(path, *ds, {}).ok());
}

// ----------------------------------------------------------- service API --

TEST(ServiceTest, CreatesAndSearchesByName) {
  auto profile = data::BddLikeProfile(0.05);
  profile.embedding_dim = 32;
  auto ds = data::Dataset::Generate(profile);
  ASSERT_TRUE(ds.ok());
  core::ServiceOptions options;
  options.preprocess.md.k = 5;
  auto service = core::SeeSawService::Create(*ds, options);
  ASSERT_TRUE(service.ok()) << service.status();

  auto session = service->StartSession("car");
  ASSERT_TRUE(session.ok());
  auto batch = (*session)->NextBatch(5);
  EXPECT_EQ(batch.size(), 5u);

  EXPECT_TRUE(service->StartSession("no such thing").status().IsNotFound());
}

TEST(ServiceTest, RejectsWrongDimensionVector) {
  auto profile = data::BddLikeProfile(0.05);
  profile.embedding_dim = 32;
  auto ds = data::Dataset::Generate(profile);
  ASSERT_TRUE(ds.ok());
  core::ServiceOptions options;
  options.preprocess.build_md = false;
  auto service = core::SeeSawService::Create(*ds, options);
  ASSERT_TRUE(service.ok());
  EXPECT_FALSE(service->StartSession(linalg::VectorF(7, 0.1f)).ok());
}

TEST(ServiceTest, CacheWriteAndReuse) {
  auto profile = data::BddLikeProfile(0.05);
  profile.embedding_dim = 32;
  auto ds = data::Dataset::Generate(profile);
  ASSERT_TRUE(ds.ok());
  core::ServiceOptions options;
  options.preprocess.md.k = 5;
  options.cache_path = TempPath("service.cache");
  std::remove(options.cache_path.c_str());

  auto first = core::SeeSawService::Create(*ds, options);
  ASSERT_TRUE(first.ok()) << first.status();
  // Second creation must load the cache and produce identical vectors.
  auto second = core::SeeSawService::Create(*ds, options);
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(first->embedded().vectors().data(),
            second->embedded().vectors().data());
}

}  // namespace
}  // namespace seesaw
