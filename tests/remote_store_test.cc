// RemoteStore under the deterministic fault harness and over real sockets:
// bitwise remote-vs-local parity for every shard count / precision / seen
// fraction, and the full failure-semantics matrix — retry-then-succeed,
// retries exhausted, deadline expiry (never retried), shard death mid-scan
// surfacing as a typed collector error, stale-duplicate replies skipped,
// backoff monotonicity with the jitter envelope, and cancellation that
// abandons an in-flight socket wait. Fault tests run on a virtual clock
// (tests/fault_socket.h): no sleeps, no wall-clock races.
#include "net/remote_store.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <optional>
#include <semaphore>
#include <thread>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "core/session_manager.h"
#include "data/profiles.h"
#include "net/server.h"
#include "store/exact_store.h"
#include "store/sharded_store.h"
#include "tests/fault_socket.h"
#include "tests/test_util.h"

namespace seesaw {
namespace {

using store::ExactStore;
using store::RemoteStore;
using store::RemoteStoreOptions;
using store::ScanControl;
using store::ScanErrorCollector;
using store::ScanPrecision;
using store::SearchResult;
using store::SeenSet;
using store::ShardedStore;
using store::VectorStore;
using test_util::Delay;
using test_util::Drop;
using test_util::Duplicate;
using test_util::FaultStep;
using test_util::FaultTransport;
using test_util::Pass;
using test_util::RetryLater;
using test_util::Truncate;

// ------------------------------------------------------------- fixtures --

/// Copies shard `s`'s PartitionRange rows out of `table` — the same
/// arithmetic a real shard server applies to its slice of the dataset.
linalg::MatrixF ShardRows(const linalg::MatrixF& table, size_t num_shards,
                          size_t s) {
  auto [first, count] = ShardedStore::PartitionRange(table.rows(), num_shards, s);
  linalg::MatrixF part(count, table.cols());
  for (size_t r = 0; r < count; ++r) {
    auto src = table.Row(first + r);
    std::copy(src.begin(), src.end(), part.MutableRow(r).begin());
  }
  return part;
}

std::unique_ptr<ExactStore> MakeExact(linalg::MatrixF rows,
                                      ScanPrecision precision) {
  store::ExactStoreOptions options;
  options.precision = precision;
  auto made = ExactStore::Create(std::move(rows), options);
  SEESAW_CHECK(made.ok()) << made.status().ToString();
  return std::make_unique<ExactStore>(std::move(*made));
}

/// Options every fault test starts from: deterministic, no real sleeping.
RemoteStoreOptions FastOptions() {
  RemoteStoreOptions options;
  options.sleep = [](double) {};
  return options;
}

/// A ShardedStore whose children are RemoteStores speaking to in-process
/// FaultTransport peers, plus everything that must outlive it. `scripts[s]`
/// is shard s's fault script (missing/short scripts behave as Pass; every
/// script's first step serves the kStoreInfo probe).
struct RemoteSharded {
  std::vector<std::unique_ptr<VectorStore>> peers;  // the per-shard tables
  std::vector<FaultTransport*> transports;          // borrowed, for counters
  std::optional<ShardedStore> sharded;

  ShardedStore& store() { return *sharded; }
};

RemoteSharded MakeRemoteSharded(
    const linalg::MatrixF& table, size_t num_shards, ScanPrecision precision,
    std::vector<std::vector<FaultStep>> scripts = {},
    RemoteStoreOptions options = FastOptions()) {
  RemoteSharded out;
  std::vector<std::unique_ptr<VectorStore>> children;
  for (size_t s = 0; s < num_shards; ++s) {
    out.peers.push_back(MakeExact(ShardRows(table, num_shards, s), precision));
    std::vector<FaultStep> script;
    if (s < scripts.size()) script = std::move(scripts[s]);
    auto transport =
        std::make_unique<FaultTransport>(*out.peers.back(), std::move(script));
    out.transports.push_back(transport.get());
    auto remote = RemoteStore::Create(std::move(transport), options);
    SEESAW_CHECK(remote.ok()) << remote.status().ToString();
    children.push_back(std::move(*remote));
  }
  auto made = ShardedStore::CreateFromChildren(std::move(children));
  SEESAW_CHECK(made.ok()) << made.status().ToString();
  out.sharded.emplace(std::move(*made));
  return out;
}

/// One RemoteStore over a FaultTransport serving the whole table.
struct RemoteSingle {
  std::unique_ptr<VectorStore> peer;
  FaultTransport* transport = nullptr;  // borrowed
  std::unique_ptr<VectorStore> remote;
};

RemoteSingle MakeRemoteSingle(const linalg::MatrixF& table,
                              std::vector<FaultStep> script,
                              RemoteStoreOptions options = FastOptions(),
                              ScanPrecision precision = ScanPrecision::kFloat32) {
  RemoteSingle out;
  out.peer = MakeExact(table, precision);
  auto transport = std::make_unique<FaultTransport>(*out.peer, std::move(script));
  out.transport = transport.get();
  auto remote = RemoteStore::Create(std::move(transport), options);
  SEESAW_CHECK(remote.ok()) << remote.status().ToString();
  out.remote = std::move(*remote);
  return out;
}

// ------------------------------------------------- remote-local parity --

// A ShardedStore over RemoteStore children returns bit-for-bit what a
// single local ExactStore over the whole table returns — for every shard
// count, both scan precisions, and light/heavy exclusion sets. This is the
// tentpole contract: moving shards out of process must be invisible in the
// results. (Int8 quantization is per-row, so the sharded int8 scan is also
// bitwise identical to the unsharded int8 reference.)
TEST(RemoteStoreParity, BitwiseEqualToLocalAcrossShardCounts) {
  constexpr size_t kRows = 400;
  constexpr size_t kQueries = 4;
  constexpr size_t kTopK = 10;
  ThreadPool pool(4);
  for (ScanPrecision precision :
       {ScanPrecision::kFloat32, ScanPrecision::kInt8}) {
    for (size_t dim : {24u, 64u}) {
      linalg::MatrixF table =
          test_util::ClusteredTable(kRows, dim, /*centers=*/8, /*seed=*/dim);
      auto reference = MakeExact(table, precision);
      auto queries = test_util::RandomQueries(kQueries, dim, /*seed=*/7 + dim);
      auto spans = test_util::AsSpans(queries);
      for (size_t shards : {1u, 2u, 3u, 7u}) {
        RemoteSharded remote = MakeRemoteSharded(table, shards, precision);
        ASSERT_EQ(remote.store().size(), kRows);
        ASSERT_EQ(remote.store().dim(), dim);
        for (double fraction : {0.0, 0.3, 0.9}) {
          SeenSet seen = test_util::RandomSeenSet(
              kRows, fraction, /*seed=*/101 * shards + dim);
          for (const auto& q : queries) {
            test_util::ExpectIdenticalResults(
                remote.store().TopK(q, kTopK, seen),
                reference->TopK(q, kTopK, seen));
          }
          ScanErrorCollector errors;
          ScanControl control;
          control.errors = &errors;
          auto got =
              remote.store().TopKBatch(spans, kTopK, seen, &pool, control);
          auto want = reference->TopKBatch(spans, kTopK, seen, &pool);
          EXPECT_TRUE(errors.ok()) << errors.first().ToString();
          ASSERT_EQ(got.size(), want.size());
          for (size_t i = 0; i < want.size(); ++i) {
            test_util::ExpectIdenticalResults(got[i], want[i]);
          }
        }
      }
    }
  }
}

// k larger than any single shard's row count: the merge must fill from
// across shards exactly like the local reference fills from the whole
// table.
TEST(RemoteStoreParity, KLargerThanShardRows) {
  constexpr size_t kRows = 120;
  constexpr size_t kDim = 16;
  linalg::MatrixF table = test_util::RandomTable(kRows, kDim, /*seed=*/3);
  auto reference = MakeExact(table, ScanPrecision::kFloat32);
  RemoteSharded remote =
      MakeRemoteSharded(table, /*num_shards=*/7, ScanPrecision::kFloat32);
  auto queries = test_util::RandomQueries(2, kDim, /*seed=*/11);
  for (const auto& q : queries) {
    // 80 > ceil(120/7) rows per shard; also exercises the full-table tail.
    test_util::ExpectIdenticalResults(remote.store().TopK(q, 80),
                                      reference->TopK(q, 80));
  }
}

// GetVector round-trips fp32 bits and pins the result: the second read of
// an id is served from the cache without another RPC, and the span from
// the first read stays valid after further fetches grow the cache.
TEST(RemoteStoreParity, GetVectorParityAndPinnedCache) {
  constexpr size_t kRows = 60;
  constexpr size_t kDim = 12;
  linalg::MatrixF table = test_util::RandomTable(kRows, kDim, /*seed=*/5);
  RemoteSingle fx = MakeRemoteSingle(table, {});

  linalg::VecSpan first = fx.remote->GetVector(7);
  ASSERT_EQ(first.size(), kDim);
  size_t sends_after_first = fx.transport->sends();
  for (uint32_t id : {0u, 33u, 59u}) {
    linalg::VecSpan got = fx.remote->GetVector(id);
    auto want = table.Row(id);
    ASSERT_EQ(got.size(), want.size());
    for (size_t j = 0; j < want.size(); ++j) EXPECT_EQ(got[j], want[j]);
  }
  // Cache hit: no new RPC for the repeated id.
  linalg::VecSpan again = fx.remote->GetVector(7);
  EXPECT_EQ(fx.transport->sends(), sends_after_first + 3);
  // The original span still reads the same bits (pinned, never relocated).
  ASSERT_EQ(again.size(), first.size());
  for (size_t j = 0; j < kDim; ++j) {
    EXPECT_EQ(first[j], table.Row(7)[j]);
    EXPECT_EQ(again[j], first[j]);
  }

  // Out-of-range id: typed NotFound, no RPC burned.
  size_t sends_before = fx.transport->sends();
  EXPECT_TRUE(fx.remote->GetVector(kRows).empty());
  EXPECT_EQ(fx.transport->sends(), sends_before);
  auto* remote = static_cast<RemoteStore*>(fx.remote.get());
  EXPECT_TRUE(remote->last_status().IsNotFound());
}

// ---------------------------------------------------- failure semantics --

// RETRY_LATER shedding is retried with backoff and then succeeds; the
// caller sees full results and no collector error, and the retry consumed
// exactly one backoff sleep inside the jitter envelope.
TEST(RemoteStoreFaults, RetryLaterThenSucceed) {
  linalg::MatrixF table = test_util::RandomTable(80, 16, /*seed=*/21);
  std::vector<double> sleeps;
  RemoteStoreOptions options = FastOptions();
  options.sleep = [&sleeps](double s) { sleeps.push_back(s); };
  RemoteSingle fx =
      MakeRemoteSingle(table, {Pass(), RetryLater(), Pass()}, options);

  auto queries = test_util::RandomQueries(1, 16, /*seed=*/22);
  ScanErrorCollector errors;
  ScanControl control;
  control.errors = &errors;
  auto got = fx.remote->TopK(queries[0], 5, store::EmptySeenSet(), control);
  test_util::ExpectIdenticalResults(got, fx.peer->TopK(queries[0], 5));

  EXPECT_TRUE(errors.ok());
  EXPECT_EQ(fx.transport->sends(), 3u);  // info + shed attempt + retry
  EXPECT_EQ(fx.transport->steps_left(), 0u);
  ASSERT_EQ(sleeps.size(), 1u);
  // Attempt 0 backoff: base = initial, jitter in [0.5, 1.0).
  EXPECT_GE(sleeps[0], 0.5 * options.backoff_initial_seconds);
  EXPECT_LT(sleeps[0], options.backoff_initial_seconds);
}

// A peer that sheds forever exhausts max_retries: the scan returns empty
// AND reports a typed ResourceExhausted to the collector — degradation is
// loud, never a silent partial.
TEST(RemoteStoreFaults, RetriesExhaustedReportTyped) {
  linalg::MatrixF table = test_util::RandomTable(80, 16, /*seed=*/23);
  std::vector<double> sleeps;
  RemoteStoreOptions options = FastOptions();
  options.max_retries = 3;
  options.sleep = [&sleeps](double s) { sleeps.push_back(s); };
  RemoteSingle fx = MakeRemoteSingle(
      table, {Pass(), RetryLater(), RetryLater(), RetryLater(), RetryLater()},
      options);

  auto queries = test_util::RandomQueries(1, 16, /*seed=*/24);
  ScanErrorCollector errors;
  ScanControl control;
  control.errors = &errors;
  auto got = fx.remote->TopK(queries[0], 5, store::EmptySeenSet(), control);
  EXPECT_TRUE(got.empty());
  ASSERT_FALSE(errors.ok());
  EXPECT_EQ(errors.count(), 1u);
  EXPECT_EQ(errors.first().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(errors.first().message().find("retries exhausted"),
            std::string::npos);
  EXPECT_EQ(fx.transport->sends(), 5u);  // info + 1 attempt + 3 retries
  EXPECT_EQ(sleeps.size(), 3u);          // one backoff per retry
}

// Deadline expiry is final: no retry attempts follow, and the failure
// surfaces as a typed DeadlineExceeded. The virtual clock shows exactly
// the deadline budget was burned — the wait never ran long.
TEST(RemoteStoreFaults, DeadlineExpiryIsNotRetried) {
  linalg::MatrixF table = test_util::RandomTable(80, 16, /*seed=*/25);
  std::vector<double> sleeps;
  RemoteStoreOptions options = FastOptions();
  options.request_deadline_seconds = 1.0;
  options.max_retries = 3;
  options.sleep = [&sleeps](double s) { sleeps.push_back(s); };
  RemoteSingle fx = MakeRemoteSingle(table, {Pass(), Delay(10.0)}, options);

  auto queries = test_util::RandomQueries(1, 16, /*seed=*/26);
  ScanErrorCollector errors;
  ScanControl control;
  control.errors = &errors;
  auto got = fx.remote->TopK(queries[0], 5, store::EmptySeenSet(), control);
  EXPECT_TRUE(got.empty());
  ASSERT_FALSE(errors.ok());
  EXPECT_TRUE(errors.first().IsDeadlineExceeded());
  EXPECT_EQ(fx.transport->sends(), 2u);  // info + the one timed-out attempt
  EXPECT_TRUE(sleeps.empty());  // deadline is final: no backoff
  // The wait burned (at most) the remaining deadline budget and no more —
  // slightly under 1.0 because real time elapses between send and read.
  EXPECT_GT(fx.transport->virtual_now(), 0.9);
  EXPECT_LE(fx.transport->virtual_now(), 1.0);
}

// A connection that dies mid-reply (bytes on the wire when the peer went
// away) is an IO failure: the client reconnects and the retry succeeds.
TEST(RemoteStoreFaults, TruncatedReplyReconnectsAndRetries) {
  linalg::MatrixF table = test_util::RandomTable(80, 16, /*seed=*/27);
  RemoteSingle fx = MakeRemoteSingle(table, {Pass(), Truncate(), Pass()});

  auto queries = test_util::RandomQueries(1, 16, /*seed=*/28);
  ScanErrorCollector errors;
  ScanControl control;
  control.errors = &errors;
  auto got = fx.remote->TopK(queries[0], 5, store::EmptySeenSet(), control);
  test_util::ExpectIdenticalResults(got, fx.peer->TopK(queries[0], 5));
  EXPECT_TRUE(errors.ok());
  EXPECT_EQ(fx.transport->reconnects(), 1u);
  EXPECT_EQ(fx.transport->sends(), 3u);
}

// One dead shard in a sharded scan: the other shards answer, the scan
// terminates (no hang), and the collector carries a typed IoError so the
// caller knows the merge is invalid. "A dead shard surfaces as a typed
// Status, never a silent partial."
TEST(RemoteStoreFaults, ShardDeathMidScanReportsToCollector) {
  constexpr size_t kRows = 300;
  constexpr size_t kDim = 16;
  linalg::MatrixF table = test_util::RandomTable(kRows, kDim, /*seed=*/29);
  // Shard 1's peer drops the connection on every attempt (info probe
  // passes, then 1 + max_retries = 4 scripted drops).
  std::vector<std::vector<FaultStep>> scripts(3);
  scripts[1] = {Pass(), Drop(), Drop(), Drop(), Drop()};
  RemoteSharded remote = MakeRemoteSharded(table, /*num_shards=*/3,
                                           ScanPrecision::kFloat32, scripts);

  auto queries = test_util::RandomQueries(3, kDim, /*seed=*/30);
  auto spans = test_util::AsSpans(queries);
  ScanErrorCollector errors;
  ScanControl control;
  control.errors = &errors;
  auto got = remote.store().TopKBatch(spans, 10, store::EmptySeenSet(),
                                      /*pool=*/nullptr, control);
  ASSERT_FALSE(errors.ok());
  EXPECT_EQ(errors.count(), 1u);
  EXPECT_EQ(errors.first().code(), StatusCode::kIoError);
  EXPECT_NE(errors.first().message().find("retries exhausted"),
            std::string::npos);
  // Each drop forced a reconnect before the next attempt.
  EXPECT_EQ(remote.transports[1]->reconnects(), 3u);
  // The healthy shards still produced a full-shaped (but must-discard)
  // merge; the contract is the collector flag, not the shape.
  EXPECT_EQ(got.size(), spans.size());
}

// A peer that repeats an old reply before the current one: the stale frame
// (smaller request id) is skipped, the real reply is consumed, and results
// are untouched.
TEST(RemoteStoreFaults, StaleDuplicateReplyIsSkipped) {
  linalg::MatrixF table = test_util::RandomTable(80, 16, /*seed=*/31);
  RemoteSingle fx = MakeRemoteSingle(table, {Pass(), Duplicate()});

  auto queries = test_util::RandomQueries(1, 16, /*seed=*/32);
  ScanErrorCollector errors;
  ScanControl control;
  control.errors = &errors;
  auto got = fx.remote->TopK(queries[0], 5, store::EmptySeenSet(), control);
  test_util::ExpectIdenticalResults(got, fx.peer->TopK(queries[0], 5));
  EXPECT_TRUE(errors.ok());
  EXPECT_EQ(fx.transport->steps_left(), 0u);
}

// A pre-cancelled scan returns empty without issuing any RPC and without
// reporting an error (cancelled results are discarded by the caller — an
// error report would poison an otherwise healthy merge).
TEST(RemoteStoreFaults, PreCancelledScanSkipsRpcAndReportsNothing) {
  linalg::MatrixF table = test_util::RandomTable(80, 16, /*seed=*/33);
  RemoteSingle fx = MakeRemoteSingle(table, {});
  size_t sends_after_create = fx.transport->sends();

  CancellationToken token;
  token.RequestCancel();
  ScanErrorCollector errors;
  ScanControl control;
  control.cancel = &token;
  control.errors = &errors;
  auto queries = test_util::RandomQueries(1, 16, /*seed=*/34);
  EXPECT_TRUE(
      fx.remote->TopK(queries[0], 5, store::EmptySeenSet(), control).empty());
  auto spans = test_util::AsSpans(queries);
  EXPECT_TRUE(fx.remote
                  ->TopKBatch(spans, 5, store::EmptySeenSet(), nullptr, control)
                  .empty());
  EXPECT_TRUE(errors.ok());
  EXPECT_EQ(errors.count(), 0u);
  EXPECT_EQ(fx.transport->sends(), sends_after_create);
}

// A peer that is dead from the start fails Create with a typed IoError
// after exhausting retries — constructing a RemoteStore never hangs.
TEST(RemoteStoreFaults, CreateFailsTypedOnDeadPeer) {
  linalg::MatrixF table = test_util::RandomTable(40, 8, /*seed=*/35);
  auto peer = MakeExact(table, ScanPrecision::kFloat32);
  auto transport = std::make_unique<FaultTransport>(
      *peer, std::vector<FaultStep>{Drop(), Drop(), Drop(), Drop()});
  auto remote = RemoteStore::Create(std::move(transport), FastOptions());
  ASSERT_FALSE(remote.ok());
  EXPECT_EQ(remote.status().code(), StatusCode::kIoError);
  EXPECT_NE(remote.status().message().find("retries exhausted"),
            std::string::npos);
}

// The backoff schedule is exponential, capped, and jittered within the
// documented envelope: delay(attempt) in [0.5, 1.0) * min(initial * 2^a,
// max), with the base monotone non-decreasing in the attempt number.
TEST(RemoteStoreFaults, BackoffScheduleEnvelopeAndMonotonicity) {
  RemoteStoreOptions options;
  options.backoff_initial_seconds = 0.01;
  options.backoff_max_seconds = 0.25;
  for (uint64_t seed : {1ull, 42ull, 0x5ee5a301ull}) {
    Rng rng(seed);
    double prev_base = 0;
    for (size_t attempt = 0; attempt < 12; ++attempt) {
      double base = std::min(options.backoff_initial_seconds *
                                 std::exp2(static_cast<double>(attempt)),
                             options.backoff_max_seconds);
      double delay = store::BackoffDelaySeconds(options, attempt, rng);
      EXPECT_GE(delay, 0.5 * base) << "attempt " << attempt;
      EXPECT_LT(delay, base) << "attempt " << attempt;
      EXPECT_LE(delay, options.backoff_max_seconds);
      EXPECT_GE(base, prev_base);  // the envelope never shrinks
      prev_base = base;
    }
  }
}

// ------------------------------------------------------- real sockets --

data::DatasetProfile SmallBdd() {
  auto p = data::BddLikeProfile(0.05);
  p.embedding_dim = 32;
  return p;
}

/// The session service every SeeSawServer needs (store mode rides on the
/// same server). Built once: dataset generation dominates the suite.
struct ServiceFixture {
  ServiceFixture() {
    auto ds = data::Dataset::Generate(SmallBdd());
    SEESAW_CHECK(ds.ok());
    dataset = std::make_unique<data::Dataset>(std::move(*ds));
    core::ServiceOptions options;
    options.preprocess.md.k = 5;
    options.session_threads = 2;
    auto svc = core::SeeSawService::Create(*dataset, options);
    SEESAW_CHECK(svc.ok());
    service = std::make_unique<core::SeeSawService>(std::move(*svc));
  }

  std::unique_ptr<data::Dataset> dataset;
  std::unique_ptr<core::SeeSawService> service;
};

ServiceFixture& Fixture() {
  static ServiceFixture* fixture = new ServiceFixture();
  return *fixture;
}

/// A running SeeSawServer in store mode on an ephemeral loopback port.
struct StoreServerFixture {
  explicit StoreServerFixture(const VectorStore& store)
      : manager(*Fixture().service, /*num_threads=*/2),
        server(manager, [] {
          net::ServerOptions options;
          options.port = 0;
          return options;
        }()) {
    server.ServeStore(store);
    auto started = server.Start();
    SEESAW_CHECK(started.ok()) << started.ToString();
  }

  core::SessionManager manager;
  net::SeeSawServer server;
};

// End-to-end over loopback TCP: two shard servers, RemoteStore children
// via TcpTransport, bitwise parity against the single local reference —
// the exact deployment shape, minus only the second machine.
TEST(RemoteStoreSockets, TwoShardServersBitwiseParity) {
  constexpr size_t kRows = 200;
  constexpr size_t kDim = 16;
  linalg::MatrixF table = test_util::RandomTable(kRows, kDim, /*seed=*/41);
  auto reference = MakeExact(table, ScanPrecision::kFloat32);

  auto shard0 = MakeExact(ShardRows(table, 2, 0), ScanPrecision::kFloat32);
  auto shard1 = MakeExact(ShardRows(table, 2, 1), ScanPrecision::kFloat32);
  StoreServerFixture server0(*shard0);
  StoreServerFixture server1(*shard1);

  std::vector<std::unique_ptr<VectorStore>> children;
  for (const StoreServerFixture* f : {&server0, &server1}) {
    auto remote =
        RemoteStore::Connect("127.0.0.1", f->server.port(), FastOptions());
    ASSERT_TRUE(remote.ok()) << remote.status().ToString();
    children.push_back(std::move(*remote));
  }
  // The kStoreInfo probe populated shape before any scan.
  EXPECT_EQ(children[0]->size(), shard0->size());
  EXPECT_EQ(children[0]->dim(), kDim);
  auto made = ShardedStore::CreateFromChildren(std::move(children));
  ASSERT_TRUE(made.ok()) << made.status().ToString();
  ShardedStore& sharded = *made;
  ASSERT_EQ(sharded.size(), kRows);

  auto queries = test_util::RandomQueries(3, kDim, /*seed=*/42);
  auto spans = test_util::AsSpans(queries);
  SeenSet seen = test_util::RandomSeenSet(kRows, 0.25, /*seed=*/43);
  ScanErrorCollector errors;
  ScanControl control;
  control.errors = &errors;
  for (const auto& q : queries) {
    test_util::ExpectIdenticalResults(sharded.TopK(q, 10, seen, control),
                                      reference->TopK(q, 10, seen));
  }
  auto got = sharded.TopKBatch(spans, 10, seen, /*pool=*/nullptr, control);
  auto want = reference->TopKBatch(spans, 10, seen);
  EXPECT_TRUE(errors.ok()) << errors.first().ToString();
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    test_util::ExpectIdenticalResults(got[i], want[i]);
  }
  // GetVector crosses the wire with float bits intact too.
  auto row = sharded.GetVector(kRows - 1);
  ASSERT_EQ(row.size(), kDim);
  for (size_t j = 0; j < kDim; ++j) EXPECT_EQ(row[j], table.Row(kRows - 1)[j]);
}

/// Wraps a store so TopK parks on a semaphore until the test releases it —
/// holds a real server handler mid-scan deterministically.
class BlockingStore : public VectorStore {
 public:
  explicit BlockingStore(const VectorStore& inner) : inner_(&inner) {}

  size_t size() const override { return inner_->size(); }
  size_t dim() const override { return inner_->dim(); }

  std::vector<SearchResult> TopK(linalg::VecSpan query, size_t k,
                                 const SeenSet& seen,
                                 const ScanControl& control) const override {
    entered_.release();
    release_.acquire();
    release_.release();  // stay open: only the first scan parks
    return inner_->TopK(query, k, seen, control);
  }

  linalg::VecSpan GetVector(uint32_t id) const override {
    return inner_->GetVector(id);
  }

  /// Blocks until a scan has parked inside TopK.
  void AwaitEntered() const { entered_.acquire(); }
  /// Lets the parked scan (and all future ones) proceed.
  void Release() const { release_.release(); }

 private:
  const VectorStore* inner_;
  mutable std::counting_semaphore<4> entered_{0};
  mutable std::counting_semaphore<4> release_{0};
};

// Cancellation through a real socket wait: the peer's handler is parked
// mid-scan, so no reply is coming; cancelling the token makes the client's
// TopK return promptly (the ~50ms poll slices observe it) instead of
// sitting out the full deadline — and a cancelled scan reports nothing.
TEST(RemoteStoreSockets, CancellationAbandonsInFlightSocketWait) {
  constexpr size_t kRows = 120;
  constexpr size_t kDim = 16;
  linalg::MatrixF table = test_util::RandomTable(kRows, kDim, /*seed=*/44);
  auto exact = MakeExact(table, ScanPrecision::kFloat32);
  BlockingStore blocking(*exact);
  StoreServerFixture server(blocking);

  RemoteStoreOptions options = FastOptions();
  options.request_deadline_seconds = 120.0;  // cancel must win, not this
  options.max_retries = 0;
  auto made = RemoteStore::Connect("127.0.0.1", server.server.port(), options);
  ASSERT_TRUE(made.ok()) << made.status().ToString();
  std::unique_ptr<VectorStore> remote = std::move(*made);

  auto queries = test_util::RandomQueries(1, kDim, /*seed=*/45);
  CancellationToken token;
  ScanErrorCollector errors;
  ScanControl control;
  control.cancel = &token;
  control.errors = &errors;

  std::vector<SearchResult> got;
  Stopwatch clock;
  std::thread scanner([&] {
    got = remote->TopK(queries[0], 5, store::EmptySeenSet(), control);
  });
  blocking.AwaitEntered();  // the request is in the handler, reply pending
  token.RequestCancel();
  scanner.join();
  double waited = clock.ElapsedSeconds();

  EXPECT_TRUE(got.empty());
  EXPECT_TRUE(errors.ok());  // cancelled scans report nothing
  EXPECT_EQ(errors.count(), 0u);
  // Returned via the cancellation poll, not the 120s deadline. Generous
  // bound for sanitizer runs; the real poll slice is ~50ms.
  EXPECT_LT(waited, 30.0);

  blocking.Release();  // let the parked handler finish before teardown
}

}  // namespace
}  // namespace seesaw
