#include <gtest/gtest.h>

#include "core/embedded_dataset.h"
#include "core/multiscale.h"
#include "data/profiles.h"

namespace seesaw::core {
namespace {

// ------------------------------------------------------------- TileImage --

TEST(TileImageTest, PaperExample448Gives10Tiles) {
  // §4.3: "an image of size 448x448 maps to one coarse tile ... plus 9
  // finer-grained tiles of size 224x224".
  auto tiles = TileImage(448, 448, {});
  ASSERT_EQ(tiles.size(), 10u);
  EXPECT_FLOAT_EQ(tiles[0].Width(), 448);
  EXPECT_FLOAT_EQ(tiles[0].Height(), 448);
  for (size_t t = 1; t < tiles.size(); ++t) {
    EXPECT_FLOAT_EQ(tiles[t].Width(), 224);
    EXPECT_FLOAT_EQ(tiles[t].Height(), 224);
  }
}

TEST(TileImageTest, SmallImageMapsToSingleVector) {
  // "A smaller image would only map to one vector."
  auto tiles = TileImage(224, 224, {});
  EXPECT_EQ(tiles.size(), 1u);
  auto tiles_300 = TileImage(300, 300, {});
  EXPECT_EQ(tiles_300.size(), 1u);  // 150 < 224 -> no fine tiles
}

TEST(TileImageTest, WiderImageAddsTilesAlongThatDimension) {
  // "a wider image may add more along that dimension".
  auto square = TileImage(448, 448, {});
  auto wide = TileImage(672, 448, {});
  EXPECT_GT(wide.size(), square.size());
  // Height tiling unchanged: count per row grows, rows stay 3.
}

TEST(TileImageTest, DisabledMultiscaleGivesCoarseOnly) {
  MultiscaleOptions options;
  options.enabled = false;
  auto tiles = TileImage(1280, 720, options);
  EXPECT_EQ(tiles.size(), 1u);
}

TEST(TileImageTest, TilesStayInsideImage) {
  for (auto [w, h] : std::vector<std::pair<int, int>>{
           {448, 448}, {1280, 720}, {900, 640}, {500, 460}}) {
    auto tiles = TileImage(w, h, {});
    for (const auto& t : tiles) {
      EXPECT_GE(t.x0, 0);
      EXPECT_GE(t.y0, 0);
      EXPECT_LE(t.x1, static_cast<float>(w));
      EXPECT_LE(t.y1, static_cast<float>(h));
    }
  }
}

TEST(TileImageTest, FineTilesCoverThePatchGrid) {
  // 1280x720 with side 360, stride 180: x positions 0..900 step 180 (6),
  // y positions 0..360 step 180 (3) -> 18 fine + 1 coarse.
  auto tiles = TileImage(1280, 720, {});
  EXPECT_EQ(tiles.size(), 19u);
}

/// Parameterized invariants over many image sizes.
class TileSweep
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(TileSweep, CoarseFirstFineSquareAndAligned) {
  auto [w, h] = GetParam();
  auto tiles = TileImage(w, h, {});
  ASSERT_GE(tiles.size(), 1u);
  EXPECT_FLOAT_EQ(tiles[0].Width(), static_cast<float>(w));
  EXPECT_FLOAT_EQ(tiles[0].Height(), static_cast<float>(h));
  int side = std::min(w, h) / 2;
  for (size_t t = 1; t < tiles.size(); ++t) {
    EXPECT_FLOAT_EQ(tiles[t].Width(), static_cast<float>(side));
    EXPECT_FLOAT_EQ(tiles[t].Height(), static_cast<float>(side));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, TileSweep,
    ::testing::Values(std::pair{448, 448}, std::pair{1280, 720},
                      std::pair{640, 480}, std::pair{224, 224},
                      std::pair{2000, 500}, std::pair{449, 897}));

// ------------------------------------------------------- EmbeddedDataset --

data::DatasetProfile SmallProfile() {
  auto p = data::CocoLikeProfile(0.04);
  p.embedding_dim = 32;
  return p;
}

TEST(EmbeddedDatasetTest, CoarseModeHasOneVectorPerImage) {
  auto ds = data::Dataset::Generate(SmallProfile());
  ASSERT_TRUE(ds.ok());
  PreprocessOptions options;
  options.multiscale.enabled = false;
  options.build_md = false;
  auto ed = EmbeddedDataset::Build(*ds, options);
  ASSERT_TRUE(ed.ok());
  EXPECT_EQ(ed->num_vectors(), ds->num_images());
  for (uint32_t i = 0; i < ds->num_images(); ++i) {
    auto [begin, end] = ed->ImagePatchRange(i);
    EXPECT_EQ(end - begin, 1u);
    EXPECT_EQ(ed->patch(begin).image_idx, i);
    EXPECT_TRUE(ed->patch(begin).is_coarse);
  }
}

TEST(EmbeddedDatasetTest, MultiscaleMultipliesVectors) {
  auto ds = data::Dataset::Generate(SmallProfile());
  ASSERT_TRUE(ds.ok());
  PreprocessOptions coarse;
  coarse.multiscale.enabled = false;
  coarse.build_md = false;
  PreprocessOptions multi;
  multi.build_md = false;
  auto ed_coarse = EmbeddedDataset::Build(*ds, coarse);
  auto ed_multi = EmbeddedDataset::Build(*ds, multi);
  ASSERT_TRUE(ed_coarse.ok());
  ASSERT_TRUE(ed_multi.ok());
  // COCO-like images are 640-900 px wide: multiscale adds an order of
  // magnitude more vectors (§4.3: "a 10x increase in vectors per image").
  EXPECT_GT(ed_multi->num_vectors(), 5 * ed_coarse->num_vectors());
}

TEST(EmbeddedDatasetTest, VectorsAreUnitNorm) {
  auto ds = data::Dataset::Generate(SmallProfile());
  ASSERT_TRUE(ds.ok());
  PreprocessOptions options;
  options.build_md = false;
  auto ed = EmbeddedDataset::Build(*ds, options);
  ASSERT_TRUE(ed.ok());
  for (size_t v = 0; v < std::min<size_t>(100, ed->num_vectors()); ++v) {
    EXPECT_NEAR(linalg::Norm(ed->vectors().Row(v)), 1.0f, 1e-4f);
  }
}

TEST(EmbeddedDatasetTest, MdBuiltOnDemand) {
  auto ds = data::Dataset::Generate(SmallProfile());
  ASSERT_TRUE(ds.ok());
  PreprocessOptions no_md;
  no_md.multiscale.enabled = false;
  no_md.build_md = false;
  auto without = EmbeddedDataset::Build(*ds, no_md);
  ASSERT_TRUE(without.ok());
  EXPECT_EQ(without->md(), nullptr);

  PreprocessOptions with_md = no_md;
  with_md.build_md = true;
  with_md.md.k = 5;
  auto with = EmbeddedDataset::Build(*ds, with_md);
  ASSERT_TRUE(with.ok());
  ASSERT_NE(with->md(), nullptr);
  EXPECT_EQ(with->md()->rows(), ds->space().dim());
}

TEST(EmbeddedDatasetTest, AnnoyAndExactStoreAgreeOnTop1) {
  auto ds = data::Dataset::Generate(SmallProfile());
  ASSERT_TRUE(ds.ok());
  PreprocessOptions exact_opts;
  exact_opts.multiscale.enabled = false;
  exact_opts.build_md = false;
  PreprocessOptions annoy_opts = exact_opts;
  annoy_opts.backend = core::StoreBackend::kAnnoy;
  annoy_opts.annoy.num_trees = 24;
  auto exact = EmbeddedDataset::Build(*ds, exact_opts);
  auto annoy = EmbeddedDataset::Build(*ds, annoy_opts);
  ASSERT_TRUE(exact.ok());
  ASSERT_TRUE(annoy.ok());
  // §2.2: only a minor accuracy drop with Annoy. Top-10 overlap must be
  // high averaged over text queries.
  double recall = 0;
  size_t n_queries = std::min<size_t>(10, ds->space().num_concepts());
  for (size_t c = 0; c < n_queries; ++c) {
    auto q = ds->model().EmbedText(c);
    auto et = exact->store().TopK(q, 10);
    auto at = annoy->store().TopK(q, 10);
    recall += store::RecallAgainst(at, et);
  }
  EXPECT_GE(recall / static_cast<double>(n_queries), 0.8);
}

TEST(EmbeddedDatasetTest, StatsPopulated) {
  auto ds = data::Dataset::Generate(SmallProfile());
  ASSERT_TRUE(ds.ok());
  PreprocessOptions options;
  options.multiscale.enabled = false;
  options.md.k = 5;
  auto ed = EmbeddedDataset::Build(*ds, options);
  ASSERT_TRUE(ed.ok());
  EXPECT_GT(ed->stats().num_vectors, 0u);
  EXPECT_GE(ed->stats().embed_seconds, 0.0);
  EXPECT_GE(ed->stats().md_seconds, 0.0);
}

}  // namespace
}  // namespace seesaw::core
