#include <gtest/gtest.h>

#include <set>

#include "core/baselines/rocchio.h"
#include "core/embedded_dataset.h"
#include "core/seesaw_searcher.h"
#include "data/profiles.h"
#include "eval/task_runner.h"

namespace seesaw::core {
namespace {

struct Fixture {
  std::unique_ptr<data::Dataset> dataset;
  std::unique_ptr<EmbeddedDataset> embedded;
};

Fixture MakeFixture(bool multiscale, bool build_md) {
  auto profile = data::CocoLikeProfile(0.05);
  profile.embedding_dim = 32;
  auto ds = data::Dataset::Generate(profile);
  EXPECT_TRUE(ds.ok());
  Fixture f;
  f.dataset = std::make_unique<data::Dataset>(std::move(*ds));
  PreprocessOptions options;
  options.multiscale.enabled = multiscale;
  options.build_md = build_md;
  options.md.k = 5;
  options.md.sample_size = 500;
  auto ed = EmbeddedDataset::Build(*f.dataset, options);
  EXPECT_TRUE(ed.ok());
  f.embedded = std::make_unique<EmbeddedDataset>(std::move(*ed));
  return f;
}

TEST(SeeSawSearcherTest, NamesReflectConfiguration) {
  auto f = MakeFixture(false, false);
  auto q0 = f.embedded->TextQuery(0);

  SeeSawOptions zero;
  zero.update_query = false;
  EXPECT_EQ(SeeSawSearcher(*f.embedded, q0, zero).name(), "zero-shot");

  SeeSawOptions few;
  few.aligner.loss.use_text_term = false;
  few.aligner.loss.use_db_term = false;
  EXPECT_EQ(SeeSawSearcher(*f.embedded, q0, few).name(), "few-shot");

  SeeSawOptions qa;
  qa.aligner.loss.use_db_term = false;
  EXPECT_EQ(SeeSawSearcher(*f.embedded, q0, qa).name(), "query-align");

  EXPECT_EQ(SeeSawSearcher(*f.embedded, q0, {}).name(), "seesaw");

  SeeSawOptions labeled;
  labeled.label = "custom";
  EXPECT_EQ(SeeSawSearcher(*f.embedded, q0, labeled).name(), "custom");
}

TEST(SeeSawSearcherTest, NextBatchReturnsDistinctUnseenImages) {
  auto f = MakeFixture(true, false);
  SeeSawSearcher searcher(*f.embedded, f.embedded->TextQuery(0), {});

  std::set<uint32_t> all_seen;
  for (int round = 0; round < 4; ++round) {
    auto batch = searcher.NextBatch(10);
    ASSERT_EQ(batch.size(), 10u);
    for (const auto& hit : batch) {
      EXPECT_TRUE(all_seen.insert(hit.image_idx).second)
          << "image repeated across rounds";
      ImageFeedback fb;
      fb.image_idx = hit.image_idx;
      fb.relevant = false;
      searcher.AddFeedback(fb);
    }
    ASSERT_TRUE(searcher.Refit().ok());
  }
}

TEST(SeeSawSearcherTest, BatchScoresDescending) {
  auto f = MakeFixture(true, false);
  SeeSawSearcher searcher(*f.embedded, f.embedded->TextQuery(1), {});
  auto batch = searcher.NextBatch(20);
  for (size_t i = 1; i < batch.size(); ++i) {
    EXPECT_GE(batch[i - 1].score, batch[i].score);
  }
}

TEST(SeeSawSearcherTest, ZeroShotQueryNeverChanges) {
  auto f = MakeFixture(false, false);
  SeeSawOptions options;
  options.update_query = false;
  auto q0 = f.embedded->TextQuery(0);
  SeeSawSearcher searcher(*f.embedded, q0, options);
  auto batch = searcher.NextBatch(5);
  for (const auto& hit : batch) {
    ImageFeedback fb;
    fb.image_idx = hit.image_idx;
    fb.relevant = true;
    fb.boxes = {data::Box{0, 0, 50, 50}};
    searcher.AddFeedback(fb);
  }
  ASSERT_TRUE(searcher.Refit().ok());
  EXPECT_EQ(searcher.current_query(), q0);
}

TEST(SeeSawSearcherTest, FeedbackChangesQuery) {
  auto f = MakeFixture(false, false);
  auto q0 = f.embedded->TextQuery(0);
  SeeSawSearcher searcher(*f.embedded, q0, {});
  auto batch = searcher.NextBatch(5);
  for (const auto& hit : batch) {
    ImageFeedback fb;
    fb.image_idx = hit.image_idx;
    fb.relevant = f.dataset->IsPositive(hit.image_idx, 0);
    if (fb.relevant) fb.boxes = f.dataset->ConceptBoxes(hit.image_idx, 0);
    searcher.AddFeedback(fb);
  }
  ASSERT_TRUE(searcher.Refit().ok());
  EXPECT_NE(searcher.current_query(), q0);
  // Still a unit vector.
  EXPECT_NEAR(linalg::Norm(searcher.current_query()), 1.0f, 1e-4f);
}

TEST(SeeSawSearcherTest, RefitWithoutNewFeedbackIsNoop) {
  auto f = MakeFixture(false, false);
  SeeSawSearcher searcher(*f.embedded, f.embedded->TextQuery(0), {});
  auto batch = searcher.NextBatch(3);
  for (const auto& hit : batch) {
    ImageFeedback fb;
    fb.image_idx = hit.image_idx;
    searcher.AddFeedback(fb);
  }
  ASSERT_TRUE(searcher.Refit().ok());
  auto q_after_first = searcher.current_query();
  ASSERT_TRUE(searcher.Refit().ok());  // no new feedback
  EXPECT_EQ(searcher.current_query(), q_after_first);
}

TEST(SeeSawSearcherTest, LabelPatchesMapsBoxOverlap) {
  auto f = MakeFixture(true, false);
  // Find a multiscale image (several patches).
  uint32_t img = 0;
  for (uint32_t i = 0; i < f.embedded->num_images(); ++i) {
    auto [b, e] = f.embedded->ImagePatchRange(i);
    if (e - b > 4) {
      img = i;
      break;
    }
  }
  auto [begin, end] = f.embedded->ImagePatchRange(img);
  ASSERT_GT(end - begin, 4u);

  // Feedback box = the upper-left fine tile exactly.
  const data::Box& first_fine = f.embedded->patch(begin + 1).box;

  class Probe : public SeeSawSearcher {
   public:
    using SeeSawSearcher::LabelPatches;
    Probe(const EmbeddedDataset& ed, linalg::VectorF q)
        : SeeSawSearcher(ed, std::move(q), {}) {}
  };
  Probe probe(*f.embedded, f.embedded->TextQuery(0));

  ImageFeedback fb;
  fb.image_idx = img;
  fb.relevant = true;
  fb.boxes = {first_fine};
  auto labels = probe.LabelPatches(fb);
  ASSERT_EQ(labels.size(), end - begin);
  // Coarse patch (index 0) always overlaps -> positive.
  EXPECT_TRUE(labels[0].positive);
  // The tile itself is positive.
  EXPECT_TRUE(labels[1].positive);
  // At least one far-away tile must be negative.
  bool some_negative = false;
  for (const auto& l : labels) some_negative |= !l.positive;
  EXPECT_TRUE(some_negative);

  // An irrelevant image gets all-negative labels.
  ImageFeedback neg;
  neg.image_idx = img;
  neg.relevant = false;
  for (const auto& l : probe.LabelPatches(neg)) EXPECT_FALSE(l.positive);
}

TEST(RocchioSearcherTest, MovesTowardPositives) {
  auto f = MakeFixture(false, false);
  auto q0 = f.embedded->TextQuery(0);
  RocchioSearcher searcher(*f.embedded, q0);
  // Mark one clearly positive image.
  uint32_t pos_img = f.dataset->positives(0)[0];
  ImageFeedback fb;
  fb.image_idx = pos_img;
  fb.relevant = true;
  fb.boxes = f.dataset->ConceptBoxes(pos_img, 0);
  searcher.AddFeedback(fb);
  ASSERT_TRUE(searcher.Refit().ok());
  auto [begin, end] = f.embedded->ImagePatchRange(pos_img);
  float cos_before =
      linalg::Cosine(q0, f.embedded->vectors().Row(begin));
  float cos_after = linalg::Cosine(searcher.current_query(),
                                   f.embedded->vectors().Row(begin));
  EXPECT_GT(cos_after, cos_before);
}

TEST(RocchioSearcherTest, NoFeedbackKeepsQ0Direction) {
  auto f = MakeFixture(false, false);
  auto q0 = f.embedded->TextQuery(2);
  RocchioSearcher searcher(*f.embedded, q0);
  ASSERT_TRUE(searcher.Refit().ok());
  EXPECT_GT(linalg::Cosine(searcher.current_query(), q0), 0.999f);
}

TEST(SearcherBaseTest, ExhaustsStoreGracefully) {
  auto profile = data::CocoLikeProfile(0.05);
  profile.embedding_dim = 32;
  profile.num_images = 30;
  auto ds = data::Dataset::Generate(profile);
  ASSERT_TRUE(ds.ok());
  PreprocessOptions options;
  options.multiscale.enabled = false;
  options.build_md = false;
  auto ed = EmbeddedDataset::Build(*ds, options);
  ASSERT_TRUE(ed.ok());
  SeeSawSearcher searcher(*ed, ed->TextQuery(0), {});
  // Ask for more images than exist.
  auto batch = searcher.NextBatch(100);
  EXPECT_EQ(batch.size(), 30u);
  for (const auto& hit : batch) {
    ImageFeedback fb;
    fb.image_idx = hit.image_idx;
    searcher.AddFeedback(fb);
  }
  EXPECT_TRUE(searcher.NextBatch(10).empty());
}

}  // namespace
}  // namespace seesaw::core
