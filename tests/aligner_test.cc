#include <gtest/gtest.h>

#include "clip/concept_space.h"
#include "common/rng.h"
#include "core/aligner.h"

namespace seesaw::core {
namespace {

using linalg::VectorF;

VectorF RandomUnit(Rng& rng, size_t d) {
  return clip::RandomUnitVector(rng, d);
}

TEST(QueryAlignerTest, NoFeedbackReturnsQ0) {
  Rng rng(1);
  VectorF q0 = RandomUnit(rng, 16);
  QueryAligner aligner({}, q0, nullptr);
  auto q1 = aligner.Align();
  ASSERT_TRUE(q1.ok());
  EXPECT_EQ(*q1, q0);
}

TEST(QueryAlignerTest, ResultIsUnitNorm) {
  Rng rng(2);
  VectorF q0 = RandomUnit(rng, 16);
  QueryAligner aligner({}, q0, nullptr);
  for (int i = 0; i < 6; ++i) {
    aligner.AddFeedback(RandomUnit(rng, 16), rng.Bernoulli(0.5));
  }
  auto q1 = aligner.Align();
  ASSERT_TRUE(q1.ok());
  EXPECT_NEAR(linalg::Norm(*q1), 1.0f, 1e-5f);
}

TEST(QueryAlignerTest, CountsFeedback) {
  Rng rng(3);
  VectorF q0 = RandomUnit(rng, 8);
  QueryAligner aligner({}, q0, nullptr);
  aligner.AddFeedback(RandomUnit(rng, 8), true);
  aligner.AddFeedback(RandomUnit(rng, 8), false);
  aligner.AddFeedback(RandomUnit(rng, 8), false);
  EXPECT_EQ(aligner.num_positive(), 1u);
  EXPECT_EQ(aligner.num_negative(), 2u);
  EXPECT_EQ(aligner.num_examples(), 3u);
  aligner.Reset();
  EXPECT_EQ(aligner.num_examples(), 0u);
}

TEST(QueryAlignerTest, PositiveFeedbackPullsQueryTowardExamples) {
  // The core behaviour of Fig. 2a: feedback rotates q toward the relevant
  // cluster.
  Rng rng(4);
  const size_t d = 32;
  VectorF concept_dir = RandomUnit(rng, d);
  // q0 is misaligned: halfway between concept and a random distractor.
  VectorF distractor = RandomUnit(rng, d);
  VectorF q0 = linalg::Add(linalg::Scaled(0.5f, concept_dir),
                           linalg::Scaled(0.9f, distractor));
  linalg::NormalizeInPlace(linalg::MutVecSpan(q0));

  // Weak regularization so the pull is visible with only 16 examples (at
  // paper-default lambdas the stability principle correctly keeps q1 ~ q0
  // for such a small sample; see HugeLambdaTextPinsQueryToQ0).
  AlignerOptions options;
  options.loss.lambda = 5.0;
  options.loss.lambda_text = 0.5;
  QueryAligner aligner(options, q0, nullptr);
  for (int i = 0; i < 8; ++i) {
    // Positives near the concept direction.
    VectorF x = concept_dir;
    VectorF jitter = RandomUnit(rng, d);
    linalg::Axpy(0.2f, jitter, linalg::MutVecSpan(x));
    linalg::NormalizeInPlace(linalg::MutVecSpan(x));
    aligner.AddFeedback(x, true);
    // Negatives near the distractor.
    VectorF neg = distractor;
    VectorF njitter = RandomUnit(rng, d);
    linalg::Axpy(0.2f, njitter, linalg::MutVecSpan(neg));
    linalg::NormalizeInPlace(linalg::MutVecSpan(neg));
    aligner.AddFeedback(neg, false);
  }
  auto q1 = aligner.Align();
  ASSERT_TRUE(q1.ok());
  EXPECT_GT(linalg::Cosine(*q1, concept_dir), linalg::Cosine(q0, concept_dir));
  EXPECT_LT(linalg::Cosine(*q1, distractor), linalg::Cosine(q0, distractor));
}

TEST(QueryAlignerTest, HugeLambdaTextPinsQueryToQ0) {
  Rng rng(5);
  const size_t d = 16;
  VectorF q0 = RandomUnit(rng, d);
  AlignerOptions options;
  options.loss.lambda_text = 1e6;
  QueryAligner aligner(options, q0, nullptr);
  for (int i = 0; i < 10; ++i) {
    aligner.AddFeedback(RandomUnit(rng, d), rng.Bernoulli(0.5));
  }
  auto q1 = aligner.Align();
  ASSERT_TRUE(q1.ok());
  EXPECT_GT(linalg::Cosine(*q1, q0), 0.999f);
}

TEST(QueryAlignerTest, FewShotModeIgnoresQ0Direction) {
  // With the text term off (few-shot CLIP) and strong, consistent feedback,
  // the learned query follows the data, not q0.
  Rng rng(6);
  const size_t d = 24;
  VectorF concept_dir = RandomUnit(rng, d);
  VectorF q0 = RandomUnit(rng, d);  // unrelated to concept

  AlignerOptions options;
  options.loss.use_text_term = false;
  options.loss.use_db_term = false;
  QueryAligner aligner(options, q0, nullptr);
  for (int i = 0; i < 20; ++i) {
    VectorF pos = concept_dir;
    VectorF jitter = RandomUnit(rng, d);
    linalg::Axpy(0.15f, jitter, linalg::MutVecSpan(pos));
    linalg::NormalizeInPlace(linalg::MutVecSpan(pos));
    aligner.AddFeedback(pos, true);
    aligner.AddFeedback(RandomUnit(rng, d), false);
  }
  auto q1 = aligner.Align();
  ASSERT_TRUE(q1.ok());
  EXPECT_GT(linalg::Cosine(*q1, concept_dir), 0.5f);
}

TEST(QueryAlignerTest, DbTermSteersTowardLowPenaltyDirections) {
  // Build an M_D that penalizes direction e1 strongly and e0 not at all;
  // with equal data evidence the aligned query should prefer e0.
  const size_t d = 4;
  linalg::MatrixF md(d, d, 0.0f);
  md.At(1, 1) = 50.0f;  // penalize variation along e1

  VectorF q0 = {0.7071f, 0.7071f, 0, 0};
  AlignerOptions options;
  options.loss.lambda_db = 100.0;
  options.loss.lambda_text = 0.0;
  QueryAligner with_db(options, q0, &md);
  AlignerOptions no_db = options;
  no_db.loss.use_db_term = false;
  QueryAligner without_db(no_db, q0, &md);

  VectorF pos = {0.7071f, 0.7071f, 0, 0};
  with_db.AddFeedback(pos, true);
  without_db.AddFeedback(pos, true);

  auto q_with = with_db.Align();
  auto q_without = without_db.Align();
  ASSERT_TRUE(q_with.ok());
  ASSERT_TRUE(q_without.ok());
  // The DB-regularized query leans more on e0 (index 0) than e1 (index 1).
  EXPECT_GT((*q_with)[0], std::abs((*q_with)[1]));
  EXPECT_GT((*q_with)[0] - (*q_with)[1],
            (*q_without)[0] - (*q_without)[1] - 1e-4f);
}

TEST(QueryAlignerTest, WarmStartMatchesColdStartSolution) {
  // Warm starting is an optimization; with coherent feedback (positives
  // clustered around a direction) the landscape has a well-determined
  // optimum that both starting points should reach. (With contradictory
  // random labels the scale-invariant terms admit distinct local optima, so
  // that case is deliberately not asserted here.)
  Rng rng(7);
  const size_t d = 16;
  VectorF q0 = RandomUnit(rng, d);
  VectorF concept_dir = RandomUnit(rng, d);
  AlignerOptions warm_opts;
  warm_opts.warm_start = true;
  AlignerOptions cold_opts;
  cold_opts.warm_start = false;
  QueryAligner warm(warm_opts, q0, nullptr);
  QueryAligner cold(cold_opts, q0, nullptr);
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 5; ++i) {
      bool label = rng.Bernoulli(0.4);
      VectorF x = RandomUnit(rng, d);
      if (label) {
        linalg::Axpy(2.0f, concept_dir, linalg::MutVecSpan(x));
        linalg::NormalizeInPlace(linalg::MutVecSpan(x));
      }
      warm.AddFeedback(x, label);
      cold.AddFeedback(x, label);
    }
    auto qw = warm.Align();
    auto qc = cold.Align();
    ASSERT_TRUE(qw.ok());
    ASSERT_TRUE(qc.ok());
    // The scale-invariant terms make the landscape mildly non-convex, so the
    // two starting points may land in slightly different optima.
    EXPECT_GT(linalg::Cosine(*qw, *qc), 0.9f);
  }
}

TEST(QueryAlignerTest, AlignConvergesInFewTensOfIterations) {
  // §4.4: "L-BFGS finds the optimal solution in a few tens of steps".
  Rng rng(8);
  const size_t d = 64;
  VectorF q0 = RandomUnit(rng, d);
  QueryAligner aligner({}, q0, nullptr);
  for (int i = 0; i < 30; ++i) {
    aligner.AddFeedback(RandomUnit(rng, d), rng.Bernoulli(0.3));
  }
  auto q1 = aligner.Align();
  ASSERT_TRUE(q1.ok());
  EXPECT_LE(aligner.last_result().iterations, 60);
}

}  // namespace
}  // namespace seesaw::core
