// End-to-end behavioural tests: do the paper's headline claims hold on small
// instances of the synthetic benchmark? These are the cheapest versions of
// the bench/ experiments, kept small enough for CI.
#include <gtest/gtest.h>

#include <memory>

#include "core/baselines/rocchio.h"
#include "core/embedded_dataset.h"
#include "core/seesaw_searcher.h"
#include "data/profiles.h"
#include "eval/metrics.h"
#include "eval/task_runner.h"

namespace seesaw {
namespace {

using core::EmbeddedDataset;
using core::PreprocessOptions;
using core::SeeSawOptions;
using core::SeeSawSearcher;
using eval::RunBenchmark;
using eval::TaskOptions;

struct Bench {
  std::unique_ptr<data::Dataset> dataset;
  std::unique_ptr<EmbeddedDataset> embedded;
  std::vector<size_t> concepts;
};

/// A deficit-heavy dataset where feedback has room to help: enough images
/// that hard queries have positives to find, and a fat deficit tail so the
/// zero-shot baseline leaves headroom.
Bench MakeHardBench(bool multiscale) {
  data::DatasetProfile profile = data::LvisLikeProfile(0.16);
  profile.embedding_dim = 48;
  profile.num_concepts = 24;
  profile.deficit_tail_prob = 0.5;
  profile.deficit_tail_lo = 0.40;
  profile.deficit_tail_hi = 0.70;
  profile.min_positives_per_concept = 12;
  auto ds = data::Dataset::Generate(profile);
  EXPECT_TRUE(ds.ok());
  Bench b;
  b.dataset = std::make_unique<data::Dataset>(std::move(*ds));
  PreprocessOptions options;
  options.multiscale.enabled = multiscale;
  options.build_md = true;
  options.md.k = 8;
  options.md.sample_size = 1500;
  auto ed = EmbeddedDataset::Build(*b.dataset, options);
  EXPECT_TRUE(ed.ok());
  b.embedded = std::make_unique<EmbeddedDataset>(std::move(*ed));
  b.concepts = b.dataset->EvaluableConcepts(3);
  return b;
}

eval::SearcherFactory MakeFactory(const Bench& b, SeeSawOptions options) {
  return [&b, options](size_t concept_id) {
    return std::make_unique<SeeSawSearcher>(
        *b.embedded, b.embedded->TextQuery(concept_id), options);
  };
}

TEST(IntegrationTest, SeeSawBeatsZeroShotOnDeficitHeavyData) {
  // The headline claim (Table 2 / Fig. 5): feedback + alignment beats
  // zero-shot CLIP in mean AP on data with alignment deficits.
  Bench b = MakeHardBench(/*multiscale=*/false);
  TaskOptions task;

  SeeSawOptions zs;
  zs.update_query = false;
  auto zero_shot = RunBenchmark(MakeFactory(b, zs), *b.dataset, b.concepts,
                                task);
  auto seesaw = RunBenchmark(MakeFactory(b, {}), *b.dataset, b.concepts, task);

  // Overall AP must not regress...
  EXPECT_GT(seesaw.MeanAp(), zero_shot.MeanAp() - 0.005)
      << "zero-shot=" << zero_shot.MeanAp() << " seesaw=" << seesaw.MeanAp();
  // ...and the hard subset (where feedback has room to act) must clearly
  // improve — the paper's headline (+.27 at full scale; this fixture is
  // tiny so we require a smaller but unambiguous gain).
  auto hard_mean = [&](const eval::BenchmarkRun& run) {
    double total = 0;
    size_t count = 0;
    for (size_t i = 0; i < b.concepts.size(); ++i) {
      if (zero_shot.results[i].ap >= 0.5) continue;
      total += run.results[i].ap;
      ++count;
    }
    return count ? total / count : 0.0;
  };
  EXPECT_GT(hard_mean(seesaw), hard_mean(zero_shot) + 0.05)
      << "hard zero-shot=" << hard_mean(zero_shot)
      << " hard seesaw=" << hard_mean(seesaw);
}

TEST(IntegrationTest, SeeSawRobustImprovementOnHardSubset) {
  // Fig. 5: on the hard subset (zero-shot AP < .5), the large majority of
  // queries improve or stay level.
  Bench b = MakeHardBench(false);
  TaskOptions task;
  SeeSawOptions zs;
  zs.update_query = false;
  auto zero_shot =
      RunBenchmark(MakeFactory(b, zs), *b.dataset, b.concepts, task);
  auto seesaw = RunBenchmark(MakeFactory(b, {}), *b.dataset, b.concepts, task);

  size_t hard = 0, improved_or_level = 0;
  for (size_t i = 0; i < b.concepts.size(); ++i) {
    if (zero_shot.results[i].ap >= 0.5) continue;
    ++hard;
    if (seesaw.results[i].ap >= zero_shot.results[i].ap - 0.05) {
      ++improved_or_level;
    }
  }
  ASSERT_GT(hard, 0u) << "profile produced no hard queries";
  EXPECT_GE(static_cast<double>(improved_or_level) / hard, 0.7);
}

TEST(IntegrationTest, QueryAlignBeatsFewShot) {
  // Table 2: few-shot (no CLIP-alignment regularizer) is the weakest
  // feedback method; adding the text term recovers and improves.
  Bench b = MakeHardBench(false);
  TaskOptions task;

  SeeSawOptions few;
  few.aligner.loss.use_text_term = false;
  few.aligner.loss.use_db_term = false;
  SeeSawOptions qa;
  qa.aligner.loss.use_db_term = false;

  auto few_shot =
      RunBenchmark(MakeFactory(b, few), *b.dataset, b.concepts, task);
  auto query_align =
      RunBenchmark(MakeFactory(b, qa), *b.dataset, b.concepts, task);
  EXPECT_GT(query_align.MeanAp(), few_shot.MeanAp())
      << "few-shot=" << few_shot.MeanAp()
      << " query-align=" << query_align.MeanAp();
}

TEST(IntegrationTest, MultiscaleHelpsSmallObjectData) {
  // Table 2 / §4.3: multiscale lifts zero-shot AP when objects are small
  // relative to the frame (BDD-like geometry).
  data::DatasetProfile profile = data::BddLikeProfile(0.08);
  profile.embedding_dim = 48;
  auto ds = data::Dataset::Generate(profile);
  ASSERT_TRUE(ds.ok());
  auto dataset = std::make_unique<data::Dataset>(std::move(*ds));
  auto concepts = dataset->EvaluableConcepts(3);

  TaskOptions task;
  SeeSawOptions zs;
  zs.update_query = false;

  double coarse_ap, multi_ap;
  {
    PreprocessOptions options;
    options.multiscale.enabled = false;
    options.build_md = false;
    auto ed = EmbeddedDataset::Build(*dataset, options);
    ASSERT_TRUE(ed.ok());
    auto factory = [&](size_t concept_id) {
      return std::make_unique<SeeSawSearcher>(
          *ed, ed->TextQuery(concept_id), zs);
    };
    coarse_ap = RunBenchmark(factory, *dataset, concepts, task).MeanAp();
  }
  {
    PreprocessOptions options;
    options.multiscale.enabled = true;
    options.build_md = false;
    auto ed = EmbeddedDataset::Build(*dataset, options);
    ASSERT_TRUE(ed.ok());
    auto factory = [&](size_t concept_id) {
      return std::make_unique<SeeSawSearcher>(
          *ed, ed->TextQuery(concept_id), zs);
    };
    multi_ap = RunBenchmark(factory, *dataset, concepts, task).MeanAp();
  }
  EXPECT_GT(multi_ap, coarse_ap)
      << "coarse=" << coarse_ap << " multiscale=" << multi_ap;
}

TEST(IntegrationTest, IdealVectorBeatsInitialQuery) {
  // Fig. 4's premise: a least-squares-style fit on full labels produces a
  // much better query than the raw text embedding on deficit queries.
  Bench b = MakeHardBench(false);
  const linalg::MatrixF& x = b.embedded->vectors();

  double ideal_better = 0, total = 0;
  for (size_t concept_id : b.concepts) {
    std::vector<char> labels(x.rows(), 0);
    for (uint32_t img : b.dataset->positives(concept_id)) labels[img] = 1;

    // Initial query AP.
    auto q0 = b.embedded->TextQuery(concept_id);
    std::vector<float> init_scores(x.rows());
    for (size_t i = 0; i < x.rows(); ++i) {
      init_scores[i] = linalg::Dot(x.Row(i), linalg::VecSpan(q0));
    }
    double init_ap = eval::FullRankingAp(init_scores, labels);

    // "Ideal" query: logistic fit on all labels (few-shot loss, all data).
    core::LossOptions loss_options;
    loss_options.use_text_term = false;
    loss_options.use_db_term = false;
    loss_options.lambda = 1.0;
    core::AlignerLoss loss(loss_options, q0, nullptr);
    for (size_t i = 0; i < x.rows(); ++i) {
      loss.AddExample(x.Row(i), labels[i] ? 1.0f : 0.0f);
    }
    optim::LbfgsOptions lbfgs_options;
    lbfgs_options.max_iterations = 80;
    optim::Lbfgs lbfgs(lbfgs_options);
    auto fit = lbfgs.Minimize(loss.AsObjective(),
                              optim::VectorD(q0.begin(), q0.end()));
    ASSERT_TRUE(fit.ok());
    std::vector<float> ideal_scores(x.rows());
    linalg::VectorF w(x.cols());
    for (size_t j = 0; j < w.size(); ++j) {
      w[j] = static_cast<float>(fit->x[j]);
    }
    for (size_t i = 0; i < x.rows(); ++i) {
      ideal_scores[i] = linalg::Dot(x.Row(i), linalg::VecSpan(w));
    }
    double ideal_ap = eval::FullRankingAp(ideal_scores, labels);

    total += 1;
    // Same 0.02 tolerance as the Fig. 4 bench: a fitted vector may fall an
    // epsilon short of a perfect initial query (both ~1.0).
    if (ideal_ap >= init_ap - 0.02) ideal_better += 1;
  }
  // Fig. 4: points lie above the diagonal.
  EXPECT_GE(ideal_better / total, 0.9);
}

TEST(IntegrationTest, RocchioImprovesOverZeroShot) {
  // Table 3: Rocchio is a solid relevance-feedback baseline.
  Bench b = MakeHardBench(false);
  TaskOptions task;
  SeeSawOptions zs;
  zs.update_query = false;
  auto zero_shot =
      RunBenchmark(MakeFactory(b, zs), *b.dataset, b.concepts, task);
  auto rocchio_factory = [&b](size_t concept_id) {
    return std::make_unique<core::RocchioSearcher>(
        *b.embedded, b.embedded->TextQuery(concept_id));
  };
  auto rocchio = RunBenchmark(rocchio_factory, *b.dataset, b.concepts, task);
  EXPECT_GT(rocchio.MeanAp(), zero_shot.MeanAp() - 0.02);
}

TEST(IntegrationTest, AnnoyStoreMatchesExactWithinTolerance) {
  // §2.2: "only a minor drop in accuracy metrics using Annoy vs an exact
  // but slow scan".
  Bench b = MakeHardBench(false);
  TaskOptions task;
  SeeSawOptions zs;
  zs.update_query = false;

  PreprocessOptions annoy_opts;
  annoy_opts.multiscale.enabled = false;
  annoy_opts.build_md = false;
  annoy_opts.backend = core::StoreBackend::kAnnoy;
  annoy_opts.annoy.num_trees = 24;
  auto annoy_ed = EmbeddedDataset::Build(*b.dataset, annoy_opts);
  ASSERT_TRUE(annoy_ed.ok());

  auto exact = RunBenchmark(MakeFactory(b, zs), *b.dataset, b.concepts, task);
  auto annoy_factory = [&](size_t concept_id) {
    return std::make_unique<SeeSawSearcher>(
        *annoy_ed, annoy_ed->TextQuery(concept_id), zs);
  };
  auto approx = RunBenchmark(annoy_factory, *b.dataset, b.concepts, task);
  EXPECT_NEAR(approx.MeanAp(), exact.MeanAp(), 0.08);
}

}  // namespace
}  // namespace seesaw
