#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "common/rng.h"
#include "common/status.h"
#include "common/statusor.h"
#include "common/thread_pool.h"

namespace seesaw {
namespace {

// ---------------------------------------------------------------- Status --

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorFactoriesCarryCodeAndMessage) {
  Status s = Status::InvalidArgument("bad dim");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad dim");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad dim");

  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::Unimplemented("x").IsUnimplemented());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_NE(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_NE(Status::NotFound("a"), Status::Internal("a"));
}

TEST(StatusTest, CopyIsCheapAndIndependent) {
  Status a = Status::Internal("boom");
  Status b = a;
  EXPECT_EQ(a, b);
  a = Status::OK();
  EXPECT_TRUE(a.ok());
  EXPECT_FALSE(b.ok());
}

Status FailingHelper() { return Status::NotFound("inner"); }

Status UsesReturnIfError() {
  SEESAW_RETURN_IF_ERROR(FailingHelper());
  return Status::Internal("should not reach");
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(UsesReturnIfError().IsNotFound());
}

// -------------------------------------------------------------- StatusOr --

StatusOr<int> ParsePositive(int v) {
  if (v <= 0) return Status::InvalidArgument("not positive");
  return v;
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = ParsePositive(7);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 7);
  EXPECT_TRUE(v.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = ParsePositive(-1);
  EXPECT_FALSE(v.ok());
  EXPECT_TRUE(v.status().IsInvalidArgument());
  EXPECT_EQ(v.value_or(42), 42);
}

StatusOr<int> ChainedParse(int v) {
  SEESAW_ASSIGN_OR_RETURN(int parsed, ParsePositive(v));
  return parsed * 2;
}

TEST(StatusOrTest, AssignOrReturnHappyPath) {
  auto r = ChainedParse(21);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(StatusOrTest, AssignOrReturnPropagatesError) {
  EXPECT_FALSE(ChainedParse(0).ok());
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v(std::make_unique<int>(5));
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> owned = std::move(v).value();
  EXPECT_EQ(*owned, 5);
}

// ------------------------------------------------------------------- Rng --

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(99), b(99);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    same += (a.UniformInt(0, 1000000) == b.UniformInt(0, 1000000));
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.Uniform(2.0, 5.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(4);
  std::set<int64_t> seen;
  for (int i = 0; i < 300; ++i) seen.insert(rng.UniformInt(0, 4));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 4);
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(5);
  double sum = 0, sum2 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double g = rng.Gaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(6);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.03);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(7);
  std::vector<double> w = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 8000; ++i) ++counts[rng.Categorical(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.4);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(8);
  for (size_t k : {0u, 1u, 5u, 50u, 100u}) {
    auto s = rng.SampleWithoutReplacement(100, k);
    EXPECT_EQ(s.size(), k);
    std::set<size_t> uniq(s.begin(), s.end());
    EXPECT_EQ(uniq.size(), k);
    for (size_t v : s) EXPECT_LT(v, 100u);
  }
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(9);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  auto orig = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ForkIsIndependent) {
  Rng a(10);
  Rng child = a.Fork();
  // Child stream should not mirror the parent stream.
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    same += (a.UniformInt(0, 1 << 30) == child.UniformInt(0, 1 << 30));
  }
  EXPECT_LT(same, 2);
}

// ------------------------------------------------------------ ThreadPool --

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&hits](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(0, [&called](size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, WaitWithNoTasksReturns) {
  ThreadPool pool(2);
  pool.Wait();  // must not deadlock
  SUCCEED();
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
  }
  EXPECT_EQ(count.load(), 20);
}

}  // namespace
}  // namespace seesaw
