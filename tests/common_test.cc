#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/statusor.h"
#include "common/thread_pool.h"

namespace seesaw {
namespace {

// ---------------------------------------------------------------- Status --

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorFactoriesCarryCodeAndMessage) {
  Status s = Status::InvalidArgument("bad dim");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad dim");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad dim");

  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::Unimplemented("x").IsUnimplemented());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_NE(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_NE(Status::NotFound("a"), Status::Internal("a"));
}

TEST(StatusTest, CopyIsCheapAndIndependent) {
  Status a = Status::Internal("boom");
  Status b = a;
  EXPECT_EQ(a, b);
  a = Status::OK();
  EXPECT_TRUE(a.ok());
  EXPECT_FALSE(b.ok());
}

Status FailingHelper() { return Status::NotFound("inner"); }

Status UsesReturnIfError() {
  SEESAW_RETURN_IF_ERROR(FailingHelper());
  return Status::Internal("should not reach");
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(UsesReturnIfError().IsNotFound());
}

// -------------------------------------------------------------- StatusOr --

StatusOr<int> ParsePositive(int v) {
  if (v <= 0) return Status::InvalidArgument("not positive");
  return v;
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = ParsePositive(7);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 7);
  EXPECT_TRUE(v.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = ParsePositive(-1);
  EXPECT_FALSE(v.ok());
  EXPECT_TRUE(v.status().IsInvalidArgument());
  EXPECT_EQ(v.value_or(42), 42);
}

StatusOr<int> ChainedParse(int v) {
  SEESAW_ASSIGN_OR_RETURN(int parsed, ParsePositive(v));
  return parsed * 2;
}

TEST(StatusOrTest, AssignOrReturnHappyPath) {
  auto r = ChainedParse(21);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(StatusOrTest, AssignOrReturnPropagatesError) {
  EXPECT_FALSE(ChainedParse(0).ok());
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v(std::make_unique<int>(5));
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> owned = std::move(v).value();
  EXPECT_EQ(*owned, 5);
}

// ------------------------------------------------------------------- Rng --

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(99), b(99);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    same += (a.UniformInt(0, 1000000) == b.UniformInt(0, 1000000));
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.Uniform(2.0, 5.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(4);
  std::set<int64_t> seen;
  for (int i = 0; i < 300; ++i) seen.insert(rng.UniformInt(0, 4));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 4);
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(5);
  double sum = 0, sum2 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double g = rng.Gaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(6);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.03);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(7);
  std::vector<double> w = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 8000; ++i) ++counts[rng.Categorical(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.4);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(8);
  for (size_t k : {0u, 1u, 5u, 50u, 100u}) {
    auto s = rng.SampleWithoutReplacement(100, k);
    EXPECT_EQ(s.size(), k);
    std::set<size_t> uniq(s.begin(), s.end());
    EXPECT_EQ(uniq.size(), k);
    for (size_t v : s) EXPECT_LT(v, 100u);
  }
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(9);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  auto orig = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ForkIsIndependent) {
  Rng a(10);
  Rng child = a.Fork();
  // Child stream should not mirror the parent stream.
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    same += (a.UniformInt(0, 1 << 30) == child.UniformInt(0, 1 << 30));
  }
  EXPECT_LT(same, 2);
}

// ------------------------------------------------------------ ThreadPool --

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  // Per-task handles instead of the old pool-wide Wait(): each handle blocks
  // only on its own task, so callers never wait on other sessions' work.
  std::vector<TaskHandle> handles;
  for (int i = 0; i < 100; ++i) {
    handles.push_back(pool.SubmitWithResult([&count] { count.fetch_add(1); }));
  }
  for (TaskHandle& h : handles) h.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, TaskHandleReportsCompletion) {
  ThreadPool pool(2);
  TaskHandle handle = pool.SubmitWithResult([] {});
  ASSERT_TRUE(handle.valid());
  handle.Wait();
  EXPECT_TRUE(handle.done());
  handle.Wait();  // waiting again on a finished task returns immediately
  EXPECT_FALSE(TaskHandle().valid());
}

TEST(ThreadPoolTest, CancellationTokenIsCooperative) {
  ThreadPool pool(2);
  CancellationToken token;
  EXPECT_FALSE(token.cancelled());
  CancellationToken copy = token;  // copies share the flag
  token.RequestCancel();
  EXPECT_TRUE(copy.cancelled());

  // A task observing the token skips its work.
  std::atomic<int> worked{0};
  CancellationToken cancel;
  cancel.RequestCancel();
  TaskHandle handle = pool.SubmitWithResult([cancel, &worked] {
    if (!cancel.cancelled()) worked.fetch_add(1);
  });
  handle.Wait();
  EXPECT_EQ(worked.load(), 0);
}

TEST(ThreadPoolTest, WaitOnHandleFromInsidePoolTask) {
  // A pool task waiting on another task's handle must help drain the queue
  // instead of deadlocking, even when the pool has a single worker.
  ThreadPool pool(1);
  std::atomic<int> inner_ran{0};
  TaskHandle outer = pool.SubmitWithResult([&pool, &inner_ran] {
    TaskHandle inner =
        pool.SubmitWithResult([&inner_ran] { inner_ran.fetch_add(1); });
    inner.Wait();
  });
  outer.Wait();
  EXPECT_EQ(inner_ran.load(), 1);
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&hits](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(0, [&called](size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  // Regression: a task running on the pool calling ParallelFor on the same
  // pool used to park every worker on a latch with the chunks still queued
  // behind them. The caller-runs wait drains its own queue instead.
  ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  pool.ParallelFor(4, [&pool, &inner_total](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      pool.ParallelFor(8, [&inner_total](size_t b, size_t e) {
        inner_total.fetch_add(static_cast<int>(e - b));
      });
    }
  });
  EXPECT_EQ(inner_total.load(), 4 * 8);
}

TEST(ThreadPoolTest, DeeplyNestedParallelForOnSingleWorker) {
  // Three levels of nesting on a one-worker pool: only caller-runs draining
  // can make progress here.
  ThreadPool pool(1);
  std::atomic<int> leaves{0};
  pool.ParallelFor(2, [&](size_t b0, size_t e0) {
    for (size_t i = b0; i < e0; ++i) {
      pool.ParallelFor(2, [&](size_t b1, size_t e1) {
        for (size_t j = b1; j < e1; ++j) {
          pool.ParallelFor(2, [&](size_t b2, size_t e2) {
            leaves.fetch_add(static_cast<int>(e2 - b2));
          });
        }
      });
    }
  });
  EXPECT_EQ(leaves.load(), 2 * 2 * 2);
}

TEST(ThreadPoolTest, ConcurrentNestedParallelForManySessions) {
  // Many external "sessions" hammer one shared pool, each with a nested
  // ParallelFor (the prefetch-task-doing-TopKBatch shape), repeatedly.
  ThreadPool pool(3);
  constexpr int kSessions = 8;
  constexpr int kRounds = 20;
  std::atomic<int> total{0};
  std::vector<std::thread> sessions;
  for (int s = 0; s < kSessions; ++s) {
    sessions.emplace_back([&pool, &total] {
      for (int r = 0; r < kRounds; ++r) {
        pool.ParallelFor(6, [&pool, &total](size_t begin, size_t end) {
          for (size_t i = begin; i < end; ++i) {
            pool.ParallelFor(4, [&total](size_t b, size_t e) {
              total.fetch_add(static_cast<int>(e - b));
            });
          }
        });
      }
    });
  }
  for (auto& t : sessions) t.join();
  EXPECT_EQ(total.load(), kSessions * kRounds * 6 * 4);
}

TEST(ThreadPoolTest, TryRunOneTaskDrainsQueue) {
  ThreadPool pool(1);
  // Park the single worker so later submissions stay queued; wait for the
  // worker to actually hold the blocker before queueing more (otherwise the
  // helping main thread could pop the blocker itself and spin on a flag it
  // only sets later).
  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  TaskHandle blocker = pool.SubmitWithResult([&started, &release] {
    started.store(true);
    while (!release.load()) std::this_thread::yield();
  });
  while (!started.load()) std::this_thread::yield();
  std::atomic<int> ran{0};
  pool.Submit([&ran] { ran.fetch_add(1); });
  pool.Submit([&ran] { ran.fetch_add(1); });
  // The caller drains the queued tasks itself.
  int helped = 0;
  while (pool.TryRunOneTask()) ++helped;
  EXPECT_EQ(helped, 2);
  EXPECT_EQ(ran.load(), 2);
  release.store(true);
  blocker.Wait();
  EXPECT_FALSE(pool.TryRunOneTask());
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
  }
  EXPECT_EQ(count.load(), 20);
}

}  // namespace
}  // namespace seesaw
