#include <gtest/gtest.h>

#include <cmath>

#include "clip/concept_space.h"
#include "common/rng.h"
#include "core/loss.h"
#include "optim/lbfgs.h"
#include "optim/objective.h"

namespace seesaw::core {
namespace {

using linalg::MatrixF;
using linalg::VectorF;

VectorF RandomUnit(Rng& rng, size_t d) {
  return clip::RandomUnitVector(rng, d);
}

/// A random symmetric PSD matrix A^T A.
MatrixF RandomPsd(Rng& rng, size_t d) {
  MatrixF a(d, d);
  for (size_t i = 0; i < d; ++i) {
    for (size_t j = 0; j < d; ++j) {
      a.At(i, j) = static_cast<float>(rng.Gaussian(0, 0.3));
    }
  }
  MatrixF psd(d, d, 0.0f);
  for (size_t i = 0; i < d; ++i) psd.AddOuterProduct(1.0f, a.Row(i));
  return psd;
}

TEST(AlignerLossTest, NoExamplesPureRegularizers) {
  Rng rng(1);
  const size_t d = 8;
  VectorF q0 = RandomUnit(rng, d);
  LossOptions options;
  options.lambda = 2.0;
  options.lambda_text = 3.0;
  options.use_db_term = false;
  AlignerLoss loss(options, q0, nullptr);

  // At w = q0: |w|^2 = 1, text term = 0.
  optim::VectorD w(q0.begin(), q0.end());
  optim::VectorD grad;
  double f = loss.Evaluate(w, &grad);
  EXPECT_NEAR(f, 2.0, 1e-5);
}

TEST(AlignerLossTest, TextTermZeroAtQ0AndPositiveElsewhere) {
  Rng rng(2);
  const size_t d = 16;
  VectorF q0 = RandomUnit(rng, d);
  LossOptions options;
  options.lambda = 0.0;
  options.lambda_text = 5.0;
  options.use_db_term = false;
  AlignerLoss loss(options, q0, nullptr);

  optim::VectorD at_q0(q0.begin(), q0.end());
  optim::VectorD grad;
  EXPECT_NEAR(loss.Evaluate(at_q0, &grad), 0.0, 1e-5);

  VectorF other = RandomUnit(rng, d);
  optim::VectorD at_other(other.begin(), other.end());
  EXPECT_GT(loss.Evaluate(at_other, &grad), 0.1);
}

TEST(AlignerLossTest, TextTermIsScaleInvariant) {
  Rng rng(3);
  const size_t d = 12;
  VectorF q0 = RandomUnit(rng, d);
  LossOptions options;
  options.lambda = 0.0;
  options.lambda_text = 1.0;
  options.use_db_term = false;
  AlignerLoss loss(options, q0, nullptr);
  VectorF w = RandomUnit(rng, d);
  optim::VectorD w1(w.begin(), w.end());
  optim::VectorD w3 = w1;
  for (auto& v : w3) v *= 3.0;
  optim::VectorD grad;
  EXPECT_NEAR(loss.Evaluate(w1, &grad), loss.Evaluate(w3, &grad), 1e-6);
}

TEST(AlignerLossTest, DbTermIsScaleInvariant) {
  Rng rng(4);
  const size_t d = 10;
  VectorF q0 = RandomUnit(rng, d);
  MatrixF md = RandomPsd(rng, d);
  LossOptions options;
  options.lambda = 0.0;
  options.use_text_term = false;
  options.lambda_db = 1.0;
  AlignerLoss loss(options, q0, &md);
  VectorF w = RandomUnit(rng, d);
  optim::VectorD w1(w.begin(), w.end());
  optim::VectorD w5 = w1;
  for (auto& v : w5) v *= 5.0;
  optim::VectorD grad;
  EXPECT_NEAR(loss.Evaluate(w1, &grad), loss.Evaluate(w5, &grad), 1e-6);
}

TEST(AlignerLossTest, DataTermMatchesLogisticLoss) {
  VectorF q0 = {1, 0, 0, 0};
  LossOptions options;
  options.lambda = 0.0;
  options.use_text_term = false;
  options.use_db_term = false;
  options.balance_classes = false;  // check the raw logistic value
  AlignerLoss loss(options, q0, nullptr);
  VectorF x = {0.5f, 0.5f, 0, 0};
  loss.AddExample(x, 1.0f);
  optim::VectorD w = {1, 1, 0, 0};  // w.x = 1
  optim::VectorD grad;
  double f = loss.Evaluate(w, &grad);
  EXPECT_NEAR(f, std::log(1.0 + std::exp(-1.0)), 1e-9);
}

TEST(AlignerLossTest, ExampleWeightScalesContribution) {
  VectorF q0 = {1, 0, 0, 0};
  LossOptions options;
  options.lambda = 0.0;
  options.use_text_term = false;
  options.use_db_term = false;
  AlignerLoss single(options, q0, nullptr);
  AlignerLoss weighted(options, q0, nullptr);
  VectorF x = {0, 1, 0, 0};
  single.AddExample(x, 0.0f, 1.0f);
  weighted.AddExample(x, 0.0f, 2.5f);
  optim::VectorD w = {0, 0.7, 0, 0};
  optim::VectorD g1, g2;
  EXPECT_NEAR(weighted.Evaluate(w, &g2), 2.5 * single.Evaluate(w, &g1), 1e-9);
}

TEST(AlignerLossTest, SoftLabelsAccepted) {
  VectorF q0 = {1, 0};
  LossOptions options;
  AlignerLoss loss(options, q0, nullptr);
  loss.AddExample(VectorF{0.5f, 0.5f}, 0.3f);
  EXPECT_EQ(loss.num_examples(), 1u);
  optim::VectorD grad;
  EXPECT_TRUE(std::isfinite(loss.Evaluate({1.0, 0.0}, &grad)));
}

TEST(AlignerLossTest, ClearExamplesResets) {
  VectorF q0 = {1, 0};
  AlignerLoss loss({}, q0, nullptr);
  loss.AddExample(VectorF{0, 1}, 1.0f);
  loss.ClearExamples();
  EXPECT_EQ(loss.num_examples(), 0u);
}

// Gradient check sweep: the analytic gradient must match central
// differences for random configurations of every term combination.
struct GradCheckParam {
  bool text;
  bool db;
  int num_examples;
};

class LossGradientSweep : public ::testing::TestWithParam<GradCheckParam> {};

TEST_P(LossGradientSweep, AnalyticMatchesNumeric) {
  const auto param = GetParam();
  Rng rng(500 + param.num_examples + param.text * 2 + param.db);
  const size_t d = 12;
  VectorF q0 = RandomUnit(rng, d);
  MatrixF md = RandomPsd(rng, d);

  LossOptions options;
  options.lambda = 1.7;
  options.lambda_text = 2.3;
  options.lambda_db = 4.1;
  options.use_text_term = param.text;
  options.use_db_term = param.db;
  AlignerLoss loss(options, q0, &md);
  for (int i = 0; i < param.num_examples; ++i) {
    loss.AddExample(RandomUnit(rng, d), rng.Bernoulli(0.5) ? 1.0f : 0.0f,
                    0.5f + static_cast<float>(rng.Uniform()));
  }

  // Probe at a few random points away from 0.
  for (int probe = 0; probe < 3; ++probe) {
    VectorF wf = RandomUnit(rng, d);
    optim::VectorD w(wf.begin(), wf.end());
    for (auto& v : w) v *= 0.5 + rng.Uniform();

    optim::VectorD analytic;
    loss.Evaluate(w, &analytic);
    // The loss evaluates in float32 internally, so central differences carry
    // ~1e-6-relative value noise; a larger step + tolerance keeps the check
    // sensitive to formula errors (which are O(1)) without false alarms.
    auto numeric = optim::NumericalGradient(
        [&loss](const optim::VectorD& p) {
          optim::VectorD g;
          return loss.Evaluate(p, &g);
        },
        w, 3e-4);
    for (size_t j = 0; j < d; ++j) {
      EXPECT_NEAR(analytic[j], numeric[j],
                  8e-3 * std::max(1.0, std::abs(numeric[j])))
          << "dim " << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    TermCombos, LossGradientSweep,
    ::testing::Values(GradCheckParam{false, false, 0},
                      GradCheckParam{false, false, 5},
                      GradCheckParam{true, false, 0},
                      GradCheckParam{true, false, 7},
                      GradCheckParam{false, true, 4},
                      GradCheckParam{true, true, 0},
                      GradCheckParam{true, true, 3},
                      GradCheckParam{true, true, 12}));

TEST(AlignerLossTest, MinimizerBalancesDataAndTextTerm) {
  // With a huge lambda_text, the minimizer must stay near q0; with
  // lambda_text = 0 it should drift toward separating the data.
  Rng rng(6);
  const size_t d = 16;
  VectorF q0 = RandomUnit(rng, d);
  VectorF target = RandomUnit(rng, d);  // "true" concept direction != q0

  auto make_loss = [&](double lambda_text) {
    LossOptions options;
    options.lambda = 1.0;
    options.lambda_text = lambda_text;
    options.use_db_term = false;
    auto loss = std::make_unique<AlignerLoss>(options, q0, nullptr);
    Rng data_rng(7);
    for (int i = 0; i < 30; ++i) {
      bool pos = data_rng.Bernoulli(0.5);
      VectorF x = RandomUnit(data_rng, d);
      // Positives lie near `target`.
      if (pos) {
        linalg::Axpy(2.0f, target, linalg::MutVecSpan(x));
        linalg::NormalizeInPlace(linalg::MutVecSpan(x));
      }
      loss->AddExample(x, pos ? 1.0f : 0.0f);
    }
    return loss;
  };

  optim::Lbfgs opt;
  optim::VectorD w0(q0.begin(), q0.end());

  auto strong = make_loss(1000.0);
  auto strong_result = opt.Minimize(strong->AsObjective(), w0);
  ASSERT_TRUE(strong_result.ok());
  VectorF w_strong(d);
  for (size_t j = 0; j < d; ++j) {
    w_strong[j] = static_cast<float>(strong_result->x[j]);
  }
  EXPECT_GT(linalg::Cosine(w_strong, q0), 0.95f);

  auto weak = make_loss(0.0);
  auto weak_result = opt.Minimize(weak->AsObjective(), w0);
  ASSERT_TRUE(weak_result.ok());
  VectorF w_weak(d);
  for (size_t j = 0; j < d; ++j) {
    w_weak[j] = static_cast<float>(weak_result->x[j]);
  }
  EXPECT_GT(linalg::Cosine(w_weak, target), linalg::Cosine(w_strong, target));
}

}  // namespace
}  // namespace seesaw::core
