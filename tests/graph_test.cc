#include <gtest/gtest.h>

#include <cmath>

#include "clip/concept_space.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "graph/adjacency.h"
#include "graph/knn.h"
#include "graph/label_propagation.h"
#include "graph/nn_descent.h"

namespace seesaw::graph {
namespace {

using linalg::MatrixF;
using linalg::SparseMatrixF;
using linalg::VectorF;

MatrixF RandomTable(size_t n, size_t d, uint64_t seed) {
  Rng rng(seed);
  MatrixF table(n, d);
  for (size_t i = 0; i < n; ++i) {
    auto row = table.MutableRow(i);
    for (size_t j = 0; j < d; ++j) row[j] = static_cast<float>(rng.Gaussian());
    linalg::NormalizeInPlace(row);
  }
  return table;
}

/// Two well-separated Gaussian blobs; useful for propagation tests.
MatrixF TwoClusters(size_t per_cluster, size_t d, uint64_t seed) {
  Rng rng(seed);
  MatrixF table(2 * per_cluster, d);
  for (size_t i = 0; i < 2 * per_cluster; ++i) {
    auto row = table.MutableRow(i);
    float center = i < per_cluster ? 4.0f : -4.0f;
    row[0] = center + static_cast<float>(rng.Gaussian(0, 0.3));
    for (size_t j = 1; j < d; ++j) {
      row[j] = static_cast<float>(rng.Gaussian(0, 0.3));
    }
  }
  return table;
}

// --------------------------------------------------------------- ExactKnn --

TEST(ExactKnnTest, FindsTrueNeighborsOnALine) {
  // Points at x = 0, 1, 2, ..., so neighbors are adjacent indices.
  MatrixF table(6, 2);
  for (size_t i = 0; i < 6; ++i) table.At(i, 0) = static_cast<float>(i);
  KnnGraph g = ExactKnn(table, 2);
  EXPECT_EQ(g.k, 2u);
  // Node 0's nearest are 1 then 2.
  ASSERT_EQ(g.neighbors[0].size(), 2u);
  EXPECT_EQ(g.neighbors[0][0].id, 1u);
  EXPECT_EQ(g.neighbors[0][1].id, 2u);
  // Node 3's nearest are 2 and 4 (order by distance, both dist 1).
  std::set<uint32_t> n3;
  for (auto& nb : g.neighbors[3]) n3.insert(nb.id);
  EXPECT_TRUE(n3.count(2));
  EXPECT_TRUE(n3.count(4));
}

TEST(ExactKnnTest, NeverIncludesSelf) {
  MatrixF table = RandomTable(50, 8, 1);
  KnnGraph g = ExactKnn(table, 5);
  for (size_t i = 0; i < 50; ++i) {
    for (auto& nb : g.neighbors[i]) EXPECT_NE(nb.id, i);
  }
}

TEST(ExactKnnTest, KClampedToNMinusOne) {
  MatrixF table = RandomTable(4, 4, 2);
  KnnGraph g = ExactKnn(table, 10);
  EXPECT_EQ(g.k, 3u);
  for (auto& nbrs : g.neighbors) EXPECT_EQ(nbrs.size(), 3u);
}

TEST(ExactKnnTest, ParallelMatchesSerial) {
  MatrixF table = RandomTable(120, 8, 3);
  KnnGraph serial = ExactKnn(table, 6);
  ThreadPool pool(3);
  KnnGraph parallel = ExactKnn(table, 6, &pool);
  EXPECT_DOUBLE_EQ(KnnRecall(parallel, serial), 1.0);
}

TEST(KnnRecallTest, PartialOverlap) {
  KnnGraph a, b;
  a.k = b.k = 2;
  a.neighbors = {{{1, 1.f}, {2, 2.f}}, {{0, 1.f}, {2, 1.f}}};
  b.neighbors = {{{1, 1.f}, {3, 2.f}}, {{0, 1.f}, {2, 1.f}}};
  EXPECT_DOUBLE_EQ(KnnRecall(b, a), 0.75);
}

// -------------------------------------------------------------- NnDescent --

TEST(NnDescentTest, ValidatesInput) {
  EXPECT_FALSE(NnDescent(MatrixF(1, 4), {}).ok());
  NnDescentOptions zero_k;
  zero_k.k = 0;
  EXPECT_FALSE(NnDescent(RandomTable(10, 4, 4), zero_k).ok());
}

TEST(NnDescentTest, HighRecallVersusExact) {
  MatrixF table = RandomTable(800, 16, 5);
  NnDescentOptions options;
  options.k = 10;
  auto approx = NnDescent(table, options);
  ASSERT_TRUE(approx.ok());
  KnnGraph exact = ExactKnn(table, 10);
  EXPECT_GE(KnnRecall(*approx, exact), 0.90);
}

TEST(NnDescentTest, DeterministicGivenSeed) {
  MatrixF table = RandomTable(300, 8, 6);
  NnDescentOptions options;
  options.k = 5;
  auto a = NnDescent(table, options);
  auto b = NnDescent(table, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(KnnRecall(*a, *b), 1.0);
}

/// Recall sweep across k, the property §4.2 depends on.
class NnDescentSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(NnDescentSweep, RecallAboveNinetyPercent) {
  const size_t k = GetParam();
  MatrixF table = RandomTable(600, 12, 100 + k);
  NnDescentOptions options;
  options.k = k;
  auto approx = NnDescent(table, options);
  ASSERT_TRUE(approx.ok());
  KnnGraph exact = ExactKnn(table, k);
  EXPECT_GE(KnnRecall(*approx, exact), 0.9) << "k=" << k;
}

INSTANTIATE_TEST_SUITE_P(Ks, NnDescentSweep, ::testing::Values(5, 10, 20));

// -------------------------------------------------- Gaussian adjacency etc --

TEST(AdjacencyTest, GaussianWeightsDecayWithDistance) {
  KnnGraph g;
  g.k = 2;
  g.neighbors = {{{1, 0.01f}, {2, 1.0f}}, {{0, 0.01f}}, {{0, 1.0f}}};
  SparseMatrixF w = GaussianAdjacency(g, 0.5);
  // Edge (0,1) has much smaller distance than (0,2) -> larger weight.
  auto idx = w.RowIndices(0);
  auto val = w.RowValues(0);
  ASSERT_EQ(idx.size(), 2u);
  float w01 = idx[0] == 1 ? val[0] : val[1];
  float w02 = idx[0] == 2 ? val[0] : val[1];
  EXPECT_GT(w01, w02);
}

TEST(AdjacencyTest, ResultIsSymmetric) {
  MatrixF table = RandomTable(60, 8, 7);
  KnnGraph g = ExactKnn(table, 4);
  SparseMatrixF w = GaussianAdjacency(g, 0.8);
  // Check w == w^T through bilinear probes.
  Rng rng(8);
  for (int t = 0; t < 5; ++t) {
    VectorF x(60), y(60);
    for (auto& v : x) v = static_cast<float>(rng.Gaussian());
    for (auto& v : y) v = static_cast<float>(rng.Gaussian());
    EXPECT_NEAR(w.Bilinear(x, y), w.Bilinear(y, x), 1e-3);
  }
}

TEST(AdjacencyTest, MedianNeighborDistance) {
  KnnGraph g;
  g.k = 1;
  g.neighbors = {{{1, 4.0f}}, {{0, 4.0f}}, {{0, 16.0f}}};
  // dist2 values {4, 4, 16}: median 4 -> distance 2.
  EXPECT_DOUBLE_EQ(MedianNeighborDistance(g), 2.0);
}

TEST(LaplacianTest, RowsSumToZero) {
  MatrixF table = RandomTable(40, 6, 9);
  KnnGraph g = ExactKnn(table, 4);
  SparseMatrixF w = GaussianAdjacency(g, 1.0);
  SparseMatrixF lap = Laplacian(w);
  VectorF ones(40, 1.0f);
  VectorF y = lap.Apply(ones);
  for (float v : y) EXPECT_NEAR(v, 0.0f, 1e-4f);
}

TEST(LaplacianTest, QuadraticFormIsNonNegative) {
  MatrixF table = RandomTable(40, 6, 10);
  KnnGraph g = ExactKnn(table, 4);
  SparseMatrixF w = GaussianAdjacency(g, 1.0);
  SparseMatrixF lap = Laplacian(w);
  Rng rng(11);
  for (int t = 0; t < 10; ++t) {
    VectorF x(40);
    for (auto& v : x) v = static_cast<float>(rng.Gaussian());
    EXPECT_GE(lap.Bilinear(x, x), -1e-4);
  }
}

// ------------------------------------------------------------- ComputeMd --

TEST(ComputeMdTest, ValidatesInput) {
  EXPECT_FALSE(ComputeMd(MatrixF(1, 8), {}).ok());
  MdOptions zero_k;
  zero_k.k = 0;
  EXPECT_FALSE(ComputeMd(RandomTable(20, 8, 12), zero_k).ok());
}

TEST(ComputeMdTest, OutputIsSymmetricPsd) {
  MatrixF table = RandomTable(200, 16, 13);
  MdOptions options;
  options.k = 5;
  auto md = ComputeMd(table, options);
  ASSERT_TRUE(md.ok());
  EXPECT_EQ(md->rows(), 16u);
  EXPECT_EQ(md->cols(), 16u);
  for (size_t r = 0; r < 16; ++r) {
    for (size_t c = 0; c < 16; ++c) {
      EXPECT_NEAR(md->At(r, c), md->At(c, r), 1e-4f);
    }
  }
  // PSD: w^T M w >= 0 for probes (Laplacian quadratic form property).
  Rng rng(14);
  for (int t = 0; t < 10; ++t) {
    VectorF w(16);
    for (auto& v : w) v = static_cast<float>(rng.Gaussian());
    EXPECT_GE(md->QuadraticForm(w), -1e-2);
  }
}

TEST(ComputeMdTest, QuadraticFormPenalizesCrossClusterDirections) {
  // M_D's purpose (§4.2): directions whose scores vary along graph edges are
  // penalized. A direction separating two tight clusters keeps scores
  // constant within each cluster (low penalty); a direction slicing through
  // both clusters varies along intra-cluster edges (high penalty).
  MatrixF table = TwoClusters(60, 8, 15);
  MdOptions options;
  options.k = 5;
  auto md = ComputeMd(table, options);
  ASSERT_TRUE(md.ok());
  VectorF separating(8, 0.0f);
  separating[0] = 1.0f;  // clusters differ in dim 0
  VectorF slicing(8, 0.0f);
  slicing[1] = 1.0f;  // dim 1 is intra-cluster noise
  EXPECT_LT(md->QuadraticForm(separating) * 0.5,
            md->QuadraticForm(slicing));
}

TEST(ComputeMdTest, SampledApproximatesFull) {
  // The paper's preprocessing shortcut: M_D from a sample ~ M_D full.
  MatrixF table = RandomTable(600, 12, 16);
  MdOptions full_opts;
  full_opts.k = 6;
  MdOptions sampled_opts = full_opts;
  sampled_opts.sample_size = 300;
  auto full = ComputeMd(table, full_opts);
  auto sampled = ComputeMd(table, sampled_opts);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(sampled.ok());
  // Compare normalized quadratic forms along probe directions.
  Rng rng(17);
  double full_norm = full->FrobeniusNorm();
  double sampled_norm = sampled->FrobeniusNorm();
  ASSERT_GT(full_norm, 0);
  ASSERT_GT(sampled_norm, 0);
  for (int t = 0; t < 8; ++t) {
    VectorF w = clip::RandomUnitVector(rng, 12);
    double qf = full->QuadraticForm(w) / full_norm;
    double qs = sampled->QuadraticForm(w) / sampled_norm;
    EXPECT_NEAR(qf, qs, 0.35 * std::max(std::abs(qf), 0.05));
  }
}

// ------------------------------------------------------ LabelPropagation --

SparseMatrixF ChainAdjacency(size_t n) {
  std::vector<linalg::Triplet> t;
  for (uint32_t i = 0; i + 1 < n; ++i) {
    t.push_back({i, i + 1, 1.0f});
    t.push_back({i + 1, i, 1.0f});
  }
  return SparseMatrixF::FromTriplets(n, n, std::move(t));
}

TEST(LabelPropagationTest, ValidatesInput) {
  SparseMatrixF rect = SparseMatrixF::FromTriplets(2, 3, {});
  EXPECT_FALSE(PropagateLabels(rect, {}, {}).ok());
  SparseMatrixF w = ChainAdjacency(3);
  EXPECT_FALSE(PropagateLabels(w, {{5, 1.0f}}, {}).ok());
}

TEST(LabelPropagationTest, ClampsObservedLabels) {
  SparseMatrixF w = ChainAdjacency(5);
  auto f = PropagateLabels(w, {{0, 1.0f}, {4, 0.0f}}, {});
  ASSERT_TRUE(f.ok());
  EXPECT_FLOAT_EQ((*f)[0], 1.0f);
  EXPECT_FLOAT_EQ((*f)[4], 0.0f);
}

TEST(LabelPropagationTest, InterpolatesAlongChain) {
  SparseMatrixF w = ChainAdjacency(5);
  LabelPropagationOptions options;
  options.max_iters = 2000;
  options.tolerance = 1e-7;
  auto f = PropagateLabels(w, {{0, 1.0f}, {4, 0.0f}}, options);
  ASSERT_TRUE(f.ok());
  // Harmonic solution on a path: linear interpolation.
  EXPECT_NEAR((*f)[1], 0.75f, 0.02f);
  EXPECT_NEAR((*f)[2], 0.50f, 0.02f);
  EXPECT_NEAR((*f)[3], 0.25f, 0.02f);
}

TEST(LabelPropagationTest, MonotoneAlongChain) {
  SparseMatrixF w = ChainAdjacency(9);
  LabelPropagationOptions options;
  options.max_iters = 3000;
  options.tolerance = 1e-7;
  auto f = PropagateLabels(w, {{0, 1.0f}, {8, 0.0f}}, options);
  ASSERT_TRUE(f.ok());
  for (size_t i = 1; i < 9; ++i) EXPECT_LE((*f)[i], (*f)[i - 1] + 1e-4f);
}

TEST(LabelPropagationTest, ClusterStructurePropagates) {
  // Label one node per cluster; whole clusters should adopt the labels.
  MatrixF table = TwoClusters(40, 6, 18);
  KnnGraph g = ExactKnn(table, 5);
  SparseMatrixF w = GaussianAdjacency(g, MedianNeighborDistance(g));
  LabelPropagationOptions options;
  options.max_iters = 3000;
  options.tolerance = 1e-6;
  auto f = PropagateLabels(w, {{0, 1.0f}, {79, 0.0f}}, options);
  ASSERT_TRUE(f.ok());
  // Cluster 0 = indices [0, 40), cluster 1 = [40, 80).
  double mean0 = 0, mean1 = 0;
  for (size_t i = 0; i < 40; ++i) mean0 += (*f)[i];
  for (size_t i = 40; i < 80; ++i) mean1 += (*f)[i];
  mean0 /= 40;
  mean1 /= 40;
  EXPECT_GT(mean0, 0.8);
  EXPECT_LT(mean1, 0.2);
}

TEST(LabelPropagationTest, IsolatedNodesKeepPrior) {
  SparseMatrixF w = SparseMatrixF::FromTriplets(3, 3, {{0, 1, 1.0f},
                                                       {1, 0, 1.0f}});
  LabelPropagationOptions options;
  options.prior = 0.25;
  auto f = PropagateLabels(w, {{0, 1.0f}}, options);
  ASSERT_TRUE(f.ok());
  EXPECT_FLOAT_EQ((*f)[2], 0.25f);  // node 2 has no edges
}

}  // namespace
}  // namespace seesaw::graph
