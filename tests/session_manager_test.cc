// SessionManager: id registry semantics plus a concurrency smoke test
// running independent sessions from multiple threads against one service.
#include "core/session_manager.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "data/profiles.h"
#include "eval/task_runner.h"

namespace seesaw {
namespace {

data::DatasetProfile SmallBdd() {
  auto p = data::BddLikeProfile(0.05);
  p.embedding_dim = 32;
  return p;
}

struct ServiceFixture {
  ServiceFixture() {
    auto ds = data::Dataset::Generate(SmallBdd());
    SEESAW_CHECK(ds.ok());
    dataset = std::make_unique<data::Dataset>(std::move(*ds));
    core::ServiceOptions options;
    options.preprocess.md.k = 5;
    options.session_threads = 2;
    auto svc = core::SeeSawService::Create(*dataset, options);
    SEESAW_CHECK(svc.ok());
    service = std::make_unique<core::SeeSawService>(std::move(*svc));
  }

  std::unique_ptr<data::Dataset> dataset;
  std::unique_ptr<core::SeeSawService> service;
};

ServiceFixture& Fixture() {
  static ServiceFixture* fixture = new ServiceFixture();
  return *fixture;
}

TEST(SessionManagerTest, CreateFindCloseLifecycle) {
  auto& f = Fixture();
  core::SessionManager& manager = f.service->sessions();

  auto id = manager.CreateSession("car");
  ASSERT_TRUE(id.ok());
  EXPECT_GE(manager.num_sessions(), 1u);

  auto session = manager.Find(*id);
  ASSERT_NE(session, nullptr);
  EXPECT_FALSE(session->NextBatch(3).empty());

  ASSERT_TRUE(manager.Close(*id).ok());
  EXPECT_EQ(manager.Find(*id), nullptr);
  EXPECT_TRUE(manager.Close(*id).IsNotFound());
}

TEST(SessionManagerTest, UnknownQueryAndIdAreErrors) {
  auto& f = Fixture();
  core::SessionManager& manager = f.service->sessions();
  EXPECT_FALSE(manager.CreateSession("no-such-concept-name").ok());
  EXPECT_EQ(manager.Find(9999999), nullptr);
  EXPECT_TRUE(manager.Close(9999999).IsNotFound());
}

TEST(SessionManagerTest, InFlightSessionSurvivesClose) {
  auto& f = Fixture();
  core::SessionManager& manager = f.service->sessions();
  auto id = manager.CreateSession("car");
  ASSERT_TRUE(id.ok());
  auto session = manager.Find(*id);
  ASSERT_NE(session, nullptr);
  ASSERT_TRUE(manager.Close(*id).ok());
  // The shared_ptr keeps the state alive even though the registry dropped it.
  EXPECT_FALSE(session->NextBatch(2).empty());
}

TEST(SessionManagerTest, ConcurrentSessionsFromManyThreads) {
  auto& f = Fixture();
  core::SessionManager& manager = f.service->sessions();
  const size_t before = manager.num_sessions();

  std::atomic<int> failures{0};
  std::vector<std::thread> users;
  for (int t = 0; t < 6; ++t) {
    users.emplace_back([&f, &manager, &failures] {
      for (int round = 0; round < 3; ++round) {
        auto id = manager.CreateSession(
            f.service->embedded().TextQuery(/*concept_id=*/0));
        if (!id.ok()) {
          ++failures;
          return;
        }
        auto session = manager.Find(*id);
        if (session == nullptr) {
          ++failures;
          return;
        }
        // Drive a short feedback loop: lookups shard on the shared pool.
        for (int batch = 0; batch < 2; ++batch) {
          auto page = session->NextBatch(4);
          if (page.empty()) {
            ++failures;
            break;
          }
          for (const auto& hit : page) {
            core::ImageFeedback fb;
            fb.image_idx = hit.image_idx;
            fb.relevant = false;
            session->AddFeedback(fb);
          }
          if (!session->Refit().ok()) ++failures;
        }
        if (!manager.Close(*id).ok()) ++failures;
      }
    });
  }
  for (auto& u : users) u.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(manager.num_sessions(), before);
}

TEST(SessionManagerTest, FirstSessionsCallIsThreadSafe) {
  // Regression: lazy manager creation raced when first hit concurrently.
  auto ds = data::Dataset::Generate(SmallBdd());
  ASSERT_TRUE(ds.ok());
  core::ServiceOptions options;
  options.preprocess.build_md = false;
  options.session_threads = 2;
  auto service = core::SeeSawService::Create(*ds, options);
  ASSERT_TRUE(service.ok());

  std::atomic<core::SessionManager*> first{nullptr};
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      core::SessionManager* manager = &service->sessions();
      core::SessionManager* expected = nullptr;
      if (!first.compare_exchange_strong(expected, manager) &&
          expected != manager) {
        ++mismatches;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(SessionManagerTest, ManagerFollowsMovedService) {
  // Regression: moving the service used to leave the manager's back-pointer
  // at the moved-from shell.
  auto ds = data::Dataset::Generate(SmallBdd());
  ASSERT_TRUE(ds.ok());
  core::ServiceOptions options;
  options.preprocess.build_md = false;
  auto service = core::SeeSawService::Create(*ds, options);
  ASSERT_TRUE(service.ok());

  core::SessionManager& manager = service->sessions();
  core::SeeSawService moved = std::move(*service);
  EXPECT_EQ(&moved.sessions(), &manager);

  auto id = manager.CreateSession("car");
  ASSERT_TRUE(id.ok());
  auto session = manager.Find(*id);
  ASSERT_NE(session, nullptr);
  EXPECT_FALSE(session->NextBatch(2).empty());
  ASSERT_TRUE(manager.Close(*id).ok());
}

TEST(SessionManagerTest, ManagedBenchmarkMatchesDirectSessions) {
  auto& f = Fixture();
  auto concepts = f.dataset->EvaluableConcepts(3);
  ASSERT_FALSE(concepts.empty());
  if (concepts.size() > 3) concepts.resize(3);
  eval::TaskOptions task;
  task.target_positives = 3;
  task.max_images = 30;

  auto managed = eval::RunManagedBenchmark(*f.service, *f.dataset, concepts,
                                           task, /*num_threads=*/3);
  ASSERT_EQ(managed.results.size(), concepts.size());
  // Sessions are deterministic given the query, so the concurrent managed
  // run must reproduce the serial per-searcher run.
  eval::SearcherFactory factory = [&f](size_t concept_id) {
    return std::make_unique<core::SeeSawSearcher>(
        f.service->embedded(), f.service->embedded().TextQuery(concept_id),
        core::SeeSawOptions{});
  };
  auto direct = eval::RunBenchmark(factory, *f.dataset, concepts, task);
  for (size_t i = 0; i < concepts.size(); ++i) {
    EXPECT_EQ(managed.results[i].found, direct.results[i].found);
    EXPECT_EQ(managed.results[i].inspected, direct.results[i].inspected);
    EXPECT_DOUBLE_EQ(managed.results[i].ap, direct.results[i].ap);
  }
}

}  // namespace
}  // namespace seesaw
