#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "optim/gradient_descent.h"
#include "optim/lbfgs.h"
#include "optim/objective.h"

namespace seesaw::optim {
namespace {

/// f(x) = sum_i a_i (x_i - c_i)^2, minimum at c.
Objective Quadratic(const VectorD& a, const VectorD& c) {
  return [a, c](const VectorD& x, VectorD* grad) {
    grad->assign(x.size(), 0.0);
    double f = 0.0;
    for (size_t i = 0; i < x.size(); ++i) {
      double d = x[i] - c[i];
      f += a[i] * d * d;
      (*grad)[i] = 2.0 * a[i] * d;
    }
    return f;
  };
}

/// The 2-D Rosenbrock banana, minimum (1, 1).
Objective Rosenbrock() {
  return [](const VectorD& x, VectorD* grad) {
    grad->assign(2, 0.0);
    double a = 1.0 - x[0];
    double b = x[1] - x[0] * x[0];
    (*grad)[0] = -2.0 * a - 400.0 * x[0] * b;
    (*grad)[1] = 200.0 * b;
    return a * a + 100.0 * b * b;
  };
}

TEST(LbfgsTest, SolvesWellConditionedQuadratic) {
  Lbfgs opt;
  VectorD a = {1, 1, 1}, c = {3, -2, 0.5};
  auto result = opt.Minimize(Quadratic(a, c), {0, 0, 0});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->converged());
  for (size_t i = 0; i < 3; ++i) EXPECT_NEAR(result->x[i], c[i], 1e-5);
}

TEST(LbfgsTest, SolvesIllConditionedQuadratic) {
  Lbfgs opt;
  VectorD a = {1000, 1, 0.01}, c = {1, 2, 3};
  LbfgsOptions options;
  options.max_iterations = 300;
  Lbfgs opt2(options);
  auto result = opt2.Minimize(Quadratic(a, c), {0, 0, 0});
  ASSERT_TRUE(result.ok());
  for (size_t i = 0; i < 3; ++i) EXPECT_NEAR(result->x[i], c[i], 1e-3);
}

TEST(LbfgsTest, SolvesRosenbrock) {
  LbfgsOptions options;
  options.max_iterations = 500;
  Lbfgs opt(options);
  auto result = opt.Minimize(Rosenbrock(), {-1.2, 1.0});
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->x[0], 1.0, 1e-4);
  EXPECT_NEAR(result->x[1], 1.0, 1e-4);
  EXPECT_LT(result->f, 1e-8);
}

TEST(LbfgsTest, ConvergesInFewIterationsOnSmoothProblems) {
  // The paper relies on L-BFGS converging in a few tens of steps (§4.4).
  Lbfgs opt;
  VectorD a(20, 1.0), c(20, 0.0);
  for (size_t i = 0; i < 20; ++i) {
    a[i] = 1.0 + static_cast<double>(i);
    c[i] = std::sin(static_cast<double>(i));
  }
  auto result = opt.Minimize(Quadratic(a, c), VectorD(20, 0.0));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->converged());
  EXPECT_LE(result->iterations, 60);
}

TEST(LbfgsTest, StartingAtMinimumTerminatesImmediately) {
  Lbfgs opt;
  VectorD c = {1, 2};
  auto result = opt.Minimize(Quadratic({1, 1}, c), c);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->iterations, 0);
  EXPECT_EQ(result->reason, TerminationReason::kGradientTolerance);
}

TEST(LbfgsTest, EmptyStartIsInvalidArgument) {
  Lbfgs opt;
  auto result = opt.Minimize(Quadratic({}, {}), {});
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST(LbfgsTest, NonFiniteStartIsInvalidArgument) {
  Lbfgs opt;
  Objective nan_obj = [](const VectorD& x, VectorD* grad) {
    grad->assign(x.size(), 0.0);
    return std::nan("");
  };
  auto result = opt.Minimize(nan_obj, {1.0});
  EXPECT_FALSE(result.ok());
}

TEST(LbfgsTest, RespectsMaxIterations) {
  LbfgsOptions options;
  options.max_iterations = 2;
  options.gradient_tolerance = 0;  // never converge by gradient
  options.f_tolerance = 0;
  Lbfgs opt(options);
  auto result = opt.Minimize(Rosenbrock(), {-1.2, 1.0});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->reason, TerminationReason::kMaxIterations);
  EXPECT_EQ(result->iterations, 2);
}

TEST(LbfgsTest, TerminationReasonStrings) {
  EXPECT_EQ(TerminationReasonToString(TerminationReason::kGradientTolerance),
            "gradient_tolerance");
  EXPECT_EQ(TerminationReasonToString(TerminationReason::kMaxIterations),
            "max_iterations");
}

// Property sweep: L-BFGS must match the analytic minimum of random
// positive-definite quadratics across dimensions.
class LbfgsQuadraticSweep : public ::testing::TestWithParam<int> {};

TEST_P(LbfgsQuadraticSweep, FindsAnalyticMinimum) {
  const int dim = GetParam();
  Rng rng(1000 + dim);
  VectorD a(dim), c(dim), x0(dim);
  for (int i = 0; i < dim; ++i) {
    a[i] = 0.5 + rng.Uniform() * 10.0;
    c[i] = rng.Gaussian(0, 3);
    x0[i] = rng.Gaussian(0, 3);
  }
  LbfgsOptions options;
  options.max_iterations = 200;
  Lbfgs opt(options);
  auto result = opt.Minimize(Quadratic(a, c), x0);
  ASSERT_TRUE(result.ok());
  for (int i = 0; i < dim; ++i) EXPECT_NEAR(result->x[i], c[i], 1e-4);
}

INSTANTIATE_TEST_SUITE_P(Dims, LbfgsQuadraticSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 32, 64, 128));

// ------------------------------------------------------- GradientDescent --

TEST(GradientDescentTest, SolvesQuadratic) {
  GradientDescent opt;
  auto result = opt.Minimize(Quadratic({1, 2}, {5, -1}), {0, 0});
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->x[0], 5.0, 1e-4);
  EXPECT_NEAR(result->x[1], -1.0, 1e-4);
}

TEST(GradientDescentTest, AgreesWithLbfgsOnConvexProblem) {
  VectorD a = {3, 1, 7}, c = {0.5, -2, 1};
  auto gd = GradientDescent().Minimize(Quadratic(a, c), {1, 1, 1});
  auto lb = Lbfgs().Minimize(Quadratic(a, c), {1, 1, 1});
  ASSERT_TRUE(gd.ok());
  ASSERT_TRUE(lb.ok());
  for (size_t i = 0; i < 3; ++i) EXPECT_NEAR(gd->x[i], lb->x[i], 1e-3);
}

TEST(GradientDescentTest, EmptyStartIsInvalidArgument) {
  GradientDescent opt;
  EXPECT_FALSE(opt.Minimize(Quadratic({}, {}), {}).ok());
}

// ------------------------------------------------------ NumericalGradient --

TEST(NumericalGradientTest, MatchesAnalyticQuadraticGradient) {
  VectorD a = {2, 5}, c = {1, -1};
  auto obj = Quadratic(a, c);
  VectorD x = {3, 4};
  VectorD analytic(2);
  obj(x, &analytic);
  auto numeric = NumericalGradient(
      [&obj](const VectorD& p) {
        VectorD g;
        return obj(p, &g);
      },
      x);
  EXPECT_NEAR(numeric[0], analytic[0], 1e-5);
  EXPECT_NEAR(numeric[1], analytic[1], 1e-5);
}

}  // namespace
}  // namespace seesaw::optim
