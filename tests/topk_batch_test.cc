// Cross-backend parity for the batched query engine: TopKBatch must return
// exactly what per-query TopK returns — same ids, same scores, same order —
// on every backend, with and without exclusions, serial and pooled.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "store/annoy_index.h"
#include "store/exact_store.h"
#include "store/ivf_index.h"
#include "tests/test_util.h"

namespace seesaw::store {
namespace {

using linalg::MatrixF;
using linalg::VecSpan;
using linalg::VectorF;
using test_util::ExpectIdenticalResults;
using test_util::RandomQueries;
using test_util::RandomTable;

/// Asserts TopKBatch == per-query TopK for every query, with `pool` possibly
/// null and `seen` possibly empty.
void CheckParity(const VectorStore& store, const std::vector<VectorF>& queries,
                 size_t k, const SeenSet& seen, ThreadPool* pool) {
  std::vector<VecSpan> spans = test_util::AsSpans(queries);
  auto batched =
      store.TopKBatch(std::span<const VecSpan>(spans), k, seen, pool);
  ASSERT_EQ(batched.size(), queries.size());
  for (size_t q = 0; q < spans.size(); ++q) {
    ExpectIdenticalResults(batched[q], store.TopK(spans[q], k, seen));
  }
}

class TopKBatchParityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    table_ = RandomTable(600, 16, 17);
    queries_ = RandomQueries(7, 16, 18);
    seen_ = test_util::RandomSeenSet(600, 0.25, 19);
  }

  MatrixF table_;
  std::vector<VectorF> queries_;
  SeenSet seen_;
};

TEST_F(TopKBatchParityTest, ExactStoreMatchesScalarPath) {
  auto store = ExactStore::Create(table_);
  ASSERT_TRUE(store.ok());
  ThreadPool pool(4);
  for (size_t k : {1u, 10u, 50u, 1000u}) {
    CheckParity(*store, queries_, k, EmptySeenSet(), nullptr);
    CheckParity(*store, queries_, k, seen_, nullptr);
    CheckParity(*store, queries_, k, seen_, &pool);
  }
}

TEST_F(TopKBatchParityTest, IvfIndexMatchesScalarPath) {
  auto store = IvfFlatIndex::Build({}, table_);
  ASSERT_TRUE(store.ok());
  ThreadPool pool(4);
  for (size_t k : {1u, 10u, 50u}) {
    CheckParity(*store, queries_, k, EmptySeenSet(), nullptr);
    CheckParity(*store, queries_, k, seen_, nullptr);
    CheckParity(*store, queries_, k, seen_, &pool);
  }
}

TEST_F(TopKBatchParityTest, AnnoyIndexMatchesScalarPath) {
  auto store = AnnoyIndex::Build({}, table_);
  ASSERT_TRUE(store.ok());
  ThreadPool pool(4);
  for (size_t k : {1u, 10u, 50u}) {
    CheckParity(*store, queries_, k, EmptySeenSet(), nullptr);
    CheckParity(*store, queries_, k, seen_, nullptr);
    CheckParity(*store, queries_, k, seen_, &pool);
  }
}

TEST_F(TopKBatchParityTest, BaseClassSerialFallbackMatches) {
  // Exercise the VectorStore default implementation via a thin subclass that
  // only implements the scalar virtuals.
  class Minimal : public VectorStore {
   public:
    explicit Minimal(ExactStore inner) : inner_(std::move(inner)) {}
    size_t size() const override { return inner_.size(); }
    size_t dim() const override { return inner_.dim(); }
    std::vector<SearchResult> TopK(VecSpan query, size_t k,
                                   const SeenSet& seen,
                                   const ScanControl& control) const override {
      return inner_.TopK(query, k, seen, control);
    }
    using VectorStore::TopK;
    VecSpan GetVector(uint32_t id) const override {
      return inner_.GetVector(id);
    }

   private:
    ExactStore inner_;
  };
  auto store = ExactStore::Create(table_);
  ASSERT_TRUE(store.ok());
  Minimal minimal(std::move(*store));
  CheckParity(minimal, queries_, 25, seen_, nullptr);
}

TEST(TopKBatchTest, EmptyQueryBatchReturnsEmpty) {
  auto store = ExactStore::Create(RandomTable(20, 4, 3));
  ASSERT_TRUE(store.ok());
  EXPECT_TRUE(store->TopKBatch({}, 5).empty());
}

TEST(TopKBatchTest, KZeroReturnsEmptyPerQuery) {
  // Regression: k == 0 once made the batched exact scan treat its empty
  // heaps as full and dereference an empty Worst().
  auto store = ExactStore::Create(RandomTable(20, 4, 3));
  ASSERT_TRUE(store.ok());
  auto queries = RandomQueries(3, 4, 9);
  std::vector<VecSpan> spans(queries.begin(), queries.end());
  ThreadPool pool(2);
  auto batched = store->TopKBatch(std::span<const VecSpan>(spans), 0,
                                  EmptySeenSet(), &pool);
  ASSERT_EQ(batched.size(), 3u);
  for (const auto& hits : batched) EXPECT_TRUE(hits.empty());
}

TEST(TopKBatchTest, TieBreakIsDeterministicAcrossSharding) {
  // Duplicate rows force score ties; the canonical order (score desc, id
  // asc) must hold no matter how the scan is sharded.
  MatrixF table(64, 4, 0.0f);
  for (size_t i = 0; i < 64; ++i) table.At(i, 0) = 1.0f;
  auto store = ExactStore::Create(std::move(table));
  ASSERT_TRUE(store.ok());
  std::vector<VectorF> queries = {VectorF{1, 0, 0, 0}, VectorF{1, 0, 0, 0}};
  std::vector<VecSpan> spans(queries.begin(), queries.end());
  ThreadPool pool(4);
  auto batched = store->TopKBatch(std::span<const VecSpan>(spans), 10,
                                  EmptySeenSet(), &pool);
  for (const auto& hits : batched) {
    ASSERT_EQ(hits.size(), 10u);
    for (uint32_t i = 0; i < 10; ++i) EXPECT_EQ(hits[i].id, i);
  }
}

TEST(TopKBatchTest, ConcurrentBatchesShareOnePool) {
  // Several "sessions" issue batched lookups against one shared pool at
  // once — the ParallelFor latch must only block each caller on its own
  // work. Smoke for the concurrent-serving configuration.
  auto store = ExactStore::Create(RandomTable(400, 8, 23));
  ASSERT_TRUE(store.ok());
  auto queries = RandomQueries(4, 8, 29);
  std::vector<VecSpan> spans(queries.begin(), queries.end());
  ThreadPool shared_pool(4);
  auto want = store->TopKBatch(std::span<const VecSpan>(spans), 12);

  std::vector<std::thread> sessions;
  std::atomic<int> failures{0};
  for (int t = 0; t < 8; ++t) {
    sessions.emplace_back([&] {
      for (int round = 0; round < 5; ++round) {
        auto got = store->TopKBatch(std::span<const VecSpan>(spans), 12,
                                    EmptySeenSet(), &shared_pool);
        if (got.size() != want.size()) {
          ++failures;
          continue;
        }
        for (size_t q = 0; q < got.size(); ++q) {
          if (got[q].size() != want[q].size()) ++failures;
          for (size_t i = 0; i < got[q].size(); ++i) {
            if (got[q][i].id != want[q][i].id) ++failures;
          }
        }
      }
    });
  }
  for (auto& s : sessions) s.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace seesaw::store
