#include <gtest/gtest.h>

#include "core/seesaw_searcher.h"
#include "data/profiles.h"
#include "sim/user_model.h"

namespace seesaw::sim {
namespace {

TEST(AnnotationTimesTest, PaperTable5Means) {
  auto baseline = BaselineUiTimes();
  EXPECT_NEAR(baseline.skip_mean, 1.98, 1e-9);
  EXPECT_NEAR(baseline.mark_mean, 3.00, 1e-9);
  auto seesaw_ui = SeeSawUiTimes();
  EXPECT_NEAR(seesaw_ui.skip_mean, 2.40, 1e-9);
  EXPECT_NEAR(seesaw_ui.mark_mean, 4.40, 1e-9);
  // SeeSaw's box feedback costs extra time on both paths (§5.5).
  EXPECT_GT(seesaw_ui.skip_mean, baseline.skip_mean);
  EXPECT_GT(seesaw_ui.mark_mean, baseline.mark_mean);
}

TEST(SimulatedUserTest, TimesArePositiveAndMarkCostsMore) {
  SimulatedUser user(SeeSawUiTimes(), 0.0, 42);
  double skip_total = 0, mark_total = 0;
  const int n = 3000;
  for (int i = 0; i < n; ++i) {
    double skip = user.AnnotationSeconds(false);
    double mark = user.AnnotationSeconds(true);
    EXPECT_GT(skip, 0);
    EXPECT_GT(mark, 0);
    skip_total += skip;
    mark_total += mark;
  }
  EXPECT_GT(mark_total / n, skip_total / n);
  // Sample means approach Table 5 means.
  EXPECT_NEAR(skip_total / n, 2.40, 0.15);
  EXPECT_NEAR(mark_total / n, 4.40, 0.25);
}

TEST(SimulatedUserTest, SpeedMultiplierVaries) {
  SimulatedUser a(BaselineUiTimes(), 0.5, 1);
  SimulatedUser b(BaselineUiTimes(), 0.5, 2);
  EXPECT_NE(a.speed_multiplier(), b.speed_multiplier());
  SimulatedUser fixed(BaselineUiTimes(), 0.0, 3);
  EXPECT_DOUBLE_EQ(fixed.speed_multiplier(), 1.0);
}

TEST(SimulatedUserTest, DeterministicGivenSeed) {
  SimulatedUser a(BaselineUiTimes(), 0.3, 7);
  SimulatedUser b(BaselineUiTimes(), 0.3, 7);
  for (int i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(a.AnnotationSeconds(i % 2), b.AnnotationSeconds(i % 2));
  }
}

// ------------------------------------------------------- SimulateSession --

struct Fixture {
  std::unique_ptr<data::Dataset> dataset;
  std::unique_ptr<core::EmbeddedDataset> embedded;
};

Fixture MakeFixture() {
  auto profile = data::CocoLikeProfile(0.05);
  profile.embedding_dim = 32;
  auto ds = data::Dataset::Generate(profile);
  EXPECT_TRUE(ds.ok());
  Fixture f;
  f.dataset = std::make_unique<data::Dataset>(std::move(*ds));
  core::PreprocessOptions options;
  options.multiscale.enabled = false;
  options.build_md = false;
  auto ed = core::EmbeddedDataset::Build(*f.dataset, options);
  EXPECT_TRUE(ed.ok());
  f.embedded = std::make_unique<core::EmbeddedDataset>(std::move(*ed));
  return f;
}

TEST(SimulateSessionTest, RespectsTimeCap) {
  auto f = MakeFixture();
  core::SeeSawOptions zs;
  zs.update_query = false;
  core::SeeSawSearcher searcher(*f.embedded, f.embedded->TextQuery(0), zs);
  SimulatedUser user(BaselineUiTimes(), 0.0, 5);
  EndToEndOptions options;
  options.time_limit_seconds = 10.0;  // far too little to find 10
  options.target_positives = 10;
  auto result = SimulateSession(searcher, *f.dataset, 0, user, options);
  EXPECT_LE(result.elapsed_seconds, 10.0 + 1e-9);
  if (!result.completed) {
    EXPECT_DOUBLE_EQ(result.elapsed_seconds, 10.0);
  }
}

TEST(SimulateSessionTest, CompletesEasyTaskWithinGenerousBudget) {
  auto f = MakeFixture();
  // Easiest concept: most positives.
  auto concepts = f.dataset->EvaluableConcepts(20);
  ASSERT_FALSE(concepts.empty());
  size_t best = concepts[0];
  for (size_t c : concepts) {
    if (f.dataset->positives(c).size() > f.dataset->positives(best).size()) {
      best = c;
    }
  }
  core::SeeSawSearcher searcher(*f.embedded, f.embedded->TextQuery(best), {});
  SimulatedUser user(SeeSawUiTimes(), 0.0, 6);
  EndToEndOptions options;
  options.time_limit_seconds = 100000.0;
  auto result = SimulateSession(searcher, *f.dataset, best, user, options);
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.found, 10u);
  EXPECT_GT(result.elapsed_seconds, 0.0);
  // Time must be at least 10 marks + skips.
  EXPECT_GE(result.elapsed_seconds, 10 * 2.0);
}

TEST(SimulateSessionTest, SlowerUserTakesLonger) {
  auto f = MakeFixture();
  auto concepts = f.dataset->EvaluableConcepts(20);
  ASSERT_FALSE(concepts.empty());
  size_t concept_id = concepts[0];

  auto run_with_speed = [&](uint64_t seed, double target_speed) {
    core::SeeSawOptions zs;
    zs.update_query = false;
    core::SeeSawSearcher searcher(*f.embedded,
                                  f.embedded->TextQuery(concept_id), zs);
    // Construct users until one has roughly the target speed.
    SimulatedUser user(BaselineUiTimes(), 0.0, seed);
    EndToEndOptions options;
    options.time_limit_seconds = 1e9;
    auto r = SimulateSession(searcher, *f.dataset, concept_id, user, options);
    return r.elapsed_seconds * target_speed;  // scale as-if user speed
  };
  // Identical sessions up to real measured system latency (microseconds of
  // jitter): doubling effective speed halves the annotation time.
  double fast = run_with_speed(11, 1.0);
  double slow = run_with_speed(11, 2.0);
  EXPECT_NEAR(slow, 2.0 * fast, 0.05);
}

TEST(SimulateSessionTest, FixedRoundLatencyAddsUp) {
  auto f = MakeFixture();
  core::SeeSawOptions zs;
  zs.update_query = false;
  auto concepts = f.dataset->EvaluableConcepts(20);
  ASSERT_FALSE(concepts.empty());
  size_t c = concepts[0];
  core::SeeSawSearcher s1(*f.embedded, f.embedded->TextQuery(c), zs);
  core::SeeSawSearcher s2(*f.embedded, f.embedded->TextQuery(c), zs);
  SimulatedUser u1(BaselineUiTimes(), 0.0, 13);
  SimulatedUser u2(BaselineUiTimes(), 0.0, 13);
  EndToEndOptions fast_opts;
  fast_opts.time_limit_seconds = 1e9;
  EndToEndOptions slow_opts = fast_opts;
  slow_opts.fixed_round_latency = 5.0;
  auto fast = SimulateSession(s1, *f.dataset, c, u1, fast_opts);
  auto slow = SimulateSession(s2, *f.dataset, c, u2, slow_opts);
  EXPECT_GT(slow.elapsed_seconds, fast.elapsed_seconds);
}

}  // namespace
}  // namespace seesaw::sim
