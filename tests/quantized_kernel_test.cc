// The int8 quantized scoring path, tested at both contract tiers:
//
//   1. Within-family: every int8 kernel the CPU supports (scalar reference,
//      AVX2, NEON) is *bitwise* identical — over odd dims, remainder tails,
//      unaligned buffers, and full-scale ±127 saturation stress. The int32
//      accumulation is exact, so this holds by construction; these tests
//      catch any intrinsics path that silently saturates or drops lanes.
//   2. Cross-family: int8 scores approximate fp32 scores. The gate is
//      recall@100 >= 0.99 against the fp32 exact scan on clustered
//      CLIP-like tables (test_util::ClusteredTable), plus a per-element
//      quantize -> dequantize round-trip error bound.
//
// The compacted unseen-run scan policy (ExactStoreOptions::
// compact_seen_fraction) is proven bitwise identical to the per-row
// skip-test scan here too, including cancellation checkpoint counts.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "linalg/matrix.h"
#include "linalg/quantize.h"
#include "linalg/simd.h"
#include "linalg/vector_ops.h"
#include "store/exact_store.h"
#include "store/sharded_store.h"
#include "tests/test_util.h"

namespace seesaw::linalg {
namespace {

using store::ExactStore;
using store::ExactStoreOptions;
using store::ScanControl;
using store::ScanPrecision;
using store::SeenSet;
using store::ShardedOptions;
using store::ShardedStore;
using test_util::AsSpans;
using test_util::ClusteredTable;
using test_util::ExpectIdenticalResults;
using test_util::RandomQueries;
using test_util::RandomSeenSet;
using test_util::RandomTable;

uint32_t Bits(float v) { return std::bit_cast<uint32_t>(v); }

::testing::AssertionResult BitEq(float expected, float actual) {
  if (Bits(expected) == Bits(actual)) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << "expected " << expected << " (0x" << std::hex << Bits(expected)
         << ") got " << actual << " (0x" << Bits(actual) << ")";
}

/// Quantized-range int8 values. Never -128: the quantizer clamps to ±127,
/// and the AVX2 sign-trick kernel relies on that margin.
std::vector<int8_t> RandomInt8(Rng& rng, size_t n) {
  std::vector<int8_t> v(n);
  for (int8_t& x : v) x = static_cast<int8_t>(rng.UniformInt(-127, 127));
  return v;
}

/// Positive per-row/query scales across a few decades.
std::vector<float> RandomScales(Rng& rng, size_t n) {
  std::vector<float> s(n);
  for (float& x : s) x = static_cast<float>(rng.LogNormal(-4.0, 1.5));
  return s;
}

/// Same dim sweep as the fp32 parity suite: every tail shape plus
/// vector-width boundaries.
std::vector<size_t> SweepDims() {
  std::vector<size_t> dims;
  for (size_t d = 0; d <= 34; ++d) dims.push_back(d);
  for (size_t d : {63u, 64u, 65u, 100u, 127u, 128u, 129u, 255u, 256u, 257u,
                   511u, 512u, 513u}) {
    dims.push_back(d);
  }
  return dims;
}

class QuantizedKernelTest : public ::testing::Test {
 protected:
  void TearDown() override { ASSERT_TRUE(ForceKernels("auto")); }
};

TEST_F(QuantizedKernelTest, EverySupportedNameHasAnInt8Sibling) {
  for (const std::string& name : SupportedKernels()) {
    const Int8KernelTable* table = FindInt8Kernels(name);
    ASSERT_NE(table, nullptr) << name;
    EXPECT_STREQ(table->name, name.c_str());
  }
  EXPECT_NE(FindInt8Kernels("auto"), nullptr);
  EXPECT_EQ(FindInt8Kernels("bogus"), nullptr);
}

TEST_F(QuantizedKernelTest, DotI32ExactParityAcrossKernelsAndDims) {
  const Int8KernelTable& ref = ScalarInt8Kernels();
  Rng rng(41);
  for (const std::string& name : SupportedKernels()) {
    const Int8KernelTable* kernel = FindInt8Kernels(name);
    ASSERT_NE(kernel, nullptr);
    for (size_t dim : SweepDims()) {
      std::vector<int8_t> a = RandomInt8(rng, dim);
      std::vector<int8_t> b = RandomInt8(rng, dim);
      EXPECT_EQ(ref.dot_i32(a.data(), b.data(), dim),
                kernel->dot_i32(a.data(), b.data(), dim))
          << name << " dim=" << dim;
    }
  }
}

TEST_F(QuantizedKernelTest, FullScaleSaturationStressIsExact) {
  // Worst case for the AVX2 maddubs path: adjacent pairs both at ±127, so
  // every pairwise int16 sum hits ±32258 — inside int16 only because the
  // quantizer never emits -128. An implementation that saturates (or uses
  // the full [-128, 127] range) diverges from the exact sum here.
  const Int8KernelTable& ref = ScalarInt8Kernels();
  for (const std::string& name : SupportedKernels()) {
    const Int8KernelTable* kernel = FindInt8Kernels(name);
    ASSERT_NE(kernel, nullptr);
    for (size_t dim : {1u, 2u, 31u, 32u, 33u, 64u, 257u, 512u}) {
      for (int sa : {+1, -1}) {
        for (int sb : {+1, -1}) {
          std::vector<int8_t> a(dim, static_cast<int8_t>(sa * 127));
          std::vector<int8_t> b(dim, static_cast<int8_t>(sb * 127));
          const int32_t want = static_cast<int32_t>(dim) * 127 * 127 * sa * sb;
          EXPECT_EQ(want, ref.dot_i32(a.data(), b.data(), dim));
          EXPECT_EQ(want, kernel->dot_i32(a.data(), b.data(), dim))
              << name << " dim=" << dim << " signs " << sa << "," << sb;
        }
      }
      // Alternating signs: pair sums cancel, partial sums stay large.
      std::vector<int8_t> a(dim), b(dim, 127);
      for (size_t i = 0; i < dim; ++i) a[i] = (i % 2 == 0) ? 127 : -127;
      EXPECT_EQ(ref.dot_i32(a.data(), b.data(), dim),
                kernel->dot_i32(a.data(), b.data(), dim))
          << name << " alternating dim=" << dim;
    }
  }
}

TEST_F(QuantizedKernelTest, UnalignedInt8BuffersMatchScalar) {
  Rng rng(43);
  const size_t dim = 131;
  // Sub-buffers starting at every misalignment an int8 pointer can have
  // relative to a 32-byte vector register.
  std::vector<int8_t> a_buf = RandomInt8(rng, dim + 32);
  std::vector<int8_t> b_buf = RandomInt8(rng, dim + 32);
  const Int8KernelTable& ref = ScalarInt8Kernels();
  for (const std::string& name : SupportedKernels()) {
    const Int8KernelTable* kernel = FindInt8Kernels(name);
    ASSERT_NE(kernel, nullptr);
    for (size_t offset_a = 0; offset_a < 32; ++offset_a) {
      for (size_t offset_b : {0u, 1u, 7u, 15u, 31u}) {
        const int8_t* a = a_buf.data() + offset_a;
        const int8_t* b = b_buf.data() + offset_b;
        EXPECT_EQ(ref.dot_i32(a, b, dim), kernel->dot_i32(a, b, dim))
            << name << " offsets " << offset_a << "," << offset_b;
      }
    }
  }
}

TEST_F(QuantizedKernelTest, ScoreBlockBitwiseParityAcrossKernels) {
  Rng rng(47);
  const Int8KernelTable& ref = ScalarInt8Kernels();
  for (const std::string& name : SupportedKernels()) {
    const Int8KernelTable* kernel = FindInt8Kernels(name);
    ASSERT_NE(kernel, nullptr);
    // dim 128 with batch >= 8 exercises the register-resident row-sweep
    // specialization (and batch 9/19 its mixed group + remainder split).
    for (size_t dim : {1u, 5u, 33u, 64u, 128u, 129u, 200u}) {
      for (size_t rows : {1u, 2u, 3u, 5u, 8u}) {
        std::vector<int8_t> table = RandomInt8(rng, rows * dim);
        std::vector<float> row_scales = RandomScales(rng, rows);
        for (size_t batch : {1u, 2u, 3u, 4u, 7u, 8u, 9u, 16u, 19u}) {
          std::vector<int8_t> queries = RandomInt8(rng, batch * dim);
          std::vector<float> query_scales = RandomScales(rng, batch);
          std::vector<float> want(rows * batch), got(rows * batch);
          ref.score_block(table.data(), row_scales.data(), rows, dim,
                          queries.data(), query_scales.data(), batch,
                          want.data());
          kernel->score_block(table.data(), row_scales.data(), rows, dim,
                              queries.data(), query_scales.data(), batch,
                              got.data());
          for (size_t i = 0; i < want.size(); ++i) {
            EXPECT_TRUE(BitEq(want[i], got[i]))
                << name << " dim=" << dim << " rows=" << rows
                << " batch=" << batch << " cell=" << i;
          }
          // The spec pins the cell formula, so score_block must also equal
          // per-pair dot_i32 with the fixed-order scale multiply.
          for (size_t r = 0; r < rows; ++r) {
            for (size_t q = 0; q < batch; ++q) {
              const int32_t acc = ref.dot_i32(
                  table.data() + r * dim, queries.data() + q * dim, dim);
              const float combined = row_scales[r] * query_scales[q];
              EXPECT_TRUE(BitEq(static_cast<float>(acc) * combined,
                                got[r * batch + q]))
                  << name << " r=" << r << " q=" << q;
            }
          }
        }
      }
    }
  }
}

TEST_F(QuantizedKernelTest, ForcedNameSelectsBothFamilies) {
  for (const std::string& name : SupportedKernels()) {
    ASSERT_TRUE(ForceKernels(name));
    EXPECT_STREQ(ActiveKernels().name, name.c_str());
    EXPECT_STREQ(ActiveInt8Kernels().name, name.c_str());
  }
  ASSERT_TRUE(ForceKernels("auto"));
  EXPECT_STREQ(ActiveKernels().name, ActiveInt8Kernels().name);
}

TEST_F(QuantizedKernelTest, EnvVarPinsInt8FamilyAtFirstResolution) {
  ASSERT_EQ(setenv("SEESAW_FORCE_KERNEL", "scalar", /*overwrite=*/1), 0);
  internal::ResetKernelsForTest();
  EXPECT_STREQ(ActiveInt8Kernels().name, "scalar");
  ASSERT_EQ(unsetenv("SEESAW_FORCE_KERNEL"), 0);
  internal::ResetKernelsForTest();
  EXPECT_EQ(std::string(ActiveInt8Kernels().name), SupportedKernels().front());
}

TEST_F(QuantizedKernelTest, EmptyInputsAreZero) {
  for (const std::string& name : SupportedKernels()) {
    const Int8KernelTable* kernel = FindInt8Kernels(name);
    ASSERT_NE(kernel, nullptr);
    EXPECT_EQ(0, kernel->dot_i32(nullptr, nullptr, 0)) << name;
    kernel->score_block(nullptr, nullptr, 0, 0, nullptr, nullptr, 0, nullptr);
  }
}

TEST_F(QuantizedKernelTest, QuantizeRoundTripErrorBound) {
  Rng rng(53);
  for (size_t dim : {1u, 7u, 32u, 129u}) {
    MatrixF table = RandomTable(8, dim, 54 + dim);
    QuantizedTable q = QuantizeRows(table);
    ASSERT_EQ(q.rows, 8u);
    ASSERT_EQ(q.cols, dim);
    for (size_t r = 0; r < q.rows; ++r) {
      // Codes stay in the symmetric range: -128 never appears.
      for (size_t i = 0; i < dim; ++i) {
        EXPECT_GE(q.Row(r)[i], -127) << "r=" << r << " i=" << i;
        EXPECT_LE(q.Row(r)[i], 127);
      }
      // Per-element reconstruction error is half a quantization step.
      VectorF deq = DequantizeRow(q, r);
      const float bound = q.scale(r) * 0.500001f;
      for (size_t i = 0; i < dim; ++i) {
        EXPECT_LE(std::abs(deq[i] - table.Row(r)[i]), bound)
            << "r=" << r << " i=" << i << " scale=" << q.scale(r);
      }
      // The max-magnitude element maps to exactly ±127.
      float max_abs = 0.0f;
      for (size_t i = 0; i < dim; ++i) {
        max_abs = std::max(max_abs, std::abs(table.Row(r)[i]));
      }
      if (max_abs > 0.0f) {
        int8_t max_code = 0;
        for (size_t i = 0; i < dim; ++i) {
          max_code = std::max(max_code, static_cast<int8_t>(
                                            std::abs(q.Row(r)[i])));
        }
        EXPECT_EQ(max_code, 127) << "r=" << r;
      }
    }
  }
  // All-zero rows quantize to all-zero codes with the sentinel scale 1.0.
  MatrixF zeros(2, 16);
  QuantizedTable qz = QuantizeRows(zeros);
  for (size_t r = 0; r < 2; ++r) {
    EXPECT_EQ(qz.scale(r), 1.0f);
    for (size_t i = 0; i < 16; ++i) EXPECT_EQ(qz.Row(r)[i], 0);
  }
  // Query quantization is the same scheme.
  VectorF query(33);
  for (float& x : query) x = static_cast<float>(rng.Gaussian());
  QuantizedVector qq = QuantizeQuery(query);
  ASSERT_EQ(qq.data.size(), query.size());
  for (size_t i = 0; i < query.size(); ++i) {
    EXPECT_LE(std::abs(qq.data[i] * qq.scale - query[i]),
              qq.scale * 0.500001f);
  }
}

TEST_F(QuantizedKernelTest, RecallGateVsFp32OnClusteredData) {
  // The cross-family acceptance gate: scanning the quantized table must
  // recover >= 0.99 of the fp32 top-100 on clustered CLIP-like data.
  const size_t n = 4000, dim = 64, k = 100;
  MatrixF table = ClusteredTable(n, dim, /*centers=*/32, /*seed=*/61);
  auto fp32 = ExactStore::Create(table);
  ASSERT_TRUE(fp32.ok());
  ExactStoreOptions options;
  options.precision = ScanPrecision::kInt8;
  auto int8 = ExactStore::Create(table, options);
  ASSERT_TRUE(int8.ok());

  // CLIP-like queries: noisy copies of stored rows (text embeddings land
  // near the image clusters they describe).
  Rng rng(62);
  std::vector<VectorF> queries;
  for (size_t qi = 0; qi < 20; ++qi) {
    auto row = table.Row((qi * 197) % n);
    VectorF v(row.begin(), row.end());
    for (float& x : v) x += 0.1f * static_cast<float>(rng.Gaussian());
    NormalizeInPlace(MutVecSpan(v.data(), v.size()));
    queries.push_back(std::move(v));
  }

  double recall_sum = 0.0;
  for (const VectorF& q : queries) {
    auto truth = fp32->TopK(q, k);
    auto got = int8->TopK(q, k);
    recall_sum += store::RecallAgainst(got, truth);
  }
  const double recall = recall_sum / static_cast<double>(queries.size());
  EXPECT_GE(recall, 0.99) << "int8 recall@" << k << " vs fp32 scan";
}

TEST_F(QuantizedKernelTest, Int8StoreParityAcrossForcedKernels) {
  // The acceptance criterion at the store level: a forced-scalar int8 scan
  // is bitwise equal to the SIMD int8 scan on every supported kernel, for
  // both the scalar TopK and the batched TopKBatch paths.
  const size_t n = 523, dim = 48;
  MatrixF table = ClusteredTable(n, dim, 16, 63);
  ExactStoreOptions options;
  options.precision = ScanPrecision::kInt8;
  auto store = ExactStore::Create(table, options);
  ASSERT_TRUE(store.ok());
  auto queries = RandomQueries(3, dim, 64);
  auto spans = AsSpans(queries);
  SeenSet seen = RandomSeenSet(n, 0.3, 65);

  ASSERT_TRUE(ForceKernels("scalar"));
  std::vector<std::vector<store::SearchResult>> want_scalar;
  for (const VectorF& q : queries) want_scalar.push_back(store->TopK(q, 37, seen));
  auto want_batch = store->TopKBatch(std::span<const VecSpan>(spans), 37, seen);

  for (const std::string& name : SupportedKernels()) {
    ASSERT_TRUE(ForceKernels(name));
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      ExpectIdenticalResults(store->TopK(queries[qi], 37, seen),
                             want_scalar[qi]);
    }
    auto got_batch =
        store->TopKBatch(std::span<const VecSpan>(spans), 37, seen);
    ASSERT_EQ(got_batch.size(), want_batch.size());
    for (size_t qi = 0; qi < want_batch.size(); ++qi) {
      ExpectIdenticalResults(got_batch[qi], want_batch[qi]);
    }
  }
}

TEST_F(QuantizedKernelTest, ScalarTopKMatchesBatchedInt8Scan) {
  // Within the int8 family, the scalar lookup and the blocked batch scan
  // compute the same fixed-order arithmetic — bitwise equal results.
  const size_t n = 311, dim = 32;
  MatrixF table = ClusteredTable(n, dim, 8, 67);
  ExactStoreOptions options;
  options.precision = ScanPrecision::kInt8;
  auto store = ExactStore::Create(table, options);
  ASSERT_TRUE(store.ok());
  auto queries = RandomQueries(4, dim, 68);
  auto spans = AsSpans(queries);
  for (double fraction : {0.0, 0.4, 0.9}) {
    SeenSet seen = RandomSeenSet(n, fraction, 69);
    auto batched =
        store->TopKBatch(std::span<const VecSpan>(spans), 25, seen);
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      ExpectIdenticalResults(store->TopK(queries[qi], 25, seen), batched[qi]);
    }
  }
}

TEST_F(QuantizedKernelTest, CompactedScanPolicyIsBitwiseIdentical) {
  // The seen-aware scan policy: enumerating run-length compacted unseen
  // intervals must reproduce the per-row skip-test scan exactly — same
  // results bit for bit, same number of cancellation checkpoints — for both
  // precisions, serial and pooled, across seen densities.
  const size_t n = 700, dim = 24;
  MatrixF table = RandomTable(n, dim, 71);
  auto queries = RandomQueries(3, dim, 72);
  auto spans = AsSpans(queries);
  ThreadPool pool(3);
  for (ScanPrecision precision :
       {ScanPrecision::kFloat32, ScanPrecision::kInt8}) {
    ExactStoreOptions always, never;
    always.precision = precision;
    always.compact_seen_fraction = 0.0;  // every scan compacts
    never.precision = precision;
    never.compact_seen_fraction = 2.0;  // no scan compacts
    auto compact_store = ExactStore::Create(table, always);
    auto skip_store = ExactStore::Create(table, never);
    ASSERT_TRUE(compact_store.ok());
    ASSERT_TRUE(skip_store.ok());
    for (double fraction : {0.0, 0.3, 0.7, 0.97, 1.0}) {
      SeenSet seen = RandomSeenSet(n, fraction, 73);
      std::atomic<size_t> compact_checkpoints{0}, skip_checkpoints{0};
      ScanControl compact_control, skip_control;
      compact_control.checkpoint = [&] { ++compact_checkpoints; };
      skip_control.checkpoint = [&] { ++skip_checkpoints; };
      auto want = skip_store->TopKBatch(std::span<const VecSpan>(spans), 19,
                                        seen, /*pool=*/nullptr, skip_control);
      auto got =
          compact_store->TopKBatch(std::span<const VecSpan>(spans), 19, seen,
                                   /*pool=*/nullptr, compact_control);
      ASSERT_EQ(got.size(), want.size());
      for (size_t qi = 0; qi < want.size(); ++qi) {
        ExpectIdenticalResults(got[qi], want[qi]);
      }
      EXPECT_EQ(compact_checkpoints.load(), skip_checkpoints.load())
          << "fraction=" << fraction;
      // Pooled runs shard the row range but must still match.
      auto pooled = compact_store->TopKBatch(std::span<const VecSpan>(spans),
                                             19, seen, &pool);
      for (size_t qi = 0; qi < want.size(); ++qi) {
        ExpectIdenticalResults(pooled[qi], want[qi]);
      }
    }
  }
}

TEST_F(QuantizedKernelTest, Fp32PathIsUnchangedByDefaultOptions) {
  // Options default to fp32 + the 0.5 compaction threshold; a default
  // store must return exactly what the historical fp32 scan returned.
  const size_t n = 257, dim = 16;
  MatrixF table = RandomTable(n, dim, 79);
  auto store = ExactStore::Create(table);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ(store->options().precision, ScanPrecision::kFloat32);
  EXPECT_TRUE(store->quantized().empty());
  auto queries = RandomQueries(2, dim, 80);
  SeenSet seen = RandomSeenSet(n, 0.8, 81);  // above threshold: compacts
  for (const VectorF& q : queries) {
    auto got = store->TopK(q, 11, seen);
    // Reference: brute-force fp32 scan with linalg::Dot.
    store::TopKHeap heap(11);
    for (size_t i = 0; i < n; ++i) {
      if (seen.Test(static_cast<uint32_t>(i))) continue;
      heap.Push(static_cast<uint32_t>(i), Dot(table.Row(i), q));
    }
    ExpectIdenticalResults(got, heap.TakeSorted());
  }
}

}  // namespace
}  // namespace seesaw::linalg
