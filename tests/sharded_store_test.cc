// ShardedStore: randomized parity against a single ExactStore (bitwise
// identical ids and scores for every shard count), id/seen-set mapping,
// concurrent-sessions stress on a shared pool, and deterministic in-scan
// cancellation — a blocked scan observes a CancellationToken cancel inside
// one TopKBatch call, for ExactStore, IvfFlatIndex, and ShardedStore.
#include "store/sharded_store.h"

#include <gtest/gtest.h>

#include <atomic>
#include <semaphore>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "core/service.h"
#include "core/session_manager.h"
#include "store/exact_store.h"
#include "store/ivf_index.h"
#include "tests/test_util.h"

namespace seesaw::store {
namespace {

using linalg::MatrixF;
using linalg::VecSpan;
using linalg::VectorF;
using test_util::AsSpans;
using test_util::ExpectIdenticalResults;
using test_util::RandomQueries;
using test_util::RandomSeenSet;
using test_util::RandomTable;

constexpr size_t kShardCounts[] = {1, 2, 3, 7, 16};

/// A table whose rows repeat a handful of distinct vectors, forcing exact
/// score ties across shard boundaries (the tie-break-by-id stress case).
MatrixF DuplicateRowTable(size_t n, size_t d, size_t distinct, uint64_t seed) {
  MatrixF base = RandomTable(distinct, d, seed);
  MatrixF table(n, d);
  for (size_t i = 0; i < n; ++i) {
    auto src = base.Row(i % distinct);
    std::copy(src.begin(), src.end(), table.MutableRow(i).begin());
  }
  return table;
}

/// Asserts ShardedStore == ExactStore bitwise for TopK and TopKBatch (serial
/// and pooled) at several k, under the given seen set.
void CheckShardedParity(const ExactStore& exact, const ShardedStore& sharded,
                        const std::vector<VectorF>& queries,
                        const SeenSet& seen, ThreadPool* pool) {
  ASSERT_EQ(exact.size(), sharded.size());
  std::vector<VecSpan> spans = AsSpans(queries);
  const size_t n = exact.size();
  for (size_t k : {size_t{1}, size_t{13}, n + 7}) {
    // Scalar path.
    for (const VecSpan& q : spans) {
      ExpectIdenticalResults(sharded.TopK(q, k, seen), exact.TopK(q, k, seen));
    }
    // Batched, serial and pooled.
    auto want = exact.TopKBatch(std::span<const VecSpan>(spans), k, seen,
                                /*pool=*/nullptr);
    auto serial = sharded.TopKBatch(std::span<const VecSpan>(spans), k, seen,
                                    /*pool=*/nullptr);
    auto pooled =
        sharded.TopKBatch(std::span<const VecSpan>(spans), k, seen, pool);
    ASSERT_EQ(serial.size(), want.size());
    ASSERT_EQ(pooled.size(), want.size());
    for (size_t q = 0; q < want.size(); ++q) {
      ExpectIdenticalResults(serial[q], want[q]);
      ExpectIdenticalResults(pooled[q], want[q]);
    }
  }
}

TEST(ShardedStoreTest, ValidatesInput) {
  EXPECT_FALSE(ShardedStore::Create(MatrixF(), {}).ok());
  ShardedOptions zero;
  zero.num_shards = 0;
  EXPECT_FALSE(ShardedStore::Create(RandomTable(10, 4, 1), zero).ok());
}

TEST(ShardedStoreTest, PartitionCoversEveryRowOnce) {
  // Odd row count vs shard counts that don't divide it: partitions must be
  // contiguous, non-empty, near-equal, and cover [0, n) exactly.
  const size_t n = 37;
  MatrixF table = RandomTable(n, 5, 2);
  for (size_t shards : kShardCounts) {
    ShardedOptions options;
    options.num_shards = shards;
    auto store = ShardedStore::Create(table, options);
    ASSERT_TRUE(store.ok());
    EXPECT_EQ(store->num_shards(), std::min(shards, n));
    EXPECT_EQ(store->size(), n);
    size_t covered = 0;
    for (size_t s = 0; s < store->num_shards(); ++s) {
      const size_t rows = store->shard_begin(s + 1) - store->shard_begin(s);
      EXPECT_GE(rows, n / store->num_shards());
      EXPECT_LE(rows, n / store->num_shards() + 1);
      covered += rows;
    }
    EXPECT_EQ(covered, n);
    // Global-id mapping: GetVector(g) must be the original row g bitwise,
    // and Locate must invert the partition.
    for (uint32_t g = 0; g < n; ++g) {
      auto [s, local] = store->Locate(g);
      EXPECT_EQ(store->shard_begin(s) + local, g);
      auto got = store->GetVector(g);
      auto want = table.Row(g);
      ASSERT_EQ(got.size(), want.size());
      for (size_t j = 0; j < got.size(); ++j) EXPECT_EQ(got[j], want[j]);
    }
  }
}

TEST(ShardedStoreTest, ClampsShardCountToRows) {
  MatrixF table = RandomTable(5, 4, 6);
  auto exact = ExactStore::Create(table);
  ShardedOptions options;
  options.num_shards = 16;
  auto sharded = ShardedStore::Create(table, options);
  ASSERT_TRUE(exact.ok());
  ASSERT_TRUE(sharded.ok());
  EXPECT_EQ(sharded->num_shards(), 5u);  // one row per shard
  auto queries = RandomQueries(2, 4, 7);
  CheckShardedParity(*exact, *sharded, queries, EmptySeenSet(),
                     /*pool=*/nullptr);
}

TEST(ShardedStoreTest, RandomizedParitySweep) {
  // The acceptance property: bitwise-identical TopK/TopKBatch vs a single
  // ExactStore for every shard count, across odd dims/row counts and seen
  // fractions 0 / 0.5 / 0.99.
  struct Case {
    size_t n, d;
    uint64_t seed;
  };
  const Case cases[] = {{157, 7, 3}, {523, 9, 4}, {96, 24, 5}};
  ThreadPool pool(4);
  for (const Case& c : cases) {
    MatrixF table = RandomTable(c.n, c.d, c.seed);
    auto exact = ExactStore::Create(table);
    ASSERT_TRUE(exact.ok());
    // Quantized rows ride the same sweep: a sharded int8 store must be
    // bitwise equal to a single int8 ExactStore (within-family parity; the
    // int32 accumulation is exact, so partitioning cannot perturb scores).
    ExactStoreOptions int8_options;
    int8_options.precision = ScanPrecision::kInt8;
    auto exact8 = ExactStore::Create(table, int8_options);
    ASSERT_TRUE(exact8.ok());
    auto queries = RandomQueries(4, c.d, c.seed + 100);
    for (size_t shards : kShardCounts) {
      ShardedOptions options;
      options.num_shards = shards;
      auto sharded = ShardedStore::Create(table, options);
      ASSERT_TRUE(sharded.ok());
      for (double fraction : {0.0, 0.5, 0.99}) {
        SeenSet seen = RandomSeenSet(c.n, fraction, c.seed + 7);
        CheckShardedParity(*exact, *sharded, queries, seen, &pool);
      }
      // An empty (capacity-0) global seen set must slice cleanly too.
      CheckShardedParity(*exact, *sharded, queries, EmptySeenSet(), &pool);

      options.precision = ScanPrecision::kInt8;
      auto sharded8 = ShardedStore::Create(table, options);
      ASSERT_TRUE(sharded8.ok());
      for (double fraction : {0.0, 0.5, 0.99}) {
        SeenSet seen = RandomSeenSet(c.n, fraction, c.seed + 7);
        CheckShardedParity(*exact8, *sharded8, queries, seen, &pool);
      }
    }
  }
}

TEST(ShardedStoreTest, MinRowsPerShardFallsBackToFewerShards) {
  // Small tables auto-fall back: requesting 16 shards of a 300-row table
  // with a 100-row floor yields 3 shards — and stays bitwise equal to the
  // unsharded scan (the floor only changes the partition, never results).
  MatrixF table = RandomTable(300, 8, 31);
  auto exact = ExactStore::Create(table);
  ASSERT_TRUE(exact.ok());
  ShardedOptions options;
  options.num_shards = 16;
  options.min_rows_per_shard = 100;
  auto sharded = ShardedStore::Create(table, options);
  ASSERT_TRUE(sharded.ok());
  EXPECT_EQ(sharded->num_shards(), 3u);
  auto queries = RandomQueries(3, 8, 32);
  SeenSet seen = RandomSeenSet(300, 0.4, 33);
  CheckShardedParity(*exact, *sharded, queries, seen, /*pool=*/nullptr);

  // A floor larger than the table collapses to one shard.
  options.min_rows_per_shard = 1000;
  auto single = ShardedStore::Create(table, options);
  ASSERT_TRUE(single.ok());
  EXPECT_EQ(single->num_shards(), 1u);
}

TEST(ShardedStoreTest, DuplicateScoresTieBreakAcrossShardBoundaries) {
  // Rows repeat 3 distinct vectors, so every shard holds bitwise-equal
  // scores; the global (score desc, id asc) order must survive the merge.
  const size_t n = 131;
  MatrixF table = DuplicateRowTable(n, 6, 3, 11);
  auto exact = ExactStore::Create(table);
  ASSERT_TRUE(exact.ok());
  auto queries = RandomQueries(3, 6, 12);
  ThreadPool pool(4);
  for (size_t shards : kShardCounts) {
    ShardedOptions options;
    options.num_shards = shards;
    auto sharded = ShardedStore::Create(table, options);
    ASSERT_TRUE(sharded.ok());
    for (double fraction : {0.0, 0.5}) {
      SeenSet seen = RandomSeenSet(n, fraction, 13);
      CheckShardedParity(*exact, *sharded, queries, seen, &pool);
    }
  }
}

TEST(ShardedStoreTest, ScalarTopKCanFanOutOnAPool) {
  MatrixF table = RandomTable(300, 8, 21);
  auto exact = ExactStore::Create(table);
  ShardedOptions options;
  options.num_shards = 5;
  auto sharded = ShardedStore::Create(table, options);
  ASSERT_TRUE(exact.ok());
  ASSERT_TRUE(sharded.ok());
  ThreadPool pool(3);
  sharded->set_thread_pool(&pool);
  auto queries = RandomQueries(3, 8, 22);
  SeenSet seen = RandomSeenSet(300, 0.3, 23);
  for (const VectorF& q : queries) {
    ExpectIdenticalResults(sharded->TopK(q, 17, seen),
                           exact->TopK(q, 17, seen));
  }
}

TEST(ShardedStoreTest, KZeroAndEmptyBatchAreTrivial) {
  ShardedOptions options;
  options.num_shards = 3;
  auto sharded = ShardedStore::Create(RandomTable(20, 4, 31), options);
  ASSERT_TRUE(sharded.ok());
  EXPECT_TRUE(sharded->TopKBatch({}, 5).empty());
  auto queries = RandomQueries(2, 4, 32);
  std::vector<VecSpan> spans = AsSpans(queries);
  auto batched = sharded->TopKBatch(std::span<const VecSpan>(spans), 0);
  ASSERT_EQ(batched.size(), 2u);
  for (const auto& hits : batched) EXPECT_TRUE(hits.empty());
}

TEST(ShardedStoreTest, ConcurrentSessionsStress) {
  // Many "sessions" with distinct seen sets issue batched lookups against
  // one ShardedStore on one shared pool; every result must stay bitwise
  // equal to the single-ExactStore answer. Runs under the TSan CI leg via
  // the `concurrency` label.
  const size_t n = 400, d = 8;
  MatrixF table = RandomTable(n, d, 41);
  auto exact = ExactStore::Create(table);
  ShardedOptions options;
  options.num_shards = 7;
  auto sharded = ShardedStore::Create(table, options);
  ASSERT_TRUE(exact.ok());
  ASSERT_TRUE(sharded.ok());
  ThreadPool shared_pool(4);

  const int kSessions = 8, kRounds = 5;
  std::vector<std::vector<VectorF>> queries;
  std::vector<SeenSet> seen;
  std::vector<std::vector<std::vector<SearchResult>>> want;
  for (int t = 0; t < kSessions; ++t) {
    queries.push_back(RandomQueries(3, d, 50 + t));
    seen.push_back(RandomSeenSet(n, 0.3, 80 + t));
    std::vector<VecSpan> spans = AsSpans(queries.back());
    want.push_back(exact->TopKBatch(std::span<const VecSpan>(spans), 12,
                                    seen.back(), /*pool=*/nullptr));
  }

  std::atomic<int> failures{0};
  std::vector<std::thread> sessions;
  for (int t = 0; t < kSessions; ++t) {
    sessions.emplace_back([&, t] {
      std::vector<VecSpan> spans = AsSpans(queries[t]);
      for (int round = 0; round < kRounds; ++round) {
        auto got = sharded->TopKBatch(std::span<const VecSpan>(spans), 12,
                                      seen[t], &shared_pool);
        if (got.size() != want[t].size()) {
          ++failures;
          continue;
        }
        for (size_t q = 0; q < got.size(); ++q) {
          if (got[q].size() != want[t][q].size()) ++failures;
          for (size_t i = 0; i < got[q].size(); ++i) {
            if (got[q][i].id != want[t][q][i].id ||
                got[q][i].score != want[t][q][i].score) {
              ++failures;
            }
          }
        }
      }
    });
  }
  for (auto& s : sessions) s.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(ShardedStoreTest, ConcurrentCancellationLeavesOthersIntact) {
  // Half the sessions get cancelled mid-flight while the rest must keep
  // returning exact results — cancellation is per-call state, never shared.
  const size_t n = 600, d = 8;
  MatrixF table = RandomTable(n, d, 61);
  auto exact = ExactStore::Create(table);
  ShardedOptions options;
  options.num_shards = 7;
  auto sharded = ShardedStore::Create(table, options);
  ASSERT_TRUE(exact.ok());
  ASSERT_TRUE(sharded.ok());
  ThreadPool shared_pool(4);

  auto queries = RandomQueries(2, d, 62);
  std::vector<VecSpan> spans = AsSpans(queries);
  auto want = exact->TopKBatch(std::span<const VecSpan>(spans), 10,
                               EmptySeenSet(), /*pool=*/nullptr);

  std::atomic<int> failures{0};
  std::vector<std::thread> sessions;
  for (int t = 0; t < 8; ++t) {
    const bool cancels = (t % 2) == 0;
    sessions.emplace_back([&, cancels] {
      for (int round = 0; round < 5; ++round) {
        CancellationToken token;
        ScanControl control;
        control.cancel = &token;
        if (cancels) token.RequestCancel();  // trips at the first checkpoint
        auto got =
            sharded->TopKBatch(std::span<const VecSpan>(spans), 10,
                               EmptySeenSet(), &shared_pool, control);
        if (cancels) continue;  // partial results, discarded by contract
        if (got.size() != want.size()) {
          ++failures;
          continue;
        }
        for (size_t q = 0; q < got.size(); ++q) {
          if (got[q].size() != want[q].size()) ++failures;
          for (size_t i = 0; i < got[q].size(); ++i) {
            if (got[q][i].id != want[q][i].id ||
                got[q][i].score != want[q][i].score) {
              ++failures;
            }
          }
        }
      }
    });
  }
  for (auto& s : sessions) s.join();
  EXPECT_EQ(failures.load(), 0);
}

// ----------------------------------------------- in-scan cancellation --

/// Runs `fn` (a TopKBatch call) on a worker thread while the main thread
/// drives the deterministic block-then-cancel schedule through the
/// checkpoint hook: the scan parks at its first checkpoint, the test cancels
/// mid-call, the scan resumes and must stop at that very checkpoint.
/// Returns the number of checkpoints the scan hit.
template <typename Fn>
int RunBlockThenCancel(const CancellationToken& token, ScanControl& control,
                       Fn fn) {
  std::atomic<int> checkpoints{0};
  std::binary_semaphore reached{0};
  std::binary_semaphore resume{0};
  control.checkpoint = [&] {
    if (checkpoints.fetch_add(1) == 0) {
      reached.release();
      resume.acquire();
    }
  };
  std::thread scan(fn);
  reached.acquire();            // the scan is parked inside TopKBatch
  token.RequestCancel();        // cancel mid-call
  resume.release();
  scan.join();
  return checkpoints.load();
}

TEST(InScanCancellationTest, ExactStoreStopsMidTopKBatch) {
  // 2048 rows = 64 row blocks; serial scan (no pool) hits one checkpoint
  // per block. Without cancellation all 64 fire; with a cancel delivered
  // while the scan is parked at its first checkpoint, the scan must return
  // from *that* checkpoint — one hit, zero further blocks.
  auto store = ExactStore::Create(RandomTable(2048, 8, 71));
  ASSERT_TRUE(store.ok());
  auto queries = RandomQueries(2, 8, 72);
  std::vector<VecSpan> spans = AsSpans(queries);

  // Baseline: count checkpoints of an uncancelled scan.
  int total_blocks = 0;
  {
    ScanControl control;
    control.checkpoint = [&] { ++total_blocks; };
    auto out = store->TopKBatch(std::span<const VecSpan>(spans), 10,
                                EmptySeenSet(), /*pool=*/nullptr, control);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].size(), 10u);
  }
  EXPECT_EQ(total_blocks, 64);

  CancellationToken token;
  ScanControl control;
  control.cancel = &token;
  std::vector<std::vector<SearchResult>> out;
  int hit = RunBlockThenCancel(token, control, [&] {
    out = store->TopKBatch(std::span<const VecSpan>(spans), 10, EmptySeenSet(),
                           /*pool=*/nullptr, control);
  });
  EXPECT_EQ(hit, 1) << "the scan must stop at the checkpoint that observed "
                       "the cancel, not finish the table";
  ASSERT_EQ(out.size(), 2u);          // partial result: right shape,
  EXPECT_TRUE(out[0].empty());        // nothing scanned before the cancel
}

TEST(InScanCancellationTest, ShardedStoreStopsMidTopKBatchAndSkipsShards) {
  // Serial sharded scan: the first child parks at its first block
  // checkpoint; after the cancel it returns and the parent's per-shard
  // checkpoints skip the remaining shards outright. 2048 rows / 8 shards =
  // 8 blocks per child, 72 checkpoints total uncancelled (64 block + 8
  // shard dispatches); cancelled: 1 block hit + 7 shard-skip hits.
  MatrixF table = RandomTable(2048, 8, 73);
  ShardedOptions options;
  options.num_shards = 8;
  auto store = ShardedStore::Create(table, options);
  ASSERT_TRUE(store.ok());
  auto queries = RandomQueries(2, 8, 74);
  std::vector<VecSpan> spans = AsSpans(queries);

  int total = 0;
  {
    ScanControl control;
    control.checkpoint = [&] { ++total; };
    auto out = store->TopKBatch(std::span<const VecSpan>(spans), 10,
                                EmptySeenSet(), /*pool=*/nullptr, control);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].size(), 10u);
  }
  EXPECT_EQ(total, 72);

  CancellationToken token;
  ScanControl control;
  control.cancel = &token;
  std::vector<std::vector<SearchResult>> out;
  int hit = RunBlockThenCancel(token, control, [&] {
    out = store->TopKBatch(std::span<const VecSpan>(spans), 10, EmptySeenSet(),
                           /*pool=*/nullptr, control);
  });
  // 1 parked shard-dispatch checkpoint + 7 shard-skip checkpoints; no row
  // block is ever scored.
  EXPECT_EQ(hit, 8);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_TRUE(out[0].empty());
}

TEST(InScanCancellationTest, IvfIndexStopsBetweenProbedLists) {
  // nprobe = num_lists makes every list a checkpoint; the parked scan must
  // stop at the checkpoint that observed the cancel (1 list hit per query
  // at most — the second query's ScanLists stops at its own first
  // checkpoint too).
  IvfOptions ivf;
  ivf.num_lists = 16;
  ivf.nprobe = 16;
  auto store = IvfFlatIndex::Build(ivf, RandomTable(512, 8, 75));
  ASSERT_TRUE(store.ok());
  auto queries = RandomQueries(1, 8, 76);
  std::vector<VecSpan> spans = AsSpans(queries);

  int total = 0;
  {
    ScanControl control;
    control.checkpoint = [&] { ++total; };
    auto out = store->TopKBatch(std::span<const VecSpan>(spans), 10,
                                EmptySeenSet(), /*pool=*/nullptr, control);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].size(), 10u);
  }
  EXPECT_EQ(total, static_cast<int>(store->num_lists()));

  CancellationToken token;
  ScanControl control;
  control.cancel = &token;
  std::vector<std::vector<SearchResult>> out;
  int hit = RunBlockThenCancel(token, control, [&] {
    out = store->TopKBatch(std::span<const VecSpan>(spans), 10, EmptySeenSet(),
                           /*pool=*/nullptr, control);
  });
  EXPECT_EQ(hit, 1);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0].empty());
}

// The scalar TopK path checkpoints at the same granularity as the batched
// one (ROADMAP leftover closed by the refit-speculation PR): per row block
// for the exact scan, per shard dispatch for ShardedStore, per probed list
// for IVF. Same deterministic semaphore-parked schedule as above.

TEST(InScanCancellationTest, ExactStoreScalarTopKStopsMidScan) {
  // 2048 rows = 64 row-block checkpoints, exactly like the batched scan.
  auto store = ExactStore::Create(RandomTable(2048, 8, 81));
  ASSERT_TRUE(store.ok());
  auto queries = RandomQueries(1, 8, 82);

  int total_blocks = 0;
  {
    ScanControl control;
    control.checkpoint = [&] { ++total_blocks; };
    auto out = store->TopK(queries[0], 10, EmptySeenSet(), control);
    EXPECT_EQ(out.size(), 10u);
    // The checkpoints must not change the result: bitwise equal to the
    // control-free scalar scan.
    ExpectIdenticalResults(out, store->TopK(queries[0], 10));
  }
  EXPECT_EQ(total_blocks, 64);

  CancellationToken token;
  ScanControl control;
  control.cancel = &token;
  std::vector<SearchResult> out;
  int hit = RunBlockThenCancel(token, control, [&] {
    out = store->TopK(queries[0], 10, EmptySeenSet(), control);
  });
  EXPECT_EQ(hit, 1) << "the scalar scan must stop at the checkpoint that "
                       "observed the cancel, not finish the table";
  EXPECT_TRUE(out.empty());  // nothing scanned before the cancel
}

TEST(InScanCancellationTest, ShardedStoreScalarTopKStopsAndSkipsShards) {
  // Serial sharded scalar scan: 8 shard-dispatch checkpoints + 8 child
  // blocks each (2048 rows / 8 shards / 32-row blocks) = 72 uncancelled;
  // cancelled at the first checkpoint: the parked shard is skipped and the
  // remaining 7 dispatches short-circuit — 8 hook hits, no block scored.
  MatrixF table = RandomTable(2048, 8, 83);
  ShardedOptions options;
  options.num_shards = 8;
  auto store = ShardedStore::Create(table, options);
  ASSERT_TRUE(store.ok());
  auto queries = RandomQueries(1, 8, 84);

  int total = 0;
  {
    ScanControl control;
    control.checkpoint = [&] { ++total; };
    auto out = store->TopK(queries[0], 10, EmptySeenSet(), control);
    EXPECT_EQ(out.size(), 10u);
    ExpectIdenticalResults(out, store->TopK(queries[0], 10));
  }
  EXPECT_EQ(total, 72);

  CancellationToken token;
  ScanControl control;
  control.cancel = &token;
  std::vector<SearchResult> out;
  int hit = RunBlockThenCancel(token, control, [&] {
    out = store->TopK(queries[0], 10, EmptySeenSet(), control);
  });
  EXPECT_EQ(hit, 8);
  EXPECT_TRUE(out.empty());
}

TEST(InScanCancellationTest, IvfScalarTopKStopsBetweenProbedLists) {
  // nprobe = num_lists makes every probed list a checkpoint.
  IvfOptions ivf;
  ivf.num_lists = 16;
  ivf.nprobe = 16;
  auto store = IvfFlatIndex::Build(ivf, RandomTable(512, 8, 85));
  ASSERT_TRUE(store.ok());
  auto queries = RandomQueries(1, 8, 86);

  int total = 0;
  {
    ScanControl control;
    control.checkpoint = [&] { ++total; };
    auto out = store->TopK(queries[0], 10, EmptySeenSet(), control);
    EXPECT_EQ(out.size(), 10u);
    ExpectIdenticalResults(out, store->TopK(queries[0], 10));
  }
  EXPECT_EQ(total, static_cast<int>(store->num_lists()));

  CancellationToken token;
  ScanControl control;
  control.cancel = &token;
  std::vector<SearchResult> out;
  int hit = RunBlockThenCancel(token, control, [&] {
    out = store->TopK(queries[0], 10, EmptySeenSet(), control);
  });
  EXPECT_EQ(hit, 1);
  EXPECT_TRUE(out.empty());
}

// ------------------------------------------------- service-layer wiring --

TEST(ShardedServiceTest, ManagedSessionsMatchExactBackendBitwise) {
  // ServiceOptions -> kSharded backend -> SessionManager shared pool:
  // batches served through managed sessions must be bitwise identical to
  // the single-ExactStore service.
  auto profile = data::CocoLikeProfile(0.05);
  profile.embedding_dim = 32;
  auto ds = data::Dataset::Generate(profile);
  ASSERT_TRUE(ds.ok());

  auto run_service = [&](core::StoreBackend backend) {
    core::ServiceOptions options;
    options.preprocess.multiscale.enabled = false;
    options.preprocess.build_md = false;
    options.preprocess.backend = backend;
    options.preprocess.sharded.num_shards = 5;
    options.session_threads = 3;
    auto svc = core::SeeSawService::Create(*ds, options);
    EXPECT_TRUE(svc.ok());
    auto& manager = svc->sessions();
    auto id = manager.CreateSession(svc->embedded().TextQuery(0));
    EXPECT_TRUE(id.ok());
    auto session = manager.Find(*id);
    std::vector<core::ScoredImage> batches;
    for (int round = 0; round < 3; ++round) {
      auto batch = session->NextBatch(6);
      for (const auto& hit : batch) {
        core::ImageFeedback fb;
        fb.image_idx = hit.image_idx;
        fb.relevant = ds->IsPositive(hit.image_idx, 0);
        if (fb.relevant) fb.boxes = ds->ConceptBoxes(hit.image_idx, 0);
        session->AddFeedback(fb);
        batches.push_back(hit);
      }
      EXPECT_TRUE(session->Refit().ok());
    }
    EXPECT_TRUE(manager.Close(*id).ok());
    return batches;
  };

  auto exact = run_service(core::StoreBackend::kExact);
  auto sharded = run_service(core::StoreBackend::kSharded);
  ASSERT_EQ(exact.size(), sharded.size());
  for (size_t i = 0; i < exact.size(); ++i) {
    EXPECT_EQ(exact[i].image_idx, sharded[i].image_idx) << "position " << i;
    EXPECT_EQ(exact[i].score, sharded[i].score) << "position " << i;
  }
}

}  // namespace
}  // namespace seesaw::store
