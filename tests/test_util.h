// Shared fixture builders for the test suites: random embedding-like
// tables, query sets, seen sets, the embedded-dataset fixture, and the
// deterministic scripted user driving interaction-loop tests — the builders
// that used to be duplicated across store_test, topk_batch_test, and
// prefetch_test. Header-only; every test binary links the full library.
#ifndef SEESAW_TESTS_TEST_UTIL_H_
#define SEESAW_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <memory>
#include <thread>
#include <vector>

#include "clip/concept_space.h"
#include "common/rng.h"
#include "core/embedded_dataset.h"
#include "core/searcher_base.h"
#include "data/profiles.h"
#include "linalg/matrix.h"
#include "linalg/vector_ops.h"
#include "store/seen_set.h"
#include "store/vector_store.h"

namespace seesaw::test_util {

/// Random unit-vector table, like an embedding table.
inline linalg::MatrixF RandomTable(size_t n, size_t d, uint64_t seed) {
  Rng rng(seed);
  linalg::MatrixF table(n, d);
  for (size_t i = 0; i < n; ++i) {
    auto row = table.MutableRow(i);
    for (size_t j = 0; j < d; ++j) row[j] = static_cast<float>(rng.Gaussian());
    linalg::NormalizeInPlace(row);
  }
  return table;
}

/// Clustered unit vectors — the shape of real embedding tables (uniform
/// random high-dim data is the known worst case for RP trees and not what
/// the store sees in practice).
inline linalg::MatrixF ClusteredTable(size_t n, size_t d, size_t centers,
                                      uint64_t seed) {
  Rng rng(seed);
  std::vector<linalg::VectorF> mu;
  for (size_t c = 0; c < centers; ++c) {
    mu.push_back(clip::RandomUnitVector(rng, d));
  }
  linalg::MatrixF table(n, d);
  for (size_t i = 0; i < n; ++i) {
    auto row = table.MutableRow(i);
    const linalg::VectorF& center = mu[i % centers];
    for (size_t j = 0; j < d; ++j) {
      row[j] = center[j] + 0.25f * static_cast<float>(rng.Gaussian());
    }
    linalg::NormalizeInPlace(row);
  }
  return table;
}

/// Random unit-norm query set.
inline std::vector<linalg::VectorF> RandomQueries(size_t count, size_t d,
                                                  uint64_t seed) {
  Rng rng(seed);
  std::vector<linalg::VectorF> queries;
  for (size_t i = 0; i < count; ++i) {
    linalg::VectorF q(d);
    for (float& v : q) v = static_cast<float>(rng.Gaussian());
    linalg::NormalizeInPlace(linalg::MutVecSpan(q.data(), q.size()));
    queries.push_back(std::move(q));
  }
  return queries;
}

/// Seen set over [0, capacity) with each id marked with probability
/// `fraction`.
inline store::SeenSet RandomSeenSet(size_t capacity, double fraction,
                                    uint64_t seed) {
  store::SeenSet seen(capacity);
  Rng rng(seed);
  for (size_t id = 0; id < capacity; ++id) {
    if (rng.Uniform() < fraction) seen.Set(static_cast<uint32_t>(id));
  }
  return seen;
}

/// Borrowed spans over a query set (the TopKBatch argument shape).
inline std::vector<linalg::VecSpan> AsSpans(
    const std::vector<linalg::VectorF>& queries) {
  return std::vector<linalg::VecSpan>(queries.begin(), queries.end());
}

/// Asserts two result lists are bitwise identical: same length, and the
/// same id and score bits at every rank.
inline void ExpectIdenticalResults(
    const std::vector<store::SearchResult>& got,
    const std::vector<store::SearchResult>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, want[i].id) << "rank " << i;
    EXPECT_EQ(got[i].score, want[i].score) << "rank " << i;
  }
}

/// A small generated dataset embedded with the given store backend — the
/// fixture the searcher/prefetch/session suites drive end to end.
struct EmbeddedFixture {
  std::unique_ptr<data::Dataset> dataset;
  std::unique_ptr<core::EmbeddedDataset> embedded;
};

inline EmbeddedFixture MakeEmbeddedFixture(core::StoreBackend backend,
                                           double scale = 0.05,
                                           size_t dim = 32,
                                           size_t num_shards = 4) {
  auto profile = data::CocoLikeProfile(scale);
  profile.embedding_dim = dim;
  auto ds = data::Dataset::Generate(profile);
  EXPECT_TRUE(ds.ok());
  EmbeddedFixture f;
  f.dataset = std::make_unique<data::Dataset>(std::move(*ds));
  core::PreprocessOptions options;
  options.multiscale.enabled = false;
  options.build_md = false;
  options.backend = backend;
  options.sharded.num_shards = num_shards;
  auto ed = core::EmbeddedDataset::Build(*f.dataset, options);
  EXPECT_TRUE(ed.ok());
  f.embedded = std::make_unique<core::EmbeddedDataset>(std::move(*ed));
  return f;
}

/// Asserts two image batches are bitwise identical: same length, and the
/// same image index and score bits at every rank.
inline void ExpectSameImageBatch(const std::vector<core::ScoredImage>& got,
                                 const std::vector<core::ScoredImage>& want,
                                 int round) {
  ASSERT_EQ(got.size(), want.size()) << "round " << round;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].image_idx, want[i].image_idx) << "round " << round;
    EXPECT_EQ(got[i].score, want[i].score) << "round " << round;  // bitwise
  }
}

/// How one interaction round deviates from the canonical "label the whole
/// batch in shown order, then refit" loop. The speculation suites use these
/// knobs to drive every consume/invalidate branch of the refit-speculation
/// state machine.
struct RoundScript {
  /// Label the batch back to front instead of in shown order.
  bool reverse_order = false;
  /// Label only the first `max_labels` images of the (possibly reversed)
  /// batch — a user who turns the page early (partial labels).
  size_t max_labels = static_cast<size_t>(-1);
  /// Additionally label one never-shown image (found via some other tool),
  /// interleaved after the first in-batch label — feedback outside the
  /// predicted batch.
  bool label_unshown_image = false;
  /// Call Refit() at the end of the round.
  bool refit = true;
};

/// Deterministic scripted user: fetches a batch, labels it from dataset
/// ground truth (region boxes included), optionally sleeps a fixed think
/// time after each label (mirroring eval::RunSearchTask's timing model, the
/// window speculative prefetch overlaps), and refits. One place for the
/// drive loops the prefetch/speculation suites used to hand-roll.
class ScriptedUser {
 public:
  ScriptedUser(const data::Dataset& dataset, size_t concept_id,
               double think_seconds = 0.0)
      : dataset_(&dataset),
        concept_id_(concept_id),
        think_seconds_(think_seconds) {}

  /// Ground-truth feedback for one image (relevance + concept boxes).
  core::ImageFeedback GroundTruthFeedback(uint32_t image_idx) const {
    core::ImageFeedback fb;
    fb.image_idx = image_idx;
    fb.relevant = dataset_->IsPositive(image_idx, concept_id_);
    if (fb.relevant) {
      fb.boxes = dataset_->ConceptBoxes(image_idx, concept_id_);
    }
    return fb;
  }

  /// One interaction round: fetch a batch of `n`, label it per `script`,
  /// refit (unless the script skips it). Returns the batch as fetched.
  std::vector<core::ScoredImage> DriveRound(core::SearcherBase& searcher,
                                            size_t n,
                                            const RoundScript& script = {}) {
    std::vector<core::ScoredImage> batch = searcher.NextBatch(n);
    std::vector<core::ScoredImage> order = batch;
    if (script.reverse_order) std::reverse(order.begin(), order.end());
    if (order.size() > script.max_labels) order.resize(script.max_labels);
    for (size_t i = 0; i < order.size(); ++i) {
      Label(searcher, order[i].image_idx);
      if (i == 0 && script.label_unshown_image) {
        Label(searcher, FindUnshownImage(searcher, batch));
      }
    }
    if (script.label_unshown_image && order.empty()) {
      Label(searcher, FindUnshownImage(searcher, batch));
    }
    if (script.refit) EXPECT_TRUE(searcher.Refit().ok());
    return batch;
  }

 private:
  void Label(core::SearcherBase& searcher, uint32_t image_idx) {
    searcher.AddFeedback(GroundTruthFeedback(image_idx));
    if (think_seconds_ > 0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(think_seconds_));
    }
  }

  /// Lowest-index image that is neither seen nor part of `batch`.
  static uint32_t FindUnshownImage(const core::SearcherBase& searcher,
                                   const std::vector<core::ScoredImage>& batch) {
    auto in_batch = [&](uint32_t idx) {
      for (const core::ScoredImage& hit : batch) {
        if (hit.image_idx == idx) return true;
      }
      return false;
    };
    uint32_t idx = 0;
    while (searcher.IsSeen(idx) || in_batch(idx)) ++idx;
    return idx;
  }

  const data::Dataset* dataset_;
  size_t concept_id_;
  double think_seconds_;
};

}  // namespace seesaw::test_util

#endif  // SEESAW_TESTS_TEST_UTIL_H_
