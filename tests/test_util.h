// Shared fixture builders for the test suites: random embedding-like
// tables, query sets, seen sets, and the embedded-dataset fixture — the
// builders that used to be duplicated across store_test, topk_batch_test,
// and prefetch_test. Header-only; every test binary links the full library.
#ifndef SEESAW_TESTS_TEST_UTIL_H_
#define SEESAW_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "clip/concept_space.h"
#include "common/rng.h"
#include "core/embedded_dataset.h"
#include "data/profiles.h"
#include "linalg/matrix.h"
#include "linalg/vector_ops.h"
#include "store/seen_set.h"
#include "store/vector_store.h"

namespace seesaw::test_util {

/// Random unit-vector table, like an embedding table.
inline linalg::MatrixF RandomTable(size_t n, size_t d, uint64_t seed) {
  Rng rng(seed);
  linalg::MatrixF table(n, d);
  for (size_t i = 0; i < n; ++i) {
    auto row = table.MutableRow(i);
    for (size_t j = 0; j < d; ++j) row[j] = static_cast<float>(rng.Gaussian());
    linalg::NormalizeInPlace(row);
  }
  return table;
}

/// Clustered unit vectors — the shape of real embedding tables (uniform
/// random high-dim data is the known worst case for RP trees and not what
/// the store sees in practice).
inline linalg::MatrixF ClusteredTable(size_t n, size_t d, size_t centers,
                                      uint64_t seed) {
  Rng rng(seed);
  std::vector<linalg::VectorF> mu;
  for (size_t c = 0; c < centers; ++c) {
    mu.push_back(clip::RandomUnitVector(rng, d));
  }
  linalg::MatrixF table(n, d);
  for (size_t i = 0; i < n; ++i) {
    auto row = table.MutableRow(i);
    const linalg::VectorF& center = mu[i % centers];
    for (size_t j = 0; j < d; ++j) {
      row[j] = center[j] + 0.25f * static_cast<float>(rng.Gaussian());
    }
    linalg::NormalizeInPlace(row);
  }
  return table;
}

/// Random unit-norm query set.
inline std::vector<linalg::VectorF> RandomQueries(size_t count, size_t d,
                                                  uint64_t seed) {
  Rng rng(seed);
  std::vector<linalg::VectorF> queries;
  for (size_t i = 0; i < count; ++i) {
    linalg::VectorF q(d);
    for (float& v : q) v = static_cast<float>(rng.Gaussian());
    linalg::NormalizeInPlace(linalg::MutVecSpan(q.data(), q.size()));
    queries.push_back(std::move(q));
  }
  return queries;
}

/// Seen set over [0, capacity) with each id marked with probability
/// `fraction`.
inline store::SeenSet RandomSeenSet(size_t capacity, double fraction,
                                    uint64_t seed) {
  store::SeenSet seen(capacity);
  Rng rng(seed);
  for (size_t id = 0; id < capacity; ++id) {
    if (rng.Uniform() < fraction) seen.Set(static_cast<uint32_t>(id));
  }
  return seen;
}

/// Borrowed spans over a query set (the TopKBatch argument shape).
inline std::vector<linalg::VecSpan> AsSpans(
    const std::vector<linalg::VectorF>& queries) {
  return std::vector<linalg::VecSpan>(queries.begin(), queries.end());
}

/// Asserts two result lists are bitwise identical: same length, and the
/// same id and score bits at every rank.
inline void ExpectIdenticalResults(
    const std::vector<store::SearchResult>& got,
    const std::vector<store::SearchResult>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, want[i].id) << "rank " << i;
    EXPECT_EQ(got[i].score, want[i].score) << "rank " << i;
  }
}

/// A small generated dataset embedded with the given store backend — the
/// fixture the searcher/prefetch/session suites drive end to end.
struct EmbeddedFixture {
  std::unique_ptr<data::Dataset> dataset;
  std::unique_ptr<core::EmbeddedDataset> embedded;
};

inline EmbeddedFixture MakeEmbeddedFixture(core::StoreBackend backend,
                                           double scale = 0.05,
                                           size_t dim = 32,
                                           size_t num_shards = 4) {
  auto profile = data::CocoLikeProfile(scale);
  profile.embedding_dim = dim;
  auto ds = data::Dataset::Generate(profile);
  EXPECT_TRUE(ds.ok());
  EmbeddedFixture f;
  f.dataset = std::make_unique<data::Dataset>(std::move(*ds));
  core::PreprocessOptions options;
  options.multiscale.enabled = false;
  options.build_md = false;
  options.backend = backend;
  options.sharded.num_shards = num_shards;
  auto ed = core::EmbeddedDataset::Build(*f.dataset, options);
  EXPECT_TRUE(ed.ok());
  f.embedded = std::make_unique<core::EmbeddedDataset>(std::move(*ed));
  return f;
}

}  // namespace seesaw::test_util

#endif  // SEESAW_TESTS_TEST_UTIL_H_
