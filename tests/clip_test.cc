#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "clip/concept_space.h"
#include "clip/synthetic_clip.h"
#include "linalg/vector_ops.h"

namespace seesaw::clip {
namespace {

using linalg::Cosine;
using linalg::Norm;
using linalg::VectorF;

ConceptSpaceOptions SmallOptions() {
  ConceptSpaceOptions o;
  o.dim = 64;
  o.num_backgrounds = 4;
  o.seed = 5;
  return o;
}

TEST(ConceptSpaceTest, CreateValidatesInputs) {
  EXPECT_FALSE(ConceptSpace::Create({.dim = 2}, {{"a"}}).ok());
  EXPECT_FALSE(
      ConceptSpace::Create({.dim = 16, .num_backgrounds = 0}, {{"a"}}).ok());
  EXPECT_FALSE(ConceptSpace::Create(SmallOptions(), {{""}}).ok());
  EXPECT_FALSE(ConceptSpace::Create(SmallOptions(), {{"a"}, {"a"}}).ok());
  ConceptSpec bad_modes{"a"};
  bad_modes.num_modes = 0;
  EXPECT_FALSE(ConceptSpace::Create(SmallOptions(), {bad_modes}).ok());
  ConceptSpec bad_deficit{"a"};
  bad_deficit.alignment_deficit = 1.5;
  EXPECT_FALSE(ConceptSpace::Create(SmallOptions(), {bad_deficit}).ok());
}

TEST(ConceptSpaceTest, VectorsAreUnitNorm) {
  ConceptSpec spec{"cat"};
  spec.num_modes = 3;
  spec.alignment_deficit = 0.4;
  auto space = ConceptSpace::Create(SmallOptions(), {spec});
  ASSERT_TRUE(space.ok());
  const Concept& c = space->concept_at(0);
  for (const auto& mode : c.modes) EXPECT_NEAR(Norm(mode), 1.0f, 1e-5f);
  EXPECT_NEAR(Norm(c.text_embedding), 1.0f, 1e-5f);
  for (size_t b = 0; b < space->num_backgrounds(); ++b) {
    EXPECT_NEAR(Norm(space->background(b)), 1.0f, 1e-5f);
  }
}

TEST(ConceptSpaceTest, ModeWeightsSumToOne) {
  ConceptSpec spec{"dog"};
  spec.num_modes = 3;
  auto space = ConceptSpace::Create(SmallOptions(), {spec});
  ASSERT_TRUE(space.ok());
  double total = 0;
  for (double w : space->concept_at(0).mode_weights) total += w;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ConceptSpaceTest, ZeroDeficitTextSitsOnModeCentroid) {
  ConceptSpec spec{"bird"};
  spec.alignment_deficit = 0.0;
  auto space = ConceptSpace::Create(SmallOptions(), {spec});
  ASSERT_TRUE(space.ok());
  const Concept& c = space->concept_at(0);
  EXPECT_GT(Cosine(c.text_embedding, c.ModeCentroid()), 0.999f);
}

TEST(ConceptSpaceTest, LargerDeficitLowersTextAlignment) {
  // The deficit knob must be monotone: that is what Fig. 2a's geometry needs.
  double prev_cos = 1.1;
  for (double deficit : {0.0, 0.2, 0.4, 0.6, 0.8}) {
    ConceptSpec spec{"thing"};
    spec.alignment_deficit = deficit;
    ConceptSpaceOptions o = SmallOptions();
    o.seed = 77;  // same geometry each round, only the deficit varies
    auto space = ConceptSpace::Create(o, {spec});
    ASSERT_TRUE(space.ok());
    const Concept& c = space->concept_at(0);
    double cos = Cosine(c.text_embedding, c.ModeCentroid());
    EXPECT_LT(cos, prev_cos);
    prev_cos = cos;
  }
}

TEST(ConceptSpaceTest, MultiModeConceptsSpread) {
  ConceptSpec spec{"multi"};
  spec.num_modes = 2;
  spec.mode_spread = 0.8;
  auto space = ConceptSpace::Create(SmallOptions(), {spec});
  ASSERT_TRUE(space.ok());
  const Concept& c = space->concept_at(0);
  float cos = Cosine(c.modes[0], c.modes[1]);
  EXPECT_LT(cos, 0.95f);  // modes are distinct
  EXPECT_GT(cos, 0.0f);   // but still related
}

TEST(ConceptSpaceTest, FindConceptByName) {
  auto space = ConceptSpace::Create(SmallOptions(), {{"cat"}, {"dog"}});
  ASSERT_TRUE(space.ok());
  auto id = space->FindConcept("dog");
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, 1u);
  EXPECT_TRUE(space->FindConcept("bird").status().IsNotFound());
}

TEST(ConceptSpaceTest, DeterministicGivenSeed) {
  auto a = ConceptSpace::Create(SmallOptions(), {{"x"}});
  auto b = ConceptSpace::Create(SmallOptions(), {{"x"}});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->concept_at(0).modes[0], b->concept_at(0).modes[0]);
}

TEST(RandomUnitVectorTest, UnitNormAndNearOrthogonalInHighDim) {
  Rng rng(3);
  auto a = RandomUnitVector(rng, 256);
  auto b = RandomUnitVector(rng, 256);
  EXPECT_NEAR(Norm(a), 1.0f, 1e-5f);
  EXPECT_LT(std::abs(Cosine(a, b)), 0.25f);
}

// ----------------------------------------------------------- SyntheticClip --

class SyntheticClipTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ConceptSpec cat{"cat"};
    ConceptSpec dog{"dog"};
    dog.alignment_deficit = 0.5;
    auto space = ConceptSpace::Create(SmallOptions(), {cat, dog});
    ASSERT_TRUE(space.ok());
    space_ = std::make_shared<const ConceptSpace>(std::move(*space));
    model_ = std::make_unique<SyntheticClip>(space_);
  }

  std::shared_ptr<const ConceptSpace> space_;
  std::unique_ptr<SyntheticClip> model_;
};

TEST_F(SyntheticClipTest, PatchEmbeddingIsUnitNorm) {
  PatchContent content;
  content.objects.push_back({0, 0, 0.8f});
  content.background_id = 1;
  auto v = model_->EmbedPatch(content);
  EXPECT_NEAR(Norm(v), 1.0f, 1e-5f);
}

TEST_F(SyntheticClipTest, PatchEmbeddingIsDeterministic) {
  PatchContent content;
  content.objects.push_back({0, 0, 0.5f});
  content.noise_seed = 999;
  auto first = model_->EmbedPatch(content);
  EXPECT_EQ(first, model_->EmbedPatch(content));
  content.noise_seed = 1000;
  EXPECT_NE(first, model_->EmbedPatch(content));
}

TEST_F(SyntheticClipTest, ProminentObjectDominatesEmbedding) {
  PatchContent strong;
  strong.objects.push_back({0, 0, 2.0f});
  strong.background_weight = 0.2f;
  strong.noise_scale = 0.05f;
  auto v = model_->EmbedPatch(strong);
  const auto& mode = space_->concept_at(0).modes[0];
  EXPECT_GT(Cosine(v, mode), 0.9f);
}

TEST_F(SyntheticClipTest, FaintObjectIsWashedOutByBackground) {
  PatchContent faint;
  faint.objects.push_back({0, 0, 0.02f});
  faint.background_weight = 1.0f;
  faint.noise_scale = 0.05f;
  auto v = model_->EmbedPatch(faint);
  const auto& mode = space_->concept_at(0).modes[0];
  EXPECT_LT(Cosine(v, mode), 0.3f);
}

TEST_F(SyntheticClipTest, EmptyPatchIsBackgroundPlusNoise) {
  PatchContent empty;
  empty.background_id = 0;
  empty.background_weight = 1.0f;
  empty.noise_scale = 0.0f;
  auto v = model_->EmbedPatch(empty);
  EXPECT_GT(Cosine(v, space_->background(0)), 0.999f);
}

TEST_F(SyntheticClipTest, TextLookupByIdAndName) {
  auto by_id = model_->EmbedText(size_t{1});
  auto by_name = model_->EmbedText("dog");
  ASSERT_TRUE(by_name.ok());
  EXPECT_EQ(by_id, *by_name);
  EXPECT_TRUE(model_->EmbedText("unknown").status().IsNotFound());
}

TEST_F(SyntheticClipTest, WellAlignedTextRanksItsConceptHigher) {
  // cat has deficit 0, dog 0.5: the cat text vector must be better aligned
  // with cat patches than the dog text vector is with dog patches.
  PatchContent cat_patch;
  cat_patch.objects.push_back({0, 0, 1.0f});
  cat_patch.noise_scale = 0;
  cat_patch.background_weight = 0.1f;
  PatchContent dog_patch;
  dog_patch.objects.push_back({1, 0, 1.0f});
  dog_patch.noise_scale = 0;
  dog_patch.background_weight = 0.1f;

  float cat_align = Cosine(model_->EmbedPatch(cat_patch),
                           model_->EmbedText(size_t{0}));
  float dog_align = Cosine(model_->EmbedPatch(dog_patch),
                           model_->EmbedText(size_t{1}));
  EXPECT_GT(cat_align, dog_align);
}

}  // namespace
}  // namespace seesaw::clip
