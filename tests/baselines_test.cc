#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "core/baselines/ens.h"
#include "core/seesaw_searcher.h"
#include "core/baselines/platt.h"
#include "core/baselines/propagation.h"
#include "core/graph_context.h"
#include "data/profiles.h"

namespace seesaw::core {
namespace {

struct Fixture {
  std::unique_ptr<data::Dataset> dataset;
  std::unique_ptr<EmbeddedDataset> embedded;
  std::unique_ptr<GraphContext> graph;
};

Fixture MakeCoarseFixture(uint64_t seed = 0) {
  auto profile = data::CocoLikeProfile(0.05);
  profile.embedding_dim = 32;
  if (seed) profile.seed = seed;
  auto ds = data::Dataset::Generate(profile);
  EXPECT_TRUE(ds.ok());
  Fixture f;
  f.dataset = std::make_unique<data::Dataset>(std::move(*ds));
  PreprocessOptions options;
  options.multiscale.enabled = false;
  options.build_md = false;
  auto ed = EmbeddedDataset::Build(*f.dataset, options);
  EXPECT_TRUE(ed.ok());
  f.embedded = std::make_unique<EmbeddedDataset>(std::move(*ed));
  GraphContextOptions gopts;
  gopts.k = 10;
  auto g = GraphContext::Build(*f.embedded, gopts);
  EXPECT_TRUE(g.ok());
  f.graph = std::make_unique<GraphContext>(std::move(*g));
  return f;
}

// ----------------------------------------------------------------- Platt --

TEST(PlattTest, ValidatesInput) {
  EXPECT_FALSE(FitPlatt({}, {}).ok());
  EXPECT_FALSE(FitPlatt({1.0}, {1, 0}).ok());
  EXPECT_FALSE(FitPlatt({1.0, 2.0}, {1, 1}).ok());  // one class
}

TEST(PlattTest, CalibratesSeparableScores) {
  // Positives have scores ~1, negatives ~0: fitted p(1) high, p(0) low.
  std::vector<double> scores;
  std::vector<int> labels;
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    bool pos = i % 2 == 0;
    scores.push_back((pos ? 1.0 : 0.0) + rng.Gaussian(0, 0.15));
    labels.push_back(pos);
  }
  auto platt = FitPlatt(scores, labels);
  ASSERT_TRUE(platt.ok());
  EXPECT_GT(platt->Apply(1.0), 0.85);
  EXPECT_LT(platt->Apply(0.0), 0.15);
  EXPECT_NEAR(platt->Apply(0.5), 0.5, 0.15);
}

TEST(PlattTest, CalibratedProbabilitiesMatchEmpiricalRates) {
  // Draw scores whose true P(y=1|s) = sigmoid(3s - 1); Platt must recover
  // approximately that mapping.
  Rng rng(2);
  std::vector<double> scores;
  std::vector<int> labels;
  for (int i = 0; i < 5000; ++i) {
    double s = rng.Uniform(-1, 2);
    double p = 1.0 / (1.0 + std::exp(-(3 * s - 1)));
    scores.push_back(s);
    labels.push_back(rng.Bernoulli(p));
  }
  auto platt = FitPlatt(scores, labels);
  ASSERT_TRUE(platt.ok());
  EXPECT_NEAR(platt->a, 3.0, 0.5);
  EXPECT_NEAR(platt->b, -1.0, 0.3);
}

TEST(PlattTest, MonotoneInScore) {
  auto platt = FitPlatt({0.0, 0.2, 0.8, 1.0}, {0, 0, 1, 1});
  ASSERT_TRUE(platt.ok());
  double prev = -1;
  for (double s = -1; s <= 2; s += 0.25) {
    double p = platt->Apply(s);
    EXPECT_GT(p, prev);
    prev = p;
  }
}

// ------------------------------------------------------------------- ENS --

TEST(EnsTest, ProbabilityStartsAtPrior) {
  auto f = MakeCoarseFixture();
  EnsOptions options;
  EnsSearcher ens(*f.embedded, *f.graph, f.embedded->TextQuery(0), options);
  // With no labels, p_i = gamma_i / 1 = clamped CLIP score.
  auto q0 = f.embedded->TextQuery(0);
  for (uint32_t i = 0; i < 20; ++i) {
    double s = linalg::Dot(f.embedded->vectors().Row(i), linalg::VecSpan(q0));
    double expected = std::clamp(s, options.prior_floor,
                                 1.0 - options.prior_floor);
    EXPECT_NEAR(ens.Probability(i), expected, 1e-6);
  }
}

TEST(EnsTest, PositiveLabelRaisesNeighborProbability) {
  auto f = MakeCoarseFixture();
  EnsSearcher ens(*f.embedded, *f.graph, f.embedded->TextQuery(0), {});
  // Pick a node and one of its graph neighbors.
  uint32_t node = 5;
  ASSERT_FALSE(f.graph->knn().neighbors[node].empty());
  uint32_t neighbor = f.graph->knn().neighbors[node][0].id;
  double before = ens.Probability(neighbor);
  ImageFeedback fb;
  fb.image_idx = node;
  fb.relevant = true;
  ens.AddFeedback(fb);
  EXPECT_GT(ens.Probability(neighbor), before);
}

TEST(EnsTest, NegativeLabelLowersNeighborProbability) {
  auto f = MakeCoarseFixture();
  EnsSearcher ens(*f.embedded, *f.graph, f.embedded->TextQuery(0), {});
  uint32_t node = 9;
  ASSERT_FALSE(f.graph->knn().neighbors[node].empty());
  uint32_t neighbor = f.graph->knn().neighbors[node][0].id;
  double before = ens.Probability(neighbor);
  ImageFeedback fb;
  fb.image_idx = node;
  fb.relevant = false;
  ens.AddFeedback(fb);
  EXPECT_LT(ens.Probability(neighbor), before);
}

TEST(EnsTest, GreedyClipUntilFirstPositive) {
  // Paper modification: before any positive, ENS ranks by the CLIP query.
  auto f = MakeCoarseFixture();
  auto q0 = f.embedded->TextQuery(0);
  EnsSearcher ens(*f.embedded, *f.graph, q0, {});
  SeeSawOptions zs_opts;
  zs_opts.update_query = false;
  SeeSawSearcher zs(*f.embedded, q0, zs_opts);
  auto ens_batch = ens.NextBatch(5);
  auto zs_batch = zs.NextBatch(5);
  ASSERT_EQ(ens_batch.size(), zs_batch.size());
  for (size_t i = 0; i < ens_batch.size(); ++i) {
    EXPECT_EQ(ens_batch[i].image_idx, zs_batch[i].image_idx);
  }
}

TEST(EnsTest, SwitchesToLookaheadAfterFirstPositive) {
  auto f = MakeCoarseFixture();
  EnsSearcher ens(*f.embedded, *f.graph, f.embedded->TextQuery(0), {});
  uint32_t pos_img = f.dataset->positives(0)[0];
  ImageFeedback fb;
  fb.image_idx = pos_img;
  fb.relevant = true;
  ens.AddFeedback(fb);
  auto batch = ens.NextBatch(3);
  EXPECT_FALSE(batch.empty());
  for (const auto& hit : batch) {
    EXPECT_NE(hit.image_idx, pos_img);  // labeled images never re-surface
  }
}

TEST(EnsTest, HorizonOneIsGreedyKnn) {
  // Table 4, t=1 column: "ENS effectively becomes a greedy kNN-model".
  auto f = MakeCoarseFixture();
  EnsOptions options;
  options.horizon = 1;
  options.shrink_horizon = false;
  EnsSearcher ens(*f.embedded, *f.graph, f.embedded->TextQuery(0), options);
  uint32_t pos_img = f.dataset->positives(0)[0];
  ImageFeedback fb;
  fb.image_idx = pos_img;
  fb.relevant = true;
  ens.AddFeedback(fb);

  auto batch = ens.NextBatch(5);
  ASSERT_GE(batch.size(), 2u);
  // Greedy means ordered by raw probability.
  for (size_t i = 1; i < batch.size(); ++i) {
    EXPECT_GE(ens.Probability(batch[i - 1].image_idx) + 1e-9,
              ens.Probability(batch[i].image_idx));
  }
}

TEST(EnsTest, CalibratedPriorsUsePlatt) {
  auto f = MakeCoarseFixture();
  EnsOptions options;
  options.calibrated = true;
  options.platt = PlattScaling{4.0, -1.0};
  EnsSearcher ens(*f.embedded, *f.graph, f.embedded->TextQuery(0), options);
  auto q0 = f.embedded->TextQuery(0);
  double s = linalg::Dot(f.embedded->vectors().Row(3), linalg::VecSpan(q0));
  EXPECT_NEAR(ens.Probability(3), 1.0 / (1.0 + std::exp(-(4.0 * s - 1.0))),
              1e-6);
}

TEST(EnsTest, NeverReturnsSeenImages) {
  auto f = MakeCoarseFixture();
  EnsSearcher ens(*f.embedded, *f.graph, f.embedded->TextQuery(0), {});
  std::set<uint32_t> seen;
  for (int round = 0; round < 10; ++round) {
    auto batch = ens.NextBatch(1);
    ASSERT_EQ(batch.size(), 1u);
    EXPECT_TRUE(seen.insert(batch[0].image_idx).second);
    ImageFeedback fb;
    fb.image_idx = batch[0].image_idx;
    fb.relevant = f.dataset->IsPositive(batch[0].image_idx, 0);
    ens.AddFeedback(fb);
  }
}

// ----------------------------------------------------------- Propagation --

TEST(PropagationSearcherTest, RefitProducesUnitQueryAndImproves) {
  auto f = MakeCoarseFixture();
  size_t concept_id = 0;
  auto q0 = f.embedded->TextQuery(concept_id);
  PropagationSearcher prop(*f.embedded, *f.graph, q0);

  // Feed it several ground-truth labels.
  const auto& positives = f.dataset->positives(concept_id);
  ASSERT_GE(positives.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    ImageFeedback fb;
    fb.image_idx = positives[i];
    fb.relevant = true;
    prop.AddFeedback(fb);
  }
  for (uint32_t img = 0; img < 5; ++img) {
    if (f.dataset->IsPositive(img, concept_id)) continue;
    ImageFeedback fb;
    fb.image_idx = img;
    fb.relevant = false;
    prop.AddFeedback(fb);
  }
  ASSERT_TRUE(prop.Refit().ok());
  EXPECT_NEAR(linalg::Norm(prop.current_query()), 1.0f, 1e-4f);

  // The refit query must separate the labeled positives from the labeled
  // negatives (it was trained on their propagated neighborhood).
  auto mean_score = [&](const linalg::VectorF& q, bool positive) {
    double total = 0;
    size_t count = 0;
    for (uint32_t img = 0; img < 5; ++img) {
      bool is_pos = f.dataset->IsPositive(img, concept_id);
      if (is_pos != positive) continue;
      total += linalg::Dot(f.embedded->vectors().Row(img), linalg::VecSpan(q));
      ++count;
    }
    for (size_t i = 0; i < 3 && positive; ++i) {
      total += linalg::Dot(f.embedded->vectors().Row(positives[i]),
                           linalg::VecSpan(q));
      ++count;
    }
    return count ? total / static_cast<double>(count) : 0.0;
  };
  EXPECT_GT(mean_score(prop.current_query(), true),
            mean_score(prop.current_query(), false));
}

TEST(PropagationSearcherTest, NoFeedbackKeepsQ0) {
  auto f = MakeCoarseFixture();
  auto q0 = f.embedded->TextQuery(1);
  PropagationSearcher prop(*f.embedded, *f.graph, q0);
  ASSERT_TRUE(prop.Refit().ok());
  EXPECT_EQ(prop.current_query(), q0);
}

// ---------------------------------------------------------- GraphContext --

TEST(GraphContextTest, BuildsSymmetricAdjacency) {
  auto f = MakeCoarseFixture();
  EXPECT_EQ(f.graph->num_nodes(), f.embedded->num_vectors());
  EXPECT_GT(f.graph->sigma(), 0.0);
  // Adjacency symmetric: probe with bilinear forms.
  Rng rng(3);
  const size_t n = f.graph->num_nodes();
  linalg::VectorF x(n), y(n);
  for (auto& v : x) v = static_cast<float>(rng.Gaussian());
  for (auto& v : y) v = static_cast<float>(rng.Gaussian());
  EXPECT_NEAR(f.graph->adjacency().Bilinear(x, y),
              f.graph->adjacency().Bilinear(y, x), 1e-2);
}

TEST(GraphContextTest, RejectsZeroK) {
  auto f = MakeCoarseFixture();
  GraphContextOptions options;
  options.k = 0;
  EXPECT_FALSE(GraphContext::Build(*f.embedded, options).ok());
}

}  // namespace
}  // namespace seesaw::core
