// Memory-audit regression gates (PR 9): the scratch arena's allocation
// contract (spans survive growth, Reset coalesces, steady state allocates
// nothing), the scan-pool lease discipline under nesting, the CacheAligned
// layout guarantees the padded hot atomics rely on, the bitwise equivalence
// of the in-place query quantizer with the vector-out one it replaced on
// the hot path, and the end-to-end gate: a warm ExactStore::TopKBatch loop
// must not grow the global scratch pool — the "no per-call allocation
// growth" claim, held as a test instead of a comment.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/aligned.h"
#include "common/arena.h"
#include "common/thread_pool.h"
#include "linalg/quantize.h"
#include "store/exact_store.h"
#include "tests/test_util.h"

namespace seesaw {
namespace {

using linalg::MatrixF;
using linalg::VecSpan;
using linalg::VectorF;
using test_util::AsSpans;
using test_util::ExpectIdenticalResults;
using test_util::RandomQueries;
using test_util::RandomSeenSet;
using test_util::RandomTable;

TEST(CacheAlignedTest, LayoutGuarantees) {
  static_assert(alignof(CacheAligned<std::atomic<bool>>) == kCacheLineSize);
  static_assert(sizeof(CacheAligned<std::atomic<size_t>>) == kCacheLineSize);
  // Adjacent padded atomics land on distinct lines — the property every
  // padded hot field (server admission counters, pool latch, prefetch
  // budget) buys with its 64 bytes.
  CacheAligned<std::atomic<size_t>> pair[2];
  auto a = reinterpret_cast<uintptr_t>(&pair[0].value);
  auto b = reinterpret_cast<uintptr_t>(&pair[1].value);
  EXPECT_GE(b - a, kCacheLineSize);
  EXPECT_EQ(a % kCacheLineSize, 0u);
}

TEST(ScratchArenaTest, SpansAreAlignedAndDisjoint) {
  ScratchArena arena;
  auto a = arena.Alloc<float>(7);
  auto b = arena.Alloc<int8_t>(3);
  auto c = arena.Alloc<uint64_t>(1);
  ASSERT_EQ(a.size(), 7u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(a.data()) % kCacheLineSize, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(b.data()) % kCacheLineSize, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(c.data()) % kCacheLineSize, 0u);
  // Writing one span never bleeds into another (disjoint, line-separated).
  std::fill(a.begin(), a.end(), 2.0f);
  std::fill(b.begin(), b.end(), int8_t{-5});
  c[0] = 77;
  for (float v : a) ASSERT_EQ(v, 2.0f);
  for (int8_t v : b) ASSERT_EQ(v, -5);
  EXPECT_EQ(c[0], 77u);
  EXPECT_TRUE(arena.Alloc<float>(0).empty());
}

TEST(ScratchArenaTest, GrowthKeepsOutstandingSpansValid) {
  // The retire-not-realloc contract: spans allocated before a growth stay
  // valid (and intact) after it.
  ScratchArena arena;
  auto early = arena.Alloc<uint32_t>(64);
  std::iota(early.begin(), early.end(), 100u);
  // Force several growths well past the initial block.
  for (int i = 0; i < 8; ++i) {
    auto big = arena.Alloc<uint32_t>(1 << 16);
    big[0] = 1;  // touch to prove it's real memory
  }
  for (size_t i = 0; i < early.size(); ++i) {
    ASSERT_EQ(early[i], 100u + i) << "early span corrupted by growth";
  }
}

TEST(ScratchArenaTest, ResetCoalescesToSteadyState) {
  ScratchArena arena;
  auto shape = [&arena] {
    (void)arena.Alloc<int8_t>(1024);
    (void)arena.Alloc<float>(4096);
    (void)arena.Alloc<float>(256);
  };
  shape();
  arena.Reset();
  shape();  // re-run the high-water shape once more post-coalesce
  arena.Reset();
  const size_t steady = arena.capacity_bytes();
  ASSERT_GT(steady, 0u);
  // Same shape, many cycles: capacity must never move again.
  for (int cycle = 0; cycle < 50; ++cycle) {
    shape();
    arena.Reset();
    ASSERT_EQ(arena.capacity_bytes(), steady) << "cycle " << cycle;
  }
}

TEST(ScratchPoolTest, LeasesReuseArenas) {
  ScratchPool pool;
  EXPECT_EQ(pool.created(), 0u);
  { auto lease = pool.Acquire(); }
  EXPECT_EQ(pool.created(), 1u);
  EXPECT_EQ(pool.outstanding(), 0u);
  // Serial acquires reuse the one arena forever.
  for (int i = 0; i < 100; ++i) {
    auto lease = pool.Acquire();
    (void)lease->Alloc<float>(128);
  }
  EXPECT_EQ(pool.created(), 1u);
}

TEST(ScratchPoolTest, NestingTakesASecondArena) {
  // The caller-runs scenario thread_local scratch would break: an outer
  // lease still live while an inner scope (a helped task on the same OS
  // thread) acquires. Each level must get its own arena.
  ScratchPool pool;
  auto outer = pool.Acquire();
  auto data = outer->Alloc<uint32_t>(32);
  std::iota(data.begin(), data.end(), 0u);
  {
    auto inner = pool.Acquire();
    EXPECT_EQ(pool.outstanding(), 2u);
    EXPECT_EQ(pool.created(), 2u);
    auto clobber = inner->Alloc<uint32_t>(32);
    std::fill(clobber.begin(), clobber.end(), 0xFFFFFFFFu);
  }
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_EQ(data[i], i) << "outer scratch clobbered by nested lease";
  }
  EXPECT_EQ(pool.outstanding(), 1u);
}

TEST(QuantizeTest, InPlaceMatchesVectorOutBitwise) {
  // QuantizeVectorInto is the hot path's allocation-free variant; the
  // satellite contract is bitwise identity with QuantizeVector.
  for (uint64_t seed : {1u, 2u, 3u}) {
    std::vector<VectorF> queries = RandomQueries(4, 37, seed);
    for (const auto& q : queries) {
      VecSpan span(q.data(), q.size());
      std::vector<int8_t> want;
      const float want_scale = linalg::QuantizeVector(span, &want);
      std::vector<int8_t> got(q.size(), int8_t{99});
      const float got_scale = linalg::QuantizeVectorInto(span, got.data());
      ASSERT_EQ(std::memcmp(&want_scale, &got_scale, sizeof(float)), 0);
      ASSERT_EQ(want.size(), got.size());
      ASSERT_EQ(std::memcmp(want.data(), got.data(), want.size()), 0);
    }
  }
}

TEST(ScanScratchTest, WarmTopKBatchDoesNotGrowThePool) {
  // The end-to-end regression gate for the TopKBatch scratch fix: after the
  // pool has warmed to its peak concurrency, repeated batched scans must
  // not create arenas. (ISSUE 9's "no per-call allocation growth": all
  // per-call scratch — quantized queries, score blocks, admission
  // thresholds — comes from leased arenas whose backing store is retained.)
  constexpr size_t kRows = 4000;
  constexpr size_t kDim = 48;
  MatrixF table = RandomTable(kRows, kDim, /*seed=*/31);
  std::vector<VectorF> queries = RandomQueries(5, kDim, /*seed=*/32);
  std::vector<VecSpan> spans = AsSpans(queries);
  store::SeenSet seen = RandomSeenSet(kRows, /*fraction=*/0.2, /*seed=*/33);

  store::ExactStoreOptions options;
  options.precision = store::ScanPrecision::kInt8;
  auto int8_store = store::ExactStore::Create(table, options);
  auto fp32_store = store::ExactStore::Create(table);
  ASSERT_TRUE(int8_store.ok() && fp32_store.ok());
  ThreadPool pool(3);

  // Serial-path gate (deterministic): without a pool a call leases exactly
  // one call-level arena plus one shard-scan arena, sequentially reused —
  // so after two warm calls the global pool must never grow again. This is
  // the strict "no per-call allocation growth" regression gate.
  (void)int8_store->TopKBatch(spans, 50, seen, /*pool=*/nullptr);
  (void)fp32_store->TopKBatch(spans, 50, seen, /*pool=*/nullptr);
  const size_t serial_warm = GlobalScanScratch().created();
  for (int it = 0; it < 30; ++it) {
    (void)int8_store->TopKBatch(spans, 50, seen, /*pool=*/nullptr);
    (void)fp32_store->TopKBatch(spans, 50, seen, /*pool=*/nullptr);
  }
  EXPECT_EQ(GlobalScanScratch().created(), serial_warm)
      << "warm serial TopKBatch calls are still creating scratch arenas";

  // Pooled-path gate (bounded): peak lease concurrency is one call-level
  // lease plus at most one shard lease per thread that can run shard tasks
  // (workers + the helping caller). *When* that peak is reached is
  // scheduling-dependent, so the pooled gate is the absolute bound — a
  // per-call regression scales with the 40 calls below and blows it.
  for (int it = 0; it < 20; ++it) {
    (void)int8_store->TopKBatch(spans, 50, seen, &pool);
    (void)fp32_store->TopKBatch(spans, 50, seen, &pool);
  }
  EXPECT_LE(GlobalScanScratch().created(), pool.num_threads() + 2)
      << "pooled TopKBatch leases exceed peak concurrency: per-call growth";
  EXPECT_EQ(GlobalScanScratch().outstanding(), 0u);

  // And the arena-backed batched path still equals the scalar path exactly
  // (results bitwise identical — the fix must be invisible in outputs).
  for (auto* store_ptr :
       {&*int8_store, &*fp32_store}) {
    auto batched = store_ptr->TopKBatch(spans, 50, seen, &pool);
    ASSERT_EQ(batched.size(), spans.size());
    for (size_t qi = 0; qi < spans.size(); ++qi) {
      ExpectIdenticalResults(batched[qi],
                             store_ptr->TopK(spans[qi], 50, seen));
    }
  }
}

}  // namespace
}  // namespace seesaw
