// Cross-module scenarios not covered by the per-module suites: multiscale
// propagation, non-exact backends inside full sessions, and service-level
// composition.
#include <gtest/gtest.h>

#include <set>

#include "core/baselines/propagation.h"
#include "core/graph_context.h"
#include "core/seesaw_searcher.h"
#include "core/service.h"
#include "data/profiles.h"
#include "eval/task_runner.h"

namespace seesaw {
namespace {

data::DatasetProfile SmallBdd() {
  auto p = data::BddLikeProfile(0.05);
  p.embedding_dim = 32;
  return p;
}

TEST(CoverageTest, PropagationWorksOverMultiscalePatches) {
  // Table 6 times the propagation variant on multiscale stores; verify the
  // generalized patch-level propagation path end to end.
  auto ds = data::Dataset::Generate(SmallBdd());
  ASSERT_TRUE(ds.ok());
  core::PreprocessOptions options;
  options.multiscale.enabled = true;
  options.build_md = false;
  auto ed = core::EmbeddedDataset::Build(*ds, options);
  ASSERT_TRUE(ed.ok());
  ASSERT_GT(ed->num_vectors(), ed->num_images());  // really multiscale

  core::GraphContextOptions gopts;
  gopts.k = 8;
  gopts.exact_threshold = 1 << 20;  // force exact on this small set
  auto graph = core::GraphContext::Build(*ed, gopts);
  ASSERT_TRUE(graph.ok());

  size_t concept_id = 0;
  core::PropagationSearcher prop(*ed, *graph, ed->TextQuery(concept_id));
  eval::TaskOptions task;
  task.target_positives = 5;
  task.max_images = 30;
  auto result = eval::RunSearchTask(prop, *ds, concept_id, task);
  EXPECT_LE(result.inspected, 30u);
  EXPECT_EQ(result.relevance.size(), result.inspected);
  EXPECT_NEAR(linalg::Norm(prop.current_query()), 1.0f, 1e-4f);
}

TEST(CoverageTest, FullSessionOnAnnoyBackend) {
  auto ds = data::Dataset::Generate(SmallBdd());
  ASSERT_TRUE(ds.ok());
  core::PreprocessOptions options;
  options.backend = core::StoreBackend::kAnnoy;
  options.annoy.num_trees = 16;
  options.md.k = 5;
  auto ed = core::EmbeddedDataset::Build(*ds, options);
  ASSERT_TRUE(ed.ok());
  core::SeeSawSearcher searcher(*ed, ed->TextQuery(0), {});
  std::set<uint32_t> seen;
  for (int round = 0; round < 5; ++round) {
    auto batch = searcher.NextBatch(8);
    for (const auto& hit : batch) {
      EXPECT_TRUE(seen.insert(hit.image_idx).second);
      core::ImageFeedback fb;
      fb.image_idx = hit.image_idx;
      fb.relevant = ds->IsPositive(hit.image_idx, 0);
      if (fb.relevant) fb.boxes = ds->ConceptBoxes(hit.image_idx, 0);
      searcher.AddFeedback(fb);
    }
    ASSERT_TRUE(searcher.Refit().ok());
  }
}

TEST(CoverageTest, FullSessionOnIvfBackend) {
  auto ds = data::Dataset::Generate(SmallBdd());
  ASSERT_TRUE(ds.ok());
  core::PreprocessOptions options;
  options.backend = core::StoreBackend::kIvf;
  options.ivf.nprobe = 8;
  options.build_md = false;
  auto ed = core::EmbeddedDataset::Build(*ds, options);
  ASSERT_TRUE(ed.ok());
  core::SeeSawSearcher searcher(*ed, ed->TextQuery(0), {});
  std::set<uint32_t> seen;
  for (int round = 0; round < 4; ++round) {
    auto batch = searcher.NextBatch(6);
    for (const auto& hit : batch) {
      EXPECT_TRUE(seen.insert(hit.image_idx).second);
      core::ImageFeedback fb;
      fb.image_idx = hit.image_idx;
      fb.relevant = false;
      searcher.AddFeedback(fb);
    }
    ASSERT_TRUE(searcher.Refit().ok());
  }
}

TEST(CoverageTest, ServiceRunsBenchmarkTaskEndToEnd) {
  // The service facade must compose with the eval harness like a raw
  // searcher does.
  auto ds = data::Dataset::Generate(SmallBdd());
  ASSERT_TRUE(ds.ok());
  core::ServiceOptions options;
  options.preprocess.md.k = 5;
  auto service = core::SeeSawService::Create(*ds, options);
  ASSERT_TRUE(service.ok());

  auto car = ds->space().FindConcept("car");
  ASSERT_TRUE(car.ok());
  auto session = service->StartSession("car");
  ASSERT_TRUE(session.ok());
  eval::TaskOptions task;
  task.target_positives = 5;
  auto result = eval::RunSearchTask(**session, *ds, *car, task);
  EXPECT_GT(result.found, 0u);
}

TEST(CoverageTest, GraphContextOverMultiscaleVectors) {
  auto ds = data::Dataset::Generate(SmallBdd());
  ASSERT_TRUE(ds.ok());
  core::PreprocessOptions options;
  options.build_md = false;
  auto ed = core::EmbeddedDataset::Build(*ds, options);
  ASSERT_TRUE(ed.ok());
  core::GraphContextOptions gopts;
  gopts.k = 6;
  gopts.exact_threshold = 128;  // force NN-descent on the patch table
  auto graph = core::GraphContext::Build(*ed, gopts);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->num_nodes(), ed->num_vectors());
  EXPECT_GT(graph->adjacency().nnz(), 0u);
}

TEST(CoverageTest, TaskRunnerHandlesConceptWithFewPositives) {
  // R = min(target, positives): a concept with 3 positives can reach AP 1
  // by finding all 3 early.
  auto profile = SmallBdd();
  profile.min_positives_per_concept = 3;
  auto ds = data::Dataset::Generate(profile);
  ASSERT_TRUE(ds.ok());
  // Find the concept with the fewest positives.
  size_t rare = 0;
  for (size_t c = 1; c < ds->space().num_concepts(); ++c) {
    if (ds->positives(c).size() < ds->positives(rare).size()) rare = c;
  }
  core::PreprocessOptions options;
  options.build_md = false;
  options.multiscale.enabled = false;
  auto ed = core::EmbeddedDataset::Build(*ds, options);
  ASSERT_TRUE(ed.ok());
  core::SeeSawSearcher searcher(*ed, ed->TextQuery(rare), {});
  eval::TaskOptions task;
  task.max_images = static_cast<size_t>(ds->num_images());
  auto result = eval::RunSearchTask(searcher, *ds, rare, task);
  // All positives found eventually -> found == min(10, positives).
  EXPECT_EQ(result.found,
            std::min<size_t>(10, ds->positives(rare).size()));
  EXPECT_GT(result.ap, 0.0);
}

TEST(CoverageTest, MultiscaleSessionPrefersPatchEvidence) {
  // A box covering only a small object should create at least one positive
  // fine-tile example whose embedding is closer to the concept than the
  // coarse tile's — the mechanism §4.3 relies on.
  auto ds = data::Dataset::Generate(SmallBdd());
  ASSERT_TRUE(ds.ok());
  core::PreprocessOptions options;
  options.build_md = false;
  auto ed = core::EmbeddedDataset::Build(*ds, options);
  ASSERT_TRUE(ed.ok());

  // Across images holding exactly one *small* instance of a concept, the
  // best overlapping fine tile usually carries a stronger concept signal
  // than the coarse tile (it can't hold for every case — e.g. a centered
  // object visible in every tile — so assert on the majority).
  size_t fine_wins = 0, cases = 0;
  for (size_t c = 0; c < ds->space().num_concepts() && cases < 40; ++c) {
    for (uint32_t img : ds->positives(c)) {
      auto boxes = ds->ConceptBoxes(img, c);
      const auto& rec = ds->image(img);
      if (boxes.size() != 1 ||
          boxes[0].Area() > 0.05f * rec.Bounds().Area()) {
        continue;
      }
      auto [begin, end] = ed->ImagePatchRange(img);
      if (end - begin < 4) continue;
      auto centroid = ds->space().concept_at(c).ModeCentroid();
      float coarse_cos =
          linalg::Cosine(ed->vectors().Row(begin), centroid);
      float best_fine = -2;
      for (uint32_t v = begin + 1; v < end; ++v) {
        if (!ed->patch(v).box.Overlaps(boxes[0])) continue;
        best_fine = std::max(
            best_fine, linalg::Cosine(ed->vectors().Row(v), centroid));
      }
      if (best_fine > -2) {
        ++cases;
        fine_wins += (best_fine > coarse_cos);
      }
      if (cases >= 40) break;
    }
  }
  ASSERT_GT(cases, 10u) << "not enough small-object cases";
  EXPECT_GT(static_cast<double>(fine_wins) / cases, 0.6)
      << fine_wins << "/" << cases;
}

}  // namespace
}  // namespace seesaw
