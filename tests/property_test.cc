// Property-style tests: randomized invariants that must hold for any input,
// complementing the per-module example-based suites.
#include <gtest/gtest.h>

#include <set>

#include "clip/concept_space.h"
#include "common/rng.h"
#include "core/baselines/rocchio.h"
#include "core/embedded_dataset.h"
#include "core/loss.h"
#include "core/seesaw_searcher.h"
#include "data/profiles.h"
#include "eval/metrics.h"
#include "optim/lbfgs.h"
#include "store/exact_store.h"

namespace seesaw {
namespace {

// ------------------------------------------------------- metric invariants --

class TaskApSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TaskApSweep, BoundsAndMonotonicity) {
  Rng rng(GetParam());
  // Random relevance sequence.
  size_t len = 1 + static_cast<size_t>(rng.UniformInt(0, 59));
  std::vector<char> rel(len);
  for (auto& r : rel) r = rng.Bernoulli(0.3);
  size_t total_relevant = 1 + static_cast<size_t>(rng.UniformInt(0, 200));

  double ap = eval::TaskAp(rel, total_relevant, 10);
  EXPECT_GE(ap, 0.0);
  EXPECT_LE(ap, 1.0);

  // Swapping a negative before a positive (moving the positive earlier)
  // never decreases AP.
  for (size_t i = 1; i < rel.size(); ++i) {
    if (rel[i] && !rel[i - 1]) {
      auto improved = rel;
      std::swap(improved[i], improved[i - 1]);
      EXPECT_GE(eval::TaskAp(improved, total_relevant, 10) + 1e-12, ap);
      break;
    }
  }

  // Appending trailing negatives never changes AP.
  auto padded = rel;
  padded.insert(padded.end(), 5, 0);
  EXPECT_DOUBLE_EQ(eval::TaskAp(padded, total_relevant, 10), ap);
}

TEST_P(TaskApSweep, FullRankingApBoundsAndPerfectCase) {
  Rng rng(GetParam() * 31 + 7);
  size_t n = 20 + static_cast<size_t>(rng.UniformInt(0, 100));
  std::vector<float> scores(n);
  std::vector<char> labels(n);
  for (size_t i = 0; i < n; ++i) {
    scores[i] = static_cast<float>(rng.Gaussian());
    labels[i] = rng.Bernoulli(0.2);
  }
  double ap = eval::FullRankingAp(scores, labels);
  EXPECT_GE(ap, 0.0);
  EXPECT_LE(ap, 1.0);

  // Scoring every positive above every negative gives AP exactly 1.
  for (size_t i = 0; i < n; ++i) {
    scores[i] = labels[i] ? 10.0f + static_cast<float>(i % 7)
                          : -10.0f - static_cast<float>(i % 5);
  }
  size_t positives = 0;
  for (char l : labels) positives += l;
  if (positives > 0) {
    EXPECT_DOUBLE_EQ(eval::FullRankingAp(scores, labels), 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TaskApSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// --------------------------------------------------------- loss invariants --

class LossPropertySweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LossPropertySweep, DataTermIsConvexAlongRandomSegments) {
  // With the scale-invariant terms off, the loss (logistic + lambda|w|^2) is
  // convex: f((a+b)/2) <= (f(a)+f(b))/2 for any a, b.
  Rng rng(GetParam() * 13 + 1);
  const size_t d = 10;
  core::LossOptions options;
  options.use_text_term = false;
  options.use_db_term = false;
  options.lambda = rng.Uniform(0.0, 5.0);
  core::AlignerLoss loss(options, clip::RandomUnitVector(rng, d), nullptr);
  for (int i = 0; i < 12; ++i) {
    loss.AddExample(clip::RandomUnitVector(rng, d),
                    rng.Bernoulli(0.5) ? 1.0f : 0.0f);
  }
  for (int trial = 0; trial < 5; ++trial) {
    optim::VectorD a(d), b(d), mid(d);
    for (size_t j = 0; j < d; ++j) {
      a[j] = rng.Gaussian(0, 2);
      b[j] = rng.Gaussian(0, 2);
      mid[j] = 0.5 * (a[j] + b[j]);
    }
    optim::VectorD g;
    double fa = loss.Evaluate(a, &g);
    double fb = loss.Evaluate(b, &g);
    double fm = loss.Evaluate(mid, &g);
    EXPECT_LE(fm, 0.5 * (fa + fb) + 1e-6);
  }
}

TEST_P(LossPropertySweep, EvaluationIsOrderInvariant) {
  // The loss is a sum over examples: insertion order must not matter.
  Rng rng(GetParam() * 17 + 3);
  const size_t d = 8;
  auto q0 = clip::RandomUnitVector(rng, d);
  std::vector<std::pair<linalg::VectorF, float>> examples;
  for (int i = 0; i < 10; ++i) {
    examples.push_back(
        {clip::RandomUnitVector(rng, d), rng.Bernoulli(0.5) ? 1.0f : 0.0f});
  }
  core::AlignerLoss forward({}, q0, nullptr);
  for (const auto& [x, y] : examples) forward.AddExample(x, y);
  core::AlignerLoss backward({}, q0, nullptr);
  for (auto it = examples.rbegin(); it != examples.rend(); ++it) {
    backward.AddExample(it->first, it->second);
  }
  optim::VectorD w(q0.begin(), q0.end());
  optim::VectorD g1, g2;
  EXPECT_NEAR(forward.Evaluate(w, &g1), backward.Evaluate(w, &g2), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LossPropertySweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

// ------------------------------------------------------ optimizer property --

class LbfgsNeverWorsens : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LbfgsNeverWorsens, FinalValueAtMostInitial) {
  // On the real aligner loss (non-convex because of the cosine terms),
  // L-BFGS must still never end above its starting value.
  Rng rng(GetParam() * 7 + 11);
  const size_t d = 16;
  auto q0 = clip::RandomUnitVector(rng, d);
  core::AlignerLoss loss({}, q0, nullptr);
  for (int i = 0; i < 20; ++i) {
    loss.AddExample(clip::RandomUnitVector(rng, d),
                    rng.Bernoulli(0.4) ? 1.0f : 0.0f);
  }
  optim::VectorD x0(d);
  for (auto& v : x0) v = rng.Gaussian(0, 1);
  optim::VectorD g;
  double f0 = loss.Evaluate(x0, &g);
  optim::Lbfgs opt;
  auto result = opt.Minimize(loss.AsObjective(), x0);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->f, f0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LbfgsNeverWorsens,
                         ::testing::Values(1, 2, 3, 4, 5));

// ----------------------------------------------------------- store property --

TEST(StoreProperty, TopKMatchesBruteForceMaximum) {
  Rng rng(99);
  const size_t n = 500, d = 12;
  linalg::MatrixF table(n, d);
  for (size_t i = 0; i < n; ++i) {
    auto row = table.MutableRow(i);
    for (auto& v : row) v = static_cast<float>(rng.Gaussian());
    linalg::NormalizeInPlace(row);
  }
  auto store = store::ExactStore::Create(std::move(table));
  ASSERT_TRUE(store.ok());
  for (int t = 0; t < 10; ++t) {
    auto q = clip::RandomUnitVector(rng, d);
    auto hits = store->TopK(q, 1);
    ASSERT_EQ(hits.size(), 1u);
    // Brute force maximum.
    float best = -2.0f;
    for (uint32_t i = 0; i < n; ++i) {
      best = std::max(best, linalg::Dot(store->GetVector(i), q));
    }
    EXPECT_FLOAT_EQ(hits[0].score, best);
  }
}

// --------------------------------------------------------- session fuzzing --

struct FuzzFixture {
  std::unique_ptr<data::Dataset> dataset;
  std::unique_ptr<core::EmbeddedDataset> embedded;
};

FuzzFixture MakeFuzzFixture(uint64_t seed) {
  auto profile = data::CocoLikeProfile(0.04);
  profile.embedding_dim = 32;
  profile.seed = seed;
  auto ds = data::Dataset::Generate(profile);
  EXPECT_TRUE(ds.ok());
  FuzzFixture f;
  f.dataset = std::make_unique<data::Dataset>(std::move(*ds));
  core::PreprocessOptions options;
  options.build_md = true;
  options.md.k = 5;
  options.md.sample_size = 500;
  auto ed = core::EmbeddedDataset::Build(*f.dataset, options);
  EXPECT_TRUE(ed.ok());
  f.embedded = std::make_unique<core::EmbeddedDataset>(std::move(*ed));
  return f;
}

class SessionFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SessionFuzz, RandomFeedbackNeverBreaksInvariants) {
  // Feed arbitrary (even adversarial) feedback: random relevance unrelated
  // to ground truth, random boxes, random batch sizes. The session must keep
  // its invariants: no repeated images, sorted scores, unit query, OK refit.
  FuzzFixture f = MakeFuzzFixture(1000 + GetParam());
  Rng rng(GetParam());
  size_t concept_id = static_cast<size_t>(
      rng.UniformInt(0, static_cast<int64_t>(
                            f.dataset->space().num_concepts()) - 1));
  core::SeeSawSearcher searcher(*f.embedded,
                                f.embedded->TextQuery(concept_id), {});
  std::set<uint32_t> seen;
  for (int round = 0; round < 8; ++round) {
    size_t want = 1 + static_cast<size_t>(rng.UniformInt(0, 12));
    auto batch = searcher.NextBatch(want);
    for (size_t i = 1; i < batch.size(); ++i) {
      EXPECT_GE(batch[i - 1].score, batch[i].score);
    }
    for (const auto& hit : batch) {
      EXPECT_TRUE(seen.insert(hit.image_idx).second)
          << "image " << hit.image_idx << " repeated";
      core::ImageFeedback fb;
      fb.image_idx = hit.image_idx;
      fb.relevant = rng.Bernoulli(0.4);
      if (fb.relevant && rng.Bernoulli(0.7)) {
        const auto& img = f.dataset->image(hit.image_idx);
        float x0 = static_cast<float>(rng.Uniform(0, img.width * 0.8));
        float y0 = static_cast<float>(rng.Uniform(0, img.height * 0.8));
        fb.boxes.push_back(data::Box{
            x0, y0, x0 + static_cast<float>(rng.Uniform(5, img.width * 0.3)),
            y0 + static_cast<float>(rng.Uniform(5, img.height * 0.3))});
      }
      searcher.AddFeedback(fb);
    }
    ASSERT_TRUE(searcher.Refit().ok());
    EXPECT_NEAR(linalg::Norm(searcher.current_query()), 1.0f, 1e-4f);
  }
}

TEST_P(SessionFuzz, RocchioSurvivesRandomFeedback) {
  FuzzFixture f = MakeFuzzFixture(2000 + GetParam());
  Rng rng(GetParam() * 3);
  core::RocchioSearcher searcher(*f.embedded, f.embedded->TextQuery(0));
  std::set<uint32_t> seen;
  for (int round = 0; round < 6; ++round) {
    auto batch = searcher.NextBatch(7);
    for (const auto& hit : batch) {
      EXPECT_TRUE(seen.insert(hit.image_idx).second);
      core::ImageFeedback fb;
      fb.image_idx = hit.image_idx;
      fb.relevant = rng.Bernoulli(0.5);
      searcher.AddFeedback(fb);
    }
    ASSERT_TRUE(searcher.Refit().ok());
    EXPECT_NEAR(linalg::Norm(searcher.current_query()), 1.0f, 1e-4f);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SessionFuzz, ::testing::Values(1, 2, 3, 4));

// ------------------------------------------------------ dataset invariants --

class DatasetPropertySweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DatasetPropertySweep, GeneratorInvariantsHoldForRandomProfiles) {
  Rng rng(GetParam() * 41);
  data::DatasetProfile p;
  p.name = "fuzz";
  p.num_images = 50 + static_cast<size_t>(rng.UniformInt(0, 150));
  p.num_concepts = 4 + static_cast<size_t>(rng.UniformInt(0, 20));
  p.embedding_dim = 16 + static_cast<size_t>(rng.UniformInt(0, 48));
  p.mean_objects_per_image = rng.Uniform(0.5, 6.0);
  p.zipf_exponent = rng.Uniform(0.0, 2.0);
  p.object_scale_min = rng.Uniform(0.02, 0.2);
  p.object_scale_max = p.object_scale_min + rng.Uniform(0.1, 0.5);
  p.deficit_tail_prob = rng.Uniform(0.0, 0.6);
  p.multimode_prob = rng.Uniform(0.0, 1.0);
  p.seed = GetParam();

  auto ds = data::Dataset::Generate(p);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->num_images(), p.num_images);
  for (size_t c = 0; c < p.num_concepts; ++c) {
    EXPECT_GE(ds->positives(c).size(), p.min_positives_per_concept);
    // positives() lists must be sorted & unique.
    const auto& pos = ds->positives(c);
    for (size_t i = 1; i < pos.size(); ++i) EXPECT_LT(pos[i - 1], pos[i]);
  }
  for (const auto& img : ds->images()) {
    for (const auto& obj : img.objects) {
      EXPECT_GE(obj.concept_id, 0);
      EXPECT_LT(static_cast<size_t>(obj.concept_id), p.num_concepts);
      EXPECT_FALSE(obj.box.Empty());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DatasetPropertySweep,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace seesaw
