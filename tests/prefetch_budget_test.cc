// PrefetchBudget under contention: the shared in-flight cap must never
// over-admit past max, never leak slots, and treat a negative balance
// (Release without a matching TryAcquire) as a programming error worth an
// abort — an unmatched Release used to wrap the unsigned counter to
// SIZE_MAX, which read as "budget exhausted" forever and silently disabled
// speculation for every session of the manager.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>

#include "common/thread_pool.h"
#include "core/searcher_base.h"

namespace seesaw::core {
namespace {

TEST(PrefetchBudgetDeathTest, ReleaseWithoutAcquireAborts) {
  PrefetchBudget budget(/*max_in_flight=*/2);
  EXPECT_DEATH(budget.Release(), "without a matching TryAcquire");
}

TEST(PrefetchBudgetDeathTest, DoubleReleaseAborts) {
  PrefetchBudget budget(/*max_in_flight=*/2);
  ASSERT_TRUE(budget.TryAcquire());
  budget.Release();  // balanced — fine
  EXPECT_DEATH(budget.Release(), "without a matching TryAcquire");
}

TEST(PrefetchBudgetTest, CapAdmitsExactlyMax) {
  PrefetchBudget budget(/*max_in_flight=*/2);
  EXPECT_TRUE(budget.TryAcquire());
  EXPECT_TRUE(budget.TryAcquire());
  EXPECT_FALSE(budget.TryAcquire());  // exhausted
  EXPECT_EQ(budget.in_flight(), 2u);
  budget.Release();
  EXPECT_TRUE(budget.TryAcquire());  // a freed slot is reusable
  budget.Release();
  budget.Release();
  EXPECT_EQ(budget.in_flight(), 0u);
}

TEST(PrefetchBudgetTest, ZeroMeansUnlimited) {
  PrefetchBudget budget(/*max_in_flight=*/0);
  for (size_t i = 0; i < 100; ++i) EXPECT_TRUE(budget.TryAcquire());
  EXPECT_EQ(budget.in_flight(), 100u);
  for (size_t i = 0; i < 100; ++i) budget.Release();
  EXPECT_EQ(budget.in_flight(), 0u);
}

// Hammer one budget from every pool worker: admissions must never exceed the
// cap at any instant, every admission must be released, and the counter must
// come back to zero. Run under the TSan leg (SEESAW_CONCURRENCY_TESTS) this
// also proves the relaxed-CAS accounting is race-free.
TEST(PrefetchBudgetTest, ConcurrentAcquireReleaseStaysWithinCap) {
  constexpr size_t kMax = 4;
  constexpr size_t kWorkers = 16;
  constexpr size_t kItersPerWorker = 20000;

  PrefetchBudget budget(kMax);
  ThreadPool pool(8);
  std::atomic<size_t> admitted{0};
  std::atomic<size_t> over_cap{0};

  pool.ParallelFor(kWorkers, [&](size_t begin, size_t end) {
    for (size_t w = begin; w < end; ++w) {
      for (size_t i = 0; i < kItersPerWorker; ++i) {
        if (!budget.TryAcquire()) continue;
        admitted.fetch_add(1, std::memory_order_relaxed);
        // While holding a slot, the observable in-flight count can never
        // exceed the cap (TryAcquire's CAS refuses at max).
        if (budget.in_flight() > kMax) {
          over_cap.fetch_add(1, std::memory_order_relaxed);
        }
        budget.Release();
      }
    }
  });

  EXPECT_EQ(over_cap.load(), 0u);
  EXPECT_EQ(budget.in_flight(), 0u);
  // With 8 threads fighting for 4 slots, admissions happen constantly; if
  // this is ever zero the cap is stuck (the pre-fix symptom of a wrapped
  // counter was exactly "every TryAcquire refused forever").
  EXPECT_GT(admitted.load(), 0u);
}

}  // namespace
}  // namespace seesaw::core
