#include "store/seen_set.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "store/exact_store.h"
#include "tests/test_util.h"

namespace seesaw::store {
namespace {

using linalg::MatrixF;
using linalg::VectorF;
using test_util::RandomTable;

TEST(SeenSetTest, DefaultIsEmptyWithZeroCapacity) {
  SeenSet seen;
  EXPECT_EQ(seen.capacity(), 0u);
  EXPECT_EQ(seen.count(), 0u);
  EXPECT_TRUE(seen.empty());
  // Any id past capacity is "not seen" — never UB.
  EXPECT_FALSE(seen.Test(0));
  EXPECT_FALSE(seen.Test(12345));
}

TEST(SeenSetTest, SetTestClearRoundTrip) {
  SeenSet seen(130);  // straddles the 64-bit word boundary twice
  EXPECT_EQ(seen.capacity(), 130u);
  for (uint32_t id : {0u, 63u, 64u, 127u, 128u, 129u}) {
    EXPECT_FALSE(seen.Test(id));
    seen.Set(id);
    EXPECT_TRUE(seen.Test(id));
  }
  EXPECT_EQ(seen.count(), 6u);

  // Setting an already-set bit is idempotent.
  seen.Set(64);
  EXPECT_EQ(seen.count(), 6u);

  seen.Reset(64);
  EXPECT_FALSE(seen.Test(64));
  EXPECT_EQ(seen.count(), 5u);
  seen.Reset(64);  // idempotent too
  EXPECT_EQ(seen.count(), 5u);

  seen.Clear();
  EXPECT_EQ(seen.count(), 0u);
  EXPECT_EQ(seen.capacity(), 130u);
  for (uint32_t id = 0; id < 130; ++id) EXPECT_FALSE(seen.Test(id));
}

TEST(SeenSetTest, ResizePreservesBitsAndCount) {
  SeenSet seen(10);
  seen.Set(3);
  seen.Set(9);
  seen.Resize(100);
  EXPECT_TRUE(seen.Test(3));
  EXPECT_TRUE(seen.Test(9));
  EXPECT_FALSE(seen.Test(50));
  EXPECT_EQ(seen.count(), 2u);

  // Shrinking drops out-of-range bits from the count.
  seen.Resize(4);
  EXPECT_TRUE(seen.Test(3));
  EXPECT_FALSE(seen.Test(9));
  EXPECT_EQ(seen.count(), 1u);
}

TEST(SeenSetTest, UnseenIdsPastCapacityAreExcludedFromNothing) {
  SeenSet seen(8);
  seen.Set(7);
  EXPECT_TRUE(seen.Test(7));
  EXPECT_FALSE(seen.Test(8));
  EXPECT_FALSE(seen.Test(1u << 30));
}

TEST(SeenSetTest, SliceMatchesPerIdTestAtEveryOffset) {
  // The slicing contract ShardedStore relies on: out.Test(i) ==
  // in.Test(begin + i) for every alignment of begin/end against the 64-bit
  // word grid, with counts maintained.
  const size_t capacity = 200;
  SeenSet seen(capacity);
  Rng rng(77);
  for (uint32_t id = 0; id < capacity; ++id) {
    if (rng.Uniform() < 0.4) seen.Set(id);
  }
  const std::pair<uint32_t, uint32_t> ranges[] = {
      {0, 64},  {0, 200},  {1, 65},   {63, 64},  {63, 130},
      {64, 64}, {64, 128}, {65, 199}, {100, 137}, {199, 200}};
  for (auto [begin, end] : ranges) {
    SeenSet local = seen.Slice(begin, end);
    EXPECT_EQ(local.capacity(), static_cast<size_t>(end - begin));
    size_t want_count = 0;
    for (uint32_t i = 0; i < end - begin; ++i) {
      EXPECT_EQ(local.Test(i), seen.Test(begin + i))
          << "begin=" << begin << " end=" << end << " i=" << i;
      want_count += seen.Test(begin + i) ? 1 : 0;
    }
    EXPECT_EQ(local.count(), want_count);
  }
}

TEST(SeenSetTest, SlicePastCapacityReadsUnseen) {
  SeenSet seen(70);
  seen.Set(69);
  // The tail beyond capacity is unseen, exactly like Test() reports it.
  SeenSet local = seen.Slice(64, 140);
  EXPECT_EQ(local.capacity(), 76u);
  EXPECT_TRUE(local.Test(5));  // id 69
  EXPECT_EQ(local.count(), 1u);
  for (uint32_t i = 6; i < 76; ++i) EXPECT_FALSE(local.Test(i));

  // Entirely past capacity, and the empty "no exclusions" set: all unseen.
  EXPECT_EQ(seen.Slice(70, 170).count(), 0u);
  EXPECT_EQ(EmptySeenSet().Slice(0, 100).count(), 0u);
  // Degenerate empty range.
  EXPECT_EQ(seen.Slice(10, 10).capacity(), 0u);
}

TEST(SeenSetTest, SliceEqualsManuallyBuiltLocalSet) {
  // operator== must hold against a set built bit by bit (guards the
  // stray-tail-bits invariant).
  SeenSet seen(130);
  for (uint32_t id : {0u, 63u, 64u, 90u, 129u}) seen.Set(id);
  SeenSet want(60);
  for (uint32_t i = 0; i < 60; ++i) {
    if (seen.Test(60 + i)) want.Set(i);
  }
  EXPECT_TRUE(seen.Slice(60, 120) == want);
}

TEST(SeenSetTest, ExclusionHonoredByStoreScan) {
  auto store = ExactStore::Create(RandomTable(64, 8, 5));
  ASSERT_TRUE(store.ok());
  VectorF q(store->GetVector(11).begin(), store->GetVector(11).end());
  ASSERT_EQ(store->TopK(q, 1)[0].id, 11u);

  SeenSet seen(64);
  seen.Set(11);
  for (const auto& h : store->TopK(q, 64, seen)) EXPECT_NE(h.id, 11u);

  // Clearing restores the excluded id.
  seen.Clear();
  EXPECT_EQ(store->TopK(q, 1, seen)[0].id, 11u);
}

TEST(SeenSetTest, AppendUnseenRunsMatchesPerIdEnumeration) {
  // The run-length compacted enumeration must produce exactly the blocks a
  // per-id skip-test loop produces: maximal unseen runs chopped at max_run.
  Rng rng(17);
  for (size_t capacity : {0u, 1u, 63u, 64u, 65u, 200u, 1000u}) {
    for (double fraction : {0.0, 0.1, 0.5, 0.9, 1.0}) {
      SeenSet seen = test_util::RandomSeenSet(capacity, fraction, 18);
      for (uint32_t max_run : {1u, 7u, 32u, 100u}) {
        // Windows inside, straddling, and past capacity (ids past capacity
        // read unseen, same as Test()).
        const uint32_t window_end = static_cast<uint32_t>(capacity) + 70;
        for (uint32_t begin :
             {uint32_t{0}, static_cast<uint32_t>(capacity / 3),
              static_cast<uint32_t>(capacity)}) {
          std::vector<std::pair<uint32_t, uint32_t>> got;
          seen.AppendUnseenRuns(begin, window_end, max_run, &got);
          // Reference: the skip-test loop from the batched exact scan.
          std::vector<std::pair<uint32_t, uint32_t>> want;
          uint32_t r = begin;
          while (r < window_end) {
            if (seen.Test(r)) {
              ++r;
              continue;
            }
            uint32_t run_end = r + 1;
            while (run_end < window_end && run_end - r < max_run &&
                   !seen.Test(run_end)) {
              ++run_end;
            }
            want.emplace_back(r, run_end);
            r = run_end;
          }
          ASSERT_EQ(got, want) << "capacity=" << capacity
                               << " fraction=" << fraction
                               << " max_run=" << max_run << " begin=" << begin;
        }
      }
    }
  }
  // Appends (does not clear) so shards can reuse one buffer.
  SeenSet empty(8);
  std::vector<std::pair<uint32_t, uint32_t>> runs = {{99, 100}};
  empty.AppendUnseenRuns(0, 8, 32, &runs);
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[1], (std::pair<uint32_t, uint32_t>{0, 8}));
}

TEST(SeenSetTest, FewerThanKWhenExclusionsShrinkTheStore) {
  auto store = ExactStore::Create(RandomTable(10, 4, 6));
  ASSERT_TRUE(store.ok());
  SeenSet seen(10);
  for (uint32_t id = 0; id < 7; ++id) seen.Set(id);
  auto hits = store->TopK(VectorF(4, 0.5f), 5, seen);
  EXPECT_EQ(hits.size(), 3u);  // only ids 7, 8, 9 remain
  for (const auto& h : hits) EXPECT_GE(h.id, 7u);
}

}  // namespace
}  // namespace seesaw::store
