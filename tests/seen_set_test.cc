#include "store/seen_set.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "store/exact_store.h"

namespace seesaw::store {
namespace {

using linalg::MatrixF;
using linalg::VectorF;

TEST(SeenSetTest, DefaultIsEmptyWithZeroCapacity) {
  SeenSet seen;
  EXPECT_EQ(seen.capacity(), 0u);
  EXPECT_EQ(seen.count(), 0u);
  EXPECT_TRUE(seen.empty());
  // Any id past capacity is "not seen" — never UB.
  EXPECT_FALSE(seen.Test(0));
  EXPECT_FALSE(seen.Test(12345));
}

TEST(SeenSetTest, SetTestClearRoundTrip) {
  SeenSet seen(130);  // straddles the 64-bit word boundary twice
  EXPECT_EQ(seen.capacity(), 130u);
  for (uint32_t id : {0u, 63u, 64u, 127u, 128u, 129u}) {
    EXPECT_FALSE(seen.Test(id));
    seen.Set(id);
    EXPECT_TRUE(seen.Test(id));
  }
  EXPECT_EQ(seen.count(), 6u);

  // Setting an already-set bit is idempotent.
  seen.Set(64);
  EXPECT_EQ(seen.count(), 6u);

  seen.Reset(64);
  EXPECT_FALSE(seen.Test(64));
  EXPECT_EQ(seen.count(), 5u);
  seen.Reset(64);  // idempotent too
  EXPECT_EQ(seen.count(), 5u);

  seen.Clear();
  EXPECT_EQ(seen.count(), 0u);
  EXPECT_EQ(seen.capacity(), 130u);
  for (uint32_t id = 0; id < 130; ++id) EXPECT_FALSE(seen.Test(id));
}

TEST(SeenSetTest, ResizePreservesBitsAndCount) {
  SeenSet seen(10);
  seen.Set(3);
  seen.Set(9);
  seen.Resize(100);
  EXPECT_TRUE(seen.Test(3));
  EXPECT_TRUE(seen.Test(9));
  EXPECT_FALSE(seen.Test(50));
  EXPECT_EQ(seen.count(), 2u);

  // Shrinking drops out-of-range bits from the count.
  seen.Resize(4);
  EXPECT_TRUE(seen.Test(3));
  EXPECT_FALSE(seen.Test(9));
  EXPECT_EQ(seen.count(), 1u);
}

TEST(SeenSetTest, UnseenIdsPastCapacityAreExcludedFromNothing) {
  SeenSet seen(8);
  seen.Set(7);
  EXPECT_TRUE(seen.Test(7));
  EXPECT_FALSE(seen.Test(8));
  EXPECT_FALSE(seen.Test(1u << 30));
}

/// Random unit-vector table, like an embedding table.
MatrixF RandomTable(size_t n, size_t d, uint64_t seed) {
  Rng rng(seed);
  MatrixF table(n, d);
  for (size_t i = 0; i < n; ++i) {
    auto row = table.MutableRow(i);
    for (size_t j = 0; j < d; ++j) row[j] = static_cast<float>(rng.Gaussian());
    linalg::NormalizeInPlace(row);
  }
  return table;
}

TEST(SeenSetTest, ExclusionHonoredByStoreScan) {
  auto store = ExactStore::Create(RandomTable(64, 8, 5));
  ASSERT_TRUE(store.ok());
  VectorF q(store->GetVector(11).begin(), store->GetVector(11).end());
  ASSERT_EQ(store->TopK(q, 1)[0].id, 11u);

  SeenSet seen(64);
  seen.Set(11);
  for (const auto& h : store->TopK(q, 64, seen)) EXPECT_NE(h.id, 11u);

  // Clearing restores the excluded id.
  seen.Clear();
  EXPECT_EQ(store->TopK(q, 1, seen)[0].id, 11u);
}

TEST(SeenSetTest, FewerThanKWhenExclusionsShrinkTheStore) {
  auto store = ExactStore::Create(RandomTable(10, 4, 6));
  ASSERT_TRUE(store.ok());
  SeenSet seen(10);
  for (uint32_t id = 0; id < 7; ++id) seen.Set(id);
  auto hits = store->TopK(VectorF(4, 0.5f), 5, seen);
  EXPECT_EQ(hits.size(), 3u);  // only ids 7, 8, 9 remain
  for (const auto& h : hits) EXPECT_GE(h.id, 7u);
}

}  // namespace
}  // namespace seesaw::store
