// Wire-protocol codec tests: round trips for every message type, header
// framing, and fuzz-style robustness — truncations, bit flips, and random
// garbage must fail decode cleanly (return false), never crash or read out
// of bounds. The codecs are pure bytes<->structs (no sockets), so this
// suite runs everywhere, including under ASan where an overread would trip.
#include "net/wire.h"

#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <string>
#include <vector>

namespace seesaw::net {
namespace {

CreateSessionRequest SampleCreate() {
  CreateSessionRequest req;
  req.user = "alice";
  req.by_vector = false;
  req.text_query = "wheelchair";
  return req;
}

TEST(WireHeaderTest, RoundTrip) {
  std::string frame = EncodeFrame(FrameType::kNextBatch, 42, "abc");
  ASSERT_EQ(frame.size(), kHeaderBytes + 3);
  FrameHeader header;
  ASSERT_TRUE(DecodeHeader(frame, &header));
  EXPECT_EQ(header.version, kProtocolVersion);
  EXPECT_EQ(header.type, FrameType::kNextBatch);
  EXPECT_EQ(header.request_id, 42u);
  EXPECT_EQ(header.payload_len, 3u);
}

TEST(WireHeaderTest, ShortBufferFails) {
  std::string frame = EncodeFrame(FrameType::kPing, 1, "");
  FrameHeader header;
  for (size_t len = 0; len < kHeaderBytes; ++len) {
    EXPECT_FALSE(DecodeHeader(std::string_view(frame).substr(0, len), &header))
        << "accepted a " << len << "-byte header";
  }
}

TEST(WireHeaderTest, BadMagicFails) {
  std::string frame = EncodeFrame(FrameType::kPing, 1, "");
  frame[0] ^= 0x5A;
  FrameHeader header;
  EXPECT_FALSE(DecodeHeader(frame, &header));
}

TEST(WireHeaderTest, ReplyBitConvention) {
  EXPECT_EQ(static_cast<uint16_t>(FrameType::kNextBatchReply),
            static_cast<uint16_t>(FrameType::kNextBatch) | kReplyBit);
  EXPECT_EQ(static_cast<uint16_t>(FrameType::kCreateSessionReply),
            static_cast<uint16_t>(FrameType::kCreateSession) | kReplyBit);
}

TEST(WireCodecTest, CreateSessionTextRoundTrip) {
  CreateSessionRequest req = SampleCreate();
  CreateSessionRequest got;
  ASSERT_TRUE(DecodeCreateSessionRequest(EncodeCreateSessionRequest(req),
                                         &got));
  EXPECT_EQ(got.user, "alice");
  EXPECT_FALSE(got.by_vector);
  EXPECT_EQ(got.text_query, "wheelchair");
  EXPECT_TRUE(got.query_vector.empty());
}

TEST(WireCodecTest, CreateSessionVectorRoundTripBitwise) {
  CreateSessionRequest req;
  req.by_vector = true;
  req.query_vector = {0.25f, -1.5f, 3.14159f, 0.0f, -0.0f};
  CreateSessionRequest got;
  ASSERT_TRUE(DecodeCreateSessionRequest(EncodeCreateSessionRequest(req),
                                         &got));
  ASSERT_EQ(got.query_vector.size(), req.query_vector.size());
  // Floats cross the wire bitwise — scores and queries survive exactly.
  for (size_t i = 0; i < req.query_vector.size(); ++i) {
    EXPECT_EQ(std::memcmp(&got.query_vector[i], &req.query_vector[i],
                          sizeof(float)),
              0);
  }
}

TEST(WireCodecTest, NextBatchRoundTrip) {
  NextBatchRequest req;
  req.session_id = 0xDEADBEEFCAFEF00Dull;
  req.n = 10;
  NextBatchRequest got;
  ASSERT_TRUE(DecodeNextBatchRequest(EncodeNextBatchRequest(req), &got));
  EXPECT_EQ(got.session_id, req.session_id);
  EXPECT_EQ(got.n, 10u);

  NextBatchReply reply;
  reply.batch = {{7, 0.5f}, {11, -0.25f}, {0, 1.0f}};
  NextBatchReply reply_got;
  ASSERT_TRUE(DecodeNextBatchReply(EncodeNextBatchReply(reply), &reply_got));
  ASSERT_EQ(reply_got.batch.size(), 3u);
  for (size_t i = 0; i < reply.batch.size(); ++i) {
    EXPECT_EQ(reply_got.batch[i].image_idx, reply.batch[i].image_idx);
    EXPECT_EQ(std::memcmp(&reply_got.batch[i].score, &reply.batch[i].score,
                          sizeof(float)),
              0);
  }
}

TEST(WireCodecTest, AddFeedbackRoundTrip) {
  AddFeedbackRequest req;
  req.session_id = 3;
  req.feedback.image_idx = 99;
  req.feedback.relevant = true;
  req.feedback.boxes = {{0.1f, 0.2f, 0.8f, 0.9f}, {0.0f, 0.0f, 0.5f, 0.5f}};
  AddFeedbackRequest got;
  ASSERT_TRUE(DecodeAddFeedbackRequest(EncodeAddFeedbackRequest(req), &got));
  EXPECT_EQ(got.session_id, 3u);
  EXPECT_EQ(got.feedback.image_idx, 99u);
  EXPECT_TRUE(got.feedback.relevant);
  ASSERT_EQ(got.feedback.boxes.size(), 2u);
  EXPECT_FLOAT_EQ(got.feedback.boxes[0].x0, 0.1f);
  EXPECT_FLOAT_EQ(got.feedback.boxes[1].y1, 0.5f);
}

TEST(WireCodecTest, SessionAndErrorRoundTrip) {
  SessionRequest req;
  req.session_id = 17;
  SessionRequest got;
  ASSERT_TRUE(DecodeSessionRequest(EncodeSessionRequest(req), &got));
  EXPECT_EQ(got.session_id, 17u);

  ErrorReply error;
  error.code = WireError::kRetryLater;
  error.message = "request queue full";
  ErrorReply error_got;
  ASSERT_TRUE(DecodeErrorReply(EncodeErrorReply(error), &error_got));
  EXPECT_EQ(error_got.code, WireError::kRetryLater);
  EXPECT_EQ(error_got.message, "request queue full");
}

TEST(WireCodecTest, ErrorNamesAndRetriability) {
  EXPECT_EQ(WireErrorName(WireError::kRetryLater), "RETRY_LATER");
  EXPECT_EQ(WireErrorName(WireError::kQuotaExceeded), "QUOTA_EXCEEDED");
  EXPECT_TRUE(IsRetriable(WireError::kRetryLater));
  EXPECT_FALSE(IsRetriable(WireError::kQuotaExceeded));
  EXPECT_FALSE(IsRetriable(WireError::kMalformedFrame));
}

TEST(WireCodecTest, TrailingGarbageRejected) {
  // Decoders require exact consumption: framing bugs must not pass silently.
  std::string payload = EncodeSessionRequest({17});
  payload.push_back('\0');
  SessionRequest got;
  EXPECT_FALSE(DecodeSessionRequest(payload, &got));
}

TEST(WireCodecTest, EveryTruncationFailsCleanly) {
  // Each payload is checked against its OWN decoder: a truncated prefix of
  // one message type may legally decode as a shorter message type (the
  // header's type field is what disambiguates on the wire), but it must
  // never decode as the type it was truncated from.
  struct Case {
    std::string payload;
    bool (*decode)(std::string_view);
  };
  std::vector<Case> cases = {
      {EncodeCreateSessionRequest(SampleCreate()),
       [](std::string_view p) {
         CreateSessionRequest m;
         return DecodeCreateSessionRequest(p, &m);
       }},
      {EncodeNextBatchRequest({5, 10}),
       [](std::string_view p) {
         NextBatchRequest m;
         return DecodeNextBatchRequest(p, &m);
       }},
      {EncodeNextBatchReply({{{1, 0.5f}, {2, 0.25f}}}),
       [](std::string_view p) {
         NextBatchReply m;
         return DecodeNextBatchReply(p, &m);
       }},
      {EncodeAddFeedbackRequest({4, {7, true, {{0.1f, 0.1f, 0.9f, 0.9f}}}}),
       [](std::string_view p) {
         AddFeedbackRequest m;
         return DecodeAddFeedbackRequest(p, &m);
       }},
      {EncodeSessionRequest({9}),
       [](std::string_view p) {
         SessionRequest m;
         return DecodeSessionRequest(p, &m);
       }},
      {EncodeErrorReply({WireError::kInternal, "boom"}),
       [](std::string_view p) {
         ErrorReply m;
         return DecodeErrorReply(p, &m);
       }},
  };
  for (const Case& c : cases) {
    for (size_t len = 0; len < c.payload.size(); ++len) {
      EXPECT_FALSE(c.decode(std::string_view(c.payload.data(), len)))
          << "decoder accepted a " << len << "-byte truncation of a "
          << c.payload.size() << "-byte payload";
    }
  }
}

// Seeded pseudo-fuzz: random garbage and randomly corrupted valid payloads
// through every decoder. The only acceptable outcomes are clean false or a
// successfully decoded struct — never a crash, hang, or overread (ASan leg
// checks the latter).
TEST(WireFuzzTest, RandomGarbageNeverCrashes) {
  std::mt19937 rng(1234);
  std::uniform_int_distribution<int> byte(0, 255);
  std::uniform_int_distribution<size_t> len_dist(0, 512);
  for (int iter = 0; iter < 2000; ++iter) {
    std::string bytes(len_dist(rng), '\0');
    for (char& c : bytes) c = static_cast<char>(byte(rng));
    CreateSessionRequest a;
    NextBatchRequest b;
    NextBatchReply c;
    AddFeedbackRequest d;
    SessionRequest e;
    ErrorReply f;
    FrameHeader h;
    DecodeCreateSessionRequest(bytes, &a);
    DecodeNextBatchRequest(bytes, &b);
    DecodeNextBatchReply(bytes, &c);
    DecodeAddFeedbackRequest(bytes, &d);
    DecodeSessionRequest(bytes, &e);
    DecodeErrorReply(bytes, &f);
    DecodeHeader(bytes, &h);
  }
}

TEST(WireFuzzTest, CorruptedValidPayloadsNeverCrash) {
  std::mt19937 rng(5678);
  std::uniform_int_distribution<int> byte(0, 255);
  std::vector<std::string> seeds = {
      EncodeCreateSessionRequest(SampleCreate()),
      EncodeNextBatchReply({{{1, 0.5f}, {2, 0.25f}, {3, 0.125f}}}),
      EncodeAddFeedbackRequest(
          {4, {7, true, {{0.1f, 0.1f, 0.9f, 0.9f}}}}),
      EncodeErrorReply({WireError::kRetryLater, "shed"}),
  };
  for (int iter = 0; iter < 2000; ++iter) {
    std::string bytes = seeds[iter % seeds.size()];
    std::uniform_int_distribution<size_t> pos(0, bytes.size() - 1);
    // Corrupt 1-4 bytes; length-prefix corruption is the interesting case
    // (huge counts must hit the sanity caps, not an allocation bomb).
    int flips = 1 + iter % 4;
    for (int i = 0; i < flips; ++i) {
      bytes[pos(rng)] = static_cast<char>(byte(rng));
    }
    CreateSessionRequest a;
    NextBatchReply c;
    AddFeedbackRequest d;
    ErrorReply f;
    DecodeCreateSessionRequest(bytes, &a);
    DecodeNextBatchReply(bytes, &c);
    DecodeAddFeedbackRequest(bytes, &d);
    DecodeErrorReply(bytes, &f);
  }
}

TEST(WireFuzzTest, LengthPrefixBombRejected) {
  // A payload whose string length prefix claims ~4GB must fail decode (the
  // sanity cap), not allocate.
  WireWriter w;
  w.Str("alice");
  w.U8(0);
  w.U32(0xFFFFFFFFu);  // text_query length prefix: absurd
  CreateSessionRequest got;
  EXPECT_FALSE(DecodeCreateSessionRequest(w.bytes(), &got));
}

}  // namespace
}  // namespace seesaw::net
