// Wire-protocol codec tests: round trips for every message type, header
// framing, and fuzz-style robustness — truncations, bit flips, and random
// garbage must fail decode cleanly (return false), never crash or read out
// of bounds. The codecs are pure bytes<->structs (no sockets), so this
// suite runs everywhere, including under ASan where an overread would trip.
#include "net/wire.h"

#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <string>
#include <vector>

namespace seesaw::net {
namespace {

CreateSessionRequest SampleCreate() {
  CreateSessionRequest req;
  req.user = "alice";
  req.by_vector = false;
  req.text_query = "wheelchair";
  return req;
}

TEST(WireHeaderTest, RoundTrip) {
  std::string frame = EncodeFrame(FrameType::kNextBatch, 42, "abc");
  ASSERT_EQ(frame.size(), kHeaderBytes + 3);
  FrameHeader header;
  ASSERT_TRUE(DecodeHeader(frame, &header));
  EXPECT_EQ(header.version, kProtocolVersion);
  EXPECT_EQ(header.type, FrameType::kNextBatch);
  EXPECT_EQ(header.request_id, 42u);
  EXPECT_EQ(header.payload_len, 3u);
}

TEST(WireHeaderTest, ShortBufferFails) {
  std::string frame = EncodeFrame(FrameType::kPing, 1, "");
  FrameHeader header;
  for (size_t len = 0; len < kHeaderBytes; ++len) {
    EXPECT_FALSE(DecodeHeader(std::string_view(frame).substr(0, len), &header))
        << "accepted a " << len << "-byte header";
  }
}

TEST(WireHeaderTest, BadMagicFails) {
  std::string frame = EncodeFrame(FrameType::kPing, 1, "");
  frame[0] ^= 0x5A;
  FrameHeader header;
  EXPECT_FALSE(DecodeHeader(frame, &header));
}

TEST(WireHeaderTest, ReplyBitConvention) {
  EXPECT_EQ(static_cast<uint16_t>(FrameType::kNextBatchReply),
            static_cast<uint16_t>(FrameType::kNextBatch) | kReplyBit);
  EXPECT_EQ(static_cast<uint16_t>(FrameType::kCreateSessionReply),
            static_cast<uint16_t>(FrameType::kCreateSession) | kReplyBit);
  EXPECT_EQ(static_cast<uint16_t>(FrameType::kStoreInfoReply),
            static_cast<uint16_t>(FrameType::kStoreInfo) | kReplyBit);
  EXPECT_EQ(static_cast<uint16_t>(FrameType::kStoreTopKReply),
            static_cast<uint16_t>(FrameType::kStoreTopK) | kReplyBit);
  EXPECT_EQ(static_cast<uint16_t>(FrameType::kStoreTopKBatchReply),
            static_cast<uint16_t>(FrameType::kStoreTopKBatch) | kReplyBit);
  EXPECT_EQ(static_cast<uint16_t>(FrameType::kStoreGetVectorReply),
            static_cast<uint16_t>(FrameType::kStoreGetVector) | kReplyBit);
}

TEST(WireCodecTest, CreateSessionTextRoundTrip) {
  CreateSessionRequest req = SampleCreate();
  CreateSessionRequest got;
  ASSERT_TRUE(DecodeCreateSessionRequest(EncodeCreateSessionRequest(req),
                                         &got));
  EXPECT_EQ(got.user, "alice");
  EXPECT_FALSE(got.by_vector);
  EXPECT_EQ(got.text_query, "wheelchair");
  EXPECT_TRUE(got.query_vector.empty());
}

TEST(WireCodecTest, CreateSessionVectorRoundTripBitwise) {
  CreateSessionRequest req;
  req.by_vector = true;
  req.query_vector = {0.25f, -1.5f, 3.14159f, 0.0f, -0.0f};
  CreateSessionRequest got;
  ASSERT_TRUE(DecodeCreateSessionRequest(EncodeCreateSessionRequest(req),
                                         &got));
  ASSERT_EQ(got.query_vector.size(), req.query_vector.size());
  // Floats cross the wire bitwise — scores and queries survive exactly.
  for (size_t i = 0; i < req.query_vector.size(); ++i) {
    EXPECT_EQ(std::memcmp(&got.query_vector[i], &req.query_vector[i],
                          sizeof(float)),
              0);
  }
}

TEST(WireCodecTest, NextBatchRoundTrip) {
  NextBatchRequest req;
  req.session_id = 0xDEADBEEFCAFEF00Dull;
  req.n = 10;
  NextBatchRequest got;
  ASSERT_TRUE(DecodeNextBatchRequest(EncodeNextBatchRequest(req), &got));
  EXPECT_EQ(got.session_id, req.session_id);
  EXPECT_EQ(got.n, 10u);

  NextBatchReply reply;
  reply.batch = {{7, 0.5f}, {11, -0.25f}, {0, 1.0f}};
  NextBatchReply reply_got;
  ASSERT_TRUE(DecodeNextBatchReply(EncodeNextBatchReply(reply), &reply_got));
  ASSERT_EQ(reply_got.batch.size(), 3u);
  for (size_t i = 0; i < reply.batch.size(); ++i) {
    EXPECT_EQ(reply_got.batch[i].image_idx, reply.batch[i].image_idx);
    EXPECT_EQ(std::memcmp(&reply_got.batch[i].score, &reply.batch[i].score,
                          sizeof(float)),
              0);
  }
}

TEST(WireCodecTest, AddFeedbackRoundTrip) {
  AddFeedbackRequest req;
  req.session_id = 3;
  req.feedback.image_idx = 99;
  req.feedback.relevant = true;
  req.feedback.boxes = {{0.1f, 0.2f, 0.8f, 0.9f}, {0.0f, 0.0f, 0.5f, 0.5f}};
  AddFeedbackRequest got;
  ASSERT_TRUE(DecodeAddFeedbackRequest(EncodeAddFeedbackRequest(req), &got));
  EXPECT_EQ(got.session_id, 3u);
  EXPECT_EQ(got.feedback.image_idx, 99u);
  EXPECT_TRUE(got.feedback.relevant);
  ASSERT_EQ(got.feedback.boxes.size(), 2u);
  EXPECT_FLOAT_EQ(got.feedback.boxes[0].x0, 0.1f);
  EXPECT_FLOAT_EQ(got.feedback.boxes[1].y1, 0.5f);
}

TEST(WireCodecTest, SessionAndErrorRoundTrip) {
  SessionRequest req;
  req.session_id = 17;
  SessionRequest got;
  ASSERT_TRUE(DecodeSessionRequest(EncodeSessionRequest(req), &got));
  EXPECT_EQ(got.session_id, 17u);

  ErrorReply error;
  error.code = WireError::kRetryLater;
  error.message = "request queue full";
  ErrorReply error_got;
  ASSERT_TRUE(DecodeErrorReply(EncodeErrorReply(error), &error_got));
  EXPECT_EQ(error_got.code, WireError::kRetryLater);
  EXPECT_EQ(error_got.message, "request queue full");
}

TEST(WireCodecTest, ErrorNamesAndRetriability) {
  EXPECT_EQ(WireErrorName(WireError::kRetryLater), "RETRY_LATER");
  EXPECT_EQ(WireErrorName(WireError::kQuotaExceeded), "QUOTA_EXCEEDED");
  EXPECT_TRUE(IsRetriable(WireError::kRetryLater));
  EXPECT_FALSE(IsRetriable(WireError::kQuotaExceeded));
  EXPECT_FALSE(IsRetriable(WireError::kMalformedFrame));
}

store::SeenSet SampleSeen() {
  // 130 ids spans three words, with marks in every word including the
  // partial tail — the shape a sharded scan's sliced exclusions take.
  store::SeenSet seen(130);
  seen.Set(0);
  seen.Set(63);
  seen.Set(64);
  seen.Set(129);
  return seen;
}

TEST(WireStoreCodecTest, StoreInfoReplyRoundTrip) {
  StoreInfoReply reply;
  reply.size = 0x1234567890ULL;
  reply.dim = 768;
  StoreInfoReply got;
  ASSERT_TRUE(DecodeStoreInfoReply(EncodeStoreInfoReply(reply), &got));
  EXPECT_EQ(got.size, reply.size);
  EXPECT_EQ(got.dim, 768u);
}

TEST(WireStoreCodecTest, StoreTopKRoundTripBitwise) {
  StoreTopKRequest req;
  req.query = {0.25f, -1.5f, 3.14159f, -0.0f};
  req.k = 17;
  req.seen = SampleSeen();
  StoreTopKRequest got;
  ASSERT_TRUE(DecodeStoreTopKRequest(EncodeStoreTopKRequest(req), &got));
  ASSERT_EQ(got.query.size(), req.query.size());
  for (size_t i = 0; i < req.query.size(); ++i) {
    EXPECT_EQ(std::memcmp(&got.query[i], &req.query[i], sizeof(float)), 0);
  }
  EXPECT_EQ(got.k, 17u);
  EXPECT_TRUE(got.seen == req.seen);

  // The reply preserves result order and score bits verbatim — the remote
  // parity contract needs the wire to be order- and bit-transparent.
  StoreTopKReply reply;
  reply.results = {{9, 0.75f}, {2, 0.75f}, {31, -0.0f}};
  StoreTopKReply reply_got;
  ASSERT_TRUE(DecodeStoreTopKReply(EncodeStoreTopKReply(reply), &reply_got));
  ASSERT_EQ(reply_got.results.size(), 3u);
  for (size_t i = 0; i < reply.results.size(); ++i) {
    EXPECT_EQ(reply_got.results[i].id, reply.results[i].id);
    EXPECT_EQ(std::memcmp(&reply_got.results[i].score,
                          &reply.results[i].score, sizeof(float)),
              0);
  }
}

TEST(WireStoreCodecTest, StoreTopKBatchRoundTrip) {
  StoreTopKBatchRequest req;
  req.queries = {{1.0f, 2.0f}, {-3.0f, 0.5f}, {0.0f, -0.0f}};
  req.k = 5;
  req.seen = SampleSeen();
  StoreTopKBatchRequest got;
  ASSERT_TRUE(
      DecodeStoreTopKBatchRequest(EncodeStoreTopKBatchRequest(req), &got));
  ASSERT_EQ(got.queries.size(), 3u);
  for (size_t q = 0; q < req.queries.size(); ++q) {
    ASSERT_EQ(got.queries[q].size(), req.queries[q].size());
    for (size_t i = 0; i < req.queries[q].size(); ++i) {
      EXPECT_EQ(got.queries[q][i], req.queries[q][i]);
    }
  }
  EXPECT_EQ(got.k, 5u);
  EXPECT_TRUE(got.seen == req.seen);

  StoreTopKBatchReply reply;
  reply.results = {{{1, 0.5f}}, {}, {{2, 0.25f}, {3, 0.125f}}};
  StoreTopKBatchReply reply_got;
  ASSERT_TRUE(
      DecodeStoreTopKBatchReply(EncodeStoreTopKBatchReply(reply), &reply_got));
  ASSERT_EQ(reply_got.results.size(), 3u);
  EXPECT_EQ(reply_got.results[0].size(), 1u);
  EXPECT_TRUE(reply_got.results[1].empty());  // empty per-query lists survive
  ASSERT_EQ(reply_got.results[2].size(), 2u);
  EXPECT_EQ(reply_got.results[2][1].id, 3u);
}

TEST(WireStoreCodecTest, StoreGetVectorRoundTrip) {
  StoreGetVectorRequest req;
  req.id = 4096;
  StoreGetVectorRequest got;
  ASSERT_TRUE(
      DecodeStoreGetVectorRequest(EncodeStoreGetVectorRequest(req), &got));
  EXPECT_EQ(got.id, 4096u);

  StoreGetVectorReply reply;
  reply.vector = {0.1f, -0.2f, 0.3f};
  StoreGetVectorReply reply_got;
  ASSERT_TRUE(
      DecodeStoreGetVectorReply(EncodeStoreGetVectorReply(reply), &reply_got));
  ASSERT_EQ(reply_got.vector.size(), 3u);
  for (size_t i = 0; i < reply.vector.size(); ++i) {
    EXPECT_EQ(std::memcmp(&reply_got.vector[i], &reply.vector[i],
                          sizeof(float)),
              0);
  }
}

TEST(WireStoreCodecTest, EmptySeenSetAndZeroQueriesRoundTrip) {
  // Degenerate-but-legal shapes: no exclusions, an empty batch.
  StoreTopKRequest req;
  req.query = {1.0f};
  req.k = 1;
  StoreTopKRequest got;
  ASSERT_TRUE(DecodeStoreTopKRequest(EncodeStoreTopKRequest(req), &got));
  EXPECT_EQ(got.seen.capacity(), 0u);

  StoreTopKBatchRequest batch;
  batch.k = 3;
  StoreTopKBatchRequest batch_got;
  ASSERT_TRUE(
      DecodeStoreTopKBatchRequest(EncodeStoreTopKBatchRequest(batch),
                                  &batch_got));
  EXPECT_TRUE(batch_got.queries.empty());
}

TEST(WireCodecTest, TrailingGarbageRejected) {
  // Decoders require exact consumption: framing bugs must not pass silently.
  std::string payload = EncodeSessionRequest({17});
  payload.push_back('\0');
  SessionRequest got;
  EXPECT_FALSE(DecodeSessionRequest(payload, &got));
}

TEST(WireCodecTest, EveryTruncationFailsCleanly) {
  // Each payload is checked against its OWN decoder: a truncated prefix of
  // one message type may legally decode as a shorter message type (the
  // header's type field is what disambiguates on the wire), but it must
  // never decode as the type it was truncated from.
  struct Case {
    std::string payload;
    bool (*decode)(std::string_view);
  };
  std::vector<Case> cases = {
      {EncodeCreateSessionRequest(SampleCreate()),
       [](std::string_view p) {
         CreateSessionRequest m;
         return DecodeCreateSessionRequest(p, &m);
       }},
      {EncodeNextBatchRequest({5, 10}),
       [](std::string_view p) {
         NextBatchRequest m;
         return DecodeNextBatchRequest(p, &m);
       }},
      {EncodeNextBatchReply({{{1, 0.5f}, {2, 0.25f}}}),
       [](std::string_view p) {
         NextBatchReply m;
         return DecodeNextBatchReply(p, &m);
       }},
      {EncodeAddFeedbackRequest({4, {7, true, {{0.1f, 0.1f, 0.9f, 0.9f}}}}),
       [](std::string_view p) {
         AddFeedbackRequest m;
         return DecodeAddFeedbackRequest(p, &m);
       }},
      {EncodeSessionRequest({9}),
       [](std::string_view p) {
         SessionRequest m;
         return DecodeSessionRequest(p, &m);
       }},
      {EncodeErrorReply({WireError::kInternal, "boom"}),
       [](std::string_view p) {
         ErrorReply m;
         return DecodeErrorReply(p, &m);
       }},
      {EncodeStoreInfoReply({12345, 64}),
       [](std::string_view p) {
         StoreInfoReply m;
         return DecodeStoreInfoReply(p, &m);
       }},
      {EncodeStoreTopKRequest({{0.5f, -0.25f}, 7, SampleSeen()}),
       [](std::string_view p) {
         StoreTopKRequest m;
         return DecodeStoreTopKRequest(p, &m);
       }},
      {EncodeStoreTopKReply({{{1, 0.5f}, {2, 0.25f}}}),
       [](std::string_view p) {
         StoreTopKReply m;
         return DecodeStoreTopKReply(p, &m);
       }},
      {EncodeStoreTopKBatchRequest(
           {{{1.0f, 2.0f}, {3.0f, 4.0f}}, 5, SampleSeen()}),
       [](std::string_view p) {
         StoreTopKBatchRequest m;
         return DecodeStoreTopKBatchRequest(p, &m);
       }},
      {EncodeStoreTopKBatchReply({{{{1, 0.5f}}, {{2, 0.25f}, {3, 0.1f}}}}),
       [](std::string_view p) {
         StoreTopKBatchReply m;
         return DecodeStoreTopKBatchReply(p, &m);
       }},
      {EncodeStoreGetVectorRequest({42}),
       [](std::string_view p) {
         StoreGetVectorRequest m;
         return DecodeStoreGetVectorRequest(p, &m);
       }},
      {EncodeStoreGetVectorReply({{0.1f, 0.2f, 0.3f}}),
       [](std::string_view p) {
         StoreGetVectorReply m;
         return DecodeStoreGetVectorReply(p, &m);
       }},
  };
  for (const Case& c : cases) {
    for (size_t len = 0; len < c.payload.size(); ++len) {
      EXPECT_FALSE(c.decode(std::string_view(c.payload.data(), len)))
          << "decoder accepted a " << len << "-byte truncation of a "
          << c.payload.size() << "-byte payload";
    }
  }
}

// Seeded pseudo-fuzz: random garbage and randomly corrupted valid payloads
// through every decoder. The only acceptable outcomes are clean false or a
// successfully decoded struct — never a crash, hang, or overread (ASan leg
// checks the latter).
TEST(WireFuzzTest, RandomGarbageNeverCrashes) {
  std::mt19937 rng(1234);
  std::uniform_int_distribution<int> byte(0, 255);
  std::uniform_int_distribution<size_t> len_dist(0, 512);
  for (int iter = 0; iter < 2000; ++iter) {
    std::string bytes(len_dist(rng), '\0');
    for (char& c : bytes) c = static_cast<char>(byte(rng));
    CreateSessionRequest a;
    NextBatchRequest b;
    NextBatchReply c;
    AddFeedbackRequest d;
    SessionRequest e;
    ErrorReply f;
    FrameHeader h;
    DecodeCreateSessionRequest(bytes, &a);
    DecodeNextBatchRequest(bytes, &b);
    DecodeNextBatchReply(bytes, &c);
    DecodeAddFeedbackRequest(bytes, &d);
    DecodeSessionRequest(bytes, &e);
    DecodeErrorReply(bytes, &f);
    DecodeHeader(bytes, &h);
    StoreInfoReply si;
    StoreTopKRequest st;
    StoreTopKReply sr;
    StoreTopKBatchRequest sb;
    StoreTopKBatchReply sbr;
    StoreGetVectorRequest sg;
    StoreGetVectorReply sgr;
    DecodeStoreInfoReply(bytes, &si);
    DecodeStoreTopKRequest(bytes, &st);
    DecodeStoreTopKReply(bytes, &sr);
    DecodeStoreTopKBatchRequest(bytes, &sb);
    DecodeStoreTopKBatchReply(bytes, &sbr);
    DecodeStoreGetVectorRequest(bytes, &sg);
    DecodeStoreGetVectorReply(bytes, &sgr);
  }
}

TEST(WireFuzzTest, CorruptedValidPayloadsNeverCrash) {
  std::mt19937 rng(5678);
  std::uniform_int_distribution<int> byte(0, 255);
  std::vector<std::string> seeds = {
      EncodeCreateSessionRequest(SampleCreate()),
      EncodeNextBatchReply({{{1, 0.5f}, {2, 0.25f}, {3, 0.125f}}}),
      EncodeAddFeedbackRequest(
          {4, {7, true, {{0.1f, 0.1f, 0.9f, 0.9f}}}}),
      EncodeErrorReply({WireError::kRetryLater, "shed"}),
      EncodeStoreTopKRequest({{0.5f, -0.25f, 1.0f}, 7, SampleSeen()}),
      EncodeStoreTopKBatchRequest(
          {{{1.0f, 2.0f}, {3.0f, 4.0f}}, 5, SampleSeen()}),
      EncodeStoreTopKBatchReply({{{{1, 0.5f}}, {{2, 0.25f}, {3, 0.1f}}}}),
      EncodeStoreGetVectorReply({{0.1f, 0.2f, 0.3f}}),
  };
  for (int iter = 0; iter < 2000; ++iter) {
    std::string bytes = seeds[iter % seeds.size()];
    std::uniform_int_distribution<size_t> pos(0, bytes.size() - 1);
    // Corrupt 1-4 bytes; length-prefix corruption is the interesting case
    // (huge counts must hit the sanity caps, not an allocation bomb).
    int flips = 1 + iter % 4;
    for (int i = 0; i < flips; ++i) {
      bytes[pos(rng)] = static_cast<char>(byte(rng));
    }
    CreateSessionRequest a;
    NextBatchReply c;
    AddFeedbackRequest d;
    ErrorReply f;
    DecodeCreateSessionRequest(bytes, &a);
    DecodeNextBatchReply(bytes, &c);
    DecodeAddFeedbackRequest(bytes, &d);
    DecodeErrorReply(bytes, &f);
    StoreTopKRequest st;
    StoreTopKBatchRequest sb;
    StoreTopKBatchReply sbr;
    StoreGetVectorReply sgr;
    DecodeStoreTopKRequest(bytes, &st);
    DecodeStoreTopKBatchRequest(bytes, &sb);
    DecodeStoreTopKBatchReply(bytes, &sbr);
    DecodeStoreGetVectorReply(bytes, &sgr);
  }
}

TEST(WireFuzzTest, LengthPrefixBombRejected) {
  // A payload whose string length prefix claims ~4GB must fail decode (the
  // sanity cap), not allocate.
  WireWriter w;
  w.Str("alice");
  w.U8(0);
  w.U32(0xFFFFFFFFu);  // text_query length prefix: absurd
  CreateSessionRequest got;
  EXPECT_FALSE(DecodeCreateSessionRequest(w.bytes(), &got));
}

TEST(WireFuzzTest, StoreLengthPrefixBombsRejected) {
  // Hostile length prefixes in the store frames must fail the bounds check
  // (the prefix exceeds the bytes actually present) or the sanity cap —
  // never size an allocation.
  {
    // Query vector claiming 1M dims with 8 bytes of payload behind it.
    WireWriter w;
    w.U32(1u << 20);
    w.F32(1.0f);
    w.F32(2.0f);
    StoreTopKRequest got;
    EXPECT_FALSE(DecodeStoreTopKRequest(w.bytes(), &got));
  }
  {
    // Seen set claiming ~2^40 capacity: over the cap outright.
    WireWriter w;
    w.U32(1);  // one-dim query...
    w.F32(1.0f);
    w.U32(5);            // k
    w.U64(1ull << 40);   // seen capacity: absurd
    StoreTopKRequest got;
    EXPECT_FALSE(DecodeStoreTopKRequest(w.bytes(), &got));
  }
  {
    // Seen set within the cap but with no words behind the prefix: the
    // bounds pre-check must reject before allocating ~16MB of words.
    WireWriter w;
    w.U32(1);
    w.F32(1.0f);
    w.U32(5);
    w.U64(1ull << 27);  // exactly the cap, zero payload bytes follow
    StoreTopKRequest got;
    EXPECT_FALSE(DecodeStoreTopKRequest(w.bytes(), &got));
  }
  {
    // Batch claiming 2^31 queries: over kMaxStoreQueries.
    WireWriter w;
    w.U32(0x80000000u);
    StoreTopKBatchRequest got;
    EXPECT_FALSE(DecodeStoreTopKBatchRequest(w.bytes(), &got));
  }
  {
    // Batch reply claiming 4096 result lists with nothing behind them.
    WireWriter w;
    w.U32(4096);
    StoreTopKBatchReply got;
    EXPECT_FALSE(DecodeStoreTopKBatchReply(w.bytes(), &got));
  }
  {
    // Result list claiming 1M hits backed by one real entry.
    WireWriter w;
    w.U32(1u << 20);
    w.U32(1);
    w.F32(0.5f);
    StoreTopKReply got;
    EXPECT_FALSE(DecodeStoreTopKReply(w.bytes(), &got));
  }
}

}  // namespace
}  // namespace seesaw::net
