#include "tests/fault_socket.h"

#include <utility>

namespace seesaw::test_util {

Status FaultTransport::Send(std::string_view frame) {
  if (!connected_) return Status::IoError("transport is disconnected");

  net::FrameHeader header;
  if (!net::DecodeHeader(frame, &header) ||
      frame.size() != net::kHeaderBytes + header.payload_len) {
    return Status::IoError("FaultTransport: caller sent a malformed frame");
  }
  ++sends_;
  std::string_view payload = frame.substr(net::kHeaderBytes);

  FaultStep step = Pass();
  if (!script_.empty()) {
    step = script_.front();
    script_.pop_front();
  }

  switch (step.kind) {
    case FaultKind::kRetryLater: {
      net::ErrorReply shed;
      shed.code = net::WireError::kRetryLater;
      shed.message = "scripted shed";
      inbox_.push_back(net::EncodeFrame(net::FrameType::kError,
                                        header.request_id,
                                        net::EncodeErrorReply(shed)));
      break;
    }
    case FaultKind::kTruncate:
    case FaultKind::kDrop:
      // Both kill the connection before a whole reply arrives; kTruncate
      // models bytes on the wire when it died (the read fails mid-frame,
      // exactly TcpTransport's "connection closed mid-frame"), kDrop a
      // peer that never wrote. At the whole-frame Transport seam they
      // surface identically — the byte-level truncation sweep lives in
      // net_protocol_test where WireReader can see partial payloads.
      connected_ = false;
      inbox_.clear();
      break;
    case FaultKind::kDelay:
      pending_delay_ = step.seconds;
      [[fallthrough]];
    case FaultKind::kPass: {
      std::string reply = service_.HandleFrame(header, payload);
      inbox_.push_back(std::move(reply));
      break;
    }
    case FaultKind::kDuplicate: {
      std::string reply = service_.HandleFrame(header, payload);
      // The duplicate is the same reply under the previous request id — a
      // peer that repeated an old answer before the current one.
      net::FrameHeader reply_header;
      net::DecodeHeader(reply, &reply_header);
      inbox_.push_back(net::EncodeFrame(
          reply_header.type, last_request_id_,
          std::string_view(reply).substr(net::kHeaderBytes)));
      inbox_.push_back(std::move(reply));
      break;
    }
  }
  last_request_id_ = header.request_id;
  return Status::OK();
}

Status FaultTransport::ReadFrame(net::FrameHeader* header,
                                 std::string* payload,
                                 size_t max_payload_bytes,
                                 double deadline_seconds,
                                 const CancellationToken* cancel) {
  if (cancel != nullptr && cancel->cancelled()) {
    return Status::Cancelled("read cancelled");
  }
  if (pending_delay_ > 0) {
    const double wait = pending_delay_;
    pending_delay_ = 0;
    if (deadline_seconds > 0 && wait >= deadline_seconds) {
      // The reply would land after the deadline: burn exactly the budget
      // and fail the way a sliced poll() wait does. The late bytes are
      // torn up with the (now unusable) stream.
      now_ += deadline_seconds;
      inbox_.clear();
      connected_ = false;
      return Status::DeadlineExceeded("read deadline exceeded");
    }
    now_ += wait;
  }
  if (inbox_.empty()) {
    if (!connected_) return Status::IoError("connection closed mid-frame");
    // A live connection with nothing scripted to arrive would block
    // forever; in a deterministic harness that is a test bug, surface it.
    return Status::Internal("FaultTransport: read with no scripted reply");
  }
  std::string frame = std::move(inbox_.front());
  inbox_.pop_front();
  if (!net::DecodeHeader(frame, header)) {
    return Status::IoError("bad reply frame header");
  }
  if (header->payload_len > max_payload_bytes) {
    return Status::IoError("reply payload exceeds the client size cap");
  }
  payload->assign(frame, net::kHeaderBytes, header->payload_len);
  return Status::OK();
}

Status FaultTransport::Reconnect() {
  connected_ = true;
  inbox_.clear();
  pending_delay_ = 0;
  ++reconnects_;
  return Status::OK();
}

}  // namespace seesaw::test_util
