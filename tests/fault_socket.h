// FaultTransport: a scripted, socket-free peer for RemoteStore.
//
// Implements net::Transport over a StoreFrameService directly — requests
// are answered in-process by a real local store through the real codecs,
// but each round trip first consults a fault script that can delay the
// reply past the deadline, truncate it mid-frame, drop the connection,
// shed with RETRY_LATER, or deliver a stale duplicate before the real
// reply. Time is a virtual clock the Delay step advances, and the script
// is a fixed list consumed in order, so every failure-semantics test is
// exactly reproducible: no real sockets, no wall-clock sleeps, no races.
//
// Step consumption: one script step per Send() (request round trip). The
// FIRST RPC a RemoteStore issues is the kStoreInfo probe inside
// RemoteStore::Create — scripts must budget a step for it (Pass(), unless
// the test targets Create itself). An exhausted script behaves as Pass
// forever. Retries re-enter Send(), so each retry attempt consumes its own
// step — a script {Pass, RetryLater, RetryLater, Pass} exercises
// "shed twice, then succeed".
#ifndef SEESAW_TESTS_FAULT_SOCKET_H_
#define SEESAW_TESTS_FAULT_SOCKET_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

#include "common/cancellation.h"
#include "common/status.h"
#include "net/store_service.h"
#include "net/transport.h"
#include "net/wire.h"
#include "store/vector_store.h"

namespace seesaw::test_util {

enum class FaultKind {
  /// Deliver the real reply.
  kPass,
  /// Answer with a RETRY_LATER error frame (graceful shedding) instead of
  /// dispatching the request.
  kRetryLater,
  /// The connection dies mid-reply: ReadFrame fails like a peer that
  /// closed after sending a partial frame. Unusable until Reconnect().
  kTruncate,
  /// The connection dies before any reply byte. Unusable until Reconnect().
  kDrop,
  /// Advance the virtual clock by `seconds` "while waiting": when that
  /// crosses the caller's deadline the read fails DeadlineExceeded,
  /// otherwise the real reply is delivered late.
  kDelay,
  /// Deliver a stale duplicate (the real reply re-framed under the
  /// previous request id) first, then the real reply — a repeating peer.
  kDuplicate,
};

struct FaultStep {
  FaultKind kind = FaultKind::kPass;
  /// kDelay only: virtual seconds the reply is late.
  double seconds = 0;
};

inline FaultStep Pass() { return {FaultKind::kPass}; }
inline FaultStep RetryLater() { return {FaultKind::kRetryLater}; }
inline FaultStep Truncate() { return {FaultKind::kTruncate}; }
inline FaultStep Drop() { return {FaultKind::kDrop}; }
inline FaultStep Delay(double seconds) { return {FaultKind::kDelay, seconds}; }
inline FaultStep Duplicate() { return {FaultKind::kDuplicate}; }

class FaultTransport : public net::Transport {
 public:
  /// `store` must outlive the transport. Replies are computed by a
  /// StoreFrameService over it (serial scans; determinism beats speed in a
  /// fault test).
  FaultTransport(const store::VectorStore& store, std::vector<FaultStep> script)
      : service_(store, /*pool=*/nullptr),
        script_(script.begin(), script.end()) {}

  Status Send(std::string_view frame) override;
  Status ReadFrame(net::FrameHeader* header, std::string* payload,
                   size_t max_payload_bytes, double deadline_seconds,
                   const CancellationToken* cancel) override;
  Status Reconnect() override;

  /// Virtual seconds accumulated by Delay steps.
  double virtual_now() const { return now_; }
  /// Round trips attempted (Send calls that reached a live connection).
  size_t sends() const { return sends_; }
  size_t reconnects() const { return reconnects_; }
  /// Script steps not yet consumed (0 = every scripted fault fired).
  size_t steps_left() const { return script_.size(); }

 private:
  net::StoreFrameService service_;
  std::deque<FaultStep> script_;
  /// Reply frames queued for ReadFrame, front first.
  std::deque<std::string> inbox_;
  bool connected_ = true;
  /// Virtual seconds ReadFrame will burn before delivering (set by Send
  /// when it consumes a Delay step).
  double pending_delay_ = 0;
  uint64_t last_request_id_ = 0;
  double now_ = 0;
  size_t sends_ = 0;
  size_t reconnects_ = 0;
};

}  // namespace seesaw::test_util

#endif  // SEESAW_TESTS_FAULT_SOCKET_H_
