// Think-time speculative prefetch: bitwise parity with the synchronous
// path (hit, miss, and invalidated speculations), hit accounting, the
// cross-session budget, and the managed serving layer end to end.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "common/thread_pool.h"
#include "core/embedded_dataset.h"
#include "core/seesaw_searcher.h"
#include "core/session_manager.h"
#include "data/profiles.h"
#include "eval/task_runner.h"
#include "tests/test_util.h"

namespace seesaw::core {
namespace {

using Fixture = test_util::EmbeddedFixture;

Fixture MakeFixture(StoreBackend backend) {
  return test_util::MakeEmbeddedFixture(backend);
}

SeeSawOptions WithPrefetch(SeeSawOptions options, bool enabled) {
  options.prefetch.enabled = enabled;
  options.prefetch.max_in_flight = 0;  // unlimited; budget tested separately
  return options;
}

/// One interaction round: fetch a batch, label every image from ground
/// truth, refit. Returns the batch.
std::vector<ScoredImage> DriveRound(SeeSawSearcher& searcher,
                                    const data::Dataset& dataset,
                                    size_t concept_id, size_t n) {
  auto batch = searcher.NextBatch(n);
  for (const auto& hit : batch) {
    ImageFeedback fb;
    fb.image_idx = hit.image_idx;
    fb.relevant = dataset.IsPositive(hit.image_idx, concept_id);
    if (fb.relevant) {
      fb.boxes = dataset.ConceptBoxes(hit.image_idx, concept_id);
    }
    searcher.AddFeedback(fb);
  }
  EXPECT_TRUE(searcher.Refit().ok());
  return batch;
}

void ExpectSameBatch(const std::vector<ScoredImage>& a,
                     const std::vector<ScoredImage>& b, int round) {
  ASSERT_EQ(a.size(), b.size()) << "round " << round;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].image_idx, b[i].image_idx) << "round " << round;
    EXPECT_EQ(a[i].score, b[i].score) << "round " << round;  // bitwise
  }
}

struct Variant {
  const char* name;
  SeeSawOptions options;
};

std::vector<Variant> Variants() {
  SeeSawOptions zero;
  zero.update_query = false;
  SeeSawOptions few;
  few.aligner.loss.use_text_term = false;
  few.aligner.loss.use_db_term = false;
  return {{"seesaw", {}}, {"zero-shot", zero}, {"few-shot", few}};
}

TEST(PrefetchTest, ParityAcrossVariantsAndBackends) {
  for (StoreBackend backend :
       {StoreBackend::kExact, StoreBackend::kIvf, StoreBackend::kAnnoy,
        StoreBackend::kSharded}) {
    auto f = MakeFixture(backend);
    ThreadPool pool(3);
    for (const Variant& variant : Variants()) {
      auto q0 = f.embedded->TextQuery(0);
      SeeSawSearcher baseline(*f.embedded, q0,
                              WithPrefetch(variant.options, false));
      SeeSawSearcher speculating(*f.embedded, q0,
                                 WithPrefetch(variant.options, true));
      baseline.set_thread_pool(&pool);
      speculating.set_thread_pool(&pool);
      for (int round = 0; round < 5; ++round) {
        auto expected = DriveRound(baseline, *f.dataset, 0, 8);
        auto got = DriveRound(speculating, *f.dataset, 0, 8);
        ExpectSameBatch(expected, got, round);
      }
      EXPECT_GT(speculating.prefetch_stats().scheduled, 0u) << variant.name;
      EXPECT_EQ(baseline.prefetch_stats().scheduled, 0u) << variant.name;
    }
  }
}

TEST(PrefetchTest, ZeroShotConsumesSpeculations) {
  // Zero-shot never moves the query, so labeling exactly the returned batch
  // keeps every speculation valid: all rounds after the first must hit.
  auto f = MakeFixture(StoreBackend::kExact);
  ThreadPool pool(3);
  SeeSawOptions zero;
  zero.update_query = false;
  SeeSawSearcher searcher(*f.embedded, f.embedded->TextQuery(0),
                          WithPrefetch(zero, true));
  searcher.set_thread_pool(&pool);
  const int rounds = 5;
  for (int round = 0; round < rounds; ++round) {
    DriveRound(searcher, *f.dataset, 0, 8);
  }
  EXPECT_EQ(searcher.prefetch_stats().hits, static_cast<size_t>(rounds - 1));
  EXPECT_EQ(searcher.prefetch_stats().misses, 0u);
}

TEST(PrefetchTest, QueryUpdateInvalidatesSpeculation) {
  // The full method refits to a new query each round, so speculations built
  // on the old query must be cancelled — and results still match the
  // synchronous baseline (covered by ParityAcrossVariantsAndBackends).
  auto f = MakeFixture(StoreBackend::kExact);
  ThreadPool pool(3);
  SeeSawSearcher searcher(*f.embedded, f.embedded->TextQuery(0),
                          WithPrefetch(SeeSawOptions{}, true));
  searcher.set_thread_pool(&pool);
  for (int round = 0; round < 4; ++round) {
    DriveRound(searcher, *f.dataset, 0, 8);
  }
  const PrefetchStats& stats = searcher.prefetch_stats();
  EXPECT_GT(stats.invalidated, 0u);
  EXPECT_EQ(stats.hits, 0u);
}

TEST(PrefetchTest, DeviatingFeedbackInvalidatesSpeculation) {
  // Feedback on an image outside the returned batch deviates from the
  // prediction; the next batch must still equal the synchronous result.
  auto f = MakeFixture(StoreBackend::kExact);
  ThreadPool pool(3);
  SeeSawOptions zero;
  zero.update_query = false;
  auto q0 = f.embedded->TextQuery(1);
  SeeSawSearcher baseline(*f.embedded, q0, WithPrefetch(zero, false));
  SeeSawSearcher speculating(*f.embedded, q0, WithPrefetch(zero, true));
  baseline.set_thread_pool(&pool);
  speculating.set_thread_pool(&pool);

  auto surprise = [&](SeeSawSearcher& s) {
    auto batch = s.NextBatch(6);
    // Label the batch plus one unshown image (e.g. found via another tool).
    std::set<uint32_t> in_batch;
    for (const auto& hit : batch) in_batch.insert(hit.image_idx);
    uint32_t outside = 0;
    while (s.IsSeen(outside) || in_batch.count(outside) != 0) ++outside;
    ImageFeedback fb;
    fb.image_idx = outside;
    fb.relevant = false;
    s.AddFeedback(fb);
    for (const auto& hit : batch) {
      ImageFeedback in;
      in.image_idx = hit.image_idx;
      in.relevant = false;
      s.AddFeedback(in);
    }
    EXPECT_TRUE(s.Refit().ok());
  };
  surprise(baseline);
  surprise(speculating);
  auto expected = baseline.NextBatch(6);
  auto got = speculating.NextBatch(6);
  ExpectSameBatch(expected, got, /*round=*/1);
  EXPECT_GT(speculating.prefetch_stats().invalidated +
                speculating.prefetch_stats().misses,
            0u);
  EXPECT_EQ(speculating.prefetch_stats().hits, 0u);
}

TEST(PrefetchTest, RepeatedNextBatchWithoutFeedbackMatchesSyncSemantics) {
  // NextBatch without intervening feedback returns the same images (nothing
  // was marked seen); the speculation predicted a labeled batch and must be
  // discarded, not consumed.
  auto f = MakeFixture(StoreBackend::kExact);
  ThreadPool pool(2);
  SeeSawOptions zero;
  zero.update_query = false;
  SeeSawSearcher searcher(*f.embedded, f.embedded->TextQuery(0),
                          WithPrefetch(zero, true));
  searcher.set_thread_pool(&pool);
  auto first = searcher.NextBatch(5);
  auto second = searcher.NextBatch(5);
  ExpectSameBatch(first, second, /*round=*/0);
  EXPECT_EQ(searcher.prefetch_stats().hits, 0u);
  EXPECT_GT(searcher.prefetch_stats().misses, 0u);
}

TEST(PrefetchTest, DestructionDrainsInvalidatedSpeculations) {
  // Regression: an invalidated speculation's task may still be mid-scan on
  // the pool; destroying the searcher and then the pool must drain it. A
  // leaked task used to submit nested pool work during pool shutdown and
  // trip the Submit-after-shutdown check.
  auto f = MakeFixture(StoreBackend::kExact);
  SeeSawOptions zero;
  zero.update_query = false;
  for (int i = 0; i < 20; ++i) {
    ThreadPool pool(2);
    auto searcher = std::make_unique<SeeSawSearcher>(
        *f.embedded, f.embedded->TextQuery(0), WithPrefetch(zero, true));
    searcher->set_thread_pool(&pool);
    auto batch = searcher->NextBatch(6);  // schedules a speculation
    ASSERT_FALSE(batch.empty());
    std::set<uint32_t> in_batch;
    for (const auto& hit : batch) in_batch.insert(hit.image_idx);
    uint32_t outside = 0;
    while (searcher->IsSeen(outside) || in_batch.count(outside) != 0) {
      ++outside;
    }
    ImageFeedback fb;
    fb.image_idx = outside;
    fb.relevant = false;
    searcher->AddFeedback(fb);  // invalidates while the task may be running
    searcher.reset();           // must drain the stale task
  }                             // pool shutdown must see no new submissions
}

TEST(PrefetchTest, BudgetCapsAcquisitions) {
  PrefetchBudget budget(2);
  EXPECT_TRUE(budget.TryAcquire());
  EXPECT_TRUE(budget.TryAcquire());
  EXPECT_FALSE(budget.TryAcquire());
  budget.Release();
  EXPECT_TRUE(budget.TryAcquire());
  budget.Release();
  budget.Release();
  EXPECT_EQ(budget.in_flight(), 0u);

  PrefetchBudget unlimited(0);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(unlimited.TryAcquire());
}

TEST(PrefetchTest, ManagedSessionsWithPrefetchMatchBaseline) {
  // End to end through the serving layer: a service configured with
  // prefetch on (and a tight cross-session budget) must reproduce the
  // prefetch-off results exactly, under concurrent drivers and think time.
  auto profile = data::CocoLikeProfile(0.05);
  profile.embedding_dim = 32;
  auto ds = data::Dataset::Generate(profile);
  ASSERT_TRUE(ds.ok());

  auto make_service = [&](bool prefetch_on) {
    ServiceOptions options;
    options.preprocess.multiscale.enabled = false;
    options.preprocess.build_md = false;
    options.session_threads = 3;
    options.search.update_query = false;  // zero-shot: speculation-friendly
    options.search.prefetch.enabled = prefetch_on;
    options.search.prefetch.max_in_flight = 2;
    auto svc = SeeSawService::Create(*ds, options);
    EXPECT_TRUE(svc.ok());
    return std::make_unique<SeeSawService>(std::move(*svc));
  };

  auto concepts = ds->EvaluableConcepts(3);
  ASSERT_FALSE(concepts.empty());
  if (concepts.size() > 4) concepts.resize(4);
  eval::TaskOptions task;
  task.target_positives = 3;
  task.max_images = 24;
  task.batch_size = 6;
  task.think_seconds_per_image = 0.002;

  auto off = make_service(false);
  auto on = make_service(true);
  auto run_off = eval::RunManagedBenchmark(*off, *ds, concepts, task);
  auto run_on = eval::RunManagedBenchmark(*on, *ds, concepts, task);
  ASSERT_EQ(run_off.results.size(), run_on.results.size());
  for (size_t i = 0; i < run_off.results.size(); ++i) {
    EXPECT_EQ(run_off.results[i].relevance, run_on.results[i].relevance);
    EXPECT_EQ(run_off.results[i].found, run_on.results[i].found);
    EXPECT_EQ(run_off.results[i].inspected, run_on.results[i].inspected);
    EXPECT_DOUBLE_EQ(run_off.results[i].ap, run_on.results[i].ap);
  }
  EXPECT_EQ(on->sessions().prefetches_in_flight(), 0u);
}

}  // namespace
}  // namespace seesaw::core
