// Think-time speculative prefetch: bitwise parity with the synchronous
// path (hit, miss, and invalidated speculations), hit accounting, the
// cross-session budget, and the managed serving layer end to end. The
// refit-speculation state machine (speculating *through* a query-moving
// refit) has its own suite: tests/refit_speculation_test.cc.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/thread_pool.h"
#include "core/embedded_dataset.h"
#include "core/seesaw_searcher.h"
#include "core/session_manager.h"
#include "data/profiles.h"
#include "eval/task_runner.h"
#include "tests/test_util.h"

namespace seesaw::core {
namespace {

using test_util::ExpectSameImageBatch;
using test_util::RoundScript;
using test_util::ScriptedUser;
using Fixture = test_util::EmbeddedFixture;

Fixture MakeFixture(StoreBackend backend) {
  return test_util::MakeEmbeddedFixture(backend);
}

SeeSawOptions WithPrefetch(SeeSawOptions options, bool enabled) {
  options.prefetch.enabled = enabled;
  options.prefetch.max_in_flight = 0;  // unlimited; budget tested separately
  return options;
}

struct Variant {
  const char* name;
  SeeSawOptions options;
};

std::vector<Variant> Variants() {
  SeeSawOptions zero;
  zero.update_query = false;
  SeeSawOptions few;
  few.aligner.loss.use_text_term = false;
  few.aligner.loss.use_db_term = false;
  return {{"seesaw", {}}, {"zero-shot", zero}, {"few-shot", few}};
}

TEST(PrefetchTest, ParityAcrossVariantsAndBackends) {
  for (StoreBackend backend :
       {StoreBackend::kExact, StoreBackend::kIvf, StoreBackend::kAnnoy,
        StoreBackend::kSharded}) {
    auto f = MakeFixture(backend);
    ThreadPool pool(3);
    ScriptedUser user(*f.dataset, /*concept_id=*/0);
    for (const Variant& variant : Variants()) {
      auto q0 = f.embedded->TextQuery(0);
      SeeSawSearcher baseline(*f.embedded, q0,
                              WithPrefetch(variant.options, false));
      SeeSawSearcher speculating(*f.embedded, q0,
                                 WithPrefetch(variant.options, true));
      baseline.set_thread_pool(&pool);
      speculating.set_thread_pool(&pool);
      for (int round = 0; round < 5; ++round) {
        auto expected = user.DriveRound(baseline, 8);
        auto got = user.DriveRound(speculating, 8);
        ExpectSameImageBatch(got, expected, round);
      }
      EXPECT_GT(speculating.prefetch_stats().scheduled, 0u) << variant.name;
      EXPECT_EQ(baseline.prefetch_stats().scheduled, 0u) << variant.name;
    }
  }
}

TEST(PrefetchTest, ZeroShotConsumesSpeculations) {
  // Zero-shot never moves the query, so labeling exactly the returned batch
  // keeps every speculation valid: all rounds after the first must hit.
  auto f = MakeFixture(StoreBackend::kExact);
  ThreadPool pool(3);
  SeeSawOptions zero;
  zero.update_query = false;
  SeeSawSearcher searcher(*f.embedded, f.embedded->TextQuery(0),
                          WithPrefetch(zero, true));
  searcher.set_thread_pool(&pool);
  ScriptedUser user(*f.dataset, 0);
  const int rounds = 5;
  for (int round = 0; round < rounds; ++round) {
    user.DriveRound(searcher, 8);
  }
  EXPECT_EQ(searcher.prefetch_stats().hits, static_cast<size_t>(rounds - 1));
  EXPECT_EQ(searcher.prefetch_stats().misses, 0u);
  // Zero-shot speculations never involve a predicted fit.
  EXPECT_EQ(searcher.prefetch_stats().refit_fits, 0u);
  EXPECT_EQ(searcher.prefetch_stats().hits_post_refit, 0u);
}

TEST(PrefetchTest, QueryMovingRefitConsumesPredictedSpeculation) {
  // The full method refits to a new query each round. Speculations used to
  // die here (they were built on the stale query); with refit speculation
  // the aligner runs during labeling and the scan uses the predicted
  // post-refit query, so full-batch rounds now consume — bitwise parity is
  // covered by ParityAcrossVariantsAndBackends and the refit_speculation
  // suite.
  auto f = MakeFixture(StoreBackend::kExact);
  ThreadPool pool(3);
  SeeSawSearcher searcher(*f.embedded, f.embedded->TextQuery(0),
                          WithPrefetch(SeeSawOptions{}, true));
  searcher.set_thread_pool(&pool);
  ScriptedUser user(*f.dataset, 0);
  const int rounds = 4;
  for (int round = 0; round < rounds; ++round) {
    user.DriveRound(searcher, 8);
  }
  const PrefetchStats& stats = searcher.prefetch_stats();
  EXPECT_GT(stats.refit_fits, 0u);
  EXPECT_GT(stats.refit_matches, 0u);
  EXPECT_GT(stats.hits_post_refit, 0u);
  EXPECT_EQ(stats.hits, stats.hits_post_refit);  // no same-query consumes
}

TEST(PrefetchTest, DeviatingFeedbackInvalidatesSpeculation) {
  // Feedback on an image outside the returned batch deviates from the
  // prediction; the next batch must still equal the synchronous result.
  auto f = MakeFixture(StoreBackend::kExact);
  ThreadPool pool(3);
  SeeSawOptions zero;
  zero.update_query = false;
  auto q0 = f.embedded->TextQuery(1);
  SeeSawSearcher baseline(*f.embedded, q0, WithPrefetch(zero, false));
  SeeSawSearcher speculating(*f.embedded, q0, WithPrefetch(zero, true));
  baseline.set_thread_pool(&pool);
  speculating.set_thread_pool(&pool);

  ScriptedUser user(*f.dataset, 1);
  RoundScript surprise;
  surprise.label_unshown_image = true;
  user.DriveRound(baseline, 6, surprise);
  user.DriveRound(speculating, 6, surprise);
  auto expected = baseline.NextBatch(6);
  auto got = speculating.NextBatch(6);
  ExpectSameImageBatch(got, expected, /*round=*/1);
  EXPECT_GT(speculating.prefetch_stats().invalidated +
                speculating.prefetch_stats().misses,
            0u);
  EXPECT_EQ(speculating.prefetch_stats().hits, 0u);
}

TEST(PrefetchTest, RepeatedNextBatchWithoutFeedbackMatchesSyncSemantics) {
  // NextBatch without intervening feedback returns the same images (nothing
  // was marked seen); the speculation predicted a labeled batch and must be
  // discarded, not consumed.
  auto f = MakeFixture(StoreBackend::kExact);
  ThreadPool pool(2);
  SeeSawOptions zero;
  zero.update_query = false;
  SeeSawSearcher searcher(*f.embedded, f.embedded->TextQuery(0),
                          WithPrefetch(zero, true));
  searcher.set_thread_pool(&pool);
  auto first = searcher.NextBatch(5);
  auto second = searcher.NextBatch(5);
  ExpectSameImageBatch(second, first, /*round=*/0);
  EXPECT_EQ(searcher.prefetch_stats().hits, 0u);
  EXPECT_GT(searcher.prefetch_stats().misses, 0u);
}

TEST(PrefetchTest, DestructionDrainsInvalidatedSpeculations) {
  // Regression: an invalidated speculation's task may still be mid-scan on
  // the pool; destroying the searcher and then the pool must drain it. A
  // leaked task used to submit nested pool work during pool shutdown and
  // trip the Submit-after-shutdown check.
  auto f = MakeFixture(StoreBackend::kExact);
  SeeSawOptions zero;
  zero.update_query = false;
  ScriptedUser user(*f.dataset, 0);
  for (int i = 0; i < 20; ++i) {
    ThreadPool pool(2);
    auto searcher = std::make_unique<SeeSawSearcher>(
        *f.embedded, f.embedded->TextQuery(0), WithPrefetch(zero, true));
    searcher->set_thread_pool(&pool);
    auto batch = searcher->NextBatch(6);  // schedules a speculation
    ASSERT_FALSE(batch.empty());
    // Label one unshown image: invalidates while the task may be running.
    uint32_t outside = 0;
    while (searcher->IsSeen(outside)) ++outside;
    bool in_batch = true;
    while (in_batch) {
      in_batch = false;
      for (const auto& hit : batch) {
        if (hit.image_idx == outside) {
          ++outside;
          in_batch = true;
        }
      }
    }
    searcher->AddFeedback(user.GroundTruthFeedback(outside));
    searcher.reset();  // must drain the stale task
  }                    // pool shutdown must see no new submissions
}

TEST(PrefetchTest, BudgetCapsAcquisitions) {
  PrefetchBudget budget(2);
  EXPECT_TRUE(budget.TryAcquire());
  EXPECT_TRUE(budget.TryAcquire());
  EXPECT_FALSE(budget.TryAcquire());
  budget.Release();
  EXPECT_TRUE(budget.TryAcquire());
  budget.Release();
  budget.Release();
  EXPECT_EQ(budget.in_flight(), 0u);

  PrefetchBudget unlimited(0);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(unlimited.TryAcquire());
}

TEST(PrefetchTest, ManagedSessionsWithPrefetchMatchBaseline) {
  // End to end through the serving layer: a service configured with
  // prefetch on (and a tight cross-session budget) must reproduce the
  // prefetch-off results exactly, under concurrent drivers and think time.
  auto profile = data::CocoLikeProfile(0.05);
  profile.embedding_dim = 32;
  auto ds = data::Dataset::Generate(profile);
  ASSERT_TRUE(ds.ok());

  auto make_service = [&](bool prefetch_on) {
    ServiceOptions options;
    options.preprocess.multiscale.enabled = false;
    options.preprocess.build_md = false;
    options.session_threads = 3;
    options.search.update_query = false;  // zero-shot: speculation-friendly
    options.search.prefetch.enabled = prefetch_on;
    options.search.prefetch.max_in_flight = 2;
    auto svc = SeeSawService::Create(*ds, options);
    EXPECT_TRUE(svc.ok());
    return std::make_unique<SeeSawService>(std::move(*svc));
  };

  auto concepts = ds->EvaluableConcepts(3);
  ASSERT_FALSE(concepts.empty());
  if (concepts.size() > 4) concepts.resize(4);
  eval::TaskOptions task;
  task.target_positives = 3;
  task.max_images = 24;
  task.batch_size = 6;
  task.think_seconds_per_image = 0.002;

  auto off = make_service(false);
  auto on = make_service(true);
  auto run_off = eval::RunManagedBenchmark(*off, *ds, concepts, task);
  auto run_on = eval::RunManagedBenchmark(*on, *ds, concepts, task);
  ASSERT_EQ(run_off.results.size(), run_on.results.size());
  for (size_t i = 0; i < run_off.results.size(); ++i) {
    EXPECT_EQ(run_off.results[i].relevance, run_on.results[i].relevance);
    EXPECT_EQ(run_off.results[i].found, run_on.results[i].found);
    EXPECT_EQ(run_off.results[i].inspected, run_on.results[i].inspected);
    EXPECT_DOUBLE_EQ(run_off.results[i].ap, run_on.results[i].ap);
  }
  EXPECT_EQ(on->sessions().prefetches_in_flight(), 0u);
  EXPECT_EQ(on->sessions().prefetch_policy().max_in_flight, 2u);
}

}  // namespace
}  // namespace seesaw::core
