#include <gtest/gtest.h>

#include "clip/concept_space.h"
#include "common/rng.h"
#include "store/exact_store.h"
#include "store/ivf_index.h"

namespace seesaw::store {
namespace {

using linalg::MatrixF;
using linalg::VectorF;

MatrixF ClusteredTable(size_t n, size_t d, size_t centers, uint64_t seed) {
  Rng rng(seed);
  std::vector<VectorF> mu;
  for (size_t c = 0; c < centers; ++c) {
    mu.push_back(clip::RandomUnitVector(rng, d));
  }
  MatrixF table(n, d);
  for (size_t i = 0; i < n; ++i) {
    auto row = table.MutableRow(i);
    const VectorF& center = mu[i % centers];
    for (size_t j = 0; j < d; ++j) {
      row[j] = center[j] + 0.25f * static_cast<float>(rng.Gaussian());
    }
    linalg::NormalizeInPlace(row);
  }
  return table;
}

TEST(IvfFlatTest, ValidatesInput) {
  EXPECT_FALSE(IvfFlatIndex::Build({}, MatrixF()).ok());
}

TEST(IvfFlatTest, DefaultListCountIsSqrtN) {
  auto index = IvfFlatIndex::Build({}, ClusteredTable(400, 8, 4, 1));
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->num_lists(), 20u);
}

TEST(IvfFlatTest, ProbingAllListsIsExact) {
  MatrixF table = ClusteredTable(500, 16, 8, 2);
  auto exact = ExactStore::Create(table);
  IvfOptions options;
  options.num_lists = 10;
  options.nprobe = 10;  // scan everything
  auto ivf = IvfFlatIndex::Build(options, std::move(table));
  ASSERT_TRUE(exact.ok());
  ASSERT_TRUE(ivf.ok());
  Rng rng(3);
  for (int t = 0; t < 10; ++t) {
    VectorF q = clip::RandomUnitVector(rng, 16);
    auto et = exact->TopK(q, 10);
    auto it = ivf->TopK(q, 10);
    EXPECT_DOUBLE_EQ(RecallAgainst(it, et), 1.0);
  }
}

TEST(IvfFlatTest, MoreProbesImproveRecall) {
  MatrixF table = ClusteredTable(3000, 24, 30, 4);
  auto exact = ExactStore::Create(table);
  double prev_recall = -1;
  for (size_t nprobe : {1u, 4u, 16u}) {
    IvfOptions options;
    options.num_lists = 32;
    options.nprobe = nprobe;
    auto ivf = IvfFlatIndex::Build(options, table);
    ASSERT_TRUE(ivf.ok());
    Rng rng(5);
    double recall = 0;
    const int queries = 30;
    for (int t = 0; t < queries; ++t) {
      size_t pick = static_cast<size_t>(rng.UniformInt(0, 2999));
      VectorF q(exact->GetVector(static_cast<uint32_t>(pick)).begin(),
                exact->GetVector(static_cast<uint32_t>(pick)).end());
      recall += RecallAgainst(ivf->TopK(q, 10), exact->TopK(q, 10));
    }
    recall /= queries;
    EXPECT_GE(recall, prev_recall);
    prev_recall = recall;
  }
  EXPECT_GE(prev_recall, 0.95);  // nprobe=16 of 32 lists on clustered data
}

TEST(IvfFlatTest, ExclusionWorks) {
  auto ivf = IvfFlatIndex::Build({}, ClusteredTable(300, 8, 3, 6));
  ASSERT_TRUE(ivf.ok());
  VectorF q(ivf->GetVector(5).begin(), ivf->GetVector(5).end());
  SeenSet seen(300);
  for (uint32_t id = 0; id < 100; ++id) seen.Set(id);
  auto hits = ivf->TopK(q, 10, seen);
  for (const auto& h : hits) EXPECT_GE(h.id, 100u);
}

TEST(IvfFlatTest, DeterministicGivenSeed) {
  MatrixF table = ClusteredTable(600, 12, 6, 7);
  auto a = IvfFlatIndex::Build({}, table);
  auto b = IvfFlatIndex::Build({}, std::move(table));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  Rng rng(8);
  VectorF q = clip::RandomUnitVector(rng, 12);
  auto ha = a->TopK(q, 8);
  auto hb = b->TopK(q, 8);
  ASSERT_EQ(ha.size(), hb.size());
  for (size_t i = 0; i < ha.size(); ++i) EXPECT_EQ(ha[i].id, hb[i].id);
}

}  // namespace
}  // namespace seesaw::store
