// SessionManager lifecycle edge cases: idle-TTL eviction (including its
// race with in-flight requests), per-user session quotas, and the
// per-session in-flight cap behind graceful shedding — the contracts the
// serving front end (src/net) is built on. TTL tests drive a fake clock via
// set_clock_for_testing, so nothing here sleeps.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "core/session_manager.h"
#include "data/profiles.h"

namespace seesaw {
namespace {

data::DatasetProfile SmallBdd() {
  auto p = data::BddLikeProfile(0.05);
  p.embedding_dim = 32;
  return p;
}

struct ServiceFixture {
  ServiceFixture() {
    auto ds = data::Dataset::Generate(SmallBdd());
    SEESAW_CHECK(ds.ok());
    dataset = std::make_unique<data::Dataset>(std::move(*ds));
    core::ServiceOptions options;
    options.preprocess.md.k = 5;
    options.session_threads = 2;
    auto svc = core::SeeSawService::Create(*dataset, options);
    SEESAW_CHECK(svc.ok());
    service = std::make_unique<core::SeeSawService>(std::move(*svc));
  }

  std::unique_ptr<data::Dataset> dataset;
  std::unique_ptr<core::SeeSawService> service;
};

ServiceFixture& Fixture() {
  static ServiceFixture* fixture = new ServiceFixture();
  return *fixture;
}

/// A manager with the given limits and a manually advanced clock.
struct ManagerWithClock {
  explicit ManagerWithClock(const core::SessionLimits& limits)
      : manager(*Fixture().service, /*num_threads=*/2, {}, limits) {
    manager.set_clock_for_testing([this] { return now_ns.load(); });
  }
  void AdvanceSeconds(double s) {
    now_ns.fetch_add(static_cast<int64_t>(s * 1e9));
  }
  std::atomic<int64_t> now_ns{0};
  core::SessionManager manager;
};

TEST(SessionTtlTest, IdleSessionIsEvicted) {
  core::SessionLimits limits;
  limits.idle_ttl_seconds = 10.0;
  ManagerWithClock m(limits);

  auto id = m.manager.CreateSession("car");
  ASSERT_TRUE(id.ok());

  m.AdvanceSeconds(5);
  EXPECT_EQ(m.manager.SweepIdle(), 0u);  // not idle long enough
  EXPECT_NE(m.manager.Find(*id), nullptr);

  m.AdvanceSeconds(6);
  EXPECT_EQ(m.manager.SweepIdle(), 1u);
  EXPECT_EQ(m.manager.Find(*id), nullptr);
  EXPECT_EQ(m.manager.lifecycle_stats().evicted, 1u);
}

TEST(SessionTtlTest, TouchAndAcquireRefreshTheClock) {
  core::SessionLimits limits;
  limits.idle_ttl_seconds = 10.0;
  ManagerWithClock m(limits);

  auto touched = m.manager.CreateSession("car");
  auto acquired = m.manager.CreateSession("car");
  ASSERT_TRUE(touched.ok());
  ASSERT_TRUE(acquired.ok());

  m.AdvanceSeconds(8);
  EXPECT_TRUE(m.manager.Touch(*touched));
  {
    auto lease = m.manager.Acquire(*acquired);
    ASSERT_TRUE(lease.ok());
  }
  m.AdvanceSeconds(8);  // 16s since create, 8s since refresh
  EXPECT_EQ(m.manager.SweepIdle(), 0u);

  m.AdvanceSeconds(3);  // 11s since refresh
  EXPECT_EQ(m.manager.SweepIdle(), 2u);
  EXPECT_FALSE(m.manager.Touch(*touched));
}

TEST(SessionTtlTest, InFlightLeaseBlocksEviction) {
  // The eviction/in-flight race: a session whose NextBatch is mid-request
  // when the sweep fires must not be evicted out from under it.
  core::SessionLimits limits;
  limits.idle_ttl_seconds = 10.0;
  ManagerWithClock m(limits);

  auto id = m.manager.CreateSession("car");
  ASSERT_TRUE(id.ok());

  auto lease = m.manager.Acquire(*id);
  ASSERT_TRUE(lease.ok());
  m.AdvanceSeconds(100);  // way past the TTL, but a request is in flight
  EXPECT_EQ(m.manager.SweepIdle(), 0u);
  EXPECT_NE(m.manager.Find(*id), nullptr);

  // The in-flight request still works mid-sweep-attempt.
  EXPECT_FALSE((*lease)->NextBatch(3).empty());

  // Release; now idle-since-last-Acquire is 100s and the sweep takes it.
  lease->Reset();
  EXPECT_EQ(m.manager.SweepIdle(), 1u);
  EXPECT_EQ(m.manager.Find(*id), nullptr);
}

TEST(SessionTtlTest, EvictedSessionStaysValidForHeldPointers) {
  core::SessionLimits limits;
  limits.idle_ttl_seconds = 1.0;
  ManagerWithClock m(limits);

  auto id = m.manager.CreateSession("car");
  ASSERT_TRUE(id.ok());
  std::shared_ptr<core::SeeSawSearcher> held = m.manager.Find(*id);
  ASSERT_NE(held, nullptr);

  m.AdvanceSeconds(5);
  EXPECT_EQ(m.manager.SweepIdle(), 1u);
  // Eviction unregisters; it never frees a session someone still holds.
  EXPECT_FALSE(held->NextBatch(3).empty());
}

TEST(SessionTtlTest, ZeroTtlNeverEvicts) {
  ManagerWithClock m({});  // all limits off
  auto id = m.manager.CreateSession("car");
  ASSERT_TRUE(id.ok());
  m.AdvanceSeconds(1e6);
  EXPECT_EQ(m.manager.SweepIdle(), 0u);
  EXPECT_NE(m.manager.Find(*id), nullptr);
}

TEST(SessionQuotaTest, PerUserQuotaIsTypedAndReleased) {
  core::SessionLimits limits;
  limits.max_sessions_per_user = 2;
  core::SessionManager manager(*Fixture().service, 2, {}, limits);

  auto a = manager.CreateSession("car", "alice");
  auto b = manager.CreateSession("car", "alice");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(manager.SessionsForUser("alice"), 2u);

  // Third for the same user: typed ResourceExhausted, counted in stats.
  auto c = manager.CreateSession("car", "alice");
  ASSERT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(manager.lifecycle_stats().quota_rejected, 1u);

  // A different user is unaffected.
  auto d = manager.CreateSession("car", "bob");
  EXPECT_TRUE(d.ok());

  // Closing releases the slot.
  ASSERT_TRUE(manager.Close(*a).ok());
  EXPECT_EQ(manager.SessionsForUser("alice"), 1u);
  EXPECT_TRUE(manager.CreateSession("car", "alice").ok());
}

TEST(SessionQuotaTest, EvictionReleasesQuotaSlots) {
  core::SessionLimits limits;
  limits.max_sessions_per_user = 1;
  limits.idle_ttl_seconds = 10.0;
  ManagerWithClock m(limits);

  ASSERT_TRUE(m.manager.CreateSession("car", "alice").ok());
  ASSERT_FALSE(m.manager.CreateSession("car", "alice").ok());

  m.AdvanceSeconds(60);
  EXPECT_EQ(m.manager.SweepIdle(), 1u);
  // The TTL eviction freed alice's quota slot.
  EXPECT_TRUE(m.manager.CreateSession("car", "alice").ok());
}

TEST(SessionBusyTest, InFlightCapShedsAndRecovers) {
  core::SessionLimits limits;
  limits.max_inflight_per_session = 1;
  core::SessionManager manager(*Fixture().service, 2, {}, limits);

  auto id = manager.CreateSession("car");
  ASSERT_TRUE(id.ok());

  auto first = manager.Acquire(*id);
  ASSERT_TRUE(first.ok());

  // Second concurrent request: typed busy rejection (the server maps this
  // to RETRY_LATER), nothing queued, nothing blocked.
  auto second = manager.Acquire(*id);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(manager.lifecycle_stats().busy_rejected, 1u);

  // Shed-then-retry: once the first request finishes, the retry is admitted.
  first->Reset();
  auto retry = manager.Acquire(*id);
  ASSERT_TRUE(retry.ok());
  EXPECT_FALSE((*retry)->NextBatch(3).empty());
}

TEST(SessionBusyTest, LeaseMoveTransfersTheSlot) {
  core::SessionLimits limits;
  limits.max_inflight_per_session = 1;
  core::SessionManager manager(*Fixture().service, 2, {}, limits);

  auto id = manager.CreateSession("car");
  ASSERT_TRUE(id.ok());

  core::SessionLease moved;
  {
    auto lease = manager.Acquire(*id);
    ASSERT_TRUE(lease.ok());
    moved = std::move(*lease);
  }  // the moved-from lease must NOT release the slot
  EXPECT_TRUE(moved.valid());
  EXPECT_FALSE(manager.Acquire(*id).ok());  // still held by `moved`

  moved.Reset();
  EXPECT_TRUE(manager.Acquire(*id).ok());
}

TEST(SessionBusyTest, AcquireUnknownIsNotFound) {
  core::SessionManager manager(*Fixture().service, 2);
  auto lease = manager.Acquire(999999);
  ASSERT_FALSE(lease.ok());
  EXPECT_TRUE(lease.status().IsNotFound());
  EXPECT_FALSE(manager.Touch(999999));
}

TEST(SessionLifecycleConcurrencyTest, LeaseCounterBalancedUnderChurn) {
  // Stress coverage for the CHECK-enforced balance invariant in
  // SessionLease::Reset (the relaxed fetch_sub must never underflow): many
  // threads churning acquire/move/reset/destroy against a cap-2 session.
  // Any double release trips SEESAW_CHECK_GT inside Reset and aborts the
  // test; at the end the counter must read exactly zero — a stuck slot
  // would brick the session as "forever busy".
  core::SessionLimits limits;
  limits.max_inflight_per_session = 2;
  core::SessionManager manager(*Fixture().service, 2, {}, limits);
  auto id = manager.CreateSession("car");
  ASSERT_TRUE(id.ok());

  constexpr int kThreads = 4;
  constexpr int kItersPerThread = 400;
  std::atomic<size_t> admitted{0};
  std::atomic<size_t> shed{0};
  std::vector<std::thread> churn;
  for (int t = 0; t < kThreads; ++t) {
    churn.emplace_back([&, t] {
      for (int i = 0; i < kItersPerThread; ++i) {
        auto lease = manager.Acquire(*id);
        if (!lease.ok()) {
          shed.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        admitted.fetch_add(1, std::memory_order_relaxed);
        switch ((t + i) % 3) {
          case 0:
            lease->Reset();       // explicit early release
            lease->Reset();       // second Reset on an empty lease: no-op
            break;
          case 1: {
            core::SessionLease moved = std::move(*lease);
            moved.Reset();        // release through the move target
            break;
          }
          default:
            break;                // release via ~SessionLease
        }
      }
    });
  }
  for (auto& th : churn) th.join();

  // Balanced: every admitted lease released exactly once, so the session
  // admits `max_inflight_per_session` fresh leases again.
  EXPECT_GT(admitted.load(), 0u);
  auto a = manager.Acquire(*id);
  auto b = manager.Acquire(*id);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_FALSE(manager.Acquire(*id).ok());  // cap still enforced exactly
}

TEST(SessionLifecycleConcurrencyTest, SweepsRaceCreatesAndAcquires) {
  // Hammer create/acquire/sweep from several threads under a TTL so short
  // every sweep evicts something; TSan (this suite carries the concurrency
  // label) checks the registry locking, and the counters must balance.
  core::SessionLimits limits;
  limits.idle_ttl_seconds = 1e-9;  // everything not in flight is evictable
  limits.max_inflight_per_session = 1;
  core::SessionManager manager(*Fixture().service, 2, {}, limits);

  constexpr int kThreads = 4;
  constexpr int kIters = 25;
  std::atomic<size_t> created{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&manager, &created] {
      for (int i = 0; i < kIters; ++i) {
        auto id = manager.CreateSession("car");
        if (!id.ok()) continue;
        created.fetch_add(1);
        auto lease = manager.Acquire(*id);
        if (lease.ok()) {
          (*lease)->NextBatch(2);
        }
        manager.SweepIdle();
      }
    });
  }
  for (auto& th : threads) th.join();
  manager.SweepIdle();

  auto stats = manager.lifecycle_stats();
  EXPECT_EQ(stats.created, created.load());
  // Every created session was either evicted or is still live.
  EXPECT_EQ(stats.created, stats.evicted + manager.num_sessions());
}

}  // namespace
}  // namespace seesaw
