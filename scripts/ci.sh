#!/usr/bin/env bash
# ci.sh — configure, build, and test exactly as the tier-1 verify does.
#
# Usage: ./scripts/ci.sh [--tsan]
#
# --tsan additionally builds a ThreadSanitizer configuration
# (CMAKE_BUILD_TYPE=Tsan, see the top-level CMakeLists) and runs the
# concurrency suites — thread pool, sessions, batched lookups, prefetch —
# under it.
set -euo pipefail

SCRIPT_DIR="$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)"
REPO_ROOT="$(dirname "$SCRIPT_DIR")"
cd "$REPO_ROOT"

RUN_TSAN=0
for arg in "$@"; do
  case "$arg" in
    --tsan) RUN_TSAN=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

cmake -B build -S .
cmake --build build -j
(cd build && ctest --output-on-failure -j)

if [[ "$RUN_TSAN" == 1 ]]; then
  echo "=== ThreadSanitizer pass ==="
  cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=Tsan \
        -DSEESAW_BUILD_BENCH=OFF -DSEESAW_BUILD_EXAMPLES=OFF
  cmake --build build-tsan -j
  (cd build-tsan &&
   ctest --output-on-failure -j \
         -R '^(common_test|session_manager_test|topk_batch_test|prefetch_test)$')
fi
