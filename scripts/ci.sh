#!/usr/bin/env bash
# ci.sh — configure, build, and test exactly as the tier-1 verify does.
#
# Usage: ./scripts/ci.sh
set -euo pipefail

SCRIPT_DIR="$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)"
REPO_ROOT="$(dirname "$SCRIPT_DIR")"
cd "$REPO_ROOT"

cmake -B build -S .
cmake --build build -j
cd build
ctest --output-on-failure -j
