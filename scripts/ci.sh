#!/usr/bin/env bash
# ci.sh — configure, build, and test exactly as the tier-1 verify does.
#
# Usage: ./scripts/ci.sh [--native] [--tsan] [--asan] [--lint] [--skip-base]
#
# Base pass (default): generic Release configure + build + full ctest, plus a
# SEESAW_FORCE_KERNEL=scalar re-run of the kernel-sensitive suites so the
# env-pinned scalar dispatch path is proven end-to-end on every run.
#
# --native   additionally builds with SEESAW_ENABLE_NATIVE_ARCH=ON
#            (-march=native) in build-native and runs the full suite there —
#            the runtime SIMD dispatch must stay bitwise-correct even when
#            the surrounding code is host-tuned.
# --tsan     additionally builds CMAKE_BUILD_TYPE=Tsan in build-tsan and runs
#            the suites labeled `concurrency` (see SEESAW_CONCURRENCY_TESTS
#            in CMakeLists.txt) under ThreadSanitizer.
# --asan     additionally builds CMAKE_BUILD_TYPE=Asan (AddressSanitizer +
#            UBSan) in build-asan and runs the full suite — remainder-lane
#            intrinsics bugs are exactly what this leg catches.
# --lint     runs scripts/run_lint.sh: the SeeSaw invariant linter, a clang
#            -Wthread-safety -Werror build of src/, and clang-tidy. Fails
#            fast with an install hint if clang/clang-tidy are missing
#            (run_lint.sh --invariants-only covers clang-less hosts).
# --skip-base  skip the base pass (for CI matrix legs that only want one of
#            the configurations above).
set -euo pipefail

SCRIPT_DIR="$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)"
REPO_ROOT="$(dirname "$SCRIPT_DIR")"
cd "$REPO_ROOT"

RUN_BASE=1
RUN_NATIVE=0
RUN_TSAN=0
RUN_ASAN=0
RUN_LINT=0
for arg in "$@"; do
  case "$arg" in
    --native) RUN_NATIVE=1 ;;
    --tsan) RUN_TSAN=1 ;;
    --asan) RUN_ASAN=1 ;;
    --lint) RUN_LINT=1 ;;
    --skip-base) RUN_BASE=0 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

if [[ "$RUN_LINT" == 1 ]]; then
  echo "=== Lint pass (invariants + thread-safety + clang-tidy) ==="
  ./scripts/run_lint.sh
fi

if [[ "$RUN_BASE" == 1 ]]; then
  echo "=== Base pass (Release, generic) ==="
  cmake -B build -S .
  cmake --build build -j
  (cd build && ctest --output-on-failure -j)
  echo "=== Forced-scalar dispatch pass ==="
  # Suite selection lives in SEESAW_KERNEL_TESTS (CMakeLists.txt) — same
  # label convention as the TSan leg, so new kernel-sensitive suites can't
  # be silently skipped here.
  (cd build &&
   SEESAW_FORCE_KERNEL=scalar ctest --output-on-failure -L kernel -j)
fi

if [[ "$RUN_NATIVE" == 1 ]]; then
  echo "=== Native-arch pass (SEESAW_ENABLE_NATIVE_ARCH=ON) ==="
  cmake -B build-native -S . -DSEESAW_ENABLE_NATIVE_ARCH=ON
  cmake --build build-native -j
  (cd build-native && ctest --output-on-failure -j)
fi

if [[ "$RUN_TSAN" == 1 ]]; then
  echo "=== ThreadSanitizer pass ==="
  cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=Tsan \
        -DSEESAW_BUILD_BENCH=OFF -DSEESAW_BUILD_EXAMPLES=OFF
  cmake --build build-tsan -j
  (cd build-tsan && ctest --output-on-failure -L concurrency -j)
fi

if [[ "$RUN_ASAN" == 1 ]]; then
  echo "=== AddressSanitizer+UBSan pass ==="
  cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=Asan \
        -DSEESAW_BUILD_BENCH=OFF -DSEESAW_BUILD_EXAMPLES=OFF
  cmake --build build-asan -j
  (cd build-asan && ctest --output-on-failure -j)
fi
