#!/usr/bin/env bash
# run_memory_smoke.sh — CI smoke for the memory-audit invariants, as run by
# the CI generic leg:
#
#   1. runs build/diag_memory --json (small sizes — this is a correctness
#      smoke, not a measurement run; diag_memory itself already exits
#      non-zero on a violated invariant);
#   2. re-asserts the portable invariants from the emitted JSON, so a
#      future edit that weakens diag_memory's own gating still fails here:
#        - placement parity: placed-vs-unplaced results bitwise identical
#          (on a single-node runner this also exercises the degrade-to-no-op
#          fallback — placement must report false, never error);
#        - steady-state scratch: warm serial TopKBatch calls create zero
#          arenas, and the pooled loop stays within the peak-lease bound;
#        - churn fix: the arena arm of the A/B does zero allocations/iter.
#
# Host-dependent numbers (alignment timings, hardware counters, fault
# deltas) are printed but never gated — single-core or PMU-less runners
# must pass. Usage: ./scripts/run_memory_smoke.sh  (env: BUILD_DIR)
set -euo pipefail

SCRIPT_DIR="$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)"
REPO_ROOT="$(dirname "$SCRIPT_DIR")"
BUILD_DIR="${BUILD_DIR:-$REPO_ROOT/build}"
DIAG="$BUILD_DIR/diag_memory"

if [[ ! -x "$DIAG" ]]; then
    echo "building diag_memory ..." >&2
    cmake -B "$BUILD_DIR" -S "$REPO_ROOT" > /dev/null
    cmake --build "$BUILD_DIR" --target diag_memory -j > /dev/null
fi

REPORT="$(mktemp /tmp/diag_memory.XXXXXX.json)"
trap 'rm -f "$REPORT"' EXIT

if ! OUT="$("$DIAG" --json --spins=500000 --churn-iters=50 --rows=6000)"; then
    printf '%s\n' "$OUT"
    echo "memory smoke: diag_memory failed its own invariants" >&2
    exit 1
fi
printf '%s\n' "$OUT"
printf '%s\n' "$OUT" | grep '^JSON' | sed 's/^JSON//' > "$REPORT"

python3 - "$REPORT" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    report = json.load(f)
churn = report["churn"]
placement = report["placement"]

failures = []
if not placement["bitwise_equal"]:
    failures.append("placed scan diverged from unplaced")
if not report["numa_available"] and placement["placed"]:
    failures.append("placement claims success on a host without NUMA")
if not churn["scan_serial_flat"]:
    failures.append("warm serial TopKBatch calls still create arenas")
if churn["scan_arenas_created"] > churn["scan_arena_bound"]:
    failures.append(
        "pooled TopKBatch arenas %d exceed bound %d"
        % (churn["scan_arenas_created"], churn["scan_arena_bound"]))
if churn["arena_allocs_per_iter"] != 0:
    failures.append(
        "arena arm allocates %d/iter (want 0)" % churn["arena_allocs_per_iter"])

for failure in failures:
    print("memory smoke FAIL:", failure, file=sys.stderr)
if failures:
    sys.exit(1)
print("memory smoke: all invariants hold "
      "(numa_available=%s, hardware_counters=%s)"
      % (report["numa_available"], report["hardware_counters"]))
EOF
