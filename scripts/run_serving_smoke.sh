#!/usr/bin/env bash
# run_serving_smoke.sh — end-to-end smoke of the TCP serving path, as run by
# the CI generic leg:
#
#   1. starts build/seesaw_server on loopback (ephemeral port) and waits for
#      its "LISTENING <port>" line;
#   2. drives bench_serving --gate against it over --connect: the gate
#      replays the managed in-process benchmark over the wire and fails on
#      any parity mismatch, protocol error, or shed at this low load;
#   3. writes the gate's JSON (perceived-latency percentiles, shed rate,
#      churn) to --out (default: BENCH_serving.json in the repo root — in CI
#      that is the uploaded artifact, locally it overwrites the committed
#      baseline only if you point it there).
#
# The server and the bench must agree on --scale/--dim: both generate the
# same deterministic dataset, which is what makes wire-vs-in-process parity
# checkable at all.
#
# Usage:
#   ./scripts/run_serving_smoke.sh [--sessions N] [--rounds N] [--out FILE]
# Env: BUILD_DIR (default: <repo>/build), SERVING_SMOKE_SCALE/DIM.
set -euo pipefail

SCRIPT_DIR="$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)"
REPO_ROOT="$(dirname "$SCRIPT_DIR")"
BUILD_DIR="${BUILD_DIR:-$REPO_ROOT/build}"

SESSIONS=64
ROUNDS=3
SCALE="${SERVING_SMOKE_SCALE:-0.05}"
DIM="${SERVING_SMOKE_DIM:-32}"
OUT="$REPO_ROOT/BENCH_serving.json"

while [[ $# -gt 0 ]]; do
    case "$1" in
        --sessions) SESSIONS="$2"; shift 2 ;;
        --rounds)   ROUNDS="$2"; shift 2 ;;
        --out)      OUT="$2"; shift 2 ;;
        *) echo "unknown option: $1" >&2; exit 2 ;;
    esac
done

build_target() {
    echo "building $1 ..." >&2
    cmake -B "$BUILD_DIR" -S "$REPO_ROOT" > /dev/null
    cmake --build "$BUILD_DIR" --target "$1" -j > /dev/null
}
[[ -x "$BUILD_DIR/seesaw_server" ]] || build_target seesaw_server
[[ -x "$BUILD_DIR/bench_serving" ]] || build_target bench_serving

SERVER_LOG="$(mktemp)"
SERVER_PID=""
cleanup() {
    if [[ -n "$SERVER_PID" ]] && kill -0 "$SERVER_PID" 2>/dev/null; then
        kill -TERM "$SERVER_PID" 2>/dev/null || true
        wait "$SERVER_PID" 2>/dev/null || true
    fi
    rm -f "${SERVER_LOG:-}"
}
trap cleanup EXIT

echo "== starting seesaw_server (scale=$SCALE dim=$DIM) ==" >&2
"$BUILD_DIR/seesaw_server" --port=0 --scale="$SCALE" --dim="$DIM" \
    > "$SERVER_LOG" 2>&1 &
SERVER_PID=$!

# Dataset generation + preprocessing happens before the bind; allow time.
PORT=""
for _ in $(seq 1 1200); do
    PORT="$(awk '/^LISTENING /{print $2; exit}' "$SERVER_LOG")"
    [[ -n "$PORT" ]] && break
    if ! kill -0 "$SERVER_PID" 2>/dev/null; then
        echo "seesaw_server exited before listening:" >&2
        cat "$SERVER_LOG" >&2
        exit 1
    fi
    sleep 0.1
done
if [[ -z "$PORT" ]]; then
    echo "timed out waiting for LISTENING line:" >&2
    cat "$SERVER_LOG" >&2
    exit 1
fi
echo "== server up on 127.0.0.1:$PORT; running gate ==" >&2

"$BUILD_DIR/bench_serving" --gate --json \
    --sessions="$SESSIONS" --rounds="$ROUNDS" \
    --scale="$SCALE" --dim="$DIM" \
    --connect="127.0.0.1:$PORT" > "$OUT"

echo "serving gate passed; JSON written to $OUT" >&2
