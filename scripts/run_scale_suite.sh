#!/usr/bin/env bash
# run_scale_suite.sh — million-row scale sweep: bench_scale over --sizes x
# {float32, int8} x --shards with p50/p95/p99 latencies, wrapped into a
# machine-readable BENCH_scale.json baseline that future PRs can diff
# against.
#
# The bench binary itself enforces the two-tier parity contract at full
# scale before any timing is reported: int8 recall@k vs the fp32 scan must
# clear --min-recall (cross-family gate), and the forced-scalar int8 kernel
# must agree bitwise with the dispatched SIMD int8 kernel (within-family
# gate). A gate failure aborts the bench, which fails this script.
#
# Default sizes: 1M, 4M, 16M rows (bench_scale streams table generation
# through a temp file in --tmpdir, so peak memory is one fp32 table + one
# int8 table for the current size, not the sum of all sizes).
#
# Usage:
#   ./scripts/run_scale_suite.sh [--sizes 1M,4M,16M] [--dim D] [--k K]
#                                [--batch B] [--warmup N] [--iters N]
#                                [--threads T] [--shards 0,8]
#                                [--min-shard-rows N] [--centers N]
#                                [--policy-seen F] [--min-recall F]
#                                [--tmpdir DIR] [--out BENCH_scale.json]
#                                [--gate] [--gate-min-speedup F]
#                                [--gate-min-rows-per-sec N]
#
# --gate additionally asserts (via python3) that every unsharded int8 scan
# row clears the speedup floor vs fp32 (default 1.5x — the CI smoke floor;
# the committed baseline on a VNNI/AVX2 host shows >2x) and an absolute
# throughput floor (default 2M rows/s, lax enough for shared CI runners but
# fatal for a scalar-dispatch or quadratic regression).
set -euo pipefail

SCRIPT_DIR="$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)"
REPO_ROOT="$(dirname "$SCRIPT_DIR")"
BUILD_DIR="${BUILD_DIR:-$REPO_ROOT/build}"
BENCH="$BUILD_DIR/bench_scale"

SIZES="1M,4M,16M"
DIM=128
K=100
BATCH=8
WARMUP=1
ITERS=5
THREADS=0
SHARDS="0,8"
MIN_SHARD_ROWS=4096
CENTERS=0
POLICY_SEEN=0.9
MIN_RECALL=0.99
TMPDIR_ARG="${TMPDIR:-/tmp}"
OUT="$REPO_ROOT/BENCH_scale.json"
GATE=0
GATE_MIN_SPEEDUP=1.5
GATE_MIN_ROWS_PER_SEC=2000000

while [[ $# -gt 0 ]]; do
    case "$1" in
        --sizes)           SIZES="$2"; shift 2 ;;
        --dim)             DIM="$2"; shift 2 ;;
        --k)               K="$2"; shift 2 ;;
        --batch)           BATCH="$2"; shift 2 ;;
        --warmup)          WARMUP="$2"; shift 2 ;;
        --iters)           ITERS="$2"; shift 2 ;;
        --threads)         THREADS="$2"; shift 2 ;;
        --shards)          SHARDS="$2"; shift 2 ;;
        --min-shard-rows)  MIN_SHARD_ROWS="$2"; shift 2 ;;
        --centers)         CENTERS="$2"; shift 2 ;;
        --policy-seen)     POLICY_SEEN="$2"; shift 2 ;;
        --min-recall)      MIN_RECALL="$2"; shift 2 ;;
        --tmpdir)          TMPDIR_ARG="$2"; shift 2 ;;
        --out)             OUT="$2"; shift 2 ;;
        --gate)            GATE=1; shift ;;
        --gate-min-speedup)      GATE_MIN_SPEEDUP="$2"; shift 2 ;;
        --gate-min-rows-per-sec) GATE_MIN_ROWS_PER_SEC="$2"; shift 2 ;;
        *)
            echo "unknown option: $1" >&2
            exit 1
            ;;
    esac
done

if [[ ! -x "$BENCH" ]]; then
    echo "building bench_scale ..." >&2
    cmake -B "$BUILD_DIR" -S "$REPO_ROOT" > /dev/null
    cmake --build "$BUILD_DIR" --target bench_scale -j > /dev/null
fi

tmp="$(mktemp)"
trap 'rm -f "${tmp:-}"' EXIT

# One bench process per size: a multi-hour 16M run inherits none of the
# allocator/hugepage state the smaller sizes left behind (big freed tables
# fragment the heap and skew timings), and an abort at one size fails the
# script before it can truncate the baseline (direct redirection, not a
# pipe, for the same reason).
rows=""
IFS=',' read -r -a size_tokens <<< "$SIZES"
for size in "${size_tokens[@]}"; do
    size="${size//[[:space:]]/}"
    [[ -z "$size" ]] && continue
    echo "== bench_scale n=$size dim=$DIM k=$K batch=$BATCH shards=$SHARDS ==" >&2
    "$BENCH" --json --sizes="$size" --dim="$DIM" --k="$K" --batch="$BATCH" \
             --warmup="$WARMUP" --iters="$ITERS" --threads="$THREADS" \
             --shards="$SHARDS" --min-shard-rows="$MIN_SHARD_ROWS" \
             --centers="$CENTERS" --policy-seen="$POLICY_SEEN" \
             --min-recall="$MIN_RECALL" --tmpdir="$TMPDIR_ARG" > "$tmp"
    while IFS= read -r line; do
        [[ -z "$line" ]] && continue
        rows="${rows:+$rows,}$line"
    done < "$tmp"
done

printf '{"bench":"scale","meta":{"sizes":"%s","dim":%s,"k":%s,"batch":%s,"warmup":%s,"iters":%s,"threads":%s,"shards":"%s","min_shard_rows":%s,"policy_seen":%s,"min_recall":%s},"rows":[%s]}\n' \
    "$SIZES" "$DIM" "$K" "$BATCH" "$WARMUP" "$ITERS" "$THREADS" "$SHARDS" \
    "$MIN_SHARD_ROWS" "$POLICY_SEEN" "$MIN_RECALL" "$rows" > "$OUT"
echo "scale JSON written to $OUT" >&2

if [[ "$GATE" == 1 ]]; then
    GATE_MIN_SPEEDUP="$GATE_MIN_SPEEDUP" \
    GATE_MIN_ROWS_PER_SEC="$GATE_MIN_ROWS_PER_SEC" \
    MIN_RECALL="$MIN_RECALL" \
    python3 - "$OUT" <<'EOF'
import json, os, sys

doc = json.load(open(sys.argv[1]))
min_speedup = float(os.environ["GATE_MIN_SPEEDUP"])
min_rps = float(os.environ["GATE_MIN_ROWS_PER_SEC"])
min_recall = float(os.environ["MIN_RECALL"])

scans = [r for r in doc["rows"] if r["kind"] == "scan"]
int8 = [r for r in scans
        if r["precision"] == "int8" and r["requested_shards"] == 0]
assert int8, "no unsharded int8 scan rows in the baseline"
for r in int8:
    n = r["n"]
    print(f"n={n}: int8 p50={r['p50_ms']:.1f}ms "
          f"speedup={r['speedup_vs_fp32_p50']:.2f}x "
          f"rows/s={r['rows_per_sec']:.0f} recall={r['recall_at_k']:.4f}")
    assert r["speedup_vs_fp32_p50"] >= min_speedup, (
        f"n={n}: int8 speedup {r['speedup_vs_fp32_p50']:.2f}x "
        f"< floor {min_speedup}x")
    assert r["rows_per_sec"] >= min_rps, (
        f"n={n}: int8 throughput {r['rows_per_sec']:.0f} rows/s "
        f"< floor {min_rps:.0f}")
    assert r["recall_at_k"] >= min_recall, (
        f"n={n}: recall {r['recall_at_k']:.4f} < floor {min_recall}")
print("scale gate passed")
EOF
fi
