#!/usr/bin/env bash
# run_lint.sh — the three static layers of the correctness tooling, in order
# of cost:
#
#   1. scripts/check_invariants.py   — SeeSaw-specific contracts (no deps)
#   2. clang -Wthread-safety -Werror — lock-discipline build over src/
#   3. clang-tidy                    — bugprone/concurrency/performance checks
#
# Usage: ./scripts/run_lint.sh [--invariants-only]
#
# --invariants-only  run only layer 1. For hosts without clang/clang-tidy
#                    (the invariant linter is pure python); CI's lint leg
#                    always runs all three.
#
# Layers 2 and 3 need clang and clang-tidy on PATH; the script fails fast
# with an explicit message if either is missing rather than half-passing.
set -euo pipefail

SCRIPT_DIR="$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)"
REPO_ROOT="$(dirname "$SCRIPT_DIR")"
cd "$REPO_ROOT"

INVARIANTS_ONLY=0
for arg in "$@"; do
  case "$arg" in
    --invariants-only) INVARIANTS_ONLY=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

echo "=== Invariant linter (scripts/check_invariants.py) ==="
python3 scripts/check_invariants.py --self-test
python3 scripts/check_invariants.py

if [[ "$INVARIANTS_ONLY" == 1 ]]; then
  echo "run_lint: invariants-only mode, skipping clang layers."
  exit 0
fi

# Fail fast — a missing tool must read as "install it", never as "lint
# passed". Prefer versioned names if the bare ones are absent.
CLANGXX="$(command -v clang++ || true)"
if [[ -z "$CLANGXX" ]]; then
  for v in 20 19 18 17 16 15 14; do
    CLANGXX="$(command -v "clang++-$v" || true)"
    [[ -n "$CLANGXX" ]] && break
  done
fi
CLANG_TIDY="$(command -v clang-tidy || true)"
if [[ -z "$CLANG_TIDY" ]]; then
  for v in 20 19 18 17 16 15 14; do
    CLANG_TIDY="$(command -v "clang-tidy-$v" || true)"
    [[ -n "$CLANG_TIDY" ]] && break
  done
fi
if [[ -z "$CLANGXX" || -z "$CLANG_TIDY" ]]; then
  echo "run_lint: FAILED — clang++ and clang-tidy are required for the" >&2
  echo "  thread-safety and clang-tidy layers (apt install clang clang-tidy," >&2
  echo "  or run with --invariants-only on hosts without them)." >&2
  [[ -z "$CLANGXX" ]] && echo "  missing: clang++" >&2
  [[ -z "$CLANG_TIDY" ]] && echo "  missing: clang-tidy" >&2
  exit 1
fi
echo "run_lint: using $CLANGXX and $CLANG_TIDY"

echo "=== Thread-safety build (clang -Wthread-safety -Werror) ==="
# Library code only: tests/bench/examples are single-threaded drivers or use
# raw threads deliberately (and the invariant linter gates those separately).
cmake -B build-lint -S . -DCMAKE_CXX_COMPILER="$CLANGXX" \
      -DSEESAW_THREAD_SAFETY_WERROR=ON \
      -DSEESAW_BUILD_TESTS=OFF -DSEESAW_BUILD_BENCH=OFF \
      -DSEESAW_BUILD_EXAMPLES=OFF
cmake --build build-lint -j

echo "=== clang-tidy (src/**/*.cc, warnings-as-errors) ==="
mapfile -t TIDY_SRCS < <(find src -name '*.cc' | sort)
"$CLANG_TIDY" -p build-lint --quiet "${TIDY_SRCS[@]}"

echo "run_lint: all layers clean."
