#!/usr/bin/env bash
# run_remote_smoke.sh — end-to-end smoke of the distributed store path, as
# run by the CI generic leg:
#
#   1. starts N build/seesaw_server processes in shard-serving mode
#      (--serve_store) on loopback ephemeral ports, each owning its
#      PartitionRange slice of the same deterministic table;
#   2. drives build/remote_parity_gate against them: RemoteStore children
#      over real TCP assembled into a ShardedStore, gated BITWISE against a
#      single local ExactStore rebuilt from the same (rows, dim, seed);
#   3. fails on any parity mismatch, connect failure, or scan error — the
#      gate exits non-zero and this script propagates it.
#
# The servers and the gate must agree on --store_rows/--dim/--store_seed/
# --precision: both ends rebuild the same table from those flags, which is
# what makes bitwise remote-vs-local parity checkable at all.
#
# Usage:
#   ./scripts/run_remote_smoke.sh [--shards N] [--rows N] [--precision P]
# Env: BUILD_DIR (default: <repo>/build), REMOTE_SMOKE_DIM/SEED.
set -euo pipefail

SCRIPT_DIR="$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)"
REPO_ROOT="$(dirname "$SCRIPT_DIR")"
BUILD_DIR="${BUILD_DIR:-$REPO_ROOT/build}"

SHARDS=2
ROWS=2000
PRECISION=fp32
DIM="${REMOTE_SMOKE_DIM:-32}"
SEED="${REMOTE_SMOKE_SEED:-7}"
# The session service behind every server is tiny: store mode doesn't use
# it, so don't burn smoke time preprocessing a big one.
SCALE=0.02

while [[ $# -gt 0 ]]; do
    case "$1" in
        --shards)    SHARDS="$2"; shift 2 ;;
        --rows)      ROWS="$2"; shift 2 ;;
        --precision) PRECISION="$2"; shift 2 ;;
        *) echo "unknown option: $1" >&2; exit 2 ;;
    esac
done

build_target() {
    echo "building $1 ..." >&2
    cmake -B "$BUILD_DIR" -S "$REPO_ROOT" > /dev/null
    cmake --build "$BUILD_DIR" --target "$1" -j > /dev/null
}
[[ -x "$BUILD_DIR/seesaw_server" ]] || build_target seesaw_server
[[ -x "$BUILD_DIR/remote_parity_gate" ]] || build_target remote_parity_gate

SERVER_PIDS=()
SERVER_LOGS=()
cleanup() {
    for pid in "${SERVER_PIDS[@]}"; do
        if kill -0 "$pid" 2>/dev/null; then
            kill -TERM "$pid" 2>/dev/null || true
            wait "$pid" 2>/dev/null || true
        fi
    done
    rm -f "${SERVER_LOGS[@]}" 2>/dev/null || true
}
trap cleanup EXIT

echo "== starting $SHARDS shard servers (rows=$ROWS dim=$DIM precision=$PRECISION) ==" >&2
for ((s = 0; s < SHARDS; ++s)); do
    log="$(mktemp)"
    SERVER_LOGS+=("$log")
    "$BUILD_DIR/seesaw_server" --port=0 --scale="$SCALE" --dim="$DIM" \
        --serve_store --shard_index="$s" --num_shards="$SHARDS" \
        --store_rows="$ROWS" --store_seed="$SEED" --precision="$PRECISION" \
        > "$log" 2>&1 &
    SERVER_PIDS+=($!)
done

# Dataset generation happens before the bind; await every LISTENING line.
PORTS=()
for ((s = 0; s < SHARDS; ++s)); do
    port=""
    for _ in $(seq 1 1200); do
        port="$(awk '/^LISTENING /{print $2; exit}' "${SERVER_LOGS[$s]}")"
        [[ -n "$port" ]] && break
        if ! kill -0 "${SERVER_PIDS[$s]}" 2>/dev/null; then
            echo "shard server $s exited before listening:" >&2
            cat "${SERVER_LOGS[$s]}" >&2
            exit 1
        fi
        sleep 0.1
    done
    if [[ -z "$port" ]]; then
        echo "timed out waiting for shard server $s:" >&2
        cat "${SERVER_LOGS[$s]}" >&2
        exit 1
    fi
    PORTS+=("$port")
done

PORT_LIST="$(IFS=,; echo "${PORTS[*]}")"
echo "== shard servers up on ports $PORT_LIST; running parity gate ==" >&2

"$BUILD_DIR/remote_parity_gate" --ports="$PORT_LIST" \
    --store_rows="$ROWS" --dim="$DIM" --store_seed="$SEED" \
    --precision="$PRECISION"

echo "remote store smoke passed ($SHARDS shards, $PRECISION)" >&2
