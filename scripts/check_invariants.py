#!/usr/bin/env python3
"""check_invariants.py — custom linter for SeeSaw-specific contracts.

These are repo invariants no off-the-shelf tool knows about; each one
encodes a rule a past PR established and a future refactor could silently
break. Run from anywhere (the repo root is derived from this file's
location); exits 0 when clean, 1 with one line per violation otherwise.

Rules
  scan-control      Every TopK/TopKBatch override in src/store must thread
                    store::ScanControl — the in-scan cancellation seam (PR 4)
                    that a new backend could quietly drop, turning cancelled
                    speculations back into run-to-completion scans.
  raw-threading     No raw std::thread / std::mutex / std::condition_variable
                    / lock_guard / unique_lock / scoped_lock / detach() in
                    src outside common/ (and none anywhere in bench/ or
                    examples/). Everything must go through the annotated
                    seesaw::Mutex / MutexLock / CondVar / ThreadPool wrappers
                    so the Clang -Wthread-safety analysis can see every
                    acquire. (tests/ may drive raw std::thread — their gate
                    is the concurrency-tests rule below.)
  kernel-libm       Kernel implementation files (src/linalg/kernels_*.cc)
                    must not call libm reductions outside the fixed
                    accumulation spec: std::fmaf is the spec's only sanctioned
                    libm call (single rounding, bitwise-pinned); exp/log/pow/
                    sqrt/tanh or std::accumulate/std::reduce would break the
                    cross-kernel bitwise-parity contract (PR 3).
  concurrency-tests Every test file using ThreadPool — or including the
                    serving/session headers (net/server.h, net/client.h,
                    core/session_manager.h), whose objects spin up pool
                    threads internally — must be registered in
                    SEESAW_CONCURRENCY_TESTS (CMakeLists.txt) so the TSan CI
                    leg runs it — an unregistered suite is concurrency code
                    TSan never sees.
  fault-coverage    Every VectorStore implementation declared in src/net/*.h
                    is remote-backed — its scans can fail in ways no
                    in-process backend can (dead peer, deadline, shed,
                    retries) — so it must have a fault-injection suite: a
                    tests/*.cc that includes its header AND
                    tests/fault_socket.h (the scripted Transport harness)
                    and is registered in SEESAW_CONCURRENCY_TESTS. A remote
                    store whose failure semantics nothing exercises would
                    rot into hangs or silent partials.
  net-sockets       Raw socket/poll syscalls and their headers are confined
                    to src/net/ (PR 8): everything else goes through the
                    SeeSawClient/SeeSawServer seam, so there is exactly one
                    place that owns fd lifetimes, EINTR loops, and SIGPIPE
                    suppression. Scans src/ (minus src/net), bench/, tools/
                    and examples/.
  atomic-layout     Structs/classes in src/ that pack multiple raw
                    std::atomic members together, or mix a Mutex with a raw
                    atomic, are false-sharing hazards (PR 9): contended
                    writers ping-pong the shared cache line, and a mutex's
                    futex word next to a spinning reader's flag degrades
                    both. Such a type must either pad the atomics
                    (CacheAligned<...> / alignas) or carry a
                    "layout-audited:" comment inside the type body
                    documenting why packing is the right call (e.g. cold
                    monotone stat counters). Wrapped/alignas'd atomics don't
                    count as raw; the exemption token is per-type.
  bench-json        Committed BENCH_*.json baselines must parse, carry
                    non-empty "rows", and (for the latency benches
                    BENCH_scale.json / BENCH_topk.json / BENCH_serving.json)
                    every row must carry p50/p95/p99 latency keys — the
                    percentile contract the scale work (PR 6) established for
                    anything claiming a latency number.

Self-test: --self-test seeds one violation per rule into a scratch tree and
asserts the rule catches it (and that a clean miniature tree passes), so the
linter cannot rot into a silent no-op.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _strip_comments(text: str) -> str:
    """Removes // and /* */ comments (so commented-out code can't trip rules)."""
    text = re.sub(r"/\*.*?\*/", "", text, flags=re.DOTALL)
    return re.sub(r"//[^\n]*", "", text)


# --------------------------------------------------------------- scan-control
# Matches a TopK/TopKBatch member declaration/definition up to its parameter
# list, tolerating multi-line parameter lists.
_TOPK_SIG = re.compile(
    r"\b(TopK|TopKBatch)\s*\(([^;{]*?)\)\s*(?:const\s*)?override", re.DOTALL
)


def check_scan_control(root: Path) -> list[str]:
    errors = []
    for path in sorted((root / "src" / "store").glob("*.h")):
        text = _strip_comments(path.read_text())
        for m in _TOPK_SIG.finditer(text):
            name, params = m.group(1), m.group(2)
            if "ScanControl" not in params:
                line = text[: m.start()].count("\n") + 1
                errors.append(
                    f"{path.relative_to(root)}:{line}: [scan-control] "
                    f"{name} override does not take a store::ScanControl — "
                    "in-scan cancellation would be dropped for this backend"
                )
    return errors


# -------------------------------------------------------------- raw-threading
_RAW_THREADING = [
    (re.compile(r"std::thread\b(?!\s*::)"), "std::thread"),
    (re.compile(r"std::jthread\b"), "std::jthread"),
    (re.compile(r"std::(?:timed_|recursive_|shared_)?mutex\b"), "std::mutex"),
    (re.compile(r"std::condition_variable(?:_any)?\b"), "std::condition_variable"),
    (re.compile(r"std::lock_guard\b"), "std::lock_guard"),
    (re.compile(r"std::unique_lock\b"), "std::unique_lock"),
    (re.compile(r"std::scoped_lock\b"), "std::scoped_lock"),
    (re.compile(r"\.detach\s*\(\s*\)"), ".detach()"),
]


def check_raw_threading(root: Path) -> list[str]:
    errors = []
    scan_dirs = [root / "src", root / "bench", root / "examples"]
    for base in scan_dirs:
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in (".h", ".cc", ".cpp"):
                continue
            rel = path.relative_to(root)
            # common/ owns the annotated wrappers and the pool's workers.
            if rel.parts[:2] == ("src", "common"):
                continue
            text = _strip_comments(path.read_text())
            for pattern, label in _RAW_THREADING:
                for m in pattern.finditer(text):
                    line = text[: m.start()].count("\n") + 1
                    errors.append(
                        f"{rel}:{line}: [raw-threading] {label} outside "
                        "src/common — use seesaw::Mutex/MutexLock/CondVar/"
                        "ThreadPool (common/mutex.h) so -Wthread-safety can "
                        "see the acquire"
                    )
    return errors


# ---------------------------------------------------------------- kernel-libm
# The fixed accumulation spec (linalg/simd.h) pins every float operation in
# the scoring kernels; std::fmaf is its one sanctioned libm call. Anything
# else from libm — or a std::accumulate/std::reduce whose association order
# the implementation may choose — would break cross-kernel bitwise parity.
_KERNEL_FORBIDDEN = re.compile(
    r"\bstd::(?:exp|exp2|expm1|log|log2|log10|log1p|pow|sqrt|cbrt|hypot|"
    r"sin|cos|tan|tanh|erf|tgamma|lgamma|accumulate|reduce)\b"
    r"|\b(?:expf|logf|powf|sqrtf|tanhf|hypotf)\s*\("
)


def check_kernel_libm(root: Path) -> list[str]:
    errors = []
    for path in sorted((root / "src" / "linalg").glob("kernels_*.cc")):
        text = _strip_comments(path.read_text())
        for m in _KERNEL_FORBIDDEN.finditer(text):
            line = text[: m.start()].count("\n") + 1
            errors.append(
                f"{path.relative_to(root)}:{line}: [kernel-libm] "
                f"'{m.group(0).strip('(').strip()}' in a kernel file — only "
                "std::fmaf is inside the fixed accumulation spec; other libm "
                "reductions break cross-kernel bitwise parity"
            )
    return errors


# ---------------------------------------------------------------- net-sockets
# The serving front end (src/net) is the single owner of raw sockets: fd
# RAII, EINTR loops, MSG_NOSIGNAL, non-blocking setup. A bench, tool, or
# other src/ layer reaching for the syscalls directly would fork that
# ownership — it must go through net::SeeSawClient / net::SeeSawServer (or
# the net/socket.h helpers) instead.
_SOCKET_HEADER = re.compile(
    r"#\s*include\s*<(?:sys/socket\.h|sys/epoll\.h|sys/select\.h|poll\.h|"
    r"netinet/[^>]+|arpa/inet\.h)>"
)
_SOCKET_CALL = re.compile(
    r"::(?:socket|bind|listen|accept4?|connect|recv(?:from|msg)?|"
    r"send(?:to|msg)?|poll|epoll_(?:create1?|ctl|wait)|select|shutdown|"
    r"(?:get|set)sockopt|getsockname|getpeername)\s*\("
    r"|\bsockaddr_in\b"
)


def check_net_sockets(root: Path) -> list[str]:
    errors = []
    scan_dirs = [root / "src", root / "bench", root / "tools", root / "examples"]
    for base in scan_dirs:
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in (".h", ".cc", ".cpp"):
                continue
            rel = path.relative_to(root)
            # src/net owns the syscall layer.
            if rel.parts[:2] == ("src", "net"):
                continue
            text = _strip_comments(path.read_text())
            for pattern, label in (
                (_SOCKET_HEADER, "socket header"),
                (_SOCKET_CALL, "raw socket syscall"),
            ):
                for m in pattern.finditer(text):
                    line = text[: m.start()].count("\n") + 1
                    errors.append(
                        f"{rel}:{line}: [net-sockets] {label} "
                        f"'{m.group(0).strip()}' outside src/net — go through "
                        "net::SeeSawClient/SeeSawServer or net/socket.h so fd "
                        "ownership stays in one place"
                    )
    return errors


# ---------------------------------------------------------- concurrency-tests
_CMAKE_LIST = re.compile(
    r"set\(SEESAW_CONCURRENCY_TESTS\s+(.*?)\)", re.DOTALL
)

# Including any of these makes a test a concurrency suite even if it never
# names ThreadPool: a SeeSawServer runs its own event-loop thread plus
# handler-pool dispatch, and a SessionManager owns a shared lookup pool.
_CONCURRENCY_HEADERS = re.compile(
    r'#\s*include\s*"(?:net/server\.h|net/client\.h|core/session_manager\.h)"'
)


def check_concurrency_tests(root: Path) -> list[str]:
    cmake = root / "CMakeLists.txt"
    if not cmake.is_file():
        return [f"CMakeLists.txt: [concurrency-tests] file missing"]
    m = _CMAKE_LIST.search(cmake.read_text())
    if m is None:
        return [
            "CMakeLists.txt: [concurrency-tests] no "
            "set(SEESAW_CONCURRENCY_TESTS ...) block found"
        ]
    registered = set(m.group(1).split())
    errors = []
    tests_dir = root / "tests"
    if not tests_dir.is_dir():
        return errors
    for path in sorted(tests_dir.glob("*.cc")):
        text = _strip_comments(path.read_text())
        if path.stem in registered:
            continue
        if re.search(r"\bThreadPool\b", text):
            errors.append(
                f"{path.relative_to(root)}:1: [concurrency-tests] uses "
                "ThreadPool but is not in SEESAW_CONCURRENCY_TESTS "
                "(CMakeLists.txt) — the TSan CI leg will never run it"
            )
        elif _CONCURRENCY_HEADERS.search(text):
            errors.append(
                f"{path.relative_to(root)}:1: [concurrency-tests] includes a "
                "serving/session header (its objects run pool threads "
                "internally) but is not in SEESAW_CONCURRENCY_TESTS "
                "(CMakeLists.txt) — the TSan CI leg will never run it"
            )
    return errors


# ------------------------------------------------------------- fault-coverage
# A VectorStore implementation declared in src/net is remote-backed: its
# scans can fail in ways no in-process backend can (dead peer, per-request
# deadline, RETRY_LATER shed, exhausted retries). Each such class must have
# a deterministic fault-injection suite — a tests/*.cc that includes the
# class's header AND the scripted-transport harness (tests/fault_socket.h)
# and is registered in SEESAW_CONCURRENCY_TESTS (so the TSan leg runs its
# cancellation/retry paths too). Coverage in an unregistered test does not
# count: TSan would never see it.
_REMOTE_STORE_DECL = re.compile(
    r"\bclass\s+(\w+)\s*(?:final\s*)?:\s*public\s+(?:store::)?VectorStore\b"
)
_FAULT_HARNESS_INCLUDE = re.compile(r'#\s*include\s*"tests/fault_socket\.h"')


def check_fault_coverage(root: Path) -> list[str]:
    net = root / "src" / "net"
    if not net.is_dir():
        return []
    registered: set[str] = set()
    cmake = root / "CMakeLists.txt"
    if cmake.is_file():
        m = _CMAKE_LIST.search(cmake.read_text())
        if m is not None:
            registered = set(m.group(1).split())
    tests = []
    tests_dir = root / "tests"
    if tests_dir.is_dir():
        for t in sorted(tests_dir.glob("*.cc")):
            tests.append((t.stem, _strip_comments(t.read_text())))
    errors = []
    for path in sorted(net.glob("*.h")):
        text = _strip_comments(path.read_text())
        for m in _REMOTE_STORE_DECL.finditer(text):
            name = m.group(1)
            header = re.compile(
                r'#\s*include\s*"net/' + re.escape(path.name) + '"'
            )
            covered = any(
                stem in registered
                and header.search(body)
                and _FAULT_HARNESS_INCLUDE.search(body)
                for stem, body in tests
            )
            if covered:
                continue
            line = text[: m.start()].count("\n") + 1
            errors.append(
                f"{path.relative_to(root)}:{line}: [fault-coverage] "
                f"'{name}' is a remote-backed VectorStore with no "
                "fault-injection suite — add a tests/*.cc that includes "
                f'"net/{path.name}" and "tests/fault_socket.h" and register '
                "it in SEESAW_CONCURRENCY_TESTS, so dead-peer/deadline/retry "
                "semantics stay tested"
            )
    return errors


# -------------------------------------------------------------- atomic-layout
# A raw (unpadded) atomic member declaration: `std::atomic<T> name...;` not
# wrapped in CacheAligned<> (the wrapper puts `>>` right after the inner
# atomic, so `\s+` fails to match) and not alignas'd on the same line.
_ATOMIC_DECL = re.compile(
    r"^\s*(?:mutable\s+)?std::atomic<[^<>]*>\s+\w+", re.MULTILINE
)
_MUTEX_DECL = re.compile(r"^\s*(?:mutable\s+)?Mutex\s+\w+", re.MULTILINE)
_TYPE_OPEN = re.compile(r"\b(?:struct|class)\s+(\w+)[^;{()]*\{")
_LAYOUT_TOKEN = "layout-audited:"


def _type_bodies(text: str):
    """Yields (name, start_offset, body_text) for each struct/class body,
    including nested types (outer bodies contain inner ones)."""
    for m in _TYPE_OPEN.finditer(text):
        depth = 1
        i = m.end()
        while i < len(text) and depth > 0:
            if text[i] == "{":
                depth += 1
            elif text[i] == "}":
                depth -= 1
            i += 1
        if depth == 0:
            yield m.group(1), m.start(), text[m.end() : i - 1]


def check_atomic_layout(root: Path) -> list[str]:
    errors = []
    src = root / "src"
    if not src.is_dir():
        return errors
    for path in sorted(src.rglob("*")):
        if path.suffix not in (".h", ".cc", ".cpp"):
            continue
        raw = path.read_text()
        for name, start, body in _type_bodies(raw):
            if _LAYOUT_TOKEN in body:
                continue  # documented exemption, audited by a human
            stripped = _strip_comments(body)
            raw_atomics = [
                m for m in _ATOMIC_DECL.finditer(stripped)
                if "alignas" not in
                stripped[stripped.rfind("\n", 0, m.start()) + 1 : m.end()]
            ]
            if not raw_atomics:
                continue
            has_mutex = _MUTEX_DECL.search(stripped) is not None
            if len(raw_atomics) < 2 and not has_mutex:
                continue
            line = raw[:start].count("\n") + 1
            hazard = (
                "mixes a Mutex with a raw std::atomic"
                if has_mutex
                else f"packs {len(raw_atomics)} raw std::atomic members"
            )
            errors.append(
                f"{path.relative_to(root)}:{line}: [atomic-layout] "
                f"'{name}' {hazard} — contended neighbors on one cache "
                "line false-share; pad with CacheAligned/alignas "
                "(common/aligned.h) or add a 'layout-audited:' comment in "
                "the type body documenting why packing is correct"
            )
    return errors


# ----------------------------------------------------------------- bench-json
# Latency benches must commit percentiles, not just means (PR 6's contract).
# Keyed by filename; other BENCH files need only parse and carry rows. Every
# row needs p50/p95; p99 is additionally required except on kind=="policy"
# rows (A/B comparison rows commit a p50/p95 pair per arm — p99 is noise at
# the per-arm sample counts those sweeps use).
_PERCENTILE_FILES = {
    "BENCH_scale.json": ("p50_ms", "p95_ms", "p99_ms"),
    "BENCH_topk.json": ("p50_ms", "p95_ms", "p99_ms"),
    "BENCH_serving.json": ("p50_ms", "p95_ms", "p99_ms"),
}
_P99_EXEMPT_KINDS = {"policy"}


def check_bench_json(root: Path) -> list[str]:
    errors = []
    for path in sorted(root.glob("BENCH_*.json")):
        rel = path.relative_to(root)
        try:
            doc = json.loads(path.read_text())
        except json.JSONDecodeError as e:
            errors.append(f"{rel}:1: [bench-json] does not parse: {e}")
            continue
        rows = doc.get("rows")
        if not isinstance(rows, list) or not rows:
            errors.append(f"{rel}:1: [bench-json] missing or empty 'rows'")
            continue
        suffixes = _PERCENTILE_FILES.get(path.name)
        if suffixes is None:
            continue
        for i, row in enumerate(rows):
            keys = set(row)
            exempt_p99 = row.get("kind") in _P99_EXEMPT_KINDS
            for wanted in suffixes:
                if wanted == "p99_ms" and exempt_p99:
                    continue
                if not any(k.endswith(wanted) for k in keys):
                    errors.append(
                        f"{rel}:1: [bench-json] rows[{i}] carries no "
                        f"*{wanted} key — latency baselines must commit "
                        "p50/p95/p99, not just means"
                    )
                    break
    return errors


RULES = [
    check_scan_control,
    check_raw_threading,
    check_kernel_libm,
    check_net_sockets,
    check_concurrency_tests,
    check_fault_coverage,
    check_atomic_layout,
    check_bench_json,
]


def run_all(root: Path) -> list[str]:
    errors = []
    for rule in RULES:
        errors.extend(rule(root))
    return errors


# ------------------------------------------------------------------ self-test
def _write(path: Path, text: str) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text)


def self_test() -> int:
    """Seeds one violation per rule and asserts each is caught."""
    failures = []

    def expect(name: str, errors: list[str], tag: str, want: bool) -> None:
        hit = any(tag in e for e in errors)
        if hit != want:
            failures.append(
                f"self-test '{name}': expected {tag} "
                f"{'violation' if want else 'clean'}, got: {errors or '[]'}"
            )

    with tempfile.TemporaryDirectory(prefix="seesaw-lint-selftest-") as td:
        root = Path(td)
        # A miniature clean tree: every rule must pass on it.
        _write(
            root / "src/store/good_store.h",
            "std::vector<SearchResult> TopK(linalg::VecSpan q, size_t k,\n"
            "    const SeenSet& seen, const ScanControl& control)\n"
            "    const override;\n",
        )
        _write(root / "src/core/clean.cc", "int x = 0;  // std::mutex in comment\n")
        _write(
            root / "src/linalg/kernels_scalar.cc",
            "float f() { return std::fmaf(1.f, 2.f, 3.f); }\n",
        )
        _write(
            root / "CMakeLists.txt",
            "set(SEESAW_CONCURRENCY_TESTS\n    pool_test\n    wire_test)\n",
        )
        _write(root / "tests/pool_test.cc", "ThreadPool pool(2);\n")
        # Registered serving suite + the one directory allowed raw sockets.
        # wire_test also covers the remote store below: it includes the
        # store's header and the fault harness, so fault-coverage passes.
        _write(
            root / "tests/wire_test.cc",
            '#include "net/client.h"\n'
            '#include "net/remote.h"\n'
            '#include "tests/fault_socket.h"\n'
            "int wire = 1;\n",
        )
        _write(
            root / "src/net/remote.h",
            "class MiniRemote : public VectorStore {\n"
            " public:\n"
            "  size_t size() const override;\n"
            "};\n",
        )
        _write(
            root / "src/net/socket.cc",
            "#include <sys/socket.h>\n"
            "int Open() { return ::socket(AF_INET, SOCK_STREAM, 0); }\n",
        )
        # Layout-clean types: padded atomics, a documented packed block, a
        # lone atomic, and a mutex-only type must all pass.
        _write(
            root / "src/net/clean_layout.h",
            "class PaddedHot {\n"
            "  CacheAligned<std::atomic<bool>> stop_;\n"
            "  CacheAligned<std::atomic<size_t>> queued_;\n"
            "};\n"
            "struct AuditedStats {\n"
            "  // layout-audited: cold monotone counters, packing is fine.\n"
            "  std::atomic<size_t> ok_{0};\n"
            "  std::atomic<size_t> shed_{0};\n"
            "};\n"
            "struct LoneFlag { std::atomic<bool> done{false}; };\n"
            "class Guarded {\n"
            "  mutable Mutex mu_;\n"
            "  size_t count_ = 0;\n"
            "};\n",
        )
        _write(
            root / "BENCH_scale.json",
            json.dumps(
                {"bench": "scale", "rows": [
                    {"p50_ms": 1.0, "p95_ms": 2.0, "p99_ms": 3.0},
                    # policy A/B rows commit p50/p95 per arm, no p99.
                    {"kind": "policy", "skip_p50_ms": 1.0,
                     "skip_p95_ms": 2.0}]}
            ),
        )
        clean = run_all(root)
        if clean:
            failures.append(f"self-test clean tree not clean: {clean}")

        # scan-control: an override that drops ScanControl.
        _write(
            root / "src/store/bad_store.h",
            "std::vector<SearchResult> TopK(linalg::VecSpan q, size_t k,\n"
            "    const SeenSet& seen) const override;\n",
        )
        expect("scan-control", check_scan_control(root), "[scan-control]", True)

        # raw-threading: a std::mutex outside common/.
        _write(root / "src/core/bad_mutex.cc", "static std::mutex mu;\n")
        expect("raw-threading", check_raw_threading(root), "[raw-threading]", True)

        # kernel-libm: a std::sqrt in a kernel file.
        _write(
            root / "src/linalg/kernels_avx2.cc",
            "float n(float x) { return std::sqrt(x); }\n",
        )
        expect("kernel-libm", check_kernel_libm(root), "[kernel-libm]", True)

        # net-sockets: a bench reaching for the syscalls directly, and a
        # tool including a socket header.
        _write(
            root / "bench/bad_bench.cc",
            "int n = ::send(3, \"x\", 1, 0);\n",
        )
        _write(root / "tools/bad_tool.cc", "#include <netinet/tcp.h>\n")
        net_errors = check_net_sockets(root)
        expect("net-sockets", net_errors, "[net-sockets]", True)
        if sum("[net-sockets]" in e for e in net_errors) != 2:
            failures.append(
                f"self-test 'net-sockets': expected exactly the 2 seeded "
                f"violations (src/net must stay exempt), got: {net_errors}"
            )

        # concurrency-tests: a ThreadPool test not registered in CMake, and
        # an unregistered test that includes a serving header.
        _write(root / "tests/rogue_test.cc", "ThreadPool pool(2);\n")
        _write(
            root / "tests/rogue_server_test.cc",
            '#include "net/server.h"\nint s = 1;\n',
        )
        conc_errors = check_concurrency_tests(root)
        expect("concurrency-tests", conc_errors, "[concurrency-tests]", True)
        if sum("[concurrency-tests]" in e for e in conc_errors) != 2:
            failures.append(
                f"self-test 'concurrency-tests': expected 2 violations "
                f"(ThreadPool use and serving-header include), got: "
                f"{conc_errors}"
            )

        # fault-coverage: a remote-backed store whose only "coverage" is an
        # unregistered test — header + harness includes alone must not count.
        _write(
            root / "src/net/rogue_remote.h",
            "class RogueRemote : public VectorStore {};\n",
        )
        _write(
            root / "tests/rogue_remote_test.cc",
            '#include "net/rogue_remote.h"\n'
            '#include "tests/fault_socket.h"\n'
            "int rr = 1;\n",
        )
        fault_errors = check_fault_coverage(root)
        expect("fault-coverage", fault_errors, "[fault-coverage]", True)
        if sum("[fault-coverage]" in e for e in fault_errors) != 1:
            failures.append(
                f"self-test 'fault-coverage': expected exactly the 1 seeded "
                f"violation (the covered MiniRemote must stay clean), got: "
                f"{fault_errors}"
            )

        # atomic-layout: adjacent raw atomics without padding or exemption,
        # and a Mutex packed next to a raw atomic.
        _write(
            root / "src/core/bad_layout.h",
            "struct HotCounters {\n"
            "  std::atomic<size_t> queued_{0};\n"
            "  std::atomic<size_t> inflight_{0};\n"
            "};\n"
            "class MixedGuard {\n"
            "  mutable Mutex mu_;\n"
            "  std::atomic<bool> dead_{false};\n"
            "};\n",
        )
        layout_errors = check_atomic_layout(root)
        expect("atomic-layout", layout_errors, "[atomic-layout]", True)
        if sum("[atomic-layout]" in e for e in layout_errors) != 2:
            failures.append(
                f"self-test 'atomic-layout': expected exactly the 2 seeded "
                f"violations (padded/audited/lone/mutex-only types must stay "
                f"clean), got: {layout_errors}"
            )

        # bench-json: a latency baseline without percentiles, junk JSON, and
        # a serving baseline that only committed means.
        _write(
            root / "BENCH_topk.json",
            json.dumps({"bench": "topk_latency", "rows": [{"mean_ms": 1.0}]}),
        )
        _write(root / "BENCH_broken.json", "{not json")
        _write(
            root / "BENCH_serving.json",
            json.dumps({"bench": "serving", "rows": [{"mean_ms": 2.0}]}),
        )
        bench_errors = check_bench_json(root)
        expect("bench-json", bench_errors, "[bench-json]", True)
        if not any("BENCH_serving.json" in e for e in bench_errors):
            failures.append(
                "self-test 'bench-json': BENCH_serving.json without "
                f"percentiles not caught: {bench_errors}"
            )

    if failures:
        for f in failures:
            print(f, file=sys.stderr)
        print("self-test FAILED", file=sys.stderr)
        return 1
    print("self-test OK: every rule catches its seeded violation")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root", type=Path, default=REPO_ROOT,
        help="repo root to lint (default: this script's repo)",
    )
    parser.add_argument(
        "--self-test", action="store_true",
        help="seed violations into a scratch tree and assert they are caught",
    )
    args = parser.parse_args()
    if args.self_test:
        return self_test()
    errors = run_all(args.root)
    for e in errors:
        print(e, file=sys.stderr)
    if errors:
        print(f"check_invariants: {len(errors)} violation(s)", file=sys.stderr)
        return 1
    print("check_invariants: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
