#!/usr/bin/env bash
# run_bench_suite.sh — run the TopK latency suite across store sizes and
# batch sizes, collecting one CSV.
#
# Default sizes: 10k, 20k, 40k, 80k vectors.
#
# Usage:
#   ./scripts/run_bench_suite.sh [--sizes 10k,20k,...] [--warmup N] [--iters N]
#                                [--dim D] [--k K] [--threads T]
#                                [--batches 1,4,8,16] [--out results.csv]
set -euo pipefail

SCRIPT_DIR="$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)"
REPO_ROOT="$(dirname "$SCRIPT_DIR")"
BUILD_DIR="${BUILD_DIR:-$REPO_ROOT/build}"
BENCH="$BUILD_DIR/bench_topk_latency"

WARMUP=1
ITERS=5
DIM=128
K=100
THREADS=0
BATCHES="1,4,8,16"
OUT=""
SIZES=(10000 20000 40000 80000)

parse_size_token() {
    local tok="$1"
    if [[ "$tok" =~ ^[0-9]+$ ]]; then
        printf "%s" "$tok"
        return 0
    fi
    if [[ "$tok" =~ ^([0-9]+)[mM]$ ]]; then
        printf "%s000000" "${BASH_REMATCH[1]}"
        return 0
    fi
    if [[ "$tok" =~ ^([0-9]+)[kK]$ ]]; then
        printf "%s000" "${BASH_REMATCH[1]}"
        return 0
    fi
    return 1
}

while [[ $# -gt 0 ]]; do
    case "$1" in
        --sizes)
            IFS=',' read -r -a raw_sizes <<< "$2"
            SIZES=()
            for token in "${raw_sizes[@]}"; do
                token="${token//[[:space:]]/}"
                [[ -z "$token" ]] && continue
                parsed="$(parse_size_token "$token")" || {
                    echo "error: invalid size token '$token' in --sizes" >&2
                    exit 1
                }
                SIZES+=("$parsed")
            done
            shift 2
            ;;
        --warmup)  WARMUP="$2"; shift 2 ;;
        --iters)   ITERS="$2"; shift 2 ;;
        --dim)     DIM="$2"; shift 2 ;;
        --k)       K="$2"; shift 2 ;;
        --threads) THREADS="$2"; shift 2 ;;
        --batches) BATCHES="$2"; shift 2 ;;
        --out)     OUT="$2"; shift 2 ;;
        *)
            echo "unknown option: $1" >&2
            exit 1
            ;;
    esac
done

if [[ ! -x "$BENCH" ]]; then
    echo "building $BENCH ..." >&2
    cmake -B "$BUILD_DIR" -S "$REPO_ROOT" > /dev/null
    cmake --build "$BUILD_DIR" --target bench_topk_latency -j > /dev/null
fi

emit() {
    header_done=0
    for n in "${SIZES[@]}"; do
        echo "== n=$n dim=$DIM k=$K batches=$BATCHES ==" >&2
        "$BENCH" --csv --n="$n" --dim="$DIM" --k="$K" --warmup="$WARMUP" \
                 --iters="$ITERS" --threads="$THREADS" --batches="$BATCHES" |
        while IFS= read -r line; do
            if [[ "$line" == backend,* ]]; then
                if [[ $header_done -eq 0 ]]; then
                    echo "n,$line"
                    header_done=1
                fi
                continue
            fi
            echo "$n,$line"
        done
        header_done=1
    done
}

if [[ -n "$OUT" ]]; then
    emit | tee "$OUT" > /dev/null
    echo "CSV written to $OUT" >&2
else
    emit
fi
