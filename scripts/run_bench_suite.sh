#!/usr/bin/env bash
# run_bench_suite.sh — run the TopK latency suite across store sizes and
# batch sizes, collecting one CSV — or, with --json, machine-readable
# BENCH_*.json baselines (SIMD kernel throughput + TopK latency) that future
# PRs can diff perf against.
#
# Default sizes: 10k, 20k, 40k, 80k vectors.
#
# Usage:
#   ./scripts/run_bench_suite.sh [--sizes 10k,20k,...] [--warmup N] [--iters N]
#                                [--dim D] [--k K] [--threads T]
#                                [--batches 1,4,8,16] [--shards 1,2,4,8]
#                                [--out results.csv] [--json] [--out-dir DIR]
#
# --json writes BENCH_simd.json (bench_simd_kernels: scalar vs dispatched
# kernel throughput across dims x batches), BENCH_topk.json
# (bench_topk_latency rows across --sizes, including one "sharded" row per
# --shards count — the shard-scaling curve), BENCH_prefetch.json
# (bench_prefetch_latency: per-backend/variant speculation hit rates —
# zero-shot and post-refit — plus perceived NextBatch latency, prefetch off
# vs on, parity-checked), BENCH_serving.json (bench_serving: open-loop TCP
# serving load — perceived latency percentiles, shed rate, and session churn
# at SERVING_SESSIONS concurrent think-time sessions) and BENCH_scale.json
# (via run_scale_suite.sh at SCALE_SIZES, default 1M: fp32 vs int8 scan
# latency percentiles at scale) into --out-dir (default: repo root) instead
# of emitting CSV.
set -euo pipefail

SCRIPT_DIR="$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)"
REPO_ROOT="$(dirname "$SCRIPT_DIR")"
BUILD_DIR="${BUILD_DIR:-$REPO_ROOT/build}"
BENCH="$BUILD_DIR/bench_topk_latency"
BENCH_SIMD="$BUILD_DIR/bench_simd_kernels"
BENCH_PREFETCH="$BUILD_DIR/bench_prefetch_latency"
BENCH_SERVING="$BUILD_DIR/bench_serving"

# bench_serving knobs for the --json baseline: the open-loop TCP load run
# (BENCH_serving.json) at its committed shape — 1000 concurrent think-time
# sessions against a self-hosted SeeSawServer on loopback.
SERVING_SESSIONS="${SERVING_SESSIONS:-1000}"
SERVING_ROUNDS="${SERVING_ROUNDS:-3}"
SERVING_THINK_MS="${SERVING_THINK_MS:-50}"

# bench_prefetch_latency knobs for the --json baseline (kept modest: the
# bench sleeps real think time per inspected image).
PREFETCH_SCALE="${PREFETCH_SCALE:-0.15}"
PREFETCH_DIM="${PREFETCH_DIM:-64}"
PREFETCH_BATCH="${PREFETCH_BATCH:-8}"
PREFETCH_THINK_MS="${PREFETCH_THINK_MS:-10}"

WARMUP=1
ITERS=5
DIM=128
K=100
THREADS=0
BATCHES="1,4,8,16"
SHARDS="1,2,4,8"
OUT=""
JSON=0
OUT_DIR="$REPO_ROOT"
SIZES=(10000 20000 40000 80000)

parse_size_token() {
    local tok="$1"
    if [[ "$tok" =~ ^[0-9]+$ ]]; then
        printf "%s" "$tok"
        return 0
    fi
    if [[ "$tok" =~ ^([0-9]+)[mM]$ ]]; then
        printf "%s000000" "${BASH_REMATCH[1]}"
        return 0
    fi
    if [[ "$tok" =~ ^([0-9]+)[kK]$ ]]; then
        printf "%s000" "${BASH_REMATCH[1]}"
        return 0
    fi
    return 1
}

while [[ $# -gt 0 ]]; do
    case "$1" in
        --sizes)
            IFS=',' read -r -a raw_sizes <<< "$2"
            SIZES=()
            for token in "${raw_sizes[@]}"; do
                token="${token//[[:space:]]/}"
                [[ -z "$token" ]] && continue
                parsed="$(parse_size_token "$token")" || {
                    echo "error: invalid size token '$token' in --sizes" >&2
                    exit 1
                }
                SIZES+=("$parsed")
            done
            shift 2
            ;;
        --warmup)  WARMUP="$2"; shift 2 ;;
        --iters)   ITERS="$2"; shift 2 ;;
        --dim)     DIM="$2"; shift 2 ;;
        --k)       K="$2"; shift 2 ;;
        --threads) THREADS="$2"; shift 2 ;;
        --batches) BATCHES="$2"; shift 2 ;;
        --shards)  SHARDS="$2"; shift 2 ;;
        --out)     OUT="$2"; shift 2 ;;
        --json)    JSON=1; shift ;;
        --out-dir) OUT_DIR="$2"; shift 2 ;;
        *)
            echo "unknown option: $1" >&2
            exit 1
            ;;
    esac
done

build_target() {
    local target="$1"
    echo "building $target ..." >&2
    cmake -B "$BUILD_DIR" -S "$REPO_ROOT" > /dev/null
    cmake --build "$BUILD_DIR" --target "$target" -j > /dev/null
}

[[ -x "$BENCH" ]] || build_target bench_topk_latency

emit() {
    header_done=0
    for n in "${SIZES[@]}"; do
        echo "== n=$n dim=$DIM k=$K batches=$BATCHES ==" >&2
        "$BENCH" --csv --n="$n" --dim="$DIM" --k="$K" --warmup="$WARMUP" \
                 --iters="$ITERS" --threads="$THREADS" --batches="$BATCHES" \
                 --shards="$SHARDS" |
        while IFS= read -r line; do
            if [[ "$line" == backend,* ]]; then
                if [[ $header_done -eq 0 ]]; then
                    echo "n,$line"
                    header_done=1
                fi
                continue
            fi
            echo "$n,$line"
        done
        header_done=1
    done
}

emit_json() {
    [[ -x "$BENCH_SIMD" ]] || build_target bench_simd_kernels

    local simd_out="$OUT_DIR/BENCH_simd.json"
    local topk_out="$OUT_DIR/BENCH_topk.json"

    echo "== bench_simd_kernels ==" >&2
    "$BENCH_SIMD" --warmup="$WARMUP" --iters="$ITERS" --json > "$simd_out"
    echo "kernel JSON written to $simd_out" >&2

    local rows=""
    local tmp
    tmp="$(mktemp)"
    # EXIT, not RETURN: a set -e abort inside this function (e.g. the bench
    # crashing) exits the script without firing RETURN traps. ${tmp:-} keeps
    # the trap safe under set -u once the local goes out of scope.
    trap 'rm -f "${tmp:-}"' EXIT
    for n in "${SIZES[@]}"; do
        echo "== bench_topk_latency n=$n dim=$DIM k=$K ==" >&2
        # Direct redirection (not process substitution) so a bench crash —
        # e.g. a parity SEESAW_CHECK abort — fails the script instead of
        # silently truncating the committed baseline.
        "$BENCH" --json --n="$n" --dim="$DIM" --k="$K" \
                 --warmup="$WARMUP" --iters="$ITERS" \
                 --threads="$THREADS" --batches="$BATCHES" \
                 --shards="$SHARDS" > "$tmp"
        while IFS= read -r line; do
            [[ -z "$line" ]] && continue
            rows="${rows:+$rows,}$line"
        done < "$tmp"
    done
    printf '{"bench":"topk_latency","meta":{"dim":%s,"k":%s,"warmup":%s,"iters":%s,"threads":%s,"batches":"%s","shards":"%s"},"rows":[%s]}\n' \
        "$DIM" "$K" "$WARMUP" "$ITERS" "$THREADS" "$BATCHES" "$SHARDS" "$rows" \
        > "$topk_out"
    echo "topk JSON written to $topk_out" >&2

    [[ -x "$BENCH_PREFETCH" ]] || build_target bench_prefetch_latency
    local prefetch_out="$OUT_DIR/BENCH_prefetch.json"
    echo "== bench_prefetch_latency scale=$PREFETCH_SCALE think_ms=$PREFETCH_THINK_MS ==" >&2
    local prows=""
    # Same direct-redirection rationale as above: a parity SEESAW_CHECK
    # abort in the bench must fail the script, not truncate the baseline.
    "$BENCH_PREFETCH" --json --scale="$PREFETCH_SCALE" --dim="$PREFETCH_DIM" \
                      --batch="$PREFETCH_BATCH" \
                      --think_ms="$PREFETCH_THINK_MS" \
                      --threads="$THREADS" > "$tmp"
    while IFS= read -r line; do
        [[ -z "$line" ]] && continue
        prows="${prows:+$prows,}$line"
    done < "$tmp"
    printf '{"bench":"prefetch_latency","meta":{"scale":%s,"dim":%s,"batch":%s,"think_ms":%s,"threads":%s},"rows":[%s]}\n' \
        "$PREFETCH_SCALE" "$PREFETCH_DIM" "$PREFETCH_BATCH" \
        "$PREFETCH_THINK_MS" "$THREADS" "$prows" \
        > "$prefetch_out"
    echo "prefetch JSON written to $prefetch_out" >&2

    # Serving baseline (BENCH_serving.json): bench_serving emits the whole
    # JSON document itself, so this is a plain redirect — and the binary
    # exits nonzero on any protocol error or failed session, which under
    # set -e fails the suite instead of committing a broken baseline.
    [[ -x "$BENCH_SERVING" ]] || build_target bench_serving
    local serving_out="$OUT_DIR/BENCH_serving.json"
    echo "== bench_serving sessions=$SERVING_SESSIONS rounds=$SERVING_ROUNDS think_ms=$SERVING_THINK_MS ==" >&2
    "$BENCH_SERVING" --json --sessions="$SERVING_SESSIONS" \
                     --rounds="$SERVING_ROUNDS" \
                     --think_ms="$SERVING_THINK_MS" > "$serving_out"
    echo "serving JSON written to $serving_out" >&2

    # Scale baseline (BENCH_scale.json) delegates to run_scale_suite.sh.
    # SCALE_SIZES defaults to 1M here so the combined suite stays tractable;
    # run run_scale_suite.sh directly for the full 1M/4M/16M sweep.
    echo "== run_scale_suite.sh sizes=${SCALE_SIZES:-1M} ==" >&2
    "$SCRIPT_DIR/run_scale_suite.sh" --sizes "${SCALE_SIZES:-1M}" \
        --warmup "$WARMUP" --iters "$ITERS" --threads "$THREADS" \
        --out "$OUT_DIR/BENCH_scale.json"
}

if [[ "$JSON" == 1 ]]; then
    emit_json
elif [[ -n "$OUT" ]]; then
    emit | tee "$OUT" > /dev/null
    echo "CSV written to $OUT" >&2
else
    emit
fi
