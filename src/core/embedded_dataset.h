// EmbeddedDataset: the output of SeeSaw's one-time preprocessing pass
// (§2.4): every image is tiled (multiscale, §4.3), every tile embedded with
// the model, the vectors indexed in a store, and (optionally) the M_D matrix
// of database alignment precomputed.
#ifndef SEESAW_CORE_EMBEDDED_DATASET_H_
#define SEESAW_CORE_EMBEDDED_DATASET_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/statusor.h"
#include "core/multiscale.h"
#include "data/dataset.h"
#include "graph/adjacency.h"
#include "store/annoy_index.h"
#include "store/exact_store.h"
#include "store/ivf_index.h"
#include "store/sharded_store.h"

namespace seesaw::core {

/// One indexed vector: which image and which region it came from.
struct PatchRecord {
  uint32_t image_idx = 0;
  data::Box box;
  bool is_coarse = false;
};

/// Wall-clock breakdown of preprocessing (reported by bench_preprocessing).
struct PreprocessStats {
  double embed_seconds = 0;
  double index_seconds = 0;
  double md_seconds = 0;
  size_t num_vectors = 0;
};

/// Which max-inner-product index backs the store.
enum class StoreBackend {
  kExact,    ///< brute-force scan (accuracy reference)
  kAnnoy,    ///< RP-tree forest (the paper's store, §2.2)
  kIvf,      ///< FAISS-style inverted file
  kSharded,  ///< table partitioned across N exact child stores
};

/// Preprocessing configuration.
struct PreprocessOptions {
  MultiscaleOptions multiscale;
  /// Compute M_D (needed by DB alignment; skip for baseline-only runs).
  bool build_md = true;
  graph::MdOptions md;
  /// Index backend and its tuning knobs. Scan precision lives on the
  /// backend options: `exact.precision` for kExact, `sharded.precision`
  /// for kSharded (the fp32 master table is retained either way).
  StoreBackend backend = StoreBackend::kExact;
  store::ExactStoreOptions exact;
  store::AnnoyOptions annoy;
  store::IvfOptions ivf;
  store::ShardedOptions sharded;
  /// Child builder for the kSharded backend; null = in-process ExactStore
  /// children. This is how a deployment swaps the sharded scan's children
  /// for remote stubs (net/remote_store.h) — the factory receives each
  /// shard's row partition and returns the store that serves it, so the
  /// serving stack above never learns where shards live. Note the factory
  /// may ignore the partition matrix entirely (a remote child's rows
  /// already live on its peer) — the shape check still applies.
  store::ShardedStore::ChildFactory sharded_child_factory;
  /// Worker threads for embedding (0 = hardware default).
  size_t num_threads = 0;
};

/// Immutable preprocessed dataset: vectors + patch metadata + store (+ M_D).
class EmbeddedDataset {
 public:
  /// Runs preprocessing over `dataset` (which must outlive the result).
  static StatusOr<EmbeddedDataset> Build(const data::Dataset& dataset,
                                         const PreprocessOptions& options);

  const data::Dataset& dataset() const { return *dataset_; }
  const PreprocessOptions& options() const { return options_; }
  const PreprocessStats& stats() const { return stats_; }

  size_t num_images() const { return dataset_->num_images(); }
  size_t num_vectors() const { return patches_.size(); }
  size_t dim() const { return vectors_.cols(); }

  const linalg::MatrixF& vectors() const { return vectors_; }
  const PatchRecord& patch(uint32_t vec_id) const { return patches_[vec_id]; }
  const std::vector<PatchRecord>& patches() const { return patches_; }

  /// Vector ids belonging to image `image_idx` (contiguous range).
  std::pair<uint32_t, uint32_t> ImagePatchRange(uint32_t image_idx) const {
    return {image_begin_[image_idx], image_begin_[image_idx + 1]};
  }

  /// The max-inner-product store over all patch vectors.
  const store::VectorStore& store() const { return *store_; }

  /// M_D = X^T (D - W) X, or nullptr when build_md was false.
  const linalg::MatrixF* md() const {
    return md_.has_value() ? &*md_ : nullptr;
  }

  /// Text query vector for a concept (unit norm) — q0 in Listing 1.
  linalg::VectorF TextQuery(size_t concept_id) const {
    return dataset_->model().EmbedText(concept_id);
  }

  /// Persists the preprocessing products (vectors, patch metadata, M_D) so
  /// the embedding pass does not need to be repeated. The store itself is
  /// rebuilt on Load (index builds are cheap relative to embedding).
  Status Save(const std::string& path) const;

  /// Loads a cache written by Save and attaches it to `dataset` (which must
  /// be the same dataset that produced it; basic shape checks are applied).
  /// The store is rebuilt according to `options.backend`.
  static StatusOr<EmbeddedDataset> Load(const std::string& path,
                                        const data::Dataset& dataset,
                                        const PreprocessOptions& options);

 private:
  EmbeddedDataset() = default;

  const data::Dataset* dataset_ = nullptr;
  PreprocessOptions options_;
  PreprocessStats stats_;
  linalg::MatrixF vectors_;
  std::vector<PatchRecord> patches_;
  std::vector<uint32_t> image_begin_;  // size num_images+1
  std::unique_ptr<store::VectorStore> store_;
  std::optional<linalg::MatrixF> md_;
};

}  // namespace seesaw::core

#endif  // SEESAW_CORE_EMBEDDED_DATASET_H_
