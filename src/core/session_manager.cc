#include "core/session_manager.h"

#include <chrono>

namespace seesaw::core {

SessionManager::SessionManager(const SeeSawService& service,
                               size_t num_threads,
                               const PrefetchPolicy& prefetch,
                               const SessionLimits& limits)
    : service_(&service),
      prefetch_policy_(prefetch),
      limits_(limits),
      budget_(prefetch.max_in_flight),
      // The shared lookup pool opts into NUMA worker affinity outright: on
      // single-node hosts (every CI runner) it is a documented no-op, and
      // on multi-node hosts it is the intended serving shape — workers
      // pinned per node so NUMA-placed ShardedStores can hint shard scans
      // at the node holding the shard's pages (see ThreadPoolOptions).
      pool_(num_threads == 0 ? ThreadPool::DefaultThreads() : num_threads,
            ThreadPoolOptions{.numa_affinity = true}) {}

int64_t SessionManager::NowNs() const {
  if (clock_override_) return clock_override_();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

StatusOr<SessionId> SessionManager::CreateSession(
    const std::string& text_query, const std::string& user) {
  // Fast-path quota reject before paying for the text embedding; Register
  // re-checks under the same lock that admits, so two racing creates can
  // never both squeeze past the cap.
  if (limits_.max_sessions_per_user > 0) {
    MutexLock lock(mu_);
    auto it = user_sessions_.find(user);
    if (it != user_sessions_.end() &&
        it->second >= limits_.max_sessions_per_user) {
      ++stats_.quota_rejected;
      return Status::ResourceExhausted("session quota exhausted for user '" +
                                       user + "'");
    }
  }
  SEESAW_ASSIGN_OR_RETURN(std::unique_ptr<SeeSawSearcher> session,
                          service_->StartSession(text_query));
  return Register(std::move(session), user);
}

StatusOr<SessionId> SessionManager::CreateSession(
    linalg::VectorF query_vector, const std::string& user) {
  SEESAW_ASSIGN_OR_RETURN(std::unique_ptr<SeeSawSearcher> session,
                          service_->StartSession(std::move(query_vector)));
  return Register(std::move(session), user);
}

StatusOr<SessionId> SessionManager::Register(
    std::unique_ptr<SeeSawSearcher> session, const std::string& user) {
  session->set_thread_pool(&pool_);
  session->set_prefetch_budget(&budget_);
  MutexLock lock(mu_);
  if (limits_.max_sessions_per_user > 0) {
    auto it = user_sessions_.find(user);
    if (it != user_sessions_.end() &&
        it->second >= limits_.max_sessions_per_user) {
      ++stats_.quota_rejected;
      return Status::ResourceExhausted("session quota exhausted for user '" +
                                       user + "'");
    }
  }
  SessionId id = next_id_++;
  Entry entry;
  entry.session = std::shared_ptr<SeeSawSearcher>(session.release());
  entry.user = user;
  entry.last_touch_ns = NowNs();
  entry.inflight = std::make_shared<std::atomic<size_t>>(0);
  sessions_.emplace(id, std::move(entry));
  ++user_sessions_[user];
  ++stats_.created;
  return id;
}

std::shared_ptr<SeeSawSearcher> SessionManager::Find(SessionId id) const {
  MutexLock lock(mu_);
  auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second.session;
}

StatusOr<SessionLease> SessionManager::Acquire(SessionId id) {
  MutexLock lock(mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return Status::NotFound("no such session");
  }
  Entry& entry = it->second;
  entry.last_touch_ns = NowNs();
  size_t cap = limits_.max_inflight_per_session;
  // Registry writers all hold mu_, so a plain load suffices for the
  // admission decision: concurrent *releases* (lock-free, in ~SessionLease)
  // can only lower the count, never admit past the cap.
  if (cap > 0 && entry.inflight->load(std::memory_order_relaxed) >= cap) {
    ++stats_.busy_rejected;
    return Status::ResourceExhausted("session busy: in-flight cap reached");
  }
  entry.inflight->fetch_add(1, std::memory_order_relaxed);
  return SessionLease(entry.session, entry.inflight);
}

bool SessionManager::Touch(SessionId id) {
  MutexLock lock(mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return false;
  it->second.last_touch_ns = NowNs();
  return true;
}

size_t SessionManager::SweepIdle() {
  if (limits_.idle_ttl_seconds <= 0) return 0;
  // Destroy evicted sessions outside the lock: dropping the last shared_ptr
  // runs the searcher destructor (which may cancel and drain a speculation).
  std::vector<std::shared_ptr<SeeSawSearcher>> doomed;
  {
    MutexLock lock(mu_);
    const int64_t cutoff_ns =
        NowNs() -
        static_cast<int64_t>(limits_.idle_ttl_seconds * 1e9);
    for (auto it = sessions_.begin(); it != sessions_.end();) {
      Entry& entry = it->second;
      bool idle = entry.last_touch_ns <= cutoff_ns &&
                  entry.inflight->load(std::memory_order_relaxed) == 0;
      if (idle) {
        doomed.push_back(std::move(entry.session));
        ReleaseUserSlot(entry.user);
        it = sessions_.erase(it);
        ++stats_.evicted;
      } else {
        ++it;
      }
    }
  }
  return doomed.size();
}

Status SessionManager::Close(SessionId id) {
  std::shared_ptr<SeeSawSearcher> doomed;
  {
    MutexLock lock(mu_);
    auto it = sessions_.find(id);
    if (it == sessions_.end()) {
      return Status::NotFound("no such session");
    }
    // Destroy outside the lock in case this is the last reference.
    doomed = std::move(it->second.session);
    ReleaseUserSlot(it->second.user);
    sessions_.erase(it);
    ++stats_.closed;
  }
  return Status::OK();
}

void SessionManager::ReleaseUserSlot(const std::string& user) {
  auto it = user_sessions_.find(user);
  if (it == user_sessions_.end()) return;
  if (--it->second == 0) user_sessions_.erase(it);
}

std::vector<SessionId> SessionManager::LiveSessions() const {
  MutexLock lock(mu_);
  std::vector<SessionId> ids;
  ids.reserve(sessions_.size());
  for (const auto& [id, _] : sessions_) ids.push_back(id);
  return ids;
}

size_t SessionManager::num_sessions() const {
  MutexLock lock(mu_);
  return sessions_.size();
}

size_t SessionManager::SessionsForUser(const std::string& user) const {
  MutexLock lock(mu_);
  auto it = user_sessions_.find(user);
  return it == user_sessions_.end() ? 0 : it->second;
}

LifecycleStats SessionManager::lifecycle_stats() const {
  MutexLock lock(mu_);
  return stats_;
}

void SessionManager::set_clock_for_testing(std::function<int64_t()> now_ns) {
  MutexLock lock(mu_);
  clock_override_ = std::move(now_ns);
}

}  // namespace seesaw::core
