#include "core/session_manager.h"

namespace seesaw::core {

SessionManager::SessionManager(const SeeSawService& service,
                               size_t num_threads,
                               const PrefetchPolicy& prefetch)
    : service_(&service),
      prefetch_policy_(prefetch),
      budget_(prefetch.max_in_flight),
      pool_(num_threads == 0 ? ThreadPool::DefaultThreads() : num_threads) {}

StatusOr<SessionId> SessionManager::CreateSession(
    const std::string& text_query) {
  SEESAW_ASSIGN_OR_RETURN(std::unique_ptr<SeeSawSearcher> session,
                          service_->StartSession(text_query));
  return Register(std::move(session));
}

StatusOr<SessionId> SessionManager::CreateSession(
    linalg::VectorF query_vector) {
  SEESAW_ASSIGN_OR_RETURN(std::unique_ptr<SeeSawSearcher> session,
                          service_->StartSession(std::move(query_vector)));
  return Register(std::move(session));
}

StatusOr<SessionId> SessionManager::Register(
    std::unique_ptr<SeeSawSearcher> session) {
  session->set_thread_pool(&pool_);
  session->set_prefetch_budget(&budget_);
  MutexLock lock(mu_);
  SessionId id = next_id_++;
  sessions_.emplace(id, std::shared_ptr<SeeSawSearcher>(session.release()));
  return id;
}

std::shared_ptr<SeeSawSearcher> SessionManager::Find(SessionId id) const {
  MutexLock lock(mu_);
  auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second;
}

Status SessionManager::Close(SessionId id) {
  std::shared_ptr<SeeSawSearcher> doomed;
  {
    MutexLock lock(mu_);
    auto it = sessions_.find(id);
    if (it == sessions_.end()) {
      return Status::NotFound("no such session");
    }
    // Destroy outside the lock in case this is the last reference.
    doomed = std::move(it->second);
    sessions_.erase(it);
  }
  return Status::OK();
}

std::vector<SessionId> SessionManager::LiveSessions() const {
  MutexLock lock(mu_);
  std::vector<SessionId> ids;
  ids.reserve(sessions_.size());
  for (const auto& [id, _] : sessions_) ids.push_back(id);
  return ids;
}

size_t SessionManager::num_sessions() const {
  MutexLock lock(mu_);
  return sessions_.size();
}

}  // namespace seesaw::core
