// Platt scaling (Platt 2000): calibrates raw scores into probabilities via
// p = sigmoid(a * s + b). Used by Table 4 of the paper to show ENS's
// sensitivity to calibration — note the paper stresses this calibration
// needs labeled data, so it is NOT available to a real deployment.
#ifndef SEESAW_CORE_BASELINES_PLATT_H_
#define SEESAW_CORE_BASELINES_PLATT_H_

#include <vector>

#include "common/statusor.h"

namespace seesaw::core {

/// Fitted calibration parameters.
struct PlattScaling {
  double a = 1.0;
  double b = 0.0;

  /// Calibrated probability for a raw score.
  double Apply(double score) const;
};

/// Fits Platt scaling by maximum likelihood (logistic regression in one
/// dimension with bias, minimized with Newton steps). `labels` are 0/1.
/// Returns InvalidArgument when inputs are empty / mismatched or labels are
/// all one class.
StatusOr<PlattScaling> FitPlatt(const std::vector<double>& scores,
                                const std::vector<int>& labels);

}  // namespace seesaw::core

#endif  // SEESAW_CORE_BASELINES_PLATT_H_
