#include "core/baselines/ens.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace seesaw::core {

EnsSearcher::EnsSearcher(const EmbeddedDataset& embedded,
                         const GraphContext& graph, linalg::VectorF q_text,
                         const EnsOptions& options)
    : SearcherBase(embedded),
      options_(options),
      graph_(&graph),
      q_text_(std::move(q_text)) {
  SEESAW_CHECK_EQ(embedded.num_vectors(), embedded.num_images())
      << "EnsSearcher requires a coarse embedding (paper §5.4)";
  SEESAW_CHECK_EQ(graph.num_nodes(), embedded.num_vectors());
  const size_t n = embedded.num_vectors();
  gamma_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    double s = linalg::Dot(embedded.vectors().Row(i), linalg::VecSpan(q_text_));
    double g = options_.calibrated
                   ? options_.platt.Apply(s)
                   : std::clamp(s, options_.prior_floor,
                                1.0 - options_.prior_floor);
    gamma_[i] = static_cast<float>(g);
  }
  num_.assign(n, 0.0f);
  den_.assign(n, 0.0f);
  labeled_.assign(n, 0);
  label_value_.assign(n, 0);
}

double EnsSearcher::Probability(uint32_t i) const {
  return (static_cast<double>(gamma_[i]) + num_[i]) / (1.0 + den_[i]);
}

void EnsSearcher::AddFeedback(const ImageFeedback& feedback) {
  MarkSeen(feedback.image_idx);
  uint32_t i = feedback.image_idx;
  if (labeled_[i]) return;
  labeled_[i] = 1;
  label_value_[i] = feedback.relevant ? 1 : 0;
  ++num_labeled_;
  if (feedback.relevant) saw_positive_ = true;
  // Incremental classifier update: only i's graph neighbors change.
  const auto& w = graph_->adjacency();
  auto idx = w.RowIndices(i);
  auto val = w.RowValues(i);
  for (size_t e = 0; e < idx.size(); ++e) {
    den_[idx[e]] += val[e];
    if (feedback.relevant) num_[idx[e]] += val[e];
  }
}

Status EnsSearcher::Refit() { return Status::OK(); }

double EnsSearcher::FutureSum(
    uint32_t candidate, bool label, size_t m,
    const std::vector<std::pair<float, uint32_t>>& top_list,
    double /*top_list_sum*/) const {
  if (m == 0) return 0.0;
  const auto& w = graph_->adjacency();
  auto idx = w.RowIndices(candidate);
  auto val = w.RowValues(candidate);

  // Perturbed probabilities of the candidate's unlabeled neighbors.
  std::vector<std::pair<float, uint32_t>> updated;
  updated.reserve(idx.size());
  for (size_t e = 0; e < idx.size(); ++e) {
    uint32_t j = idx[e];
    if (labeled_[j] || j == candidate) continue;
    double den = 1.0 + den_[j] + val[e];
    double num = static_cast<double>(gamma_[j]) + num_[j] +
                 (label ? val[e] : 0.0f);
    updated.push_back({static_cast<float>(num / den), j});
  }

  // Merge: top_list minus (candidate + its perturbed neighbors) plus the
  // perturbed values, then take the top m.
  std::vector<float> pool;
  pool.reserve(top_list.size() + updated.size());
  auto is_affected = [&](uint32_t id) {
    if (id == candidate) return true;
    for (const auto& u : updated) {
      if (u.second == id) return true;
    }
    return false;
  };
  for (const auto& [p, id] : top_list) {
    if (!is_affected(id)) pool.push_back(p);
  }
  for (const auto& [p, id] : updated) pool.push_back(p);

  size_t take = std::min(m, pool.size());
  std::partial_sort(pool.begin(), pool.begin() + take, pool.end(),
                    std::greater<float>());
  double sum = 0.0;
  for (size_t i = 0; i < take; ++i) sum += pool[i];
  return sum;
}

std::vector<ScoredImage> EnsSearcher::NextBatch(size_t n) {
  // Paper modification (2): greedy CLIP ranking until the first positive.
  if (!saw_positive_) {
    return TopImages(linalg::VecSpan(q_text_), n);
  }
  const size_t total = embedded().num_vectors();

  // Remaining-budget horizon.
  size_t horizon = options_.horizon;
  if (options_.shrink_horizon) {
    horizon = horizon > num_labeled_ ? horizon - num_labeled_ : 1;
  }
  const size_t future_m = horizon > 0 ? horizon - 1 : 0;

  // Current probabilities of all unlabeled nodes.
  std::vector<std::pair<float, uint32_t>> probs;
  probs.reserve(total - num_labeled_);
  for (size_t i = 0; i < total; ++i) {
    if (labeled_[i]) continue;
    probs.push_back(
        {static_cast<float>(Probability(static_cast<uint32_t>(i))),
         static_cast<uint32_t>(i)});
  }
  if (probs.empty()) return {};

  // Buffered top list: enough entries that removing the candidate and its
  // <= k perturbed neighbors still leaves m fill-ins.
  size_t max_deg = graph_->knn().k * 2 + 4;
  size_t top_len = std::min(probs.size(), future_m + max_deg + 8);
  std::partial_sort(probs.begin(), probs.begin() + top_len, probs.end(),
                    std::greater<>());
  std::vector<std::pair<float, uint32_t>> top_list(probs.begin(),
                                                   probs.begin() + top_len);
  double top_sum = 0.0;
  for (size_t i = 0; i < std::min(future_m, top_list.size()); ++i) {
    top_sum += top_list[i].first;
  }

  // Lookahead utilities for the strongest candidates.
  size_t n_cand = std::min(options_.max_candidates, probs.size());
  std::vector<ScoredImage> scored;
  scored.reserve(n_cand);
  for (size_t c = 0; c < n_cand; ++c) {
    auto [p, id] = probs[c];
    double u;
    if (future_m == 0) {
      u = p;  // last pick: pure greedy (ENS reduces to a kNN model, Table 4)
    } else {
      double s1 = FutureSum(id, true, future_m, top_list, top_sum);
      double s0 = FutureSum(id, false, future_m, top_list, top_sum);
      u = p * (1.0 + s1) + (1.0 - p) * s0;
    }
    scored.push_back({id, static_cast<float>(u)});
  }
  std::sort(scored.begin(), scored.end(),
            [](const ScoredImage& a, const ScoredImage& b) {
              return a.score > b.score;
            });
  if (scored.size() > n) scored.resize(n);
  return scored;
}

}  // namespace seesaw::core
