// PropagationSearcher: the label-propagation variant of SeeSaw (§4.2) —
// the conceptual pipeline that DB alignment approximates. On every refit it
// (1) propagates the observed labels over the full kNN graph to obtain soft
// labels y_hat for every database vector, then (2) fits the query vector on
// the synthesized training set (X_D, y_hat) with the CLIP-alignment loss.
// Both steps scale with the database size, which is why the paper replaces
// them with the M_D quadratic term (Table 6, "prop." column).
#ifndef SEESAW_CORE_BASELINES_PROPAGATION_H_
#define SEESAW_CORE_BASELINES_PROPAGATION_H_

#include <string>

#include "core/graph_context.h"
#include "core/loss.h"
#include "core/searcher_base.h"
#include "graph/label_propagation.h"
#include "optim/lbfgs.h"

namespace seesaw::core {

/// Configuration for PropagationSearcher.
struct PropagationOptions {
  graph::LabelPropagationOptions propagation = [] {
    graph::LabelPropagationOptions o;
    o.prior = 0.5;  // unreached nodes are uninformative, not negative
    return o;
  }();
  /// Propagated examples are weighted by confidence 2*|y_hat - 0.5| so nodes
  /// the propagation never reached contribute nothing; examples below this
  /// weight are dropped entirely.
  double min_confidence_weight = 0.05;
  /// Loss for the fit over (X_D, y_hat); the DB term is disabled because
  /// propagation plays its role.
  LossOptions loss = [] {
    LossOptions l;
    l.use_db_term = false;
    return l;
  }();
  /// L-BFGS budget for the full-database fit (it dominates refit latency).
  optim::LbfgsOptions lbfgs = [] {
    optim::LbfgsOptions o;
    o.max_iterations = 20;
    return o;
  }();
};

/// Searcher running propagation + full-database fit per round (works over
/// coarse or multiscale embeddings; the graph must cover the same vectors).
class PropagationSearcher : public SearcherBase {
 public:
  PropagationSearcher(const EmbeddedDataset& embedded,
                      const GraphContext& graph, linalg::VectorF q_text,
                      const PropagationOptions& options = {});

  std::string name() const override { return "seesaw-prop"; }
  std::vector<ScoredImage> NextBatch(size_t n) override;
  void AddFeedback(const ImageFeedback& feedback) override;
  Status Refit() override;

  const linalg::VectorF& current_query() const { return query_; }

 private:
  PropagationOptions options_;
  const GraphContext* graph_;
  linalg::VectorF q_text_;
  linalg::VectorF query_;
  std::vector<std::pair<uint32_t, float>> observed_;
  bool dirty_ = false;
};

}  // namespace seesaw::core

#endif  // SEESAW_CORE_BASELINES_PROPAGATION_H_
