#include "core/baselines/rocchio.h"

#include "common/check.h"

namespace seesaw::core {

RocchioSearcher::RocchioSearcher(const EmbeddedDataset& embedded,
                                 linalg::VectorF q_text,
                                 const RocchioOptions& options)
    : SearcherBase(embedded),
      options_(options),
      q_text_(std::move(q_text)),
      query_(q_text_),
      pos_sum_(linalg::Zeros(embedded.dim())),
      neg_sum_(linalg::Zeros(embedded.dim())) {
  SEESAW_CHECK_EQ(q_text_.size(), embedded.dim());
}

std::vector<ScoredImage> RocchioSearcher::NextBatch(size_t n) {
  return TopImages(linalg::VecSpan(query_), n);
}

void RocchioSearcher::AddFeedback(const ImageFeedback& feedback) {
  MarkSeen(feedback.image_idx);
  for (const PatchLabel& label : LabelPatches(feedback)) {
    linalg::VecSpan x = embedded().vectors().Row(label.vec_id);
    if (label.positive) {
      linalg::Axpy(1.0f, x, linalg::MutVecSpan(pos_sum_));
      ++num_pos_;
    } else {
      linalg::Axpy(1.0f, x, linalg::MutVecSpan(neg_sum_));
      ++num_neg_;
    }
  }
}

Status RocchioSearcher::Refit() {
  query_ = linalg::Scaled(static_cast<float>(options_.alpha),
                          linalg::VecSpan(q_text_));
  if (num_pos_ > 0) {
    linalg::Axpy(static_cast<float>(options_.beta / num_pos_),
                 linalg::VecSpan(pos_sum_), linalg::MutVecSpan(query_));
  }
  if (num_neg_ > 0) {
    linalg::Axpy(static_cast<float>(-options_.gamma / num_neg_),
                 linalg::VecSpan(neg_sum_), linalg::MutVecSpan(query_));
  }
  linalg::NormalizeInPlace(linalg::MutVecSpan(query_));
  return Status::OK();
}

}  // namespace seesaw::core
