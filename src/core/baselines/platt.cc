#include "core/baselines/platt.h"

#include <algorithm>
#include <cmath>

namespace seesaw::core {

double PlattScaling::Apply(double score) const {
  return 1.0 / (1.0 + std::exp(-(a * score + b)));
}

StatusOr<PlattScaling> FitPlatt(const std::vector<double>& scores,
                                const std::vector<int>& labels) {
  if (scores.empty() || scores.size() != labels.size()) {
    return Status::InvalidArgument("FitPlatt: empty or mismatched inputs");
  }
  size_t pos = 0;
  for (int y : labels) pos += (y != 0);
  if (pos == 0 || pos == labels.size()) {
    return Status::InvalidArgument("FitPlatt: labels are all one class");
  }

  // Platt's target smoothing avoids saturation on separable data.
  const double t_pos = (static_cast<double>(pos) + 1.0) /
                       (static_cast<double>(pos) + 2.0);
  const double t_neg = 1.0 / (static_cast<double>(labels.size() - pos) + 2.0);

  double a = 1.0, b = 0.0;
  for (int iter = 0; iter < 100; ++iter) {
    // Gradient and Hessian of the negative log-likelihood in (a, b).
    double ga = 0, gb = 0, haa = 0, hab = 0, hbb = 0;
    for (size_t i = 0; i < scores.size(); ++i) {
      double s = scores[i];
      double t = labels[i] ? t_pos : t_neg;
      double p = 1.0 / (1.0 + std::exp(-(a * s + b)));
      double diff = p - t;
      ga += diff * s;
      gb += diff;
      double w = std::max(p * (1.0 - p), 1e-12);
      haa += w * s * s;
      hab += w * s;
      hbb += w;
    }
    haa += 1e-9;
    hbb += 1e-9;
    double det = haa * hbb - hab * hab;
    if (std::abs(det) < 1e-18) break;
    double da = (hbb * ga - hab * gb) / det;
    double db = (haa * gb - hab * ga) / det;
    a -= da;
    b -= db;
    if (std::abs(da) < 1e-10 && std::abs(db) < 1e-10) break;
  }
  return PlattScaling{a, b};
}

}  // namespace seesaw::core
