#include "core/baselines/propagation.h"

#include <cmath>

#include "common/check.h"

namespace seesaw::core {

PropagationSearcher::PropagationSearcher(const EmbeddedDataset& embedded,
                                         const GraphContext& graph,
                                         linalg::VectorF q_text,
                                         const PropagationOptions& options)
    : SearcherBase(embedded),
      options_(options),
      graph_(&graph),
      q_text_(std::move(q_text)),
      query_(q_text_) {
  SEESAW_CHECK_EQ(graph.num_nodes(), embedded.num_vectors());
}

std::vector<ScoredImage> PropagationSearcher::NextBatch(size_t n) {
  return TopImages(linalg::VecSpan(query_), n);
}

void PropagationSearcher::AddFeedback(const ImageFeedback& feedback) {
  MarkSeen(feedback.image_idx);
  // Box feedback maps to patch labels exactly as in SeeSaw (works for both
  // coarse and multiscale embeddings).
  for (const PatchLabel& label : LabelPatches(feedback)) {
    observed_.push_back({label.vec_id, label.positive ? 1.0f : 0.0f});
  }
  dirty_ = true;
}

Status PropagationSearcher::Refit() {
  if (!dirty_ || observed_.empty()) return Status::OK();
  dirty_ = false;

  // (1) Propagate observed labels across the whole database graph.
  SEESAW_ASSIGN_OR_RETURN(
      linalg::VectorF y_hat,
      graph::PropagateLabels(graph_->adjacency(), observed_,
                             options_.propagation));

  // (2) Fit the query on the synthesized full-database training set,
  // weighting every example by propagation confidence (unreached nodes sit
  // at the 0.5 prior and carry no weight).
  AlignerLoss loss(options_.loss, q_text_, /*md=*/nullptr);
  const linalg::MatrixF& x = embedded().vectors();
  for (size_t i = 0; i < x.rows(); ++i) {
    float weight = 2.0f * std::abs(y_hat[i] - 0.5f);
    if (weight < options_.min_confidence_weight) continue;
    loss.AddExample(x.Row(i), y_hat[i], weight);
  }
  if (loss.num_examples() == 0) return Status::OK();
  optim::Lbfgs lbfgs(options_.lbfgs);
  optim::VectorD w0(q_text_.begin(), q_text_.end());
  SEESAW_ASSIGN_OR_RETURN(optim::OptimResult result,
                          lbfgs.Minimize(loss.AsObjective(), std::move(w0)));
  linalg::VectorF w(result.x.size());
  for (size_t j = 0; j < w.size(); ++j) {
    w[j] = static_cast<float>(result.x[j]);
  }
  if (linalg::NormalizeInPlace(linalg::MutVecSpan(w)) > 1e-12f) {
    query_ = std::move(w);
  }
  return Status::OK();
}

}  // namespace seesaw::core
