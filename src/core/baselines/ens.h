// Efficient Nonmyopic Search (ENS, Jiang et al. ICML'17) — the active-search
// baseline of §5.4, with the paper's two modifications:
//   (1) per-vertex CLIP priors gamma_i (raw scores, or Platt-calibrated for
//       the Table 4 study), and
//   (2) greedy zero-shot ranking until the first positive is found.
//
// Model: soft kNN classifier on the dataset graph,
//   p_i = (gamma_i + sum_{j in N(i), labeled} w_ij y_j)
//       / (1      + sum_{j in N(i), labeled} w_ij).
// Score: one-step lookahead of the expected number of positives found in the
// remaining budget,
//   u(i) = p_i * (1 + S(D + (i,1))) + (1 - p_i) * S(D + (i,0)),
// where S(D') is the sum of the top-(t-1) probabilities among unlabeled
// points under D'. Conditioning on i's label only perturbs i's graph
// neighbors, so S is recomputed by merging the perturbed entries into a
// buffered top list. Every step still scans all N probabilities — the linear
// per-iteration cost the paper's Table 6 criticizes.
#ifndef SEESAW_CORE_BASELINES_ENS_H_
#define SEESAW_CORE_BASELINES_ENS_H_

#include <string>
#include <vector>

#include "core/baselines/platt.h"
#include "core/graph_context.h"
#include "core/searcher_base.h"

namespace seesaw::core {

/// ENS configuration.
struct EnsOptions {
  /// Reward horizon t (number of future picks considered). The benchmark
  /// budget is 60 images.
  size_t horizon = 60;
  /// Shrink the horizon as budget is consumed ("reduce it after every step
  /// so ENS can make optimal decisions given the time remaining").
  bool shrink_horizon = true;
  /// How many top-probability candidates get the full lookahead per step.
  size_t max_candidates = 64;
  /// Use Platt-calibrated priors (Table 4's "calibrated" row; requires
  /// ground-truth access, so benchmark-only).
  bool calibrated = false;
  PlattScaling platt;
  /// Raw-mode prior clamp: gamma_i = clamp(score, floor, 1 - floor).
  double prior_floor = 1e-3;
};

/// ENS searcher. Requires a coarse embedding (one vector per image): the
/// paper's ENS implementation does not support multiscale, which is part of
/// its scalability critique.
class EnsSearcher : public SearcherBase {
 public:
  /// `graph` must be built over the same embedded dataset and outlive the
  /// searcher.
  EnsSearcher(const EmbeddedDataset& embedded, const GraphContext& graph,
              linalg::VectorF q_text, const EnsOptions& options);

  std::string name() const override { return "ens"; }
  std::vector<ScoredImage> NextBatch(size_t n) override;
  void AddFeedback(const ImageFeedback& feedback) override;
  Status Refit() override;

  /// Current probability estimate for an image (diagnostics/tests).
  double Probability(uint32_t image_idx) const;

 private:
  /// Sum of the top-m entries of the unlabeled probability pool when
  /// `candidate` is labeled `label`, using the buffered top list.
  double FutureSum(uint32_t candidate, bool label, size_t m,
                   const std::vector<std::pair<float, uint32_t>>& top_list,
                   double top_list_sum) const;

  EnsOptions options_;
  const GraphContext* graph_;
  linalg::VectorF q_text_;
  std::vector<float> gamma_;    // per-vertex prior
  std::vector<float> num_;      // sum w_ij y_j over labeled neighbors
  std::vector<float> den_;      // sum w_ij over labeled neighbors
  std::vector<char> labeled_;
  std::vector<char> label_value_;
  size_t num_labeled_ = 0;
  bool saw_positive_ = false;
};

}  // namespace seesaw::core

#endif  // SEESAW_CORE_BASELINES_ENS_H_
