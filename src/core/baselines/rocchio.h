// Rocchio's relevance-feedback algorithm (Rocchio 1971), the classic IR
// baseline of the paper's §5.4 (Eq. 6):
//
//   q_t = alpha * q0 + beta * mean(positive vectors)
//                    - gamma * mean(negative vectors)
#ifndef SEESAW_CORE_BASELINES_ROCCHIO_H_
#define SEESAW_CORE_BASELINES_ROCCHIO_H_

#include <string>

#include "core/searcher_base.h"

namespace seesaw::core {

/// Rocchio hyper-parameters (paper: alpha=1, beta=.5, gamma=.25).
struct RocchioOptions {
  double alpha = 1.0;
  double beta = 0.5;
  double gamma = 0.25;
};

/// Rocchio searcher over the patch store. Positive examples are the patches
/// overlapping feedback boxes; negatives are the non-overlapping patches —
/// the same labeling SeeSaw uses, so the comparison isolates the update
/// rule.
class RocchioSearcher : public SearcherBase {
 public:
  RocchioSearcher(const EmbeddedDataset& embedded, linalg::VectorF q_text,
                  const RocchioOptions& options = {});

  std::string name() const override { return "rocchio"; }
  std::vector<ScoredImage> NextBatch(size_t n) override;
  void AddFeedback(const ImageFeedback& feedback) override;
  Status Refit() override;

  const linalg::VectorF& current_query() const { return query_; }

 private:
  RocchioOptions options_;
  linalg::VectorF q_text_;
  linalg::VectorF query_;
  linalg::VectorF pos_sum_;
  linalg::VectorF neg_sum_;
  size_t num_pos_ = 0;
  size_t num_neg_ = 0;
};

}  // namespace seesaw::core

#endif  // SEESAW_CORE_BASELINES_ROCCHIO_H_
