// Shared machinery for vector-query searchers: seen-image bookkeeping,
// max-pooled image ranking over the patch store, mapping of box feedback to
// patch labels (§4.3), and think-time speculative prefetch of the next
// batch.
#ifndef SEESAW_CORE_SEARCHER_BASE_H_
#define SEESAW_CORE_SEARCHER_BASE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "core/embedded_dataset.h"
#include "core/searcher.h"
#include "store/seen_set.h"

namespace seesaw::core {

/// One labeled patch derived from image feedback.
struct PatchLabel {
  uint32_t vec_id = 0;
  bool positive = false;
};

/// Think-time speculation policy (SeeSawOptions::prefetch).
///
/// When enabled, a searcher with a thread pool schedules the likely next
/// batch as a cancellable background lookup right after NextBatch returns,
/// so the store scan overlaps the user's inspection time. The speculation
/// predicts that the user will label exactly the returned batch and that the
/// refit will not change the query (always true for zero-shot); any
/// deviation invalidates it and NextBatch recomputes synchronously, so
/// results are bitwise identical to the non-speculative path in all cases.
struct PrefetchPolicy {
  bool enabled = false;
  /// Maximum speculative lookups in flight across all sessions sharing one
  /// PrefetchBudget; 0 = unlimited. Keeps a fleet of idle sessions from
  /// starving foreground lookups on the shared pool. Read only by the
  /// budget's owner when sizing it (SessionManager, from the service-level
  /// policy); searchers themselves consult just `enabled` and are uncapped
  /// unless handed a budget via set_prefetch_budget.
  size_t max_in_flight = 2;
};

/// Shared in-flight speculation counter for the sessions of one manager.
/// Thread-safe; sessions without a budget speculate without a cap.
class PrefetchBudget {
 public:
  /// `max_in_flight` = 0 means unlimited.
  explicit PrefetchBudget(size_t max_in_flight) : max_(max_in_flight) {}

  /// Claims a slot; false when the budget is exhausted.
  bool TryAcquire() {
    size_t cur = in_flight_.load(std::memory_order_relaxed);
    for (;;) {
      if (max_ != 0 && cur >= max_) return false;
      if (in_flight_.compare_exchange_weak(cur, cur + 1,
                                           std::memory_order_relaxed)) {
        return true;
      }
    }
  }

  void Release() { in_flight_.fetch_sub(1, std::memory_order_relaxed); }

  size_t in_flight() const {
    return in_flight_.load(std::memory_order_relaxed);
  }

 private:
  size_t max_;
  std::atomic<size_t> in_flight_{0};
};

/// Per-searcher speculation counters (bench_prefetch_latency reports these).
struct PrefetchStats {
  size_t scheduled = 0;    ///< Speculations submitted to the pool.
  size_t hits = 0;         ///< NextBatch calls served from a speculation.
  size_t misses = 0;       ///< Speculations invalid at consume time.
  size_t invalidated = 0;  ///< Speculations cancelled eagerly (feedback/refit).
  size_t throttled = 0;    ///< Speculations skipped: shared budget exhausted.
};

/// Base class holding the embedded dataset and the seen sets.
///
/// Seen state is kept at both granularities the system needs: per image for
/// the interaction loop, and per patch vector so the store scan tests a
/// reusable bitset instead of rebuilding an exclusion closure every batch.
///
/// Threading: the searcher itself stays single-threaded (one user drives one
/// session). Speculative prefetch tasks never touch the searcher — they work
/// on snapshot copies of the query and seen sets and only meet the searcher
/// again through a TaskHandle, so feedback can mutate the live seen sets
/// while a speculation is in flight.
class SearcherBase : public Searcher {
 public:
  explicit SearcherBase(const EmbeddedDataset& embedded);

  /// Cancels and drains any in-flight speculation.
  ~SearcherBase() override;

  const EmbeddedDataset& embedded() const { return *embedded_; }
  size_t num_seen() const { return seen_images_.count(); }
  bool IsSeen(uint32_t image_idx) const { return seen_images_.Test(image_idx); }

  /// Worker pool for sharded store lookups and speculative prefetch; null
  /// (the default) keeps lookups on the calling thread and disables
  /// speculation. Managed sessions share their SessionManager's pool. The
  /// pool must outlive the searcher.
  void set_thread_pool(ThreadPool* pool) { pool_ = pool; }
  ThreadPool* thread_pool() const { return pool_; }

  /// Speculation policy; subclasses opt in by calling SchedulePrefetch /
  /// TakePrefetched from their NextBatch.
  void set_prefetch_policy(const PrefetchPolicy& policy) {
    prefetch_policy_ = policy;
  }
  const PrefetchPolicy& prefetch_policy() const { return prefetch_policy_; }

  /// Optional cross-session in-flight cap (owned by the SessionManager; must
  /// outlive every queued speculation, which the manager guarantees by
  /// joining its pool first).
  void set_prefetch_budget(PrefetchBudget* budget) { budget_ = budget; }

  const PrefetchStats& prefetch_stats() const { return prefetch_stats_; }

 protected:
  /// Marks an image (and all of its patch vectors) as shown/labeled.
  /// Invalidates an in-flight speculation when the image deviates from the
  /// predicted batch.
  void MarkSeen(uint32_t image_idx);

  /// Top-n unseen images by max patch score under `query` (best first).
  /// Retries the store with a growing k until n distinct unseen images are
  /// found or the store is exhausted.
  std::vector<ScoredImage> TopImages(linalg::VecSpan query, size_t n) const;

  /// Schedules a speculative TopImages for the *next* batch on the pool:
  /// same query and n, seen sets snapshotted as if every image of `batch`
  /// had been labeled. No-op when the policy is off, the pool is null, the
  /// batch is empty (store exhausted), or the shared budget is spent.
  void SchedulePrefetch(linalg::VecSpan query,
                        const std::vector<ScoredImage>& batch, size_t n);

  /// Consumes the speculation if it exactly matches the requested lookup
  /// (generation, query bits, n, and the live seen set all unchanged from
  /// the prediction); otherwise cancels it and returns nullopt, and the
  /// caller computes synchronously. A valid consume waits for the task
  /// (helping the pool drain) and returns its result, which is bitwise
  /// identical to what TopImages would return now.
  std::optional<std::vector<ScoredImage>> TakePrefetched(linalg::VecSpan query,
                                                         size_t n);

  /// Cancels and forgets any in-flight speculation (e.g. the query vector
  /// changed in a refit).
  void InvalidatePrefetch();

  /// Converts image feedback to patch labels: for a relevant image, patches
  /// overlapping any feedback box are positive and the rest negative; for an
  /// irrelevant image every patch is negative. (The coarse tile of a
  /// relevant image always overlaps, hence is always positive — exactly the
  /// paper's rule.)
  std::vector<PatchLabel> LabelPatches(const ImageFeedback& feedback) const;

 private:
  /// Everything a speculative task reads or writes, shared between the
  /// searcher and the pool task so the task never dereferences the searcher
  /// (which may be mutated or destroyed while the task runs).
  struct SpecTask {
    linalg::VectorF query;        // snapshot of the lookup query
    store::SeenSet seen_patches;  // snapshot incl. the predicted batch
    size_t n = 0;
    CancellationToken cancel;
    std::vector<ScoredImage> result;  // written by the task, read after Wait

    /// Returns the budget slot exactly once: at task completion, or eagerly
    /// at cancellation so a cancelled-but-still-queued task doesn't hold a
    /// slot and throttle other sessions' live speculations. (The cancelled
    /// task may thus briefly overlap a fresh one — it stops at its next
    /// checkpoint.)
    void ReleaseBudgetOnce() {
      if (budget != nullptr && !budget_released.exchange(true)) {
        budget->Release();
      }
    }
    PrefetchBudget* budget = nullptr;
    std::atomic<bool> budget_released{false};
  };

  struct Speculation {
    std::shared_ptr<SpecTask> task;
    store::SeenSet seen_images;  // predicted image-level seen set
    uint64_t expected_generation = 0;
    TaskHandle handle;
  };

  /// The pure lookup: like TopImages but over explicit inputs only, so it
  /// can run on a pool thread against snapshots. Checks `cancel` (when
  /// non-null) between store rounds and returns early when requested.
  static std::vector<ScoredImage> ComputeTopImages(
      const EmbeddedDataset& embedded, ThreadPool* pool, linalg::VecSpan query,
      size_t n, const store::SeenSet& seen_patches,
      const CancellationToken* cancel);

  const EmbeddedDataset* embedded_;
  store::SeenSet seen_images_;   // over image indices
  store::SeenSet seen_patches_;  // over patch vector ids, fed to the store
  ThreadPool* pool_ = nullptr;

  PrefetchPolicy prefetch_policy_;
  PrefetchBudget* budget_ = nullptr;
  PrefetchStats prefetch_stats_;
  /// Bumped by every state change that can affect a lookup (MarkSeen, query
  /// updates via NoteQueryUpdated); a speculation predicts the generation at
  /// its consume point.
  uint64_t generation_ = 0;
  std::optional<Speculation> spec_;
  /// Handles of cancelled speculations that may still be running a scan
  /// round. Kept so the destructor can drain them: a task must never
  /// outlive its searcher, or it could submit nested pool work while the
  /// pool is shutting down. Pruned of finished handles on each schedule.
  std::vector<TaskHandle> stale_speculations_;

 protected:
  /// Subclasses call this when their query vector changed (refit): bumps the
  /// generation and invalidates any speculation built on the old query.
  void NoteQueryUpdated();
};

}  // namespace seesaw::core

#endif  // SEESAW_CORE_SEARCHER_BASE_H_
