// Shared machinery for vector-query searchers: seen-image bookkeeping,
// max-pooled image ranking over the patch store, and mapping of box feedback
// to patch labels (§4.3).
#ifndef SEESAW_CORE_SEARCHER_BASE_H_
#define SEESAW_CORE_SEARCHER_BASE_H_

#include <utility>
#include <vector>

#include "core/embedded_dataset.h"
#include "core/searcher.h"
#include "store/seen_set.h"

namespace seesaw {
class ThreadPool;
}  // namespace seesaw

namespace seesaw::core {

/// One labeled patch derived from image feedback.
struct PatchLabel {
  uint32_t vec_id = 0;
  bool positive = false;
};

/// Base class holding the embedded dataset and the seen sets.
///
/// Seen state is kept at both granularities the system needs: per image for
/// the interaction loop, and per patch vector so the store scan tests a
/// reusable bitset instead of rebuilding an exclusion closure every batch.
class SearcherBase : public Searcher {
 public:
  explicit SearcherBase(const EmbeddedDataset& embedded);

  const EmbeddedDataset& embedded() const { return *embedded_; }
  size_t num_seen() const { return seen_images_.count(); }
  bool IsSeen(uint32_t image_idx) const { return seen_images_.Test(image_idx); }

  /// Worker pool for sharded store lookups; null (the default) keeps
  /// lookups on the calling thread. Managed sessions share their
  /// SessionManager's pool. The pool must outlive the searcher.
  void set_thread_pool(ThreadPool* pool) { pool_ = pool; }
  ThreadPool* thread_pool() const { return pool_; }

 protected:
  /// Marks an image (and all of its patch vectors) as shown/labeled.
  void MarkSeen(uint32_t image_idx);

  /// Top-n unseen images by max patch score under `query` (best first).
  /// Retries the store with a growing k until n distinct unseen images are
  /// found or the store is exhausted.
  std::vector<ScoredImage> TopImages(linalg::VecSpan query, size_t n) const;

  /// Converts image feedback to patch labels: for a relevant image, patches
  /// overlapping any feedback box are positive and the rest negative; for an
  /// irrelevant image every patch is negative. (The coarse tile of a
  /// relevant image always overlaps, hence is always positive — exactly the
  /// paper's rule.)
  std::vector<PatchLabel> LabelPatches(const ImageFeedback& feedback) const;

 private:
  const EmbeddedDataset* embedded_;
  store::SeenSet seen_images_;   // over image indices
  store::SeenSet seen_patches_;  // over patch vector ids, fed to the store
  ThreadPool* pool_ = nullptr;
};

}  // namespace seesaw::core

#endif  // SEESAW_CORE_SEARCHER_BASE_H_
