// Shared machinery for vector-query searchers: seen-image bookkeeping,
// max-pooled image ranking over the patch store, mapping of box feedback to
// patch labels (§4.3), and think-time speculative prefetch of the next
// batch — including speculation *through* a query-moving refit.
#ifndef SEESAW_CORE_SEARCHER_BASE_H_
#define SEESAW_CORE_SEARCHER_BASE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "common/aligned.h"
#include "common/check.h"
#include "common/thread_pool.h"
#include "core/embedded_dataset.h"
#include "core/searcher.h"
#include "store/seen_set.h"

namespace seesaw::core {

/// One labeled patch derived from image feedback.
struct PatchLabel {
  uint32_t vec_id = 0;
  bool positive = false;
};

/// Think-time speculation policy (SeeSawOptions::prefetch).
///
/// When enabled, a searcher with a thread pool overlaps the next batch's
/// lookup with the user's inspection time. Two speculation shapes exist:
///
///  - Same-query (zero-shot paging): the scan launches right after NextBatch
///    with the current query, predicting the user labels exactly the
///    returned batch and the refit leaves the query unchanged.
///  - Through-the-refit (the full seesaw loop): the speculation first waits
///    for the predicted batch to be fully labeled, then runs the *aligner*
///    speculatively on the feedback received (a cloned snapshot, so the live
///    session is never touched) and launches the scan with the predicted
///    post-refit query. The real Refit() consumes the fit when its aligned
///    vector is bitwise identical to the prediction.
///
/// Any deviation — feedback outside the predicted batch, extra soft
/// feedback, changed aligner options, a refit landing on different bits —
/// cancels the speculation (mid-scan, via store::ScanControl) and NextBatch
/// recomputes synchronously, so results are bitwise identical to the
/// non-speculative path in all cases.
struct PrefetchPolicy {
  bool enabled = false;
  /// Maximum speculations in flight across all sessions sharing one
  /// PrefetchBudget; 0 = unlimited. A slot covers the whole speculative
  /// pipeline — including the aligner fit, which burns CPU unlike a pure
  /// scan — so a fleet of idle sessions can neither starve foreground
  /// lookups nor soak the pool in background fits. Read only by the budget's
  /// owner when sizing it (SessionManager, from the service-level policy);
  /// searchers themselves consult just `enabled` and are uncapped unless
  /// handed a budget via set_prefetch_budget.
  size_t max_in_flight = 2;
};

/// Shared in-flight speculation counter for the sessions of one manager.
/// Thread-safe; sessions without a budget speculate without a cap.
///
/// Accounting is a single atomic, exempt from GUARDED_BY (see
/// common/thread_annotations.h): the counter is a pure admission throttle,
/// no data is ever published through it — slot holders synchronize their
/// results via TaskHandle completion — so every access is
/// memory_order_relaxed, and a momentarily stale in_flight() is fine (the
/// CAS in TryAcquire still makes each admission decision against a value
/// that was true at some instant, which is all a cap needs).
class PrefetchBudget {
 public:
  /// `max_in_flight` = 0 means unlimited.
  explicit PrefetchBudget(size_t max_in_flight) : max_(max_in_flight) {}

  /// Claims a slot; false when the budget is exhausted.
  bool TryAcquire() {
    size_t cur = in_flight_.value.load(std::memory_order_relaxed);
    for (;;) {
      if (max_ != 0 && cur >= max_) return false;
      if (in_flight_.value.compare_exchange_weak(
              cur, cur + 1, std::memory_order_relaxed)) {
        return true;
      }
    }
  }

  /// Returns a slot. Every Release must pair with exactly one successful
  /// TryAcquire (SpecTask::ReleaseBudgetOnce is the callers' single-release
  /// gate). An unmatched Release would wrap the unsigned counter to
  /// SIZE_MAX and silently disable speculation manager-wide (in_flight >=
  /// max forever, every future TryAcquire refused) — a negative balance is
  /// a programming error worth an abort, not a quiet throttle.
  void Release() {
    size_t prev = in_flight_.value.fetch_sub(1, std::memory_order_relaxed);
    SEESAW_CHECK_GT(prev, 0u)
        << "PrefetchBudget::Release without a matching TryAcquire";
  }

  size_t in_flight() const {
    return in_flight_.value.load(std::memory_order_relaxed);
  }

 private:
  const size_t max_;  // immutable after construction; read without a lock
  /// Padded to its own line: one budget is shared by every session of a
  /// manager, so under load many pool workers CAS/decrement it while the
  /// const `max_` beside it is read on each admission — unpadded, the
  /// budget's write traffic would also evict readers of whatever the
  /// enclosing object packs around it (memory-audit contract, PR 9).
  CacheAligned<std::atomic<size_t>> in_flight_;
};

/// Per-searcher speculation counters (bench_prefetch_latency reports these).
struct PrefetchStats {
  size_t scheduled = 0;    ///< Speculations scheduled (either shape).
  size_t hits = 0;         ///< NextBatch calls served from a speculation.
  size_t misses = 0;       ///< Speculations invalid at consume time.
  size_t invalidated = 0;  ///< Speculations cancelled eagerly (feedback/refit).
  size_t throttled = 0;    ///< Speculations skipped: shared budget exhausted.
  // Through-the-refit accounting (zero for same-query speculations):
  size_t refit_fits = 0;       ///< Speculative aligner fits launched.
  size_t refit_matches = 0;    ///< Refits landing bitwise on the predicted
                               ///< query (the speculative scan survives).
  size_t refit_mismatches = 0; ///< Armed fits discarded at refit time (state
                               ///< diverged between arm and Refit, or the
                               ///< speculative fit failed).
  size_t hits_post_refit = 0;  ///< Subset of `hits` whose scan ran with a
                               ///< predicted post-refit query.
};

/// Base class holding the embedded dataset and the seen sets.
///
/// Seen state is kept at both granularities the system needs: per image for
/// the interaction loop, and per patch vector so the store scan tests a
/// reusable bitset instead of rebuilding an exclusion closure every batch.
///
/// Threading: the searcher itself stays single-threaded (one user drives one
/// session). Speculative tasks never touch the searcher — they work on
/// snapshot copies of the query, the seen sets and (for refit speculation)
/// the aligner state, and only meet the searcher again through TaskHandles,
/// so feedback can mutate the live state while a speculation is in flight.
///
/// Refit-speculation state machine (one speculation at a time):
///
///   NextBatch ── same-query policy ──▶ [kScan: scan(current query)]
///       │
///       └── refit policy ──▶ [kAwaitLabels]
///                                │ last predicted image labeled ("armed")
///                                ▼
///                     [kFitScan: fit(cloned aligner) → scan(predicted q)]
///                                │ Refit(): aligned == predicted (bitwise)
///                                ▼
///                     [blessed: consumable by the next NextBatch]
///
/// Exits from every state: feedback outside the predicted batch, a refit
/// whose query lands on different bits, a changed lookup (n / query /
/// generation) at consume time — each cancels the speculation (the token
/// stops the scan at its next in-scan checkpoint) and the caller recomputes
/// synchronously.
class SearcherBase : public Searcher {
 public:
  explicit SearcherBase(const EmbeddedDataset& embedded);

  /// Cancels and drains any in-flight speculation.
  ~SearcherBase() override;

  const EmbeddedDataset& embedded() const { return *embedded_; }
  size_t num_seen() const { return seen_images_.count(); }
  bool IsSeen(uint32_t image_idx) const { return seen_images_.Test(image_idx); }

  /// Worker pool for sharded store lookups and speculative prefetch; null
  /// (the default) keeps lookups on the calling thread and disables
  /// speculation. Managed sessions share their SessionManager's pool. The
  /// pool must outlive the searcher.
  void set_thread_pool(ThreadPool* pool) { pool_ = pool; }
  ThreadPool* thread_pool() const { return pool_; }

  /// Speculation policy; subclasses opt in by calling SchedulePrefetch /
  /// SchedulePrefetchAfterRefit / TakePrefetched from their NextBatch.
  void set_prefetch_policy(const PrefetchPolicy& policy) {
    prefetch_policy_ = policy;
  }
  const PrefetchPolicy& prefetch_policy() const { return prefetch_policy_; }

  /// Optional cross-session in-flight cap (owned by the SessionManager; must
  /// outlive every queued speculation, which the manager guarantees by
  /// joining its pool first).
  void set_prefetch_budget(PrefetchBudget* budget) { budget_ = budget; }

  const PrefetchStats& prefetch_stats() const { return prefetch_stats_; }

 protected:
  /// A speculative aligner fit: produces the predicted post-refit query on a
  /// pool thread, or nullopt when the fit fails (speculation aborted). Must
  /// be self-contained — it closes over cloned state only, never the
  /// searcher or its aligner.
  using PredictedFit = std::function<std::optional<linalg::VectorF>()>;

  /// Invoked on the searcher's thread at arm time — the moment the predicted
  /// batch becomes fully labeled — to clone the session's fit state (e.g.
  /// QueryAligner::Snapshot) into a self-contained PredictedFit.
  using PredictedFitFactory = std::function<PredictedFit()>;

  /// Marks an image (and all of its patch vectors) as shown/labeled.
  /// Invalidates an in-flight speculation when the image deviates from the
  /// predicted batch; arms a pending refit speculation when it completes it.
  void MarkSeen(uint32_t image_idx);

  /// Top-n unseen images by max patch score under `query` (best first).
  /// Retries the store with a growing k until n distinct unseen images are
  /// found or the store is exhausted.
  std::vector<ScoredImage> TopImages(linalg::VecSpan query, size_t n) const;

  /// Schedules a same-query speculative TopImages for the *next* batch on
  /// the pool: same query and n, seen sets snapshotted as if every image of
  /// `batch` had been labeled. For searchers whose refit never moves the
  /// query (zero-shot). No-op when the policy is off, the pool is null, the
  /// batch is empty (store exhausted), or the shared budget is spent.
  void SchedulePrefetch(linalg::VecSpan query,
                        const std::vector<ScoredImage>& batch, size_t n);

  /// Schedules a through-the-refit speculation: the same seen-set prediction
  /// as SchedulePrefetch, but the scan query is unknown until the aligner
  /// runs. The speculation idles (kAwaitLabels) until every image of `batch`
  /// has been labeled; at that moment `fit_factory` clones the fit state on
  /// the searcher's thread, the shared budget is charged, and a fit → scan
  /// pipeline launches on the pool. CommitRefit later decides consume vs
  /// cancel. No-op under the same conditions as SchedulePrefetch (the budget
  /// is checked at arm time, when CPU is actually about to burn).
  void SchedulePrefetchAfterRefit(const std::vector<ScoredImage>& batch,
                                  size_t n, PredictedFitFactory fit_factory);

  /// Subclasses call this from Refit() with the freshly aligned query after
  /// updating their live query vector (`query_moved` = the vector changed
  /// bitwise). Bumps the lookup generation on a move, and reconciles any
  /// armed refit speculation: waits for the speculative fit (not the scan),
  /// compares bitwise, and either blesses the speculation to survive the
  /// query move — the next NextBatch can then consume its scan — or cancels
  /// it. Safe to call with no speculation pending (plain generation bump).
  void CommitRefit(linalg::VecSpan refit_query, bool query_moved);

  /// Consumes the speculation if it exactly matches the requested lookup
  /// (generation, query bits, n, and the live seen set all unchanged from
  /// the prediction); otherwise cancels it and returns nullopt, and the
  /// caller computes synchronously. A valid consume waits for the task
  /// (helping the pool drain) and returns its result, which is bitwise
  /// identical to what TopImages would return now.
  std::optional<std::vector<ScoredImage>> TakePrefetched(linalg::VecSpan query,
                                                         size_t n);

  /// Cancels and forgets any in-flight speculation.
  void InvalidatePrefetch();

  /// Converts image feedback to patch labels: for a relevant image, patches
  /// overlapping any feedback box are positive and the rest negative; for an
  /// irrelevant image every patch is negative. (The coarse tile of a
  /// relevant image always overlaps, hence is always positive — exactly the
  /// paper's rule.)
  std::vector<PatchLabel> LabelPatches(const ImageFeedback& feedback) const;

 private:
  /// Lifecycle of the single speculation slot (see the class comment).
  enum class SpecStage {
    kScan,         ///< Scan in flight with a known (unmoved) query.
    kAwaitLabels,  ///< Refit speculation waiting for the batch's labels;
                   ///< nothing submitted, no budget held.
    kFitScan,      ///< Fit → scan pipeline in flight with the predicted
                   ///< post-refit query.
  };

  /// Everything a speculative task reads or writes, shared between the
  /// searcher and the pool tasks so the tasks never dereference the searcher
  /// (which may be mutated or destroyed while they run).
  ///
  /// Threading contract (no mutex, by design — so no GUARDED_BY): each
  /// non-atomic field has exactly one writer phase, and every cross-thread
  /// read is ordered after that writer by a TaskHandle wait (whose
  /// completion is published under the handle's mutex with release/acquire
  /// semantics — see TaskHandle::State::done). Concretely:
  ///  - query/n/seen_patches: written on the searcher's thread before the
  ///    task is submitted (Submit's queue mutex orders the hand-off); for a
  ///    kFitScan speculation, `query` is re-written by the fit task and only
  ///    read after fit_handle.Wait().
  ///  - fit_ok: written by the fit task, read after fit_handle.Wait().
  ///  - result: written by the scan task, read after handle.Wait().
  ///  - cancel / budget_released: atomics; safe from any thread at any time.
  /// The thread-safety analysis cannot check handle-ordered hand-offs (it
  /// only knows capabilities), which is exactly why this struct keeps the
  /// explicit per-field contract above and the TSan leg keeps running.
  struct SpecTask {
    linalg::VectorF query;        // lookup query: snapshotted at schedule for
                                  // kScan; written by the fit task for
                                  // kFitScan (read only after its handle)
    store::SeenSet seen_patches;  // snapshot incl. the predicted batch
    size_t n = 0;
    CancellationToken cancel;
    std::vector<ScoredImage> result;  // written by the scan task, read after
                                      // Wait
    PredictedFit fit;      // set at arm time (kFitScan only)
    bool fit_ok = false;   // written by the fit task before its handle
                           // completes; read after fit_handle.Wait()

    /// Returns the budget slot exactly once: at task completion, or eagerly
    /// at cancellation so a cancelled-but-still-queued task doesn't hold a
    /// slot and throttle other sessions' live speculations. (The cancelled
    /// task may thus briefly overlap a fresh one — it stops at its next
    /// checkpoint.)
    void ReleaseBudgetOnce() {
      if (budget != nullptr && !budget_released.exchange(true)) {
        budget->Release();
      }
    }
    PrefetchBudget* budget = nullptr;
    std::atomic<bool> budget_released{false};
  };

  /// The searcher-side view of the single speculation slot. Every field is
  /// read and written on the searcher's thread only (one user drives one
  /// session — the class contract); pool tasks see none of this, only the
  /// shared SpecTask above. Stage transitions (kScan / kAwaitLabels →
  /// kFitScan → blessed) therefore need no lock: they are ordinary
  /// single-threaded writes, and the cross-thread edges all run through
  /// `task` and the two handles.
  struct Speculation {
    std::shared_ptr<SpecTask> task;
    store::SeenSet seen_images;  // predicted image-level seen set
    uint64_t expected_generation = 0;
    SpecStage stage = SpecStage::kScan;
    /// Whether task->query is published and safe to read/compare on the
    /// searcher's thread: true from the start for kScan, true after
    /// CommitRefit blessed a kFitScan speculation (its fit handle was
    /// waited, which orders the fit task's write).
    bool query_known = false;
    /// Predicted-batch images not yet labeled (kAwaitLabels arming counter).
    size_t images_remaining = 0;
    PredictedFitFactory fit_factory;  // kAwaitLabels only
    TaskHandle fit_handle;  // kFitScan: the fit stage
    TaskHandle handle;      // the scan (kScan, or kFitScan after the fit)
  };

  /// The pure lookup: like TopImages but over explicit inputs only, so it
  /// can run on a pool thread against snapshots. Checks `cancel` (when
  /// non-null) between store rounds and returns early when requested.
  static std::vector<ScoredImage> ComputeTopImages(
      const EmbeddedDataset& embedded, ThreadPool* pool, linalg::VecSpan query,
      size_t n, const store::SeenSet& seen_patches,
      const CancellationToken* cancel);

  /// Shared head of both Schedule entry points: supersedes the current
  /// speculation and prunes finished stale handles. Returns false when the
  /// policy/pool/batch preconditions rule speculation out.
  bool BeginSchedule(const std::vector<ScoredImage>& batch);

  /// Builds the shared speculation skeleton: the task snapshot (seen patches
  /// + predicted batch patches), the predicted image seen set, and the
  /// number of genuinely new images in the batch.
  Speculation MakeSpeculation(const std::vector<ScoredImage>& batch, size_t n,
                              size_t* new_images);

  /// kAwaitLabels → kFitScan: clones the fit state via the factory (on the
  /// calling = searcher's thread), charges the budget, and launches the
  /// fit → scan pipeline.
  void ArmPredictedFit();

  /// Cancels the speculation's tasks (if any), returns its budget slot and
  /// parks its handles for the destructor to drain.
  void RetireSpeculation(Speculation&& spec);

  const EmbeddedDataset* embedded_;
  store::SeenSet seen_images_;   // over image indices
  store::SeenSet seen_patches_;  // over patch vector ids, fed to the store
  ThreadPool* pool_ = nullptr;

  PrefetchPolicy prefetch_policy_;
  PrefetchBudget* budget_ = nullptr;
  PrefetchStats prefetch_stats_;
  /// Bumped by every state change that can affect a lookup (MarkSeen, query
  /// moves committed via CommitRefit); a speculation predicts the generation
  /// at its consume point.
  uint64_t generation_ = 0;
  std::optional<Speculation> spec_;
  /// Handles of cancelled speculations that may still be running a scan
  /// round. Kept so the destructor can drain them: a task must never
  /// outlive its searcher, or it could submit nested pool work while the
  /// pool is shutting down. Pruned of finished handles on each schedule.
  std::vector<TaskHandle> stale_speculations_;
};

}  // namespace seesaw::core

#endif  // SEESAW_CORE_SEARCHER_BASE_H_
