// Shared machinery for vector-query searchers: seen-image bookkeeping,
// max-pooled image ranking over the patch store, and mapping of box feedback
// to patch labels (§4.3).
#ifndef SEESAW_CORE_SEARCHER_BASE_H_
#define SEESAW_CORE_SEARCHER_BASE_H_

#include <utility>
#include <vector>

#include "core/embedded_dataset.h"
#include "core/searcher.h"

namespace seesaw::core {

/// One labeled patch derived from image feedback.
struct PatchLabel {
  uint32_t vec_id = 0;
  bool positive = false;
};

/// Base class holding the embedded dataset and the seen set.
class SearcherBase : public Searcher {
 public:
  explicit SearcherBase(const EmbeddedDataset& embedded);

  const EmbeddedDataset& embedded() const { return *embedded_; }
  size_t num_seen() const { return num_seen_; }
  bool IsSeen(uint32_t image_idx) const { return seen_[image_idx] != 0; }

 protected:
  /// Marks an image as shown/labeled.
  void MarkSeen(uint32_t image_idx);

  /// Top-n unseen images by max patch score under `query` (best first).
  /// Retries the store with a growing k until n distinct unseen images are
  /// found or the store is exhausted.
  std::vector<ScoredImage> TopImages(linalg::VecSpan query, size_t n) const;

  /// Converts image feedback to patch labels: for a relevant image, patches
  /// overlapping any feedback box are positive and the rest negative; for an
  /// irrelevant image every patch is negative. (The coarse tile of a
  /// relevant image always overlaps, hence is always positive — exactly the
  /// paper's rule.)
  std::vector<PatchLabel> LabelPatches(const ImageFeedback& feedback) const;

 private:
  const EmbeddedDataset* embedded_;
  std::vector<char> seen_;
  size_t num_seen_ = 0;
};

}  // namespace seesaw::core

#endif  // SEESAW_CORE_SEARCHER_BASE_H_
