// The SeeSaw query-alignment loss (§4.4, Table 1 of the paper):
//
//   L(w) =  sum_i LogLoss(y_i, sigmoid(w . x_i))     -- fit user feedback
//         + lambda      * |w|^2                      -- bound |w|
//         + lambda_text * (1 - w.q_text / |w|)       -- CLIP alignment (§4.1)
//         + lambda_db   * (w^T M_D w) / |w|^2        -- DB alignment  (§4.2)
//
// No bias term: the paper found fitting b reduces the quality of w as a
// query. The text and DB terms are scale-invariant in w; the lambda term
// keeps the data term in its near-linear regime with few examples.
#ifndef SEESAW_CORE_LOSS_H_
#define SEESAW_CORE_LOSS_H_

#include <vector>

#include "linalg/matrix.h"
#include "linalg/vector_ops.h"
#include "optim/objective.h"

namespace seesaw::core {

/// Loss hyper-parameters.
///
/// The paper reports lambda = 100, lambda_c = 10, lambda_D = 1000 for CLIP's
/// 512-d embedding and its score/distance scales. The regularizer strengths
/// only have meaning relative to the data term's magnitude, which depends on
/// the embedding geometry; for the synthetic embedding the equivalent
/// operating point (same qualitative balance: feedback outweighs the prior
/// as examples accumulate, few-shot over-fits without the text term) is
/// lambda = 1, lambda_text = 1, lambda_db = 0.3 against the trace-normalized
/// M_D. The Table 7 bench sweeps a decade around these defaults, mirroring
/// the paper's robustness study. See EXPERIMENTS.md.
struct LossOptions {
  /// ||w||^2 coefficient.
  double lambda = 1.0;
  /// CLIP-alignment coefficient; only applied when use_text_term.
  double lambda_text = 1.0;
  /// DB-alignment coefficient (M_D is trace-normalized to dim, so a random
  /// unit direction scores ~1). Only applied when use_db_term and an M_D
  /// matrix is provided.
  double lambda_db = 0.3;
  /// Ablation switches (Table 2 rows).
  bool use_text_term = true;
  bool use_db_term = true;
  /// Re-weight examples so the positive and negative classes contribute
  /// equal total mass (sklearn-style "balanced"). Box feedback produces an
  /// extreme imbalance — one positive patch against tens of negatives per
  /// image — under which unweighted logistic regression learns an
  /// anti-popularity direction instead of the concept.
  bool balance_classes = true;
};

/// Differentiable loss over the current feedback set. The feedback examples
/// are float32 embedding vectors; evaluation happens in double precision.
class AlignerLoss {
 public:
  /// `q_text` is the unit text query q0. `md` may be null (DB term off);
  /// when provided it must be dim x dim and outlive this object.
  AlignerLoss(const LossOptions& options, linalg::VectorF q_text,
              const linalg::MatrixF* md);

  /// Adds a labeled example (y = 1 positive, 0 negative). `weight` scales
  /// its contribution; soft labels in [0,1] are allowed (used by the
  /// propagation variant).
  void AddExample(linalg::VecSpan x, float y, float weight = 1.0f);

  void ClearExamples();
  size_t num_examples() const { return labels_.size(); }
  size_t dim() const { return q_text_.size(); }
  const LossOptions& options() const { return options_; }
  /// Replaces the hyper-parameters; the accumulated examples are kept.
  void set_options(const LossOptions& options) { options_ = options; }

  /// Evaluates L(w) and its gradient.
  double Evaluate(const optim::VectorD& w, optim::VectorD* grad) const;

  /// Adapter for the optim:: minimizers.
  optim::Objective AsObjective() const;

 private:
  LossOptions options_;
  linalg::VectorF q_text_;
  const linalg::MatrixF* md_;
  linalg::MatrixF examples_;  // grown row table
  size_t used_rows_ = 0;
  std::vector<float> labels_;
  std::vector<float> weights_;
};

}  // namespace seesaw::core

#endif  // SEESAW_CORE_LOSS_H_
