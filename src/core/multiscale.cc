#include "core/multiscale.h"

#include <algorithm>

#include "common/check.h"

namespace seesaw::core {

std::vector<data::Box> TileImage(int width, int height,
                                 const MultiscaleOptions& options) {
  SEESAW_CHECK_GT(width, 0);
  SEESAW_CHECK_GT(height, 0);
  std::vector<data::Box> tiles;
  tiles.push_back(data::Box{0, 0, static_cast<float>(width),
                            static_cast<float>(height)});
  if (!options.enabled) return tiles;

  int min_dim = std::min(width, height);
  int side = min_dim / 2;
  // Fine tiles only when they would be at least the model's native input
  // size ("as long as the resulting patch was larger than 224 pixels").
  if (side < options.base_patch) return tiles;
  int stride = side / 2;
  SEESAW_CHECK_GT(stride, 0);

  for (int y = 0; y + side <= height; y += stride) {
    for (int x = 0; x + side <= width; x += stride) {
      tiles.push_back(data::Box{
          static_cast<float>(x), static_cast<float>(y),
          static_cast<float>(x + side), static_cast<float>(y + side)});
    }
  }
  return tiles;
}

}  // namespace seesaw::core
