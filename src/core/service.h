// SeeSawService: the "server layer" of the paper's component diagram (§2) —
// a single entry point that owns the preprocessed dataset and hands out
// search sessions, the API an application (like the paper's web UI) builds
// on.
//
//   auto service = SeeSawService::Create(dataset, options);
//   auto session = service->StartSession("wheelchair");
//   auto page = (*session)->NextBatch(10);
//   (*session)->AddFeedback({image, /*relevant=*/true, boxes});
//   (*session)->Refit();
#ifndef SEESAW_CORE_SERVICE_H_
#define SEESAW_CORE_SERVICE_H_

#include <memory>
#include <string>

#include "core/embedded_dataset.h"
#include "core/seesaw_searcher.h"

namespace seesaw::core {

/// Service configuration: preprocessing plus per-session search options.
struct ServiceOptions {
  PreprocessOptions preprocess;
  SeeSawOptions search;
  /// Optional path to a preprocessing cache: when the file exists it is
  /// loaded instead of re-embedding; when it does not, preprocessing runs
  /// and the cache is written.
  std::string cache_path;
};

/// Owns the embedded dataset and creates per-query search sessions.
/// Thread-compatible: sessions are independent, but each session is
/// single-threaded.
class SeeSawService {
 public:
  /// Runs (or loads) preprocessing. `dataset` must outlive the service.
  static StatusOr<SeeSawService> Create(const data::Dataset& dataset,
                                        const ServiceOptions& options);

  /// Starts a session from a category-name text query (NotFound for unknown
  /// names).
  StatusOr<std::unique_ptr<SeeSawSearcher>> StartSession(
      const std::string& text_query) const;

  /// Starts a session from an arbitrary query vector (must be unit-normed,
  /// matching the embedding dimension).
  StatusOr<std::unique_ptr<SeeSawSearcher>> StartSession(
      linalg::VectorF query_vector) const;

  const EmbeddedDataset& embedded() const { return *embedded_; }

 private:
  SeeSawService(const data::Dataset* dataset, ServiceOptions options)
      : dataset_(dataset), options_(std::move(options)) {}

  const data::Dataset* dataset_;
  ServiceOptions options_;
  std::unique_ptr<EmbeddedDataset> embedded_;
};

}  // namespace seesaw::core

#endif  // SEESAW_CORE_SERVICE_H_
