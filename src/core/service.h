// SeeSawService: the "server layer" of the paper's component diagram (§2) —
// a single entry point that owns the preprocessed dataset and hands out
// search sessions, the API an application (like the paper's web UI) builds
// on.
//
//   auto service = SeeSawService::Create(dataset, options);
//   auto session = service->StartSession("wheelchair");
//   auto page = (*session)->NextBatch(10);
//   (*session)->AddFeedback({image, /*relevant=*/true, boxes});
//   (*session)->Refit();
#ifndef SEESAW_CORE_SERVICE_H_
#define SEESAW_CORE_SERVICE_H_

#include <memory>
#include <string>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "core/embedded_dataset.h"
#include "core/seesaw_searcher.h"

namespace seesaw::core {

class SessionManager;

/// Session lifecycle and admission limits for one SessionManager. Zero
/// always means "unlimited / disabled", so the default is the pre-serving
/// behaviour (no quotas, no eviction, no in-flight cap). Lives here (not in
/// session_manager.h) so ServiceOptions can embed it; the semantics are
/// documented on the SessionManager methods that enforce each limit.
struct SessionLimits {
  /// Live sessions one user key may hold at once (CreateSession beyond the
  /// quota is a typed ResourceExhausted). 0 = unlimited.
  size_t max_sessions_per_user = 0;
  /// Sessions idle (no Acquire/Touch) longer than this are evicted by the
  /// next SweepIdle(). 0 = never evict.
  double idle_ttl_seconds = 0.0;
  /// Concurrent SessionLeases per session; Acquire beyond the cap is a
  /// typed ResourceExhausted ("busy"). 0 = unlimited. Serving front ends
  /// set 1, which also enforces the searcher's single-threaded contract.
  size_t max_inflight_per_session = 0;
};

/// Service configuration: preprocessing plus per-session search options.
/// `search.prefetch` doubles as the manager-wide speculation policy: its
/// max_in_flight caps think-time prefetches across all managed sessions.
/// A sharded store backend is configured here too: set
/// `preprocess.backend = StoreBackend::kSharded` and
/// `preprocess.sharded.num_shards`; managed sessions then fan each lookup
/// out over the shards on the manager's shared pool (session_threads).
struct ServiceOptions {
  PreprocessOptions preprocess;
  SeeSawOptions search;
  /// Optional path to a preprocessing cache: when the file exists it is
  /// loaded instead of re-embedding; when it does not, preprocessing runs
  /// and the cache is written.
  std::string cache_path;
  /// Worker threads of the shared session pool (0 = hardware default).
  size_t session_threads = 0;
  /// Lifecycle/admission policy for sessions(): per-user quotas, idle-TTL
  /// eviction, per-session in-flight caps. Defaults are all "unlimited".
  SessionLimits session_limits;
};

/// Owns the embedded dataset and creates per-query search sessions.
/// Concurrent serving goes through sessions(): managed sessions live behind
/// integer ids and share one lookup ThreadPool. StartSession remains for
/// single-user embedding into other drivers (benchmarks, examples); each
/// individual session is single-threaded either way.
class SeeSawService {
 public:
  // Out of line: SessionManager is only forward-declared here. Moves are not
  // thread-safe — they relocate the registry mutex itself — and must be
  // externally serialized against sessions() (in practice they happen during
  // single-threaded setup, before any session exists).
  SeeSawService(SeeSawService&&) noexcept;
  SeeSawService& operator=(SeeSawService&&) noexcept
      SEESAW_NO_THREAD_SAFETY_ANALYSIS;
  ~SeeSawService();

  /// Runs (or loads) preprocessing. `dataset` must outlive the service.
  static StatusOr<SeeSawService> Create(const data::Dataset& dataset,
                                        const ServiceOptions& options);

  /// Starts a session from a category-name text query (NotFound for unknown
  /// names).
  StatusOr<std::unique_ptr<SeeSawSearcher>> StartSession(
      const std::string& text_query) const;

  /// Starts a session from an arbitrary query vector (must be unit-normed,
  /// matching the embedding dimension).
  StatusOr<std::unique_ptr<SeeSawSearcher>> StartSession(
      linalg::VectorF query_vector) const;

  /// The session registry for concurrent serving (created on first use and
  /// sized by ServiceOptions::session_threads). Safe to call from multiple
  /// threads; the manager follows the service if it is moved.
  SessionManager& sessions() SEESAW_EXCLUDES(*sessions_mu_);

  const EmbeddedDataset& embedded() const { return *embedded_; }

 private:
  SeeSawService(const data::Dataset* dataset, ServiceOptions options);

  const data::Dataset* dataset_;
  ServiceOptions options_;
  std::unique_ptr<EmbeddedDataset> embedded_;
  // Behind unique_ptrs so the service stays movable: the mutex guards the
  // lazy creation below, and the manager is re-pointed at the service's new
  // address by the move operations (which are externally serialized — see
  // above — hence the escape hatch on the move assignment).
  std::unique_ptr<Mutex> sessions_mu_;
  std::unique_ptr<SessionManager> sessions_ SEESAW_GUARDED_BY(*sessions_mu_);
};

}  // namespace seesaw::core

#endif  // SEESAW_CORE_SERVICE_H_
