// QueryAligner: the `query_align` of Listing 1 — turns the text query plus
// accumulated box feedback into the next query vector by minimizing the
// AlignerLoss with L-BFGS. Work per call grows with the amount of feedback
// (plus a d x d product), never with the database size — the paper's central
// scalability property.
#ifndef SEESAW_CORE_ALIGNER_H_
#define SEESAW_CORE_ALIGNER_H_

#include <vector>

#include "common/statusor.h"
#include "core/loss.h"
#include "optim/lbfgs.h"

namespace seesaw::core {

/// Aligner configuration.
struct AlignerOptions {
  LossOptions loss;
  optim::LbfgsOptions lbfgs = [] {
    optim::LbfgsOptions o;
    o.max_iterations = 60;  // "a few tens of steps" (§4.4)
    o.gradient_tolerance = 1e-6;
    return o;
  }();
  /// Warm-start each Align() from the previous solution instead of q0.
  bool warm_start = true;
};

/// Stateful per-search aligner. Not thread-safe; one instance per session.
class QueryAligner {
 public:
  /// `q_text` is the unit CLIP text embedding (q0). `md` may be null.
  QueryAligner(const AlignerOptions& options, linalg::VectorF q_text,
               const linalg::MatrixF* md);

  /// Records one labeled feedback vector (a patch embedding).
  void AddFeedback(linalg::VecSpan x, bool positive, float weight = 1.0f);

  /// Records a soft-labeled example (used by the propagation variant).
  void AddSoftFeedback(linalg::VecSpan x, float y, float weight = 1.0f);

  /// Drops all accumulated feedback (restarts the search).
  void Reset();

  size_t num_positive() const { return num_positive_; }
  size_t num_negative() const { return num_negative_; }
  size_t num_examples() const { return loss_.num_examples(); }

  /// Minimizes the loss and returns the unit-normalized next query vector
  /// q_{t+1}. With no feedback recorded, returns q0 unchanged.
  StatusOr<linalg::VectorF> Align();

  /// Statistics of the last Align() call.
  const optim::OptimResult& last_result() const { return last_result_; }

 private:
  AlignerOptions options_;
  linalg::VectorF q_text_;
  AlignerLoss loss_;
  optim::Lbfgs lbfgs_;
  optim::VectorD warm_;
  bool have_warm_ = false;
  size_t num_positive_ = 0;
  size_t num_negative_ = 0;
  optim::OptimResult last_result_;
};

}  // namespace seesaw::core

#endif  // SEESAW_CORE_ALIGNER_H_
