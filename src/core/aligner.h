// QueryAligner: the `query_align` of Listing 1 — turns the text query plus
// accumulated box feedback into the next query vector by minimizing the
// AlignerLoss with L-BFGS. Work per call grows with the amount of feedback
// (plus a d x d product), never with the database size — the paper's central
// scalability property.
//
// Determinism contract: Align() is a pure function of the aligner's state
// (options, q_text, accumulated examples in insertion order, warm start).
// The whole fit path — AlignerLoss::Evaluate, linalg::DotDouble / MatVec,
// and optim::Lbfgs::Minimize — is sequential arithmetic with no randomness,
// no time dependence and no thread-count dependence, and the SIMD kernel
// layer guarantees bitwise-identical scores per process (linalg/simd.h), so
// identical feedback sequences yield bitwise-identical aligned queries.
// The think-time refit speculation (searcher_base.h) leans on this: a
// speculative fit over a Snapshot() predicts the real Refit() bit for bit
// whenever no further state change lands in between. The invariant is
// enforced by tests/aligner_determinism_test.cc.
#ifndef SEESAW_CORE_ALIGNER_H_
#define SEESAW_CORE_ALIGNER_H_

#include <vector>

#include "common/statusor.h"
#include "core/loss.h"
#include "optim/lbfgs.h"

namespace seesaw::core {

/// Aligner configuration.
struct AlignerOptions {
  LossOptions loss;
  optim::LbfgsOptions lbfgs = [] {
    optim::LbfgsOptions o;
    o.max_iterations = 60;  // "a few tens of steps" (§4.4)
    o.gradient_tolerance = 1e-6;
    return o;
  }();
  /// Warm-start each Align() from the previous solution instead of q0.
  bool warm_start = true;
};

/// Frozen copy of everything Align() reads: options, text query, the
/// accumulated feedback (deep copy, insertion order preserved) and the warm
/// start. A snapshot is self-contained — AlignWith(snapshot) may run on any
/// thread while the live aligner keeps accumulating feedback. Cost: the
/// examples table (num_examples x dim floats), tiny next to one store scan.
struct AlignerSnapshot {
  AlignerOptions options;
  linalg::VectorF q_text;
  AlignerLoss loss;
  optim::VectorD warm;
  bool have_warm = false;
  /// The fit-state version the snapshot was taken at (see fit_generation()).
  uint64_t fit_generation = 0;
};

/// Stateful per-search aligner. Not thread-safe; one instance per session.
/// The const snapshot path (Snapshot / AlignWith) is the exception: it never
/// touches mutable state, so speculative fits over snapshots may run
/// concurrently with anything.
class QueryAligner {
 public:
  /// `q_text` is the unit CLIP text embedding (q0). `md` may be null.
  QueryAligner(const AlignerOptions& options, linalg::VectorF q_text,
               const linalg::MatrixF* md);

  /// Records one labeled feedback vector (a patch embedding).
  void AddFeedback(linalg::VecSpan x, bool positive, float weight = 1.0f);

  /// Records a soft-labeled example (used by the propagation variant).
  void AddSoftFeedback(linalg::VecSpan x, float y, float weight = 1.0f);

  /// Drops all accumulated feedback (restarts the search).
  void Reset();

  /// Replaces the options mid-session (hyper-parameter adjustment). Counts
  /// as a fit-state change: a speculative fit taken under the old options no
  /// longer predicts Align().
  void set_options(const AlignerOptions& options);
  const AlignerOptions& options() const { return options_; }

  size_t num_positive() const { return num_positive_; }
  size_t num_negative() const { return num_negative_; }
  size_t num_examples() const { return loss_.num_examples(); }

  /// Version counter of the fit-relevant state: bumped by AddFeedback,
  /// AddSoftFeedback, Reset and set_options. Two Align() calls bracketing an
  /// unchanged generation return bitwise-identical vectors (determinism
  /// contract above) — the refit-speculation consume check rests on this.
  uint64_t fit_generation() const { return fit_generation_; }

  /// Minimizes the loss and returns the unit-normalized next query vector
  /// q_{t+1}. With no feedback recorded, returns q0 unchanged.
  StatusOr<linalg::VectorF> Align();

  /// Clones the current fit state (cheap deep copy; see AlignerSnapshot).
  AlignerSnapshot Snapshot() const;

  /// The speculative-fit path: runs exactly the minimization Align() would
  /// run from `snapshot`'s state — same code, hence bitwise-identical output
  /// — without touching any live aligner (static: there is nothing to
  /// mutate). Safe to call from pool threads.
  static StatusOr<linalg::VectorF> AlignWith(const AlignerSnapshot& snapshot);

  /// Statistics of the last Align() call.
  const optim::OptimResult& last_result() const { return last_result_; }

 private:
  /// One minimization outcome: the query plus the raw solver iterate that
  /// Align() adopts as the next warm start.
  struct FitOutcome {
    linalg::VectorF query;
    optim::VectorD solution;
    optim::OptimResult result;
    /// False when no feedback was recorded (query == q0, nothing to adopt).
    bool ran_solver = false;
  };

  /// The shared fit core behind Align() and AlignWith(): a pure function of
  /// its inputs. Keeping both entry points on one code path is what makes
  /// the speculative fit bitwise-predictive of the real one.
  static StatusOr<FitOutcome> Fit(const AlignerOptions& options,
                                  const linalg::VectorF& q_text,
                                  const AlignerLoss& loss,
                                  const optim::VectorD* warm);

  AlignerOptions options_;
  linalg::VectorF q_text_;
  AlignerLoss loss_;
  optim::VectorD warm_;
  bool have_warm_ = false;
  size_t num_positive_ = 0;
  size_t num_negative_ = 0;
  uint64_t fit_generation_ = 0;
  optim::OptimResult last_result_;
};

}  // namespace seesaw::core

#endif  // SEESAW_CORE_ALIGNER_H_
