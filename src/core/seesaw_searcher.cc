#include "core/seesaw_searcher.h"

#include "common/check.h"

namespace seesaw::core {

SeeSawSearcher::SeeSawSearcher(const EmbeddedDataset& embedded,
                               linalg::VectorF q_text,
                               const SeeSawOptions& options)
    : SearcherBase(embedded), options_(options), query_(q_text) {
  SEESAW_CHECK_EQ(q_text.size(), embedded.dim());
  aligner_ = std::make_unique<QueryAligner>(options_.aligner,
                                            std::move(q_text), embedded.md());
}

std::string SeeSawSearcher::name() const {
  if (!options_.label.empty()) return options_.label;
  if (!options_.update_query) return "zero-shot";
  if (!options_.aligner.loss.use_text_term) return "few-shot";
  if (!options_.aligner.loss.use_db_term) return "query-align";
  return "seesaw";
}

std::vector<ScoredImage> SeeSawSearcher::NextBatch(size_t n) {
  return TopImages(linalg::VecSpan(query_), n);
}

void SeeSawSearcher::AddFeedback(const ImageFeedback& feedback) {
  MarkSeen(feedback.image_idx);
  if (!options_.update_query) return;  // zero-shot ignores feedback
  for (const PatchLabel& label : LabelPatches(feedback)) {
    aligner_->AddFeedback(embedded().vectors().Row(label.vec_id),
                          label.positive);
  }
  dirty_ = true;
}

Status SeeSawSearcher::Refit() {
  if (!options_.update_query || !dirty_) return Status::OK();
  SEESAW_ASSIGN_OR_RETURN(query_, aligner_->Align());
  dirty_ = false;
  return Status::OK();
}

}  // namespace seesaw::core
