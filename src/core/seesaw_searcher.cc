#include "core/seesaw_searcher.h"

#include "common/check.h"

namespace seesaw::core {

SeeSawSearcher::SeeSawSearcher(const EmbeddedDataset& embedded,
                               linalg::VectorF q_text,
                               const SeeSawOptions& options)
    : SearcherBase(embedded), options_(options), query_(q_text) {
  SEESAW_CHECK_EQ(q_text.size(), embedded.dim());
  set_prefetch_policy(options_.prefetch);
  aligner_ = std::make_unique<QueryAligner>(options_.aligner,
                                            std::move(q_text), embedded.md());
}

std::string SeeSawSearcher::name() const {
  if (!options_.label.empty()) return options_.label;
  if (!options_.update_query) return "zero-shot";
  if (!options_.aligner.loss.use_text_term) return "few-shot";
  if (!options_.aligner.loss.use_db_term) return "query-align";
  return "seesaw";
}

std::vector<ScoredImage> SeeSawSearcher::NextBatch(size_t n) {
  std::vector<ScoredImage> batch;
  if (auto prefetched = TakePrefetched(linalg::VecSpan(query_), n)) {
    batch = std::move(*prefetched);
  } else {
    batch = TopImages(linalg::VecSpan(query_), n);
  }
  // Overlap the next lookup with the user's think time: speculate that the
  // user labels exactly this batch and the refit leaves the query unchanged.
  SchedulePrefetch(linalg::VecSpan(query_), batch, n);
  return batch;
}

void SeeSawSearcher::AddFeedback(const ImageFeedback& feedback) {
  MarkSeen(feedback.image_idx);
  if (!options_.update_query) return;  // zero-shot ignores feedback
  for (const PatchLabel& label : LabelPatches(feedback)) {
    aligner_->AddFeedback(embedded().vectors().Row(label.vec_id),
                          label.positive);
  }
  dirty_ = true;
  // New feedback means the next refit will almost surely move the query and
  // kill the speculation at consume time anyway; cancel now so the
  // background scan stops at its next checkpoint and frees its budget slot
  // instead of competing with the eventual synchronous recompute.
  InvalidatePrefetch();
}

Status SeeSawSearcher::Refit() {
  if (!options_.update_query || !dirty_) return Status::OK();
  SEESAW_ASSIGN_OR_RETURN(linalg::VectorF aligned, aligner_->Align());
  // A refit that moves the query (the common case outside zero-shot)
  // invalidates any speculation built on the old query; a bitwise no-op
  // refit keeps it alive.
  if (aligned != query_) {
    query_ = std::move(aligned);
    NoteQueryUpdated();
  }
  dirty_ = false;
  return Status::OK();
}

}  // namespace seesaw::core
