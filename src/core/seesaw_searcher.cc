#include "core/seesaw_searcher.h"

#include "common/check.h"

namespace seesaw::core {

SeeSawSearcher::SeeSawSearcher(const EmbeddedDataset& embedded,
                               linalg::VectorF q_text,
                               const SeeSawOptions& options)
    : SearcherBase(embedded), options_(options), query_(q_text) {
  SEESAW_CHECK_EQ(q_text.size(), embedded.dim());
  set_prefetch_policy(options_.prefetch);
  aligner_ = std::make_unique<QueryAligner>(options_.aligner,
                                            std::move(q_text), embedded.md());
}

std::string SeeSawSearcher::name() const {
  if (!options_.label.empty()) return options_.label;
  if (!options_.update_query) return "zero-shot";
  if (!options_.aligner.loss.use_text_term) return "few-shot";
  if (!options_.aligner.loss.use_db_term) return "query-align";
  return "seesaw";
}

std::vector<ScoredImage> SeeSawSearcher::NextBatch(size_t n) {
  std::vector<ScoredImage> batch;
  if (auto prefetched = TakePrefetched(linalg::VecSpan(query_), n)) {
    batch = std::move(*prefetched);
  } else {
    batch = TopImages(linalg::VecSpan(query_), n);
  }
  // Overlap the next lookup with the user's think time. Zero-shot never
  // moves the query, so the scan can start now; the query-updating variants
  // speculate through the refit instead — once this batch is fully labeled,
  // the aligner runs on a cloned snapshot of the feedback received and the
  // scan launches with the predicted post-refit query.
  if (!options_.update_query) {
    SchedulePrefetch(linalg::VecSpan(query_), batch, n);
  } else {
    SchedulePrefetchAfterRefit(batch, n, [this] {
      // Arm time, searcher thread: clone the fit state while it is
      // consistent. The returned closure owns the snapshot outright and
      // never touches the live aligner (AlignWith is const/static), so the
      // session can keep accumulating feedback while the fit runs.
      auto snapshot =
          std::make_shared<AlignerSnapshot>(aligner_->Snapshot());
      return PredictedFit([snapshot]() -> std::optional<linalg::VectorF> {
        auto aligned = QueryAligner::AlignWith(*snapshot);
        if (!aligned.ok()) return std::nullopt;
        return *std::move(aligned);
      });
    });
  }
  return batch;
}

void SeeSawSearcher::AddFeedback(const ImageFeedback& feedback) {
  if (options_.update_query) {
    for (const PatchLabel& label : LabelPatches(feedback)) {
      aligner_->AddFeedback(embedded().vectors().Row(label.vec_id),
                            label.positive);
    }
  }
  // Aligner first, then MarkSeen: marking the last predicted image seen arms
  // the speculative refit, whose snapshot must already contain this image's
  // labels. Feedback outside the predicted batch invalidates inside
  // MarkSeen, stopping the background scan at its next checkpoint.
  MarkSeen(feedback.image_idx);
}

Status SeeSawSearcher::Refit() {
  // The aligner's fit generation covers every fit-state mutation — image
  // feedback, soft feedback and options changes through mutable_aligner(),
  // Reset() — so none of them can be silently skipped here.
  if (!options_.update_query ||
      aligner_->fit_generation() == refitted_generation_) {
    return Status::OK();
  }
  SEESAW_ASSIGN_OR_RETURN(linalg::VectorF aligned, aligner_->Align());
  const bool moved = aligned != query_;
  if (moved) query_ = std::move(aligned);
  // Reconcile the refit with any speculation: a same-query speculation
  // survives only an unmoved query; a speculative refit survives exactly
  // when this refit landed bitwise on its predicted query (in which case the
  // background scan is already computing the next batch).
  CommitRefit(linalg::VecSpan(query_), moved);
  refitted_generation_ = aligner_->fit_generation();
  return Status::OK();
}

}  // namespace seesaw::core
