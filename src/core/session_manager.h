// SessionManager: the concurrent serving layer above SeeSawService.
//
// The paper's system serves one interactive user per session; a production
// deployment serves many at once. The manager owns every live session behind
// an opaque integer id in a mutex-guarded registry, and all sessions share
// one ThreadPool for sharded store lookups — so p sessions on a c-core box
// share c workers instead of spawning p*c threads.
//
//   SessionManager manager(service);
//   auto id = manager.CreateSession("wheelchair");
//   auto session = manager.Find(*id);   // shared_ptr, safe across Close
//   auto page = session->NextBatch(10);
//   ...
//   manager.Close(*id);
//
// Serving front ends (src/net) use the lifecycle surface instead of bare
// Find():
//   - CreateSession(query, user) attributes the session to a user key and
//     enforces SessionLimits::max_sessions_per_user (quota exhaustion is a
//     typed ResourceExhausted, which the wire protocol maps to
//     QUOTA_EXCEEDED).
//   - Acquire(id) returns an RAII SessionLease that counts against
//     SessionLimits::max_inflight_per_session — the per-session admission
//     gate, modeled on PrefetchBudget: a session already serving its cap of
//     requests yields a typed ResourceExhausted ("busy"), which the server
//     sheds as RETRY_LATER instead of queueing unboundedly. Acquire also
//     refreshes the idle clock.
//   - SweepIdle() evicts sessions idle past SessionLimits::idle_ttl_seconds.
//     Sessions with a live lease are never evicted (an in-flight request
//     means "not idle"), and an in-flight shared_ptr obtained before the
//     sweep stays valid either way — eviction unregisters, it never frees a
//     session out from under a request.
//
// Thread-safety: CreateSession / Find / Acquire / Touch / SweepIdle / Close
// / num_sessions may be called from any thread. Each individual session is
// still single-threaded — one user drives one session (the lease cap
// defaults to exactly 1 on the server) — but different sessions run fully
// in parallel.
#ifndef SEESAW_CORE_SESSION_MANAGER_H_
#define SEESAW_CORE_SESSION_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "core/seesaw_searcher.h"
#include "core/service.h"

namespace seesaw::core {

/// Opaque handle for a live search session.
using SessionId = uint64_t;

// SessionLimits (the lifecycle/admission policy this manager enforces) is
// defined in core/service.h so ServiceOptions can embed it — this header
// includes service.h, not the other way around.

/// Cumulative lifecycle counters (diagnostics; snapshot via
/// SessionManager::lifecycle_stats).
struct LifecycleStats {
  size_t created = 0;         ///< Sessions successfully registered.
  size_t closed = 0;          ///< Explicit Close() calls that succeeded.
  size_t evicted = 0;         ///< Sessions removed by idle-TTL sweeps.
  size_t quota_rejected = 0;  ///< CreateSession calls refused by quota.
  size_t busy_rejected = 0;   ///< Acquire calls refused by the in-flight cap.
};

/// RAII in-flight slot on one session: holds the session alive (shared_ptr)
/// and a unit of its in-flight budget; both release on destruction. Obtained
/// from SessionManager::Acquire. Movable, not copyable.
///
/// The slot counter is an atomic rather than registry-guarded state, same
/// pattern (and exemption rationale) as PrefetchBudget: it is a pure
/// admission throttle — no data is published through it, the session state
/// it gates is handed over by the shared_ptr — so relaxed ordering and a
/// lock-free release are correct.
class SessionLease {
 public:
  SessionLease() = default;
  ~SessionLease() { Reset(); }

  SessionLease(SessionLease&& other) noexcept
      : session_(std::move(other.session_)),
        inflight_(std::move(other.inflight_)) {}
  SessionLease& operator=(SessionLease&& other) noexcept {
    if (this != &other) {
      Reset();
      session_ = std::move(other.session_);
      inflight_ = std::move(other.inflight_);
    }
    return *this;
  }
  SessionLease(const SessionLease&) = delete;
  SessionLease& operator=(const SessionLease&) = delete;

  bool valid() const { return session_ != nullptr; }
  SeeSawSearcher* operator->() const { return session_.get(); }
  SeeSawSearcher& operator*() const { return *session_; }
  SeeSawSearcher* get() const { return session_.get(); }

  /// Releases the slot (and the session reference) early.
  ///
  /// Memory-order audit (PR 7 contract style): the decrement stays
  /// `relaxed` — the slot counter is a pure throttle, and the session state
  /// the lease guarded travels through the shared_ptr, not the counter —
  /// but the balance invariant is now CHECK-enforced rather than
  /// comment-enforced. RAII makes a double release unreachable through the
  /// public API (the constructor is private, moves null the source, Reset
  /// clears `inflight_` before returning), so a trip here means lease
  /// internals were broken; the failure it prevents is the PrefetchBudget
  /// one — an unsigned wrap to SIZE_MAX that would read as "forever busy"
  /// and brick the session for every future Acquire. Stress coverage:
  /// session_lifecycle_test.cc, LeaseCounterBalancedUnderChurn.
  void Reset() {
    if (inflight_) {
      const size_t prev = inflight_->fetch_sub(1, std::memory_order_relaxed);
      SEESAW_CHECK_GT(prev, 0u)
          << "SessionLease::Reset without a live in-flight slot";
    }
    inflight_.reset();
    session_.reset();
  }

 private:
  friend class SessionManager;
  SessionLease(std::shared_ptr<SeeSawSearcher> session,
               std::shared_ptr<std::atomic<size_t>> inflight)
      : session_(std::move(session)), inflight_(std::move(inflight)) {}

  std::shared_ptr<SeeSawSearcher> session_;
  std::shared_ptr<std::atomic<size_t>> inflight_;
};

/// Mutex-guarded registry of live sessions sharing one worker pool.
class SessionManager {
 public:
  /// `service` must outlive the manager. `num_threads` sizes the shared
  /// lookup pool (0 = hardware default). `prefetch` is the think-time
  /// speculation policy applied to managed sessions; its max_in_flight caps
  /// concurrent speculations across *all* sessions of this manager so idle
  /// sessions cannot starve foreground lookups on the shared pool. A budget
  /// slot covers a session's whole speculative pipeline — including the
  /// speculative aligner *fit* of a refit speculation, which burns a
  /// worker's CPU outright (a pure scan mostly contends for memory
  /// bandwidth) — so the cap bounds background compute, not just background
  /// scans. `limits` is the lifecycle/admission policy (defaults: no quota,
  /// no TTL, no in-flight cap).
  explicit SessionManager(const SeeSawService& service, size_t num_threads = 0,
                          const PrefetchPolicy& prefetch = {},
                          const SessionLimits& limits = {});

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Opens a session from a category-name text query. `user` is the quota
  /// key ("" = anonymous; anonymous sessions are quota-checked as one user).
  StatusOr<SessionId> CreateSession(const std::string& text_query,
                                    const std::string& user = "")
      SEESAW_EXCLUDES(mu_);

  /// Opens a session from a unit-norm query vector.
  StatusOr<SessionId> CreateSession(linalg::VectorF query_vector,
                                    const std::string& user = "")
      SEESAW_EXCLUDES(mu_);

  /// The session for `id`, or nullptr when the id is unknown or closed. The
  /// returned shared_ptr keeps the session alive even if another thread
  /// closes or evicts it mid-use. Does not count against the in-flight cap
  /// and does not refresh the idle clock — serving paths use Acquire().
  std::shared_ptr<SeeSawSearcher> Find(SessionId id) const
      SEESAW_EXCLUDES(mu_);

  /// Claims an in-flight slot on the session: NotFound for unknown ids,
  /// ResourceExhausted ("busy") when the session is already at
  /// limits.max_inflight_per_session. Refreshes the idle clock.
  StatusOr<SessionLease> Acquire(SessionId id) SEESAW_EXCLUDES(mu_);

  /// Refreshes the idle clock without claiming a slot. False when the id is
  /// unknown.
  bool Touch(SessionId id) SEESAW_EXCLUDES(mu_);

  /// Evicts every session whose idle time exceeds limits.idle_ttl_seconds
  /// and that has no lease in flight. Returns the number evicted. No-op
  /// (returns 0) when the TTL is 0.
  size_t SweepIdle() SEESAW_EXCLUDES(mu_);

  /// Closes (unregisters) a session. NotFound for unknown or already-closed
  /// ids. In-flight shared_ptrs stay valid; the state is freed when the last
  /// one drops.
  Status Close(SessionId id) SEESAW_EXCLUDES(mu_);

  /// Ids of all live sessions (snapshot, unordered).
  std::vector<SessionId> LiveSessions() const SEESAW_EXCLUDES(mu_);

  size_t num_sessions() const SEESAW_EXCLUDES(mu_);

  /// Live sessions registered under `user` (quota diagnostics).
  size_t SessionsForUser(const std::string& user) const SEESAW_EXCLUDES(mu_);

  /// Cumulative lifecycle counters (created/closed/evicted/rejected).
  LifecycleStats lifecycle_stats() const SEESAW_EXCLUDES(mu_);

  /// The lifecycle/admission limits this manager enforces.
  const SessionLimits& limits() const { return limits_; }

  /// The lookup pool shared by every session of this manager.
  ThreadPool& pool() { return pool_; }

  /// Speculations (fit and/or scan stages) currently in flight across all
  /// sessions (diagnostics).
  size_t prefetches_in_flight() const { return budget_.in_flight(); }

  /// The manager-wide speculation policy its sessions were registered under.
  const PrefetchPolicy& prefetch_policy() const { return prefetch_policy_; }

  /// Overrides the idle clock (monotonic nanoseconds) so TTL tests are
  /// deterministic instead of sleep-based. Pass nullptr to restore the
  /// steady clock.
  void set_clock_for_testing(std::function<int64_t()> now_ns)
      SEESAW_EXCLUDES(mu_);

 private:
  friend class SeeSawService;

  /// One registry slot: the session, its quota key, its idle clock, and its
  /// in-flight lease counter (shared with outstanding leases, see
  /// SessionLease for the atomic-exemption rationale).
  struct Entry {
    std::shared_ptr<SeeSawSearcher> session;
    std::string user;
    int64_t last_touch_ns = 0;
    std::shared_ptr<std::atomic<size_t>> inflight;
  };

  StatusOr<SessionId> Register(std::unique_ptr<SeeSawSearcher> session,
                               const std::string& user) SEESAW_EXCLUDES(mu_);

  int64_t NowNs() const SEESAW_REQUIRES(mu_);
  /// Drops one live-session count for `user` (on close/evict).
  void ReleaseUserSlot(const std::string& user) SEESAW_REQUIRES(mu_);

  /// Called by the owning service's move operations so the back-pointer
  /// tracks the service's address.
  void RebindService(const SeeSawService* service) { service_ = service; }

  const SeeSawService* service_;
  PrefetchPolicy prefetch_policy_;
  SessionLimits limits_;
  // Declared before the pool: the pool's destructor drains queued
  // speculations, which release budget slots, so the budget must die last.
  PrefetchBudget budget_;
  ThreadPool pool_;
  mutable Mutex mu_;
  SessionId next_id_ SEESAW_GUARDED_BY(mu_) = 1;
  std::unordered_map<SessionId, Entry> sessions_ SEESAW_GUARDED_BY(mu_);
  /// Live-session count per user key (quota accounting).
  std::unordered_map<std::string, size_t> user_sessions_
      SEESAW_GUARDED_BY(mu_);
  LifecycleStats stats_ SEESAW_GUARDED_BY(mu_);
  /// Test-only clock override; empty = steady_clock.
  std::function<int64_t()> clock_override_ SEESAW_GUARDED_BY(mu_);
};

}  // namespace seesaw::core

#endif  // SEESAW_CORE_SESSION_MANAGER_H_
