// SessionManager: the concurrent serving layer above SeeSawService.
//
// The paper's system serves one interactive user per session; a production
// deployment serves many at once. The manager owns every live session behind
// an opaque integer id in a mutex-guarded registry, and all sessions share
// one ThreadPool for sharded store lookups — so p sessions on a c-core box
// share c workers instead of spawning p*c threads.
//
//   SessionManager manager(service);
//   auto id = manager.CreateSession("wheelchair");
//   auto session = manager.Find(*id);   // shared_ptr, safe across Close
//   auto page = session->NextBatch(10);
//   ...
//   manager.Close(*id);
//
// Thread-safety: CreateSession / Find / Close / num_sessions may be called
// from any thread. Each individual session is still single-threaded — one
// user drives one session — but different sessions run fully in parallel.
#ifndef SEESAW_CORE_SESSION_MANAGER_H_
#define SEESAW_CORE_SESSION_MANAGER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "core/seesaw_searcher.h"
#include "core/service.h"

namespace seesaw::core {

/// Opaque handle for a live search session.
using SessionId = uint64_t;

/// Mutex-guarded registry of live sessions sharing one worker pool.
class SessionManager {
 public:
  /// `service` must outlive the manager. `num_threads` sizes the shared
  /// lookup pool (0 = hardware default). `prefetch` is the think-time
  /// speculation policy applied to managed sessions; its max_in_flight caps
  /// concurrent speculations across *all* sessions of this manager so idle
  /// sessions cannot starve foreground lookups on the shared pool. A budget
  /// slot covers a session's whole speculative pipeline — including the
  /// speculative aligner *fit* of a refit speculation, which burns a
  /// worker's CPU outright (a pure scan mostly contends for memory
  /// bandwidth) — so the cap bounds background compute, not just background
  /// scans.
  explicit SessionManager(const SeeSawService& service, size_t num_threads = 0,
                          const PrefetchPolicy& prefetch = {});

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Opens a session from a category-name text query.
  StatusOr<SessionId> CreateSession(const std::string& text_query)
      SEESAW_EXCLUDES(mu_);

  /// Opens a session from a unit-norm query vector.
  StatusOr<SessionId> CreateSession(linalg::VectorF query_vector)
      SEESAW_EXCLUDES(mu_);

  /// The session for `id`, or nullptr when the id is unknown or closed. The
  /// returned shared_ptr keeps the session alive even if another thread
  /// closes it mid-use.
  std::shared_ptr<SeeSawSearcher> Find(SessionId id) const
      SEESAW_EXCLUDES(mu_);

  /// Closes (unregisters) a session. NotFound for unknown or already-closed
  /// ids. In-flight shared_ptrs stay valid; the state is freed when the last
  /// one drops.
  Status Close(SessionId id) SEESAW_EXCLUDES(mu_);

  /// Ids of all live sessions (snapshot, unordered).
  std::vector<SessionId> LiveSessions() const SEESAW_EXCLUDES(mu_);

  size_t num_sessions() const SEESAW_EXCLUDES(mu_);

  /// The lookup pool shared by every session of this manager.
  ThreadPool& pool() { return pool_; }

  /// Speculations (fit and/or scan stages) currently in flight across all
  /// sessions (diagnostics).
  size_t prefetches_in_flight() const { return budget_.in_flight(); }

  /// The manager-wide speculation policy its sessions were registered under.
  const PrefetchPolicy& prefetch_policy() const { return prefetch_policy_; }

 private:
  friend class SeeSawService;

  StatusOr<SessionId> Register(std::unique_ptr<SeeSawSearcher> session)
      SEESAW_EXCLUDES(mu_);

  /// Called by the owning service's move operations so the back-pointer
  /// tracks the service's address.
  void RebindService(const SeeSawService* service) { service_ = service; }

  const SeeSawService* service_;
  PrefetchPolicy prefetch_policy_;
  // Declared before the pool: the pool's destructor drains queued
  // speculations, which release budget slots, so the budget must die last.
  PrefetchBudget budget_;
  ThreadPool pool_;
  mutable Mutex mu_;
  SessionId next_id_ SEESAW_GUARDED_BY(mu_) = 1;
  std::unordered_map<SessionId, std::shared_ptr<SeeSawSearcher>> sessions_
      SEESAW_GUARDED_BY(mu_);
};

}  // namespace seesaw::core

#endif  // SEESAW_CORE_SESSION_MANAGER_H_
