// SeeSawSearcher: the full system of the paper, and — via its ablation
// switches — the zero-shot, few-shot and query-align-only variants used in
// Tables 2 and 3.
//
//   Method            update_query  loss.use_text_term  loss.use_db_term
//   zero-shot CLIP    false         -                   -
//   few-shot CLIP     true          false               false
//   + query align     true          true                false
//   + DB align        true          true                true
#ifndef SEESAW_CORE_SEESAW_SEARCHER_H_
#define SEESAW_CORE_SEESAW_SEARCHER_H_

#include <memory>
#include <string>

#include "core/aligner.h"
#include "core/searcher_base.h"

namespace seesaw::core {

/// Configuration for SeeSawSearcher.
struct SeeSawOptions {
  AlignerOptions aligner;
  /// When false the query vector is never updated (zero-shot behaviour).
  bool update_query = true;
  /// Think-time speculative prefetch of the next batch (needs a thread
  /// pool; see PrefetchPolicy). Results stay bitwise identical to the
  /// synchronous path whether speculation hits or not.
  PrefetchPolicy prefetch;
  /// Method name override for reports; empty = derived from flags.
  std::string label;
};

/// The user-facing search session state for one text query.
class SeeSawSearcher : public SearcherBase {
 public:
  /// `q_text` is the embedded text query (q0). The embedded dataset must
  /// outlive the searcher. When DB alignment is enabled but the dataset has
  /// no M_D, the DB term is silently skipped (matching a coarse-only
  /// deployment without preprocessing).
  SeeSawSearcher(const EmbeddedDataset& embedded, linalg::VectorF q_text,
                 const SeeSawOptions& options);

  std::string name() const override;
  std::vector<ScoredImage> NextBatch(size_t n) override;
  void AddFeedback(const ImageFeedback& feedback) override;
  Status Refit() override;

  /// The query vector currently used for lookups.
  const linalg::VectorF& current_query() const { return query_; }

  /// Aligner diagnostics (iterations of the last refit etc.).
  const QueryAligner& aligner() const { return *aligner_; }

 private:
  SeeSawOptions options_;
  linalg::VectorF query_;
  std::unique_ptr<QueryAligner> aligner_;
  bool dirty_ = false;  // new feedback since last refit
};

}  // namespace seesaw::core

#endif  // SEESAW_CORE_SEESAW_SEARCHER_H_
