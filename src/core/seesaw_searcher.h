// SeeSawSearcher: the full system of the paper, and — via its ablation
// switches — the zero-shot, few-shot and query-align-only variants used in
// Tables 2 and 3.
//
//   Method            update_query  loss.use_text_term  loss.use_db_term
//   zero-shot CLIP    false         -                   -
//   few-shot CLIP     true          false               false
//   + query align     true          true                false
//   + DB align        true          true                true
#ifndef SEESAW_CORE_SEESAW_SEARCHER_H_
#define SEESAW_CORE_SEESAW_SEARCHER_H_

#include <memory>
#include <string>

#include "core/aligner.h"
#include "core/searcher_base.h"

namespace seesaw::core {

/// Configuration for SeeSawSearcher.
struct SeeSawOptions {
  AlignerOptions aligner;
  /// When false the query vector is never updated (zero-shot behaviour).
  bool update_query = true;
  /// Think-time speculative prefetch of the next batch (needs a thread
  /// pool; see PrefetchPolicy). Zero-shot variants speculate with the
  /// current query; query-updating variants speculate *through* the refit —
  /// once the shown batch is fully labeled, the aligner runs speculatively
  /// on a cloned snapshot and the scan launches with the predicted
  /// post-refit query. Results stay bitwise identical to the synchronous
  /// path whether speculation hits or not.
  PrefetchPolicy prefetch;
  /// Method name override for reports; empty = derived from flags.
  std::string label;
};

/// The user-facing search session state for one text query.
///
/// Threading contract: a searcher is confined to one user thread — the
/// public API (NextBatch/AddFeedback/Refit) is never called concurrently,
/// which is why none of its members carry a SEESAW_GUARDED_BY. Concurrency
/// enters only through the speculation machinery it inherits from
/// SearcherBase: background work runs as pool tasks that communicate back
/// exclusively via TaskHandle completion and the CancellationToken (see the
/// SpecTask/Speculation contracts in searcher_base.h). SessionManager
/// serializes cross-thread access to the sessions themselves.
class SeeSawSearcher : public SearcherBase {
 public:
  /// `q_text` is the embedded text query (q0). The embedded dataset must
  /// outlive the searcher. When DB alignment is enabled but the dataset has
  /// no M_D, the DB term is silently skipped (matching a coarse-only
  /// deployment without preprocessing).
  SeeSawSearcher(const EmbeddedDataset& embedded, linalg::VectorF q_text,
                 const SeeSawOptions& options);

  std::string name() const override;
  std::vector<ScoredImage> NextBatch(size_t n) override;
  void AddFeedback(const ImageFeedback& feedback) override;
  Status Refit() override;

  /// The query vector currently used for lookups.
  const linalg::VectorF& current_query() const { return query_; }

  /// Aligner diagnostics (iterations of the last refit etc.).
  const QueryAligner& aligner() const { return *aligner_; }

  /// Mutable aligner access for advanced drivers (soft feedback from a
  /// propagation front end, mid-session hyper-parameter changes). Any
  /// mutation counts as new fit state: an armed refit speculation based on
  /// the old state is discarded at the next Refit() (bitwise compare), never
  /// consumed.
  QueryAligner& mutable_aligner() { return *aligner_; }

 private:
  SeeSawOptions options_;
  linalg::VectorF query_;
  std::unique_ptr<QueryAligner> aligner_;
  /// Aligner fit generation the current query_ was refit at; Refit() is a
  /// no-op while the aligner still sits at this generation. Tracking the
  /// generation (not a local dirty flag) makes every fit-state mutation
  /// refit-visible, including ones through mutable_aligner().
  uint64_t refitted_generation_ = 0;
};

}  // namespace seesaw::core

#endif  // SEESAW_CORE_SEESAW_SEARCHER_H_
