#include "core/embedded_dataset.h"

#include <algorithm>

#include "common/binary_io.h"
#include "common/check.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "linalg/serialize.h"

namespace seesaw::core {

namespace {
// "SSEB" (SeeSaw Embedded) + format version.
constexpr uint32_t kCacheMagic = 0x42455353;
constexpr uint32_t kCacheVersion = 1;

/// Builds the configured store type over a copy of `vectors`.
StatusOr<std::unique_ptr<store::VectorStore>> BuildStore(
    const PreprocessOptions& options, const linalg::MatrixF& vectors) {
  linalg::MatrixF table_copy = vectors;
  std::unique_ptr<store::VectorStore> out;
  switch (options.backend) {
    case StoreBackend::kAnnoy: {
      SEESAW_ASSIGN_OR_RETURN(
          store::AnnoyIndex index,
          store::AnnoyIndex::Build(options.annoy, std::move(table_copy)));
      out = std::make_unique<store::AnnoyIndex>(std::move(index));
      break;
    }
    case StoreBackend::kIvf: {
      SEESAW_ASSIGN_OR_RETURN(
          store::IvfFlatIndex index,
          store::IvfFlatIndex::Build(options.ivf, std::move(table_copy)));
      out = std::make_unique<store::IvfFlatIndex>(std::move(index));
      break;
    }
    case StoreBackend::kExact: {
      SEESAW_ASSIGN_OR_RETURN(
          store::ExactStore index,
          store::ExactStore::Create(std::move(table_copy), options.exact));
      out = std::make_unique<store::ExactStore>(std::move(index));
      break;
    }
    case StoreBackend::kSharded: {
      SEESAW_ASSIGN_OR_RETURN(
          store::ShardedStore index,
          options.sharded_child_factory
              ? store::ShardedStore::Create(std::move(table_copy),
                                            options.sharded,
                                            options.sharded_child_factory)
              : store::ShardedStore::Create(std::move(table_copy),
                                            options.sharded));
      out = std::make_unique<store::ShardedStore>(std::move(index));
      break;
    }
  }
  return out;
}
}  // namespace

StatusOr<EmbeddedDataset> EmbeddedDataset::Build(
    const data::Dataset& dataset, const PreprocessOptions& options) {
  if (dataset.num_images() == 0) {
    return Status::InvalidArgument("EmbeddedDataset: empty dataset");
  }
  EmbeddedDataset out;
  out.dataset_ = &dataset;
  out.options_ = options;

  // --- Tile every image. ---
  out.image_begin_.assign(dataset.num_images() + 1, 0);
  for (size_t i = 0; i < dataset.num_images(); ++i) {
    const data::ImageRecord& img = dataset.image(i);
    auto tiles = TileImage(img.width, img.height, options.multiscale);
    out.image_begin_[i + 1] =
        out.image_begin_[i] + static_cast<uint32_t>(tiles.size());
    for (size_t t = 0; t < tiles.size(); ++t) {
      out.patches_.push_back(
          {static_cast<uint32_t>(i), tiles[t], /*is_coarse=*/t == 0});
    }
  }
  out.stats_.num_vectors = out.patches_.size();

  // --- Embed every tile (data-parallel, like the paper's GPU pipeline). ---
  Stopwatch watch;
  const size_t d = dataset.space().dim();
  out.vectors_ = linalg::MatrixF(out.patches_.size(), d);
  {
    size_t threads = options.num_threads != 0 ? options.num_threads
                                              : ThreadPool::DefaultThreads();
    ThreadPool pool(threads);
    pool.ParallelFor(out.patches_.size(), [&](size_t begin, size_t end) {
      for (size_t v = begin; v < end; ++v) {
        const PatchRecord& p = out.patches_[v];
        // Region index = offset within the image keeps noise deterministic
        // regardless of multiscale settings of other images.
        uint32_t region_index =
            static_cast<uint32_t>(v) - out.image_begin_[p.image_idx];
        linalg::VectorF vec =
            dataset.EmbedRegion(p.image_idx, p.box, region_index);
        std::copy(vec.begin(), vec.end(), out.vectors_.MutableRow(v).begin());
      }
    });
  }
  out.stats_.embed_seconds = watch.ElapsedSeconds();

  // --- Index. ---
  watch.Restart();
  SEESAW_ASSIGN_OR_RETURN(out.store_, BuildStore(options, out.vectors_));
  out.stats_.index_seconds = watch.ElapsedSeconds();

  // --- M_D (database alignment preprocessing, §4.2). ---
  if (options.build_md) {
    watch.Restart();
    SEESAW_ASSIGN_OR_RETURN(linalg::MatrixF md,
                            graph::ComputeMd(out.vectors_, options.md));
    out.md_ = std::move(md);
    out.stats_.md_seconds = watch.ElapsedSeconds();
  }
  return out;
}

Status EmbeddedDataset::Save(const std::string& path) const {
  SEESAW_ASSIGN_OR_RETURN(BinaryWriter writer, BinaryWriter::Open(path));
  SEESAW_RETURN_IF_ERROR(writer.WriteU32(kCacheMagic));
  SEESAW_RETURN_IF_ERROR(writer.WriteU32(kCacheVersion));
  SEESAW_RETURN_IF_ERROR(writer.WriteU64(dataset_->num_images()));
  SEESAW_RETURN_IF_ERROR(linalg::SaveMatrix(writer, vectors_));
  SEESAW_RETURN_IF_ERROR(writer.WriteU64(patches_.size()));
  for (const PatchRecord& p : patches_) {
    SEESAW_RETURN_IF_ERROR(writer.WriteU32(p.image_idx));
    SEESAW_RETURN_IF_ERROR(writer.WriteF32(p.box.x0));
    SEESAW_RETURN_IF_ERROR(writer.WriteF32(p.box.y0));
    SEESAW_RETURN_IF_ERROR(writer.WriteF32(p.box.x1));
    SEESAW_RETURN_IF_ERROR(writer.WriteF32(p.box.y1));
    SEESAW_RETURN_IF_ERROR(writer.WriteU32(p.is_coarse ? 1 : 0));
  }
  SEESAW_RETURN_IF_ERROR(writer.WriteU32(md_.has_value() ? 1 : 0));
  if (md_.has_value()) {
    SEESAW_RETURN_IF_ERROR(linalg::SaveMatrix(writer, *md_));
  }
  return writer.Close();
}

StatusOr<EmbeddedDataset> EmbeddedDataset::Load(
    const std::string& path, const data::Dataset& dataset,
    const PreprocessOptions& options) {
  SEESAW_ASSIGN_OR_RETURN(BinaryReader reader, BinaryReader::Open(path));
  SEESAW_ASSIGN_OR_RETURN(uint32_t magic, reader.ReadU32());
  if (magic != kCacheMagic) {
    return Status::IoError("not a seesaw embedded-dataset cache: " + path);
  }
  SEESAW_ASSIGN_OR_RETURN(uint32_t version, reader.ReadU32());
  if (version != kCacheVersion) {
    return Status::IoError("unsupported cache version");
  }
  SEESAW_ASSIGN_OR_RETURN(uint64_t num_images, reader.ReadU64());
  if (num_images != dataset.num_images()) {
    return Status::FailedPrecondition(
        "cache was built for a different dataset (image count mismatch)");
  }

  EmbeddedDataset out;
  out.dataset_ = &dataset;
  out.options_ = options;
  SEESAW_ASSIGN_OR_RETURN(out.vectors_, linalg::LoadMatrix(reader));
  if (out.vectors_.cols() != dataset.space().dim()) {
    return Status::FailedPrecondition("cache embedding dimension mismatch");
  }

  SEESAW_ASSIGN_OR_RETURN(uint64_t num_patches, reader.ReadU64());
  if (num_patches != out.vectors_.rows()) {
    return Status::IoError("cache patch count does not match vector count");
  }
  out.patches_.resize(num_patches);
  for (PatchRecord& p : out.patches_) {
    SEESAW_ASSIGN_OR_RETURN(p.image_idx, reader.ReadU32());
    SEESAW_ASSIGN_OR_RETURN(p.box.x0, reader.ReadF32());
    SEESAW_ASSIGN_OR_RETURN(p.box.y0, reader.ReadF32());
    SEESAW_ASSIGN_OR_RETURN(p.box.x1, reader.ReadF32());
    SEESAW_ASSIGN_OR_RETURN(p.box.y1, reader.ReadF32());
    SEESAW_ASSIGN_OR_RETURN(uint32_t coarse, reader.ReadU32());
    p.is_coarse = coarse != 0;
    if (p.image_idx >= num_images) {
      return Status::IoError("cache patch references invalid image");
    }
  }
  // Rebuild the per-image ranges (patches are stored in build order:
  // contiguous, ascending image index).
  out.image_begin_.assign(num_images + 1, 0);
  for (size_t v = 0; v < out.patches_.size(); ++v) {
    uint32_t img = out.patches_[v].image_idx;
    if (v > 0 && img < out.patches_[v - 1].image_idx) {
      return Status::IoError("cache patches out of order");
    }
    out.image_begin_[img + 1] = static_cast<uint32_t>(v + 1);
  }
  for (size_t i = 1; i <= num_images; ++i) {
    out.image_begin_[i] =
        std::max(out.image_begin_[i], out.image_begin_[i - 1]);
  }

  SEESAW_ASSIGN_OR_RETURN(uint32_t has_md, reader.ReadU32());
  if (has_md != 0) {
    SEESAW_ASSIGN_OR_RETURN(linalg::MatrixF md, linalg::LoadMatrix(reader));
    if (md.rows() != out.vectors_.cols() || md.cols() != out.vectors_.cols()) {
      return Status::IoError("cache M_D dimension mismatch");
    }
    out.md_ = std::move(md);
  }

  out.stats_.num_vectors = out.patches_.size();
  Stopwatch watch;
  SEESAW_ASSIGN_OR_RETURN(out.store_, BuildStore(options, out.vectors_));
  out.stats_.index_seconds = watch.ElapsedSeconds();
  return out;
}

}  // namespace seesaw::core
