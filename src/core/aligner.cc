#include "core/aligner.h"

#include "common/check.h"

namespace seesaw::core {

QueryAligner::QueryAligner(const AlignerOptions& options,
                           linalg::VectorF q_text, const linalg::MatrixF* md)
    : options_(options),
      q_text_(q_text),
      loss_(options.loss, std::move(q_text), md),
      lbfgs_(options.lbfgs) {}

void QueryAligner::AddFeedback(linalg::VecSpan x, bool positive,
                               float weight) {
  loss_.AddExample(x, positive ? 1.0f : 0.0f, weight);
  if (positive) {
    ++num_positive_;
  } else {
    ++num_negative_;
  }
}

void QueryAligner::AddSoftFeedback(linalg::VecSpan x, float y, float weight) {
  loss_.AddExample(x, y, weight);
}

void QueryAligner::Reset() {
  loss_.ClearExamples();
  num_positive_ = 0;
  num_negative_ = 0;
  have_warm_ = false;
}

StatusOr<linalg::VectorF> QueryAligner::Align() {
  if (loss_.num_examples() == 0) {
    return q_text_;  // no information yet: q1 = q0
  }
  const size_t d = q_text_.size();
  optim::VectorD x0;
  if (options_.warm_start && have_warm_) {
    x0 = warm_;
  } else {
    x0.assign(d, 0.0);
    for (size_t j = 0; j < d; ++j) x0[j] = q_text_[j];
  }
  SEESAW_ASSIGN_OR_RETURN(last_result_,
                          lbfgs_.Minimize(loss_.AsObjective(), std::move(x0)));
  warm_ = last_result_.x;
  have_warm_ = true;

  linalg::VectorF w(d);
  for (size_t j = 0; j < d; ++j) w[j] = static_cast<float>(last_result_.x[j]);
  float norm = linalg::NormalizeInPlace(linalg::MutVecSpan(w.data(), w.size()));
  if (norm <= 1e-12f) {
    // Degenerate all-zero solution (can only happen with pathological
    // hyper-parameters); fall back to the text query.
    return q_text_;
  }
  return w;
}

}  // namespace seesaw::core
