#include "core/aligner.h"

#include "common/check.h"

namespace seesaw::core {

QueryAligner::QueryAligner(const AlignerOptions& options,
                           linalg::VectorF q_text, const linalg::MatrixF* md)
    : options_(options),
      q_text_(q_text),
      loss_(options.loss, std::move(q_text), md) {}

void QueryAligner::AddFeedback(linalg::VecSpan x, bool positive,
                               float weight) {
  loss_.AddExample(x, positive ? 1.0f : 0.0f, weight);
  if (positive) {
    ++num_positive_;
  } else {
    ++num_negative_;
  }
  ++fit_generation_;
}

void QueryAligner::AddSoftFeedback(linalg::VecSpan x, float y, float weight) {
  loss_.AddExample(x, y, weight);
  ++fit_generation_;
}

void QueryAligner::Reset() {
  loss_.ClearExamples();
  num_positive_ = 0;
  num_negative_ = 0;
  have_warm_ = false;
  ++fit_generation_;
}

void QueryAligner::set_options(const AlignerOptions& options) {
  options_ = options;
  loss_.set_options(options.loss);
  ++fit_generation_;
}

AlignerSnapshot QueryAligner::Snapshot() const {
  return AlignerSnapshot{options_, q_text_,   loss_,
                         warm_,    have_warm_, fit_generation_};
}

StatusOr<QueryAligner::FitOutcome> QueryAligner::Fit(
    const AlignerOptions& options, const linalg::VectorF& q_text,
    const AlignerLoss& loss, const optim::VectorD* warm) {
  FitOutcome outcome;
  if (loss.num_examples() == 0) {
    outcome.query = q_text;  // no information yet: q1 = q0
    return outcome;
  }
  const size_t d = q_text.size();
  optim::VectorD x0;
  if (options.warm_start && warm != nullptr) {
    x0 = *warm;
  } else {
    x0.assign(d, 0.0);
    for (size_t j = 0; j < d; ++j) x0[j] = q_text[j];
  }
  // Lbfgs is stateless between Minimize calls; a local instance keeps this
  // path free of shared mutable state (the speculative fit runs it on pool
  // threads).
  optim::Lbfgs lbfgs(options.lbfgs);
  SEESAW_ASSIGN_OR_RETURN(outcome.result,
                          lbfgs.Minimize(loss.AsObjective(), std::move(x0)));
  outcome.solution = outcome.result.x;
  outcome.ran_solver = true;

  linalg::VectorF w(d);
  for (size_t j = 0; j < d; ++j) {
    w[j] = static_cast<float>(outcome.result.x[j]);
  }
  float norm = linalg::NormalizeInPlace(linalg::MutVecSpan(w.data(), w.size()));
  if (norm <= 1e-12f) {
    // Degenerate all-zero solution (can only happen with pathological
    // hyper-parameters); fall back to the text query.
    outcome.query = q_text;
    return outcome;
  }
  outcome.query = std::move(w);
  return outcome;
}

StatusOr<linalg::VectorF> QueryAligner::Align() {
  SEESAW_ASSIGN_OR_RETURN(
      FitOutcome outcome,
      Fit(options_, q_text_, loss_,
          (options_.warm_start && have_warm_) ? &warm_ : nullptr));
  if (!outcome.ran_solver) return std::move(outcome.query);
  last_result_ = std::move(outcome.result);
  warm_ = std::move(outcome.solution);
  have_warm_ = true;
  return std::move(outcome.query);
}

StatusOr<linalg::VectorF> QueryAligner::AlignWith(
    const AlignerSnapshot& snapshot) {
  SEESAW_ASSIGN_OR_RETURN(
      FitOutcome outcome,
      Fit(snapshot.options, snapshot.q_text, snapshot.loss,
          (snapshot.options.warm_start && snapshot.have_warm)
              ? &snapshot.warm
              : nullptr));
  return std::move(outcome.query);
}

}  // namespace seesaw::core
