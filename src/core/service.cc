#include "core/service.h"

#include <cstdio>

#include "common/logging.h"
#include "core/session_manager.h"

namespace seesaw::core {

SeeSawService::SeeSawService(const data::Dataset* dataset,
                             ServiceOptions options)
    : dataset_(dataset),
      options_(std::move(options)),
      sessions_mu_(std::make_unique<Mutex>()) {}

SeeSawService::SeeSawService(SeeSawService&& other) noexcept
    : dataset_(other.dataset_),
      options_(std::move(other.options_)),
      embedded_(std::move(other.embedded_)),
      sessions_mu_(std::move(other.sessions_mu_)),
      sessions_(std::move(other.sessions_)) {
  if (sessions_) sessions_->RebindService(this);
}

SeeSawService& SeeSawService::operator=(SeeSawService&& other) noexcept {
  if (this != &other) {
    dataset_ = other.dataset_;
    options_ = std::move(other.options_);
    embedded_ = std::move(other.embedded_);
    sessions_mu_ = std::move(other.sessions_mu_);
    sessions_ = std::move(other.sessions_);
    if (sessions_) sessions_->RebindService(this);
  }
  return *this;
}

SeeSawService::~SeeSawService() = default;

StatusOr<SeeSawService> SeeSawService::Create(const data::Dataset& dataset,
                                              const ServiceOptions& options) {
  SeeSawService service(&dataset, options);

  bool loaded = false;
  if (!options.cache_path.empty()) {
    auto cached = EmbeddedDataset::Load(options.cache_path, dataset,
                                        options.preprocess);
    if (cached.ok()) {
      service.embedded_ =
          std::make_unique<EmbeddedDataset>(std::move(*cached));
      loaded = true;
      SEESAW_LOG(Info) << "loaded preprocessing cache from "
                       << options.cache_path;
    } else if (!cached.status().IsNotFound()) {
      // A corrupt or mismatched cache is an error worth surfacing; a missing
      // one just means "first run".
      return cached.status();
    }
  }
  if (!loaded) {
    SEESAW_ASSIGN_OR_RETURN(EmbeddedDataset embedded,
                            EmbeddedDataset::Build(dataset,
                                                   options.preprocess));
    service.embedded_ = std::make_unique<EmbeddedDataset>(std::move(embedded));
    if (!options.cache_path.empty()) {
      SEESAW_RETURN_IF_ERROR(service.embedded_->Save(options.cache_path));
      SEESAW_LOG(Info) << "wrote preprocessing cache to "
                       << options.cache_path;
    }
  }
  return service;
}

StatusOr<std::unique_ptr<SeeSawSearcher>> SeeSawService::StartSession(
    const std::string& text_query) const {
  SEESAW_ASSIGN_OR_RETURN(linalg::VectorF q0,
                          dataset_->model().EmbedText(text_query));
  return StartSession(std::move(q0));
}

StatusOr<std::unique_ptr<SeeSawSearcher>> SeeSawService::StartSession(
    linalg::VectorF query_vector) const {
  if (query_vector.size() != embedded_->dim()) {
    return Status::InvalidArgument("query vector dimension mismatch");
  }
  return std::make_unique<SeeSawSearcher>(*embedded_, std::move(query_vector),
                                          options_.search);
}

SessionManager& SeeSawService::sessions() {
  MutexLock lock(*sessions_mu_);
  if (!sessions_) {
    sessions_ = std::make_unique<SessionManager>(
        *this, options_.session_threads, options_.search.prefetch,
        options_.session_limits);
  }
  return *sessions_;
}

}  // namespace seesaw::core
