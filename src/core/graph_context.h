// GraphContext: a kNN graph + Gaussian adjacency over an embedded dataset's
// vectors, built once per dataset and shared across queries. Used by the ENS
// baseline (its kNN classifier) and by the propagation variant of SeeSaw.
#ifndef SEESAW_CORE_GRAPH_CONTEXT_H_
#define SEESAW_CORE_GRAPH_CONTEXT_H_

#include <memory>

#include "common/statusor.h"
#include "core/embedded_dataset.h"
#include "graph/adjacency.h"

namespace seesaw::core {

/// Construction parameters for GraphContext.
struct GraphContextOptions {
  /// Neighbors per node (paper: k=10 for SeeSaw's graph, k=20 for ENS).
  size_t k = 10;
  /// Gaussian kernel width; <= 0 selects the adaptive median-distance width.
  double sigma = 0.0;
  /// Use exact kNN below this many vectors, NN-descent above.
  size_t exact_threshold = 2048;
  uint64_t seed = 29;
};

/// Shared per-dataset graph structures.
class GraphContext {
 public:
  static StatusOr<GraphContext> Build(const EmbeddedDataset& embedded,
                                      const GraphContextOptions& options);

  const graph::KnnGraph& knn() const { return knn_; }
  /// Symmetric Gaussian-weighted adjacency.
  const linalg::SparseMatrixF& adjacency() const { return adjacency_; }
  /// The kernel width actually used (resolved when adaptive).
  double sigma() const { return sigma_; }
  size_t num_nodes() const { return adjacency_.rows(); }

 private:
  GraphContext() = default;

  graph::KnnGraph knn_;
  linalg::SparseMatrixF adjacency_;
  double sigma_ = 0.0;
};

}  // namespace seesaw::core

#endif  // SEESAW_CORE_GRAPH_CONTEXT_H_
