// Multi-scale patch tiling (§4.3 of the paper).
//
// Each image maps to one coarse tile (the whole frame) plus, when the image
// is large enough, a grid of square tiles of side max(base_patch,
// min(W,H)/2) strided by half a tile. A 448x448 image yields exactly 1
// coarse + 9 fine tiles (the paper's worked example). Images smaller than
// 2 * base_patch on either side yield only the coarse tile.
#ifndef SEESAW_CORE_MULTISCALE_H_
#define SEESAW_CORE_MULTISCALE_H_

#include <vector>

#include "data/box.h"

namespace seesaw::core {

/// Tiling configuration.
struct MultiscaleOptions {
  /// Multi-vector representation on/off (off = coarse embedding only).
  bool enabled = true;
  /// The embedding model's native input size (CLIP: 224 px).
  int base_patch = 224;
};

/// Tile boxes for an image of the given pixel size. The coarse (full-image)
/// tile is always first.
std::vector<data::Box> TileImage(int width, int height,
                                 const MultiscaleOptions& options);

}  // namespace seesaw::core

#endif  // SEESAW_CORE_MULTISCALE_H_
