// Searcher: the interface every search method implements (SeeSaw and all
// baselines), mirroring the interaction loop of Listing 1 in the paper:
// fetch a batch of unseen images, receive region feedback, refit, repeat.
#ifndef SEESAW_CORE_SEARCHER_H_
#define SEESAW_CORE_SEARCHER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/box.h"

namespace seesaw::core {

/// User (or oracle) feedback for one inspected image.
struct ImageFeedback {
  uint32_t image_idx = 0;
  /// Whether the image contains the sought concept.
  bool relevant = false;
  /// Region boxes around the relevant areas (empty when not relevant).
  std::vector<data::Box> boxes;
};

/// One ranked result.
struct ScoredImage {
  uint32_t image_idx = 0;
  float score = 0.0f;
};

/// A search method driving one query session. Not thread-safe.
class Searcher {
 public:
  virtual ~Searcher() = default;

  /// Method name for reports ("seesaw", "zero-shot", "ens", ...).
  virtual std::string name() const = 0;

  /// Returns up to n best-scoring images not yet shown (best first). Images
  /// returned here are not yet marked seen; they become seen via
  /// AddFeedback.
  virtual std::vector<ScoredImage> NextBatch(size_t n) = 0;

  /// Records feedback for an image (marks it seen).
  virtual void AddFeedback(const ImageFeedback& feedback) = 0;

  /// Updates the internal query/model from feedback received so far.
  /// Called once per round, after the batch's feedback.
  virtual Status Refit() = 0;
};

}  // namespace seesaw::core

#endif  // SEESAW_CORE_SEARCHER_H_
