#include "core/graph_context.h"

#include "graph/nn_descent.h"

namespace seesaw::core {

StatusOr<GraphContext> GraphContext::Build(const EmbeddedDataset& embedded,
                                           const GraphContextOptions& options) {
  if (options.k == 0) {
    return Status::InvalidArgument("GraphContext: k must be positive");
  }
  GraphContext ctx;
  const linalg::MatrixF& x = embedded.vectors();
  if (x.rows() <= options.exact_threshold) {
    ctx.knn_ = graph::ExactKnn(x, options.k);
  } else {
    graph::NnDescentOptions nnd;
    nnd.k = options.k;
    nnd.seed = options.seed;
    SEESAW_ASSIGN_OR_RETURN(ctx.knn_, graph::NnDescent(x, nnd));
  }
  ctx.sigma_ = options.sigma > 0.0
                   ? options.sigma
                   : graph::MedianNeighborDistance(ctx.knn_);
  if (ctx.sigma_ <= 0.0) ctx.sigma_ = 1.0;
  ctx.adjacency_ = graph::GaussianAdjacency(ctx.knn_, ctx.sigma_);
  return ctx;
}

}  // namespace seesaw::core
