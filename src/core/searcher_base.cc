#include "core/searcher_base.h"

#include <algorithm>
#include <unordered_set>

#include "common/check.h"
#include "store/vector_store.h"

namespace seesaw::core {

SearcherBase::SearcherBase(const EmbeddedDataset& embedded)
    : embedded_(&embedded),
      seen_images_(embedded.num_images()),
      seen_patches_(embedded.num_vectors()) {}

SearcherBase::~SearcherBase() {
  // Cancel and drain every speculation, including already-invalidated ones
  // that may still be running a fit or a scan round. The tasks only read
  // snapshots (never the searcher), but the embedded dataset and shared
  // budget are only guaranteed alive while the searcher's owner is — and a
  // surviving task could submit nested pool work during pool shutdown.
  if (spec_.has_value()) RetireSpeculation(std::move(*spec_));
  spec_.reset();
  for (TaskHandle& handle : stale_speculations_) handle.Wait();
}

void SearcherBase::MarkSeen(uint32_t image_idx) {
  SEESAW_CHECK_LT(image_idx, seen_images_.capacity());
  if (seen_images_.Test(image_idx)) return;
  // An image outside the predicted batch deviates from the speculation's
  // snapshot; one inside moves the live state toward it.
  if (spec_.has_value() && !spec_->seen_images.Test(image_idx)) {
    InvalidatePrefetch();
  }
  ++generation_;
  seen_images_.Set(image_idx);
  auto [begin, end] = embedded_->ImagePatchRange(image_idx);
  for (uint32_t v = begin; v < end; ++v) seen_patches_.Set(v);
  // A surviving speculation only sees in-batch, previously-unseen images
  // here. When the last predicted label lands, the live state equals the
  // prediction and the refit speculation can start its fit.
  if (spec_.has_value() && spec_->stage == SpecStage::kAwaitLabels &&
      --spec_->images_remaining == 0) {
    ArmPredictedFit();
  }
}

std::vector<ScoredImage> SearcherBase::ComputeTopImages(
    const EmbeddedDataset& embedded, ThreadPool* pool, linalg::VecSpan query,
    size_t n, const store::SeenSet& seen_patches,
    const CancellationToken* cancel) {
  const auto& store = embedded.store();
  const auto& patches = embedded.patches();
  const size_t total = store.size();

  double avg_patches =
      static_cast<double>(total) /
      static_cast<double>(std::max<size_t>(1, embedded.num_images()));
  size_t k = static_cast<size_t>(
      std::max<double>(16.0, (static_cast<double>(n) + 4) * avg_patches * 2));

  std::vector<ScoredImage> out;
  std::unordered_set<uint32_t> picked;
  for (;;) {
    if (cancel != nullptr && cancel->cancelled()) return out;
    k = std::min(k, total);
    // Patches of seen images are excluded inside the store scan via the
    // patch-level bitset; a shared pool (managed sessions) shards the scan.
    // The cancellation token rides into the scan itself (store::ScanControl)
    // so a cancelled speculation stops mid-scan — per row block / probed
    // list — not just between k-doubling rounds. Both the batched and the
    // scalar path checkpoint.
    store::ScanControl control;
    control.cancel = cancel;
    std::vector<store::SearchResult> hits;
    if (pool != nullptr) {
      linalg::VecSpan queries[] = {query};
      hits = std::move(store
                           .TopKBatch(std::span<const linalg::VecSpan>(
                                          queries, 1),
                                      k, seen_patches, pool, control)
                           .front());
    } else {
      hits = store.TopK(query, k, seen_patches, control);
    }
    // A cancelled scan returns partial hits; drop them (the caller discards
    // the whole speculation anyway) rather than let a truncated candidate
    // list masquerade as "store exhausted".
    if (cancel != nullptr && cancel->cancelled()) return out;
    out.clear();
    picked.clear();
    // Hits come best-first, so the first patch of an image carries the
    // image's max-pooled score (§4.3).
    for (const auto& h : hits) {
      uint32_t img = patches[h.id].image_idx;
      if (picked.insert(img).second) {
        out.push_back({img, h.score});
        if (out.size() == n) return out;
      }
    }
    if (hits.size() < k || k == total) {
      return out;  // store exhausted; fewer than n unseen images remain
    }
    k *= 2;
  }
}

std::vector<ScoredImage> SearcherBase::TopImages(linalg::VecSpan query,
                                                 size_t n) const {
  return ComputeTopImages(*embedded_, pool_, query, n, seen_patches_,
                          /*cancel=*/nullptr);
}

bool SearcherBase::BeginSchedule(const std::vector<ScoredImage>& batch) {
  // At most one speculation per searcher; a new schedule supersedes the old.
  InvalidatePrefetch();
  std::erase_if(stale_speculations_,
                [](const TaskHandle& handle) { return handle.done(); });
  return prefetch_policy_.enabled && pool_ != nullptr && !batch.empty();
}

SearcherBase::Speculation SearcherBase::MakeSpeculation(
    const std::vector<ScoredImage>& batch, size_t n, size_t* new_images) {
  auto task = std::make_shared<SpecTask>();
  task->seen_patches = seen_patches_;
  task->n = n;

  Speculation spec;
  spec.seen_images = seen_images_;
  // Predict the state after the user labels exactly this batch: every batch
  // image seen (one generation bump each).
  *new_images = 0;
  for (const ScoredImage& hit : batch) {
    if (spec.seen_images.Test(hit.image_idx)) continue;
    spec.seen_images.Set(hit.image_idx);
    auto [begin, end] = embedded_->ImagePatchRange(hit.image_idx);
    for (uint32_t v = begin; v < end; ++v) task->seen_patches.Set(v);
    ++*new_images;
  }
  spec.expected_generation = generation_ + *new_images;
  spec.task = std::move(task);
  return spec;
}

void SearcherBase::SchedulePrefetch(linalg::VecSpan query,
                                    const std::vector<ScoredImage>& batch,
                                    size_t n) {
  if (!BeginSchedule(batch)) return;
  if (budget_ != nullptr && !budget_->TryAcquire()) {
    ++prefetch_stats_.throttled;
    return;
  }

  size_t new_images = 0;
  Speculation spec = MakeSpeculation(batch, n, &new_images);
  spec.stage = SpecStage::kScan;
  spec.query_known = true;  // the query is predicted not to move
  std::shared_ptr<SpecTask> task = spec.task;
  task->query.assign(query.begin(), query.end());
  task->budget = budget_;

  // The task captures no pointer to this searcher: it works on the snapshot
  // and publishes its result through the handle's completion.
  const EmbeddedDataset* embedded = embedded_;
  ThreadPool* pool = pool_;
  spec.handle = pool_->SubmitWithResult([task, embedded, pool] {
    if (!task->cancel.cancelled()) {
      task->result =
          ComputeTopImages(*embedded, pool, task->query, task->n,
                           task->seen_patches, &task->cancel);
    }
    task->ReleaseBudgetOnce();
  });
  ++prefetch_stats_.scheduled;
  spec_ = std::move(spec);
}

void SearcherBase::SchedulePrefetchAfterRefit(
    const std::vector<ScoredImage>& batch, size_t n,
    PredictedFitFactory fit_factory) {
  if (!BeginSchedule(batch)) return;

  size_t new_images = 0;
  Speculation spec = MakeSpeculation(batch, n, &new_images);
  if (new_images == 0) return;  // nothing to wait for; cannot arm
  spec.stage = SpecStage::kAwaitLabels;
  spec.images_remaining = new_images;
  spec.fit_factory = std::move(fit_factory);
  // Nothing is submitted and no budget is held until the batch is fully
  // labeled (ArmPredictedFit); an abandoned prediction costs nothing.
  ++prefetch_stats_.scheduled;
  spec_ = std::move(spec);
}

void SearcherBase::ArmPredictedFit() {
  SEESAW_CHECK(spec_.has_value());
  SEESAW_CHECK(spec_->stage == SpecStage::kAwaitLabels);
  // Submission was deferred from schedule time to now, so re-validate the
  // preconditions BeginSchedule checked then: the driver may have detached
  // the pool or disabled the policy in between.
  if (pool_ == nullptr || !prefetch_policy_.enabled) {
    spec_.reset();
    ++prefetch_stats_.invalidated;
    return;
  }
  // The fit burns a worker's CPU, so it is what the shared budget meters:
  // charge the slot here, not at schedule time.
  if (budget_ != nullptr && !budget_->TryAcquire()) {
    ++prefetch_stats_.throttled;
    spec_.reset();  // nothing running, nothing to cancel
    return;
  }
  std::shared_ptr<SpecTask> task = spec_->task;
  task->budget = budget_;
  // Clone the fit state on this (the searcher's) thread, while it is
  // consistent; the resulting closure owns the clone outright.
  task->fit = spec_->fit_factory();
  spec_->fit_factory = nullptr;

  // Stage 1: the speculative fit. Publishes the predicted post-refit query
  // into the task; readers order themselves after it via fit_handle.Wait().
  spec_->fit_handle = pool_->SubmitWithResult([task] {
    if (!task->cancel.cancelled()) {
      if (std::optional<linalg::VectorF> q = task->fit()) {
        task->query = *std::move(q);
        task->fit_ok = true;
      }
    }
    // Drop the closure (and the cloned aligner snapshot inside it — the
    // whole accumulated-feedback table) as soon as the query is published,
    // not when the speculation is eventually consumed or drained.
    task->fit = nullptr;
  });
  // Stage 2: the scan with the predicted query. Waiting on the fit handle
  // from a pool task is safe (the waiter helps drain the queue).
  TaskHandle fit_handle = spec_->fit_handle;
  const EmbeddedDataset* embedded = embedded_;
  ThreadPool* pool = pool_;
  spec_->handle =
      pool_->SubmitWithResult([task, fit_handle, embedded, pool]() mutable {
        fit_handle.Wait();
        if (task->fit_ok && !task->cancel.cancelled()) {
          task->result =
              ComputeTopImages(*embedded, pool, task->query, task->n,
                               task->seen_patches, &task->cancel);
        }
        task->ReleaseBudgetOnce();
      });
  spec_->stage = SpecStage::kFitScan;
  // All predicted labels have landed, so the live generation is exactly the
  // predicted one; the only bump still to come is the refit's own.
  SEESAW_CHECK_EQ(spec_->expected_generation, generation_);
  ++prefetch_stats_.refit_fits;
}

void SearcherBase::CommitRefit(linalg::VecSpan refit_query, bool query_moved) {
  if (query_moved) ++generation_;
  if (!spec_.has_value()) return;
  switch (spec_->stage) {
    case SpecStage::kScan:
      // A same-query speculation only survives a refit that left the query
      // bitwise unchanged.
      if (query_moved) InvalidatePrefetch();
      return;
    case SpecStage::kAwaitLabels:
      // The refit arrived before the predicted batch was fully labeled
      // (partial labels). A moved query falsifies the prediction outright; an
      // unmoved one keeps the pending speculation plausible — the remaining
      // labels may still arrive.
      if (query_moved) InvalidatePrefetch();
      return;
    case SpecStage::kFitScan:
      break;
  }
  // Wait for the fit stage only (the scan keeps running); during real think
  // time this returns immediately. The wait orders this thread after the
  // fit task's writes.
  spec_->fit_handle.Wait();
  const linalg::VectorF& predicted = spec_->task->query;
  bool match = spec_->task->fit_ok &&
               predicted.size() == refit_query.size() &&
               std::equal(refit_query.begin(), refit_query.end(),
                          predicted.begin());
  if (!match) {
    // The session state moved between arm and refit (extra soft feedback,
    // changed aligner options, duplicate labels, ...), or the fit failed:
    // the scan is running against the wrong query. Cancel it mid-scan.
    ++prefetch_stats_.refit_mismatches;
    InvalidatePrefetch();
    return;
  }
  // Blessed: the refit landed on the predicted bits, so the speculative scan
  // is exactly the lookup the next NextBatch wants. Re-key the speculation
  // to the post-refit generation and let TakePrefetched compare the query.
  spec_->expected_generation = generation_;
  spec_->query_known = true;
  ++prefetch_stats_.refit_matches;
}

std::optional<std::vector<ScoredImage>> SearcherBase::TakePrefetched(
    linalg::VecSpan query, size_t n) {
  if (!spec_.has_value()) return std::nullopt;
  Speculation spec = std::move(*spec_);
  spec_.reset();

  // query_known gates the bit compare: an unblessed kFitScan task may still
  // be writing its predicted query, and a kAwaitLabels one has none at all.
  bool valid = spec.query_known &&
               spec.expected_generation == generation_ && spec.task->n == n;
  if (valid) {
    const linalg::VectorF& spec_query = spec.task->query;
    valid = spec_query.size() == query.size() &&
            std::equal(query.begin(), query.end(), spec_query.begin()) &&
            seen_images_ == spec.seen_images;
  }
  if (!valid) {
    RetireSpeculation(std::move(spec));
    ++prefetch_stats_.misses;
    return std::nullopt;
  }
  spec.handle.Wait();
  if (spec.task->cancel.cancelled()) {
    // Defensive: a cancelled task may hold a partial result.
    ++prefetch_stats_.misses;
    return std::nullopt;
  }
  ++prefetch_stats_.hits;
  if (spec.stage == SpecStage::kFitScan) ++prefetch_stats_.hits_post_refit;
  return std::move(spec.task->result);
}

void SearcherBase::RetireSpeculation(Speculation&& spec) {
  spec.task->cancel.RequestCancel();
  spec.task->ReleaseBudgetOnce();
  // Don't wait here (the foreground recompute should start immediately);
  // park the handles for the destructor to drain. A kAwaitLabels speculation
  // never submitted anything, so its handles are empty.
  if (spec.fit_handle.valid()) {
    stale_speculations_.push_back(std::move(spec.fit_handle));
  }
  if (spec.handle.valid()) {
    stale_speculations_.push_back(std::move(spec.handle));
  }
}

void SearcherBase::InvalidatePrefetch() {
  if (!spec_.has_value()) return;
  RetireSpeculation(std::move(*spec_));
  spec_.reset();
  ++prefetch_stats_.invalidated;
}

std::vector<PatchLabel> SearcherBase::LabelPatches(
    const ImageFeedback& feedback) const {
  auto [begin, end] = embedded_->ImagePatchRange(feedback.image_idx);
  std::vector<PatchLabel> labels;
  labels.reserve(end - begin);
  // Relevant feedback without region boxes means "the whole image is
  // relevant" (a UI without box support, or a keyboard-only mark).
  const bool whole_image = feedback.relevant && feedback.boxes.empty();
  for (uint32_t v = begin; v < end; ++v) {
    bool positive = whole_image;
    if (feedback.relevant && !whole_image) {
      const data::Box& patch_box = embedded_->patch(v).box;
      for (const data::Box& fb_box : feedback.boxes) {
        if (patch_box.Overlaps(fb_box)) {
          positive = true;
          break;
        }
      }
    }
    labels.push_back({v, positive});
  }
  return labels;
}

}  // namespace seesaw::core
