#include "core/searcher_base.h"

#include <algorithm>
#include <unordered_set>

#include "common/check.h"
#include "common/thread_pool.h"

namespace seesaw::core {

SearcherBase::SearcherBase(const EmbeddedDataset& embedded)
    : embedded_(&embedded),
      seen_images_(embedded.num_images()),
      seen_patches_(embedded.num_vectors()) {}

void SearcherBase::MarkSeen(uint32_t image_idx) {
  SEESAW_CHECK_LT(image_idx, seen_images_.capacity());
  if (seen_images_.Test(image_idx)) return;
  seen_images_.Set(image_idx);
  auto [begin, end] = embedded_->ImagePatchRange(image_idx);
  for (uint32_t v = begin; v < end; ++v) seen_patches_.Set(v);
}

std::vector<ScoredImage> SearcherBase::TopImages(linalg::VecSpan query,
                                                 size_t n) const {
  const auto& store = embedded_->store();
  const auto& patches = embedded_->patches();
  const size_t total = store.size();

  double avg_patches =
      static_cast<double>(total) /
      static_cast<double>(std::max<size_t>(1, embedded_->num_images()));
  size_t k = static_cast<size_t>(
      std::max<double>(16.0, (static_cast<double>(n) + 4) * avg_patches * 2));

  std::vector<ScoredImage> out;
  std::unordered_set<uint32_t> picked;
  for (;;) {
    k = std::min(k, total);
    // Patches of seen images are excluded inside the store scan via the
    // patch-level bitset; a shared pool (managed sessions) shards the scan.
    std::vector<store::SearchResult> hits;
    if (pool_ != nullptr) {
      linalg::VecSpan queries[] = {query};
      hits = std::move(store
                           .TopKBatch(std::span<const linalg::VecSpan>(
                                          queries, 1),
                                      k, seen_patches_, pool_)
                           .front());
    } else {
      hits = store.TopK(query, k, seen_patches_);
    }
    out.clear();
    picked.clear();
    // Hits come best-first, so the first patch of an image carries the
    // image's max-pooled score (§4.3).
    for (const auto& h : hits) {
      uint32_t img = patches[h.id].image_idx;
      if (picked.insert(img).second) {
        out.push_back({img, h.score});
        if (out.size() == n) return out;
      }
    }
    if (hits.size() < k || k == total) {
      return out;  // store exhausted; fewer than n unseen images remain
    }
    k *= 2;
  }
}

std::vector<PatchLabel> SearcherBase::LabelPatches(
    const ImageFeedback& feedback) const {
  auto [begin, end] = embedded_->ImagePatchRange(feedback.image_idx);
  std::vector<PatchLabel> labels;
  labels.reserve(end - begin);
  // Relevant feedback without region boxes means "the whole image is
  // relevant" (a UI without box support, or a keyboard-only mark).
  const bool whole_image = feedback.relevant && feedback.boxes.empty();
  for (uint32_t v = begin; v < end; ++v) {
    bool positive = whole_image;
    if (feedback.relevant && !whole_image) {
      const data::Box& patch_box = embedded_->patch(v).box;
      for (const data::Box& fb_box : feedback.boxes) {
        if (patch_box.Overlaps(fb_box)) {
          positive = true;
          break;
        }
      }
    }
    labels.push_back({v, positive});
  }
  return labels;
}

}  // namespace seesaw::core
