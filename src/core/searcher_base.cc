#include "core/searcher_base.h"

#include <algorithm>
#include <unordered_set>

#include "common/check.h"

namespace seesaw::core {

SearcherBase::SearcherBase(const EmbeddedDataset& embedded)
    : embedded_(&embedded),
      seen_images_(embedded.num_images()),
      seen_patches_(embedded.num_vectors()) {}

SearcherBase::~SearcherBase() {
  // Cancel and drain every speculation, including already-invalidated ones
  // that may still be running a scan round. The tasks only read snapshots
  // (never the searcher), but the embedded dataset and shared budget are
  // only guaranteed alive while the searcher's owner is — and a surviving
  // task could submit nested pool work during pool shutdown.
  if (spec_.has_value()) {
    spec_->task->cancel.RequestCancel();
    spec_->task->ReleaseBudgetOnce();
    stale_speculations_.push_back(std::move(spec_->handle));
  }
  for (TaskHandle& handle : stale_speculations_) handle.Wait();
}

void SearcherBase::MarkSeen(uint32_t image_idx) {
  SEESAW_CHECK_LT(image_idx, seen_images_.capacity());
  if (seen_images_.Test(image_idx)) return;
  // An image outside the predicted batch deviates from the speculation's
  // snapshot; one inside moves the live state toward it.
  if (spec_.has_value() && !spec_->seen_images.Test(image_idx)) {
    InvalidatePrefetch();
  }
  ++generation_;
  seen_images_.Set(image_idx);
  auto [begin, end] = embedded_->ImagePatchRange(image_idx);
  for (uint32_t v = begin; v < end; ++v) seen_patches_.Set(v);
}

std::vector<ScoredImage> SearcherBase::ComputeTopImages(
    const EmbeddedDataset& embedded, ThreadPool* pool, linalg::VecSpan query,
    size_t n, const store::SeenSet& seen_patches,
    const CancellationToken* cancel) {
  const auto& store = embedded.store();
  const auto& patches = embedded.patches();
  const size_t total = store.size();

  double avg_patches =
      static_cast<double>(total) /
      static_cast<double>(std::max<size_t>(1, embedded.num_images()));
  size_t k = static_cast<size_t>(
      std::max<double>(16.0, (static_cast<double>(n) + 4) * avg_patches * 2));

  std::vector<ScoredImage> out;
  std::unordered_set<uint32_t> picked;
  for (;;) {
    if (cancel != nullptr && cancel->cancelled()) return out;
    k = std::min(k, total);
    // Patches of seen images are excluded inside the store scan via the
    // patch-level bitset; a shared pool (managed sessions) shards the scan.
    // The cancellation token rides into the scan itself (store::ScanControl)
    // so a cancelled speculation stops mid-TopKBatch — per row block /
    // probed list — not just between k-doubling rounds.
    std::vector<store::SearchResult> hits;
    if (pool != nullptr) {
      store::ScanControl control;
      control.cancel = cancel;
      linalg::VecSpan queries[] = {query};
      hits = std::move(store
                           .TopKBatch(std::span<const linalg::VecSpan>(
                                          queries, 1),
                                      k, seen_patches, pool, control)
                           .front());
      // A cancelled scan returns partial hits; drop them (the caller
      // discards the whole speculation anyway) rather than let a truncated
      // candidate list masquerade as "store exhausted".
      if (cancel != nullptr && cancel->cancelled()) return out;
    } else {
      hits = store.TopK(query, k, seen_patches);
    }
    out.clear();
    picked.clear();
    // Hits come best-first, so the first patch of an image carries the
    // image's max-pooled score (§4.3).
    for (const auto& h : hits) {
      uint32_t img = patches[h.id].image_idx;
      if (picked.insert(img).second) {
        out.push_back({img, h.score});
        if (out.size() == n) return out;
      }
    }
    if (hits.size() < k || k == total) {
      return out;  // store exhausted; fewer than n unseen images remain
    }
    k *= 2;
  }
}

std::vector<ScoredImage> SearcherBase::TopImages(linalg::VecSpan query,
                                                 size_t n) const {
  return ComputeTopImages(*embedded_, pool_, query, n, seen_patches_,
                          /*cancel=*/nullptr);
}

void SearcherBase::SchedulePrefetch(linalg::VecSpan query,
                                    const std::vector<ScoredImage>& batch,
                                    size_t n) {
  // At most one speculation per searcher; a new schedule supersedes the old.
  InvalidatePrefetch();
  std::erase_if(stale_speculations_,
                [](const TaskHandle& handle) { return handle.done(); });
  if (!prefetch_policy_.enabled || pool_ == nullptr || batch.empty()) return;
  if (budget_ != nullptr && !budget_->TryAcquire()) {
    ++prefetch_stats_.throttled;
    return;
  }

  auto task = std::make_shared<SpecTask>();
  task->query.assign(query.begin(), query.end());
  task->seen_patches = seen_patches_;
  task->n = n;
  task->budget = budget_;

  Speculation spec;
  spec.seen_images = seen_images_;
  // Predict the state after the user labels exactly this batch: every batch
  // image seen (one generation bump each), query unchanged.
  size_t new_images = 0;
  for (const ScoredImage& hit : batch) {
    if (spec.seen_images.Test(hit.image_idx)) continue;
    spec.seen_images.Set(hit.image_idx);
    auto [begin, end] = embedded_->ImagePatchRange(hit.image_idx);
    for (uint32_t v = begin; v < end; ++v) task->seen_patches.Set(v);
    ++new_images;
  }
  spec.expected_generation = generation_ + new_images;
  spec.task = task;

  // The task captures no pointer to this searcher: it works on the snapshot
  // and publishes its result through the handle's completion.
  const EmbeddedDataset* embedded = embedded_;
  ThreadPool* pool = pool_;
  spec.handle = pool_->SubmitWithResult([task, embedded, pool] {
    if (!task->cancel.cancelled()) {
      task->result =
          ComputeTopImages(*embedded, pool, task->query, task->n,
                           task->seen_patches, &task->cancel);
    }
    task->ReleaseBudgetOnce();
  });
  ++prefetch_stats_.scheduled;
  spec_ = std::move(spec);
}

std::optional<std::vector<ScoredImage>> SearcherBase::TakePrefetched(
    linalg::VecSpan query, size_t n) {
  if (!spec_.has_value()) return std::nullopt;
  Speculation spec = std::move(*spec_);
  spec_.reset();

  const linalg::VectorF& spec_query = spec.task->query;
  bool valid = spec.expected_generation == generation_ && spec.task->n == n &&
               spec_query.size() == query.size() &&
               std::equal(query.begin(), query.end(), spec_query.begin()) &&
               seen_images_ == spec.seen_images;
  if (!valid) {
    spec.task->cancel.RequestCancel();
    spec.task->ReleaseBudgetOnce();
    // Don't wait here (the foreground recompute should start immediately);
    // park the handle for the destructor to drain.
    stale_speculations_.push_back(std::move(spec.handle));
    ++prefetch_stats_.misses;
    return std::nullopt;
  }
  spec.handle.Wait();
  if (spec.task->cancel.cancelled()) {
    // Defensive: a cancelled task may hold a partial result.
    ++prefetch_stats_.misses;
    return std::nullopt;
  }
  ++prefetch_stats_.hits;
  return std::move(spec.task->result);
}

void SearcherBase::InvalidatePrefetch() {
  if (!spec_.has_value()) return;
  spec_->task->cancel.RequestCancel();
  spec_->task->ReleaseBudgetOnce();
  stale_speculations_.push_back(std::move(spec_->handle));
  spec_.reset();
  ++prefetch_stats_.invalidated;
}

void SearcherBase::NoteQueryUpdated() {
  ++generation_;
  InvalidatePrefetch();
}

std::vector<PatchLabel> SearcherBase::LabelPatches(
    const ImageFeedback& feedback) const {
  auto [begin, end] = embedded_->ImagePatchRange(feedback.image_idx);
  std::vector<PatchLabel> labels;
  labels.reserve(end - begin);
  // Relevant feedback without region boxes means "the whole image is
  // relevant" (a UI without box support, or a keyboard-only mark).
  const bool whole_image = feedback.relevant && feedback.boxes.empty();
  for (uint32_t v = begin; v < end; ++v) {
    bool positive = whole_image;
    if (feedback.relevant && !whole_image) {
      const data::Box& patch_box = embedded_->patch(v).box;
      for (const data::Box& fb_box : feedback.boxes) {
        if (patch_box.Overlaps(fb_box)) {
          positive = true;
          break;
        }
      }
    }
    labels.push_back({v, positive});
  }
  return labels;
}

}  // namespace seesaw::core
