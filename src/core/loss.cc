#include "core/loss.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace seesaw::core {

namespace {
// Keeps the 1/|w| terms finite; far below any meaningful |w|.
constexpr double kNormFloor = 1e-12;
}  // namespace

AlignerLoss::AlignerLoss(const LossOptions& options, linalg::VectorF q_text,
                         const linalg::MatrixF* md)
    : options_(options), q_text_(std::move(q_text)), md_(md) {
  SEESAW_CHECK(!q_text_.empty());
  if (md_ != nullptr) {
    SEESAW_CHECK_EQ(md_->rows(), q_text_.size());
    SEESAW_CHECK_EQ(md_->cols(), q_text_.size());
  }
}

void AlignerLoss::AddExample(linalg::VecSpan x, float y, float weight) {
  SEESAW_CHECK_EQ(x.size(), q_text_.size());
  SEESAW_CHECK_GE(y, 0.0f);
  SEESAW_CHECK_LE(y, 1.0f);
  if (used_rows_ == examples_.rows()) {
    // Grow geometrically; MatrixF has no push_back.
    size_t new_rows = std::max<size_t>(16, examples_.rows() * 2);
    linalg::MatrixF grown(new_rows, q_text_.size());
    for (size_t r = 0; r < used_rows_; ++r) {
      auto src = examples_.Row(r);
      std::copy(src.begin(), src.end(), grown.MutableRow(r).begin());
    }
    examples_ = std::move(grown);
  }
  std::copy(x.begin(), x.end(), examples_.MutableRow(used_rows_).begin());
  ++used_rows_;
  labels_.push_back(y);
  weights_.push_back(weight);
}

void AlignerLoss::ClearExamples() {
  used_rows_ = 0;
  labels_.clear();
  weights_.clear();
}

double AlignerLoss::Evaluate(const optim::VectorD& w,
                             optim::VectorD* grad) const {
  const size_t d = q_text_.size();
  SEESAW_CHECK_EQ(w.size(), d);
  grad->assign(d, 0.0);

  // float32 copy of w for fast dot products with the float rows.
  linalg::VectorF wf(d);
  for (size_t j = 0; j < d; ++j) wf[j] = static_cast<float>(w[j]);
  linalg::VecSpan wspan(wf);

  double loss = 0.0;

  // Class-balance multipliers: each class contributes n/2 total mass.
  double pos_mult = 1.0, neg_mult = 1.0;
  if (options_.balance_classes && !labels_.empty()) {
    double pos_mass = 0.0, neg_mass = 0.0;
    for (size_t i = 0; i < labels_.size(); ++i) {
      (labels_[i] >= 0.5f ? pos_mass : neg_mass) += weights_[i];
    }
    double total = pos_mass + neg_mass;
    if (pos_mass > 0) pos_mult = total / (2.0 * pos_mass);
    if (neg_mass > 0) neg_mult = total / (2.0 * neg_mass);
  }

  // --- Data term: sum_i weight_i * LogLoss(y_i, sigmoid(w.x_i)). ---
  for (size_t i = 0; i < labels_.size(); ++i) {
    linalg::VecSpan x = examples_.Row(i);
    // Double accumulation: float32 noise here would destabilize the L-BFGS
    // line search once per-step decreases get small.
    double s = linalg::DotDouble(x, wspan);
    double y = labels_[i];
    double wt = weights_[i] * (y >= 0.5f ? pos_mult : neg_mult);
    // Numerically stable logistic loss: max(s,0) - s*y + log(1+exp(-|s|)).
    double ll = std::max(s, 0.0) - s * y + std::log1p(std::exp(-std::abs(s)));
    loss += wt * ll;
    double p = 1.0 / (1.0 + std::exp(-s));
    double coeff = wt * (p - y);
    for (size_t j = 0; j < d; ++j) (*grad)[j] += coeff * x[j];
  }

  // --- lambda |w|^2. ---
  double norm2 = 0.0;
  for (size_t j = 0; j < d; ++j) norm2 += w[j] * w[j];
  loss += options_.lambda * norm2;
  for (size_t j = 0; j < d; ++j) (*grad)[j] += 2.0 * options_.lambda * w[j];

  double norm = std::sqrt(std::max(norm2, kNormFloor));

  // --- CLIP alignment: lambda_text * (1 - w.q0 / |w|). ---
  if (options_.use_text_term && options_.lambda_text != 0.0) {
    double wq = 0.0;
    for (size_t j = 0; j < d; ++j) wq += w[j] * q_text_[j];
    loss += options_.lambda_text * (1.0 - wq / norm);
    // d/dw [w.q/|w|] = q/|w| - (w.q) w / |w|^3
    double inv = 1.0 / norm;
    double inv3 = inv * inv * inv;
    for (size_t j = 0; j < d; ++j) {
      (*grad)[j] +=
          options_.lambda_text * (-q_text_[j] * inv + wq * w[j] * inv3);
    }
  }

  // --- DB alignment: lambda_db * (w^T M w) / |w|^2. ---
  if (options_.use_db_term && md_ != nullptr && options_.lambda_db != 0.0) {
    linalg::VectorF mw = md_->MatVec(wspan);
    double wmw = 0.0;
    for (size_t j = 0; j < d; ++j) wmw += w[j] * mw[j];
    double inv2 = 1.0 / std::max(norm2, kNormFloor);
    loss += options_.lambda_db * wmw * inv2;
    // d/dw = (2 M w) / |w|^2 - 2 (w^T M w) w / |w|^4
    for (size_t j = 0; j < d; ++j) {
      (*grad)[j] += options_.lambda_db * 2.0 * inv2 *
                    (static_cast<double>(mw[j]) - wmw * inv2 * w[j]);
    }
  }
  return loss;
}

optim::Objective AlignerLoss::AsObjective() const {
  return [this](const optim::VectorD& w, optim::VectorD* grad) {
    return Evaluate(w, grad);
  };
}

}  // namespace seesaw::core
