// AnnoyIndex: approximate max-inner-product store built from a forest of
// random-projection trees — the same structure as Spotify's Annoy (the store
// the paper uses, §2.2). Vectors are unit-norm, so angular and inner-product
// orderings coincide.
//
// Build: each tree recursively splits its subset by the perpendicular
// bisector hyperplane of two randomly sampled points (Annoy's "two means"
// split). Query: a best-first traversal over all trees ranked by hyperplane
// margin collects >= search_k candidates, which are then scored exactly.
#ifndef SEESAW_STORE_ANNOY_INDEX_H_
#define SEESAW_STORE_ANNOY_INDEX_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/statusor.h"
#include "store/vector_store.h"

namespace seesaw::store {

/// Build/query knobs for AnnoyIndex.
struct AnnoyOptions {
  /// Number of trees in the forest. More trees -> higher recall, more memory.
  int num_trees = 16;
  /// Maximum number of items per leaf.
  int leaf_size = 32;
  /// Number of candidates inspected per query; 0 means num_trees * k * 8.
  size_t search_k = 0;
  /// RNG seed for tree construction.
  uint64_t seed = 7;
};

/// Approximate MIPS index over a fixed table of vectors.
class AnnoyIndex : public VectorStore {
 public:
  /// Builds the forest over `vectors` (takes ownership).
  static StatusOr<AnnoyIndex> Build(const AnnoyOptions& options,
                                    linalg::MatrixF vectors);

  size_t size() const override { return vectors_.rows(); }
  size_t dim() const override { return vectors_.cols(); }

  /// Scalar lookup. One forest traversal is the natural scan unit here (the
  /// batched path checkpoints per query), so cancellation is checkpointed
  /// twice: before the traversal and before the exact candidate-scoring
  /// pass.
  std::vector<SearchResult> TopK(linalg::VecSpan query, size_t k,
                                 const SeenSet& seen,
                                 const ScanControl& control) const override;
  using VectorStore::TopK;

  /// Tree traversals are independent per query, so the batch simply fans
  /// queries out across the pool (exact per-query parity by construction).
  /// Cancellation is checkpointed per query (each query is one independent
  /// forest traversal — the natural unit here).
  std::vector<std::vector<SearchResult>> TopKBatch(
      std::span<const linalg::VecSpan> queries, size_t k, const SeenSet& seen,
      ThreadPool* pool, const ScanControl& control) const override;
  using VectorStore::TopKBatch;

  linalg::VecSpan GetVector(uint32_t id) const override {
    return vectors_.Row(id);
  }

  /// Total internal + leaf nodes across all trees (memory diagnostics).
  size_t num_nodes() const { return nodes_.size(); }

  const AnnoyOptions& options() const { return options_; }

 private:
  /// Tree node. Leaf nodes hold a range into leaf_items_; internal nodes hold
  /// a split hyperplane and two children.
  struct Node {
    // Internal-node fields.
    int32_t left = -1;
    int32_t right = -1;
    float bias = 0.0f;
    uint32_t hyperplane_offset = 0;  // into hyperplanes_
    // Leaf fields (leaf iff left == -1).
    uint32_t items_begin = 0;
    uint32_t items_end = 0;
  };

  AnnoyIndex(AnnoyOptions options, linalg::MatrixF vectors)
      : options_(options), vectors_(std::move(vectors)) {}

  /// Recursively builds the subtree over items[begin, end); returns node id.
  int32_t BuildSubtree(std::vector<uint32_t>& items, size_t begin, size_t end,
                       int depth, Rng& rng);

  AnnoyOptions options_;
  linalg::MatrixF vectors_;
  std::vector<Node> nodes_;
  std::vector<int32_t> roots_;
  std::vector<uint32_t> leaf_items_;
  std::vector<float> hyperplanes_;  // flattened dim-sized normals
};

}  // namespace seesaw::store

#endif  // SEESAW_STORE_ANNOY_INDEX_H_
