// IvfFlatIndex: inverted-file flat index (FAISS "IVF,Flat" style) —
// k-means coarse quantizer + exhaustive scan of the closest `nprobe`
// inverted lists. The second ANN family alongside AnnoyIndex; §2.2 of the
// paper only requires an approximate MIPS store, and shipping two
// interchangeable backends exercises that abstraction.
#ifndef SEESAW_STORE_IVF_INDEX_H_
#define SEESAW_STORE_IVF_INDEX_H_

#include <cstdint>
#include <vector>

#include "common/statusor.h"
#include "linalg/kmeans.h"
#include "store/vector_store.h"

namespace seesaw::store {

/// Build/query knobs for IvfFlatIndex.
struct IvfOptions {
  /// Number of inverted lists (k-means cells); 0 = sqrt(n) heuristic.
  size_t num_lists = 0;
  /// Lists scanned per query. More lists -> higher recall, slower queries.
  size_t nprobe = 4;
  /// K-means training iterations.
  int train_iters = 20;
  uint64_t seed = 37;
};

/// Inverted-file index over a fixed table of vectors.
class IvfFlatIndex : public VectorStore {
 public:
  /// Trains the quantizer and assigns every vector to a list.
  static StatusOr<IvfFlatIndex> Build(const IvfOptions& options,
                                      linalg::MatrixF vectors);

  size_t size() const override { return vectors_.rows(); }
  size_t dim() const override { return vectors_.cols(); }

  /// Scalar lookup; cancellation is checkpointed per probed inverted list,
  /// same granularity as the batched path.
  std::vector<SearchResult> TopK(linalg::VecSpan query, size_t k,
                                 const SeenSet& seen,
                                 const ScanControl& control) const override;
  using VectorStore::TopK;

  /// Batched lookup: centroids are scored against all queries in one blocked
  /// pass, then each query's probe lists are scanned — in parallel across
  /// queries when a pool is given. Cancellation is checkpointed per probed
  /// list, so a cancelled call stops mid-scan.
  std::vector<std::vector<SearchResult>> TopKBatch(
      std::span<const linalg::VecSpan> queries, size_t k, const SeenSet& seen,
      ThreadPool* pool, const ScanControl& control) const override;
  using VectorStore::TopKBatch;

  linalg::VecSpan GetVector(uint32_t id) const override {
    return vectors_.Row(id);
  }

  size_t num_lists() const { return lists_.size(); }
  const IvfOptions& options() const { return options_; }

 private:
  IvfFlatIndex(IvfOptions options, linalg::MatrixF vectors)
      : options_(options), vectors_(std::move(vectors)) {}

  /// Number of lists scanned per query (nprobe clamped to [1, num_lists]).
  size_t ProbeCount() const;

  /// The ProbeCount() best cells for a query given every cell's centroid
  /// score, ranked by (score desc, cell id asc) — shared by the scalar and
  /// batched paths so both probe identical lists.
  std::vector<uint32_t> RankCells(linalg::VecSpan centroid_scores) const;

  /// Exhaustive scan of `cells`' member lists under `seen`. Every probed
  /// list is a cancellation checkpoint.
  std::vector<SearchResult> ScanLists(linalg::VecSpan query,
                                      const std::vector<uint32_t>& cells,
                                      size_t k, const SeenSet& seen,
                                      const ScanControl& control) const;

  IvfOptions options_;
  linalg::MatrixF vectors_;
  linalg::MatrixF centroids_;             // num_lists x dim
  std::vector<std::vector<uint32_t>> lists_;  // member ids per cell
};

}  // namespace seesaw::store

#endif  // SEESAW_STORE_IVF_INDEX_H_
