// VectorStore: maximum-inner-product lookup over a table of unit vectors.
//
// This is the "indexed vector store" of the paper's §2.2 (Annoy in their
// implementation). Lookups may be approximate: SeeSaw tolerates results that
// are among the top scores rather than exactly the top (the embedding itself
// carries more error than the index).
#ifndef SEESAW_STORE_VECTOR_STORE_H_
#define SEESAW_STORE_VECTOR_STORE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "linalg/matrix.h"
#include "linalg/vector_ops.h"

namespace seesaw::store {

/// One scored hit.
struct SearchResult {
  uint32_t id = 0;
  float score = 0.0f;
};

/// Predicate deciding whether a vector id should be skipped (e.g. patches of
/// images the user has already seen). May be null meaning "keep everything".
using ExcludeFn = std::function<bool(uint32_t)>;

/// Interface for max-inner-product stores.
class VectorStore {
 public:
  virtual ~VectorStore() = default;

  /// Number of vectors.
  virtual size_t size() const = 0;

  /// Vector dimensionality.
  virtual size_t dim() const = 0;

  /// Returns up to k results with the largest inner product against `query`,
  /// sorted by descending score, skipping ids for which `exclude` returns
  /// true. Fewer than k results are returned only when the store (after
  /// exclusions) is smaller than k or the index exhausts its candidates.
  virtual std::vector<SearchResult> TopK(linalg::VecSpan query, size_t k,
                                         const ExcludeFn& exclude) const = 0;

  /// Convenience overload without exclusions.
  std::vector<SearchResult> TopK(linalg::VecSpan query, size_t k) const {
    return TopK(query, k, ExcludeFn());
  }

  /// Read access to vector `id`.
  virtual linalg::VecSpan GetVector(uint32_t id) const = 0;
};

/// Fraction of `truth` ids present in `got` (recall@k for index quality
/// checks; both inputs are TopK outputs over the same query).
double RecallAgainst(const std::vector<SearchResult>& got,
                     const std::vector<SearchResult>& truth);

}  // namespace seesaw::store

#endif  // SEESAW_STORE_VECTOR_STORE_H_
