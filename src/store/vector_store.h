// VectorStore: maximum-inner-product lookup over a table of unit vectors.
//
// This is the "indexed vector store" of the paper's §2.2 (Annoy in their
// implementation). Lookups may be approximate: SeeSaw tolerates results that
// are among the top scores rather than exactly the top (the embedding itself
// carries more error than the index).
//
// Exclusions are expressed as a SeenSet bitset (O(1) branch-predictable test
// in the innermost scan loop), and every backend serves both single queries
// (TopK) and query batches (TopKBatch). Batched lookups may shard the work
// across a ThreadPool and are guaranteed to return exactly what per-query
// TopK would: all backends select with the same total order (score
// descending, id ascending on ties), so results are unique and independent
// of sharding.
#ifndef SEESAW_STORE_VECTOR_STORE_H_
#define SEESAW_STORE_VECTOR_STORE_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/cancellation.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "linalg/matrix.h"
#include "linalg/vector_ops.h"
#include "store/seen_set.h"

namespace seesaw {
class ThreadPool;
}  // namespace seesaw

namespace seesaw::store {

/// Numeric representation a store scans in. Stores always retain the fp32
/// master table (GetVector serves fp32 either way — the refit/aligner math
/// needs full precision); kInt8 additionally builds a symmetric per-row
/// quantized copy (linalg/quantize.h) and scores scans through the int8
/// kernel family. Int8 scores are not bitwise comparable to fp32 scores —
/// the cross-family contract is recall@k (>= 0.99 recall@100 on clustered
/// data, gated in tests/quantized_kernel_test.cc and bench_scale).
enum class ScanPrecision {
  kFloat32,  ///< scan the fp32 master table (bitwise-reproducible reference)
  kInt8,     ///< scan a per-row-quantized int8 copy (~4x less bandwidth)
};

/// Thread-safe sink for typed scan failures. The VectorStore lookup
/// signatures return results, not Status — a deliberate choice for the
/// in-process backends, where a scan cannot fail. Remote-backed stores CAN
/// fail (dead peer, deadline, retries exhausted), and "a dead shard
/// surfaces as a typed Status, never a silent partial" needs a channel out
/// of the scan. Callers that talk to remote shards hang a collector on
/// ScanControl::errors; any shard that fails reports here, and the caller
/// MUST treat the merged results as invalid when !ok() (exactly the
/// cancelled-scan discard contract). May be reported to concurrently from
/// every shard worker; the first error is kept (later ones only bump the
/// count), since one dead shard already invalidates the merge.
class ScanErrorCollector {
 public:
  /// Records a failed shard scan. `status` must be non-OK.
  void Report(Status status) {
    MutexLock lock(mu_);
    if (first_.ok()) first_ = std::move(status);
    ++count_;
  }

  /// True when no scan error has been reported (merged results are valid).
  bool ok() const {
    MutexLock lock(mu_);
    return first_.ok();
  }

  /// The first reported error (OK when none).
  Status first() const {
    MutexLock lock(mu_);
    return first_;
  }

  /// Number of failed shard scans reported.
  size_t count() const {
    MutexLock lock(mu_);
    return count_;
  }

 private:
  mutable Mutex mu_;
  Status first_ SEESAW_GUARDED_BY(mu_);
  size_t count_ SEESAW_GUARDED_BY(mu_) = 0;
};

/// In-scan control for batched lookups: cooperative cancellation plus a
/// test-only checkpoint hook.
///
/// Backends poll ShouldStop() at natural scan checkpoints — per row block
/// for the exact scan, per probed inverted list for IVF, per child shard
/// for ShardedStore, per query for Annoy — so a cancelled speculative
/// lookup stops mid-TopKBatch instead of running the scan to completion.
/// A cancelled call returns early with whatever it has accumulated: the
/// result is safe to destroy but carries no completeness guarantee, so
/// callers that observe `cancel->cancelled()` must discard it (exactly what
/// the speculative-prefetch consume path does).
struct ScanControl {
  /// Cancellation flag polled at every checkpoint; null = not cancellable.
  const CancellationToken* cancel = nullptr;

  /// Test-only hook invoked at every checkpoint *before* the token is
  /// tested. Lets a test block a scan mid-flight deterministically (hook
  /// parks on a semaphore, the test cancels, the hook returns, the scan
  /// observes the cancel). May be invoked concurrently from every worker
  /// scanning a shard, so the hook must be thread-safe. Empty in
  /// production: one branch per checkpoint.
  std::function<void()> checkpoint;

  /// Typed-failure channel for stores whose scans can actually fail
  /// (remote shards). Null for in-process scans — they cannot fail. When
  /// set, a failing store reports its Status here AND returns empty
  /// results; the caller must check errors->ok() before trusting a merge.
  ScanErrorCollector* errors = nullptr;

  /// Checkpoint: runs the hook (if any) and reports whether the scan should
  /// stop here.
  bool ShouldStop() const {
    if (checkpoint) checkpoint();
    return cancel != nullptr && cancel->cancelled();
  }
};

/// One scored hit.
struct SearchResult {
  uint32_t id = 0;
  float score = 0.0f;
};

/// The canonical result order: higher score first, lower id breaking ties.
/// Every backend selects and sorts with this order, which makes the exact
/// top-k of any candidate set unique — the property the TopKBatch == TopK
/// parity guarantee rests on.
inline bool BetterResult(const SearchResult& a, const SearchResult& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.id < b.id;
}

/// Bounded accumulator of the k best results under BetterResult. A binary
/// heap whose root is the weakest kept hit; Push is O(log k) only when the
/// candidate actually displaces something.
class TopKHeap {
 public:
  explicit TopKHeap(size_t k) : k_(k) { heap_.reserve(k); }

  void Push(uint32_t id, float score) {
    if (k_ == 0) return;
    SearchResult candidate{id, score};
    if (heap_.size() < k_) {
      heap_.push_back(candidate);
      std::push_heap(heap_.begin(), heap_.end(), BetterResult);
      return;
    }
    if (BetterResult(candidate, heap_.front())) {
      std::pop_heap(heap_.begin(), heap_.end(), BetterResult);
      heap_.back() = candidate;
      std::push_heap(heap_.begin(), heap_.end(), BetterResult);
    }
  }

  /// Kept hits in unspecified order (e.g. for cross-shard merging).
  const std::vector<SearchResult>& items() const { return heap_; }

  /// Whether k hits are held (a candidate must now beat Worst() to enter).
  bool Full() const { return heap_.size() >= k_; }

  /// The weakest kept hit; only valid when not empty. Callers on the hot
  /// path cache this to reject candidates with one flat compare.
  const SearchResult& Worst() const { return heap_.front(); }

  /// Extracts the kept hits best-first; the heap is left empty.
  std::vector<SearchResult> TakeSorted() {
    std::sort(heap_.begin(), heap_.end(), BetterResult);
    return std::move(heap_);
  }

 private:
  size_t k_;
  std::vector<SearchResult> heap_;
};

/// Interface for max-inner-product stores.
///
/// Contract for implementers: every TopK/TopKBatch override must take (and
/// poll) the ScanControl — it is the only seam through which a cancelled
/// speculation can stop a scan mid-flight. scripts/check_invariants.py
/// enforces this shape on the overrides in src/store, so dropping the
/// parameter in a new backend is a lint failure, not a silent regression.
/// Stores are immutable after Create and safe for concurrent scans; any
/// internal scratch must be per-call.
class VectorStore {
 public:
  virtual ~VectorStore() = default;

  /// Number of vectors.
  virtual size_t size() const = 0;

  /// Vector dimensionality.
  virtual size_t dim() const = 0;

  /// Returns up to k results with the largest inner product against `query`,
  /// best first (see BetterResult), skipping ids marked in `seen`. Fewer
  /// than k results are returned only when the store (after exclusions) is
  /// smaller than k or the index exhausts its candidates.
  ///
  /// `control` threads cooperative cancellation into the scalar scan, at the
  /// same checkpoints as the batched path (per row block for the exact scan,
  /// per probed list for IVF, per shard for ShardedStore). Same contract as
  /// TopKBatch: a cancelled call returns early with unspecified partial
  /// results, which the caller must discard.
  virtual std::vector<SearchResult> TopK(linalg::VecSpan query, size_t k,
                                         const SeenSet& seen,
                                         const ScanControl& control) const = 0;

  /// Convenience overloads: no control / no exclusions.
  std::vector<SearchResult> TopK(linalg::VecSpan query, size_t k,
                                 const SeenSet& seen) const {
    return TopK(query, k, seen, ScanControl{});
  }
  std::vector<SearchResult> TopK(linalg::VecSpan query, size_t k) const {
    return TopK(query, k, EmptySeenSet(), ScanControl{});
  }

  /// Multi-query lookup: out[i] is exactly TopK(queries[i], k, seen). The
  /// base implementation is the serial per-query fallback; backends override
  /// it with batched kernels and, when `pool` is non-null, shard the work
  /// across it. All sessions of a service share one pool, so implementations
  /// must only use pool->ParallelFor (safe under concurrent callers).
  /// `control` threads cooperative cancellation into the scan itself: every
  /// backend polls control.ShouldStop() at its checkpoints and returns early
  /// (with unspecified partial results) once cancellation is observed.
  virtual std::vector<std::vector<SearchResult>> TopKBatch(
      std::span<const linalg::VecSpan> queries, size_t k, const SeenSet& seen,
      ThreadPool* pool, const ScanControl& control) const;

  /// Convenience overloads: no control / no pool / no exclusions.
  std::vector<std::vector<SearchResult>> TopKBatch(
      std::span<const linalg::VecSpan> queries, size_t k, const SeenSet& seen,
      ThreadPool* pool) const {
    return TopKBatch(queries, k, seen, pool, ScanControl{});
  }
  std::vector<std::vector<SearchResult>> TopKBatch(
      std::span<const linalg::VecSpan> queries, size_t k,
      const SeenSet& seen) const {
    return TopKBatch(queries, k, seen, nullptr, ScanControl{});
  }
  std::vector<std::vector<SearchResult>> TopKBatch(
      std::span<const linalg::VecSpan> queries, size_t k) const {
    return TopKBatch(queries, k, EmptySeenSet(), nullptr, ScanControl{});
  }

  /// Read access to vector `id`.
  virtual linalg::VecSpan GetVector(uint32_t id) const = 0;
};

/// Fraction of distinct `truth` ids present in `got` (recall@k for index
/// quality checks; both inputs are TopK outputs over the same query).
/// Duplicate ids in either list count once: an id repeated in `truth` is one
/// item to recall, and repeats in `got` cannot recall it twice.
double RecallAgainst(const std::vector<SearchResult>& got,
                     const std::vector<SearchResult>& truth);

}  // namespace seesaw::store

#endif  // SEESAW_STORE_VECTOR_STORE_H_
