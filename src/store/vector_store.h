// VectorStore: maximum-inner-product lookup over a table of unit vectors.
//
// This is the "indexed vector store" of the paper's §2.2 (Annoy in their
// implementation). Lookups may be approximate: SeeSaw tolerates results that
// are among the top scores rather than exactly the top (the embedding itself
// carries more error than the index).
//
// Exclusions are expressed as a SeenSet bitset (O(1) branch-predictable test
// in the innermost scan loop), and every backend serves both single queries
// (TopK) and query batches (TopKBatch). Batched lookups may shard the work
// across a ThreadPool and are guaranteed to return exactly what per-query
// TopK would: all backends select with the same total order (score
// descending, id ascending on ties), so results are unique and independent
// of sharding.
#ifndef SEESAW_STORE_VECTOR_STORE_H_
#define SEESAW_STORE_VECTOR_STORE_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "linalg/matrix.h"
#include "linalg/vector_ops.h"
#include "store/seen_set.h"

namespace seesaw {
class ThreadPool;
}  // namespace seesaw

namespace seesaw::store {

/// One scored hit.
struct SearchResult {
  uint32_t id = 0;
  float score = 0.0f;
};

/// The canonical result order: higher score first, lower id breaking ties.
/// Every backend selects and sorts with this order, which makes the exact
/// top-k of any candidate set unique — the property the TopKBatch == TopK
/// parity guarantee rests on.
inline bool BetterResult(const SearchResult& a, const SearchResult& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.id < b.id;
}

/// Bounded accumulator of the k best results under BetterResult. A binary
/// heap whose root is the weakest kept hit; Push is O(log k) only when the
/// candidate actually displaces something.
class TopKHeap {
 public:
  explicit TopKHeap(size_t k) : k_(k) { heap_.reserve(k); }

  void Push(uint32_t id, float score) {
    if (k_ == 0) return;
    SearchResult candidate{id, score};
    if (heap_.size() < k_) {
      heap_.push_back(candidate);
      std::push_heap(heap_.begin(), heap_.end(), BetterResult);
      return;
    }
    if (BetterResult(candidate, heap_.front())) {
      std::pop_heap(heap_.begin(), heap_.end(), BetterResult);
      heap_.back() = candidate;
      std::push_heap(heap_.begin(), heap_.end(), BetterResult);
    }
  }

  /// Kept hits in unspecified order (e.g. for cross-shard merging).
  const std::vector<SearchResult>& items() const { return heap_; }

  /// Whether k hits are held (a candidate must now beat Worst() to enter).
  bool Full() const { return heap_.size() >= k_; }

  /// The weakest kept hit; only valid when not empty. Callers on the hot
  /// path cache this to reject candidates with one flat compare.
  const SearchResult& Worst() const { return heap_.front(); }

  /// Extracts the kept hits best-first; the heap is left empty.
  std::vector<SearchResult> TakeSorted() {
    std::sort(heap_.begin(), heap_.end(), BetterResult);
    return std::move(heap_);
  }

 private:
  size_t k_;
  std::vector<SearchResult> heap_;
};

/// Interface for max-inner-product stores.
class VectorStore {
 public:
  virtual ~VectorStore() = default;

  /// Number of vectors.
  virtual size_t size() const = 0;

  /// Vector dimensionality.
  virtual size_t dim() const = 0;

  /// Returns up to k results with the largest inner product against `query`,
  /// best first (see BetterResult), skipping ids marked in `seen`. Fewer
  /// than k results are returned only when the store (after exclusions) is
  /// smaller than k or the index exhausts its candidates.
  virtual std::vector<SearchResult> TopK(linalg::VecSpan query, size_t k,
                                         const SeenSet& seen) const = 0;

  /// Convenience overload without exclusions.
  std::vector<SearchResult> TopK(linalg::VecSpan query, size_t k) const {
    return TopK(query, k, EmptySeenSet());
  }

  /// Multi-query lookup: out[i] is exactly TopK(queries[i], k, seen). The
  /// base implementation is the serial per-query fallback; backends override
  /// it with batched kernels and, when `pool` is non-null, shard the work
  /// across it. All sessions of a service share one pool, so implementations
  /// must only use pool->ParallelFor (safe under concurrent callers).
  virtual std::vector<std::vector<SearchResult>> TopKBatch(
      std::span<const linalg::VecSpan> queries, size_t k, const SeenSet& seen,
      ThreadPool* pool) const;

  /// Convenience overloads: no pool / no exclusions.
  std::vector<std::vector<SearchResult>> TopKBatch(
      std::span<const linalg::VecSpan> queries, size_t k,
      const SeenSet& seen) const {
    return TopKBatch(queries, k, seen, nullptr);
  }
  std::vector<std::vector<SearchResult>> TopKBatch(
      std::span<const linalg::VecSpan> queries, size_t k) const {
    return TopKBatch(queries, k, EmptySeenSet(), nullptr);
  }

  /// Read access to vector `id`.
  virtual linalg::VecSpan GetVector(uint32_t id) const = 0;
};

/// Fraction of `truth` ids present in `got` (recall@k for index quality
/// checks; both inputs are TopK outputs over the same query).
double RecallAgainst(const std::vector<SearchResult>& got,
                     const std::vector<SearchResult>& truth);

}  // namespace seesaw::store

#endif  // SEESAW_STORE_VECTOR_STORE_H_
