// ShardedStore: partitions the vector table itself across N child
// VectorStores and serves TopK/TopKBatch by scatter-gather over the shards.
//
// This is the seam ROADMAP's "lift ExactStore's internal scan shards into
// separate stores" item asks for: where ExactStore::TopKBatch splits one
// table's rows across pool workers, ShardedStore splits the *table* into N
// row-range partitions, each backed by its own child store. Future work pins
// children to NUMA nodes or remote machines without touching callers; today
// every child is an in-process ExactStore (or anything a ChildFactory
// builds).
//
// Correctness contract: results are bitwise identical to a single ExactStore
// over the whole table, for every shard count. Three properties make that
// hold:
//   1. Row-range partitioning copies rows verbatim, so a child's Dot /
//      ScoreBlock over local row i computes exactly the global kernel over
//      global row (begin + i) — same bits, same scores.
//   2. Each child returns its exact local top-k under the canonical
//      (score desc, id asc) order; the global top-k is a subset of the
//      union of local top-ks.
//   3. The merge re-sorts the union under the same total order. Scores tie
//      bitwise across shards exactly when they tie in a single store, and
//      global ids are unique, so the selection is the same unique set in
//      the same order.
//
// Exclusions: the session keeps ONE global SeenSet; each lookup slices the
// per-shard view out of it (SeenSet::Slice — a word-shift copy, O(rows/64),
// negligible next to the O(rows * dim) scan it guards).
//
// Cancellation: the ScanControl token is propagated to every child, and the
// store additionally checkpoints before dispatching each shard — a
// cancelled speculative lookup stops mid-scan inside whichever child block
// is running and skips the shards not yet started.
#ifndef SEESAW_STORE_SHARDED_STORE_H_
#define SEESAW_STORE_SHARDED_STORE_H_

#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "common/statusor.h"
#include "store/vector_store.h"

namespace seesaw::store {

/// Build knobs for ShardedStore.
struct ShardedOptions {
  /// Number of child stores the table is partitioned into. Clamped to the
  /// row count (a shard always owns at least one row).
  size_t num_shards = 1;

  /// Floor on rows per shard: the effective shard count is additionally
  /// clamped so every shard owns at least this many rows. Small tables fall
  /// back to fewer shards automatically — below a few thousand rows the
  /// per-shard fixed costs (heap setup, slice, merge) outweigh the scan
  /// split, and the sharded store would run *slower* than a single exact
  /// scan. 1 (the default) preserves the historical clamp-to-row-count
  /// behavior; benchmarks use 4096.
  size_t min_rows_per_shard = 1;

  /// Scan precision forwarded to the default ExactStore children. Callers
  /// supplying their own ChildFactory configure children themselves.
  ScanPrecision precision = ScanPrecision::kFloat32;

  /// NUMA placement: assign shard s to node s % numa::NodeCount(), bind its
  /// table pages there (partition buffer before the factory runs; for
  /// ExactStore children also the quantized copy after), and hint its scan
  /// tasks at workers pinned to that node when the pool has numa_affinity.
  /// Placement is an optimization, never semantics: results stay bitwise
  /// identical to the unplaced store (the hint only moves *where* a shard
  /// task runs), and on single-node or non-Linux hosts the whole feature
  /// degrades to a no-op — so this knob is always safe to enable.
  bool numa_placement = false;
};

/// Row-range-partitioned store over N child VectorStores.
class ShardedStore : public VectorStore {
 public:
  /// Builds one child store from its partition of the table (rows are
  /// copied verbatim, ids are partition-local).
  using ChildFactory =
      std::function<StatusOr<std::unique_ptr<VectorStore>>(linalg::MatrixF)>;

  /// Partitions `vectors` into options.num_shards contiguous row ranges of
  /// near-equal size (the first rows%shards ranges hold one extra row) and
  /// builds an ExactStore child per range.
  static StatusOr<ShardedStore> Create(linalg::MatrixF vectors,
                                       const ShardedOptions& options);

  /// Same partitioning, children built by `factory` (e.g. per-shard IVF).
  static StatusOr<ShardedStore> Create(linalg::MatrixF vectors,
                                       const ShardedOptions& options,
                                       const ChildFactory& factory);

  /// The row range [first, first+count) shard `s` of `num_shards` owns over
  /// an `n`-row table — the exact partition arithmetic Create uses (base =
  /// n/num_shards rows each, the first n%num_shards shards one extra).
  /// Exposed so out-of-process children (a shard server slicing its table
  /// rows, tools building per-shard tables) partition identically to an
  /// in-process build; the bitwise remote-vs-local parity contract starts
  /// here.
  static std::pair<size_t, size_t> PartitionRange(size_t n, size_t num_shards,
                                                  size_t s);

  /// Assembles a sharded store from already-built children (e.g.
  /// RemoteStores connected to shard servers). Children are taken in shard
  /// order: child c serves global rows [sum(sizes 0..c-1), +size(c)), so
  /// callers must list them in the same order PartitionRange numbers
  /// shards. All children must share a dimensionality and be non-empty.
  /// No NUMA placement (children own their memory).
  static StatusOr<ShardedStore> CreateFromChildren(
      std::vector<std::unique_ptr<VectorStore>> children);

  size_t size() const override { return begin_.back(); }
  size_t dim() const override { return dim_; }

  /// Scalar lookup: every shard is scanned (on the default pool when one is
  /// set, serially otherwise) and the per-shard top-ks are merged under the
  /// canonical order. Exactly equal to a single ExactStore's TopK.
  /// Cancellation is checkpointed per shard dispatch and propagated into
  /// each child's scalar scan, mirroring the batched path.
  std::vector<SearchResult> TopK(linalg::VecSpan query, size_t k,
                                 const SeenSet& seen,
                                 const ScanControl& control) const override;
  using VectorStore::TopK;

  /// Batched lookup: fans the shards out on `pool` (each child may shard
  /// its own scan on the same pool — nested ParallelFor is safe), slicing
  /// the global seen set per shard and merging per-shard results. `control`
  /// is propagated to every child and checkpointed per shard.
  std::vector<std::vector<SearchResult>> TopKBatch(
      std::span<const linalg::VecSpan> queries, size_t k, const SeenSet& seen,
      ThreadPool* pool, const ScanControl& control) const override;
  using VectorStore::TopKBatch;

  linalg::VecSpan GetVector(uint32_t id) const override;

  /// Optional worker pool for the scalar TopK fan-out (TopKBatch takes its
  /// pool per call). The pool must outlive the store. Null = serial shards.
  void set_thread_pool(ThreadPool* pool) { pool_ = pool; }

  size_t num_shards() const { return shards_.size(); }
  const VectorStore& shard(size_t s) const { return *shards_[s]; }

  /// First global row id owned by shard `s` (shard_begin(num_shards()) ==
  /// size()); shard s owns [shard_begin(s), shard_begin(s+1)).
  uint32_t shard_begin(size_t s) const { return begin_[s]; }

  /// The NUMA node shard `s` was assigned (and its scans are hinted at).
  /// Always 0 when built without numa_placement or on a single-node host.
  size_t shard_node(size_t s) const { return shard_nodes_[s]; }

  /// Whether placement engaged at Create (numa_placement requested AND the
  /// host is multi-node). False means the store is byte-for-byte the
  /// unplaced one.
  bool numa_placed() const { return numa_placed_; }

  /// Global id -> (shard index, shard-local id).
  std::pair<size_t, uint32_t> Locate(uint32_t global_id) const;

 private:
  ShardedStore(std::vector<std::unique_ptr<VectorStore>> shards,
               std::vector<uint32_t> begin, size_t dim,
               std::vector<size_t> shard_nodes, bool numa_placed)
      : shards_(std::move(shards)),
        begin_(std::move(begin)),
        dim_(dim),
        shard_nodes_(std::move(shard_nodes)),
        numa_placed_(numa_placed) {}

  /// Runs `scan_shard` over every shard: serially without a usable pool,
  /// via ParallelFor on an unplaced pool, and as per-shard node-hinted
  /// tasks when both this store and the pool are NUMA-aware. All three
  /// dispatches run the same shard bodies to completion before returning,
  /// so they are interchangeable for results.
  void DispatchShards(ThreadPool* pool,
                      const std::function<void(size_t)>& scan_shard) const;

  /// Concatenates per-shard hits (already remapped to global ids) and keeps
  /// the best k under the canonical order.
  static std::vector<SearchResult> MergeTopK(
      std::vector<SearchResult> merged, size_t k);

  std::vector<std::unique_ptr<VectorStore>> shards_;
  std::vector<uint32_t> begin_;  // size num_shards()+1, begin_[0] == 0
  size_t dim_ = 0;
  std::vector<size_t> shard_nodes_;  // size num_shards(), all 0 if unplaced
  bool numa_placed_ = false;
  ThreadPool* pool_ = nullptr;
};

}  // namespace seesaw::store

#endif  // SEESAW_STORE_SHARDED_STORE_H_
