#include "store/vector_store.h"

#include <unordered_set>

namespace seesaw::store {

std::vector<std::vector<SearchResult>> VectorStore::TopKBatch(
    std::span<const linalg::VecSpan> queries, size_t k, const SeenSet& seen,
    ThreadPool* /*pool*/) const {
  // Serial fallback: correctness reference for the parallel overrides.
  std::vector<std::vector<SearchResult>> out(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    out[i] = TopK(queries[i], k, seen);
  }
  return out;
}

double RecallAgainst(const std::vector<SearchResult>& got,
                     const std::vector<SearchResult>& truth) {
  if (truth.empty()) return 1.0;
  std::unordered_set<uint32_t> got_ids;
  got_ids.reserve(got.size() * 2);
  for (const SearchResult& g : got) got_ids.insert(g.id);
  size_t hits = 0;
  for (const SearchResult& t : truth) hits += got_ids.count(t.id);
  return static_cast<double>(hits) / static_cast<double>(truth.size());
}

}  // namespace seesaw::store
