#include "store/vector_store.h"

#include <unordered_set>

namespace seesaw::store {

std::vector<std::vector<SearchResult>> VectorStore::TopKBatch(
    std::span<const linalg::VecSpan> queries, size_t k, const SeenSet& seen,
    ThreadPool* /*pool*/, const ScanControl& control) const {
  // Serial fallback: correctness reference for the parallel overrides.
  // This layer checkpoints once per query and additionally forwards the
  // control into each scalar scan, which polls it at the backend's own
  // checkpoints.
  std::vector<std::vector<SearchResult>> out(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    if (control.ShouldStop()) break;
    out[i] = TopK(queries[i], k, seen, control);
  }
  return out;
}

double RecallAgainst(const std::vector<SearchResult>& got,
                     const std::vector<SearchResult>& truth) {
  if (truth.empty()) return 1.0;
  std::unordered_set<uint32_t> got_ids;
  got_ids.reserve(got.size() * 2);
  for (const SearchResult& g : got) got_ids.insert(g.id);
  // Dedup truth before counting: set membership is not consumed, so a truth
  // id repeated r times used to count r hits against a single candidate and
  // inflate recall.
  std::unordered_set<uint32_t> truth_ids;
  truth_ids.reserve(truth.size() * 2);
  for (const SearchResult& t : truth) truth_ids.insert(t.id);
  size_t hits = 0;
  for (uint32_t id : truth_ids) hits += got_ids.count(id);
  return static_cast<double>(hits) / static_cast<double>(truth_ids.size());
}

}  // namespace seesaw::store
