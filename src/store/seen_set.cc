#include "store/seen_set.h"

#include <algorithm>
#include <bit>

#include "common/check.h"

namespace seesaw::store {

void SeenSet::Resize(size_t capacity) {
  words_.resize((capacity + 63) / 64, 0);
  capacity_ = capacity;
  // Drop bits past the new capacity so count_ stays consistent.
  if (capacity % 64 != 0 && !words_.empty()) {
    words_.back() &= (uint64_t{1} << (capacity % 64)) - 1;
  }
  size_t c = 0;
  for (uint64_t w : words_) c += static_cast<size_t>(std::popcount(w));
  count_ = c;
}

void SeenSet::Set(uint32_t id) {
  SEESAW_CHECK_LT(id, capacity_);
  uint64_t& w = words_[id >> 6];
  uint64_t bit = uint64_t{1} << (id & 63);
  if ((w & bit) == 0) {
    w |= bit;
    ++count_;
  }
}

void SeenSet::Reset(uint32_t id) {
  SEESAW_CHECK_LT(id, capacity_);
  uint64_t& w = words_[id >> 6];
  uint64_t bit = uint64_t{1} << (id & 63);
  if ((w & bit) != 0) {
    w &= ~bit;
    --count_;
  }
}

SeenSet SeenSet::Slice(uint32_t begin, uint32_t end) const {
  SEESAW_CHECK_LE(begin, end);
  SeenSet out(end - begin);
  if (out.capacity_ == 0 || begin >= capacity_) return out;

  // Bits [begin, limit) exist in this set; everything past limit is unseen
  // and stays zero in the fresh slice.
  const size_t limit = std::min<size_t>(end, capacity_);
  const size_t nbits = limit - begin;
  const size_t first_word = begin >> 6;
  const size_t shift = begin & 63;
  const size_t out_words = (nbits + 63) / 64;
  for (size_t w = 0; w < out_words; ++w) {
    uint64_t bits = words_[first_word + w] >> shift;
    if (shift != 0 && first_word + w + 1 < words_.size()) {
      bits |= words_[first_word + w + 1] << (64 - shift);
    }
    out.words_[w] = bits;
  }
  // Mask stray bits past nbits: they belong to ids outside [begin, limit)
  // and would corrupt count()/operator== otherwise.
  if (size_t tail = nbits & 63; tail != 0) {
    out.words_[out_words - 1] &= (uint64_t{1} << tail) - 1;
  }
  size_t c = 0;
  for (uint64_t w : out.words_) c += static_cast<size_t>(std::popcount(w));
  out.count_ = c;
  return out;
}

void SeenSet::AppendUnseenRuns(
    uint32_t begin, uint32_t end, uint32_t max_run,
    std::vector<std::pair<uint32_t, uint32_t>>* runs) const {
  SEESAW_CHECK_GT(max_run, uint32_t{0});
  // First unseen id in [from, end), or end. Bits past capacity are stored
  // zero, so the inverted word reads them as unseen — same as Test().
  auto next_unseen = [&](uint32_t from) -> uint32_t {
    while (from < end) {
      if (from >= capacity_) return from;
      const uint64_t inv = ~words_[from >> 6] >> (from & 63);
      if (inv != 0) {
        const uint64_t hit =
            static_cast<uint64_t>(from) + std::countr_zero(inv);
        return hit < end ? static_cast<uint32_t>(hit) : end;
      }
      from = (from | 63) == UINT32_MAX ? end : (from | 63) + 1;
    }
    return end;
  };
  // First seen id in [from, limit), or limit.
  auto next_seen = [&](uint32_t from, uint32_t limit) -> uint32_t {
    while (from < limit) {
      if (from >= capacity_) return limit;
      const uint64_t w = words_[from >> 6] >> (from & 63);
      if (w != 0) {
        const uint64_t hit = static_cast<uint64_t>(from) + std::countr_zero(w);
        return hit < limit ? static_cast<uint32_t>(hit) : limit;
      }
      from = (from | 63) == UINT32_MAX ? limit : (from | 63) + 1;
    }
    return limit;
  };
  uint32_t pos = begin;
  while (pos < end) {
    const uint32_t start = next_unseen(pos);
    if (start >= end) return;
    const uint32_t cap =
        start + static_cast<uint32_t>(
                    std::min<uint64_t>(max_run, end - start));
    const uint32_t stop = next_seen(start + 1, cap);
    runs->emplace_back(start, stop);
    pos = stop;
  }
}

void SeenSet::Clear() {
  std::fill(words_.begin(), words_.end(), 0);
  count_ = 0;
}

SeenSet SeenSet::FromWords(size_t capacity, std::vector<uint64_t> words) {
  SEESAW_CHECK_EQ(words.size(), (capacity + 63) / 64);
  SeenSet out;
  out.words_ = std::move(words);
  out.capacity_ = capacity;
  // Clear bits past capacity (a decoded payload is untrusted) so Test(),
  // count() and operator== keep their invariants.
  if (capacity % 64 != 0 && !out.words_.empty()) {
    out.words_.back() &= (uint64_t{1} << (capacity % 64)) - 1;
  }
  size_t c = 0;
  for (uint64_t w : out.words_) c += static_cast<size_t>(std::popcount(w));
  out.count_ = c;
  return out;
}

const SeenSet& EmptySeenSet() {
  static const SeenSet empty;
  return empty;
}

}  // namespace seesaw::store
