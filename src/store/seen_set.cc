#include "store/seen_set.h"

#include <algorithm>
#include <bit>

#include "common/check.h"

namespace seesaw::store {

void SeenSet::Resize(size_t capacity) {
  words_.resize((capacity + 63) / 64, 0);
  capacity_ = capacity;
  // Drop bits past the new capacity so count_ stays consistent.
  if (capacity % 64 != 0 && !words_.empty()) {
    words_.back() &= (uint64_t{1} << (capacity % 64)) - 1;
  }
  size_t c = 0;
  for (uint64_t w : words_) c += static_cast<size_t>(std::popcount(w));
  count_ = c;
}

void SeenSet::Set(uint32_t id) {
  SEESAW_CHECK_LT(id, capacity_);
  uint64_t& w = words_[id >> 6];
  uint64_t bit = uint64_t{1} << (id & 63);
  if ((w & bit) == 0) {
    w |= bit;
    ++count_;
  }
}

void SeenSet::Reset(uint32_t id) {
  SEESAW_CHECK_LT(id, capacity_);
  uint64_t& w = words_[id >> 6];
  uint64_t bit = uint64_t{1} << (id & 63);
  if ((w & bit) != 0) {
    w &= ~bit;
    --count_;
  }
}

void SeenSet::Clear() {
  std::fill(words_.begin(), words_.end(), 0);
  count_ = 0;
}

const SeenSet& EmptySeenSet() {
  static const SeenSet empty;
  return empty;
}

}  // namespace seesaw::store
