// ExactStore: brute-force max-inner-product scan. The accuracy reference for
// AnnoyIndex and the default store at benchmark scale.
#ifndef SEESAW_STORE_EXACT_STORE_H_
#define SEESAW_STORE_EXACT_STORE_H_

#include <vector>

#include "common/statusor.h"
#include "linalg/quantize.h"
#include "store/vector_store.h"

namespace seesaw::store {

/// Build/scan knobs for ExactStore.
struct ExactStoreOptions {
  /// Scan representation. kInt8 builds a quantized copy of the table at
  /// Create (the fp32 master is retained — GetVector()/vectors() always
  /// serve full precision) and scores TopK/TopKBatch through the int8
  /// kernel family. See ScanPrecision for the cross-family contract.
  ScanPrecision precision = ScanPrecision::kFloat32;

  /// Batched scans switch from per-row seen tests to the run-length
  /// compacted unseen enumeration (SeenSet::AppendUnseenRuns) once
  /// seen.count() >= compact_seen_fraction * rows. Both enumerations score
  /// the same blocks in the same order, so results are bitwise identical —
  /// this is purely a scan-policy knob (the compacted walk skips long seen
  /// stretches word-at-a-time instead of bit-by-bit). Values > 1.0 disable
  /// compaction; 0.0 always compacts.
  double compact_seen_fraction = 0.5;
};

/// Exact top-k scan over a dense row-major table.
class ExactStore : public VectorStore {
 public:
  /// Takes ownership of `vectors` (rows are the stored vectors). Rows need
  /// not be unit-norm, but SeeSaw always stores unit vectors.
  static StatusOr<ExactStore> Create(linalg::MatrixF vectors);

  /// Same, with explicit scan options (kInt8 quantizes the table here).
  static StatusOr<ExactStore> Create(linalg::MatrixF vectors,
                                     const ExactStoreOptions& options);

  size_t size() const override { return vectors_.rows(); }
  size_t dim() const override { return vectors_.cols(); }

  /// Scalar scan; cancellation is checkpointed per row block, same
  /// granularity as the batched path.
  std::vector<SearchResult> TopK(linalg::VecSpan query, size_t k,
                                 const SeenSet& seen,
                                 const ScanControl& control) const override;
  using VectorStore::TopK;

  /// Batched exact scan: each cache-resident row block is scored against
  /// every query at once (linalg::MatrixF::ScoreBlock), and with a pool the
  /// table is sharded across workers with per-shard heaps merged at the end.
  /// Cancellation is checkpointed per row block, so a cancelled call stops
  /// the scan mid-flight rather than finishing the table.
  std::vector<std::vector<SearchResult>> TopKBatch(
      std::span<const linalg::VecSpan> queries, size_t k, const SeenSet& seen,
      ThreadPool* pool, const ScanControl& control) const override;
  using VectorStore::TopKBatch;

  linalg::VecSpan GetVector(uint32_t id) const override {
    return vectors_.Row(id);
  }

  /// The underlying fp32 table (used to build graphs over the same
  /// vectors); always retained regardless of scan precision.
  const linalg::MatrixF& vectors() const { return vectors_; }

  const ExactStoreOptions& options() const { return options_; }

  /// The quantized scan copy; empty() unless precision == kInt8.
  const linalg::QuantizedTable& quantized() const { return quantized_; }

  /// Binds every table the scan streams (the fp32 master and, for kInt8,
  /// the quantized copy + scales) to NUMA node `node`. Placement only:
  /// scan results are bitwise identical wherever the pages live, and on
  /// hosts without multiple nodes this is a successful no-op (see
  /// common/numa.h). Called by ShardedStore when numa_placement is on;
  /// safe any time no scan is in flight.
  void BindStorageToNode(size_t node);

 private:
  ExactStore(linalg::MatrixF vectors, const ExactStoreOptions& options)
      : vectors_(std::move(vectors)), options_(options) {}

  linalg::MatrixF vectors_;
  ExactStoreOptions options_;
  linalg::QuantizedTable quantized_;  // only populated for kInt8
};

}  // namespace seesaw::store

#endif  // SEESAW_STORE_EXACT_STORE_H_
