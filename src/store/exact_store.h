// ExactStore: brute-force max-inner-product scan. The accuracy reference for
// AnnoyIndex and the default store at benchmark scale.
#ifndef SEESAW_STORE_EXACT_STORE_H_
#define SEESAW_STORE_EXACT_STORE_H_

#include <vector>

#include "common/statusor.h"
#include "store/vector_store.h"

namespace seesaw::store {

/// Exact top-k scan over a dense row-major table.
class ExactStore : public VectorStore {
 public:
  /// Takes ownership of `vectors` (rows are the stored vectors). Rows need
  /// not be unit-norm, but SeeSaw always stores unit vectors.
  static StatusOr<ExactStore> Create(linalg::MatrixF vectors);

  size_t size() const override { return vectors_.rows(); }
  size_t dim() const override { return vectors_.cols(); }

  /// Scalar scan; cancellation is checkpointed per row block, same
  /// granularity as the batched path.
  std::vector<SearchResult> TopK(linalg::VecSpan query, size_t k,
                                 const SeenSet& seen,
                                 const ScanControl& control) const override;
  using VectorStore::TopK;

  /// Batched exact scan: each cache-resident row block is scored against
  /// every query at once (linalg::MatrixF::ScoreBlock), and with a pool the
  /// table is sharded across workers with per-shard heaps merged at the end.
  /// Cancellation is checkpointed per row block, so a cancelled call stops
  /// the scan mid-flight rather than finishing the table.
  std::vector<std::vector<SearchResult>> TopKBatch(
      std::span<const linalg::VecSpan> queries, size_t k, const SeenSet& seen,
      ThreadPool* pool, const ScanControl& control) const override;
  using VectorStore::TopKBatch;

  linalg::VecSpan GetVector(uint32_t id) const override {
    return vectors_.Row(id);
  }

  /// The underlying table (used to build graphs over the same vectors).
  const linalg::MatrixF& vectors() const { return vectors_; }

 private:
  explicit ExactStore(linalg::MatrixF vectors) : vectors_(std::move(vectors)) {}

  linalg::MatrixF vectors_;
};

}  // namespace seesaw::store

#endif  // SEESAW_STORE_EXACT_STORE_H_
