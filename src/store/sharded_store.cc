#include "store/sharded_store.h"

#include <algorithm>

#include "common/check.h"
#include "common/numa.h"
#include "common/thread_pool.h"
#include "store/exact_store.h"

namespace seesaw::store {

StatusOr<ShardedStore> ShardedStore::Create(linalg::MatrixF vectors,
                                            const ShardedOptions& options) {
  ExactStoreOptions child_options;
  child_options.precision = options.precision;
  return Create(std::move(vectors), options,
                [child_options](linalg::MatrixF part)
                    -> StatusOr<std::unique_ptr<VectorStore>> {
                  SEESAW_ASSIGN_OR_RETURN(
                      ExactStore child,
                      ExactStore::Create(std::move(part), child_options));
                  return std::unique_ptr<VectorStore>(
                      std::make_unique<ExactStore>(std::move(child)));
                });
}

StatusOr<ShardedStore> ShardedStore::Create(linalg::MatrixF vectors,
                                            const ShardedOptions& options,
                                            const ChildFactory& factory) {
  if (vectors.rows() == 0 || vectors.cols() == 0) {
    return Status::InvalidArgument("ShardedStore: empty vector table");
  }
  if (options.num_shards == 0) {
    return Status::InvalidArgument("ShardedStore: num_shards must be >= 1");
  }
  const size_t n = vectors.rows();
  const size_t d = vectors.cols();
  // Near-equal contiguous ranges; clamping keeps every shard non-empty and
  // at least min_rows_per_shard rows wide (small tables automatically fall
  // back to fewer shards — see ShardedOptions).
  const size_t floor_rows = std::max<size_t>(1, options.min_rows_per_shard);
  const size_t max_shards = std::max<size_t>(1, n / floor_rows);
  const size_t num_shards = std::min({options.num_shards, n, max_shards});
  const size_t base = n / num_shards;
  const size_t extra = n % num_shards;

  // Placement engages only where it can matter; everywhere else the store
  // is constructed exactly as before (numa_placed() false, nodes all 0) —
  // that degenerate path IS the documented non-NUMA fallback, not a
  // separate code path, which is what keeps it bitwise-trivially correct.
  const bool place = options.numa_placement && numa::Available();

  std::vector<std::unique_ptr<VectorStore>> shards;
  std::vector<uint32_t> begin(num_shards + 1, 0);
  std::vector<size_t> shard_nodes(num_shards, 0);
  size_t row = 0;
  for (size_t s = 0; s < num_shards; ++s) {
    const size_t rows = base + (s < extra ? 1 : 0);
    linalg::MatrixF part(rows, d);
    for (size_t r = 0; r < rows; ++r) {
      auto src = vectors.Row(row + r);
      std::copy(src.begin(), src.end(), part.MutableRow(r).begin());
    }
    const size_t node = place ? numa::NodeForShard(s) : 0;
    shard_nodes[s] = node;
    if (place) {
      // Bind the partition buffer *before* the factory runs: the rows were
      // just written by this (arbitrary-node) thread, so first-touch put
      // them wherever Create runs — MPOL_MF_MOVE migrates them to the
      // shard's node. Children that take ownership by moving the matrix
      // keep this binding for free (vector moves preserve the heap block).
      numa::BindMemoryToNode(part.mutable_data().data(),
                             part.mutable_data().size() * sizeof(float),
                             node);
    }
    SEESAW_ASSIGN_OR_RETURN(std::unique_ptr<VectorStore> child,
                            factory(std::move(part)));
    if (child == nullptr || child->size() != rows || child->dim() != d) {
      return Status::InvalidArgument(
          "ShardedStore: child factory returned a store of the wrong shape");
    }
    if (place) {
      // Buffers the child built itself (the int8 quantized copy) came from
      // the factory's thread, not the bound partition — rebind them. Only
      // ExactStore children are known here; custom factories that allocate
      // their own side tables handle placement themselves.
      if (auto* exact = dynamic_cast<ExactStore*>(child.get())) {
        exact->BindStorageToNode(node);
      }
    }
    shards.push_back(std::move(child));
    row += rows;
    begin[s + 1] = static_cast<uint32_t>(row);
  }
  return ShardedStore(std::move(shards), std::move(begin), d,
                      std::move(shard_nodes), place);
}

std::pair<size_t, size_t> ShardedStore::PartitionRange(size_t n,
                                                       size_t num_shards,
                                                       size_t s) {
  SEESAW_CHECK_GT(num_shards, size_t{0});
  SEESAW_CHECK_LT(s, num_shards);
  const size_t base = n / num_shards;
  const size_t extra = n % num_shards;
  const size_t first = s * base + std::min(s, extra);
  const size_t count = base + (s < extra ? 1 : 0);
  return {first, count};
}

StatusOr<ShardedStore> ShardedStore::CreateFromChildren(
    std::vector<std::unique_ptr<VectorStore>> children) {
  if (children.empty()) {
    return Status::InvalidArgument("ShardedStore: no children");
  }
  const size_t d = children[0]->dim();
  std::vector<uint32_t> begin(children.size() + 1, 0);
  for (size_t s = 0; s < children.size(); ++s) {
    if (children[s] == nullptr || children[s]->size() == 0) {
      return Status::InvalidArgument("ShardedStore: empty child store");
    }
    if (children[s]->dim() != d) {
      return Status::InvalidArgument(
          "ShardedStore: children disagree on dimensionality");
    }
    begin[s + 1] =
        begin[s] + static_cast<uint32_t>(children[s]->size());
  }
  std::vector<size_t> shard_nodes(children.size(), 0);
  return ShardedStore(std::move(children), std::move(begin), d,
                      std::move(shard_nodes), /*numa_placed=*/false);
}

void ShardedStore::DispatchShards(
    ThreadPool* pool, const std::function<void(size_t)>& scan_shard) const {
  const size_t num_shards = shards_.size();
  if (pool == nullptr || pool->num_threads() <= 1 || num_shards <= 1) {
    for (size_t s = 0; s < num_shards; ++s) scan_shard(s);
    return;
  }
  if (numa_placed_ && pool->numa_affinity()) {
    // One hinted task per shard, so shard s runs (preferentially) on a
    // worker pinned to the node holding shard s's pages. Waiting handle by
    // handle keeps the ParallelFor contract: this thread helps drain the
    // queue while it waits, so nested fan-out cannot deadlock, and all
    // shards are complete when we return.
    std::vector<TaskHandle> handles;
    handles.reserve(num_shards);
    for (size_t s = 0; s < num_shards; ++s) {
      handles.push_back(
          pool->SubmitWithResult([&scan_shard, s] { scan_shard(s); },
                                 shard_nodes_[s]));
    }
    for (TaskHandle& handle : handles) handle.Wait();
    return;
  }
  pool->ParallelFor(num_shards, [&](size_t b, size_t e) {
    for (size_t s = b; s < e; ++s) scan_shard(s);
  });
}

std::pair<size_t, uint32_t> ShardedStore::Locate(uint32_t global_id) const {
  SEESAW_CHECK_LT(global_id, begin_.back());
  // First partition start past the id, minus one, owns it.
  size_t s = static_cast<size_t>(
      std::upper_bound(begin_.begin(), begin_.end(), global_id) -
      begin_.begin() - 1);
  return {s, global_id - begin_[s]};
}

linalg::VecSpan ShardedStore::GetVector(uint32_t id) const {
  auto [s, local] = Locate(id);
  return shards_[s]->GetVector(local);
}

std::vector<SearchResult> ShardedStore::MergeTopK(
    std::vector<SearchResult> merged, size_t k) {
  // The global top-k under BetterResult is unique (ids are unique), so
  // re-selecting from the union of exact per-shard top-ks reproduces the
  // single-store result exactly.
  const size_t keep = std::min(k, merged.size());
  std::partial_sort(merged.begin(), merged.begin() + keep, merged.end(),
                    BetterResult);
  merged.resize(keep);
  return merged;
}

std::vector<SearchResult> ShardedStore::TopK(linalg::VecSpan query, size_t k,
                                             const SeenSet& seen,
                                             const ScanControl& control) const {
  SEESAW_CHECK_EQ(query.size(), dim_);
  const size_t num_shards = shards_.size();
  // Merge state is per-call and lock-free by partitioning: worker s writes
  // only per_shard[s] (disjoint slots of a pre-sized vector), and the merge
  // below reads them only after ParallelFor's latch — whose completion is
  // mutex-published — so there is no concurrent access to annotate. The
  // store object itself stays const throughout (scans share it freely).
  std::vector<std::vector<SearchResult>> per_shard(num_shards);
  auto scan_shard = [&](size_t s) {
    // Checkpoint before the dispatch (shards not yet started are skipped
    // outright once the token trips); the child checkpoints inside its own
    // scalar scan.
    if (control.ShouldStop()) return;
    SeenSet local = seen.Slice(begin_[s], begin_[s + 1]);
    per_shard[s] = shards_[s]->TopK(query, k, local, control);
    for (SearchResult& hit : per_shard[s]) hit.id += begin_[s];
  };
  DispatchShards(pool_, scan_shard);
  std::vector<SearchResult> merged;
  for (const auto& hits : per_shard) {
    merged.insert(merged.end(), hits.begin(), hits.end());
  }
  return MergeTopK(std::move(merged), k);
}

std::vector<std::vector<SearchResult>> ShardedStore::TopKBatch(
    std::span<const linalg::VecSpan> queries, size_t k, const SeenSet& seen,
    ThreadPool* pool, const ScanControl& control) const {
  const size_t num_queries = queries.size();
  if (num_queries == 0) return {};
  for (linalg::VecSpan q : queries) SEESAW_CHECK_EQ(q.size(), dim_);
  if (k == 0) return std::vector<std::vector<SearchResult>>(num_queries);

  const size_t num_shards = shards_.size();
  // per_shard[s][q]: local hits remapped to global ids. A shard skipped by
  // cancellation leaves its slot empty (size() != num_queries). Same
  // lock-free-by-partitioning merge state as TopK above: worker s owns slot
  // s exclusively, readers run strictly after the ParallelFor latch.
  std::vector<std::vector<std::vector<SearchResult>>> per_shard(num_shards);
  auto scan_shard = [&](size_t s) {
    // Checkpoint before the dispatch so shards not yet started are skipped
    // outright once the token trips; the child checkpoints per block/list.
    if (control.ShouldStop()) return;
    SeenSet local = seen.Slice(begin_[s], begin_[s + 1]);
    per_shard[s] = shards_[s]->TopKBatch(queries, k, local, pool, control);
    const uint32_t offset = begin_[s];
    for (auto& hits : per_shard[s]) {
      for (SearchResult& hit : hits) hit.id += offset;
    }
  };
  DispatchShards(pool, scan_shard);

  std::vector<std::vector<SearchResult>> out(num_queries);
  for (size_t q = 0; q < num_queries; ++q) {
    std::vector<SearchResult> merged;
    for (size_t s = 0; s < num_shards; ++s) {
      if (per_shard[s].size() != num_queries) continue;  // cancelled shard
      const auto& hits = per_shard[s][q];
      merged.insert(merged.end(), hits.begin(), hits.end());
    }
    out[q] = MergeTopK(std::move(merged), k);
  }
  return out;
}

}  // namespace seesaw::store
