#include "store/ivf_index.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"
#include "common/thread_pool.h"

namespace seesaw::store {

StatusOr<IvfFlatIndex> IvfFlatIndex::Build(const IvfOptions& options,
                                           linalg::MatrixF vectors) {
  if (vectors.rows() == 0 || vectors.cols() == 0) {
    return Status::InvalidArgument("IvfFlatIndex: empty vector table");
  }
  IvfFlatIndex index(options, std::move(vectors));
  const size_t n = index.vectors_.rows();

  size_t num_lists = options.num_lists != 0
                         ? options.num_lists
                         : std::max<size_t>(
                               1, static_cast<size_t>(std::sqrt(
                                      static_cast<double>(n))));
  num_lists = std::min(num_lists, n);

  linalg::KMeansOptions km;
  km.num_clusters = num_lists;
  km.max_iters = options.train_iters;
  km.seed = options.seed;
  SEESAW_ASSIGN_OR_RETURN(linalg::KMeansResult clustering,
                          linalg::KMeans(index.vectors_, km));
  index.centroids_ = std::move(clustering.centroids);
  index.lists_.assign(index.centroids_.rows(), {});
  for (size_t i = 0; i < n; ++i) {
    index.lists_[clustering.assignment[i]].push_back(
        static_cast<uint32_t>(i));
  }
  return index;
}

size_t IvfFlatIndex::ProbeCount() const {
  return std::min(std::max<size_t>(options_.nprobe, 1), lists_.size());
}

std::vector<uint32_t> IvfFlatIndex::RankCells(
    linalg::VecSpan centroid_scores) const {
  SEESAW_CHECK_EQ(centroid_scores.size(), lists_.size());
  std::vector<uint32_t> cells(lists_.size());
  std::iota(cells.begin(), cells.end(), 0u);
  size_t probe = ProbeCount();
  std::partial_sort(cells.begin(), cells.begin() + probe, cells.end(),
                    [centroid_scores](uint32_t a, uint32_t b) {
                      if (centroid_scores[a] != centroid_scores[b]) {
                        return centroid_scores[a] > centroid_scores[b];
                      }
                      return a < b;
                    });
  cells.resize(probe);
  return cells;
}

std::vector<SearchResult> IvfFlatIndex::ScanLists(
    linalg::VecSpan query, const std::vector<uint32_t>& cells, size_t k,
    const SeenSet& seen, const ScanControl& control) const {
  TopKHeap heap(k);
  for (uint32_t cell : cells) {
    if (control.ShouldStop()) break;
    for (uint32_t id : lists_[cell]) {
      if (seen.Test(id)) continue;
      heap.Push(id, linalg::Dot(vectors_.Row(id), query));
    }
  }
  return heap.TakeSorted();
}

std::vector<SearchResult> IvfFlatIndex::TopK(linalg::VecSpan query, size_t k,
                                             const SeenSet& seen,
                                             const ScanControl& control) const {
  SEESAW_CHECK_EQ(query.size(), vectors_.cols());
  // Rank cells by centroid inner product (vectors are unit norm, so inner
  // product ordering ~ distance ordering).
  linalg::VectorF centroid_scores = centroids_.MatVec(query);
  return ScanLists(query, RankCells(centroid_scores), k, seen, control);
}

std::vector<std::vector<SearchResult>> IvfFlatIndex::TopKBatch(
    std::span<const linalg::VecSpan> queries, size_t k, const SeenSet& seen,
    ThreadPool* pool, const ScanControl& control) const {
  const size_t num_queries = queries.size();
  if (num_queries == 0) return {};
  for (linalg::VecSpan q : queries) SEESAW_CHECK_EQ(q.size(), vectors_.cols());

  // One blocked pass scores every centroid against every query
  // (centroid_scores is num_lists x num_queries, row-major).
  const size_t num_cells = centroids_.rows();
  std::vector<float> centroid_scores(num_cells * num_queries);
  centroids_.ScoreBlock(
      0, num_cells, queries,
      linalg::MutVecSpan(centroid_scores.data(), centroid_scores.size()));

  // Transpose once to query-major so each query's cell ranking reads one
  // contiguous row. The previous per-query column gather re-walked the
  // num_cells x num_queries block with a num_queries stride for every query
  // (O(num_cells * num_queries) cache-hostile loads per query).
  std::vector<float> scores_by_query(num_queries * num_cells);
  for (size_t c = 0; c < num_cells; ++c) {
    const float* row = &centroid_scores[c * num_queries];
    for (size_t q = 0; q < num_queries; ++q) {
      scores_by_query[q * num_cells + c] = row[q];
    }
  }

  std::vector<std::vector<SearchResult>> out(num_queries);
  auto run_query = [&](size_t q) {
    linalg::VecSpan scores(&scores_by_query[q * num_cells], num_cells);
    out[q] = ScanLists(queries[q], RankCells(scores), k, seen, control);
  };

  if (pool != nullptr && pool->num_threads() > 1 && num_queries > 1) {
    pool->ParallelFor(num_queries, [&](size_t begin, size_t end) {
      for (size_t q = begin; q < end; ++q) run_query(q);
    });
  } else {
    for (size_t q = 0; q < num_queries; ++q) run_query(q);
  }
  return out;
}

}  // namespace seesaw::store
