#include "store/ivf_index.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/check.h"

namespace seesaw::store {

StatusOr<IvfFlatIndex> IvfFlatIndex::Build(const IvfOptions& options,
                                           linalg::MatrixF vectors) {
  if (vectors.rows() == 0 || vectors.cols() == 0) {
    return Status::InvalidArgument("IvfFlatIndex: empty vector table");
  }
  IvfFlatIndex index(options, std::move(vectors));
  const size_t n = index.vectors_.rows();

  size_t num_lists = options.num_lists != 0
                         ? options.num_lists
                         : std::max<size_t>(
                               1, static_cast<size_t>(std::sqrt(
                                      static_cast<double>(n))));
  num_lists = std::min(num_lists, n);

  linalg::KMeansOptions km;
  km.num_clusters = num_lists;
  km.max_iters = options.train_iters;
  km.seed = options.seed;
  SEESAW_ASSIGN_OR_RETURN(linalg::KMeansResult clustering,
                          linalg::KMeans(index.vectors_, km));
  index.centroids_ = std::move(clustering.centroids);
  index.lists_.assign(index.centroids_.rows(), {});
  for (size_t i = 0; i < n; ++i) {
    index.lists_[clustering.assignment[i]].push_back(
        static_cast<uint32_t>(i));
  }
  return index;
}

std::vector<SearchResult> IvfFlatIndex::TopK(linalg::VecSpan query, size_t k,
                                             const ExcludeFn& exclude) const {
  SEESAW_CHECK_EQ(query.size(), vectors_.cols());
  // Rank cells by centroid inner product (vectors are unit norm, so inner
  // product ordering ~ distance ordering).
  std::vector<std::pair<float, uint32_t>> cells(lists_.size());
  for (size_t c = 0; c < lists_.size(); ++c) {
    cells[c] = {linalg::Dot(centroids_.Row(c), query),
                static_cast<uint32_t>(c)};
  }
  size_t probe = std::min(std::max<size_t>(options_.nprobe, 1), cells.size());
  std::partial_sort(cells.begin(), cells.begin() + probe, cells.end(),
                    std::greater<>());

  // Exhaustive scan within the probed lists, min-heap of the best k.
  auto cmp = [](const SearchResult& a, const SearchResult& b) {
    return a.score > b.score;
  };
  std::priority_queue<SearchResult, std::vector<SearchResult>, decltype(cmp)>
      heap(cmp);
  for (size_t p = 0; p < probe; ++p) {
    for (uint32_t id : lists_[cells[p].second]) {
      if (exclude && exclude(id)) continue;
      float s = linalg::Dot(vectors_.Row(id), query);
      if (heap.size() < k) {
        heap.push({id, s});
      } else if (s > heap.top().score) {
        heap.pop();
        heap.push({id, s});
      }
    }
  }
  std::vector<SearchResult> out(heap.size());
  for (size_t i = heap.size(); i-- > 0;) {
    out[i] = heap.top();
    heap.pop();
  }
  return out;
}

}  // namespace seesaw::store
