// SeenSet: fixed-capacity bitset over vector ids, the concrete exclusion
// type threaded through every store lookup.
//
// The paper's interactive loop (§2.2) never re-shows a patch the user has
// already inspected, so every TopK scan must skip the seen set. A bitset
// keeps that test to one AND inside the innermost loop — branch-predictable
// and allocation-free — where the previous std::function callback cost an
// indirect call per stored vector.
#ifndef SEESAW_STORE_SEEN_SET_H_
#define SEESAW_STORE_SEEN_SET_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace seesaw::store {

/// Bitset over ids [0, capacity). Default-constructed sets are empty with
/// capacity 0; Test() on an id at or past capacity reports "not seen", so an
/// empty SeenSet is the natural "no exclusions" value.
class SeenSet {
 public:
  SeenSet() = default;
  explicit SeenSet(size_t capacity) { Resize(capacity); }

  /// Grows (or shrinks) to `capacity` ids; newly covered ids start unseen.
  void Resize(size_t capacity);

  /// Marks `id` as seen. `id` must be < capacity().
  void Set(uint32_t id);

  /// Unmarks `id`. `id` must be < capacity().
  void Reset(uint32_t id);

  /// Whether `id` is seen; ids at or past capacity are never seen.
  bool Test(uint32_t id) const {
    return id < capacity_ &&
           (words_[id >> 6] >> (id & 63) & uint64_t{1}) != 0;
  }

  /// Unmarks every id (capacity is unchanged).
  void Clear();

  /// The bits of [begin, end) as a new SeenSet over local ids [0, end-begin):
  /// out.Test(i) == this->Test(begin + i). Ids at or past this set's
  /// capacity read as unseen, so slicing past the end is well defined (an
  /// empty global set slices to an empty local set of any size). This is how
  /// ShardedStore derives each child's exclusion view from the session's
  /// global seen set; word-shift copy, O((end-begin)/64).
  SeenSet Slice(uint32_t begin, uint32_t end) const;

  /// Appends the maximal runs of consecutive unseen ids in [begin, end) to
  /// `runs` as half-open (first, last+1) intervals, each chopped into pieces
  /// of at most `max_run` ids (a maximal run longer than max_run becomes
  /// back-to-back intervals). Ids at or past capacity are unseen, matching
  /// Test(). Word-at-a-time scan, O((end-begin)/64 + runs).
  ///
  /// This is the run-length-compacted form of the unseen set: when most ids
  /// are seen, the batched exact scan iterates these few intervals instead
  /// of testing every row. The interval boundaries are *exactly* the score
  /// blocks the per-row skip-test loop produces (same maximal runs, same
  /// max_run chopping), so a scan driven by either enumeration scores the
  /// same blocks in the same order — bitwise-identical results.
  void AppendUnseenRuns(uint32_t begin, uint32_t end, uint32_t max_run,
                        std::vector<std::pair<uint32_t, uint32_t>>* runs) const;

  /// The backing bit words, least-significant bit of words()[0] is id 0;
  /// exactly ceil(capacity/64) entries with every bit past capacity zero.
  /// This is the serialization surface the wire protocol ships shard
  /// exclusions through (net/wire.h) — word order and the zero-padding
  /// invariant are wire contract.
  const std::vector<uint64_t>& words() const { return words_; }

  /// Rebuilds a set from its words() serialization. `words` must hold
  /// exactly ceil(capacity/64) entries; bits past capacity are cleared (a
  /// hostile payload cannot smuggle out-of-range ids) and count() is
  /// recomputed. The inverse of words() for well-formed input.
  static SeenSet FromWords(size_t capacity, std::vector<uint64_t> words);

  size_t capacity() const { return capacity_; }

  /// Number of seen ids (maintained incrementally; O(1)).
  size_t count() const { return count_; }

  bool empty() const { return count_ == 0; }

  /// Equal when capacity matches and exactly the same ids are marked.
  /// O(capacity/64); bits past capacity are always zero, so word compare is
  /// exact. Used to validate speculative-prefetch snapshots.
  friend bool operator==(const SeenSet& a, const SeenSet& b) {
    return a.capacity_ == b.capacity_ && a.words_ == b.words_;
  }

 private:
  std::vector<uint64_t> words_;
  size_t capacity_ = 0;
  size_t count_ = 0;
};

/// Shared "no exclusions" instance for convenience overloads.
const SeenSet& EmptySeenSet();

}  // namespace seesaw::store

#endif  // SEESAW_STORE_SEEN_SET_H_
