#include "store/exact_store.h"

#include <algorithm>
#include <queue>

namespace seesaw::store {

namespace {

/// Min-heap comparator on score so the heap root is the weakest kept hit.
struct ScoreGreater {
  bool operator()(const SearchResult& a, const SearchResult& b) const {
    return a.score > b.score;
  }
};

}  // namespace

double RecallAgainst(const std::vector<SearchResult>& got,
                     const std::vector<SearchResult>& truth) {
  if (truth.empty()) return 1.0;
  size_t hits = 0;
  for (const SearchResult& t : truth) {
    for (const SearchResult& g : got) {
      if (g.id == t.id) {
        ++hits;
        break;
      }
    }
  }
  return static_cast<double>(hits) / static_cast<double>(truth.size());
}

StatusOr<ExactStore> ExactStore::Create(linalg::MatrixF vectors) {
  if (vectors.rows() == 0 || vectors.cols() == 0) {
    return Status::InvalidArgument("ExactStore: empty vector table");
  }
  return ExactStore(std::move(vectors));
}

std::vector<SearchResult> ExactStore::TopK(linalg::VecSpan query, size_t k,
                                           const ExcludeFn& exclude) const {
  std::priority_queue<SearchResult, std::vector<SearchResult>, ScoreGreater>
      heap;
  const size_t n = vectors_.rows();
  for (size_t i = 0; i < n; ++i) {
    uint32_t id = static_cast<uint32_t>(i);
    if (exclude && exclude(id)) continue;
    float s = linalg::Dot(vectors_.Row(i), query);
    if (heap.size() < k) {
      heap.push({id, s});
    } else if (s > heap.top().score) {
      heap.pop();
      heap.push({id, s});
    }
  }
  std::vector<SearchResult> out(heap.size());
  for (size_t i = heap.size(); i-- > 0;) {
    out[i] = heap.top();
    heap.pop();
  }
  return out;
}

}  // namespace seesaw::store
