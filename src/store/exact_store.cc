#include "store/exact_store.h"

#include <algorithm>
#include <limits>

#include "common/check.h"
#include "common/thread_pool.h"

namespace seesaw::store {

namespace {

/// Rows scored per ScoreBlock call in the batched scan. Small enough that a
/// block (kRowBlock x dim floats) plus the queries stay cache-resident.
constexpr size_t kRowBlock = 32;

}  // namespace

StatusOr<ExactStore> ExactStore::Create(linalg::MatrixF vectors) {
  if (vectors.rows() == 0 || vectors.cols() == 0) {
    return Status::InvalidArgument("ExactStore: empty vector table");
  }
  return ExactStore(std::move(vectors));
}

std::vector<SearchResult> ExactStore::TopK(linalg::VecSpan query, size_t k,
                                           const SeenSet& seen,
                                           const ScanControl& control) const {
  SEESAW_CHECK_EQ(query.size(), vectors_.cols());
  TopKHeap heap(k);
  const size_t n = vectors_.rows();
  // Checkpoint every kRowBlock rows — the same stride the batched scan
  // checkpoints at — so a cancelled speculative lookup on the scalar path
  // stops mid-table too. The checkpoints do not affect scoring or order:
  // an uncancelled scan returns exactly the pre-control result.
  for (size_t block = 0; block < n; block += kRowBlock) {
    if (control.ShouldStop()) break;
    const size_t block_end = std::min(n, block + kRowBlock);
    for (size_t i = block; i < block_end; ++i) {
      uint32_t id = static_cast<uint32_t>(i);
      if (seen.Test(id)) continue;
      heap.Push(id, linalg::Dot(vectors_.Row(i), query));
    }
  }
  return heap.TakeSorted();
}

std::vector<std::vector<SearchResult>> ExactStore::TopKBatch(
    std::span<const linalg::VecSpan> queries, size_t k, const SeenSet& seen,
    ThreadPool* pool, const ScanControl& control) const {
  const size_t num_queries = queries.size();
  if (num_queries == 0) return {};
  for (linalg::VecSpan q : queries) SEESAW_CHECK_EQ(q.size(), vectors_.cols());
  // k == 0 would make the empty heaps "full" below and their Worst()
  // undefined; the answer is trivially empty anyway.
  if (k == 0) return std::vector<std::vector<SearchResult>>(num_queries);

  const size_t n = vectors_.rows();
  size_t num_shards = 1;
  if (pool != nullptr && pool->num_threads() > 1) {
    // A couple of shards per worker evens out stragglers; never fewer rows
    // per shard than one score block.
    num_shards = std::min(pool->num_threads() * 2,
                          std::max<size_t>(1, n / kRowBlock));
  }
  const size_t rows_per_shard = (n + num_shards - 1) / num_shards;

  // heaps[shard][query]: each shard scans a disjoint row range, so shards
  // never touch each other's heaps.
  std::vector<std::vector<TopKHeap>> heaps(
      num_shards, std::vector<TopKHeap>(num_queries, TopKHeap(k)));
  auto scan_shard = [&](size_t shard) {
    const size_t begin = shard * rows_per_shard;
    const size_t end = std::min(begin + rows_per_shard, n);
    std::vector<TopKHeap>& shard_heaps = heaps[shard];
    std::vector<float> scores(kRowBlock * num_queries);
    // Per-query admission thresholds mirrored out of the heaps into flat
    // arrays, so the overwhelmingly common reject is one compare instead of
    // a heap-front pointer chase inside the innermost loop.
    std::vector<float> worst_score(num_queries,
                                   -std::numeric_limits<float>::infinity());
    std::vector<uint32_t> worst_id(num_queries, 0);
    auto admit = [&](size_t q, uint32_t id, float score) {
      TopKHeap& heap = shard_heaps[q];
      if (heap.Full()) {
        if (score < worst_score[q] ||
            (score == worst_score[q] && id > worst_id[q])) {
          return;
        }
      }
      heap.Push(id, score);
      if (heap.Full()) {
        worst_score[q] = heap.Worst().score;
        worst_id[q] = heap.Worst().id;
      }
    };
    // Seen rows are skipped before scoring (exactly like the scalar scan):
    // ScoreBlock runs over maximal unseen runs, capped at kRowBlock rows.
    // Each block is a cancellation checkpoint: a cancelled scan abandons the
    // rest of this shard's rows (partial heaps; the caller discards them).
    size_t r = begin;
    while (r < end) {
      if (seen.Test(static_cast<uint32_t>(r))) {
        ++r;
        continue;
      }
      if (control.ShouldStop()) return;
      size_t run_end = r + 1;
      while (run_end < end && run_end - r < kRowBlock &&
             !seen.Test(static_cast<uint32_t>(run_end))) {
        ++run_end;
      }
      vectors_.ScoreBlock(
          r, run_end, queries,
          linalg::MutVecSpan(scores.data(), (run_end - r) * num_queries));
      for (size_t row = r; row < run_end; ++row) {
        const float* row_scores = scores.data() + (row - r) * num_queries;
        for (size_t q = 0; q < num_queries; ++q) {
          admit(q, static_cast<uint32_t>(row), row_scores[q]);
        }
      }
      r = run_end;
    }
  };

  if (num_shards == 1) {
    scan_shard(0);
  } else {
    pool->ParallelFor(num_shards, [&](size_t begin, size_t end) {
      for (size_t shard = begin; shard < end; ++shard) scan_shard(shard);
    });
  }

  // Merge per-shard heaps: the global top-k under BetterResult is unique, so
  // the result matches the single-shard (and single-query) scan exactly.
  std::vector<std::vector<SearchResult>> out(num_queries);
  for (size_t q = 0; q < num_queries; ++q) {
    if (num_shards == 1) {
      out[q] = heaps[0][q].TakeSorted();
      continue;
    }
    std::vector<SearchResult> merged;
    for (size_t shard = 0; shard < num_shards; ++shard) {
      const auto& items = heaps[shard][q].items();
      merged.insert(merged.end(), items.begin(), items.end());
    }
    size_t keep = std::min(k, merged.size());
    std::partial_sort(merged.begin(), merged.begin() + keep, merged.end(),
                      BetterResult);
    merged.resize(keep);
    out[q] = std::move(merged);
  }
  return out;
}

}  // namespace seesaw::store
