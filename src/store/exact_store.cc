#include "store/exact_store.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/aligned.h"
#include "common/arena.h"
#include "common/check.h"
#include "common/numa.h"
#include "common/thread_pool.h"
#include "linalg/simd.h"

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace seesaw::store {

namespace {

/// Rows scored per ScoreBlock call in the batched scan. Small enough that a
/// block (kRowBlock x dim floats) plus the queries stay cache-resident.
constexpr size_t kRowBlock = 32;

/// True if any of scores[0..num) might be admitted against thresholds[0..num)
/// — i.e. NOT (score < threshold) for some lane. The negated-compare keeps
/// NaN scores on the "might admit" side, so the caller's scalar admit path
/// (and with it the scan's exact result semantics, ties and NaN included)
/// stays the single source of truth; this is purely a fast reject for the
/// overwhelmingly common all-below-threshold row.
inline bool AnyCandidate(const float* scores, const float* thresholds,
                         size_t num) {
  size_t q = 0;
#if defined(__SSE2__)
  for (; q + 4 <= num; q += 4) {
    const __m128 s = _mm_loadu_ps(scores + q);
    const __m128 t = _mm_loadu_ps(thresholds + q);
    if (_mm_movemask_ps(_mm_cmpnlt_ps(s, t)) != 0) return true;
  }
#endif
  for (; q < num; ++q) {
    if (!(scores[q] < thresholds[q])) return true;
  }
  return false;
}

}  // namespace

StatusOr<ExactStore> ExactStore::Create(linalg::MatrixF vectors) {
  return Create(std::move(vectors), ExactStoreOptions{});
}

StatusOr<ExactStore> ExactStore::Create(linalg::MatrixF vectors,
                                        const ExactStoreOptions& options) {
  if (vectors.rows() == 0 || vectors.cols() == 0) {
    return Status::InvalidArgument("ExactStore: empty vector table");
  }
  ExactStore store(std::move(vectors), options);
  if (options.precision == ScanPrecision::kInt8) {
    store.quantized_ = linalg::QuantizeRows(store.vectors_);
  }
  return store;
}

void ExactStore::BindStorageToNode(size_t node) {
  numa::BindMemoryToNode(vectors_.mutable_data().data(),
                         vectors_.mutable_data().size() * sizeof(float), node);
  if (!quantized_.empty()) {
    numa::BindMemoryToNode(quantized_.data.data(), quantized_.data.size(),
                           node);
    numa::BindMemoryToNode(quantized_.scales.data(),
                           quantized_.scales.size() * sizeof(float), node);
  }
}

std::vector<SearchResult> ExactStore::TopK(linalg::VecSpan query, size_t k,
                                           const SeenSet& seen,
                                           const ScanControl& control) const {
  SEESAW_CHECK_EQ(query.size(), vectors_.cols());
  TopKHeap heap(k);
  const size_t n = vectors_.rows();
  const size_t dim = vectors_.cols();
  // Checkpoint every kRowBlock rows — the same stride the batched scan
  // checkpoints at — so a cancelled speculative lookup on the scalar path
  // stops mid-table too. The checkpoints do not affect scoring or order:
  // an uncancelled scan returns exactly the pre-control result.
  if (options_.precision == ScanPrecision::kInt8) {
    // Quantize the query once; per-pair scoring follows the int8 family's
    // fixed spec (combined = row_scale * query_scale, then one multiply), so
    // the scalar lookup is bitwise equal to the batched int8 scan.
    const linalg::QuantizedVector q = linalg::QuantizeQuery(query);
    const linalg::Int8KernelTable& kernels = linalg::ActiveInt8Kernels();
    for (size_t block = 0; block < n; block += kRowBlock) {
      if (control.ShouldStop()) break;
      const size_t block_end = std::min(n, block + kRowBlock);
      for (size_t i = block; i < block_end; ++i) {
        uint32_t id = static_cast<uint32_t>(i);
        if (seen.Test(id)) continue;
        const int32_t acc =
            kernels.dot_i32(quantized_.Row(i), q.data.data(), dim);
        const float combined = quantized_.scale(i) * q.scale;
        heap.Push(id, static_cast<float>(acc) * combined);
      }
    }
    return heap.TakeSorted();
  }
  for (size_t block = 0; block < n; block += kRowBlock) {
    if (control.ShouldStop()) break;
    const size_t block_end = std::min(n, block + kRowBlock);
    for (size_t i = block; i < block_end; ++i) {
      uint32_t id = static_cast<uint32_t>(i);
      if (seen.Test(id)) continue;
      heap.Push(id, linalg::Dot(vectors_.Row(i), query));
    }
  }
  return heap.TakeSorted();
}

std::vector<std::vector<SearchResult>> ExactStore::TopKBatch(
    std::span<const linalg::VecSpan> queries, size_t k, const SeenSet& seen,
    ThreadPool* pool, const ScanControl& control) const {
  const size_t num_queries = queries.size();
  if (num_queries == 0) return {};
  for (linalg::VecSpan q : queries) SEESAW_CHECK_EQ(q.size(), vectors_.cols());
  // k == 0 would make the empty heaps "full" below and their Worst()
  // undefined; the answer is trivially empty anyway.
  if (k == 0) return std::vector<std::vector<SearchResult>>(num_queries);

  const size_t n = vectors_.rows();
  const size_t dim = vectors_.cols();
  const bool int8 = options_.precision == ScanPrecision::kInt8;

  // All call-lifetime scratch comes from a leased arena: after the first
  // call at a given (queries, dim) shape the lease costs zero allocations,
  // where the former fresh-vector scratch paid a malloc/free set per call
  // (tests/memory_audit_test.cc gates this). A *pooled* lease rather than
  // thread_local scratch because HelpUntil waiters are caller-runs: this
  // thread can execute a second TopKBatch as a helped task while shard
  // tasks of this call still read `qdata` — see common/arena.h.
  ScratchPool::Lease call_scratch = GlobalScanScratch().Acquire();

  // Int8 scans quantize the query batch once, into one contiguous block
  // matching the Int8KernelTable::score_block layout (each query quantized
  // in place into its slot — no bounce buffer).
  std::span<int8_t> qdata;
  std::span<float> qscales;
  const linalg::Int8KernelTable* int8_kernels = nullptr;
  if (int8) {
    int8_kernels = &linalg::ActiveInt8Kernels();
    qdata = call_scratch->Alloc<int8_t>(num_queries * dim);
    qscales = call_scratch->Alloc<float>(num_queries);
    for (size_t q = 0; q < num_queries; ++q) {
      qscales[q] =
          linalg::QuantizeVectorInto(queries[q], qdata.data() + q * dim);
    }
  }

  // Scan policy: once most rows are seen, enumerating the unseen set as
  // run-length compacted intervals beats testing every row bit-by-bit. The
  // intervals are exactly the blocks the skip-test loop produces, so both
  // policies score the same blocks in the same order (bitwise-identical
  // results, same cancellation checkpoints — one per scored block).
  const bool compact_scan =
      static_cast<double>(seen.count()) >=
      options_.compact_seen_fraction * static_cast<double>(n);

  size_t num_shards = 1;
  if (pool != nullptr && pool->num_threads() > 1) {
    // A couple of shards per worker evens out stragglers; never fewer rows
    // per shard than one score block.
    num_shards = std::min(pool->num_threads() * 2,
                          std::max<size_t>(1, n / kRowBlock));
  }
  const size_t rows_per_shard = (n + num_shards - 1) / num_shards;

  // heaps[shard][query]: each shard scans a disjoint row range, so shards
  // never touch each other's heaps. Each slot is padded to its own cache
  // line: the inner vector's header (pointer/size) is rewritten on every
  // Push, and unpadded slots of adjacent shards — 24 bytes apart in one
  // contiguous vector — would false-share under the per-shard fan-out.
  // (The heaps themselves still heap-allocate per call: their storage
  // becomes the returned results, so it cannot come from the scratch
  // arena, whose spans die at lease release.)
  struct ShardHeapSlot {
    CacheAligned<std::vector<TopKHeap>> padded;
  };
  std::vector<ShardHeapSlot> heaps(num_shards);
  for (auto& slot : heaps) {
    slot.padded.value.assign(num_queries, TopKHeap(k));
  }
  auto scan_shard = [&](size_t shard) {
    const size_t begin = shard * rows_per_shard;
    const size_t end = std::min(begin + rows_per_shard, n);
    std::vector<TopKHeap>& shard_heaps = heaps[shard].padded.value;
    // Shard-lifetime scratch: leased per shard *task*, so each worker bumps
    // its own arena (allocations are line-aligned — no cross-shard false
    // sharing on the threshold arrays) and a warm pool serves the whole
    // fan-out without touching the allocator. Alloc returns raw memory;
    // the fills below are the required initialization.
    ScratchPool::Lease shard_scratch = GlobalScanScratch().Acquire();
    std::span<float> scores =
        shard_scratch->Alloc<float>(kRowBlock * num_queries);
    // Per-query admission thresholds mirrored out of the heaps into flat
    // arrays, so the overwhelmingly common reject is one compare instead of
    // a heap-front pointer chase inside the innermost loop.
    std::span<float> worst_score = shard_scratch->Alloc<float>(num_queries);
    std::span<uint32_t> worst_id = shard_scratch->Alloc<uint32_t>(num_queries);
    std::fill(worst_score.begin(), worst_score.end(),
              -std::numeric_limits<float>::infinity());
    std::fill(worst_id.begin(), worst_id.end(), 0u);
    auto admit = [&](size_t q, uint32_t id, float score) {
      TopKHeap& heap = shard_heaps[q];
      if (heap.Full()) {
        if (score < worst_score[q] ||
            (score == worst_score[q] && id > worst_id[q])) {
          return;
        }
      }
      heap.Push(id, score);
      if (heap.Full()) {
        worst_score[q] = heap.Worst().score;
        worst_id[q] = heap.Worst().id;
      }
    };
    // Scores rows [r, run_end) against every query and feeds the heaps.
    auto score_run = [&](size_t r, size_t run_end) {
      if (int8) {
        int8_kernels->score_block(quantized_.Row(r),
                                  quantized_.scales.data() + r, run_end - r,
                                  dim, qdata.data(), qscales.data(),
                                  num_queries, scores.data());
      } else {
        vectors_.ScoreBlock(
            r, run_end, queries,
            linalg::MutVecSpan(scores.data(), (run_end - r) * num_queries));
      }
      for (size_t row = r; row < run_end; ++row) {
        const float* row_scores = scores.data() + (row - r) * num_queries;
        // Fast reject: until every heap is full the thresholds are -inf and
        // the filter always passes through to admit().
        if (!AnyCandidate(row_scores, worst_score.data(), num_queries)) {
          continue;
        }
        for (size_t q = 0; q < num_queries; ++q) {
          admit(q, static_cast<uint32_t>(row), row_scores[q]);
        }
      }
    };
    // Seen rows are skipped before scoring (exactly like the scalar scan):
    // blocks are maximal unseen runs, capped at kRowBlock rows. Each block
    // is a cancellation checkpoint: a cancelled scan abandons the rest of
    // this shard's rows (partial heaps; the caller discards them).
    if (compact_scan) {
      std::vector<std::pair<uint32_t, uint32_t>> runs;
      seen.AppendUnseenRuns(static_cast<uint32_t>(begin),
                            static_cast<uint32_t>(end), kRowBlock, &runs);
      for (const auto& [run_begin, run_end] : runs) {
        if (control.ShouldStop()) return;
        score_run(run_begin, run_end);
      }
      return;
    }
    size_t r = begin;
    while (r < end) {
      if (seen.Test(static_cast<uint32_t>(r))) {
        ++r;
        continue;
      }
      if (control.ShouldStop()) return;
      size_t run_end = r + 1;
      while (run_end < end && run_end - r < kRowBlock &&
             !seen.Test(static_cast<uint32_t>(run_end))) {
        ++run_end;
      }
      score_run(r, run_end);
      r = run_end;
    }
  };

  if (num_shards == 1) {
    scan_shard(0);
  } else {
    pool->ParallelFor(num_shards, [&](size_t begin, size_t end) {
      for (size_t shard = begin; shard < end; ++shard) scan_shard(shard);
    });
  }

  // Merge per-shard heaps: the global top-k under BetterResult is unique, so
  // the result matches the single-shard (and single-query) scan exactly.
  std::vector<std::vector<SearchResult>> out(num_queries);
  for (size_t q = 0; q < num_queries; ++q) {
    if (num_shards == 1) {
      out[q] = heaps[0].padded.value[q].TakeSorted();
      continue;
    }
    std::vector<SearchResult> merged;
    for (size_t shard = 0; shard < num_shards; ++shard) {
      const auto& items = heaps[shard].padded.value[q].items();
      merged.insert(merged.end(), items.begin(), items.end());
    }
    size_t keep = std::min(k, merged.size());
    std::partial_sort(merged.begin(), merged.begin() + keep, merged.end(),
                      BetterResult);
    merged.resize(keep);
    out[q] = std::move(merged);
  }
  return out;
}

}  // namespace seesaw::store
