#include "store/annoy_index.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <unordered_set>

#include "common/check.h"
#include "common/thread_pool.h"

namespace seesaw::store {

using linalg::VecSpan;

StatusOr<AnnoyIndex> AnnoyIndex::Build(const AnnoyOptions& options,
                                       linalg::MatrixF vectors) {
  if (vectors.rows() == 0 || vectors.cols() == 0) {
    return Status::InvalidArgument("AnnoyIndex: empty vector table");
  }
  if (options.num_trees < 1) {
    return Status::InvalidArgument("AnnoyIndex: num_trees must be >= 1");
  }
  if (options.leaf_size < 2) {
    return Status::InvalidArgument("AnnoyIndex: leaf_size must be >= 2");
  }
  AnnoyIndex index(options, std::move(vectors));
  Rng rng(options.seed);
  const size_t n = index.vectors_.rows();
  index.leaf_items_.reserve(n * options.num_trees);

  std::vector<uint32_t> items(n);
  for (int t = 0; t < options.num_trees; ++t) {
    for (size_t i = 0; i < n; ++i) items[i] = static_cast<uint32_t>(i);
    Rng tree_rng = rng.Fork();
    index.roots_.push_back(
        index.BuildSubtree(items, 0, n, /*depth=*/0, tree_rng));
  }
  return index;
}

int32_t AnnoyIndex::BuildSubtree(std::vector<uint32_t>& items, size_t begin,
                                 size_t end, int depth, Rng& rng) {
  const size_t count = end - begin;
  const size_t d = vectors_.cols();
  // Depth cap guards against degenerate splits on duplicated vectors.
  constexpr int kMaxDepth = 64;
  if (count <= static_cast<size_t>(options_.leaf_size) || depth >= kMaxDepth) {
    Node leaf;
    leaf.items_begin = static_cast<uint32_t>(leaf_items_.size());
    for (size_t i = begin; i < end; ++i) leaf_items_.push_back(items[i]);
    leaf.items_end = static_cast<uint32_t>(leaf_items_.size());
    nodes_.push_back(leaf);
    return static_cast<int32_t>(nodes_.size() - 1);
  }

  // Two-means style split: the perpendicular bisector of two random points.
  size_t ia = begin + static_cast<size_t>(
                          rng.UniformInt(0, static_cast<int64_t>(count) - 1));
  size_t ib = ia;
  for (int tries = 0; tries < 8 && ib == ia; ++tries) {
    ib = begin + static_cast<size_t>(
                     rng.UniformInt(0, static_cast<int64_t>(count) - 1));
  }
  VecSpan a = vectors_.Row(items[ia]);
  VecSpan b = vectors_.Row(items[ib]);

  std::vector<float> normal(d);
  float bias = 0.0f;
  bool degenerate = true;
  for (size_t j = 0; j < d; ++j) {
    normal[j] = a[j] - b[j];
    if (std::abs(normal[j]) > 1e-9f) degenerate = false;
  }
  if (!degenerate) {
    linalg::NormalizeInPlace(linalg::MutVecSpan(normal.data(), normal.size()));
    // Angular split (Annoy's mode for unit vectors): hyperplane through the
    // origin, so the margin is a pure cosine quantity.
    bias = 0.0f;
  } else {
    // All sampled pairs identical: random hyperplane through the centroid.
    Rng jitter = rng.Fork();
    auto rand_dir = [&jitter, d]() {
      std::vector<float> v(d);
      for (size_t j = 0; j < d; ++j)
        v[j] = static_cast<float>(jitter.Gaussian());
      linalg::NormalizeInPlace(linalg::MutVecSpan(v.data(), v.size()));
      return v;
    };
    normal = rand_dir();
    bias = 0.0f;
  }

  // Partition items by hyperplane side; ties split randomly for balance.
  size_t mid = begin;
  {
    std::vector<uint32_t> left, right;
    left.reserve(count);
    right.reserve(count);
    for (size_t i = begin; i < end; ++i) {
      float margin = bias + linalg::Dot(VecSpan(normal), vectors_.Row(items[i]));
      bool go_left = margin > 0 || (margin == 0 && rng.Bernoulli(0.5));
      (go_left ? left : right).push_back(items[i]);
    }
    // A lopsided split (all one side) would recurse forever; force a random
    // halving instead.
    if (left.empty() || right.empty()) {
      left.clear();
      right.clear();
      for (size_t i = begin; i < end; ++i) {
        (((i - begin) % 2 == 0) ? left : right).push_back(items[i]);
      }
    }
    std::copy(left.begin(), left.end(), items.begin() + begin);
    std::copy(right.begin(), right.end(),
              items.begin() + begin + left.size());
    mid = begin + left.size();
  }

  uint32_t hp_offset = static_cast<uint32_t>(hyperplanes_.size());
  hyperplanes_.insert(hyperplanes_.end(), normal.begin(), normal.end());

  int32_t left_id = BuildSubtree(items, begin, mid, depth + 1, rng);
  int32_t right_id = BuildSubtree(items, mid, end, depth + 1, rng);

  Node node;
  node.left = left_id;
  node.right = right_id;
  node.bias = bias;
  node.hyperplane_offset = hp_offset;
  nodes_.push_back(node);
  return static_cast<int32_t>(nodes_.size() - 1);
}

std::vector<SearchResult> AnnoyIndex::TopK(VecSpan query, size_t k,
                                           const SeenSet& seen,
                                           const ScanControl& control) const {
  SEESAW_CHECK_EQ(query.size(), vectors_.cols());
  if (control.ShouldStop()) return {};
  const size_t d = vectors_.cols();
  size_t search_k = options_.search_k != 0
                        ? options_.search_k
                        : static_cast<size_t>(options_.num_trees) * k * 8;
  search_k = std::max(search_k, k);

  // Best-first traversal over the forest: priority = smallest margin on the
  // path (how confidently the query lies on this side of every split).
  struct QueueEntry {
    float priority;
    int32_t node;
    bool operator<(const QueueEntry& o) const { return priority < o.priority; }
  };
  std::priority_queue<QueueEntry> frontier;
  constexpr float kInf = std::numeric_limits<float>::infinity();
  for (int32_t root : roots_) frontier.push({kInf, root});

  // Candidate set deduplicated across trees so the search_k budget buys
  // distinct vectors.
  std::unordered_set<uint32_t> visited;
  std::vector<uint32_t> candidates;
  visited.reserve(search_k * 2);
  candidates.reserve(search_k * 2);
  while (!frontier.empty() && candidates.size() < search_k) {
    QueueEntry e = frontier.top();
    frontier.pop();
    const Node& node = nodes_[e.node];
    if (node.left < 0) {
      for (uint32_t i = node.items_begin; i < node.items_end; ++i) {
        if (visited.insert(leaf_items_[i]).second) {
          candidates.push_back(leaf_items_[i]);
        }
      }
      continue;
    }
    VecSpan normal(hyperplanes_.data() + node.hyperplane_offset, d);
    float margin = node.bias + linalg::Dot(normal, query);
    int32_t near = margin > 0 ? node.left : node.right;
    int32_t far = margin > 0 ? node.right : node.left;
    frontier.push({e.priority, near});
    frontier.push({std::min(e.priority, std::abs(margin)), far});
  }

  // Second checkpoint before the exact scoring pass: a cancel delivered
  // during the traversal skips the candidate scoring entirely.
  if (control.ShouldStop()) return {};
  std::vector<SearchResult> scored;
  scored.reserve(candidates.size());
  for (uint32_t id : candidates) {
    if (seen.Test(id)) continue;
    scored.push_back({id, linalg::Dot(vectors_.Row(id), query)});
  }
  size_t keep = std::min(k, scored.size());
  std::partial_sort(scored.begin(), scored.begin() + keep, scored.end(),
                    BetterResult);
  scored.resize(keep);
  return scored;
}

std::vector<std::vector<SearchResult>> AnnoyIndex::TopKBatch(
    std::span<const VecSpan> queries, size_t k, const SeenSet& seen,
    ThreadPool* pool, const ScanControl& control) const {
  std::vector<std::vector<SearchResult>> out(queries.size());
  auto run_query = [&](size_t q) {
    if (control.ShouldStop()) return;
    out[q] = TopK(queries[q], k, seen, control);
  };
  if (pool != nullptr && pool->num_threads() > 1 && queries.size() > 1) {
    pool->ParallelFor(queries.size(), [&](size_t begin, size_t end) {
      for (size_t q = begin; q < end; ++q) run_query(q);
    });
  } else {
    for (size_t q = 0; q < queries.size(); ++q) run_query(q);
  }
  return out;
}

}  // namespace seesaw::store
