#include "clip/synthetic_clip.h"

#include "common/check.h"
#include "common/rng.h"

namespace seesaw::clip {

using linalg::MutVecSpan;
using linalg::VecSpan;
using linalg::VectorF;

SyntheticClip::SyntheticClip(std::shared_ptr<const ConceptSpace> space)
    : space_(std::move(space)) {
  SEESAW_CHECK(space_ != nullptr);
}

VectorF SyntheticClip::EmbedPatch(const PatchContent& content) const {
  const size_t d = space_->dim();
  VectorF v = linalg::Zeros(d);

  SEESAW_CHECK_GE(content.background_id, 0);
  SEESAW_CHECK_LT(static_cast<size_t>(content.background_id),
                  space_->num_backgrounds());
  linalg::Axpy(content.background_weight,
               space_->background(content.background_id),
               MutVecSpan(v.data(), v.size()));

  for (const ObjectContribution& obj : content.objects) {
    SEESAW_CHECK_GE(obj.concept_id, 0);
    SEESAW_CHECK_LT(static_cast<size_t>(obj.concept_id),
                    space_->num_concepts());
    const Concept& c = space_->concept_at(obj.concept_id);
    SEESAW_CHECK_GE(obj.mode_id, 0);
    SEESAW_CHECK_LT(static_cast<size_t>(obj.mode_id), c.modes.size());
    linalg::Axpy(obj.prominence, VecSpan(c.modes[obj.mode_id]),
                 MutVecSpan(v.data(), v.size()));
  }

  if (content.noise_scale > 0.0f) {
    Rng rng(content.noise_seed);
    for (size_t i = 0; i < d; ++i) {
      v[i] += content.noise_scale * static_cast<float>(rng.Gaussian()) /
              std::sqrt(static_cast<float>(d));
    }
  }

  linalg::NormalizeInPlace(MutVecSpan(v.data(), v.size()));
  return v;
}

VectorF SyntheticClip::EmbedText(size_t concept_id) const {
  SEESAW_CHECK_LT(concept_id, space_->num_concepts());
  return space_->concept_at(concept_id).text_embedding;
}

StatusOr<VectorF> SyntheticClip::EmbedText(const std::string& name) const {
  SEESAW_ASSIGN_OR_RETURN(size_t id, space_->FindConcept(name));
  return space_->concept_at(id).text_embedding;
}

}  // namespace seesaw::clip
