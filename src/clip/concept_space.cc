#include "clip/concept_space.h"

#include <unordered_set>

#include "common/check.h"

namespace seesaw::clip {

using linalg::VectorF;

VectorF RandomUnitVector(Rng& rng, size_t dim) {
  VectorF v(dim);
  for (size_t i = 0; i < dim; ++i) v[i] = static_cast<float>(rng.Gaussian());
  linalg::NormalizeInPlace(linalg::MutVecSpan(v.data(), v.size()));
  return v;
}

VectorF Concept::ModeCentroid() const {
  SEESAW_CHECK(!modes.empty());
  VectorF c = linalg::Zeros(modes[0].size());
  for (size_t m = 0; m < modes.size(); ++m) {
    linalg::Axpy(static_cast<float>(mode_weights[m]), linalg::VecSpan(modes[m]),
                 linalg::MutVecSpan(c.data(), c.size()));
  }
  linalg::NormalizeInPlace(linalg::MutVecSpan(c.data(), c.size()));
  return c;
}

StatusOr<ConceptSpace> ConceptSpace::Create(
    const ConceptSpaceOptions& options, const std::vector<ConceptSpec>& specs) {
  if (options.dim < 4) {
    return Status::InvalidArgument("ConceptSpace: dim must be >= 4");
  }
  if (options.num_backgrounds == 0) {
    return Status::InvalidArgument(
        "ConceptSpace: need at least one background direction");
  }
  std::unordered_set<std::string> names;
  for (const ConceptSpec& s : specs) {
    if (s.name.empty()) {
      return Status::InvalidArgument("ConceptSpace: empty concept name");
    }
    if (!names.insert(s.name).second) {
      return Status::InvalidArgument("ConceptSpace: duplicate concept name '" +
                                     s.name + "'");
    }
    if (s.num_modes < 1) {
      return Status::InvalidArgument("ConceptSpace: num_modes must be >= 1");
    }
    if (s.alignment_deficit < 0.0 || s.alignment_deficit > 1.0) {
      return Status::InvalidArgument(
          "ConceptSpace: alignment_deficit must be in [0, 1]");
    }
  }

  ConceptSpace space;
  space.dim_ = options.dim;
  Rng rng(options.seed);

  space.backgrounds_.reserve(options.num_backgrounds);
  for (size_t b = 0; b < options.num_backgrounds; ++b) {
    space.backgrounds_.push_back(RandomUnitVector(rng, options.dim));
  }

  // --- Pass 1: concept geometry (centroids + modes). ---
  space.concepts_.reserve(specs.size());
  std::vector<VectorF> centroids;
  centroids.reserve(specs.size());
  for (const ConceptSpec& spec : specs) {
    Concept c;
    c.name = spec.name;
    c.alignment_deficit = spec.alignment_deficit;

    // Concept centroid, then modes scattered around it. A single-mode concept
    // sits exactly on its centroid (maximum locality).
    VectorF centroid = RandomUnitVector(rng, options.dim);
    c.modes.reserve(spec.num_modes);
    double remaining = 1.0;
    for (int m = 0; m < spec.num_modes; ++m) {
      if (spec.num_modes == 1) {
        c.modes.push_back(centroid);
      } else {
        VectorF mode = centroid;
        VectorF jitter = RandomUnitVector(rng, options.dim);
        linalg::Axpy(static_cast<float>(spec.mode_spread),
                     linalg::VecSpan(jitter),
                     linalg::MutVecSpan(mode.data(), mode.size()));
        linalg::NormalizeInPlace(linalg::MutVecSpan(mode.data(), mode.size()));
        c.modes.push_back(std::move(mode));
      }
      // Geometric-ish mixture weights: earlier modes are more common, which
      // mirrors real categories with a dominant visual appearance.
      double w = (m + 1 == spec.num_modes)
                     ? remaining
                     : remaining * spec.mode_weight_decay;
      c.mode_weights.push_back(w);
      remaining -= w;
    }
    centroids.push_back(std::move(centroid));
    space.concepts_.push_back(std::move(c));
  }

  // --- Pass 2: text embeddings. A deficient query tilts toward a
  // distractor built from scene context, a confusable *other concept*, and
  // generic noise — so misaligned queries retrieve real-but-wrong content,
  // the failure mode Fig. 1/2a of the paper describes. ---
  double dw_total = options.distractor_background_weight +
                    options.distractor_concept_weight +
                    options.distractor_noise_weight;
  SEESAW_CHECK_GT(dw_total, 0.0);
  for (size_t ci = 0; ci < specs.size(); ++ci) {
    Concept& c = space.concepts_[ci];
    VectorF mixture = c.ModeCentroid();
    if (c.modes.size() > 1 && options.text_canonical_bias > 0) {
      float b = static_cast<float>(options.text_canonical_bias);
      VectorF anchored = linalg::Scaled(1.0f - b, linalg::VecSpan(mixture));
      linalg::Axpy(b, linalg::VecSpan(c.modes[0]),
                   linalg::MutVecSpan(anchored.data(), anchored.size()));
      linalg::NormalizeInPlace(
          linalg::MutVecSpan(anchored.data(), anchored.size()));
      mixture = std::move(anchored);
    }

    VectorF distractor = linalg::Zeros(options.dim);
    size_t bg = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(options.num_backgrounds) - 1));
    linalg::Axpy(
        static_cast<float>(options.distractor_background_weight / dw_total),
        space.background(bg),
        linalg::MutVecSpan(distractor.data(), distractor.size()));
    if (specs.size() > 1 && options.distractor_concept_weight > 0) {
      size_t other = ci;
      while (other == ci) {
        other = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(specs.size()) - 1));
      }
      linalg::Axpy(
          static_cast<float>(options.distractor_concept_weight / dw_total),
          linalg::VecSpan(centroids[other]),
          linalg::MutVecSpan(distractor.data(), distractor.size()));
    }
    VectorF noise_dir = RandomUnitVector(rng, options.dim);
    linalg::Axpy(
        static_cast<float>(options.distractor_noise_weight / dw_total),
        linalg::VecSpan(noise_dir),
        linalg::MutVecSpan(distractor.data(), distractor.size()));
    linalg::NormalizeInPlace(
        linalg::MutVecSpan(distractor.data(), distractor.size()));

    float a = static_cast<float>(specs[ci].alignment_deficit);
    VectorF text = linalg::Zeros(options.dim);
    linalg::Axpy(1.0f - a, linalg::VecSpan(mixture),
                 linalg::MutVecSpan(text.data(), text.size()));
    linalg::Axpy(a, linalg::VecSpan(distractor),
                 linalg::MutVecSpan(text.data(), text.size()));
    linalg::NormalizeInPlace(linalg::MutVecSpan(text.data(), text.size()));
    c.text_embedding = std::move(text);
  }
  return space;
}

StatusOr<size_t> ConceptSpace::FindConcept(const std::string& name) const {
  for (size_t i = 0; i < concepts_.size(); ++i) {
    if (concepts_[i].name == name) return i;
  }
  return Status::NotFound("no concept named '" + name + "'");
}

}  // namespace seesaw::clip
