// SyntheticClip: the embedding model (text + image-patch encoders).
//
// Stands in for CLIP ViT-B/32 (see DESIGN.md §1). An image patch embeds to
// the prominence-weighted sum of the concept modes visible in it, plus scene
// background and per-patch Gaussian noise, unit-normalized — matching the
// geometry SeeSaw's algorithms consume from real CLIP activations.
#ifndef SEESAW_CLIP_SYNTHETIC_CLIP_H_
#define SEESAW_CLIP_SYNTHETIC_CLIP_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "clip/concept_space.h"
#include "common/statusor.h"
#include "linalg/vector_ops.h"

namespace seesaw::clip {

/// One visible object inside a patch: which concept mode and how prominent
/// it is relative to the patch (0 = invisible, ~1 = dominates the patch).
struct ObjectContribution {
  int concept_id = 0;
  int mode_id = 0;
  float prominence = 0.0f;
};

/// The semantic content of an image patch to be encoded.
struct PatchContent {
  std::vector<ObjectContribution> objects;
  /// Scene background direction index in the ConceptSpace.
  int background_id = 0;
  /// Weight of the background direction (scene clutter).
  float background_weight = 0.3f;
  /// Standard deviation of the additive isotropic noise.
  float noise_scale = 0.15f;
  /// Seed making the patch's noise deterministic.
  uint64_t noise_seed = 0;
};

/// The embedding model. Thread-safe: encoding is purely functional given the
/// shared ConceptSpace.
class SyntheticClip {
 public:
  /// `space` must outlive the model.
  explicit SyntheticClip(std::shared_ptr<const ConceptSpace> space);

  /// Embedding dimension.
  size_t dim() const { return space_->dim(); }

  /// Encodes a patch to a unit vector. Deterministic in `content`.
  linalg::VectorF EmbedPatch(const PatchContent& content) const;

  /// Text embedding of concept `concept_id` (the q0 of Listing 1).
  linalg::VectorF EmbedText(size_t concept_id) const;

  /// Text embedding looked up by category name; NotFound for unknown names.
  StatusOr<linalg::VectorF> EmbedText(const std::string& name) const;

  const ConceptSpace& space() const { return *space_; }

 private:
  std::shared_ptr<const ConceptSpace> space_;
};

}  // namespace seesaw::clip

#endif  // SEESAW_CLIP_SYNTHETIC_CLIP_H_
