// ConceptSpace: the latent semantic geometry behind the synthetic embedding.
//
// The real system uses CLIP, whose relevant properties for SeeSaw are purely
// geometric (see DESIGN.md §1): concepts occupy (mostly) linearly separable
// regions of the unit sphere, the text embedding of a concept may be tilted
// away from its image region (alignment deficit, Fig. 2a of the paper), and a
// concept may be split across several sub-regions (locality deficit, Fig. 2b).
// ConceptSpace materializes exactly those properties: each concept gets one
// or more unit "mode" directions plus a text embedding with a configurable
// deficit; a pool of background directions models scene context.
#ifndef SEESAW_CLIP_CONCEPT_SPACE_H_
#define SEESAW_CLIP_CONCEPT_SPACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/statusor.h"
#include "linalg/vector_ops.h"

namespace seesaw::clip {

/// Per-concept construction parameters.
struct ConceptSpec {
  /// Human-readable category name ("wheelchair"); used for text lookup.
  std::string name;
  /// Number of visual sub-modes (1 = tight cluster; >1 = locality deficit).
  int num_modes = 1;
  /// Text-embedding misalignment in [0, 1]: 0 places the text embedding on
  /// the concept's mode mixture; larger values tilt it toward a distractor
  /// direction, lowering cos(text, concept).
  double alignment_deficit = 0.0;
  /// How far modes scatter around the concept centroid; larger values lower
  /// the cosine between modes (and hence the best achievable single-vector
  /// alignment for multi-mode concepts).
  double mode_spread = 0.35;
  /// Geometric decay of mode mixture weights: weight_m ~ remaining * decay.
  /// Lower values flatten the mixture (canonical mode carries less mass).
  double mode_weight_decay = 0.6;
};

/// A constructed concept: unit mode directions, mixture weights, and the
/// (possibly misaligned) unit text embedding.
struct Concept {
  std::string name;
  std::vector<linalg::VectorF> modes;
  std::vector<double> mode_weights;  ///< Sums to 1.
  linalg::VectorF text_embedding;
  double alignment_deficit = 0.0;

  /// Mixture centroid of the modes, unit-normalized. This is the best single
  /// "ideal" direction for the concept when all modes matter equally.
  linalg::VectorF ModeCentroid() const;
};

/// Global construction parameters.
struct ConceptSpaceOptions {
  /// Embedding dimension (CLIP uses 512; tests use smaller for speed).
  size_t dim = 128;
  /// Number of background/scene directions shared by all images.
  size_t num_backgrounds = 16;
  /// RNG seed; equal seeds + specs produce identical spaces.
  uint64_t seed = 1;
  /// Composition of the distractor direction a deficient text embedding
  /// tilts toward: scene background (retrieves images of the wrong scene),
  /// a *confusable sibling concept* (retrieves the wrong object class — the
  /// dominant CLIP failure mode: "wheelchair" surfacing bicycles), and
  /// generic noise. Weights are renormalized internally.
  double distractor_background_weight = 0.35;
  double distractor_concept_weight = 0.45;
  double distractor_noise_weight = 0.20;
  /// How strongly the text embedding anchors to the concept's *canonical*
  /// first mode instead of the full mode mixture (0 = centroid, 1 = mode 0).
  /// Text describes the canonical appearance ("a wheelchair" evokes the
  /// standard frontal view); instances from secondary viewpoint modes score
  /// lower against it — CLIP's hard-positive tail, which depresses
  /// full-ranking AP (Fig. 4 x-axis) while an ideal fitted vector can still
  /// cover all modes (y-axis).
  double text_canonical_bias = 0.5;
};

/// Immutable vocabulary of concepts + backgrounds on the unit sphere.
class ConceptSpace {
 public:
  /// Builds a space with one Concept per spec. Specs with duplicate names are
  /// rejected.
  static StatusOr<ConceptSpace> Create(const ConceptSpaceOptions& options,
                                       const std::vector<ConceptSpec>& specs);

  size_t dim() const { return dim_; }
  size_t num_concepts() const { return concepts_.size(); }
  size_t num_backgrounds() const { return backgrounds_.size(); }

  const Concept& concept_at(size_t id) const { return concepts_[id]; }

  /// Unit background direction `id` (0 <= id < num_backgrounds()).
  linalg::VecSpan background(size_t id) const {
    return linalg::VecSpan(backgrounds_[id]);
  }

  /// Index of the concept with the given name, or NotFound.
  StatusOr<size_t> FindConcept(const std::string& name) const;

 private:
  ConceptSpace() = default;

  size_t dim_ = 0;
  std::vector<Concept> concepts_;
  std::vector<linalg::VectorF> backgrounds_;
};

/// Uniformly random unit vector of dimension `dim`.
linalg::VectorF RandomUnitVector(Rng& rng, size_t dim);

}  // namespace seesaw::clip

#endif  // SEESAW_CLIP_CONCEPT_SPACE_H_
