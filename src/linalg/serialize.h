// Binary (de)serialization of linalg containers.
#ifndef SEESAW_LINALG_SERIALIZE_H_
#define SEESAW_LINALG_SERIALIZE_H_

#include "common/binary_io.h"
#include "linalg/matrix.h"

namespace seesaw::linalg {

/// Writes rows, cols, then row-major float data.
Status SaveMatrix(BinaryWriter& writer, const MatrixF& m);

/// Reads a matrix written by SaveMatrix. Guards against implausible sizes.
StatusOr<MatrixF> LoadMatrix(BinaryReader& reader);

}  // namespace seesaw::linalg

#endif  // SEESAW_LINALG_SERIALIZE_H_
