#include "linalg/serialize.h"

namespace seesaw::linalg {

Status SaveMatrix(BinaryWriter& writer, const MatrixF& m) {
  SEESAW_RETURN_IF_ERROR(writer.WriteU64(m.rows()));
  SEESAW_RETURN_IF_ERROR(writer.WriteU64(m.cols()));
  return writer.WriteFloats(m.data().data(), m.data().size());
}

StatusOr<MatrixF> LoadMatrix(BinaryReader& reader) {
  SEESAW_ASSIGN_OR_RETURN(uint64_t rows, reader.ReadU64());
  SEESAW_ASSIGN_OR_RETURN(uint64_t cols, reader.ReadU64());
  // 16 GiB of float32 is beyond anything this library handles — treat as
  // corruption rather than attempting the allocation.
  if (rows * cols > (1ull << 32)) {
    return Status::IoError("matrix dimensions implausible");
  }
  MatrixF m(static_cast<size_t>(rows), static_cast<size_t>(cols));
  SEESAW_RETURN_IF_ERROR(
      reader.ReadFloats(m.mutable_data().data(), m.mutable_data().size()));
  return m;
}

}  // namespace seesaw::linalg
