// Symmetric per-row int8 quantization of embedding tables.
//
// At million-row scale the fp32 scan is memory-bandwidth-bound: every
// TopKBatch streams rows*dim*4 bytes through the core. Quantizing the table
// to int8 cuts that stream 4x and lets the integer kernels process 32 MACs
// per instruction, which is where the 2-4x scan speedup at n >= 1M comes
// from (BENCH_scale.json).
//
// Scheme: symmetric (zero-point-free) per-row quantization.
//
//   scale_r = max_i |row[i]| / 127          (1.0 for an all-zero row)
//   q[i]    = clamp(round(row[i] / scale_r), -127, 127)
//
// Queries are quantized the same way once per scan. The approximate score is
//
//   score(r, q) = float(sum_i q_row[i] * q_query[i]) * (scale_r * scale_q)
//
// with the integer sum accumulated exactly in int32 (dim <= 131072 cannot
// overflow: |q| <= 127 so each product is <= 16129). Because the integer sum
// is exact regardless of accumulation order, every int8 kernel is bitwise
// identical by construction — the only float ops are the two multiplies
// above, performed in one fixed order by every implementation.
//
// The [-127, 127] clamp (never -128) is load-bearing for the AVX2 kernel:
// vpmaddubsw saturates pairs at int16, and 2 * 127 * 127 = 32258 < 32767 is
// the margin that makes the sign-trick path exact. See kernels_avx2.cc.
//
// Accuracy: quantization is a new kernel *family* — scores are not bitwise
// comparable to the fp32 scan. The cross-family contract is recall@k against
// the fp32 scan (>= 0.99 recall@100 on clustered CLIP-like data; gated in
// tests/quantized_kernel_test.cc and re-checked by bench_scale at scale).
#ifndef SEESAW_LINALG_QUANTIZE_H_
#define SEESAW_LINALG_QUANTIZE_H_

#include <cstdint>
#include <vector>

#include "linalg/matrix.h"
#include "linalg/vector_ops.h"

namespace seesaw::linalg {

/// A row-major int8 table with one float scale per row. Rows are contiguous
/// (row stride == cols), matching the Int8KernelTable::score_block layout.
struct QuantizedTable {
  size_t rows = 0;
  size_t cols = 0;
  std::vector<int8_t> data;    // rows * cols, row-major
  std::vector<float> scales;   // per-row dequantization scale

  bool empty() const { return rows == 0 || cols == 0; }
  const int8_t* Row(size_t r) const { return data.data() + r * cols; }
  float scale(size_t r) const { return scales[r]; }
};

/// One quantized vector (a query quantized at scan time).
struct QuantizedVector {
  std::vector<int8_t> data;
  float scale = 1.0f;
};

/// Quantizes one float vector symmetrically into `out` (resized to
/// src.size()); returns the scale. Deterministic: round-to-nearest-even
/// (std::nearbyintf under the default rounding mode), clamped to ±127.
float QuantizeVector(VecSpan src, std::vector<int8_t>* out);

/// In-place variant for callers that own the destination (the batched scan
/// quantizes each query directly into its slot of one contiguous arena
/// block instead of bouncing through a temporary vector). `out` must hold
/// src.size() bytes. Bit-for-bit the same quantization as QuantizeVector —
/// both run the identical MaxAbs + round-to-nearest-even pipeline.
float QuantizeVectorInto(VecSpan src, int8_t* out);

/// Convenience wrapper building a QuantizedVector.
QuantizedVector QuantizeQuery(VecSpan query);

/// Quantizes every row of `table` independently.
QuantizedTable QuantizeRows(const MatrixF& table);

/// Reconstructs row `r` of a quantized table as floats (for round-trip
/// error tests): out[i] = q[i] * scale_r. The per-element reconstruction
/// error is bounded by scale_r / 2 = max|row| / 254.
VectorF DequantizeRow(const QuantizedTable& table, size_t r);

}  // namespace seesaw::linalg

#endif  // SEESAW_LINALG_QUANTIZE_H_
