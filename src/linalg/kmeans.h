// Lloyd's k-means over float32 rows — the coarse quantizer behind the
// IVF-Flat store (the FAISS-style index family the paper's ecosystem uses).
#ifndef SEESAW_LINALG_KMEANS_H_
#define SEESAW_LINALG_KMEANS_H_

#include <cstdint>
#include <vector>

#include "common/statusor.h"
#include "linalg/matrix.h"

namespace seesaw::linalg {

/// K-means configuration.
struct KMeansOptions {
  size_t num_clusters = 16;
  int max_iters = 25;
  /// Stop when the fraction of points changing assignment drops below this.
  double reassignment_tolerance = 0.002;
  uint64_t seed = 31;
};

/// K-means result: centroids plus per-point assignments.
struct KMeansResult {
  MatrixF centroids;               ///< num_clusters x dim.
  std::vector<uint32_t> assignment;  ///< size = #points.
  double inertia = 0.0;            ///< Sum of squared distances to centroids.
  int iterations = 0;
};

/// Runs Lloyd's algorithm with k-means++ style seeding (greedy D^2
/// sampling). Returns InvalidArgument for empty input or k < 1; k is clamped
/// to the number of points.
StatusOr<KMeansResult> KMeans(const MatrixF& points,
                              const KMeansOptions& options);

}  // namespace seesaw::linalg

#endif  // SEESAW_LINALG_KMEANS_H_
