#include "linalg/matrix.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "linalg/simd.h"

namespace seesaw::linalg {

MatrixF::MatrixF(size_t rows, size_t cols, float fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

MatrixF MatrixF::FromRows(const std::vector<VectorF>& rows) {
  if (rows.empty()) return MatrixF();
  MatrixF m(rows.size(), rows[0].size());
  for (size_t r = 0; r < rows.size(); ++r) {
    SEESAW_CHECK_EQ(rows[r].size(), m.cols_) << "ragged rows";
    std::copy(rows[r].begin(), rows[r].end(), m.data_.begin() + r * m.cols_);
  }
  return m;
}

MatrixF MatrixF::Identity(size_t n) {
  MatrixF m(n, n);
  for (size_t i = 0; i < n; ++i) m.At(i, i) = 1.0f;
  return m;
}

VecSpan MatrixF::Row(size_t r) const {
  SEESAW_CHECK_LT(r, rows_);
  return VecSpan(data_.data() + r * cols_, cols_);
}

MutVecSpan MatrixF::MutableRow(size_t r) {
  SEESAW_CHECK_LT(r, rows_);
  return MutVecSpan(data_.data() + r * cols_, cols_);
}

VectorF MatrixF::MatVec(VecSpan x) const {
  SEESAW_CHECK_EQ(x.size(), cols_);
  VectorF y(rows_, 0.0f);
  for (size_t r = 0; r < rows_; ++r) y[r] = Dot(Row(r), x);
  return y;
}

void MatrixF::ScoreBlock(size_t row_begin, size_t row_end,
                         std::span<const VecSpan> queries,
                         MutVecSpan out) const {
  SEESAW_CHECK_LE(row_begin, row_end);
  SEESAW_CHECK_LE(row_end, rows_);
  const size_t q = queries.size();
  SEESAW_CHECK_EQ(out.size(), (row_end - row_begin) * q);
  for (VecSpan query : queries) SEESAW_CHECK_EQ(query.size(), cols_);
  // The dispatched kernel may block rows x queries in registers (2x2 on
  // AVX2); per-(row, query) accumulation order is fixed by the spec
  // (simd.h), so every score stays bitwise identical to per-row Dot().
  ActiveKernels().score_block(data_.data() + row_begin * cols_,
                              row_end - row_begin, cols_, queries.data(), q,
                              out.data());
}

VectorF MatrixF::TransposeMatVec(VecSpan x) const {
  SEESAW_CHECK_EQ(x.size(), rows_);
  VectorF y(cols_, 0.0f);
  for (size_t r = 0; r < rows_; ++r) {
    Axpy(x[r], Row(r), MutVecSpan(y.data(), y.size()));
  }
  return y;
}

double MatrixF::QuadraticForm(VecSpan x) const {
  SEESAW_CHECK_EQ(rows_, cols_);
  SEESAW_CHECK_EQ(x.size(), cols_);
  double acc = 0.0;
  for (size_t r = 0; r < rows_; ++r) {
    acc += static_cast<double>(x[r]) * Dot(Row(r), x);
  }
  return acc;
}

void MatrixF::AddOuterProduct(float alpha, VecSpan v) {
  AddOuterProduct(alpha, v, v);
}

void MatrixF::AddOuterProduct(float alpha, VecSpan u, VecSpan v) {
  SEESAW_CHECK_EQ(u.size(), rows_);
  SEESAW_CHECK_EQ(v.size(), cols_);
  for (size_t r = 0; r < rows_; ++r) {
    float a = alpha * u[r];
    if (a == 0.0f) continue;
    float* row = data_.data() + r * cols_;
    for (size_t c = 0; c < cols_; ++c) row[c] += a * v[c];
  }
}

void MatrixF::AddScaled(float alpha, const MatrixF& other) {
  SEESAW_CHECK_EQ(rows_, other.rows_);
  SEESAW_CHECK_EQ(cols_, other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += alpha * other.data_[i];
}

void MatrixF::ScaleBy(float alpha) {
  for (float& v : data_) v *= alpha;
}

MatrixF MatrixF::Symmetrized() const {
  SEESAW_CHECK_EQ(rows_, cols_);
  MatrixF out(rows_, cols_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) {
      out.At(r, c) = 0.5f * (At(r, c) + At(c, r));
    }
  }
  return out;
}

float MatrixF::MaxAbs() const {
  float m = 0.0f;
  for (float v : data_) m = std::max(m, std::abs(v));
  return m;
}

double MatrixF::FrobeniusNorm() const {
  double acc = 0.0;
  for (float v : data_) acc += static_cast<double>(v) * v;
  return std::sqrt(acc);
}

}  // namespace seesaw::linalg
