#include "linalg/sparse.h"

#include <algorithm>

#include "common/check.h"

namespace seesaw::linalg {

SparseMatrixF SparseMatrixF::FromTriplets(size_t rows, size_t cols,
                                          std::vector<Triplet> triplets) {
  SparseMatrixF m;
  m.rows_ = rows;
  m.cols_ = cols;
  for (const Triplet& t : triplets) {
    SEESAW_CHECK_LT(t.row, rows);
    SEESAW_CHECK_LT(t.col, cols);
  }
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  m.row_ptr_.assign(rows + 1, 0);
  m.col_idx_.reserve(triplets.size());
  m.values_.reserve(triplets.size());
  size_t i = 0;
  for (size_t r = 0; r < rows; ++r) {
    m.row_ptr_[r] = m.values_.size();
    while (i < triplets.size() && triplets[i].row == r) {
      uint32_t c = triplets[i].col;
      float v = 0.0f;
      while (i < triplets.size() && triplets[i].row == r &&
             triplets[i].col == c) {
        v += triplets[i].value;
        ++i;
      }
      m.col_idx_.push_back(c);
      m.values_.push_back(v);
    }
  }
  m.row_ptr_[rows] = m.values_.size();
  return m;
}

VectorF SparseMatrixF::Apply(VecSpan x) const {
  SEESAW_CHECK_EQ(x.size(), cols_);
  VectorF y(rows_, 0.0f);
  for (size_t r = 0; r < rows_; ++r) {
    float acc = 0.0f;
    for (uint64_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      acc += values_[k] * x[col_idx_[k]];
    }
    y[r] = acc;
  }
  return y;
}

VectorF SparseMatrixF::ApplyTranspose(VecSpan x) const {
  SEESAW_CHECK_EQ(x.size(), rows_);
  VectorF y(cols_, 0.0f);
  for (size_t r = 0; r < rows_; ++r) {
    float xr = x[r];
    if (xr == 0.0f) continue;
    for (uint64_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      y[col_idx_[k]] += values_[k] * xr;
    }
  }
  return y;
}

VectorF SparseMatrixF::RowSums() const {
  VectorF sums(rows_, 0.0f);
  for (size_t r = 0; r < rows_; ++r) {
    float acc = 0.0f;
    for (uint64_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) acc += values_[k];
    sums[r] = acc;
  }
  return sums;
}

SparseMatrixF SparseMatrixF::SymmetrizedSum() const {
  SEESAW_CHECK_EQ(rows_, cols_);
  std::vector<Triplet> triplets;
  triplets.reserve(nnz() * 2);
  for (size_t r = 0; r < rows_; ++r) {
    for (uint64_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      uint32_t c = col_idx_[k];
      float v = values_[k];
      if (c == static_cast<uint32_t>(r)) {
        triplets.push_back({static_cast<uint32_t>(r), c, v});
      } else {
        triplets.push_back({static_cast<uint32_t>(r), c, v});
        triplets.push_back({c, static_cast<uint32_t>(r), v});
      }
    }
  }
  return FromTriplets(rows_, cols_, std::move(triplets));
}

std::span<const uint32_t> SparseMatrixF::RowIndices(size_t r) const {
  SEESAW_CHECK_LT(r, rows_);
  return std::span<const uint32_t>(col_idx_.data() + row_ptr_[r],
                                   row_ptr_[r + 1] - row_ptr_[r]);
}

std::span<const float> SparseMatrixF::RowValues(size_t r) const {
  SEESAW_CHECK_LT(r, rows_);
  return std::span<const float>(values_.data() + row_ptr_[r],
                                row_ptr_[r + 1] - row_ptr_[r]);
}

MatrixF SparseMatrixF::ProjectQuadratic(const MatrixF& x) const {
  SEESAW_CHECK_EQ(rows_, cols_);
  SEESAW_CHECK_EQ(x.rows(), rows_);
  const size_t d = x.cols();
  // Y = A X, row by row to keep memory at one extra row.
  MatrixF result(d, d, 0.0f);
  VectorF ax_row(d, 0.0f);
  for (size_t r = 0; r < rows_; ++r) {
    std::fill(ax_row.begin(), ax_row.end(), 0.0f);
    for (uint64_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      Axpy(values_[k], x.Row(col_idx_[k]),
           MutVecSpan(ax_row.data(), ax_row.size()));
    }
    // result += x_r * ax_row^T
    result.AddOuterProduct(1.0f, x.Row(r), ax_row);
  }
  return result;
}

double SparseMatrixF::Bilinear(VecSpan x, VecSpan y) const {
  SEESAW_CHECK_EQ(x.size(), rows_);
  SEESAW_CHECK_EQ(y.size(), cols_);
  double acc = 0.0;
  for (size_t r = 0; r < rows_; ++r) {
    if (x[r] == 0.0f) continue;
    double row_acc = 0.0;
    for (uint64_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      row_acc += static_cast<double>(values_[k]) * y[col_idx_[k]];
    }
    acc += static_cast<double>(x[r]) * row_acc;
  }
  return acc;
}

}  // namespace seesaw::linalg
