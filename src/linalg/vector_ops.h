// Dense float32 vector kernels.
//
// Embeddings in seesaw are float32 (like CLIP activations) and unit-normed;
// these free functions are the hot path for scoring and optimization.
#ifndef SEESAW_LINALG_VECTOR_OPS_H_
#define SEESAW_LINALG_VECTOR_OPS_H_

#include <cstddef>
#include <span>
#include <vector>

namespace seesaw::linalg {

/// Dense float vector. Kept as a plain std::vector so rows of MatrixF and
/// user-held vectors interoperate without copies (via std::span).
using VectorF = std::vector<float>;

/// Read-only view over contiguous floats.
using VecSpan = std::span<const float>;

/// Mutable view over contiguous floats.
using MutVecSpan = std::span<float>;

/// Inner product <a, b>. Sizes must match.
///
/// Dot, DotBatch, and MatrixF::ScoreBlock all route through the runtime-
/// dispatched SIMD kernel layer (linalg/simd.h): AVX2+FMA on x86-64, NEON on
/// aarch64, scalar reference otherwise. Every kernel computes the same fixed
/// accumulation spec, so results are bitwise identical across kernels (and
/// overridable via SEESAW_FORCE_KERNEL / ForceKernels for testing).
float Dot(VecSpan a, VecSpan b);

/// out[q] = <a, queries[q]> for every query. `a` is loaded once and stays
/// cache-resident across all queries — the inner kernel of the batched
/// multi-query scan. Each dot uses the same accumulation order as Dot(), so
/// batched and scalar scoring are bitwise identical. Sizes must match;
/// out.size() must equal queries.size().
void DotBatch(VecSpan a, std::span<const VecSpan> queries, MutVecSpan out);

/// Inner product accumulated in double precision. Use where downstream code
/// is sensitive to accumulation noise (e.g. optimizer line searches over a
/// sum of thousands of per-example losses).
double DotDouble(VecSpan a, VecSpan b);

/// Squared Euclidean norm ||a||^2.
float SquaredNorm(VecSpan a);

/// Euclidean norm ||a||.
float Norm(VecSpan a);

/// Squared Euclidean distance ||a - b||^2.
float SquaredDistance(VecSpan a, VecSpan b);

/// y += alpha * x (sizes must match).
void Axpy(float alpha, VecSpan x, MutVecSpan y);

/// x *= alpha.
void Scale(float alpha, MutVecSpan x);

/// Returns a / ||a||. If ||a|| is ~0, returns a copy of `a` unchanged.
VectorF Normalized(VecSpan a);

/// Normalizes in place; no-op on (near-)zero vectors. Returns the pre-
/// normalization norm.
float NormalizeInPlace(MutVecSpan a);

/// Elementwise a + b.
VectorF Add(VecSpan a, VecSpan b);

/// Elementwise a - b.
VectorF Sub(VecSpan a, VecSpan b);

/// alpha * a (new vector).
VectorF Scaled(float alpha, VecSpan a);

/// Cosine similarity <a,b>/(||a|| ||b||); 0 if either norm is ~0.
float Cosine(VecSpan a, VecSpan b);

/// All-zero vector of dimension `dim`.
VectorF Zeros(size_t dim);

}  // namespace seesaw::linalg

#endif  // SEESAW_LINALG_VECTOR_OPS_H_
