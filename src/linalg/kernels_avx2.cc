// AVX2+FMA kernels (x86-64).
//
// Implements the arithmetic spec from simd.h with 256-bit fused
// multiply-adds: one __m256 per accumulator bank, _mm256_fmadd_ps per
// 8-element chunk, the fixed shuffle reduction, and a scalar fused tail.
// std::fmaf inside these functions compiles to vfmadd, so tail lanes use the
// same single-rounding operation as the vector body.
//
// Every function carries a per-function target attribute instead of the TU
// being compiled with -mavx2: only these bodies get AVX2 codegen, so nothing
// here can leak AVX2 instructions into inline functions shared with generic
// TUs, and the binary still boots on pre-AVX2 CPUs (dispatch probes CPUID
// before ever calling in).
//
// Register blocking: DotBatch pairs queries (row chunks loaded once feed two
// accumulator chains) and ScoreBlock pairs rows x queries (a 2x2
// micro-kernel, eight live accumulator chains). Blocking only shares loads —
// each (row, query) pair's accumulation order is exactly the spec, keeping
// blocked results bitwise equal to per-pair Dot.
#include "linalg/simd.h"

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include <cmath>
#include <cstddef>

#define SEESAW_AVX2_FN __attribute__((target("avx2,fma")))

namespace seesaw::linalg {
namespace {

/// Spec reduction: s = A + B lanewise, u[l] = s[l] + s[l+4],
/// result = (u0 + u1) + (u2 + u3).
SEESAW_AVX2_FN inline float Reduce(__m256 acc_a, __m256 acc_b) {
  const __m256 s = _mm256_add_ps(acc_a, acc_b);
  const __m128 u =
      _mm_add_ps(_mm256_castps256_ps128(s), _mm256_extractf128_ps(s, 1));
  __m128 shuf = _mm_movehdup_ps(u);   // u1 u1 u3 u3
  __m128 sums = _mm_add_ps(u, shuf);  // u0+u1 . u2+u3 .
  shuf = _mm_movehl_ps(shuf, sums);   // u2+u3 in lane 0
  sums = _mm_add_ss(sums, shuf);      // (u0+u1) + (u2+u3)
  return _mm_cvtss_f32(sums);
}

SEESAW_AVX2_FN float DotAvx2(VecSpan a, VecSpan b) {
  const float* pa = a.data();
  const float* pb = b.data();
  const size_t n = a.size();
  __m256 acc_a = _mm256_setzero_ps();
  __m256 acc_b = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    acc_a = _mm256_fmadd_ps(_mm256_loadu_ps(pa + i), _mm256_loadu_ps(pb + i),
                            acc_a);
    acc_b = _mm256_fmadd_ps(_mm256_loadu_ps(pa + i + 8),
                            _mm256_loadu_ps(pb + i + 8), acc_b);
  }
  if (i + 8 <= n) {
    acc_a = _mm256_fmadd_ps(_mm256_loadu_ps(pa + i), _mm256_loadu_ps(pb + i),
                            acc_a);
    i += 8;
  }
  float r = Reduce(acc_a, acc_b);
  for (; i < n; ++i) r = std::fmaf(pa[i], pb[i], r);
  return r;
}

/// One row against two queries; row chunks are loaded once.
SEESAW_AVX2_FN void Dot1R2Q(const float* pa, const float* q0, const float* q1,
                            size_t n, float* out0, float* out1) {
  __m256 a0 = _mm256_setzero_ps(), b0 = _mm256_setzero_ps();
  __m256 a1 = _mm256_setzero_ps(), b1 = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256 va = _mm256_loadu_ps(pa + i);
    const __m256 vb = _mm256_loadu_ps(pa + i + 8);
    a0 = _mm256_fmadd_ps(va, _mm256_loadu_ps(q0 + i), a0);
    b0 = _mm256_fmadd_ps(vb, _mm256_loadu_ps(q0 + i + 8), b0);
    a1 = _mm256_fmadd_ps(va, _mm256_loadu_ps(q1 + i), a1);
    b1 = _mm256_fmadd_ps(vb, _mm256_loadu_ps(q1 + i + 8), b1);
  }
  if (i + 8 <= n) {
    const __m256 va = _mm256_loadu_ps(pa + i);
    a0 = _mm256_fmadd_ps(va, _mm256_loadu_ps(q0 + i), a0);
    a1 = _mm256_fmadd_ps(va, _mm256_loadu_ps(q1 + i), a1);
    i += 8;
  }
  float r0 = Reduce(a0, b0);
  float r1 = Reduce(a1, b1);
  for (; i < n; ++i) {
    r0 = std::fmaf(pa[i], q0[i], r0);
    r1 = std::fmaf(pa[i], q1[i], r1);
  }
  *out0 = r0;
  *out1 = r1;
}

/// Two rows against two queries: the 2x2 micro-kernel. Four dot products
/// share every row/query chunk load, and the four independent accumulator
/// chains hide FMA latency.
SEESAW_AVX2_FN void Dot2R2Q(const float* r0, const float* r1, const float* q0,
                            const float* q1, size_t n, float* out_row0,
                            float* out_row1) {
  __m256 a00 = _mm256_setzero_ps(), b00 = _mm256_setzero_ps();
  __m256 a01 = _mm256_setzero_ps(), b01 = _mm256_setzero_ps();
  __m256 a10 = _mm256_setzero_ps(), b10 = _mm256_setzero_ps();
  __m256 a11 = _mm256_setzero_ps(), b11 = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256 vr0a = _mm256_loadu_ps(r0 + i);
    const __m256 vr0b = _mm256_loadu_ps(r0 + i + 8);
    const __m256 vr1a = _mm256_loadu_ps(r1 + i);
    const __m256 vr1b = _mm256_loadu_ps(r1 + i + 8);
    const __m256 vq0a = _mm256_loadu_ps(q0 + i);
    const __m256 vq0b = _mm256_loadu_ps(q0 + i + 8);
    const __m256 vq1a = _mm256_loadu_ps(q1 + i);
    const __m256 vq1b = _mm256_loadu_ps(q1 + i + 8);
    a00 = _mm256_fmadd_ps(vr0a, vq0a, a00);
    b00 = _mm256_fmadd_ps(vr0b, vq0b, b00);
    a01 = _mm256_fmadd_ps(vr0a, vq1a, a01);
    b01 = _mm256_fmadd_ps(vr0b, vq1b, b01);
    a10 = _mm256_fmadd_ps(vr1a, vq0a, a10);
    b10 = _mm256_fmadd_ps(vr1b, vq0b, b10);
    a11 = _mm256_fmadd_ps(vr1a, vq1a, a11);
    b11 = _mm256_fmadd_ps(vr1b, vq1b, b11);
  }
  if (i + 8 <= n) {
    const __m256 vr0a = _mm256_loadu_ps(r0 + i);
    const __m256 vr1a = _mm256_loadu_ps(r1 + i);
    const __m256 vq0a = _mm256_loadu_ps(q0 + i);
    const __m256 vq1a = _mm256_loadu_ps(q1 + i);
    a00 = _mm256_fmadd_ps(vr0a, vq0a, a00);
    a01 = _mm256_fmadd_ps(vr0a, vq1a, a01);
    a10 = _mm256_fmadd_ps(vr1a, vq0a, a10);
    a11 = _mm256_fmadd_ps(vr1a, vq1a, a11);
    i += 8;
  }
  float s00 = Reduce(a00, b00);
  float s01 = Reduce(a01, b01);
  float s10 = Reduce(a10, b10);
  float s11 = Reduce(a11, b11);
  for (; i < n; ++i) {
    s00 = std::fmaf(r0[i], q0[i], s00);
    s01 = std::fmaf(r0[i], q1[i], s01);
    s10 = std::fmaf(r1[i], q0[i], s10);
    s11 = std::fmaf(r1[i], q1[i], s11);
  }
  out_row0[0] = s00;
  out_row0[1] = s01;
  out_row1[0] = s10;
  out_row1[1] = s11;
}

SEESAW_AVX2_FN void DotBatchAvx2(VecSpan a, const VecSpan* queries,
                                 size_t num_queries, float* out) {
  size_t q = 0;
  for (; q + 2 <= num_queries; q += 2) {
    Dot1R2Q(a.data(), queries[q].data(), queries[q + 1].data(), a.size(),
            out + q, out + q + 1);
  }
  if (q < num_queries) out[q] = DotAvx2(a, queries[q]);
}

SEESAW_AVX2_FN void ScoreBlockAvx2(const float* rows, size_t num_rows,
                                   size_t dim, const VecSpan* queries,
                                   size_t num_queries, float* out) {
  size_t r = 0;
  for (; r + 2 <= num_rows; r += 2) {
    const float* row0 = rows + r * dim;
    const float* row1 = row0 + dim;
    float* out0 = out + r * num_queries;
    float* out1 = out0 + num_queries;
    size_t q = 0;
    for (; q + 2 <= num_queries; q += 2) {
      Dot2R2Q(row0, row1, queries[q].data(), queries[q + 1].data(), dim,
              out0 + q, out1 + q);
    }
    if (q < num_queries) {
      out0[q] = DotAvx2(VecSpan(row0, dim), queries[q]);
      out1[q] = DotAvx2(VecSpan(row1, dim), queries[q]);
    }
  }
  if (r < num_rows) {
    DotBatchAvx2(VecSpan(rows + r * dim, dim), queries, num_queries,
                 out + r * num_queries);
  }
}

}  // namespace

namespace internal {

const KernelTable* Avx2KernelsOrNull() {
  if (!__builtin_cpu_supports("avx2") || !__builtin_cpu_supports("fma")) {
    return nullptr;
  }
  static constexpr KernelTable kTable = {"avx2", DotAvx2, DotBatchAvx2,
                                         ScoreBlockAvx2};
  return &kTable;
}

}  // namespace internal
}  // namespace seesaw::linalg

#else  // !x86

namespace seesaw::linalg::internal {
const KernelTable* Avx2KernelsOrNull() { return nullptr; }
}  // namespace seesaw::linalg::internal

#endif
