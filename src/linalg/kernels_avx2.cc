// AVX2+FMA kernels (x86-64).
//
// Implements the arithmetic spec from simd.h with 256-bit fused
// multiply-adds: one __m256 per accumulator bank, _mm256_fmadd_ps per
// 8-element chunk, the fixed shuffle reduction, and a scalar fused tail.
// std::fmaf inside these functions compiles to vfmadd, so tail lanes use the
// same single-rounding operation as the vector body.
//
// Every function carries a per-function target attribute instead of the TU
// being compiled with -mavx2: only these bodies get AVX2 codegen, so nothing
// here can leak AVX2 instructions into inline functions shared with generic
// TUs, and the binary still boots on pre-AVX2 CPUs (dispatch probes CPUID
// before ever calling in).
//
// Register blocking: DotBatch pairs queries (row chunks loaded once feed two
// accumulator chains) and ScoreBlock pairs rows x queries (a 2x2
// micro-kernel, eight live accumulator chains). Blocking only shares loads —
// each (row, query) pair's accumulation order is exactly the spec, keeping
// blocked results bitwise equal to per-pair Dot.
#include "linalg/simd.h"

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include <cmath>
#include <cstddef>
#include <vector>

#define SEESAW_AVX2_FN __attribute__((target("avx2,fma")))

namespace seesaw::linalg {
namespace {

/// Spec reduction: s = A + B lanewise, u[l] = s[l] + s[l+4],
/// result = (u0 + u1) + (u2 + u3).
SEESAW_AVX2_FN inline float Reduce(__m256 acc_a, __m256 acc_b) {
  const __m256 s = _mm256_add_ps(acc_a, acc_b);
  const __m128 u =
      _mm_add_ps(_mm256_castps256_ps128(s), _mm256_extractf128_ps(s, 1));
  __m128 shuf = _mm_movehdup_ps(u);   // u1 u1 u3 u3
  __m128 sums = _mm_add_ps(u, shuf);  // u0+u1 . u2+u3 .
  shuf = _mm_movehl_ps(shuf, sums);   // u2+u3 in lane 0
  sums = _mm_add_ss(sums, shuf);      // (u0+u1) + (u2+u3)
  return _mm_cvtss_f32(sums);
}

SEESAW_AVX2_FN float DotAvx2(VecSpan a, VecSpan b) {
  const float* pa = a.data();
  const float* pb = b.data();
  const size_t n = a.size();
  __m256 acc_a = _mm256_setzero_ps();
  __m256 acc_b = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    acc_a = _mm256_fmadd_ps(_mm256_loadu_ps(pa + i), _mm256_loadu_ps(pb + i),
                            acc_a);
    acc_b = _mm256_fmadd_ps(_mm256_loadu_ps(pa + i + 8),
                            _mm256_loadu_ps(pb + i + 8), acc_b);
  }
  if (i + 8 <= n) {
    acc_a = _mm256_fmadd_ps(_mm256_loadu_ps(pa + i), _mm256_loadu_ps(pb + i),
                            acc_a);
    i += 8;
  }
  float r = Reduce(acc_a, acc_b);
  for (; i < n; ++i) r = std::fmaf(pa[i], pb[i], r);
  return r;
}

/// One row against two queries; row chunks are loaded once.
SEESAW_AVX2_FN void Dot1R2Q(const float* pa, const float* q0, const float* q1,
                            size_t n, float* out0, float* out1) {
  __m256 a0 = _mm256_setzero_ps(), b0 = _mm256_setzero_ps();
  __m256 a1 = _mm256_setzero_ps(), b1 = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256 va = _mm256_loadu_ps(pa + i);
    const __m256 vb = _mm256_loadu_ps(pa + i + 8);
    a0 = _mm256_fmadd_ps(va, _mm256_loadu_ps(q0 + i), a0);
    b0 = _mm256_fmadd_ps(vb, _mm256_loadu_ps(q0 + i + 8), b0);
    a1 = _mm256_fmadd_ps(va, _mm256_loadu_ps(q1 + i), a1);
    b1 = _mm256_fmadd_ps(vb, _mm256_loadu_ps(q1 + i + 8), b1);
  }
  if (i + 8 <= n) {
    const __m256 va = _mm256_loadu_ps(pa + i);
    a0 = _mm256_fmadd_ps(va, _mm256_loadu_ps(q0 + i), a0);
    a1 = _mm256_fmadd_ps(va, _mm256_loadu_ps(q1 + i), a1);
    i += 8;
  }
  float r0 = Reduce(a0, b0);
  float r1 = Reduce(a1, b1);
  for (; i < n; ++i) {
    r0 = std::fmaf(pa[i], q0[i], r0);
    r1 = std::fmaf(pa[i], q1[i], r1);
  }
  *out0 = r0;
  *out1 = r1;
}

/// Two rows against two queries: the 2x2 micro-kernel. Four dot products
/// share every row/query chunk load, and the four independent accumulator
/// chains hide FMA latency.
SEESAW_AVX2_FN void Dot2R2Q(const float* r0, const float* r1, const float* q0,
                            const float* q1, size_t n, float* out_row0,
                            float* out_row1) {
  __m256 a00 = _mm256_setzero_ps(), b00 = _mm256_setzero_ps();
  __m256 a01 = _mm256_setzero_ps(), b01 = _mm256_setzero_ps();
  __m256 a10 = _mm256_setzero_ps(), b10 = _mm256_setzero_ps();
  __m256 a11 = _mm256_setzero_ps(), b11 = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256 vr0a = _mm256_loadu_ps(r0 + i);
    const __m256 vr0b = _mm256_loadu_ps(r0 + i + 8);
    const __m256 vr1a = _mm256_loadu_ps(r1 + i);
    const __m256 vr1b = _mm256_loadu_ps(r1 + i + 8);
    const __m256 vq0a = _mm256_loadu_ps(q0 + i);
    const __m256 vq0b = _mm256_loadu_ps(q0 + i + 8);
    const __m256 vq1a = _mm256_loadu_ps(q1 + i);
    const __m256 vq1b = _mm256_loadu_ps(q1 + i + 8);
    a00 = _mm256_fmadd_ps(vr0a, vq0a, a00);
    b00 = _mm256_fmadd_ps(vr0b, vq0b, b00);
    a01 = _mm256_fmadd_ps(vr0a, vq1a, a01);
    b01 = _mm256_fmadd_ps(vr0b, vq1b, b01);
    a10 = _mm256_fmadd_ps(vr1a, vq0a, a10);
    b10 = _mm256_fmadd_ps(vr1b, vq0b, b10);
    a11 = _mm256_fmadd_ps(vr1a, vq1a, a11);
    b11 = _mm256_fmadd_ps(vr1b, vq1b, b11);
  }
  if (i + 8 <= n) {
    const __m256 vr0a = _mm256_loadu_ps(r0 + i);
    const __m256 vr1a = _mm256_loadu_ps(r1 + i);
    const __m256 vq0a = _mm256_loadu_ps(q0 + i);
    const __m256 vq1a = _mm256_loadu_ps(q1 + i);
    a00 = _mm256_fmadd_ps(vr0a, vq0a, a00);
    a01 = _mm256_fmadd_ps(vr0a, vq1a, a01);
    a10 = _mm256_fmadd_ps(vr1a, vq0a, a10);
    a11 = _mm256_fmadd_ps(vr1a, vq1a, a11);
    i += 8;
  }
  float s00 = Reduce(a00, b00);
  float s01 = Reduce(a01, b01);
  float s10 = Reduce(a10, b10);
  float s11 = Reduce(a11, b11);
  for (; i < n; ++i) {
    s00 = std::fmaf(r0[i], q0[i], s00);
    s01 = std::fmaf(r0[i], q1[i], s01);
    s10 = std::fmaf(r1[i], q0[i], s10);
    s11 = std::fmaf(r1[i], q1[i], s11);
  }
  out_row0[0] = s00;
  out_row0[1] = s01;
  out_row1[0] = s10;
  out_row1[1] = s11;
}

SEESAW_AVX2_FN void DotBatchAvx2(VecSpan a, const VecSpan* queries,
                                 size_t num_queries, float* out) {
  size_t q = 0;
  for (; q + 2 <= num_queries; q += 2) {
    Dot1R2Q(a.data(), queries[q].data(), queries[q + 1].data(), a.size(),
            out + q, out + q + 1);
  }
  if (q < num_queries) out[q] = DotAvx2(a, queries[q]);
}

SEESAW_AVX2_FN void ScoreBlockAvx2(const float* rows, size_t num_rows,
                                   size_t dim, const VecSpan* queries,
                                   size_t num_queries, float* out) {
  size_t r = 0;
  for (; r + 2 <= num_rows; r += 2) {
    const float* row0 = rows + r * dim;
    const float* row1 = row0 + dim;
    float* out0 = out + r * num_queries;
    float* out1 = out0 + num_queries;
    size_t q = 0;
    for (; q + 2 <= num_queries; q += 2) {
      Dot2R2Q(row0, row1, queries[q].data(), queries[q + 1].data(), dim,
              out0 + q, out1 + q);
    }
    if (q < num_queries) {
      out0[q] = DotAvx2(VecSpan(row0, dim), queries[q]);
      out1[q] = DotAvx2(VecSpan(row1, dim), queries[q]);
    }
  }
  if (r < num_rows) {
    DotBatchAvx2(VecSpan(rows + r * dim, dim), queries, num_queries,
                 out + r * num_queries);
  }
}

// ------------------------------------------------------------- int8 family --
// vpmaddubsw multiplies unsigned-by-signed bytes and saturates the pairwise
// int16 sums, so signed x signed inputs go through the sign trick:
//
//   |a| * (b * sign(a))  ==  a * b        (elementwise)
//
// with |a| <= 127 from the quantizer's [-127, 127] clamp, each pair sum is
// bounded by 2 * 127 * 127 = 32258 < 32767 — no saturation, the path is
// exact. The pair sums widen to int32 via vpmaddwd against ones and
// accumulate with plain adds, so any chunk order yields the same exact sum
// and bitwise parity with the scalar reference is structural.

/// Sum of the eight int32 lanes.
SEESAW_AVX2_FN inline int32_t ReduceI32(__m256i acc) {
  const __m128i lo = _mm256_castsi256_si128(acc);
  const __m128i hi = _mm256_extracti128_si256(acc, 1);
  __m128i s = _mm_add_epi32(lo, hi);
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(1, 0, 3, 2)));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(2, 3, 0, 1)));
  return _mm_cvtsi128_si32(s);
}

SEESAW_AVX2_FN int32_t DotI8Avx2(const int8_t* a, const int8_t* b, size_t n) {
  const __m256i ones = _mm256_set1_epi16(1);
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const __m256i abs_a = _mm256_sign_epi8(va, va);
    const __m256i sgn_b = _mm256_sign_epi8(vb, va);
    const __m256i pairs = _mm256_maddubs_epi16(abs_a, sgn_b);
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(pairs, ones));
  }
  int32_t r = ReduceI32(acc);
  for (; i < n; ++i) {
    r += static_cast<int32_t>(a[i]) * static_cast<int32_t>(b[i]);
  }
  return r;
}

/// One int8 row against two quantized queries; row chunks are loaded once.
SEESAW_AVX2_FN void DotI8_1R2Q(const int8_t* a, const int8_t* q0,
                               const int8_t* q1, size_t n, int32_t* out0,
                               int32_t* out1) {
  const __m256i ones = _mm256_set1_epi16(1);
  __m256i acc0 = _mm256_setzero_si256();
  __m256i acc1 = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i abs_a = _mm256_sign_epi8(va, va);
    const __m256i v0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(q0 + i));
    const __m256i v1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(q1 + i));
    acc0 = _mm256_add_epi32(
        acc0,
        _mm256_madd_epi16(_mm256_maddubs_epi16(abs_a, _mm256_sign_epi8(v0, va)),
                          ones));
    acc1 = _mm256_add_epi32(
        acc1,
        _mm256_madd_epi16(_mm256_maddubs_epi16(abs_a, _mm256_sign_epi8(v1, va)),
                          ones));
  }
  int32_t r0 = ReduceI32(acc0);
  int32_t r1 = ReduceI32(acc1);
  for (; i < n; ++i) {
    const int32_t ai = a[i];
    r0 += ai * static_cast<int32_t>(q0[i]);
    r1 += ai * static_cast<int32_t>(q1[i]);
  }
  *out0 = r0;
  *out1 = r1;
}

/// Sums each of four int32 accumulators into one lane: returns
/// [reduce(a0), reduce(a1), reduce(a2), reduce(a3)]. Three hadds replace
/// four full per-accumulator reductions.
SEESAW_AVX2_FN inline __m128i ReduceI32x4(__m256i a0, __m256i a1, __m256i a2,
                                          __m256i a3) {
  const __m256i t01 = _mm256_hadd_epi32(a0, a1);
  const __m256i t23 = _mm256_hadd_epi32(a2, a3);
  const __m256i t = _mm256_hadd_epi32(t01, t23);
  return _mm_add_epi32(_mm256_castsi256_si128(t),
                       _mm256_extracti128_si256(t, 1));
}

/// One vpmaddubsw/vpmaddwd term of query chunk `q` against the prepared
/// |a| / sign(a) row chunk.
SEESAW_AVX2_FN inline __m256i MaddI8Term(__m256i abs_a, __m256i va,
                                         const int8_t* q, __m256i ones) {
  const __m256i vq = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(q));
  return _mm256_madd_epi16(
      _mm256_maddubs_epi16(abs_a, _mm256_sign_epi8(vq, va)), ones);
}

/// One int8 row against four quantized queries: the row chunk is loaded and
/// |a|/sign-prepared once, reused four times, and all four accumulators
/// reduce together. Exact int32 accumulation keeps this bitwise identical
/// to four scalar dots regardless of the blocking.
SEESAW_AVX2_FN void DotI8_1R4Q(const int8_t* a, const int8_t* const* qs,
                               size_t n, int32_t* out) {
  const __m256i ones = _mm256_set1_epi16(1);
  __m256i acc0 = _mm256_setzero_si256();
  __m256i acc1 = _mm256_setzero_si256();
  __m256i acc2 = _mm256_setzero_si256();
  __m256i acc3 = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i abs_a = _mm256_sign_epi8(va, va);
    acc0 = _mm256_add_epi32(acc0, MaddI8Term(abs_a, va, qs[0] + i, ones));
    acc1 = _mm256_add_epi32(acc1, MaddI8Term(abs_a, va, qs[1] + i, ones));
    acc2 = _mm256_add_epi32(acc2, MaddI8Term(abs_a, va, qs[2] + i, ones));
    acc3 = _mm256_add_epi32(acc3, MaddI8Term(abs_a, va, qs[3] + i, ones));
  }
  __m128i r = ReduceI32x4(acc0, acc1, acc2, acc3);
  alignas(16) int32_t lanes[4];
  _mm_store_si128(reinterpret_cast<__m128i*>(lanes), r);
  for (; i < n; ++i) {
    const int32_t ai = a[i];
    lanes[0] += ai * static_cast<int32_t>(qs[0][i]);
    lanes[1] += ai * static_cast<int32_t>(qs[1][i]);
    lanes[2] += ai * static_cast<int32_t>(qs[2][i]);
    lanes[3] += ai * static_cast<int32_t>(qs[3][i]);
  }
  out[0] = lanes[0];
  out[1] = lanes[1];
  out[2] = lanes[2];
  out[3] = lanes[3];
}

SEESAW_AVX2_FN void ScoreBlockI8Avx2(const int8_t* rows,
                                     const float* row_scales, size_t num_rows,
                                     size_t dim, const int8_t* queries,
                                     const float* query_scales,
                                     size_t num_queries, float* out) {
  for (size_t r = 0; r < num_rows; ++r) {
    const int8_t* row = rows + r * dim;
    float* out_row = out + r * num_queries;
    size_t q = 0;
    for (; q + 4 <= num_queries; q += 4) {
      const int8_t* qs[4] = {queries + q * dim, queries + (q + 1) * dim,
                             queries + (q + 2) * dim, queries + (q + 3) * dim};
      int32_t s[4];
      DotI8_1R4Q(row, qs, dim, s);
      for (size_t j = 0; j < 4; ++j) {
        out_row[q + j] =
            static_cast<float>(s[j]) * (row_scales[r] * query_scales[q + j]);
      }
    }
    for (; q + 2 <= num_queries; q += 2) {
      int32_t s0, s1;
      DotI8_1R2Q(row, queries + q * dim, queries + (q + 1) * dim, dim, &s0,
                 &s1);
      out_row[q] =
          static_cast<float>(s0) * (row_scales[r] * query_scales[q]);
      out_row[q + 1] =
          static_cast<float>(s1) * (row_scales[r] * query_scales[q + 1]);
    }
    if (q < num_queries) {
      const int32_t s = DotI8Avx2(row, queries + q * dim, dim);
      out_row[q] = static_cast<float>(s) * (row_scales[r] * query_scales[q]);
    }
  }
}

}  // namespace

// --------------------------------------------------- avx512vnni int8 family --
// vpdpbusd fuses the maddubs/maddwd/add triple into one unsigned-by-signed
// dot-accumulate with an exact (non-saturating) int32 destination, and the
// 512-bit registers halve the chunk count. vpsignb has no EVEX form, so
// instead of a per-chunk sign trick these kernels use the offset identity:
//
//   (a XOR 0x80) as u8  ==  a + 128, so
//   dot_u8s8(a + 128, q)  ==  dot(a, q) + 128 * sum(q)
//
// One vpxord per *row* chunk lifts the row into u8 range, every query term
// is then a single vpdpbusd, and the row-invariant correction 128 * sum(q)
// is computed once per call and subtracted in int32. Each 4-byte group sums
// to at most 4 * 255 * 127, exact in int32; all arithmetic stays integer,
// so bitwise parity with the scalar reference is structural, same as the
// AVX2 path. (This identity is also clamp-agnostic: it is exact even for
// -128, unlike sign-trick formulations.)

// The explicit avx2+fma in the target list keeps the AVX2 helpers above
// inlinable into these functions (GCC only inlines across target
// attributes when the callee's set is a subset of the caller's).
#define SEESAW_AVX512VNNI_FN                    \
  __attribute__((                               \
      target("avx2,fma,avx512f,avx512bw,avx512vl,avx512vnni")))

namespace {

/// Row chunk lifted into u8 range: (a XOR 0x80) == a + 128 as unsigned.
SEESAW_AVX512VNNI_FN inline __m512i OffsetRowChunk(const int8_t* a) {
  return _mm512_xor_si512(_mm512_loadu_si512(a), _mm512_set1_epi8(-128));
}

SEESAW_AVX512VNNI_FN inline int32_t ReduceI32Zmm(__m512i acc) {
  return ReduceI32(_mm256_add_epi32(_mm512_castsi512_si256(acc),
                                    _mm512_extracti64x4_epi64(acc, 1)));
}

/// Joint reduction of four zmm accumulators: fold each to ymm, then share
/// the three-hadd transpose — far cheaper than four full reductions.
SEESAW_AVX512VNNI_FN inline __m128i ReduceI32x4Zmm(__m512i a0, __m512i a1,
                                                   __m512i a2, __m512i a3) {
  const __m256i f0 = _mm256_add_epi32(_mm512_castsi512_si256(a0),
                                      _mm512_extracti64x4_epi64(a0, 1));
  const __m256i f1 = _mm256_add_epi32(_mm512_castsi512_si256(a1),
                                      _mm512_extracti64x4_epi64(a1, 1));
  const __m256i f2 = _mm256_add_epi32(_mm512_castsi512_si256(a2),
                                      _mm512_extracti64x4_epi64(a2, 1));
  const __m256i f3 = _mm256_add_epi32(_mm512_castsi512_si256(a3),
                                      _mm512_extracti64x4_epi64(a3, 1));
  return ReduceI32x4(f0, f1, f2, f3);
}

/// 128 * sum(q[0:n&~63]) — the row-invariant correction for one query over
/// the vectorized prefix (the scalar tail never goes through the offset
/// trick, so it needs no correction). Computed as dpbusd against a constant
/// all-128 unsigned operand.
SEESAW_AVX512VNNI_FN int32_t QueryCorrection(const int8_t* q, size_t n) {
  const __m512i v128 = _mm512_set1_epi8(-128);  // 0x80 == 128 as unsigned
  __m512i acc = _mm512_setzero_si512();
  for (size_t i = 0; i + 64 <= n; i += 64) {
    acc = _mm512_dpbusd_epi32(acc, v128, _mm512_loadu_si512(q + i));
  }
  return ReduceI32Zmm(acc);
}

SEESAW_AVX512VNNI_FN int32_t DotI8Vnni(const int8_t* a, const int8_t* b,
                                       size_t n) {
  const __m512i v128 = _mm512_set1_epi8(-128);
  __m512i acc = _mm512_setzero_si512();
  __m512i corr = _mm512_setzero_si512();
  size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    const __m512i vb = _mm512_loadu_si512(b + i);
    acc = _mm512_dpbusd_epi32(acc, OffsetRowChunk(a + i), vb);
    corr = _mm512_dpbusd_epi32(corr, v128, vb);
  }
  int32_t r = ReduceI32Zmm(_mm512_sub_epi32(acc, corr));
  for (; i < n; ++i) {
    r += static_cast<int32_t>(a[i]) * static_cast<int32_t>(b[i]);
  }
  return r;
}

/// One int8 row against four quantized queries; the offset row chunk is
/// prepared once and reused four times. `corr[j]` must be
/// QueryCorrection(qs[j], n).
SEESAW_AVX512VNNI_FN void DotI8Vnni1R4Q(const int8_t* a,
                                        const int8_t* const* qs,
                                        const int32_t* corr, size_t n,
                                        int32_t* out) {
  __m512i acc0 = _mm512_setzero_si512();
  __m512i acc1 = _mm512_setzero_si512();
  __m512i acc2 = _mm512_setzero_si512();
  __m512i acc3 = _mm512_setzero_si512();
  size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    const __m512i ua = OffsetRowChunk(a + i);
    acc0 = _mm512_dpbusd_epi32(acc0, ua, _mm512_loadu_si512(qs[0] + i));
    acc1 = _mm512_dpbusd_epi32(acc1, ua, _mm512_loadu_si512(qs[1] + i));
    acc2 = _mm512_dpbusd_epi32(acc2, ua, _mm512_loadu_si512(qs[2] + i));
    acc3 = _mm512_dpbusd_epi32(acc3, ua, _mm512_loadu_si512(qs[3] + i));
  }
  alignas(16) int32_t lanes[4];
  _mm_store_si128(reinterpret_cast<__m128i*>(lanes),
                  ReduceI32x4Zmm(acc0, acc1, acc2, acc3));
  for (int j = 0; j < 4; ++j) lanes[j] -= corr[j];
  for (; i < n; ++i) {
    const int32_t ai = a[i];
    lanes[0] += ai * static_cast<int32_t>(qs[0][i]);
    lanes[1] += ai * static_cast<int32_t>(qs[1][i]);
    lanes[2] += ai * static_cast<int32_t>(qs[2][i]);
    lanes[3] += ai * static_cast<int32_t>(qs[3][i]);
  }
  out[0] = lanes[0];
  out[1] = lanes[1];
  out[2] = lanes[2];
  out[3] = lanes[3];
}

/// One int8 row against eight quantized queries: the offset row chunk is
/// prepared once per 64 dims and feeds eight bare vpdpbusd accumulators, so
/// row bytes are touched exactly once per row regardless of batch depth.
SEESAW_AVX512VNNI_FN void DotI8Vnni1R8Q(const int8_t* a,
                                        const int8_t* const* qs,
                                        const int32_t* corr, size_t n,
                                        int32_t* out) {
  __m512i acc[8];
  for (int j = 0; j < 8; ++j) acc[j] = _mm512_setzero_si512();
  size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    const __m512i ua = OffsetRowChunk(a + i);
    acc[0] = _mm512_dpbusd_epi32(acc[0], ua, _mm512_loadu_si512(qs[0] + i));
    acc[1] = _mm512_dpbusd_epi32(acc[1], ua, _mm512_loadu_si512(qs[1] + i));
    acc[2] = _mm512_dpbusd_epi32(acc[2], ua, _mm512_loadu_si512(qs[2] + i));
    acc[3] = _mm512_dpbusd_epi32(acc[3], ua, _mm512_loadu_si512(qs[3] + i));
    acc[4] = _mm512_dpbusd_epi32(acc[4], ua, _mm512_loadu_si512(qs[4] + i));
    acc[5] = _mm512_dpbusd_epi32(acc[5], ua, _mm512_loadu_si512(qs[5] + i));
    acc[6] = _mm512_dpbusd_epi32(acc[6], ua, _mm512_loadu_si512(qs[6] + i));
    acc[7] = _mm512_dpbusd_epi32(acc[7], ua, _mm512_loadu_si512(qs[7] + i));
  }
  alignas(16) int32_t lanes[8];
  _mm_store_si128(reinterpret_cast<__m128i*>(lanes),
                  ReduceI32x4Zmm(acc[0], acc[1], acc[2], acc[3]));
  _mm_store_si128(reinterpret_cast<__m128i*>(lanes + 4),
                  ReduceI32x4Zmm(acc[4], acc[5], acc[6], acc[7]));
  for (int j = 0; j < 8; ++j) lanes[j] -= corr[j];
  for (; i < n; ++i) {
    const int32_t ai = a[i];
    for (int j = 0; j < 8; ++j) {
      lanes[j] += ai * static_cast<int32_t>(qs[j][i]);
    }
  }
  for (int j = 0; j < 8; ++j) out[j] = lanes[j];
}

/// dim == 128 row sweep for one group of eight queries: all sixteen query
/// chunks stay register-resident across the row loop (16 zmm + 8
/// accumulators + 2 row chunks fits the 32-register file), so each row
/// costs two loads + two XORs + sixteen vpdpbusd before the joint
/// reduction. The correction subtract, int-to-float conversion, and the
/// two scale multiplies run as 4-lane vector ops — elementwise the same
/// two-rounding sequence `float(s) * (row_scale * query_scale)` as the
/// scalar reference, so bitwise parity holds lane for lane.
SEESAW_AVX512VNNI_FN void ScoreRows8Q128(const int8_t* rows,
                                         const float* row_scales,
                                         size_t num_rows,
                                         const int8_t* const* qs,
                                         const int32_t* corr,
                                         const float* qscales,
                                         size_t out_stride, float* out) {
  const __m512i q00 = _mm512_loadu_si512(qs[0]);
  const __m512i q01 = _mm512_loadu_si512(qs[0] + 64);
  const __m512i q10 = _mm512_loadu_si512(qs[1]);
  const __m512i q11 = _mm512_loadu_si512(qs[1] + 64);
  const __m512i q20 = _mm512_loadu_si512(qs[2]);
  const __m512i q21 = _mm512_loadu_si512(qs[2] + 64);
  const __m512i q30 = _mm512_loadu_si512(qs[3]);
  const __m512i q31 = _mm512_loadu_si512(qs[3] + 64);
  const __m512i q40 = _mm512_loadu_si512(qs[4]);
  const __m512i q41 = _mm512_loadu_si512(qs[4] + 64);
  const __m512i q50 = _mm512_loadu_si512(qs[5]);
  const __m512i q51 = _mm512_loadu_si512(qs[5] + 64);
  const __m512i q60 = _mm512_loadu_si512(qs[6]);
  const __m512i q61 = _mm512_loadu_si512(qs[6] + 64);
  const __m512i q70 = _mm512_loadu_si512(qs[7]);
  const __m512i q71 = _mm512_loadu_si512(qs[7] + 64);
  const __m128i c0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(corr));
  const __m128i c1 =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(corr + 4));
  const __m128 qsc0 = _mm_loadu_ps(qscales);
  const __m128 qsc1 = _mm_loadu_ps(qscales + 4);
  const __m512i zero = _mm512_setzero_si512();
  const int8_t* row = rows;
  for (size_t r = 0; r < num_rows; ++r, row += 128, out += out_stride) {
    const __m512i ua0 = OffsetRowChunk(row);
    const __m512i ua1 = OffsetRowChunk(row + 64);
    const __m512i a0 =
        _mm512_dpbusd_epi32(_mm512_dpbusd_epi32(zero, ua0, q00), ua1, q01);
    const __m512i a1 =
        _mm512_dpbusd_epi32(_mm512_dpbusd_epi32(zero, ua0, q10), ua1, q11);
    const __m512i a2 =
        _mm512_dpbusd_epi32(_mm512_dpbusd_epi32(zero, ua0, q20), ua1, q21);
    const __m512i a3 =
        _mm512_dpbusd_epi32(_mm512_dpbusd_epi32(zero, ua0, q30), ua1, q31);
    const __m512i a4 =
        _mm512_dpbusd_epi32(_mm512_dpbusd_epi32(zero, ua0, q40), ua1, q41);
    const __m512i a5 =
        _mm512_dpbusd_epi32(_mm512_dpbusd_epi32(zero, ua0, q50), ua1, q51);
    const __m512i a6 =
        _mm512_dpbusd_epi32(_mm512_dpbusd_epi32(zero, ua0, q60), ua1, q61);
    const __m512i a7 =
        _mm512_dpbusd_epi32(_mm512_dpbusd_epi32(zero, ua0, q70), ua1, q71);
    const __m128i s0 = _mm_sub_epi32(ReduceI32x4Zmm(a0, a1, a2, a3), c0);
    const __m128i s1 = _mm_sub_epi32(ReduceI32x4Zmm(a4, a5, a6, a7), c1);
    const __m128 rs = _mm_set1_ps(row_scales[r]);
    _mm_storeu_ps(out,
                  _mm_mul_ps(_mm_cvtepi32_ps(s0), _mm_mul_ps(rs, qsc0)));
    _mm_storeu_ps(out + 4,
                  _mm_mul_ps(_mm_cvtepi32_ps(s1), _mm_mul_ps(rs, qsc1)));
  }
}

SEESAW_AVX512VNNI_FN void ScoreBlockI8Vnni(const int8_t* rows,
                                           const float* row_scales,
                                           size_t num_rows, size_t dim,
                                           const int8_t* queries,
                                           const float* query_scales,
                                           size_t num_queries, float* out) {
  // Query pointers are row-invariant; materializing them once keeps the row
  // loop's address arithmetic down to two pointer increments.
  constexpr size_t kMaxStackQueries = 64;
  const int8_t* qp_stack[kMaxStackQueries];
  std::vector<const int8_t*> qp_heap;
  const int8_t** qp = qp_stack;
  if (num_queries > kMaxStackQueries) {
    qp_heap.resize(num_queries);
    qp = qp_heap.data();
  }
  for (size_t q = 0; q < num_queries; ++q) qp[q] = queries + q * dim;

  // Per-query offset corrections, computed once per call (the cost is one
  // dpbusd pass over the queries, amortized across every row of the block).
  constexpr size_t kMaxStackCorr = 64;
  int32_t corr_stack[kMaxStackCorr];
  std::vector<int32_t> corr_heap;
  int32_t* corr = corr_stack;
  if (num_queries > kMaxStackCorr) {
    corr_heap.resize(num_queries);
    corr = corr_heap.data();
  }
  for (size_t q = 0; q < num_queries; ++q) {
    corr[q] = QueryCorrection(qp[q], dim);
  }

  // CLIP-like tables (dim == 128) take the register-resident row sweep per
  // eight-query group; sweeping rows per group instead of queries per row
  // changes only the cell visit order, not any cell's arithmetic, so the
  // family's bitwise contract is unaffected.
  if (dim == 128) {
    size_t q = 0;
    for (; q + 8 <= num_queries; q += 8) {
      ScoreRows8Q128(rows, row_scales, num_rows, qp + q, corr + q,
                     query_scales + q, num_queries, out + q);
    }
    if (q == num_queries) return;
    const int8_t* rest_row = rows;
    float* rest_out = out;
    for (size_t r = 0; r < num_rows;
         ++r, rest_row += dim, rest_out += num_queries) {
      const float row_scale = row_scales[r];
      for (size_t j = q; j < num_queries; ++j) {
        const int32_t s = DotI8Vnni(rest_row, qp[j], dim);
        rest_out[j] = static_cast<float>(s) * (row_scale * query_scales[j]);
      }
    }
    return;
  }

  const int8_t* row = rows;
  float* out_row = out;
  for (size_t r = 0; r < num_rows; ++r, row += dim, out_row += num_queries) {
    const float row_scale = row_scales[r];
    size_t q = 0;
    for (; q + 8 <= num_queries; q += 8) {
      int32_t s[8];
      DotI8Vnni1R8Q(row, qp + q, corr + q, dim, s);
      for (size_t j = 0; j < 8; ++j) {
        out_row[q + j] =
            static_cast<float>(s[j]) * (row_scale * query_scales[q + j]);
      }
    }
    for (; q + 4 <= num_queries; q += 4) {
      int32_t s[4];
      DotI8Vnni1R4Q(row, qp + q, corr + q, dim, s);
      for (size_t j = 0; j < 4; ++j) {
        out_row[q + j] =
            static_cast<float>(s[j]) * (row_scale * query_scales[q + j]);
      }
    }
    for (; q < num_queries; ++q) {
      const int32_t s = DotI8Vnni(row, qp[q], dim);
      out_row[q] = static_cast<float>(s) * (row_scale * query_scales[q]);
    }
  }
}

}  // namespace

namespace internal {

const KernelTable* Avx2KernelsOrNull() {
  if (!__builtin_cpu_supports("avx2") || !__builtin_cpu_supports("fma")) {
    return nullptr;
  }
  static constexpr KernelTable kTable = {"avx2", DotAvx2, DotBatchAvx2,
                                         ScoreBlockAvx2};
  return &kTable;
}

const Int8KernelTable* Avx2Int8KernelsOrNull() {
  if (Avx2KernelsOrNull() == nullptr) return nullptr;
  static constexpr Int8KernelTable kTable = {"avx2", DotI8Avx2,
                                             ScoreBlockI8Avx2};
  return &kTable;
}

const KernelTable* Avx512VnniKernelsOrNull() {
  if (Avx2KernelsOrNull() == nullptr || !__builtin_cpu_supports("avx512f") ||
      !__builtin_cpu_supports("avx512bw") ||
      !__builtin_cpu_supports("avx512vl") ||
      !__builtin_cpu_supports("avx512vnni")) {
    return nullptr;
  }
  // The avx512vnni *configuration* upgrades only the int8 scoring path. Its
  // fp32 members are the AVX2 functions: the fp32 family contract pins the
  // 8-float-lane accumulation spec (bitwise parity across kernels), and the
  // fp32 scan is DRAM-bound anyway — wider vectors buy nothing there.
  static constexpr KernelTable kTable = {"avx512vnni", DotAvx2, DotBatchAvx2,
                                         ScoreBlockAvx2};
  return &kTable;
}

const Int8KernelTable* Avx512VnniInt8KernelsOrNull() {
  if (Avx512VnniKernelsOrNull() == nullptr) return nullptr;
  static constexpr Int8KernelTable kTable = {"avx512vnni", DotI8Vnni,
                                             ScoreBlockI8Vnni};
  return &kTable;
}

}  // namespace internal
}  // namespace seesaw::linalg

#else  // !x86

namespace seesaw::linalg::internal {
const KernelTable* Avx2KernelsOrNull() { return nullptr; }
const Int8KernelTable* Avx2Int8KernelsOrNull() { return nullptr; }
const KernelTable* Avx512VnniKernelsOrNull() { return nullptr; }
const Int8KernelTable* Avx512VnniInt8KernelsOrNull() { return nullptr; }
}  // namespace seesaw::linalg::internal

#endif
