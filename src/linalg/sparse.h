// Compressed-sparse-row float32 matrix, used for the kNN-graph adjacency W
// and the graph Laplacian D - W in database alignment (§4.2 of the paper).
#ifndef SEESAW_LINALG_SPARSE_H_
#define SEESAW_LINALG_SPARSE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "linalg/matrix.h"
#include "linalg/vector_ops.h"

namespace seesaw::linalg {

/// One (row, col, value) entry used to assemble a sparse matrix.
struct Triplet {
  uint32_t row;
  uint32_t col;
  float value;
};

/// Immutable CSR sparse matrix.
class SparseMatrixF {
 public:
  /// Empty 0x0 matrix.
  SparseMatrixF() = default;

  /// Builds a rows x cols CSR matrix from triplets. Duplicate (row, col)
  /// entries are summed. Triplets may be in any order.
  static SparseMatrixF FromTriplets(size_t rows, size_t cols,
                                    std::vector<Triplet> triplets);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t nnz() const { return values_.size(); }

  /// y = A * x.
  VectorF Apply(VecSpan x) const;

  /// y = A^T * x.
  VectorF ApplyTranspose(VecSpan x) const;

  /// Row-sums as a vector (the diagonal of the degree matrix when this is a
  /// graph adjacency).
  VectorF RowSums() const;

  /// Returns (A + A^T)/1 with duplicate entries summed — used to symmetrize a
  /// directed kNN adjacency. Diagonal entries are preserved as-is.
  SparseMatrixF SymmetrizedSum() const;

  /// Iteration over row r: parallel spans of column indices and values.
  std::span<const uint32_t> RowIndices(size_t r) const;
  std::span<const float> RowValues(size_t r) const;

  /// Dense d x d product X^T * A * X where X is n x d and A is this (n x n).
  /// Computed as X^T * (A X) in O(nnz * d + n * d^2).
  MatrixF ProjectQuadratic(const MatrixF& x) const;

  /// x^T A y for dense vectors (sizes must match rows/cols).
  double Bilinear(VecSpan x, VecSpan y) const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<uint64_t> row_ptr_;  // size rows_+1
  std::vector<uint32_t> col_idx_;  // size nnz
  std::vector<float> values_;      // size nnz
};

}  // namespace seesaw::linalg

#endif  // SEESAW_LINALG_SPARSE_H_
