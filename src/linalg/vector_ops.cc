#include "linalg/vector_ops.h"

#include <cmath>

#include "common/check.h"
#include "linalg/simd.h"

namespace seesaw::linalg {

namespace {
constexpr float kNormEpsilon = 1e-12f;
}  // namespace

float Dot(VecSpan a, VecSpan b) {
  SEESAW_CHECK_EQ(a.size(), b.size());
  return ActiveKernels().dot(a, b);
}

void DotBatch(VecSpan a, std::span<const VecSpan> queries, MutVecSpan out) {
  SEESAW_CHECK_EQ(queries.size(), out.size());
  for (VecSpan q : queries) SEESAW_CHECK_EQ(q.size(), a.size());
  // `a` is read from memory once and stays L1-resident across all queries —
  // that loop order (row outer, queries inner) is the whole win over
  // re-streaming the table per query. The kernel may additionally interleave
  // query pairs in registers; per-query accumulation order is fixed by the
  // spec (simd.h), so each entry stays bitwise identical to Dot().
  ActiveKernels().dot_batch(a, queries.data(), queries.size(), out.data());
}

double DotDouble(VecSpan a, VecSpan b) {
  SEESAW_CHECK_EQ(a.size(), b.size());
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    s += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  }
  return s;
}

float SquaredNorm(VecSpan a) { return Dot(a, a); }

float Norm(VecSpan a) { return std::sqrt(SquaredNorm(a)); }

float SquaredDistance(VecSpan a, VecSpan b) {
  SEESAW_CHECK_EQ(a.size(), b.size());
  float s = 0.f;
  for (size_t i = 0; i < a.size(); ++i) {
    float d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

void Axpy(float alpha, VecSpan x, MutVecSpan y) {
  SEESAW_CHECK_EQ(x.size(), y.size());
  for (size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void Scale(float alpha, MutVecSpan x) {
  for (float& v : x) v *= alpha;
}

VectorF Normalized(VecSpan a) {
  VectorF out(a.begin(), a.end());
  NormalizeInPlace(out);
  return out;
}

float NormalizeInPlace(MutVecSpan a) {
  float n = Norm(a);
  if (n > kNormEpsilon) {
    Scale(1.0f / n, a);
  }
  return n;
}

VectorF Add(VecSpan a, VecSpan b) {
  SEESAW_CHECK_EQ(a.size(), b.size());
  VectorF out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

VectorF Sub(VecSpan a, VecSpan b) {
  SEESAW_CHECK_EQ(a.size(), b.size());
  VectorF out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

VectorF Scaled(float alpha, VecSpan a) {
  VectorF out(a.begin(), a.end());
  Scale(alpha, out);
  return out;
}

float Cosine(VecSpan a, VecSpan b) {
  float na = Norm(a);
  float nb = Norm(b);
  if (na <= kNormEpsilon || nb <= kNormEpsilon) return 0.0f;
  return Dot(a, b) / (na * nb);
}

VectorF Zeros(size_t dim) { return VectorF(dim, 0.0f); }

}  // namespace seesaw::linalg
