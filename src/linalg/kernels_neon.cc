// NEON kernels (aarch64).
//
// Implements the arithmetic spec from simd.h with 128-bit fused
// multiply-adds: each 8-wide accumulator bank is a (lo, hi) float32x4 pair,
// vfmaq_f32 per 4-element half-chunk, the fixed reduction tree, and a scalar
// fused tail (std::fmaf compiles to fmadd on aarch64, same single rounding).
// NEON is baseline on aarch64, so no per-function target attributes are
// needed; dispatch still goes through the table so SEESAW_FORCE_KERNEL can
// pin the scalar reference.
//
// DotBatch pairs queries so each row chunk load feeds two accumulator
// chains; ScoreBlock walks rows through DotBatch. Per-(row, query)
// accumulation order is exactly the spec, so results are bitwise equal to
// the scalar reference and to the AVX2 kernels.
#include "linalg/simd.h"

#if defined(__aarch64__)

#include <arm_neon.h>

#include <cmath>
#include <cstddef>

namespace seesaw::linalg {
namespace {

/// Spec reduction: s = A + B lanewise, u[l] = s[l] + s[l+4],
/// result = (u0 + u1) + (u2 + u3).
inline float Reduce(float32x4_t a_lo, float32x4_t a_hi, float32x4_t b_lo,
                    float32x4_t b_hi) {
  const float32x4_t s_lo = vaddq_f32(a_lo, b_lo);  // s[0..3]
  const float32x4_t s_hi = vaddq_f32(a_hi, b_hi);  // s[4..7]
  const float32x4_t u = vaddq_f32(s_lo, s_hi);     // u[l] = s[l] + s[l+4]
  const float32x2_t p =
      vpadd_f32(vget_low_f32(u), vget_high_f32(u));  // {u0+u1, u2+u3}
  return vget_lane_f32(p, 0) + vget_lane_f32(p, 1);
}

float DotNeon(VecSpan a, VecSpan b) {
  const float* pa = a.data();
  const float* pb = b.data();
  const size_t n = a.size();
  float32x4_t a_lo = vdupq_n_f32(0.0f), a_hi = vdupq_n_f32(0.0f);
  float32x4_t b_lo = vdupq_n_f32(0.0f), b_hi = vdupq_n_f32(0.0f);
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    a_lo = vfmaq_f32(a_lo, vld1q_f32(pa + i), vld1q_f32(pb + i));
    a_hi = vfmaq_f32(a_hi, vld1q_f32(pa + i + 4), vld1q_f32(pb + i + 4));
    b_lo = vfmaq_f32(b_lo, vld1q_f32(pa + i + 8), vld1q_f32(pb + i + 8));
    b_hi = vfmaq_f32(b_hi, vld1q_f32(pa + i + 12), vld1q_f32(pb + i + 12));
  }
  if (i + 8 <= n) {
    a_lo = vfmaq_f32(a_lo, vld1q_f32(pa + i), vld1q_f32(pb + i));
    a_hi = vfmaq_f32(a_hi, vld1q_f32(pa + i + 4), vld1q_f32(pb + i + 4));
    i += 8;
  }
  float r = Reduce(a_lo, a_hi, b_lo, b_hi);
  for (; i < n; ++i) r = std::fmaf(pa[i], pb[i], r);
  return r;
}

/// One row against two queries; row chunks are loaded once.
void Dot1R2Q(const float* pa, const float* q0, const float* q1, size_t n,
             float* out0, float* out1) {
  float32x4_t a0_lo = vdupq_n_f32(0.0f), a0_hi = vdupq_n_f32(0.0f);
  float32x4_t b0_lo = vdupq_n_f32(0.0f), b0_hi = vdupq_n_f32(0.0f);
  float32x4_t a1_lo = vdupq_n_f32(0.0f), a1_hi = vdupq_n_f32(0.0f);
  float32x4_t b1_lo = vdupq_n_f32(0.0f), b1_hi = vdupq_n_f32(0.0f);
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const float32x4_t v0 = vld1q_f32(pa + i);
    const float32x4_t v1 = vld1q_f32(pa + i + 4);
    const float32x4_t v2 = vld1q_f32(pa + i + 8);
    const float32x4_t v3 = vld1q_f32(pa + i + 12);
    a0_lo = vfmaq_f32(a0_lo, v0, vld1q_f32(q0 + i));
    a0_hi = vfmaq_f32(a0_hi, v1, vld1q_f32(q0 + i + 4));
    b0_lo = vfmaq_f32(b0_lo, v2, vld1q_f32(q0 + i + 8));
    b0_hi = vfmaq_f32(b0_hi, v3, vld1q_f32(q0 + i + 12));
    a1_lo = vfmaq_f32(a1_lo, v0, vld1q_f32(q1 + i));
    a1_hi = vfmaq_f32(a1_hi, v1, vld1q_f32(q1 + i + 4));
    b1_lo = vfmaq_f32(b1_lo, v2, vld1q_f32(q1 + i + 8));
    b1_hi = vfmaq_f32(b1_hi, v3, vld1q_f32(q1 + i + 12));
  }
  if (i + 8 <= n) {
    const float32x4_t v0 = vld1q_f32(pa + i);
    const float32x4_t v1 = vld1q_f32(pa + i + 4);
    a0_lo = vfmaq_f32(a0_lo, v0, vld1q_f32(q0 + i));
    a0_hi = vfmaq_f32(a0_hi, v1, vld1q_f32(q0 + i + 4));
    a1_lo = vfmaq_f32(a1_lo, v0, vld1q_f32(q1 + i));
    a1_hi = vfmaq_f32(a1_hi, v1, vld1q_f32(q1 + i + 4));
    i += 8;
  }
  float r0 = Reduce(a0_lo, a0_hi, b0_lo, b0_hi);
  float r1 = Reduce(a1_lo, a1_hi, b1_lo, b1_hi);
  for (; i < n; ++i) {
    r0 = std::fmaf(pa[i], q0[i], r0);
    r1 = std::fmaf(pa[i], q1[i], r1);
  }
  *out0 = r0;
  *out1 = r1;
}

void DotBatchNeon(VecSpan a, const VecSpan* queries, size_t num_queries,
                  float* out) {
  size_t q = 0;
  for (; q + 2 <= num_queries; q += 2) {
    Dot1R2Q(a.data(), queries[q].data(), queries[q + 1].data(), a.size(),
            out + q, out + q + 1);
  }
  if (q < num_queries) out[q] = DotNeon(a, queries[q]);
}

void ScoreBlockNeon(const float* rows, size_t num_rows, size_t dim,
                    const VecSpan* queries, size_t num_queries, float* out) {
  for (size_t r = 0; r < num_rows; ++r) {
    DotBatchNeon(VecSpan(rows + r * dim, dim), queries, num_queries,
                 out + r * num_queries);
  }
}

// ------------------------------------------------------------- int8 family --
// Widening-multiply path (baseline NEON, no +dotprod feature probe needed):
// vmull_s8 widens 8 products to int16, vpadalq_s16 pairwise-accumulates them
// into int32 lanes. Integer sums are exact, so this matches the scalar
// reference bitwise regardless of chunking; an sdot fast path can drop in
// later behind a runtime feature check without changing results.

int32_t DotI8Neon(const int8_t* a, const int8_t* b, size_t n) {
  int32x4_t acc = vdupq_n_s32(0);
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const int8x16_t va = vld1q_s8(a + i);
    const int8x16_t vb = vld1q_s8(b + i);
    const int16x8_t lo = vmull_s8(vget_low_s8(va), vget_low_s8(vb));
    const int16x8_t hi = vmull_s8(vget_high_s8(va), vget_high_s8(vb));
    acc = vpadalq_s16(acc, lo);
    acc = vpadalq_s16(acc, hi);
  }
  int32_t r = vaddvq_s32(acc);
  for (; i < n; ++i) {
    r += static_cast<int32_t>(a[i]) * static_cast<int32_t>(b[i]);
  }
  return r;
}

void ScoreBlockI8Neon(const int8_t* rows, const float* row_scales,
                      size_t num_rows, size_t dim, const int8_t* queries,
                      const float* query_scales, size_t num_queries,
                      float* out) {
  for (size_t r = 0; r < num_rows; ++r) {
    const int8_t* row = rows + r * dim;
    for (size_t q = 0; q < num_queries; ++q) {
      const int32_t s = DotI8Neon(row, queries + q * dim, dim);
      out[r * num_queries + q] =
          static_cast<float>(s) * (row_scales[r] * query_scales[q]);
    }
  }
}

}  // namespace

namespace internal {

const KernelTable* NeonKernelsOrNull() {
  static constexpr KernelTable kTable = {"neon", DotNeon, DotBatchNeon,
                                         ScoreBlockNeon};
  return &kTable;
}

const Int8KernelTable* NeonInt8KernelsOrNull() {
  static constexpr Int8KernelTable kTable = {"neon", DotI8Neon,
                                             ScoreBlockI8Neon};
  return &kTable;
}

}  // namespace internal
}  // namespace seesaw::linalg

#else  // !aarch64

namespace seesaw::linalg::internal {
const KernelTable* NeonKernelsOrNull() { return nullptr; }
const Int8KernelTable* NeonInt8KernelsOrNull() { return nullptr; }
}  // namespace seesaw::linalg::internal

#endif
