#include "linalg/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/rng.h"

namespace seesaw::linalg {

namespace {

/// k-means++ seeding: first centroid uniform, then D^2-weighted draws.
MatrixF SeedCentroids(const MatrixF& points, size_t k, Rng& rng) {
  const size_t n = points.rows();
  const size_t d = points.cols();
  MatrixF centroids(k, d);
  size_t first = static_cast<size_t>(rng.UniformInt(0, n - 1));
  std::copy(points.Row(first).begin(), points.Row(first).end(),
            centroids.MutableRow(0).begin());

  std::vector<double> dist2(n, std::numeric_limits<double>::max());
  for (size_t c = 1; c < k; ++c) {
    // Update distances against the most recent centroid.
    for (size_t i = 0; i < n; ++i) {
      double d2 = SquaredDistance(points.Row(i), centroids.Row(c - 1));
      dist2[i] = std::min(dist2[i], d2);
    }
    dist2[first] = 0.0;
    std::vector<double> weights(dist2.begin(), dist2.end());
    double total = 0;
    for (double w : weights) total += w;
    size_t pick;
    if (total <= 0) {
      pick = static_cast<size_t>(rng.UniformInt(0, n - 1));
    } else {
      pick = rng.Categorical(weights);
    }
    std::copy(points.Row(pick).begin(), points.Row(pick).end(),
              centroids.MutableRow(c).begin());
  }
  return centroids;
}

}  // namespace

StatusOr<KMeansResult> KMeans(const MatrixF& points,
                              const KMeansOptions& options) {
  if (points.rows() == 0 || points.cols() == 0) {
    return Status::InvalidArgument("KMeans: empty input");
  }
  if (options.num_clusters == 0) {
    return Status::InvalidArgument("KMeans: need at least one cluster");
  }
  const size_t n = points.rows();
  const size_t d = points.cols();
  const size_t k = std::min(options.num_clusters, n);
  Rng rng(options.seed);

  KMeansResult result;
  result.centroids = SeedCentroids(points, k, rng);
  result.assignment.assign(n, 0);

  std::vector<size_t> counts(k, 0);
  for (int iter = 0; iter < options.max_iters; ++iter) {
    result.iterations = iter + 1;
    // Assignment step.
    size_t changed = 0;
    result.inertia = 0.0;
    for (size_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::max();
      uint32_t best_c = 0;
      for (size_t c = 0; c < k; ++c) {
        double d2 = SquaredDistance(points.Row(i), result.centroids.Row(c));
        if (d2 < best) {
          best = d2;
          best_c = static_cast<uint32_t>(c);
        }
      }
      if (result.assignment[i] != best_c) {
        result.assignment[i] = best_c;
        ++changed;
      }
      result.inertia += best;
    }
    // Update step.
    MatrixF sums(k, d, 0.0f);
    std::fill(counts.begin(), counts.end(), 0);
    for (size_t i = 0; i < n; ++i) {
      Axpy(1.0f, points.Row(i), sums.MutableRow(result.assignment[i]));
      ++counts[result.assignment[i]];
    }
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Re-seed an empty cluster at a random point.
        size_t pick = static_cast<size_t>(rng.UniformInt(0, n - 1));
        std::copy(points.Row(pick).begin(), points.Row(pick).end(),
                  result.centroids.MutableRow(c).begin());
        continue;
      }
      auto row = result.centroids.MutableRow(c);
      float inv = 1.0f / static_cast<float>(counts[c]);
      for (size_t j = 0; j < d; ++j) row[j] = sums.At(c, j) * inv;
    }
    if (static_cast<double>(changed) <
        options.reassignment_tolerance * static_cast<double>(n)) {
      break;
    }
  }
  return result;
}

}  // namespace seesaw::linalg
