// Runtime-dispatched SIMD scoring kernels.
//
// The dense inner-product scan is the hot path of the interactive loop
// (ExactStore row blocks, IVF centroid + list scoring, aligner/loss inner
// products), so Dot / DotBatch / ScoreBlock route through a per-process
// kernel table selected once by CPU-feature detection: AVX2+FMA on x86-64,
// NEON on aarch64, and a portable scalar reference everywhere.
//
// Every implementation computes the *same arithmetic spec*, so results are
// bitwise identical across kernels on a given machine — and across machines
// for all inputs whose operations don't *generate* a NaN (architectures
// disagree on the default NaN's sign bit, e.g. inf + -inf is 0xFFC00000 on
// x86 but 0x7FC00000 on aarch64; existing NaN payloads propagate
// identically):
//
//   - Eight virtual fused-multiply-add lanes, split into two banks A and B
//     that consume interleaved 8-element chunks (elements [16j, 16j+8) feed
//     bank A, [16j+8, 16j+16) feed bank B; one trailing full 8-chunk feeds
//     bank A). Each lane accumulates with a single-rounding fused
//     multiply-add — std::fmaf in the scalar reference, vfmadd/vfma in the
//     vector kernels.
//   - A fixed reduction tree: s[l] = A[l] + B[l]; u[l] = s[l] + s[l+4];
//     result = (u[0] + u[1]) + (u[2] + u[3]).
//   - The tail (n mod 8 elements) folds into the reduced sum sequentially:
//     r = fma(a[i], b[i], r).
//
// Blocked kernels (DotBatch, ScoreBlock) may interleave rows and queries in
// registers but never change the per-(row, query) accumulation order, so
// DotBatch/ScoreBlock stay bitwise equal to per-pair Dot — the invariant the
// batched query engine's parity guarantees are built on.
//
// Selection: the first call resolves SEESAW_FORCE_KERNEL
// ("scalar" | "avx2" | "avx512vnni" | "neon" | "auto"; unknown or
// unsupported values abort), else picks the best kernel the CPU supports.
// Tests switch kernels programmatically via ForceKernels().
#ifndef SEESAW_LINALG_SIMD_H_
#define SEESAW_LINALG_SIMD_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "linalg/vector_ops.h"

namespace seesaw::linalg {

/// One kernel implementation. All sizes are validated by the callers
/// (vector_ops.cc / matrix.cc); kernels assume consistent inputs.
struct KernelTable {
  /// Stable name used by SEESAW_FORCE_KERNEL and ForceKernels().
  const char* name;

  /// r = <a, b> in spec order.
  float (*dot)(VecSpan a, VecSpan b);

  /// out[q] = <a, queries[q]> for q in [0, num_queries).
  void (*dot_batch)(VecSpan a, const VecSpan* queries, size_t num_queries,
                    float* out);

  /// out[r * num_queries + q] = <row r, queries[q]> for num_rows contiguous
  /// rows of `dim` floats starting at `rows` (row stride == dim).
  void (*score_block)(const float* rows, size_t num_rows, size_t dim,
                      const VecSpan* queries, size_t num_queries, float* out);
};

/// The int8 kernel family: scoring over symmetric per-row-quantized tables
/// (linalg/quantize.h). A separate *family* from the fp32 kernels — scores
/// are not bitwise comparable across families (the cross-family gate is
/// recall@k vs the fp32 scan) — but *within* the family every kernel is
/// bitwise identical by construction: the int32 accumulation is exact, and
/// the only float operations are the two scale multiplies below, performed
/// in one fixed order:
///
///   combined = row_scale * query_scale;          // one rounding
///   out      = float(int32_sum) * combined;      // one rounding
///
/// Dispatch follows the fp32 table: the same SEESAW_FORCE_KERNEL /
/// ForceKernels() name selects both families together, so a forced-scalar CI
/// leg pins every scoring path at once.
struct Int8KernelTable {
  /// Stable name; matches the fp32 table resolved under the same name.
  const char* name;

  /// Exact int32 inner product of two int8 vectors.
  int32_t (*dot_i32)(const int8_t* a, const int8_t* b, size_t n);

  /// out[r * num_queries + q] =
  ///   float(<rows[r], queries[q]>_i32) * (row_scales[r] * query_scales[q])
  /// for num_rows contiguous int8 rows of `dim` entries (row stride == dim);
  /// queries are likewise contiguous int8 vectors of `dim` entries (query
  /// stride == dim).
  void (*score_block)(const int8_t* rows, const float* row_scales,
                      size_t num_rows, size_t dim, const int8_t* queries,
                      const float* query_scales, size_t num_queries,
                      float* out);
};

/// The portable reference implementation; always available, and the
/// ground truth the vector kernels are parity-tested against.
const KernelTable& ScalarKernels();

/// The portable int8 reference implementation; always available.
const Int8KernelTable& ScalarInt8Kernels();

/// The active table. First call resolves SEESAW_FORCE_KERNEL (aborting on an
/// unknown or unsupported name), else auto-detects. Thread-safe; the result
/// is cached in an atomic so steady-state dispatch is one load.
const KernelTable& ActiveKernels();

/// The active int8 table; resolves by the same name (and the same
/// SEESAW_FORCE_KERNEL / ForceKernels state) as ActiveKernels().
const Int8KernelTable& ActiveInt8Kernels();

/// Forces the active tables (both families) by name ("scalar", "avx2",
/// "avx512vnni", "neon"), or back to CPU auto-detection with "auto".
/// Returns false (and
/// leaves the active tables unchanged) if the name is unknown or unsupported
/// on this CPU. Intended for tests and benchmarks; not synchronized with
/// in-flight scans.
bool ForceKernels(std::string_view name);

/// Kernel names usable on this CPU, best first. Always contains "scalar".
std::vector<std::string> SupportedKernels();

/// Looks up a supported kernel table by name ("auto" resolves to CPU
/// detection); nullptr if unknown or unsupported on this CPU.
const KernelTable* FindKernels(std::string_view name);

/// Int8 counterpart of FindKernels; the same names resolve (every supported
/// fp32 table ships an int8 sibling).
const Int8KernelTable* FindInt8Kernels(std::string_view name);

namespace internal {
/// Arch-specific tables, nullptr when the CPU (or the build architecture)
/// lacks the feature. Defined unconditionally so the dispatcher links on
/// every platform.
const KernelTable* Avx2KernelsOrNull();
const KernelTable* NeonKernelsOrNull();
const Int8KernelTable* Avx2Int8KernelsOrNull();
const Int8KernelTable* NeonInt8KernelsOrNull();
/// AVX512-VNNI configuration: vpdpbusd int8 scoring paired with the AVX2
/// fp32 members (the fp32 accumulation spec is contract-pinned, and the
/// fp32 scan is DRAM-bound — wider fp32 vectors buy nothing).
const KernelTable* Avx512VnniKernelsOrNull();
const Int8KernelTable* Avx512VnniInt8KernelsOrNull();

/// Drops the cached active table so the next ActiveKernels() call re-reads
/// SEESAW_FORCE_KERNEL. Test-only.
void ResetKernelsForTest();
}  // namespace internal

}  // namespace seesaw::linalg

#endif  // SEESAW_LINALG_SIMD_H_
