// Dense row-major float32 matrix.
#ifndef SEESAW_LINALG_MATRIX_H_
#define SEESAW_LINALG_MATRIX_H_

#include <cstddef>
#include <span>
#include <vector>

#include "linalg/vector_ops.h"

namespace seesaw::linalg {

/// Row-major dense matrix of float32.
///
/// Rows are exposed as spans so embedding tables (N x d) can be scored
/// without copies. Also used for the small symmetric d x d matrix M_D.
class MatrixF {
 public:
  /// Empty 0x0 matrix.
  MatrixF() = default;

  /// rows x cols matrix initialized to `fill`.
  MatrixF(size_t rows, size_t cols, float fill = 0.0f);

  /// Builds from `rows` equally-sized vectors (must be non-empty to infer
  /// the column count, unless rows itself is empty).
  static MatrixF FromRows(const std::vector<VectorF>& rows);

  /// Identity matrix of size n x n.
  static MatrixF Identity(size_t n);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  float& At(size_t r, size_t c) { return data_[r * cols_ + c]; }
  float At(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  /// Read-only view of row r.
  VecSpan Row(size_t r) const;

  /// Mutable view of row r.
  MutVecSpan MutableRow(size_t r);

  /// y = M * x  (x has cols() entries; result has rows() entries).
  VectorF MatVec(VecSpan x) const;

  /// Blocked matrix x multi-vector scoring: fills `out` (row-major,
  /// (row_end - row_begin) x queries.size()) with the inner products of rows
  /// [row_begin, row_end) against every query. Each stored row is streamed
  /// through the cache once while all queries score against it — the batched
  /// exact-scan kernel, served by the runtime-dispatched SIMD layer
  /// (linalg/simd.h). Scores are bitwise identical to per-row Dot().
  void ScoreBlock(size_t row_begin, size_t row_end,
                  std::span<const VecSpan> queries, MutVecSpan out) const;

  /// y = M^T * x (x has rows() entries; result has cols() entries).
  VectorF TransposeMatVec(VecSpan x) const;

  /// Quadratic form x^T M x (M must be square, x must have cols() entries).
  double QuadraticForm(VecSpan x) const;

  /// M += alpha * v v^T (rank-1 update; M must be square of dim v.size()).
  void AddOuterProduct(float alpha, VecSpan v);

  /// M += alpha * u v^T (u has rows() entries, v has cols() entries).
  void AddOuterProduct(float alpha, VecSpan u, VecSpan v);

  /// M += alpha * Other (same shape).
  void AddScaled(float alpha, const MatrixF& other);

  /// Scales every entry by alpha.
  void ScaleBy(float alpha);

  /// (M + M^T) / 2, for symmetrizing numerically-asymmetric accumulations.
  MatrixF Symmetrized() const;

  /// Maximum absolute entry, 0 for empty matrices.
  float MaxAbs() const;

  /// Frobenius norm.
  double FrobeniusNorm() const;

  /// Underlying storage (row-major), e.g. for serialization.
  const std::vector<float>& data() const { return data_; }
  std::vector<float>& mutable_data() { return data_; }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<float> data_;
};

}  // namespace seesaw::linalg

#endif  // SEESAW_LINALG_MATRIX_H_
