// Kernel selection: CPU-feature detection, SEESAW_FORCE_KERNEL, and the
// cached active-table pointers. The fp32 and int8 families resolve by the
// same name in lockstep: every supported fp32 table ships an int8 sibling,
// so one forced name (or one CPU detection) pins every scoring path.
#include <atomic>
#include <cstdlib>

#include "common/check.h"
#include "linalg/simd.h"

namespace seesaw::linalg {
namespace {

/// Best table the CPU supports, in preference order.
const KernelTable* DetectKernels() {
  if (const KernelTable* t = internal::Avx512VnniKernelsOrNull()) return t;
  if (const KernelTable* t = internal::Avx2KernelsOrNull()) return t;
  if (const KernelTable* t = internal::NeonKernelsOrNull()) return t;
  return &ScalarKernels();
}

/// Name lookup over supported tables; "auto" resolves to detection.
const KernelTable* ResolveName(std::string_view name) {
  if (name == "auto") return DetectKernels();
  if (name == "scalar") return &ScalarKernels();
  if (name == "avx2") return internal::Avx2KernelsOrNull();
  if (name == "avx512vnni") return internal::Avx512VnniKernelsOrNull();
  if (name == "neon") return internal::NeonKernelsOrNull();
  return nullptr;
}

/// The int8 sibling of the table ResolveName would pick for `name`. Kept as
/// a separate lookup (not a field of KernelTable) so each family's table
/// stays a flat constexpr function-pointer struct.
const Int8KernelTable* ResolveInt8Name(std::string_view name) {
  if (name == "auto") {
    if (const Int8KernelTable* t = internal::Avx512VnniInt8KernelsOrNull()) {
      return t;
    }
    if (const Int8KernelTable* t = internal::Avx2Int8KernelsOrNull()) return t;
    if (const Int8KernelTable* t = internal::NeonInt8KernelsOrNull()) return t;
    return &ScalarInt8Kernels();
  }
  if (name == "scalar") return &ScalarInt8Kernels();
  if (name == "avx2") return internal::Avx2Int8KernelsOrNull();
  if (name == "avx512vnni") return internal::Avx512VnniInt8KernelsOrNull();
  if (name == "neon") return internal::NeonInt8KernelsOrNull();
  return nullptr;
}

std::atomic<const KernelTable*> g_active{nullptr};
std::atomic<const Int8KernelTable*> g_active_i8{nullptr};

/// First-use resolution: honor SEESAW_FORCE_KERNEL, else detect. A forced
/// kernel that is unknown or unsupported on this CPU aborts — CI legs that
/// pin a kernel must fail loudly, not silently fall back to another path.
const KernelTable* ResolveInitial() {
  // getenv is not MT-safe against setenv, but this runs once (first-use
  // resolution behind the atomic table pointer) and nothing in seesaw calls
  // setenv; the environment is effectively immutable by then.
  const char* forced = std::getenv("SEESAW_FORCE_KERNEL");  // NOLINT(concurrency-mt-unsafe)
  if (forced == nullptr || forced[0] == '\0') return DetectKernels();
  const KernelTable* t = ResolveName(forced);
  SEESAW_CHECK(t != nullptr)
      << "SEESAW_FORCE_KERNEL=" << forced
      << " is unknown or unsupported on this CPU (supported: scalar"
#if defined(__x86_64__) || defined(__i386__)
      << (internal::Avx2KernelsOrNull() != nullptr ? ", avx2" : "")
      << (internal::Avx512VnniKernelsOrNull() != nullptr ? ", avx512vnni" : "")
#endif
#if defined(__aarch64__)
      << ", neon"
#endif
      << ")";
  return t;
}

}  // namespace

const KernelTable& ActiveKernels() {
  const KernelTable* t = g_active.load(std::memory_order_acquire);
  if (t == nullptr) {
    // A racing first use resolves to the same table; the double store is
    // benign.
    t = ResolveInitial();
    g_active.store(t, std::memory_order_release);
  }
  return *t;
}

const Int8KernelTable& ActiveInt8Kernels() {
  const Int8KernelTable* t = g_active_i8.load(std::memory_order_acquire);
  if (t == nullptr) {
    // Resolve the fp32 table first (honoring SEESAW_FORCE_KERNEL / abort
    // semantics), then pick the sibling by its name. Same benign race.
    t = ResolveInt8Name(ActiveKernels().name);
    g_active_i8.store(t, std::memory_order_release);
  }
  return *t;
}

bool ForceKernels(std::string_view name) {
  const KernelTable* t = ResolveName(name);
  const Int8KernelTable* t8 = ResolveInt8Name(name);
  if (t == nullptr || t8 == nullptr) return false;
  g_active.store(t, std::memory_order_release);
  g_active_i8.store(t8, std::memory_order_release);
  return true;
}

std::vector<std::string> SupportedKernels() {
  std::vector<std::string> names;
  if (const KernelTable* t = internal::Avx512VnniKernelsOrNull()) {
    names.emplace_back(t->name);
  }
  if (const KernelTable* t = internal::Avx2KernelsOrNull()) {
    names.emplace_back(t->name);
  }
  if (const KernelTable* t = internal::NeonKernelsOrNull()) {
    names.emplace_back(t->name);
  }
  names.emplace_back(ScalarKernels().name);
  return names;
}

const KernelTable* FindKernels(std::string_view name) {
  return ResolveName(name);
}

const Int8KernelTable* FindInt8Kernels(std::string_view name) {
  return ResolveInt8Name(name);
}

namespace internal {
void ResetKernelsForTest() {
  g_active.store(nullptr, std::memory_order_release);
  g_active_i8.store(nullptr, std::memory_order_release);
}
}  // namespace internal

}  // namespace seesaw::linalg
