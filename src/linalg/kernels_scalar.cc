// Portable scalar reference kernels.
//
// This is the ground truth for the arithmetic spec in simd.h: eight fused
// lanes in two interleaved banks, the fixed reduction tree, and a sequential
// fused tail. std::fmaf is a correctly-rounded fused multiply-add on every
// conforming platform, i.e. the exact per-lane operation vfmadd/vfma perform
// in the vector kernels — so those kernels are bitwise-reproducible against
// this file on any machine.
#include <cmath>
#include <cstddef>

#include "linalg/simd.h"

namespace seesaw::linalg {
namespace {

constexpr size_t kLanes = 8;

float DotScalar(VecSpan a, VecSpan b) {
  const float* pa = a.data();
  const float* pb = b.data();
  const size_t n = a.size();
  float acc_a[kLanes] = {};
  float acc_b[kLanes] = {};
  size_t i = 0;
  for (; i + 2 * kLanes <= n; i += 2 * kLanes) {
    for (size_t l = 0; l < kLanes; ++l) {
      acc_a[l] = std::fmaf(pa[i + l], pb[i + l], acc_a[l]);
    }
    for (size_t l = 0; l < kLanes; ++l) {
      acc_b[l] = std::fmaf(pa[i + kLanes + l], pb[i + kLanes + l], acc_b[l]);
    }
  }
  if (i + kLanes <= n) {
    for (size_t l = 0; l < kLanes; ++l) {
      acc_a[l] = std::fmaf(pa[i + l], pb[i + l], acc_a[l]);
    }
    i += kLanes;
  }
  float s[kLanes];
  for (size_t l = 0; l < kLanes; ++l) s[l] = acc_a[l] + acc_b[l];
  const float u0 = s[0] + s[4];
  const float u1 = s[1] + s[5];
  const float u2 = s[2] + s[6];
  const float u3 = s[3] + s[7];
  float r = (u0 + u1) + (u2 + u3);
  for (; i < n; ++i) r = std::fmaf(pa[i], pb[i], r);
  return r;
}

void DotBatchScalar(VecSpan a, const VecSpan* queries, size_t num_queries,
                    float* out) {
  for (size_t q = 0; q < num_queries; ++q) out[q] = DotScalar(a, queries[q]);
}

void ScoreBlockScalar(const float* rows, size_t num_rows, size_t dim,
                      const VecSpan* queries, size_t num_queries, float* out) {
  for (size_t r = 0; r < num_rows; ++r) {
    DotBatchScalar(VecSpan(rows + r * dim, dim), queries, num_queries,
                   out + r * num_queries);
  }
}

// ------------------------------------------------------------- int8 family --
// The int32 accumulation is exact (|q| <= 127, so dims up to 2^17 cannot
// overflow), which makes the scalar loop the full spec: vector kernels may
// reorder the integer sums freely and still match bitwise. The only float
// ops are the two fixed-order scale multiplies in ScoreBlockI8Scalar.

int32_t DotI8Scalar(const int8_t* a, const int8_t* b, size_t n) {
  int32_t acc = 0;
  for (size_t i = 0; i < n; ++i) {
    acc += static_cast<int32_t>(a[i]) * static_cast<int32_t>(b[i]);
  }
  return acc;
}

void ScoreBlockI8Scalar(const int8_t* rows, const float* row_scales,
                        size_t num_rows, size_t dim, const int8_t* queries,
                        const float* query_scales, size_t num_queries,
                        float* out) {
  for (size_t r = 0; r < num_rows; ++r) {
    const int8_t* row = rows + r * dim;
    for (size_t q = 0; q < num_queries; ++q) {
      const int32_t acc = DotI8Scalar(row, queries + q * dim, dim);
      const float combined = row_scales[r] * query_scales[q];
      out[r * num_queries + q] = static_cast<float>(acc) * combined;
    }
  }
}

}  // namespace

const KernelTable& ScalarKernels() {
  static constexpr KernelTable kTable = {"scalar", DotScalar, DotBatchScalar,
                                         ScoreBlockScalar};
  return kTable;
}

const Int8KernelTable& ScalarInt8Kernels() {
  static constexpr Int8KernelTable kTable = {"scalar", DotI8Scalar,
                                             ScoreBlockI8Scalar};
  return kTable;
}

}  // namespace seesaw::linalg
