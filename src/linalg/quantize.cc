#include "linalg/quantize.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace seesaw::linalg {

namespace {

/// Largest |x| over a span; 0 for empty spans.
float MaxAbs(VecSpan v) {
  float m = 0.0f;
  for (float x : v) m = std::max(m, std::fabs(x));
  return m;
}

/// Quantizes `src` with a known scale into `out` (sized already).
void QuantizeWithScale(VecSpan src, float scale, int8_t* out) {
  const float inv = 1.0f / scale;
  for (size_t i = 0; i < src.size(); ++i) {
    // nearbyintf rounds to nearest-even under the default rounding mode —
    // the same on every platform, keeping quantized tables reproducible.
    float q = std::nearbyintf(src[i] * inv);
    q = std::min(127.0f, std::max(-127.0f, q));
    out[i] = static_cast<int8_t>(q);
  }
}

}  // namespace

float QuantizeVector(VecSpan src, std::vector<int8_t>* out) {
  out->resize(src.size());
  return QuantizeVectorInto(src, out->data());
}

float QuantizeVectorInto(VecSpan src, int8_t* out) {
  const float max_abs = MaxAbs(src);
  // An all-zero (or empty) vector quantizes to zeros with unit scale, so
  // dequantization is exact and no division by zero occurs.
  const float scale = max_abs > 0.0f ? max_abs / 127.0f : 1.0f;
  QuantizeWithScale(src, scale, out);
  return scale;
}

QuantizedVector QuantizeQuery(VecSpan query) {
  QuantizedVector q;
  q.scale = QuantizeVector(query, &q.data);
  return q;
}

QuantizedTable QuantizeRows(const MatrixF& table) {
  QuantizedTable out;
  out.rows = table.rows();
  out.cols = table.cols();
  out.data.resize(out.rows * out.cols);
  out.scales.resize(out.rows);
  for (size_t r = 0; r < out.rows; ++r) {
    VecSpan row = table.Row(r);
    const float max_abs = MaxAbs(row);
    const float scale = max_abs > 0.0f ? max_abs / 127.0f : 1.0f;
    out.scales[r] = scale;
    QuantizeWithScale(row, scale, out.data.data() + r * out.cols);
  }
  return out;
}

VectorF DequantizeRow(const QuantizedTable& table, size_t r) {
  SEESAW_CHECK_LT(r, table.rows);
  VectorF out(table.cols);
  const int8_t* q = table.Row(r);
  const float scale = table.scales[r];
  for (size_t i = 0; i < table.cols; ++i) {
    out[i] = static_cast<float>(q[i]) * scale;
  }
  return out;
}

}  // namespace seesaw::linalg
