// Internal invariant checks. These are for programmer errors (bugs), not for
// recoverable conditions — recoverable conditions use Status.
#ifndef SEESAW_COMMON_CHECK_H_
#define SEESAW_COMMON_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace seesaw {
namespace internal {

/// Accumulates a failure message and aborts the process on destruction.
class CheckFailStream {
 public:
  CheckFailStream(const char* condition, const char* file, int line) {
    stream_ << "SEESAW_CHECK failed: " << condition << " at " << file << ":"
            << line << " ";
  }

  [[noreturn]] ~CheckFailStream() {
    // '\n', not std::endl: std::cerr is unit-buffered, so the explicit flush
    // would be redundant (and clang-tidy's performance-avoid-endl agrees).
    std::cerr << stream_.str() << '\n';
    std::abort();
  }

  template <typename T>
  CheckFailStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace seesaw

/// Aborts with a message when `cond` is false. Enabled in all build types:
/// seesaw is a research-grade library where silent corruption is worse than
/// a crash, matching the RocksDB assert-in-release philosophy for invariants.
#define SEESAW_CHECK(cond)       \
  if (cond) {                    \
  } else /* NOLINT */            \
    ::seesaw::internal::CheckFailStream(#cond, __FILE__, __LINE__)

#define SEESAW_CHECK_EQ(a, b) SEESAW_CHECK((a) == (b))
#define SEESAW_CHECK_NE(a, b) SEESAW_CHECK((a) != (b))
#define SEESAW_CHECK_LT(a, b) SEESAW_CHECK((a) < (b))
#define SEESAW_CHECK_LE(a, b) SEESAW_CHECK((a) <= (b))
#define SEESAW_CHECK_GT(a, b) SEESAW_CHECK((a) > (b))
#define SEESAW_CHECK_GE(a, b) SEESAW_CHECK((a) >= (b))

#endif  // SEESAW_COMMON_CHECK_H_
