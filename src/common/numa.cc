#include "common/numa.h"

#include <cstddef>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#if defined(__linux__)
#include <sched.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace seesaw::numa {

#if defined(__linux__)

namespace {

// Node ids handled by this module are *logical* indices into the online-node
// list (dense, 0..NodeCount()-1); the kernel's possibly-sparse physical ids
// stay internal to Topology. Callers only ever round-robin over NodeCount(),
// so a dense index is the honest external contract — physical ids would leak
// sysfs quirks into every `shard % NodeCount()` site.
struct Topology {
  std::vector<int> physical_ids;        // logical node -> physical node id
  std::vector<std::vector<int>> cpus;   // logical node -> cpu ids
  std::vector<int> cpu_to_node;         // cpu id -> logical node (or 0)
};

std::string ReadSysfsLine(const std::string& path) {
  std::ifstream in(path);
  if (!in) return "";
  std::string line;
  std::getline(in, line);
  return line;
}

// Parses the sysfs list format: "0", "0-3", "0,2,4-7".
std::vector<int> ParseIdList(const std::string& text) {
  std::vector<int> ids;
  std::stringstream ss(text);
  std::string range;
  while (std::getline(ss, range, ',')) {
    if (range.empty()) continue;
    size_t dash = range.find('-');
    try {
      if (dash == std::string::npos) {
        ids.push_back(std::stoi(range));
      } else {
        int lo = std::stoi(range.substr(0, dash));
        int hi = std::stoi(range.substr(dash + 1));
        for (int id = lo; id <= hi; ++id) ids.push_back(id);
      }
    } catch (...) {
      return {};  // malformed sysfs -> treat topology as unreadable
    }
  }
  return ids;
}

Topology DiscoverTopology() {
  Topology topo;
  const std::string base = "/sys/devices/system/node";
  for (int phys : ParseIdList(ReadSysfsLine(base + "/online"))) {
    std::vector<int> cpus = ParseIdList(
        ReadSysfsLine(base + "/node" + std::to_string(phys) + "/cpulist"));
    // Memory-only nodes (no CPUs — CXL expanders, some HBM configs) are
    // skipped: the placement model here co-locates compute with data, and a
    // node nothing can be pinned to breaks the round-robin assumption that
    // shard i's pages and shard i's workers share a node.
    if (cpus.empty()) continue;
    int logical = static_cast<int>(topo.physical_ids.size());
    for (int cpu : cpus) {
      if (cpu >= static_cast<int>(topo.cpu_to_node.size())) {
        topo.cpu_to_node.resize(cpu + 1, 0);
      }
      topo.cpu_to_node[cpu] = logical;
    }
    topo.physical_ids.push_back(phys);
    topo.cpus.push_back(std::move(cpus));
  }
  if (topo.physical_ids.empty()) {
    // Unreadable sysfs (containers sometimes mask it): behave as one node.
    topo.physical_ids.push_back(0);
    topo.cpus.emplace_back();
  }
  return topo;
}

const Topology& GetTopology() {
  static const Topology topo = DiscoverTopology();  // magic-static: race-free
  return topo;
}

// mbind(2) policy constants, defined locally because they live in
// <numaif.h>, which ships with libnuma's dev package — a dependency this
// repo deliberately does not take. Values are kernel ABI (uapi/linux/
// mempolicy.h) and cannot change.
constexpr int kMpolBind = 2;
constexpr unsigned kMpolMfMove = 1u << 1;  // migrate already-touched pages

}  // namespace

bool Available() { return GetTopology().physical_ids.size() > 1; }

size_t NodeCount() { return GetTopology().physical_ids.size(); }

const std::vector<int>& CpusOfNode(size_t node) {
  static const std::vector<int> empty;
  const Topology& topo = GetTopology();
  if (node >= topo.cpus.size()) return empty;
  return topo.cpus[node];
}

size_t CurrentNode() {
  int cpu = sched_getcpu();
  const Topology& topo = GetTopology();
  if (cpu < 0 || cpu >= static_cast<int>(topo.cpu_to_node.size())) return 0;
  return static_cast<size_t>(topo.cpu_to_node[cpu]);
}

Placement PinThreadToNode(size_t node) {
  if (!Available()) return Placement::kDegraded;
  const std::vector<int>& cpus = CpusOfNode(node);
  if (cpus.empty()) return Placement::kDegraded;
  cpu_set_t set;
  CPU_ZERO(&set);
  for (int cpu : cpus) {
    if (cpu >= 0 && cpu < CPU_SETSIZE) CPU_SET(cpu, &set);
  }
  if (sched_setaffinity(0, sizeof(set), &set) != 0) {
    return Placement::kDegraded;  // cgroup cpuset may forbid these CPUs
  }
  return Placement::kApplied;
}

Placement BindMemoryToNode(void* ptr, size_t bytes, size_t node) {
  const Topology& topo = GetTopology();
  if (!Available() || node >= topo.physical_ids.size() || ptr == nullptr) {
    return Placement::kDegraded;
  }
  // Round inward to page boundaries: mbind requires a page-aligned start,
  // and the partial head/tail pages of a heap buffer are shared with
  // whatever the allocator packed next to it — migrating those would move
  // a stranger's data too.
  const size_t page = static_cast<size_t>(sysconf(_SC_PAGESIZE));
  uintptr_t begin = reinterpret_cast<uintptr_t>(ptr);
  uintptr_t end = begin + bytes;
  begin = (begin + page - 1) & ~(page - 1);
  end &= ~(page - 1);
  if (begin >= end) return Placement::kDegraded;  // sub-page range

  const int phys = topo.physical_ids[node];
  constexpr size_t kMaskWords = 16;  // 1024 nodes, far above any real host
  unsigned long mask[kMaskWords];
  std::memset(mask, 0, sizeof(mask));
  if (static_cast<size_t>(phys) >= kMaskWords * sizeof(unsigned long) * 8) {
    return Placement::kDegraded;
  }
  mask[phys / (sizeof(unsigned long) * 8)] |=
      1ul << (phys % (sizeof(unsigned long) * 8));
  long rc = syscall(SYS_mbind, reinterpret_cast<void*>(begin),
                    static_cast<unsigned long>(end - begin), kMpolBind, mask,
                    static_cast<unsigned long>(kMaskWords *
                                               sizeof(unsigned long) * 8),
                    kMpolMfMove);
  // A refused mbind (seccomp filter, CONFIG_NUMA=n, EPERM on locked pages)
  // degrades rather than errors — see the header contract: placement is an
  // optimization and the scan is bitwise-identical either way.
  return rc == 0 ? Placement::kApplied : Placement::kDegraded;
}

#else  // !defined(__linux__)

bool Available() { return false; }

size_t NodeCount() { return 1; }

const std::vector<int>& CpusOfNode(size_t) {
  static const std::vector<int> empty;
  return empty;
}

size_t CurrentNode() { return 0; }

Placement PinThreadToNode(size_t) { return Placement::kDegraded; }

Placement BindMemoryToNode(void*, size_t, size_t) {
  return Placement::kDegraded;
}

#endif

}  // namespace seesaw::numa
