// Self-profiling counters for the memory-audit benches: counters, not vibes.
//
// The alignment/placement work in this repo is only claimable with numbers,
// and wall-clock alone cannot distinguish "less coherence traffic" from
// scheduler luck. This header gives the diag/bench tools two tiers of
// evidence, best-effort in this order:
//
//  1. Hardware events via perf_event_open(2), self-profiling only (pid=0,
//     no capabilities needed at perf_event_paranoid <= 2): cache
//     references/misses, instructions, cycles. Virtualized CI runners
//     usually expose no PMU — every open fails cleanly and
//     hardware_available() is false.
//  2. Software events that exist everywhere on Linux: minor page faults and
//     voluntary/involuntary context switches from getrusage(2), and thread
//     CPU time from CLOCK_THREAD_CPUTIME_ID. Page-fault deltas are the
//     allocation-churn witness (fresh large buffers fault their pages in;
//     arena-reused buffers fault zero), which is exactly the satellite
//     claim the scratch-arena fix needs to prove on PMU-less hosts.
//
// Non-Linux builds compile the stub branch: everything reports unavailable
// and zero deltas. Consumers must treat -1 as "not measured", never as 0.
#ifndef SEESAW_COMMON_HW_COUNTERS_H_
#define SEESAW_COMMON_HW_COUNTERS_H_

#include <cstdint>

namespace seesaw::hw {

/// Deltas over one measured region. -1 = this counter was not available.
struct CounterDeltas {
  int64_t cache_references = -1;  // hardware: LLC references
  int64_t cache_misses = -1;      // hardware: LLC misses
  int64_t instructions = -1;      // hardware
  int64_t cycles = -1;            // hardware
  int64_t minor_faults = -1;      // software: getrusage ru_minflt
  int64_t ctx_switches = -1;      // software: voluntary + involuntary
  int64_t thread_cpu_ns = -1;     // software: CLOCK_THREAD_CPUTIME_ID
};

/// One measurement scope over the calling thread. Not thread-safe; create
/// one per measuring thread. Counting runs from Start() to Read() (Read
/// does not stop the counters, so consecutive Start/Read pairs can reuse
/// one instance across bench iterations).
class CounterScope {
 public:
  /// Opens the perf fds (or records their absence). Cheap enough to build
  /// per bench phase; the fds live until destruction.
  CounterScope();
  ~CounterScope();

  CounterScope(const CounterScope&) = delete;
  CounterScope& operator=(const CounterScope&) = delete;

  /// True when at least the cache reference/miss pair opened — the signal
  /// the alignment A/Bs need. Software counters work regardless.
  bool hardware_available() const { return hardware_available_; }

  /// Snapshots the baseline. Call immediately before the measured region.
  void Start();

  /// Deltas since the last Start().
  CounterDeltas Read();

 private:
  struct Baseline {
    int64_t values[4] = {0, 0, 0, 0};  // perf readings, parallel to fds_
    int64_t minor_faults = 0;
    int64_t ctx_switches = 0;
    int64_t thread_cpu_ns = 0;
  };

  void ReadRaw(Baseline* out) const;

  int fds_[4] = {-1, -1, -1, -1};  // refs, misses, instructions, cycles
  bool hardware_available_ = false;
  Baseline start_;
};

}  // namespace seesaw::hw

#endif  // SEESAW_COMMON_HW_COUNTERS_H_
