#include "common/binary_io.h"

namespace seesaw {

// ---------------------------------------------------------- BinaryWriter --

StatusOr<BinaryWriter> BinaryWriter::Open(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot open for writing: " + path);
  }
  return BinaryWriter(f);
}

BinaryWriter& BinaryWriter::operator=(BinaryWriter&& other) noexcept {
  if (this != &other) {
    if (file_ != nullptr) std::fclose(file_);
    file_ = other.file_;
    other.file_ = nullptr;
  }
  return *this;
}

BinaryWriter::~BinaryWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

Status BinaryWriter::WriteRaw(const void* data, size_t bytes) {
  if (file_ == nullptr) return Status::FailedPrecondition("writer closed");
  if (bytes == 0) return Status::OK();
  if (std::fwrite(data, 1, bytes, file_) != bytes) {
    return Status::IoError("short write");
  }
  return Status::OK();
}

Status BinaryWriter::WriteU32(uint32_t v) { return WriteRaw(&v, sizeof(v)); }
Status BinaryWriter::WriteU64(uint64_t v) { return WriteRaw(&v, sizeof(v)); }
Status BinaryWriter::WriteF32(float v) { return WriteRaw(&v, sizeof(v)); }
Status BinaryWriter::WriteF64(double v) { return WriteRaw(&v, sizeof(v)); }

Status BinaryWriter::WriteString(const std::string& s) {
  SEESAW_RETURN_IF_ERROR(WriteU64(s.size()));
  return WriteRaw(s.data(), s.size());
}

Status BinaryWriter::WriteFloats(const float* data, size_t count) {
  return WriteRaw(data, count * sizeof(float));
}

Status BinaryWriter::WriteU32s(const uint32_t* data, size_t count) {
  return WriteRaw(data, count * sizeof(uint32_t));
}

Status BinaryWriter::Close() {
  if (file_ == nullptr) return Status::OK();
  int rc = std::fclose(file_);
  file_ = nullptr;
  if (rc != 0) return Status::IoError("close failed");
  return Status::OK();
}

// ---------------------------------------------------------- BinaryReader --

StatusOr<BinaryReader> BinaryReader::Open(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("cannot open for reading: " + path);
  }
  return BinaryReader(f);
}

BinaryReader& BinaryReader::operator=(BinaryReader&& other) noexcept {
  if (this != &other) {
    if (file_ != nullptr) std::fclose(file_);
    file_ = other.file_;
    other.file_ = nullptr;
  }
  return *this;
}

BinaryReader::~BinaryReader() {
  if (file_ != nullptr) std::fclose(file_);
}

Status BinaryReader::ReadRaw(void* data, size_t bytes) {
  if (file_ == nullptr) return Status::FailedPrecondition("reader closed");
  if (bytes == 0) return Status::OK();
  if (std::fread(data, 1, bytes, file_) != bytes) {
    return Status::IoError("short read (truncated or corrupt file)");
  }
  return Status::OK();
}

StatusOr<uint32_t> BinaryReader::ReadU32() {
  uint32_t v = 0;
  SEESAW_RETURN_IF_ERROR(ReadRaw(&v, sizeof(v)));
  return v;
}

StatusOr<uint64_t> BinaryReader::ReadU64() {
  uint64_t v = 0;
  SEESAW_RETURN_IF_ERROR(ReadRaw(&v, sizeof(v)));
  return v;
}

StatusOr<float> BinaryReader::ReadF32() {
  float v = 0;
  SEESAW_RETURN_IF_ERROR(ReadRaw(&v, sizeof(v)));
  return v;
}

StatusOr<double> BinaryReader::ReadF64() {
  double v = 0;
  SEESAW_RETURN_IF_ERROR(ReadRaw(&v, sizeof(v)));
  return v;
}

StatusOr<std::string> BinaryReader::ReadString() {
  SEESAW_ASSIGN_OR_RETURN(uint64_t size, ReadU64());
  // 1 GiB guard against corrupt length prefixes.
  if (size > (1ull << 30)) return Status::IoError("string length implausible");
  std::string s(size, '\0');
  SEESAW_RETURN_IF_ERROR(ReadRaw(s.data(), size));
  return s;
}

Status BinaryReader::ReadFloats(float* data, size_t count) {
  return ReadRaw(data, count * sizeof(float));
}

Status BinaryReader::ReadU32s(uint32_t* data, size_t count) {
  return ReadRaw(data, count * sizeof(uint32_t));
}

}  // namespace seesaw
