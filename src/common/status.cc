#include "common/status.h"

namespace seesaw {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}

Status::Status(StatusCode code, std::string message) {
  if (code != StatusCode::kOk) {
    state_ = std::make_shared<const State>(State{code, std::move(message)});
  }
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code()));
  out += ": ";
  out += message();
  return out;
}

}  // namespace seesaw
