// Minimal leveled logging to stderr.
#ifndef SEESAW_COMMON_LOGGING_H_
#define SEESAW_COMMON_LOGGING_H_

#include <iostream>
#include <sstream>
#include <string>

namespace seesaw {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);

/// Current global minimum level.
LogLevel GetLogLevel();

namespace internal {

/// Buffers one log statement and emits it (with level prefix) on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace seesaw

#define SEESAW_LOG(level)                                               \
  ::seesaw::internal::LogMessage(::seesaw::LogLevel::k##level, __FILE__, \
                                 __LINE__)

#endif  // SEESAW_COMMON_LOGGING_H_
