// Status: error-signaling type used across all seesaw public APIs.
//
// Follows the RocksDB / Apache Arrow idiom: library code never throws across
// an API boundary; fallible operations return Status (or StatusOr<T>, see
// statusor.h) and callers are expected to inspect it.
#ifndef SEESAW_COMMON_STATUS_H_
#define SEESAW_COMMON_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace seesaw {

/// Canonical error categories, loosely modeled after absl::StatusCode.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kFailedPrecondition = 4,
  kOutOfRange = 5,
  kUnimplemented = 6,
  kInternal = 7,
  kResourceExhausted = 8,
  kIoError = 9,
  kDeadlineExceeded = 10,
  kCancelled = 11,
};

/// Human-readable name for a StatusCode ("OK", "InvalidArgument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// Result of an operation that can fail.
///
/// A Status is cheap to copy in the success case (single pointer, no
/// allocation); error states carry a code and a message. Typical use:
///
///   Status s = store.Add(id, vec);
///   if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with the given code and message. `code` must not be
  /// kOk; use the default constructor for success.
  Status(StatusCode code, std::string message);

  /// Returns an OK status (synonym of the default constructor, for symmetry
  /// with the named error factories below).
  static Status OK() { return Status(); }

  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  /// True iff this status represents success.
  bool ok() const { return state_ == nullptr; }

  /// The status code; kOk for success states.
  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }

  /// The error message; empty for success states.
  const std::string& message() const {
    static const std::string kEmpty;
    return ok() ? kEmpty : state_->message;
  }

  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsFailedPrecondition() const {
    return code() == StatusCode::kFailedPrecondition;
  }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsUnimplemented() const { return code() == StatusCode::kUnimplemented; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsDeadlineExceeded() const {
    return code() == StatusCode::kDeadlineExceeded;
  }
  bool IsCancelled() const { return code() == StatusCode::kCancelled; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code() == b.code() && a.message() == b.message();
  }
  friend bool operator!=(const Status& a, const Status& b) { return !(a == b); }

 private:
  struct State {
    StatusCode code;
    std::string message;
  };
  // nullptr means OK. shared_ptr keeps copies cheap and the type regular.
  std::shared_ptr<const State> state_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Propagates an error Status from an expression to the caller.
#define SEESAW_RETURN_IF_ERROR(expr)                \
  do {                                              \
    ::seesaw::Status _seesaw_status = (expr);       \
    if (!_seesaw_status.ok()) return _seesaw_status; \
  } while (0)

}  // namespace seesaw

#endif  // SEESAW_COMMON_STATUS_H_
