// Cache-line layout primitives for the hot-path memory audit.
//
// Two distinct problems, one mechanism:
//
//  - *False sharing*: two logically independent fields written by different
//    threads land on one 64-byte cache line, so every write by one core
//    invalidates the other core's line and both pay a coherence round trip.
//    The classic shape in this repo is a block of contended atomics declared
//    back to back (admission counters next to stat counters in SeeSawServer,
//    a completion flag next to its mutex in TaskHandle::State).
//
//  - *Shared-line churn around a spinning reader*: a waiter polling an
//    atomic (HelpUntil predicates) re-fetches the line on every probe; if
//    unrelated writes keep dirtying that line, the poll loop degrades into a
//    coherence storm even though the flag itself never changes.
//
// The fix is the same for both: give each contended field its own cache
// line via alignas. CacheAligned<T> packages that so call sites say what
// they mean, and scripts/check_invariants.py (rule `atomic-layout`) flags
// structs that pack contended atomics without either this annotation or a
// documented exemption.
//
// kCacheLineSize is fixed at 64 rather than read from
// std::hardware_destructive_interference_size: the interference constants
// are not ABI-stable across GCC versions (GCC even warns on use), and every
// x86-64/AArch64 target this repo builds for has 64-byte lines (some Apple
// cores have 128-byte L2 lines; a miss there costs one extra shared line,
// not correctness).
#ifndef SEESAW_COMMON_ALIGNED_H_
#define SEESAW_COMMON_ALIGNED_H_

#include <cstddef>

namespace seesaw {

/// The coherence granularity padding targets (see header comment for why
/// this is a constant and not hardware_destructive_interference_size).
inline constexpr size_t kCacheLineSize = 64;

/// Wraps a field so it owns its cache line outright: the alignas places
/// `value` at a line boundary, and the alignment rounds sizeof up to a full
/// line, so nothing before *or* after shares the line. Use for contended
/// atomics (counters bumped by many threads, flags polled by waiters) that
/// would otherwise be packed against neighbors.
///
/// Deliberately a plain aggregate — access is `x.value`, not an implicit
/// conversion — so call sites stay greppable and the wrapper can't hide in
/// arithmetic.
template <typename T>
struct alignas(kCacheLineSize) CacheAligned {
  T value{};
};

static_assert(sizeof(CacheAligned<char>) == kCacheLineSize,
              "CacheAligned must round its footprint up to one full line");
static_assert(alignof(CacheAligned<char>) == kCacheLineSize,
              "CacheAligned must start on a line boundary");

}  // namespace seesaw

#endif  // SEESAW_COMMON_ALIGNED_H_
