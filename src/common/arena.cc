#include "common/arena.h"

#include <algorithm>

#include "common/check.h"

namespace seesaw {

namespace {

/// Floor for fresh blocks: one page. Most scans want tens of KiB; starting
/// at a page keeps the first warm-up growth chain short without committing
/// every arena to a large footprint.
constexpr size_t kMinBlockBytes = 4096;

size_t RoundUpToLine(size_t bytes) {
  return (bytes + kCacheLineSize - 1) & ~(kCacheLineSize - 1);
}

}  // namespace

ScratchArena::Block ScratchArena::NewBlock(size_t capacity) {
  Block block;
  // Over-allocate one line so the base can be rounded up to an aligned
  // address (operator new[] only guarantees alignof(max_align_t)).
  block.storage = std::make_unique<std::byte[]>(capacity + kCacheLineSize);
  auto raw = reinterpret_cast<uintptr_t>(block.storage.get());
  block.base = block.storage.get() +
               (RoundUpToLine(raw) - raw);
  block.capacity = capacity;
  block.used = 0;
  return block;
}

void* ScratchArena::AllocBytes(size_t bytes) {
  bytes = RoundUpToLine(bytes);
  if (current_.used + bytes > current_.capacity) {
    // Outgrown: retire the current block (its spans must stay valid until
    // Reset) and continue bumping in a bigger one. Doubling keeps warm-up
    // to O(log total) mallocs; Reset coalesces so this happens once.
    const size_t grown = std::max(
        {kMinBlockBytes, bytes, current_.capacity * 2});
    if (current_.capacity > 0) retired_.push_back(std::move(current_));
    current_ = NewBlock(grown);
  }
  void* out = current_.base + current_.used;
  current_.used += bytes;
  return out;
}

void ScratchArena::Reset() {
  if (!retired_.empty()) {
    // The cycle outgrew the block layout: replace everything with one block
    // sized to the true high-water use, so the next same-shaped cycle fits
    // without growing. (Freeing the old blocks here is the last allocator
    // traffic this arena generates for that shape.)
    size_t total = current_.used;
    for (const Block& b : retired_) total += b.used;
    retired_.clear();
    current_ = NewBlock(std::max(kMinBlockBytes, RoundUpToLine(total)));
  }
  current_.used = 0;
}

size_t ScratchArena::capacity_bytes() const {
  size_t total = current_.capacity;
  for (const Block& b : retired_) total += b.capacity;
  return total;
}

ScratchPool::Lease ScratchPool::Acquire() {
  std::unique_ptr<ScratchArena> arena;
  {
    MutexLock lock(mu_);
    if (!idle_.empty()) {
      arena = std::move(idle_.back());
      idle_.pop_back();
    } else {
      arena = std::make_unique<ScratchArena>();
      ++created_;
    }
    ++outstanding_;
  }
  return Lease(this, std::move(arena));
}

void ScratchPool::Return(std::unique_ptr<ScratchArena> arena) {
  MutexLock lock(mu_);
  SEESAW_CHECK_GT(outstanding_, 0u);
  --outstanding_;
  idle_.push_back(std::move(arena));
}

size_t ScratchPool::created() const {
  MutexLock lock(mu_);
  return created_;
}

size_t ScratchPool::outstanding() const {
  MutexLock lock(mu_);
  return outstanding_;
}

void ScratchPool::Lease::Release() {
  if (pool_ == nullptr) return;
  // Reset outside the pool lock (it may free retired blocks), then return.
  arena_->Reset();
  pool_->Return(std::move(arena_));
  pool_ = nullptr;
}

ScratchPool& GlobalScanScratch() {
  static ScratchPool* pool = new ScratchPool;  // leaked; see header
  return *pool;
}

}  // namespace seesaw
