#include "common/hw_counters.h"

#include <cstring>

#if defined(__linux__)
#include <sys/ioctl.h>
#include <sys/resource.h>
#include <sys/syscall.h>
#include <time.h>
#include <unistd.h>
#if __has_include(<linux/perf_event.h>)
#include <linux/hw_breakpoint.h>  // IWYU pragma: keep (perf_event_attr bp fields)
#include <linux/perf_event.h>
#define SEESAW_HAVE_PERF_EVENT 1
#endif
#endif

namespace seesaw::hw {

#if defined(__linux__)

namespace {

#if defined(SEESAW_HAVE_PERF_EVENT)
int OpenHardwareCounter(uint64_t config) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.type = PERF_TYPE_HARDWARE;
  attr.size = sizeof(attr);
  attr.config = config;
  attr.disabled = 0;
  attr.exclude_kernel = 1;  // self-profiling: paranoid<=2 allows user-only
  attr.exclude_hv = 1;
  // pid=0, cpu=-1: this thread, wherever it runs — exactly the scope the
  // bench loops measure. No group leader; counters are read independently
  // (a skewed few-cycle window between reads is far below the effects the
  // A/Bs look for).
  return static_cast<int>(
      syscall(SYS_perf_event_open, &attr, 0, -1, -1, 0));
}
#endif

int64_t ReadCounterFd(int fd) {
  if (fd < 0) return -1;
  int64_t value = 0;
  if (read(fd, &value, sizeof(value)) != sizeof(value)) return -1;
  return value;
}

int64_t ThreadCpuNs() {
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<int64_t>(ts.tv_sec) * 1000000000 + ts.tv_nsec;
}

}  // namespace

CounterScope::CounterScope() {
#if defined(SEESAW_HAVE_PERF_EVENT)
  static constexpr uint64_t kConfigs[4] = {
      PERF_COUNT_HW_CACHE_REFERENCES, PERF_COUNT_HW_CACHE_MISSES,
      PERF_COUNT_HW_INSTRUCTIONS, PERF_COUNT_HW_CPU_CYCLES};
  for (int i = 0; i < 4; ++i) fds_[i] = OpenHardwareCounter(kConfigs[i]);
  // The A/Bs key off the cache pair; instructions/cycles are garnish.
  hardware_available_ = fds_[0] >= 0 && fds_[1] >= 0;
#endif
}

CounterScope::~CounterScope() {
  for (int fd : fds_) {
    if (fd >= 0) close(fd);
  }
}

void CounterScope::ReadRaw(Baseline* out) const {
  for (int i = 0; i < 4; ++i) out->values[i] = ReadCounterFd(fds_[i]);
  rusage usage;
  if (getrusage(RUSAGE_THREAD, &usage) == 0) {
    out->minor_faults = usage.ru_minflt;
    out->ctx_switches = usage.ru_nvcsw + usage.ru_nivcsw;
  }
  out->thread_cpu_ns = ThreadCpuNs();
}

void CounterScope::Start() { ReadRaw(&start_); }

CounterDeltas CounterScope::Read() {
  Baseline now;
  ReadRaw(&now);
  CounterDeltas d;
  auto delta = [](int64_t begin, int64_t end) {
    return (begin < 0 || end < 0) ? int64_t{-1} : end - begin;
  };
  d.cache_references = delta(start_.values[0], now.values[0]);
  d.cache_misses = delta(start_.values[1], now.values[1]);
  d.instructions = delta(start_.values[2], now.values[2]);
  d.cycles = delta(start_.values[3], now.values[3]);
  d.minor_faults = now.minor_faults - start_.minor_faults;
  d.ctx_switches = now.ctx_switches - start_.ctx_switches;
  d.thread_cpu_ns = now.thread_cpu_ns - start_.thread_cpu_ns;
  return d;
}

#else  // !defined(__linux__)

CounterScope::CounterScope() = default;
CounterScope::~CounterScope() = default;
void CounterScope::ReadRaw(Baseline*) const {}
void CounterScope::Start() {}
CounterDeltas CounterScope::Read() { return CounterDeltas{}; }

#endif

}  // namespace seesaw::hw
