#include "common/rng.h"

#include <numeric>
#include <unordered_set>

#include "common/check.h"

namespace seesaw {

size_t Rng::Categorical(const std::vector<double>& weights) {
  SEESAW_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    SEESAW_CHECK_GE(w, 0.0);
    total += w;
  }
  SEESAW_CHECK_GT(total, 0.0) << "categorical weights sum to zero";
  double r = Uniform() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  return weights.size() - 1;  // numeric round-off fell past the end
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  SEESAW_CHECK_LE(k, n);
  if (k == 0) return {};
  // For dense draws, shuffle a full index vector; for sparse draws, reject.
  if (k * 3 >= n) {
    std::vector<size_t> idx(n);
    std::iota(idx.begin(), idx.end(), size_t{0});
    Shuffle(idx);
    idx.resize(k);
    return idx;
  }
  std::unordered_set<size_t> seen;
  std::vector<size_t> out;
  out.reserve(k);
  while (out.size() < k) {
    size_t c = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(n) - 1));
    if (seen.insert(c).second) out.push_back(c);
  }
  return out;
}

}  // namespace seesaw
