// Fixed-size worker pool used for data-parallel preprocessing (embedding,
// kNN-graph construction, index builds) and for the shared lookup pool of
// concurrent search sessions (sharded scans, speculative prefetch).
#ifndef SEESAW_COMMON_THREAD_POOL_H_
#define SEESAW_COMMON_THREAD_POOL_H_

#include <atomic>
#include <cstddef>
#include <functional>
#include <memory>
#include <queue>
#include <thread>
#include <vector>

#include "common/aligned.h"
#include "common/cancellation.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace seesaw {

class ThreadPool;

/// Waitable completion handle for one submitted task.
///
/// Obtained from ThreadPool::SubmitWithResult. Waiting blocks only on that
/// one task — never on unrelated pool work — and a waiter that is itself a
/// pool task helps drain the queue instead of parking, so waiting on a
/// handle from inside the pool cannot deadlock. Copies share one completion
/// state; the handle stays valid after the task finishes.
class TaskHandle {
 public:
  /// An empty handle; valid() is false and Wait()/done() must not be called.
  TaskHandle() = default;

  bool valid() const { return state_ != nullptr; }

  /// Whether the task has finished running (non-blocking, lock-free).
  bool done() const;

  /// Blocks until the task finishes. While the task is still queued behind
  /// other work, the calling thread runs queued tasks itself (caller-runs),
  /// which makes this safe to call from a task running on the same pool.
  /// Waiting on an already-finished task never touches the pool, so handles
  /// of drained tasks stay safe to Wait() on after the pool is destroyed.
  void Wait();

 private:
  friend class ThreadPool;

  struct State {
    Mutex mu;
    CondVar cv;
    /// Completion flag. Deliberately an atomic rather than a bool guarded by
    /// `mu`: done() and Wait()'s fast path stay lock-free, and the generic
    /// HelpUntil predicate can read it without holding the lock (which also
    /// keeps guarded state out of lambdas, where the thread-safety analysis
    /// cannot see the caller's lock — see common/thread_annotations.h).
    /// Ordering contract: the worker publishes the task's side effects with
    /// store(release) while holding `mu` (then notifies under it, closing
    /// the check-then-park race); any load(acquire) that observes true
    /// therefore also observes everything the task wrote.
    ///
    /// Layout: `done` owns its cache line (and `mu`/`cv` share the one
    /// before it). A HelpUntil waiter polls this flag between helped tasks
    /// while the worker that will complete the task locks/unlocks `mu` —
    /// packed together, every futex word update by the completer would
    /// invalidate the poller's line even though `done` had not changed.
    CacheAligned<std::atomic<bool>> done;
  };

  TaskHandle(std::shared_ptr<State> state, ThreadPool* pool)
      : state_(std::move(state)), pool_(pool) {}

  std::shared_ptr<State> state_;
  ThreadPool* pool_ = nullptr;
};

/// Construction-time knobs. Kept a struct (not constructor flags) so the
/// next knob doesn't grow a boolean-parameter trap.
struct ThreadPoolOptions {
  /// When true on a multi-node Linux host, worker i is pinned to NUMA node
  /// `i % numa::NodeCount()` and the pool accepts per-task node hints
  /// (Submit/SubmitWithResult overloads): a hinted task is *preferred* by
  /// workers pinned to that node but remains runnable by anyone — hints
  /// trade locality, never liveness (see PopTaskLocked). On single-node or
  /// non-Linux hosts this degrades to the default pool: no pinning, hints
  /// ignored, behavior byte-for-byte identical.
  bool numa_affinity = false;
};

/// A minimal shared thread pool with cooperative nested waiting.
///
/// Tasks are void() callables. The pool is intended for coarse-grained batch
/// parallelism; there is no work stealing or task priority. Destruction
/// drains the queue and joins all workers.
///
/// Contract (the concurrent-serving rules every caller relies on):
///  - Waiting is always per-call (ParallelFor latch, TaskHandle): a caller
///    blocks only on its own work, never on whatever other sessions queued.
///    There is deliberately no pool-wide Wait().
///  - Nesting is allowed: a task running on the pool may call ParallelFor or
///    TaskHandle::Wait on the same pool. Waiters help drain the queue
///    (caller-runs) before parking, so the pool cannot deadlock on its own
///    latches. The trade-off: a helping waiter may execute an unrelated
///    task, so its wait can extend by one task's runtime.
///  - Cancellation is cooperative via CancellationToken; cancelling never
///    removes a queued task, it only asks the task body to finish early.
///  - NUMA hints are preferences: every queued task is visible to every
///    worker and to helping waiters, so enabling affinity can change
///    execution placement but never which tasks run or whether they run.
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (>= 1).
  explicit ThreadPool(size_t num_threads,
                      const ThreadPoolOptions& options = {});

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains the queue and joins all workers.
  ~ThreadPool();

  /// Enqueues a task for asynchronous execution (fire and forget).
  void Submit(std::function<void()> task) SEESAW_EXCLUDES(mu_);

  /// As Submit, with a NUMA-node preference: workers pinned to `node_hint`
  /// pop this task before unhinted work. Out-of-range hints and pools built
  /// without numa_affinity fall back to the unhinted queue.
  void Submit(std::function<void()> task, size_t node_hint)
      SEESAW_EXCLUDES(mu_);

  /// Enqueues a task and returns a handle that waits on exactly that task.
  /// Pair with a CancellationToken captured by the task for cancellable
  /// background work (e.g. speculative prefetch).
  TaskHandle SubmitWithResult(std::function<void()> task) SEESAW_EXCLUDES(mu_);

  /// As SubmitWithResult, with a NUMA-node preference (see hinted Submit).
  TaskHandle SubmitWithResult(std::function<void()> task, size_t node_hint)
      SEESAW_EXCLUDES(mu_);

  /// Runs one queued task on the calling thread if any is queued. Returns
  /// false when the queue was empty. This is the helping primitive behind
  /// nested waits; exposed for tests and custom wait loops.
  bool TryRunOneTask() SEESAW_EXCLUDES(mu_);

  /// Number of worker threads. (workers_ is immutable after construction,
  /// so this needs no lock.)
  size_t num_threads() const { return workers_.size(); }

  /// The NUMA node worker `i` prefers (and is pinned to when the host
  /// supports it). Always 0 when the pool was built without numa_affinity
  /// or the host has one node. (worker_nodes_ is construction-immutable.)
  size_t worker_node(size_t i) const { return worker_nodes_[i]; }

  /// Whether this pool was built with numa_affinity on a host where it
  /// takes effect (i.e. hints actually route work). (num_hint_nodes_ is
  /// construction-immutable, so this needs no lock.)
  bool numa_affinity() const { return num_hint_nodes_ > 0; }

  /// Splits [0, n) into roughly equal chunks and runs `fn(begin, end)` on
  /// the pool, blocking until all chunks complete. `fn` must be safe to
  /// invoke concurrently on disjoint ranges. Blocks only on this call's own
  /// chunks, and the calling thread helps run queued work while it waits —
  /// so concurrent sessions may ParallelFor on one shared pool, and a pool
  /// task may itself ParallelFor on the same pool without deadlocking.
  void ParallelFor(size_t n, const std::function<void(size_t, size_t)>& fn)
      SEESAW_EXCLUDES(mu_);

  /// A sensible default worker count for this machine.
  static size_t DefaultThreads();

 private:
  friend class TaskHandle;

  /// The shared help-then-park wait loop behind ParallelFor and
  /// TaskHandle::Wait: runs queued tasks until `done()` holds, parking on
  /// `cv` under `mu` once the queue is empty. The predicate must read only
  /// lock-free state (an atomic flag/counter): it is invoked both with and
  /// without `mu` held, and keeping guarded state out of it is what lets the
  /// thread-safety analysis check this file without escape hatches. The
  /// waited-on completion must flip the predicate and notify `cv` while
  /// holding `mu` (see TaskHandle::State::done for the ordering contract).
  void HelpUntil(Mutex& mu, CondVar& cv, const std::function<bool()>& done)
      SEESAW_EXCLUDES(mu, mu_);

  void SubmitToQueue(std::function<void()> task, size_t node_hint)
      SEESAW_EXCLUDES(mu_);

  /// Pops the next task, preferring `preferred_node`'s hinted queue, then
  /// the unhinted queue, then other nodes' hinted queues. The fallback tail
  /// is the liveness half of the hint contract: a hinted task is never
  /// stranded waiting for "its" workers — any worker or helping waiter will
  /// eventually take it. Pass worker_nodes_.size() (or any out-of-range
  /// value) for "no preference". Returns false when everything is empty.
  bool PopTaskLocked(size_t preferred_node, std::function<void()>& out)
      SEESAW_REQUIRES(mu_);

  bool QueuesEmptyLocked() const SEESAW_REQUIRES(mu_);

  void WorkerLoop(size_t worker_index) SEESAW_EXCLUDES(mu_);

  std::vector<std::thread> workers_;      // construction-immutable
  std::vector<size_t> worker_nodes_;      // construction-immutable
  size_t num_hint_nodes_ = 0;             // construction-immutable
  Mutex mu_;
  CondVar work_available_;
  std::queue<std::function<void()>> queue_ SEESAW_GUARDED_BY(mu_);
  /// One hinted queue per NUMA node; empty vector when affinity is off or
  /// the host has a single node (the hinted Submit overloads then collapse
  /// into the unhinted path). Sized before workers spawn, never resized.
  std::vector<std::queue<std::function<void()>>> node_queues_
      SEESAW_GUARDED_BY(mu_);
  bool shutting_down_ SEESAW_GUARDED_BY(mu_) = false;
};

}  // namespace seesaw

#endif  // SEESAW_COMMON_THREAD_POOL_H_
