// Fixed-size worker pool used for data-parallel preprocessing (embedding,
// kNN-graph construction, index builds).
#ifndef SEESAW_COMMON_THREAD_POOL_H_
#define SEESAW_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace seesaw {

/// A minimal fire-and-wait thread pool.
///
/// Tasks are void() callables. The pool is intended for coarse-grained batch
/// parallelism; there is no work stealing or task priority. Destruction waits
/// for queued tasks to complete.
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (>= 1).
  explicit ThreadPool(size_t num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains the queue and joins all workers.
  ~ThreadPool();

  /// Enqueues a task for asynchronous execution.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished running.
  void Wait();

  /// Number of worker threads.
  size_t num_threads() const { return workers_.size(); }

  /// Splits [0, n) into roughly equal chunks and runs `fn(begin, end)` on the
  /// pool, blocking until all chunks complete. `fn` must be safe to invoke
  /// concurrently on disjoint ranges. Blocks only on this call's own chunks,
  /// so many threads may ParallelFor on a shared pool concurrently (the
  /// batched-query path of concurrent search sessions). Must not be called
  /// from inside a pool task: a worker blocking on its own pool can deadlock.
  void ParallelFor(size_t n, const std::function<void(size_t, size_t)>& fn);

  /// A sensible default worker count for this machine.
  static size_t DefaultThreads();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

}  // namespace seesaw

#endif  // SEESAW_COMMON_THREAD_POOL_H_
