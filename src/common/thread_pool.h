// Fixed-size worker pool used for data-parallel preprocessing (embedding,
// kNN-graph construction, index builds) and for the shared lookup pool of
// concurrent search sessions (sharded scans, speculative prefetch).
#ifndef SEESAW_COMMON_THREAD_POOL_H_
#define SEESAW_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "common/cancellation.h"

namespace seesaw {

class ThreadPool;

/// Waitable completion handle for one submitted task.
///
/// Obtained from ThreadPool::SubmitWithResult. Waiting blocks only on that
/// one task — never on unrelated pool work — and a waiter that is itself a
/// pool task helps drain the queue instead of parking, so waiting on a
/// handle from inside the pool cannot deadlock. Copies share one completion
/// state; the handle stays valid after the task finishes.
class TaskHandle {
 public:
  /// An empty handle; valid() is false and Wait()/done() must not be called.
  TaskHandle() = default;

  bool valid() const { return state_ != nullptr; }

  /// Whether the task has finished running (non-blocking).
  bool done() const;

  /// Blocks until the task finishes. While the task is still queued behind
  /// other work, the calling thread runs queued tasks itself (caller-runs),
  /// which makes this safe to call from a task running on the same pool.
  /// Waiting on an already-finished task never touches the pool, so handles
  /// of drained tasks stay safe to Wait() on after the pool is destroyed.
  void Wait();

 private:
  friend class ThreadPool;

  struct State {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
  };

  TaskHandle(std::shared_ptr<State> state, ThreadPool* pool)
      : state_(std::move(state)), pool_(pool) {}

  std::shared_ptr<State> state_;
  ThreadPool* pool_ = nullptr;
};

/// A minimal shared thread pool with cooperative nested waiting.
///
/// Tasks are void() callables. The pool is intended for coarse-grained batch
/// parallelism; there is no work stealing or task priority. Destruction
/// drains the queue and joins all workers.
///
/// Contract (the concurrent-serving rules every caller relies on):
///  - Waiting is always per-call (ParallelFor latch, TaskHandle): a caller
///    blocks only on its own work, never on whatever other sessions queued.
///    There is deliberately no pool-wide Wait().
///  - Nesting is allowed: a task running on the pool may call ParallelFor or
///    TaskHandle::Wait on the same pool. Waiters help drain the queue
///    (caller-runs) before parking, so the pool cannot deadlock on its own
///    latches. The trade-off: a helping waiter may execute an unrelated
///    task, so its wait can extend by one task's runtime.
///  - Cancellation is cooperative via CancellationToken; cancelling never
///    removes a queued task, it only asks the task body to finish early.
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (>= 1).
  explicit ThreadPool(size_t num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains the queue and joins all workers.
  ~ThreadPool();

  /// Enqueues a task for asynchronous execution (fire and forget).
  void Submit(std::function<void()> task);

  /// Enqueues a task and returns a handle that waits on exactly that task.
  /// Pair with a CancellationToken captured by the task for cancellable
  /// background work (e.g. speculative prefetch).
  TaskHandle SubmitWithResult(std::function<void()> task);

  /// Runs one queued task on the calling thread if any is queued. Returns
  /// false when the queue was empty. This is the helping primitive behind
  /// nested waits; exposed for tests and custom wait loops.
  bool TryRunOneTask();

  /// Number of worker threads.
  size_t num_threads() const { return workers_.size(); }

  /// Splits [0, n) into roughly equal chunks and runs `fn(begin, end)` on
  /// the pool, blocking until all chunks complete. `fn` must be safe to
  /// invoke concurrently on disjoint ranges. Blocks only on this call's own
  /// chunks, and the calling thread helps run queued work while it waits —
  /// so concurrent sessions may ParallelFor on one shared pool, and a pool
  /// task may itself ParallelFor on the same pool without deadlocking.
  void ParallelFor(size_t n, const std::function<void(size_t, size_t)>& fn);

  /// A sensible default worker count for this machine.
  static size_t DefaultThreads();

 private:
  friend class TaskHandle;

  /// The shared help-then-park wait loop behind ParallelFor and
  /// TaskHandle::Wait: runs queued tasks until `done()` (checked under `mu`)
  /// holds, parking on `cv` once the queue is empty. `cv` must be notified
  /// under `mu` whenever `done()` may flip.
  void HelpUntil(std::mutex& mu, std::condition_variable& cv,
                 const std::function<bool()>& done);

  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable work_available_;
  bool shutting_down_ = false;
};

}  // namespace seesaw

#endif  // SEESAW_COMMON_THREAD_POOL_H_
