// Clang thread-safety-analysis annotation macros (no-ops on other
// compilers). These turn the locking discipline that the concurrency stack
// relies on — which mutex guards which field, which functions must (not) be
// called with a lock held — into compile-time contracts: a Clang build with
// -Wthread-safety -Werror (CMake option SEESAW_THREAD_SAFETY_WERROR, driven
// by scripts/run_lint.sh and the CI lint leg) turns a lock-discipline
// violation into a build break instead of a TSan repro that depends on the
// interleavings the test suite happens to exercise.
//
// The macro set mirrors the capability vocabulary of the Clang analysis
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html), prefixed SEESAW_.
// Use them with the annotated seesaw::Mutex / seesaw::MutexLock wrappers in
// common/mutex.h — std::mutex carries no capability attributes, so the
// analysis cannot see through it (and the repo's invariant linter,
// scripts/check_invariants.py, forbids raw std::mutex outside common/).
//
// Known limits worth knowing when annotating:
//  - The analysis is intra-procedural and not flow-sensitive across opaque
//    calls: a predicate lambda handed to a generic wait loop is analyzed as
//    its own function, with no knowledge that the callee invokes it under
//    the lock. Either keep guarded reads out of such lambdas (e.g. use an
//    atomic completion flag, as ThreadPool's TaskHandle does) or annotate
//    the lambda SEESAW_NO_THREAD_SAFETY_ANALYSIS with a comment.
//  - Constructors and destructors are not checked (treated as
//    NO_THREAD_SAFETY_ANALYSIS): by the time another thread can hold a
//    reference, construction is complete.
//  - Atomics are exempt: GUARDED_BY on a std::atomic is neither needed nor
//    meaningful; document the memory-order contract instead (see
//    common/cancellation.h for the house style).
#ifndef SEESAW_COMMON_THREAD_ANNOTATIONS_H_
#define SEESAW_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__)
#define SEESAW_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define SEESAW_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

/// Declares a class to be a capability ("mutex" for error messages). The
/// class must expose acquire/release functions annotated below.
#define SEESAW_CAPABILITY(x) SEESAW_THREAD_ANNOTATION(capability(x))

/// Declares an RAII class whose constructor acquires and destructor releases
/// a capability (seesaw::MutexLock).
#define SEESAW_SCOPED_CAPABILITY SEESAW_THREAD_ANNOTATION(scoped_lockable)

/// Field annotation: reads and writes require holding `x`.
#define SEESAW_GUARDED_BY(x) SEESAW_THREAD_ANNOTATION(guarded_by(x))

/// Pointer-field annotation: dereferencing the pointer requires holding `x`
/// (the pointer itself may be read freely).
#define SEESAW_PT_GUARDED_BY(x) SEESAW_THREAD_ANNOTATION(pt_guarded_by(x))

/// Lock-ordering declarations between mutex members (deadlock prevention).
#define SEESAW_ACQUIRED_BEFORE(...) \
  SEESAW_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define SEESAW_ACQUIRED_AFTER(...) \
  SEESAW_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Function precondition: the caller must hold the capability (exclusively /
/// shared) on entry, and still holds it on exit.
#define SEESAW_REQUIRES(...) \
  SEESAW_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define SEESAW_REQUIRES_SHARED(...) \
  SEESAW_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// The function acquires the capability (must not be held on entry).
#define SEESAW_ACQUIRE(...) \
  SEESAW_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define SEESAW_ACQUIRE_SHARED(...) \
  SEESAW_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/// The function releases the capability (must be held on entry).
#define SEESAW_RELEASE(...) \
  SEESAW_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define SEESAW_RELEASE_SHARED(...) \
  SEESAW_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/// The function acquires the capability iff it returns `b`.
#define SEESAW_TRY_ACQUIRE(...) \
  SEESAW_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Function precondition: the caller must NOT hold the capability (the
/// function acquires it internally; calling with it held would deadlock).
#define SEESAW_EXCLUDES(...) \
  SEESAW_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held (for code reached both with
/// and without the lock).
#define SEESAW_ASSERT_CAPABILITY(x) \
  SEESAW_THREAD_ANNOTATION(assert_capability(x))

/// The function returns a reference to the given capability (for accessors
/// exposing a member mutex).
#define SEESAW_RETURN_CAPABILITY(x) SEESAW_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disables analysis for one function. Every use must carry a
/// comment explaining why the contract holds anyway (e.g. move operations
/// that are externally serialized, or a predicate lambda a generic wait loop
/// invokes under the lock).
#define SEESAW_NO_THREAD_SAFETY_ANALYSIS \
  SEESAW_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // SEESAW_COMMON_THREAD_ANNOTATIONS_H_
