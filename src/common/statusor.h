// StatusOr<T>: a value-or-error union for fallible factory / query functions.
#ifndef SEESAW_COMMON_STATUSOR_H_
#define SEESAW_COMMON_STATUSOR_H_

#include <cstdlib>
#include <optional>
#include <utility>

#include "common/check.h"
#include "common/status.h"

namespace seesaw {

/// Holds either a T or an error Status (never both, never neither).
///
/// Use pattern:
///   StatusOr<AnnoyIndex> idx = AnnoyIndex::Build(opts, vectors);
///   if (!idx.ok()) return idx.status();
///   idx->TopK(...);
template <typename T>
class StatusOr {
 public:
  /// Constructs from a value (implicit, to allow `return value;`).
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from an error status. `status.ok()` must be false.
  StatusOr(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    SEESAW_CHECK(!status_.ok())
        << "StatusOr constructed from OK status without a value";
  }

  /// True iff a value is present.
  bool ok() const { return value_.has_value(); }

  /// The status: OK when a value is present, the stored error otherwise.
  const Status& status() const { return status_; }

  /// Accessors; must only be called when ok().
  const T& value() const& {
    SEESAW_CHECK(ok()) << "value() on error StatusOr: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    SEESAW_CHECK(ok()) << "value() on error StatusOr: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    SEESAW_CHECK(ok()) << "value() on error StatusOr: " << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }

  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` when in the error state.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;  // OK iff value_ holds a value.
  std::optional<T> value_;
};

/// Assigns the value of a StatusOr expression to `lhs` or early-returns the
/// error. `lhs` may include a declaration: SEESAW_ASSIGN_OR_RETURN(auto x, F());
#define SEESAW_ASSIGN_OR_RETURN(lhs, rexpr)                          \
  SEESAW_ASSIGN_OR_RETURN_IMPL_(                                     \
      SEESAW_STATUS_MACROS_CONCAT_(_seesaw_statusor, __LINE__), lhs, \
      rexpr)

#define SEESAW_ASSIGN_OR_RETURN_IMPL_(statusor, lhs, rexpr) \
  auto statusor = (rexpr);                                  \
  if (!statusor.ok()) return statusor.status();             \
  lhs = std::move(statusor).value()

#define SEESAW_STATUS_MACROS_CONCAT_(x, y) SEESAW_STATUS_MACROS_CONCAT_IMPL_(x, y)
#define SEESAW_STATUS_MACROS_CONCAT_IMPL_(x, y) x##y

}  // namespace seesaw

#endif  // SEESAW_COMMON_STATUSOR_H_
