// Wall-clock timing used by the latency benchmarks (Table 6, §2.4).
#ifndef SEESAW_COMMON_STOPWATCH_H_
#define SEESAW_COMMON_STOPWATCH_H_

#include <chrono>

namespace seesaw {

/// Measures elapsed wall-clock time with a steady clock.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction / last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction / last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace seesaw

#endif  // SEESAW_COMMON_STOPWATCH_H_
