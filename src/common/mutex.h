// seesaw::Mutex / MutexLock / CondVar: thin std::mutex wrappers carrying the
// Clang thread-safety capability annotations (common/thread_annotations.h).
//
// std::mutex is attribute-free, so code locking it is invisible to the
// -Wthread-safety analysis; these wrappers make every acquire/release an
// analyzable event. All concurrency-bearing code outside common/ must use
// them — scripts/check_invariants.py enforces the ban on raw std::mutex /
// std::thread outside this directory.
//
// House rules:
//  - Guard fields with SEESAW_GUARDED_BY(mu_) and lock with MutexLock (RAII)
//    rather than manual Lock/Unlock pairs.
//  - Annotate public entry points that lock internally with
//    SEESAW_EXCLUDES(mu_) so re-entry deadlocks are compile errors.
//  - CondVar waits take the Mutex explicitly (annotated SEESAW_REQUIRES), so
//    a wait without the lock held is a compile error too. Re-check the
//    predicate in a while loop around Wait, in the waiting function itself —
//    not in a lambda — so the guarded reads stay visible to the analysis.
#ifndef SEESAW_COMMON_MUTEX_H_
#define SEESAW_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace seesaw {

class CondVar;

/// An annotated exclusive mutex (wraps std::mutex; same cost).
class SEESAW_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() SEESAW_ACQUIRE() { mu_.lock(); }
  void Unlock() SEESAW_RELEASE() { mu_.unlock(); }
  bool TryLock() SEESAW_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;  // CondVar::Wait parks on the wrapped handle
  std::mutex mu_;
};

/// RAII lock for Mutex (the only sanctioned way to hold one).
class SEESAW_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) SEESAW_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() SEESAW_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable for Mutex. Wait requires the lock to be held, which
/// the annotation enforces at compile time; like std::condition_variable,
/// spurious wakeups are allowed and callers must re-check their predicate in
/// a loop.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, parks until notified, and re-acquires `mu`
  /// before returning. `mu` must be the mutex guarding the awaited state and
  /// must be held by the caller.
  void Wait(Mutex& mu) SEESAW_REQUIRES(mu) {
    // Adopt the caller's hold for the duration of the park only: wait()
    // needs a unique_lock, but ownership stays with the caller's MutexLock
    // (release() hands the still-locked mutex back without unlocking).
    std::unique_lock<std::mutex> park(mu.mu_, std::adopt_lock);
    cv_.wait(park);
    park.release();
  }

  /// Wakes one / all waiters. May be called with or without the mutex held;
  /// to avoid lost wakeups, the awaited state must be changed while holding
  /// the mutex (or the notify itself must happen under it).
  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace seesaw

#endif  // SEESAW_COMMON_MUTEX_H_
