#include "common/thread_pool.h"

#include <algorithm>

#include "common/check.h"

namespace seesaw {

bool TaskHandle::done() const {
  SEESAW_CHECK(state_ != nullptr) << "done() on an empty TaskHandle";
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->done;
}

void TaskHandle::Wait() {
  SEESAW_CHECK(state_ != nullptr) << "Wait() on an empty TaskHandle";
  State& state = *state_;
  {
    // Fast path that never touches the pool: a finished task's handle must
    // stay waitable even after the pool is destroyed (pool destruction
    // drains the queue, so an unfinished task implies a live pool).
    std::unique_lock<std::mutex> lock(state.mu);
    if (state.done) return;
  }
  pool_->HelpUntil(state.mu, state.cv, [&state] { return state.done; });
}

ThreadPool::ThreadPool(size_t num_threads) {
  SEESAW_CHECK_GE(num_threads, 1u);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    SEESAW_CHECK(!shutting_down_) << "Submit after shutdown";
    queue_.push(std::move(task));
  }
  work_available_.notify_one();
}

TaskHandle ThreadPool::SubmitWithResult(std::function<void()> task) {
  auto state = std::make_shared<TaskHandle::State>();
  Submit([state, task = std::move(task)] {
    task();
    std::lock_guard<std::mutex> lock(state->mu);
    state->done = true;
    state->cv.notify_all();
  });
  return TaskHandle(std::move(state), this);
}

void ThreadPool::HelpUntil(std::mutex& mu, std::condition_variable& cv,
                           const std::function<bool()>& done) {
  // Caller-runs: while the waited-on work is outstanding, execute queued
  // tasks (the waiter's own or anyone else's) on the calling thread. Park
  // only once the queue is empty — at that point the outstanding work is
  // executing on other threads, so waiting on the condition cannot deadlock
  // even when the caller is itself a pool worker (nested ParallelFor /
  // TaskHandle::Wait on the same pool).
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu);
      if (done()) return;
    }
    if (!TryRunOneTask()) {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, done);
      return;
    }
  }
}

bool ThreadPool::TryRunOneTask() {
  std::function<void()> task;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop();
  }
  task();
  return true;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  size_t chunks = std::min(n, num_threads() * 4);
  size_t chunk_size = (n + chunks - 1) / chunks;
  // Per-call completion latch rather than any pool-wide state: many sessions
  // share one pool, and a caller must only block on its own chunks, not on
  // whatever other sessions have queued.
  struct Latch {
    std::mutex mu;
    std::condition_variable done;
    size_t remaining = 0;
  };
  auto latch = std::make_shared<Latch>();
  latch->remaining = (n + chunk_size - 1) / chunk_size;
  for (size_t begin = 0; begin < n; begin += chunk_size) {
    size_t end = std::min(begin + chunk_size, n);
    Submit([&fn, latch, begin, end] {
      fn(begin, end);
      std::unique_lock<std::mutex> lock(latch->mu);
      if (--latch->remaining == 0) latch->done.notify_all();
    });
  }
  HelpUntil(latch->mu, latch->done,
            [&latch] { return latch->remaining == 0; });
}

size_t ThreadPool::DefaultThreads() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 2 : static_cast<size_t>(hw);
}

}  // namespace seesaw
