#include "common/thread_pool.h"

#include <algorithm>

#include "common/check.h"

namespace seesaw {

bool TaskHandle::done() const {
  SEESAW_CHECK(state_ != nullptr) << "done() on an empty TaskHandle";
  return state_->done.load(std::memory_order_acquire);
}

void TaskHandle::Wait() {
  SEESAW_CHECK(state_ != nullptr) << "Wait() on an empty TaskHandle";
  State& state = *state_;
  // Fast path that never touches the pool or the lock: a finished task's
  // handle must stay waitable even after the pool is destroyed (pool
  // destruction drains the queue, so an unfinished task implies a live
  // pool). The acquire load pairs with the worker's release store, ordering
  // this thread after the task's side effects.
  if (state.done.load(std::memory_order_acquire)) return;
  pool_->HelpUntil(state.mu, state.cv, [&state] {
    return state.done.load(std::memory_order_acquire);
  });
}

ThreadPool::ThreadPool(size_t num_threads) {
  SEESAW_CHECK_GE(num_threads, 1u);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    shutting_down_ = true;
  }
  work_available_.NotifyAll();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    SEESAW_CHECK(!shutting_down_) << "Submit after shutdown";
    queue_.push(std::move(task));
  }
  work_available_.NotifyOne();
}

TaskHandle ThreadPool::SubmitWithResult(std::function<void()> task) {
  auto state = std::make_shared<TaskHandle::State>();
  Submit([state, task = std::move(task)] {
    task();
    // Publish completion under the state lock *and* notify under it: a
    // waiter that checked `done` false cannot park before we flip it (the
    // check-then-park is atomic under state->mu inside HelpUntil), so the
    // notify cannot be lost. The release store publishes the task's writes
    // to lock-free done()/Wait() fast paths.
    MutexLock lock(state->mu);
    state->done.store(true, std::memory_order_release);
    state->cv.NotifyAll();
  });
  return TaskHandle(std::move(state), this);
}

void ThreadPool::HelpUntil(Mutex& mu, CondVar& cv,
                           const std::function<bool()>& done) {
  // Caller-runs: while the waited-on work is outstanding, execute queued
  // tasks (the waiter's own or anyone else's) on the calling thread. Park
  // only once the queue is empty — at that point the outstanding work is
  // executing on other threads, so waiting on the condition cannot deadlock
  // even when the caller is itself a pool worker (nested ParallelFor /
  // TaskHandle::Wait on the same pool).
  for (;;) {
    if (done()) return;
    if (!TryRunOneTask()) {
      MutexLock lock(mu);
      // Re-check under the lock, then park: the completer flips the
      // predicate and notifies while holding `mu`, so a waiter cannot slip
      // between the check and the wait.
      while (!done()) cv.Wait(mu);
      return;
    }
  }
}

bool ThreadPool::TryRunOneTask() {
  std::function<void()> task;
  {
    MutexLock lock(mu_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop();
  }
  task();
  return true;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!shutting_down_ && queue_.empty()) work_available_.Wait(mu_);
      if (queue_.empty()) return;  // shutting down and fully drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  size_t chunks = std::min(n, num_threads() * 4);
  size_t chunk_size = (n + chunks - 1) / chunks;
  // Per-call completion latch rather than any pool-wide state: many sessions
  // share one pool, and a caller must only block on its own chunks, not on
  // whatever other sessions have queued. `remaining` is atomic for the same
  // reason TaskHandle::State::done is: the HelpUntil predicate reads it
  // lock-free, and workers decrement it without taking the latch lock; only
  // the final decrement touches `mu`, to pair with the waiter's
  // check-then-park (an empty critical section is enough — the waiter either
  // sees 0 before parking or is parked and gets the notify).
  struct Latch {
    Mutex mu;
    CondVar done;
    std::atomic<size_t> remaining{0};
  };
  auto latch = std::make_shared<Latch>();
  latch->remaining.store((n + chunk_size - 1) / chunk_size,
                         std::memory_order_relaxed);
  for (size_t begin = 0; begin < n; begin += chunk_size) {
    size_t end = std::min(begin + chunk_size, n);
    Submit([&fn, latch, begin, end] {
      fn(begin, end);
      if (latch->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        MutexLock lock(latch->mu);
        latch->done.NotifyAll();
      }
    });
  }
  HelpUntil(latch->mu, latch->done, [&latch] {
    return latch->remaining.load(std::memory_order_acquire) == 0;
  });
}

size_t ThreadPool::DefaultThreads() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 2 : static_cast<size_t>(hw);
}

}  // namespace seesaw
