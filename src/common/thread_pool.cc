#include "common/thread_pool.h"

#include <algorithm>

#include "common/check.h"
#include "common/numa.h"

namespace seesaw {

bool TaskHandle::done() const {
  SEESAW_CHECK(state_ != nullptr) << "done() on an empty TaskHandle";
  return state_->done.value.load(std::memory_order_acquire);
}

void TaskHandle::Wait() {
  SEESAW_CHECK(state_ != nullptr) << "Wait() on an empty TaskHandle";
  State& state = *state_;
  // Fast path that never touches the pool or the lock: a finished task's
  // handle must stay waitable even after the pool is destroyed (pool
  // destruction drains the queue, so an unfinished task implies a live
  // pool). The acquire load pairs with the worker's release store, ordering
  // this thread after the task's side effects.
  if (state.done.value.load(std::memory_order_acquire)) return;
  pool_->HelpUntil(state.mu, state.cv, [&state] {
    return state.done.value.load(std::memory_order_acquire);
  });
}

ThreadPool::ThreadPool(size_t num_threads, const ThreadPoolOptions& options) {
  SEESAW_CHECK_GE(num_threads, 1u);
  // Affinity only engages when it can route anything: a single-node host
  // (or a non-Linux build, where NodeCount() is 1) gets the plain pool, so
  // enabling the option is always safe and a no-op where it cannot help.
  const bool affinity = options.numa_affinity && numa::Available();
  num_hint_nodes_ = affinity ? numa::NodeCount() : 0;
  {
    MutexLock lock(mu_);
    node_queues_.resize(num_hint_nodes_);
  }
  worker_nodes_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    worker_nodes_.push_back(affinity ? i % numa::NodeCount() : 0);
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    shutting_down_ = true;
  }
  work_available_.NotifyAll();
  for (auto& w : workers_) w.join();
}

void ThreadPool::SubmitToQueue(std::function<void()> task, size_t node_hint) {
  {
    MutexLock lock(mu_);
    SEESAW_CHECK(!shutting_down_) << "Submit after shutdown";
    if (node_hint < node_queues_.size()) {
      node_queues_[node_hint].push(std::move(task));
    } else {
      queue_.push(std::move(task));
    }
  }
  // NotifyOne may wake a worker of a different node; that worker will still
  // find the task via PopTaskLocked's fallback order, so no signal is lost
  // to the hint routing.
  work_available_.NotifyOne();
}

void ThreadPool::Submit(std::function<void()> task) {
  SubmitToQueue(std::move(task), worker_nodes_.size());
}

void ThreadPool::Submit(std::function<void()> task, size_t node_hint) {
  SubmitToQueue(std::move(task), node_hint);
}

TaskHandle ThreadPool::SubmitWithResult(std::function<void()> task) {
  return SubmitWithResult(std::move(task), worker_nodes_.size());
}

TaskHandle ThreadPool::SubmitWithResult(std::function<void()> task,
                                        size_t node_hint) {
  auto state = std::make_shared<TaskHandle::State>();
  Submit(
      [state, task = std::move(task)] {
        task();
        // Publish completion under the state lock *and* notify under it: a
        // waiter that checked `done` false cannot park before we flip it
        // (the check-then-park is atomic under state->mu inside HelpUntil),
        // so the notify cannot be lost. The release store publishes the
        // task's writes to lock-free done()/Wait() fast paths.
        MutexLock lock(state->mu);
        state->done.value.store(true, std::memory_order_release);
        state->cv.NotifyAll();
      },
      node_hint);
  return TaskHandle(std::move(state), this);
}

void ThreadPool::HelpUntil(Mutex& mu, CondVar& cv,
                           const std::function<bool()>& done) {
  // Caller-runs: while the waited-on work is outstanding, execute queued
  // tasks (the waiter's own or anyone else's) on the calling thread. Park
  // only once the queue is empty — at that point the outstanding work is
  // executing on other threads, so waiting on the condition cannot deadlock
  // even when the caller is itself a pool worker (nested ParallelFor /
  // TaskHandle::Wait on the same pool).
  for (;;) {
    if (done()) return;
    if (!TryRunOneTask()) {
      MutexLock lock(mu);
      // Re-check under the lock, then park: the completer flips the
      // predicate and notifies while holding `mu`, so a waiter cannot slip
      // between the check and the wait.
      while (!done()) cv.Wait(mu);
      return;
    }
  }
}

bool ThreadPool::PopTaskLocked(size_t preferred_node,
                               std::function<void()>& out) {
  auto take = [&out](std::queue<std::function<void()>>& q) {
    out = std::move(q.front());
    q.pop();
  };
  if (preferred_node < node_queues_.size() &&
      !node_queues_[preferred_node].empty()) {
    take(node_queues_[preferred_node]);
    return true;
  }
  if (!queue_.empty()) {
    take(queue_);
    return true;
  }
  for (auto& q : node_queues_) {
    if (!q.empty()) {
      take(q);
      return true;
    }
  }
  return false;
}

bool ThreadPool::QueuesEmptyLocked() const {
  if (!queue_.empty()) return false;
  for (const auto& q : node_queues_) {
    if (!q.empty()) return false;
  }
  return true;
}

bool ThreadPool::TryRunOneTask() {
  std::function<void()> task;
  {
    MutexLock lock(mu_);
    // Helping waiters take the locality they happen to have: prefer work
    // hinted at the node this thread is currently on.
    if (!PopTaskLocked(node_queues_.empty() ? 0 : numa::CurrentNode(), task)) {
      return false;
    }
  }
  task();
  return true;
}

void ThreadPool::WorkerLoop(size_t worker_index) {
  const size_t my_node = worker_nodes_[worker_index];
  if (num_hint_nodes_ > 0) {
    // Pin before any work: the first task's first-touch allocations land on
    // this node. A refused pin (cgroup cpuset) degrades silently — the
    // worker still prefers its node's queue, it just may run elsewhere.
    numa::PinThreadToNode(my_node);
  }
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!shutting_down_ && QueuesEmptyLocked()) work_available_.Wait(mu_);
      // Shutting down: drain everything (hinted queues included) before
      // exiting so destruction keeps its "drains the queue" contract.
      if (!PopTaskLocked(my_node, task)) return;
    }
    task();
  }
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  size_t chunks = std::min(n, num_threads() * 4);
  size_t chunk_size = (n + chunks - 1) / chunks;
  // Per-call completion latch rather than any pool-wide state: many sessions
  // share one pool, and a caller must only block on its own chunks, not on
  // whatever other sessions have queued. `remaining` is atomic for the same
  // reason TaskHandle::State::done is: the HelpUntil predicate reads it
  // lock-free, and workers decrement it without taking the latch lock; only
  // the final decrement touches `mu`, to pair with the waiter's
  // check-then-park (an empty critical section is enough — the waiter either
  // sees 0 before parking or is parked and gets the notify).
  //
  // `remaining` owns its cache line for the same reason TaskHandle::State
  // pads `done`: every finishing chunk decrements it while the waiter polls
  // it between helped tasks — sharing a line with `mu` would make each
  // worker's lock traffic evict the poller's copy.
  struct Latch {
    Mutex mu;
    CondVar done;
    CacheAligned<std::atomic<size_t>> remaining;
  };
  auto latch = std::make_shared<Latch>();
  latch->remaining.value.store((n + chunk_size - 1) / chunk_size,
                               std::memory_order_relaxed);
  for (size_t begin = 0; begin < n; begin += chunk_size) {
    size_t end = std::min(begin + chunk_size, n);
    Submit([&fn, latch, begin, end] {
      fn(begin, end);
      if (latch->remaining.value.fetch_sub(1, std::memory_order_acq_rel) ==
          1) {
        MutexLock lock(latch->mu);
        latch->done.NotifyAll();
      }
    });
  }
  HelpUntil(latch->mu, latch->done, [&latch] {
    return latch->remaining.value.load(std::memory_order_acquire) == 0;
  });
}

size_t ThreadPool::DefaultThreads() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 2 : static_cast<size_t>(hw);
}

}  // namespace seesaw
