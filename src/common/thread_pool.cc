#include "common/thread_pool.h"

#include <algorithm>
#include <memory>

#include "common/check.h"

namespace seesaw {

ThreadPool::ThreadPool(size_t num_threads) {
  SEESAW_CHECK_GE(num_threads, 1u);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    SEESAW_CHECK(!shutting_down_) << "Submit after shutdown";
    queue_.push(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  size_t chunks = std::min(n, num_threads() * 4);
  size_t chunk_size = (n + chunks - 1) / chunks;
  // Per-call completion latch rather than the pool-wide Wait(): many
  // sessions share one pool, and a caller must only block on its own chunks,
  // not on whatever other sessions have queued.
  struct Latch {
    std::mutex mu;
    std::condition_variable done;
    size_t remaining = 0;
  };
  auto latch = std::make_shared<Latch>();
  latch->remaining = (n + chunk_size - 1) / chunk_size;
  for (size_t begin = 0; begin < n; begin += chunk_size) {
    size_t end = std::min(begin + chunk_size, n);
    Submit([&fn, latch, begin, end] {
      fn(begin, end);
      std::unique_lock<std::mutex> lock(latch->mu);
      if (--latch->remaining == 0) latch->done.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(latch->mu);
  latch->done.wait(lock, [&latch] { return latch->remaining == 0; });
}

size_t ThreadPool::DefaultThreads() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 2 : static_cast<size_t>(hw);
}

}  // namespace seesaw
