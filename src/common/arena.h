// Per-scan scratch arenas: bump allocation over retained buffers.
//
// The batched scan (ExactStore::TopKBatch) used to build its working set —
// quantized query block, per-shard score blocks, admission thresholds —
// out of fresh std::vectors on every call. At serving rates that is
// thousands of malloc/free round trips per second of identically-sized
// buffers, all churn: the sizes repeat call after call, so the allocator is
// just re-discovering the same layout. ScratchArena replaces that with a
// bump pointer over a buffer that is kept between calls; after the first
// call at a given shape, a scan performs zero scratch allocations
// (tests/memory_audit_test.cc holds this as a regression gate).
//
// Why a pooled arena and not thread_local scratch: the pool's waiters are
// caller-runs (ThreadPool::HelpUntil) — an OS thread blocked in one
// TopKBatch's ParallelFor can pick up and execute a *second* TopKBatch as a
// helped task on the same stack. A thread_local buffer would be re-bumped
// by the nested call while the outer call's shard tasks (on other workers)
// are still reading the outer quantized queries from it. The ScratchPool
// instead leases one arena per concurrent *call* (RAII Lease), so nesting
// just takes a second arena.
//
// Allocation lifetime: every span handed out by Alloc stays valid until the
// owning arena is Reset (leases reset on release) — growth retires the old
// block instead of reallocating it, precisely so outstanding spans survive.
// Reset then coalesces to one right-sized block, which is why the steady
// state allocates nothing.
#ifndef SEESAW_COMMON_ARENA_H_
#define SEESAW_COMMON_ARENA_H_

#include <cstddef>
#include <memory>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/aligned.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace seesaw {

/// A growable bump allocator whose capacity is retained across Reset().
/// Single-owner: not thread-safe (each concurrent scan leases its own arena
/// from a ScratchPool). Allocations are kCacheLineSize-aligned, which also
/// means scratch handed to different shard tasks never shares a line.
class ScratchArena {
 public:
  ScratchArena() = default;
  ScratchArena(const ScratchArena&) = delete;
  ScratchArena& operator=(const ScratchArena&) = delete;

  /// Returns an uninitialized span of `n` Ts, aligned to a cache line and
  /// valid until Reset(). T must be trivial: the arena never runs
  /// constructors or destructors (this is scratch, not object storage).
  template <typename T>
  std::span<T> Alloc(size_t n) {
    static_assert(std::is_trivially_default_constructible_v<T> &&
                      std::is_trivially_destructible_v<T>,
                  "ScratchArena hands out raw memory: no ctors/dtors run");
    static_assert(alignof(T) <= kCacheLineSize);
    if (n == 0) return {};
    return {static_cast<T*>(AllocBytes(n * sizeof(T))), n};
  }

  /// Invalidates every outstanding span and makes the full capacity
  /// available again. Keeps (and coalesces) the backing memory: after the
  /// high-water shape has been seen once, Reset + re-Alloc touch the
  /// allocator zero times.
  void Reset();

  /// Total bytes of backing store currently retained.
  size_t capacity_bytes() const;

 private:
  struct Block {
    std::unique_ptr<std::byte[]> storage;
    std::byte* base = nullptr;  // storage rounded up to kCacheLineSize
    size_t capacity = 0;
    size_t used = 0;
  };

  void* AllocBytes(size_t bytes);
  static Block NewBlock(size_t capacity);

  Block current_;
  /// Blocks outgrown mid-cycle. Kept alive (not freed) until Reset so the
  /// spans allocated from them remain valid; Reset folds their capacity
  /// into one replacement block.
  std::vector<Block> retired_;
};

/// A mutex-guarded free list of arenas, one leased per concurrent scan.
/// The pool only grows (arenas are never freed while the pool lives): with
/// C concurrent scans in steady state it holds exactly max-C-observed
/// arenas, and created() going flat is the "no per-call allocation growth"
/// signal the memory-audit test asserts.
class ScratchPool {
 public:
  class Lease;

  ScratchPool() = default;
  ScratchPool(const ScratchPool&) = delete;
  ScratchPool& operator=(const ScratchPool&) = delete;

  /// Leases an idle arena, creating one only when all existing arenas are
  /// leased out. The lease resets and returns the arena on destruction and
  /// must not outlive the pool.
  Lease Acquire() SEESAW_EXCLUDES(mu_);

  /// Arenas ever created (monotone; flat once warm).
  size_t created() const SEESAW_EXCLUDES(mu_);

  /// Arenas currently leased out.
  size_t outstanding() const SEESAW_EXCLUDES(mu_);

  /// RAII arena lease. Move-only; empty after move.
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& other) noexcept
        : pool_(std::exchange(other.pool_, nullptr)),
          arena_(std::move(other.arena_)) {}
    Lease& operator=(Lease&& other) noexcept {
      if (this != &other) {
        Release();
        pool_ = std::exchange(other.pool_, nullptr);
        arena_ = std::move(other.arena_);
      }
      return *this;
    }
    ~Lease() { Release(); }

    ScratchArena& operator*() const { return *arena_; }
    ScratchArena* operator->() const { return arena_.get(); }

   private:
    friend class ScratchPool;
    Lease(ScratchPool* pool, std::unique_ptr<ScratchArena> arena)
        : pool_(pool), arena_(std::move(arena)) {}
    void Release();

    ScratchPool* pool_ = nullptr;
    std::unique_ptr<ScratchArena> arena_;
  };

 private:
  void Return(std::unique_ptr<ScratchArena> arena) SEESAW_EXCLUDES(mu_);

  mutable Mutex mu_;
  std::vector<std::unique_ptr<ScratchArena>> idle_ SEESAW_GUARDED_BY(mu_);
  size_t created_ SEESAW_GUARDED_BY(mu_) = 0;
  size_t outstanding_ SEESAW_GUARDED_BY(mu_) = 0;
};

/// The process-wide pool behind the scan hot path (ExactStore::TopKBatch).
/// Intentionally leaked: scans may still be finishing on pool workers while
/// static destructors run, and an arena pool holds nothing that needs
/// unwinding.
ScratchPool& GlobalScanScratch();

}  // namespace seesaw

#endif  // SEESAW_COMMON_ARENA_H_
