// CancellationToken: cooperative cancellation flag shared between a task's
// owner and the task. Split out of thread_pool.h so low-level layers (the
// store scans) can accept a token without pulling in the whole pool.
#ifndef SEESAW_COMMON_CANCELLATION_H_
#define SEESAW_COMMON_CANCELLATION_H_

#include <atomic>
#include <memory>

namespace seesaw {

/// Cooperative cancellation flag shared between a task's owner and the task.
///
/// Copies share one flag. Cancellation is purely advisory: nothing ever
/// kills a task; the task is expected to poll `cancelled()` at natural
/// checkpoints and exit early. Requesting cancellation is thread-safe and
/// idempotent.
class CancellationToken {
 public:
  CancellationToken()
      : cancelled_(std::make_shared<std::atomic<bool>>(false)) {}

  /// Asks the task to stop at its next checkpoint.
  void RequestCancel() const {
    cancelled_->store(true, std::memory_order_relaxed);
  }

  /// Whether cancellation has been requested.
  bool cancelled() const {
    return cancelled_->load(std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<std::atomic<bool>> cancelled_;
};

}  // namespace seesaw

#endif  // SEESAW_COMMON_CANCELLATION_H_
