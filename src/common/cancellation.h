// CancellationToken: cooperative cancellation flag shared between a task's
// owner and the task. Split out of thread_pool.h so low-level layers (the
// store scans) can accept a token without pulling in the whole pool.
#ifndef SEESAW_COMMON_CANCELLATION_H_
#define SEESAW_COMMON_CANCELLATION_H_

#include <atomic>
#include <memory>

namespace seesaw {

/// Cooperative cancellation flag shared between a task's owner and the task.
///
/// Copies share one flag. Cancellation is purely advisory: nothing ever
/// kills a task; the task is expected to poll `cancelled()` at natural
/// checkpoints and exit early. Requesting cancellation is thread-safe and
/// idempotent.
///
/// Memory-order contract (release/acquire, not the seq_cst defaults and not
/// relaxed):
///  - RequestCancel is a release store: everything the cancelling thread
///    wrote *before* requesting is visible to any thread that observes the
///    cancellation. Result hand-off in the speculation machinery is already
///    ordered by TaskHandle completion (a mutex), so correctness today does
///    not lean on this — but relaxed would harden "no data may ever be
///    published through this flag" into the contract, a trap for future
///    checkpoint code (e.g. reading a deadline or a cancel reason after
///    observing the flag). The release costs nothing on the cancel path,
///    which runs once.
///  - cancelled() is an acquire load, pairing with the store. This is the
///    hot path — polled once per scanned row block / probed IVF list — but
///    an acquire load is a plain MOV on x86-64 and a single LDAR on AArch64,
///    noise against the O(block_rows * dim) of kernel work between
///    checkpoints (measured: no difference at bench_scale granularity).
///  - seq_cst would additionally impose one global order across *different*
///    tokens. No caller reasons about two flags' relative order (each
///    speculation owns its token outright), so that stronger fence would buy
///    nothing and cost a real barrier per checkpoint on weakly-ordered ISAs.
class CancellationToken {
 public:
  CancellationToken()
      : cancelled_(std::make_shared<std::atomic<bool>>(false)) {}

  /// Asks the task to stop at its next checkpoint. Release: publishes the
  /// caller's prior writes to any observer of the flag (see class comment).
  void RequestCancel() const {
    cancelled_->store(true, std::memory_order_release);
  }

  /// Whether cancellation has been requested. Acquire: an observer of `true`
  /// also observes everything the canceller wrote before RequestCancel (see
  /// class comment for why this is deliberately not relaxed).
  bool cancelled() const {
    return cancelled_->load(std::memory_order_acquire);
  }

 private:
  std::shared_ptr<std::atomic<bool>> cancelled_;
};

}  // namespace seesaw

#endif  // SEESAW_COMMON_CANCELLATION_H_
