// NUMA topology discovery and placement for the sharded scan path.
//
// At 16M rows the table is ~8 GB of fp32: on a multi-socket host that table
// straddles NUMA nodes, and a scan worker streaming a remote node's rows
// pays the interconnect on every cache-line fill (typically 1.5-2x the local
// latency, and a fraction of the local bandwidth). The fix is classic
// placement: put each shard's rows on one node and run that shard's scan on
// a core of the same node.
//
// This header is the whole placement seam, deliberately free of libnuma (the
// build must not grow dependencies): topology comes from
// /sys/devices/system/node, thread pinning is sched_setaffinity, and memory
// binding is the raw mbind(2) syscall. Every entry point degrades to a
// successful no-op when placement cannot apply:
//
//   - non-Linux builds: stubs compiled from the #else branch, NodeCount()==1;
//   - single-node Linux hosts (the CI runner): NodeCount()==1, so
//     PinThreadToNode / BindMemoryToNode return OK without issuing syscalls;
//   - kernels without an mbind syscall or with it refused (seccomp,
//     CONFIG_NUMA=n): the error is swallowed into a no-op *by policy* —
//     placement is an optimization, never a correctness requirement, and a
//     scan must produce bitwise-identical results wherever its pages live
//     (tests/numa_test.cc holds the parity side of that contract).
//
// Callers that want to distinguish "placed" from "no-op" (diag_memory, the
// bench) use the Placement{Applied,Degraded} result rather than Status.
#ifndef SEESAW_COMMON_NUMA_H_
#define SEESAW_COMMON_NUMA_H_

#include <cstddef>
#include <vector>

namespace seesaw::numa {

/// True when the host exposes more than one NUMA node — i.e. placement can
/// change anything at all. False on non-Linux and single-node hosts, where
/// every placement call below is a successful no-op.
bool Available();

/// Number of online NUMA nodes; always >= 1 (1 on non-NUMA hosts, so
/// `shard % NodeCount()` is safe unconditionally). Resolved once from
/// /sys/devices/system/node and cached.
size_t NodeCount();

/// CPU ids belonging to `node` (empty for out-of-range nodes or when the
/// topology is unreadable). Snapshot at first call; CPU hotplug after that
/// is not tracked (pinning to an offlined CPU fails gracefully — the thread
/// keeps its previous mask).
const std::vector<int>& CpusOfNode(size_t node);

/// The node owning the CPU the calling thread is currently running on, or
/// 0 when it cannot be determined. Cheap (getcpu vDSO), safe to call on the
/// scan path.
size_t CurrentNode();

/// Outcome of a placement request: Applied means the syscall took effect;
/// Degraded means the request was a deliberate no-op (single node, stub
/// build, or the kernel refused) — never an error, by the contract above.
enum class Placement { kApplied, kDegraded };

/// Restricts the calling thread's CPU affinity to the CPUs of `node`.
/// Degraded (and no syscall) when !Available(), the node is out of range,
/// or the node has no readable CPU list; also Degraded when
/// sched_setaffinity itself is refused.
Placement PinThreadToNode(size_t node);

/// Binds the pages of [ptr, ptr+bytes) to `node`, migrating already-touched
/// pages (MPOL_MF_MOVE) — the table buffers this is used on are written by
/// the building thread before placement, so first-touch alone would leave
/// them on the builder's node. The range is rounded inward to page
/// boundaries; a range smaller than one page is trivially Degraded.
/// Degraded (no syscall) when !Available() or `node` is out of range, and
/// when the kernel refuses the mbind (see header contract).
Placement BindMemoryToNode(void* ptr, size_t bytes, size_t node);

/// The canonical shard->node assignment used by ShardedStore and diag tools:
/// round-robin over the online nodes. With one node this is always 0.
inline size_t NodeForShard(size_t shard) { return shard % NodeCount(); }

}  // namespace seesaw::numa

#endif  // SEESAW_COMMON_NUMA_H_
